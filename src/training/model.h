#ifndef SSTBAN_TRAINING_MODEL_H_
#define SSTBAN_TRAINING_MODEL_H_

#include <memory>
#include <mutex>

#include "autograd/variable.h"
#include "core/rng.h"
#include "data/dataset.h"
#include "data/normalizer.h"
#include "exec/precision.h"
#include "nn/module.h"

namespace sstban::exec {
class InferenceEngine;
}  // namespace sstban::exec

namespace sstban::training {

// Common interface all forecasting models implement (SSTBAN and every
// baseline in Tables IV/V). Models consume z-score-normalized signals and
// emit normalized predictions; the evaluator denormalizes before computing
// MAE/RMSE/MAPE, matching the paper's protocol ("we re-transform the
// predictions back to the actual values").
class TrafficModel : public nn::Module {
 public:
  // Out-of-line: the header only forward-declares exec::InferenceEngine, so
  // the unique_ptr member can only be constructed/destroyed where the full
  // type is visible (model.cc).
  TrafficModel();
  ~TrafficModel() override;

  // Normalized input [B, P, N, C] (+ calendar features from `batch`) ->
  // normalized prediction [B, Q, N, C].
  virtual autograd::Variable Predict(const tensor::Tensor& x_norm,
                                     const data::Batch& batch) = 0;

  // Degraded-mode inference from a partially observed window: `keep_pos` is
  // [B, P, N] with 1 where the position was actually observed. The default
  // zeroes unobserved positions and runs the plain forecasting pass; models
  // trained to handle missing inputs (SSTBAN's masked-autoencoder branch)
  // override this to exclude masked positions structurally (mask tokens,
  // -inf attention keys) — the serving sanitizer routes flagged-missing
  // sensors through here instead of rejecting the request.
  virtual autograd::Variable PredictMasked(const tensor::Tensor& x_norm,
                                           const tensor::Tensor& keep_pos,
                                           const data::Batch& batch);

  // Training objective. The default is the paper's forecasting loss, mean
  // absolute error in normalized space; models with auxiliary objectives
  // (SSTBAN's self-supervised branch) override this.
  virtual autograd::Variable TrainingLoss(const tensor::Tensor& x_norm,
                                          const tensor::Tensor& y_norm,
                                          const data::Batch& batch);

  // Label-free training objective over the input window alone — no targets.
  // SSTBAN overrides this with its masked-reconstruction branch (mask the
  // window, re-encode, reconstruct the clean latent), which is what the
  // online adapter fine-tunes on when live drift is confirmed: future ground
  // truth is not yet observable, but the reconstruction objective is. The
  // default returns an undefined Variable, meaning the model has no
  // label-free objective and cannot be adapted online.
  virtual autograd::Variable SelfSupervisedLoss(const tensor::Tensor& x_norm,
                                                const data::Batch& batch);

  // False for closed-form models (HA, VAR) that skip the SGD loop.
  virtual bool IsTrainable() const { return true; }

  // One-shot fitting hook for non-gradient models; no-op by default.
  virtual void Fit(const data::WindowDataset& windows,
                   const std::vector<int64_t>& train_indices,
                   const data::Normalizer& normalizer);

  // The stochastic stream the model draws from inside TrainingLoss (e.g.
  // SSTBAN's per-step masking). The trainer checkpoints and restores it so
  // a resumed run replays the identical draw sequence; nullptr (the
  // default) when the training loss is deterministic.
  virtual core::Rng* TrainingRng() { return nullptr; }

  // Short display name for result tables.
  virtual std::string name() const = 0;

  // Whether the shape-specialized static executor (src/exec) may trace and
  // replay this model's serving forward. Models opt in explicitly: the
  // executor bakes every non-annotated leaf tensor as a constant, which is
  // only correct when the forward's request-dependent inputs are exactly the
  // annotated ones (x_norm, keep mask, calendar features).
  virtual bool SupportsStaticExecutor() const { return false; }

  // Lazily built per-model inference engine, or nullptr when the model does
  // not support the static executor. The engine — and every compiled
  // program's baked weight pointers — is owned by the model and dies with
  // it, so a registry hot-swap can never serve a torn or stale program: the
  // new model starts with an empty cache and retraces on first use.
  exec::InferenceEngine* inference_engine();

  // Numeric mode for the engine's compiled programs (default: what
  // SSTBAN_PRECISION resolves to). Takes effect on the next engine build —
  // call before the first inference_engine() use, or after a hot-swap.
  void set_inference_precision(exec::PrecisionMode mode);
  exec::PrecisionMode inference_precision() const;

 private:
  mutable std::mutex engine_mu_;
  std::unique_ptr<exec::InferenceEngine> engine_;
  exec::PrecisionMode precision_ = exec::ResolvePrecisionMode();
};

}  // namespace sstban::training

#endif  // SSTBAN_TRAINING_MODEL_H_

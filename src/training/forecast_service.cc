#include "training/forecast_service.h"

#include <cstdlib>
#include <cstring>

#include "autograd/variable.h"
#include "core/check.h"
#include "core/string_util.h"
#include "exec/engine.h"
#include "tensor/ops.h"

namespace sstban::training {

ExecutorMode ResolveExecutorMode(ExecutorMode mode) {
  if (mode != ExecutorMode::kAuto) return mode;
  static const ExecutorMode from_env = [] {
    const char* env = std::getenv("SSTBAN_EXECUTOR");
    if (env != nullptr && std::strcmp(env, "static") == 0) {
      return ExecutorMode::kStatic;
    }
    return ExecutorMode::kTape;
  }();
  return from_env;
}

namespace {

// Attempts the static-executor fast path. Returns true and fills `out` (still
// normalized) on success; false means "use the tape" — either the model never
// opted in or the executor failed (trace failpoint, unsupported op, poisoned
// shape), in which case the caller's tape forward is the answer.
bool TryStaticExecutor(TrafficModel* model, const tensor::Tensor& x_norm,
                       const tensor::Tensor* keep_pos, const data::Batch& batch,
                       ExecutorMode mode, tensor::Tensor* out) {
  if (ResolveExecutorMode(mode) != ExecutorMode::kStatic) return false;
  if (!model->SupportsStaticExecutor()) return false;
  exec::InferenceEngine* engine = model->inference_engine();
  if (engine == nullptr) return false;
  core::Status status =
      keep_pos != nullptr ? engine->RunMasked(x_norm, *keep_pos, batch, out)
                          : engine->Run(x_norm, batch, out);
  return status.ok();
}

}  // namespace

void AppendCalendarFeatures(int64_t first_step, int64_t input_len,
                            int64_t output_len, int64_t steps_per_day,
                            data::Batch* batch) {
  SSTBAN_CHECK_GT(steps_per_day, 0);
  auto calendar = [&](int64_t step, std::vector<int64_t>* tod,
                      std::vector<int64_t>* dow) {
    tod->push_back(step % steps_per_day);
    dow->push_back((step / steps_per_day) % 7);
  };
  for (int64_t p = 0; p < input_len; ++p) {
    calendar(first_step + p, &batch->tod_in, &batch->dow_in);
  }
  for (int64_t q = 0; q < output_len; ++q) {
    calendar(first_step + input_len + q, &batch->tod_out, &batch->dow_out);
  }
}

tensor::Tensor RunBatchedInference(TrafficModel* model,
                                   const data::Normalizer& normalizer,
                                   const data::Batch& batch,
                                   ExecutorMode mode) {
  SSTBAN_CHECK(model != nullptr);
  model->SetTraining(false);
  autograd::NoGradGuard no_grad;
  tensor::Tensor x_norm = normalizer.Transform(batch.x);
  tensor::Tensor fast;
  if (TryStaticExecutor(model, x_norm, nullptr, batch, mode, &fast)) {
    return normalizer.InverseTransform(fast);
  }
  autograd::Variable pred = model->Predict(x_norm, batch);
  return normalizer.InverseTransform(pred.value());
}

core::StatusOr<tensor::Tensor> RunBatchedInferenceMasked(
    TrafficModel* model, const data::Normalizer& normalizer,
    const data::Batch& batch, const tensor::Tensor& keep_pos,
    ExecutorMode mode) {
  SSTBAN_CHECK(model != nullptr);
  if (batch.x.rank() != 4) {
    return core::Status::InvalidArgument(core::StrFormat(
        "batch.x must be [B, P, N, C], got %s",
        batch.x.shape().ToString().c_str()));
  }
  // Validate the keep mask against the batch geometry *before* handing it to
  // the model: a mask traced against a different (P, N) would otherwise be
  // read out of range (or crash) deep inside PredictMasked.
  tensor::Shape want{batch.x.dim(0), batch.x.dim(1), batch.x.dim(2)};
  if (!(keep_pos.shape() == want)) {
    return core::Status::InvalidArgument(core::StrFormat(
        "keep mask shape %s does not match the batch's [B, P, N] = %s",
        keep_pos.shape().ToString().c_str(), want.ToString().c_str()));
  }
  model->SetTraining(false);
  autograd::NoGradGuard no_grad;
  tensor::Tensor x_norm = normalizer.Transform(batch.x);
  tensor::Tensor fast;
  if (TryStaticExecutor(model, x_norm, &keep_pos, batch, mode, &fast)) {
    return normalizer.InverseTransform(fast);
  }
  autograd::Variable pred = model->PredictMasked(x_norm, keep_pos, batch);
  return normalizer.InverseTransform(pred.value());
}

ForecastService::ForecastService(TrafficModel* model, data::Normalizer normalizer,
                                 int64_t input_len, int64_t output_len,
                                 int64_t steps_per_day, int64_t num_nodes,
                                 int64_t num_features)
    : model_(model),
      normalizer_(std::move(normalizer)),
      input_len_(input_len),
      output_len_(output_len),
      steps_per_day_(steps_per_day),
      num_nodes_(num_nodes),
      num_features_(num_features) {
  SSTBAN_CHECK(model != nullptr);
  SSTBAN_CHECK_GT(input_len, 0);
  SSTBAN_CHECK_GT(output_len, 0);
  SSTBAN_CHECK_GT(steps_per_day, 0);
}

core::StatusOr<tensor::Tensor> ForecastService::Forecast(
    const tensor::Tensor& recent, int64_t first_step) {
  if (recent.rank() != 3 || recent.dim(0) != input_len_) {
    return core::Status::InvalidArgument(core::StrFormat(
        "expected [%lld, N, C] recent window, got %s",
        static_cast<long long>(input_len_), recent.shape().ToString().c_str()));
  }
  if ((num_nodes_ >= 0 && recent.dim(1) != num_nodes_) ||
      (num_features_ >= 0 && recent.dim(2) != num_features_)) {
    std::string nodes_str =
        num_nodes_ >= 0 ? std::to_string(num_nodes_) : std::string("*");
    std::string feats_str =
        num_features_ >= 0 ? std::to_string(num_features_) : std::string("*");
    return core::Status::InvalidArgument(core::StrFormat(
        "window shape %s does not match the model's configured geometry "
        "[%lld, %s, %s]",
        recent.shape().ToString().c_str(), static_cast<long long>(input_len_),
        nodes_str.c_str(), feats_str.c_str()));
  }
  if (first_step < 0) {
    return core::Status::InvalidArgument("first_step must be >= 0");
  }
  // Strict finiteness: a single NaN/Inf reading would silently poison the
  // whole forward pass (and, on the batched path, everyone coalesced with
  // it). Degraded-mode inference for flagged-missing sensors lives in the
  // serving sanitizer; this single-request service always rejects.
  if (tensor::HasNonFinite(recent)) {
    return core::Status::InvalidArgument(
        "recent window contains NaN/Inf readings; clean the feed or use the "
        "serving path's degraded-mode inference");
  }
  int64_t nodes = recent.dim(1);
  int64_t feats = recent.dim(2);

  data::Batch batch;
  batch.x = recent.Reshape(tensor::Shape{1, input_len_, nodes, feats});
  batch.y = tensor::Tensor::Zeros(
      tensor::Shape{1, output_len_, nodes, feats});  // unused placeholder
  AppendCalendarFeatures(first_step, input_len_, output_len_, steps_per_day_,
                         &batch);

  tensor::Tensor denorm = RunBatchedInference(model_, normalizer_, batch);
  return denorm.Reshape(tensor::Shape{output_len_, nodes, feats});
}

}  // namespace sstban::training

#include "training/trainer.h"

#include <cstdio>

#include "autograd/ops.h"
#include "core/check.h"
#include "core/memory_tracker.h"
#include "core/rng.h"
#include "core/timer.h"
#include "optim/optimizer.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace sstban::training {

namespace {

// Deep-copies current parameter values (for best-epoch restoration). The
// copies are independent per parameter, so fan them out across the pool —
// best-epoch snapshots happen once per improving epoch on every model size.
std::vector<tensor::Tensor> SnapshotParams(
    const std::vector<autograd::Variable>& params) {
  std::vector<tensor::Tensor> snapshot(params.size());
  tensor::ParallelForEachIndex(
      static_cast<int64_t>(params.size()), [&](int64_t i) {
        snapshot[static_cast<size_t>(i)] =
            params[static_cast<size_t>(i)].value().Clone();
      });
  return snapshot;
}

void RestoreParams(std::vector<autograd::Variable>& params,
                   const std::vector<tensor::Tensor>& snapshot) {
  SSTBAN_CHECK_EQ(params.size(), snapshot.size());
  tensor::ParallelForEachIndex(
      static_cast<int64_t>(params.size()), [&](int64_t i) {
        params[static_cast<size_t>(i)].mutable_value().CopyFrom(
            snapshot[static_cast<size_t>(i)]);
      });
}

}  // namespace

TrainStats Trainer::Train(TrafficModel* model, const data::WindowDataset& windows,
                          const data::SplitIndices& split,
                          const data::Normalizer& normalizer) {
  SSTBAN_CHECK(model != nullptr);
  TrainStats stats;
  core::MemoryTracker::Global().ResetPeak();
  core::Timer total_timer;

  if (!model->IsTrainable()) {
    model->Fit(windows, split.train, normalizer);
    stats.epochs_run = 1;
    stats.total_train_seconds = total_timer.ElapsedSeconds();
    stats.seconds_per_epoch = stats.total_train_seconds;
    EvalResult val = Evaluate(model, windows, split.val, normalizer,
                              config_.batch_size, false,
                              config_.target_feature);
    stats.best_val_mae = val.overall.mae;
    stats.peak_memory_bytes = core::MemoryTracker::Global().peak_bytes();
    return stats;
  }

  std::vector<autograd::Variable> params = model->Parameters();
  optim::Adam optimizer(params, config_.learning_rate);
  optim::EarlyStopping early(config_.patience);
  core::Rng rng(config_.seed);
  std::vector<tensor::Tensor> best_params = SnapshotParams(params);
  double best_val = 1e30;

  std::vector<int64_t> order = split.train;
  for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
    model->SetTraining(true);
    if (config_.shuffle) rng.Shuffle(order);
    double epoch_loss = 0.0;
    int64_t num_batches = 0;
    for (size_t begin = 0; begin < order.size(); begin += config_.batch_size) {
      size_t end = std::min(begin + config_.batch_size, order.size());
      std::vector<int64_t> indices(order.begin() + begin, order.begin() + end);
      data::Batch batch = windows.MakeBatch(indices);
      tensor::Tensor x_norm = normalizer.Transform(batch.x);
      tensor::Tensor y_norm = normalizer.Transform(batch.y);
      autograd::Variable loss = model->TrainingLoss(x_norm, y_norm, batch);
      model->ZeroGrad();
      loss.Backward();
      optim::ClipGradNorm(params, config_.grad_clip);
      optimizer.Step();
      epoch_loss += loss.item();
      ++num_batches;
    }
    epoch_loss /= static_cast<double>(num_batches);
    stats.epoch_train_loss.push_back(epoch_loss);
    ++stats.epochs_run;

    EvalResult val = Evaluate(model, windows, split.val, normalizer,
                              config_.batch_size, false,
                              config_.target_feature);
    if (config_.verbose) {
      std::printf("[%s] epoch %d  train loss %.4f  val %s\n",
                  model->name().c_str(), epoch, epoch_loss,
                  val.overall.ToString().c_str());
    }
    if (val.overall.mae < best_val) {
      best_val = val.overall.mae;
      best_params = SnapshotParams(params);
    }
    if (early.Update(static_cast<float>(val.overall.mae))) break;
  }

  RestoreParams(params, best_params);
  stats.best_val_mae = best_val;
  stats.total_train_seconds = total_timer.ElapsedSeconds();
  stats.seconds_per_epoch =
      stats.total_train_seconds / std::max(stats.epochs_run, 1);
  stats.peak_memory_bytes = core::MemoryTracker::Global().peak_bytes();
  return stats;
}

EvalResult Evaluate(TrafficModel* model, const data::WindowDataset& windows,
                    const std::vector<int64_t>& indices,
                    const data::Normalizer& normalizer, int64_t batch_size,
                    bool per_horizon, int target_feature) {
  SSTBAN_CHECK(!indices.empty());
  model->SetTraining(false);
  autograd::NoGradGuard no_grad;
  int64_t horizon = windows.output_len();
  MetricsAccumulator overall;
  std::vector<MetricsAccumulator> horizon_acc;
  if (per_horizon) {
    horizon_acc.assign(static_cast<size_t>(horizon), MetricsAccumulator());
  }
  core::Timer timer;
  double inference_seconds = 0.0;
  for (size_t begin = 0; begin < indices.size();
       begin += static_cast<size_t>(batch_size)) {
    size_t end = std::min(begin + static_cast<size_t>(batch_size), indices.size());
    std::vector<int64_t> batch_indices(indices.begin() + begin,
                                       indices.begin() + end);
    data::Batch batch = windows.MakeBatch(batch_indices);
    tensor::Tensor x_norm = normalizer.Transform(batch.x);
    core::Timer inf;
    autograd::Variable pred = model->Predict(x_norm, batch);
    inference_seconds += inf.ElapsedSeconds();
    tensor::Tensor denorm = normalizer.InverseTransform(pred.value());
    tensor::Tensor truth = batch.y;
    if (target_feature >= 0) {
      denorm = tensor::Slice(denorm, -1, target_feature, 1);
      truth = tensor::Slice(truth, -1, target_feature, 1);
    }
    overall.Add(denorm, truth);
    if (per_horizon) {
      for (int64_t q = 0; q < horizon; ++q) {
        horizon_acc[q].Add(tensor::Slice(denorm, 1, q, 1),
                           tensor::Slice(truth, 1, q, 1));
      }
    }
  }
  EvalResult result;
  result.overall = overall.Compute();
  result.inference_seconds = inference_seconds;
  if (per_horizon) {
    for (auto& acc : horizon_acc) result.per_horizon.push_back(acc.Compute());
  }
  return result;
}

}  // namespace sstban::training

#include "training/trainer.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "autograd/ops.h"
#include "core/check.h"
#include "core/failpoint.h"
#include "core/memory_tracker.h"
#include "core/rng.h"
#include "core/timer.h"
#include "optim/optimizer.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"
#include "training/checkpoint.h"

namespace sstban::training {

namespace {

// Deep-copies current parameter values (for best-epoch restoration). The
// copies are independent per parameter, so fan them out across the pool —
// best-epoch snapshots happen once per improving epoch on every model size.
std::vector<tensor::Tensor> SnapshotParams(
    const std::vector<autograd::Variable>& params) {
  std::vector<tensor::Tensor> snapshot(params.size());
  tensor::ParallelForEachIndex(
      static_cast<int64_t>(params.size()), [&](int64_t i) {
        snapshot[static_cast<size_t>(i)] =
            params[static_cast<size_t>(i)].value().Clone();
      });
  return snapshot;
}

void RestoreParams(std::vector<autograd::Variable>& params,
                   const std::vector<tensor::Tensor>& snapshot) {
  SSTBAN_CHECK_EQ(params.size(), snapshot.size());
  tensor::ParallelForEachIndex(
      static_cast<int64_t>(params.size()), [&](int64_t i) {
        params[static_cast<size_t>(i)].mutable_value().CopyFrom(
            snapshot[static_cast<size_t>(i)]);
      });
}

// A checkpoint is only resumable into a run with the identical model
// architecture (names + shapes), the same train split, and the same
// model-side stochastic setup. Anything else gets a fresh start.
bool CheckpointMatchesRun(
    const TrainCheckpoint& ckpt,
    const std::vector<std::pair<std::string, autograd::Variable>>& named,
    const std::vector<int64_t>& train_indices, bool model_has_rng) {
  if (ckpt.has_model_rng != model_has_rng) return false;
  if (ckpt.params.size() != named.size()) return false;
  for (size_t i = 0; i < named.size(); ++i) {
    if (ckpt.params[i].first != named[i].first ||
        ckpt.params[i].second.shape() != named[i].second.shape()) {
      return false;
    }
  }
  if (ckpt.order.size() != train_indices.size()) return false;
  std::vector<int64_t> a = ckpt.order;
  std::vector<int64_t> b = train_indices;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

}  // namespace

TrainStats Trainer::Train(TrafficModel* model, const data::WindowDataset& windows,
                          const data::SplitIndices& split,
                          const data::Normalizer& normalizer) {
  SSTBAN_CHECK(model != nullptr);
  TrainStats stats;
  core::MemoryTracker::Global().ResetPeak();
  core::Timer total_timer;

  if (!model->IsTrainable()) {
    model->Fit(windows, split.train, normalizer);
    stats.epochs_run = 1;
    stats.total_train_seconds = total_timer.ElapsedSeconds();
    stats.seconds_per_epoch = stats.total_train_seconds;
    EvalResult val = Evaluate(model, windows, split.val, normalizer,
                              config_.batch_size, false,
                              config_.target_feature);
    stats.best_val_mae = val.overall.mae;
    stats.peak_memory_bytes = core::MemoryTracker::Global().peak_bytes();
    return stats;
  }

  std::vector<autograd::Variable> params = model->Parameters();
  auto named = model->NamedParameters();
  optim::Adam optimizer(params, config_.learning_rate);
  optim::EarlyStopping early(config_.patience);
  core::Rng rng(config_.seed);
  std::vector<tensor::Tensor> best_params = SnapshotParams(params);
  double best_val = 1e30;
  std::vector<int64_t> order = split.train;
  int start_epoch = 0;

  if (!config_.checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.checkpoint_dir, ec);
    if (ec) {
      std::fprintf(stderr, "[checkpoint] cannot create %s: %s (continuing)\n",
                   config_.checkpoint_dir.c_str(), ec.message().c_str());
    }
  }
  if (!config_.checkpoint_dir.empty() && config_.resume) {
    TrainCheckpoint ckpt;
    std::string from;
    core::Status status =
        LoadNewestValidTrainCheckpoint(config_.checkpoint_dir, &ckpt, &from);
    if (status.ok()) {
      if (CheckpointMatchesRun(ckpt, named, split.train,
                               model->TrainingRng() != nullptr)) {
        for (size_t i = 0; i < named.size(); ++i) {
          named[i].second.mutable_value().CopyFrom(ckpt.params[i].second);
        }
        optimizer.RestoreState(ckpt.adam_step, ckpt.adam_m, ckpt.adam_v);
        early.RestoreState(ckpt.early_best, ckpt.early_stale);
        rng.RestoreState(ckpt.shuffle_rng);
        if (ckpt.has_model_rng) {
          model->TrainingRng()->RestoreState(ckpt.model_rng);
        }
        best_params = std::move(ckpt.best_params);
        best_val = ckpt.best_val;
        order = std::move(ckpt.order);
        stats.epoch_train_loss = std::move(ckpt.epoch_train_loss);
        start_epoch = ckpt.next_epoch;
        stats.epochs_run = start_epoch;
        stats.start_epoch = start_epoch;
        stats.resumed_from = from;
        if (config_.verbose) {
          std::printf("[%s] resumed from %s (next epoch %d)\n",
                      model->name().c_str(), from.c_str(), start_epoch);
        }
        // The interrupted run may already have exhausted its patience (or
        // its epoch budget); in that case the loop below must not run at
        // all, exactly as it would not have continued uninterrupted.
        if (early.epochs_since_best() >= config_.patience) {
          start_epoch = config_.max_epochs;
        }
      } else {
        std::fprintf(stderr,
                     "[checkpoint] %s is incompatible with this run "
                     "(architecture or split changed); starting fresh\n",
                     from.c_str());
      }
    } else if (status.code() != core::StatusCode::kNotFound) {
      std::fprintf(stderr, "[checkpoint] resume scan failed: %s\n",
                   status.ToString().c_str());
    }
  }

  auto write_checkpoint = [&](int next_epoch) {
    TrainCheckpoint ckpt;
    ckpt.next_epoch = next_epoch;
    ckpt.global_step = optimizer.step_count();
    ckpt.shuffle_rng = rng.SaveState();
    if (core::Rng* model_rng = model->TrainingRng()) {
      ckpt.has_model_rng = true;
      ckpt.model_rng = model_rng->SaveState();
    }
    ckpt.best_val = best_val;
    ckpt.early_best = early.best_metric();
    ckpt.early_stale = early.epochs_since_best();
    ckpt.epoch_train_loss = stats.epoch_train_loss;
    ckpt.order = order;
    ckpt.params.reserve(named.size());
    for (const auto& [name, param] : named) {
      ckpt.params.emplace_back(name, param.value());  // shares storage
    }
    ckpt.adam_step = optimizer.step_count();
    ckpt.adam_m = optimizer.first_moments();
    ckpt.adam_v = optimizer.second_moments();
    ckpt.best_params = best_params;
    std::string path = config_.checkpoint_dir + "/" +
                       TrainCheckpointFileName(next_epoch);
    core::Status status = SaveTrainCheckpoint(path, ckpt);
    if (!status.ok()) {
      // Checkpointing is a safety net, not a dependency: a full disk or an
      // injected I/O fault must not kill a healthy training run.
      std::fprintf(stderr, "[checkpoint] write failed (continuing): %s\n",
                   status.ToString().c_str());
    }
  };

  for (int epoch = start_epoch; epoch < config_.max_epochs; ++epoch) {
    model->SetTraining(true);
    if (config_.shuffle) rng.Shuffle(order);
    double epoch_loss = 0.0;
    int64_t num_batches = 0;
    for (size_t begin = 0; begin < order.size(); begin += config_.batch_size) {
      size_t end = std::min(begin + config_.batch_size, order.size());
      std::vector<int64_t> indices(order.begin() + begin, order.begin() + end);
      data::Batch batch = windows.MakeBatch(indices);
      tensor::Tensor x_norm = normalizer.Transform(batch.x);
      tensor::Tensor y_norm = normalizer.Transform(batch.y);
      autograd::Variable loss = model->TrainingLoss(x_norm, y_norm, batch);
      model->ZeroGrad();
      loss.Backward();
      optim::ClipGradNorm(params, config_.grad_clip);
      optimizer.Step();
      epoch_loss += loss.item();
      ++num_batches;
    }
    epoch_loss /= static_cast<double>(num_batches);
    stats.epoch_train_loss.push_back(epoch_loss);
    ++stats.epochs_run;

    EvalResult val = Evaluate(model, windows, split.val, normalizer,
                              config_.batch_size, false,
                              config_.target_feature);
    if (config_.verbose) {
      std::printf("[%s] epoch %d  train loss %.4f  val %s\n",
                  model->name().c_str(), epoch, epoch_loss,
                  val.overall.ToString().c_str());
    }
    if (val.overall.mae < best_val) {
      best_val = val.overall.mae;
      best_params = SnapshotParams(params);
    }
    bool stop_early = early.Update(static_cast<float>(val.overall.mae));
    bool stop_requested =
        config_.stop_requested != nullptr && config_.stop_requested();
    bool last_epoch = epoch + 1 >= config_.max_epochs;
    if (!config_.checkpoint_dir.empty() &&
        ((epoch + 1) % std::max(config_.checkpoint_every_epochs, 1) == 0 ||
         stop_early || stop_requested || last_epoch)) {
      // The cadence is in *absolute* epochs so a resumed run writes the
      // same checkpoint files an uninterrupted one would.
      write_checkpoint(epoch + 1);
    }
    SSTBAN_FAILPOINT_NOTIFY("train_epoch_end");
    if (stop_requested) {
      stats.stopped_by_request = true;
      break;
    }
    if (stop_early) break;
  }

  RestoreParams(params, best_params);
  stats.best_val_mae = best_val;
  stats.total_train_seconds = total_timer.ElapsedSeconds();
  stats.seconds_per_epoch =
      stats.total_train_seconds / std::max(stats.epochs_run, 1);
  stats.peak_memory_bytes = core::MemoryTracker::Global().peak_bytes();
  return stats;
}

EvalResult Evaluate(TrafficModel* model, const data::WindowDataset& windows,
                    const std::vector<int64_t>& indices,
                    const data::Normalizer& normalizer, int64_t batch_size,
                    bool per_horizon, int target_feature) {
  SSTBAN_CHECK(!indices.empty());
  model->SetTraining(false);
  autograd::NoGradGuard no_grad;
  int64_t horizon = windows.output_len();
  MetricsAccumulator overall;
  std::vector<MetricsAccumulator> horizon_acc;
  if (per_horizon) {
    horizon_acc.assign(static_cast<size_t>(horizon), MetricsAccumulator());
  }
  core::Timer timer;
  double inference_seconds = 0.0;
  for (size_t begin = 0; begin < indices.size();
       begin += static_cast<size_t>(batch_size)) {
    size_t end = std::min(begin + static_cast<size_t>(batch_size), indices.size());
    std::vector<int64_t> batch_indices(indices.begin() + begin,
                                       indices.begin() + end);
    data::Batch batch = windows.MakeBatch(batch_indices);
    tensor::Tensor x_norm = normalizer.Transform(batch.x);
    core::Timer inf;
    autograd::Variable pred = model->Predict(x_norm, batch);
    inference_seconds += inf.ElapsedSeconds();
    tensor::Tensor denorm = normalizer.InverseTransform(pred.value());
    tensor::Tensor truth = batch.y;
    if (target_feature >= 0) {
      denorm = tensor::Slice(denorm, -1, target_feature, 1);
      truth = tensor::Slice(truth, -1, target_feature, 1);
    }
    overall.Add(denorm, truth);
    if (per_horizon) {
      for (int64_t q = 0; q < horizon; ++q) {
        horizon_acc[q].Add(tensor::Slice(denorm, 1, q, 1),
                           tensor::Slice(truth, 1, q, 1));
      }
    }
  }
  EvalResult result;
  result.overall = overall.Compute();
  result.inference_seconds = inference_seconds;
  if (per_horizon) {
    for (auto& acc : horizon_acc) result.per_horizon.push_back(acc.Compute());
  }
  return result;
}

}  // namespace sstban::training

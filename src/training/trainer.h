#ifndef SSTBAN_TRAINING_TRAINER_H_
#define SSTBAN_TRAINING_TRAINER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/normalizer.h"
#include "training/metrics.h"
#include "training/model.h"

namespace sstban::training {

struct TrainerConfig {
  int max_epochs = 30;
  int patience = 5;        // the paper's early-stopping patience
  int64_t batch_size = 4;  // the paper's batch size
  float learning_rate = 1e-3f;  // the paper's learning rate
  float grad_clip = 5.0f;
  bool shuffle = true;
  uint64_t seed = 7;
  bool verbose = false;
  // Feature channel metrics are computed on (-1 = all channels). The
  // Seattle scenarios input (flow, speed, occupancy) but report *speed*
  // errors, i.e. target_feature = 1.
  int target_feature = -1;

  // Crash-safe resumable training. When `checkpoint_dir` is non-empty,
  // Train writes a TrainCheckpoint there every `checkpoint_every_epochs`
  // epochs (atomic write, CRC footer) plus at the final epoch, and — unless
  // `resume` is false — starts by restoring the newest *valid* checkpoint
  // in the directory (corrupt ones are skipped with a warning). Resume is
  // bitwise: the continued run produces parameters identical to an
  // uninterrupted one. A failed checkpoint write is a warning, not a
  // training failure.
  std::string checkpoint_dir;
  int checkpoint_every_epochs = 1;
  bool resume = true;

  // Cooperative shutdown hook, polled at each epoch boundary (e.g. wired to
  // a SIGINT flag). When it returns true, Train checkpoints (if configured)
  // and returns cleanly with best-epoch weights restored.
  std::function<bool()> stop_requested;
};

// Timing / footprint record for the Table VII computation-cost comparison.
struct TrainStats {
  int epochs_run = 0;
  double total_train_seconds = 0.0;
  double seconds_per_epoch = 0.0;
  double best_val_mae = 0.0;
  int64_t peak_memory_bytes = 0;
  std::vector<double> epoch_train_loss;
  // Resume diagnostics: the epoch this run started from (0 = fresh) and the
  // checkpoint it restored, if any. Timing fields cover the current process
  // only; epochs_run and epoch_train_loss span the whole logical run.
  int start_epoch = 0;
  std::string resumed_from;
  // True when config.stop_requested interrupted the run at an epoch
  // boundary before max_epochs / early stopping ended it.
  bool stopped_by_request = false;
};

struct EvalResult {
  Metrics overall;
  // Metrics at each forecast step 1..Q (Fig. 4's horizon curves); filled
  // only when requested.
  std::vector<Metrics> per_horizon;
  double inference_seconds = 0.0;
};

// Mini-batch gradient trainer implementing the paper's protocol: Adam at
// lr 1e-3, batch size 4, early stopping on validation MAE with patience 5,
// best-epoch weights restored at the end. Non-trainable models (HA, VAR)
// are fitted in closed form instead.
class Trainer {
 public:
  explicit Trainer(TrainerConfig config) : config_(config) {}

  TrainStats Train(TrafficModel* model, const data::WindowDataset& windows,
                   const data::SplitIndices& split,
                   const data::Normalizer& normalizer);

  const TrainerConfig& config() const { return config_; }

 private:
  TrainerConfig config_;
};

// Runs the model over the given windows and aggregates denormalized
// metrics. Gradients are disabled for the duration.
EvalResult Evaluate(TrafficModel* model, const data::WindowDataset& windows,
                    const std::vector<int64_t>& indices,
                    const data::Normalizer& normalizer, int64_t batch_size,
                    bool per_horizon = false, int target_feature = -1);

}  // namespace sstban::training

#endif  // SSTBAN_TRAINING_TRAINER_H_

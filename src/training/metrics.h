#ifndef SSTBAN_TRAINING_METRICS_H_
#define SSTBAN_TRAINING_METRICS_H_

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace sstban::training {

// The paper's three evaluation metrics, computed on denormalized values.
struct Metrics {
  double mae = 0.0;
  double rmse = 0.0;
  double mape = 0.0;  // percent

  std::string ToString() const;
};

// Streaming accumulator so metrics can be aggregated across batches (and
// per forecast horizon for the Fig. 4 curves). MAPE follows the standard
// traffic-forecasting convention of skipping near-zero ground truths.
class MetricsAccumulator {
 public:
  explicit MetricsAccumulator(double mape_threshold = 1e-1);

  // Accumulates elementwise errors; shapes must match.
  void Add(const tensor::Tensor& prediction, const tensor::Tensor& truth);

  Metrics Compute() const;
  int64_t count() const { return count_; }

 private:
  double mape_threshold_;
  double abs_sum_ = 0.0;
  double sq_sum_ = 0.0;
  double ape_sum_ = 0.0;
  int64_t count_ = 0;
  int64_t ape_count_ = 0;
};

}  // namespace sstban::training

#endif  // SSTBAN_TRAINING_METRICS_H_

#include "training/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "core/crc32.h"
#include "core/failpoint.h"
#include "core/file_io.h"
#include "core/string_util.h"
#include "nn/serialization.h"

namespace sstban::training {

namespace {

constexpr char kMagic[4] = {'S', 'S', 'T', 'T'};
constexpr uint32_t kVersion = 1;
constexpr size_t kFooterBytes = sizeof(uint32_t);
constexpr char kPrefix[] = "train_epoch_";
constexpr char kSuffix[] = ".ckpt";

void AppendRngState(core::BufferWriter& w, const core::Rng::State& s) {
  w.Pod(s.state);
  w.Pod(s.inc);
  w.Pod(static_cast<uint8_t>(s.has_spare ? 1 : 0));
  w.Pod(s.spare);
}

bool ReadRngState(core::BufferReader& r, core::Rng::State* s) {
  uint8_t has_spare = 0;
  if (!r.Pod(&s->state) || !r.Pod(&s->inc) || !r.Pod(&has_spare) ||
      !r.Pod(&s->spare)) {
    return false;
  }
  s->has_spare = has_spare != 0;
  return true;
}

core::Status Corrupt(const std::string& what, const std::string& path) {
  return core::Status::IoError("corrupt train checkpoint (" + what +
                               "): " + path);
}

}  // namespace

core::Status SaveTrainCheckpoint(const std::string& path,
                                 const TrainCheckpoint& state) {
  core::BufferWriter w;
  w.Bytes(kMagic, sizeof(kMagic));
  w.Pod(kVersion);
  w.Pod(state.next_epoch);
  w.Pod(state.global_step);
  AppendRngState(w, state.shuffle_rng);
  w.Pod(static_cast<uint8_t>(state.has_model_rng ? 1 : 0));
  AppendRngState(w, state.model_rng);
  w.Pod(state.best_val);
  w.Pod(state.early_best);
  w.Pod(state.early_stale);
  w.Pod(static_cast<uint64_t>(state.epoch_train_loss.size()));
  for (double loss : state.epoch_train_loss) w.Pod(loss);
  w.Pod(static_cast<uint64_t>(state.order.size()));
  for (int64_t idx : state.order) w.Pod(idx);
  w.Pod(static_cast<uint64_t>(state.params.size()));
  for (const auto& [name, value] : state.params) {
    w.Pod(static_cast<uint64_t>(name.size()));
    w.Bytes(name.data(), name.size());
    nn::AppendTensor(w, value);
  }
  w.Pod(state.adam_step);
  for (const auto& t : state.adam_m) nn::AppendTensor(w, t);
  for (const auto& t : state.adam_v) nn::AppendTensor(w, t);
  for (const auto& t : state.best_params) nn::AppendTensor(w, t);
  w.Pod(core::Crc32(w.str().data(), w.str().size()));
  return core::WriteFileAtomic(path, w.str());
}

core::Status LoadTrainCheckpoint(const std::string& path,
                                 TrainCheckpoint* state) {
  std::string blob;
  SSTBAN_RETURN_IF_ERROR(core::ReadFileToString(path, &blob));
  if (blob.size() < sizeof(kMagic) + sizeof(uint32_t) + kFooterBytes) {
    return Corrupt("too small", path);
  }
  // Verify the footer before trusting any field: a torn or bit-flipped
  // record must be rejected wholesale, not half-applied.
  uint32_t stored = 0;
  std::memcpy(&stored, blob.data() + blob.size() - kFooterBytes, kFooterBytes);
  uint32_t actual = core::Crc32(blob.data(), blob.size() - kFooterBytes);
  if (stored != actual) return Corrupt("checksum mismatch", path);

  core::BufferReader r(
      std::string_view(blob.data(), blob.size() - kFooterBytes));
  char magic[4];
  if (!r.Bytes(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt("bad magic", path);
  }
  uint32_t version = 0;
  if (!r.Pod(&version) || version != kVersion) {
    return Corrupt(core::StrFormat("unsupported version %u", version), path);
  }
  TrainCheckpoint out;
  uint8_t has_model_rng = 0;
  if (!r.Pod(&out.next_epoch) || !r.Pod(&out.global_step) ||
      !ReadRngState(r, &out.shuffle_rng) || !r.Pod(&has_model_rng) ||
      !ReadRngState(r, &out.model_rng) || !r.Pod(&out.best_val) ||
      !r.Pod(&out.early_best) || !r.Pod(&out.early_stale)) {
    return Corrupt("truncated header", path);
  }
  out.has_model_rng = has_model_rng != 0;
  if (out.next_epoch < 0 || out.global_step < 0 || out.early_stale < 0) {
    return Corrupt("negative counters", path);
  }
  uint64_t n_loss = 0;
  if (!r.Pod(&n_loss) || n_loss > r.remaining() / sizeof(double)) {
    return Corrupt("loss history", path);
  }
  out.epoch_train_loss.resize(n_loss);
  for (auto& loss : out.epoch_train_loss) {
    if (!r.Pod(&loss)) return Corrupt("loss history", path);
  }
  uint64_t n_order = 0;
  if (!r.Pod(&n_order) || n_order > r.remaining() / sizeof(int64_t)) {
    return Corrupt("shuffle order", path);
  }
  out.order.resize(n_order);
  for (auto& idx : out.order) {
    if (!r.Pod(&idx)) return Corrupt("shuffle order", path);
  }
  uint64_t n_params = 0;
  if (!r.Pod(&n_params) || n_params > r.remaining()) {
    return Corrupt("parameter count", path);
  }
  out.params.resize(n_params);
  for (auto& [name, value] : out.params) {
    uint64_t name_len = 0;
    if (!r.Pod(&name_len) || name_len > 4096) {
      return Corrupt("parameter name", path);
    }
    name.resize(name_len);
    if (!r.Bytes(name.data(), name_len)) {
      return Corrupt("parameter name", path);
    }
    if (!nn::ReadTensor(r, &value).ok()) {
      return Corrupt("parameter '" + name + "'", path);
    }
  }
  if (!r.Pod(&out.adam_step) || out.adam_step < 0) {
    return Corrupt("adam step", path);
  }
  auto read_mirrored = [&](std::vector<tensor::Tensor>* list,
                           const char* what) -> core::Status {
    list->resize(n_params);
    for (uint64_t i = 0; i < n_params; ++i) {
      if (!nn::ReadTensor(r, &(*list)[i]).ok() ||
          (*list)[i].shape() != out.params[i].second.shape()) {
        return Corrupt(std::string(what) + " tensors", path);
      }
    }
    return core::Status::Ok();
  };
  SSTBAN_RETURN_IF_ERROR(read_mirrored(&out.adam_m, "adam m"));
  SSTBAN_RETURN_IF_ERROR(read_mirrored(&out.adam_v, "adam v"));
  SSTBAN_RETURN_IF_ERROR(read_mirrored(&out.best_params, "best-epoch"));
  if (!r.AtEnd()) return Corrupt("trailing bytes", path);
  *state = std::move(out);
  return core::Status::Ok();
}

std::string TrainCheckpointFileName(int epoch) {
  return core::StrFormat("%s%06d%s", kPrefix, epoch, kSuffix);
}

std::vector<std::string> ListTrainCheckpoints(const std::string& dir) {
  namespace fs = std::filesystem;
  std::vector<std::string> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    std::string name = entry.path().filename().string();
    if (name.rfind(kPrefix, 0) == 0 &&
        name.size() > std::strlen(kSuffix) &&
        name.compare(name.size() - std::strlen(kSuffix), std::strlen(kSuffix),
                     kSuffix) == 0) {
      found.push_back(entry.path().string());
    }
  }
  // Zero-padded epoch numbers make lexical descending == newest first.
  std::sort(found.rbegin(), found.rend());
  return found;
}

core::Status LoadNewestValidTrainCheckpoint(const std::string& dir,
                                            TrainCheckpoint* state,
                                            std::string* path_out) {
  for (const std::string& path : ListTrainCheckpoints(dir)) {
    core::Status status = LoadTrainCheckpoint(path, state);
    if (status.ok()) {
      if (path_out != nullptr) *path_out = path;
      return core::Status::Ok();
    }
    std::fprintf(stderr,
                 "[checkpoint] skipping invalid checkpoint: %s\n",
                 status.ToString().c_str());
  }
  return core::Status::NotFound("no valid train checkpoint in " + dir);
}

}  // namespace sstban::training

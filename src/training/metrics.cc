#include "training/metrics.h"

#include <cmath>

#include "core/check.h"
#include "core/string_util.h"

namespace sstban::training {

std::string Metrics::ToString() const {
  return core::StrFormat("MAE %.3f  RMSE %.3f  MAPE %.2f%%", mae, rmse, mape);
}

MetricsAccumulator::MetricsAccumulator(double mape_threshold)
    : mape_threshold_(mape_threshold) {}

void MetricsAccumulator::Add(const tensor::Tensor& prediction,
                             const tensor::Tensor& truth) {
  SSTBAN_CHECK(prediction.shape() == truth.shape())
      << prediction.shape().ToString() << "vs" << truth.shape().ToString();
  const float* pp = prediction.data();
  const float* pt = truth.data();
  for (int64_t i = 0; i < prediction.size(); ++i) {
    double err = static_cast<double>(pp[i]) - pt[i];
    abs_sum_ += std::fabs(err);
    sq_sum_ += err * err;
    if (std::fabs(pt[i]) > mape_threshold_) {
      ape_sum_ += std::fabs(err) / std::fabs(pt[i]);
      ++ape_count_;
    }
  }
  count_ += prediction.size();
}

Metrics MetricsAccumulator::Compute() const {
  SSTBAN_CHECK_GT(count_, 0);
  Metrics m;
  m.mae = abs_sum_ / static_cast<double>(count_);
  m.rmse = std::sqrt(sq_sum_ / static_cast<double>(count_));
  m.mape = ape_count_ > 0 ? 100.0 * ape_sum_ / static_cast<double>(ape_count_) : 0.0;
  return m;
}

}  // namespace sstban::training

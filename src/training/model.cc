#include "training/model.h"

#include <utility>

#include "autograd/ops.h"
#include "core/check.h"
#include "exec/engine.h"

namespace sstban::training {

TrafficModel::TrafficModel() = default;
TrafficModel::~TrafficModel() = default;

exec::InferenceEngine* TrafficModel::inference_engine() {
  if (!SupportsStaticExecutor()) return nullptr;
  std::lock_guard<std::mutex> lock(engine_mu_);
  if (engine_ == nullptr) {
    exec::EngineConfig config;
    config.forward = [this](const tensor::Tensor& x_norm,
                            const data::Batch& batch) {
      return Predict(x_norm, batch);
    };
    config.masked_forward = [this](const tensor::Tensor& x_norm,
                                   const tensor::Tensor& keep_pos,
                                   const data::Batch& batch) {
      return PredictMasked(x_norm, keep_pos, batch);
    };
    for (const autograd::Variable& p : Parameters()) {
      config.parameters.push_back(p.value());
    }
    config.precision = precision_;
    engine_ = std::make_unique<exec::InferenceEngine>(std::move(config));
  }
  return engine_.get();
}

void TrafficModel::set_inference_precision(exec::PrecisionMode mode) {
  std::lock_guard<std::mutex> lock(engine_mu_);
  if (mode != precision_) {
    precision_ = mode;
    // Drop any engine built with the old mode; the next inference_engine()
    // call rebuilds with an empty cache and the new precision.
    engine_.reset();
  }
}

exec::PrecisionMode TrafficModel::inference_precision() const {
  std::lock_guard<std::mutex> lock(engine_mu_);
  return precision_;
}

autograd::Variable TrafficModel::PredictMasked(const tensor::Tensor& x_norm,
                                               const tensor::Tensor& keep_pos,
                                               const data::Batch& batch) {
  SSTBAN_CHECK_EQ(x_norm.rank(), 4);
  SSTBAN_CHECK(keep_pos.shape() == (tensor::Shape{x_norm.dim(0), x_norm.dim(1),
                                                  x_norm.dim(2)}))
      << "keep_pos " << keep_pos.shape().ToString() << " for input "
      << x_norm.shape().ToString();
  tensor::Tensor channel_mask = keep_pos.Reshape(
      tensor::Shape{x_norm.dim(0), x_norm.dim(1), x_norm.dim(2), 1});
  autograd::Variable masked = autograd::Mul(
      autograd::Variable(x_norm), autograd::Variable(channel_mask));
  return Predict(masked.value(), batch);
}

autograd::Variable TrafficModel::TrainingLoss(const tensor::Tensor& x_norm,
                                              const tensor::Tensor& y_norm,
                                              const data::Batch& batch) {
  autograd::Variable pred = Predict(x_norm, batch);
  autograd::Variable target(y_norm, /*requires_grad=*/false);
  return autograd::MaeLoss(pred, target);
}

autograd::Variable TrafficModel::SelfSupervisedLoss(
    const tensor::Tensor& x_norm, const data::Batch& batch) {
  (void)x_norm;
  (void)batch;
  return {};
}

void TrafficModel::Fit(const data::WindowDataset& windows,
                       const std::vector<int64_t>& train_indices,
                       const data::Normalizer& normalizer) {
  (void)windows;
  (void)train_indices;
  (void)normalizer;
}

}  // namespace sstban::training

#include "training/model.h"

#include "autograd/ops.h"

namespace sstban::training {

autograd::Variable TrafficModel::TrainingLoss(const tensor::Tensor& x_norm,
                                              const tensor::Tensor& y_norm,
                                              const data::Batch& batch) {
  autograd::Variable pred = Predict(x_norm, batch);
  autograd::Variable target(y_norm, /*requires_grad=*/false);
  return autograd::MaeLoss(pred, target);
}

void TrafficModel::Fit(const data::WindowDataset& windows,
                       const std::vector<int64_t>& train_indices,
                       const data::Normalizer& normalizer) {
  (void)windows;
  (void)train_indices;
  (void)normalizer;
}

}  // namespace sstban::training

#ifndef SSTBAN_TRAINING_CHECKPOINT_H_
#define SSTBAN_TRAINING_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/rng.h"
#include "core/status.h"
#include "tensor/tensor.h"

namespace sstban::training {

// Everything Trainer::Train needs to continue a run at an epoch boundary
// exactly as if it had never stopped: model weights, the full Adam state,
// both RNG streams, the cumulative shuffle order, the early-stopping
// counters, and the best-epoch snapshot. The contract (pinned by the
// kill-and-resume tests) is *bitwise* resume: an interrupted-and-resumed
// run produces final parameters identical to an uninterrupted one.
//
// On disk: magic "SSTT" | uint32 version | record fields | uint32 CRC32
// over every preceding byte, written via core::WriteFileAtomic. Timing
// stats are deliberately excluded so checkpoint files from equivalent runs
// are byte-comparable.
struct TrainCheckpoint {
  int32_t next_epoch = 0;   // first epoch the resumed run should execute
  int64_t global_step = 0;  // optimizer steps taken so far

  core::Rng::State shuffle_rng;  // the trainer's shuffle stream
  bool has_model_rng = false;    // model-internal stream (SSTBAN masking)
  core::Rng::State model_rng;

  double best_val = 1e30;  // best validation MAE so far
  float early_best = 0.0f;
  int32_t early_stale = 0;

  std::vector<double> epoch_train_loss;
  std::vector<int64_t> order;  // cumulative shuffle order (loop-carried)

  std::vector<std::pair<std::string, tensor::Tensor>> params;
  int64_t adam_step = 0;
  std::vector<tensor::Tensor> adam_m;  // shapes mirror `params`
  std::vector<tensor::Tensor> adam_v;
  std::vector<tensor::Tensor> best_params;
};

core::Status SaveTrainCheckpoint(const std::string& path,
                                 const TrainCheckpoint& state);

// Parses and checksum-verifies; also validates the internal invariants
// (moment/best tensor lists mirror `params` in count and shape) so callers
// can trust the record wholesale.
core::Status LoadTrainCheckpoint(const std::string& path,
                                 TrainCheckpoint* state);

// "train_epoch_000007.ckpt" — zero-padded so lexical order == epoch order.
std::string TrainCheckpointFileName(int epoch);

// Absolute paths of all train checkpoints in `dir`, newest (highest epoch)
// first. Temp files from in-flight or crashed writes are ignored.
std::vector<std::string> ListTrainCheckpoints(const std::string& dir);

// Loads the newest checkpoint in `dir` that parses and passes its checksum.
// Corrupt or truncated files are skipped with a warning on stderr — a torn
// checkpoint must cost at most one checkpoint interval, never the run.
// Returns NotFound when the directory holds no valid checkpoint.
core::Status LoadNewestValidTrainCheckpoint(const std::string& dir,
                                            TrainCheckpoint* state,
                                            std::string* path_out);

}  // namespace sstban::training

#endif  // SSTBAN_TRAINING_CHECKPOINT_H_

#ifndef SSTBAN_TRAINING_FORECAST_SERVICE_H_
#define SSTBAN_TRAINING_FORECAST_SERVICE_H_

#include <cstdint>

#include "core/status.h"
#include "data/dataset.h"
#include "data/normalizer.h"
#include "training/model.h"

namespace sstban::training {

// -- Shared inference plumbing ------------------------------------------------
// Both the single-request ForecastService below and the batching server in
// src/serving/ must derive the same calendar features and apply the same
// normalize -> Predict -> denormalize pipeline; these helpers are that logic,
// hoisted so the two paths cannot drift.

// Appends the time-of-day / day-of-week features for one window whose first
// input slice sits at absolute index `first_step` (slices since a Monday
// 00:00 origin). Appending once per window in batch order reproduces the
// [B*P] / [B*Q] layout data::WindowDataset::MakeBatch emits.
void AppendCalendarFeatures(int64_t first_step, int64_t input_len,
                            int64_t output_len, int64_t steps_per_day,
                            data::Batch* batch);

// Which forward implementation the batched-inference helpers use.
//   kAuto   — resolve once from the SSTBAN_EXECUTOR environment variable
//             ("static" selects the static executor, anything else the tape).
//   kTape   — always run the autograd tape forward.
//   kStatic — prefer the shape-specialized static executor (src/exec) when
//             the model supports it; any executor failure falls back to the
//             tape, so kStatic is a fast path, never a correctness risk.
enum class ExecutorMode {
  kAuto = 0,
  kTape,
  kStatic,
};

// Resolves kAuto against SSTBAN_EXECUTOR (read once per process); returns
// kTape/kStatic unchanged.
ExecutorMode ResolveExecutorMode(ExecutorMode mode);

// Runs one inference pass over a fully assembled batch (batch.x is
// [B, P, N, C] raw signals with calendar features filled in): switches the
// model to eval, disables autograd, normalizes, predicts, denormalizes.
// Returns the raw-scale [B, Q, N, C] forecast.
tensor::Tensor RunBatchedInference(TrafficModel* model,
                                   const data::Normalizer& normalizer,
                                   const data::Batch& batch,
                                   ExecutorMode mode = ExecutorMode::kAuto);

// Mask-aware variant: `keep_pos` is [B, P, N] with 1 where the position was
// observed; masked positions are routed through the model's degraded-mode
// pathway (TrafficModel::PredictMasked). batch.x may hold arbitrary finite
// values at masked positions — they are structurally excluded, never read.
// Returns InvalidArgument when keep_pos's shape disagrees with the batch
// geometry instead of reading out of range inside the model.
core::StatusOr<tensor::Tensor> RunBatchedInferenceMasked(
    TrafficModel* model, const data::Normalizer& normalizer,
    const data::Batch& batch, const tensor::Tensor& keep_pos,
    ExecutorMode mode = ExecutorMode::kAuto);

// Deployment-facing wrapper around a trained TrafficModel: accepts a raw
// (denormalized) recent window plus the absolute time index of its first
// slice, derives calendar features, normalizes, runs the model, and returns
// the denormalized multi-step forecast — what an ITS integration actually
// consumes. The absolute index is measured in slices since a Monday 00:00
// origin, so time-of-day and day-of-week are self-consistent.
class ForecastService {
 public:
  // The service borrows `model` (must outlive the service). `num_nodes` /
  // `num_features` are the geometry the model was configured with; when
  // >= 0 every request's window is validated against them up front instead
  // of failing deep inside attention with an opaque shape check.
  ForecastService(TrafficModel* model, data::Normalizer normalizer,
                  int64_t input_len, int64_t output_len, int64_t steps_per_day,
                  int64_t num_nodes = -1, int64_t num_features = -1);

  // recent: [P, N, C] raw signals whose first slice is at absolute index
  // `first_step`. Returns [Q, N, C] raw forecasts for the following Q
  // slices, or InvalidArgument on shape mismatch.
  core::StatusOr<tensor::Tensor> Forecast(const tensor::Tensor& recent,
                                          int64_t first_step);

  int64_t input_len() const { return input_len_; }
  int64_t output_len() const { return output_len_; }

 private:
  TrafficModel* model_;
  data::Normalizer normalizer_;
  int64_t input_len_;
  int64_t output_len_;
  int64_t steps_per_day_;
  int64_t num_nodes_;
  int64_t num_features_;
};

}  // namespace sstban::training

#endif  // SSTBAN_TRAINING_FORECAST_SERVICE_H_

#ifndef SSTBAN_TRAINING_FORECAST_SERVICE_H_
#define SSTBAN_TRAINING_FORECAST_SERVICE_H_

#include <cstdint>

#include "core/status.h"
#include "data/normalizer.h"
#include "training/model.h"

namespace sstban::training {

// Deployment-facing wrapper around a trained TrafficModel: accepts a raw
// (denormalized) recent window plus the absolute time index of its first
// slice, derives calendar features, normalizes, runs the model, and returns
// the denormalized multi-step forecast — what an ITS integration actually
// consumes. The absolute index is measured in slices since a Monday 00:00
// origin, so time-of-day and day-of-week are self-consistent.
class ForecastService {
 public:
  // The service borrows `model` (must outlive the service).
  ForecastService(TrafficModel* model, data::Normalizer normalizer,
                  int64_t input_len, int64_t output_len, int64_t steps_per_day);

  // recent: [P, N, C] raw signals whose first slice is at absolute index
  // `first_step`. Returns [Q, N, C] raw forecasts for the following Q
  // slices, or InvalidArgument on shape mismatch.
  core::StatusOr<tensor::Tensor> Forecast(const tensor::Tensor& recent,
                                          int64_t first_step);

  int64_t input_len() const { return input_len_; }
  int64_t output_len() const { return output_len_; }

 private:
  TrafficModel* model_;
  data::Normalizer normalizer_;
  int64_t input_len_;
  int64_t output_len_;
  int64_t steps_per_day_;
};

}  // namespace sstban::training

#endif  // SSTBAN_TRAINING_FORECAST_SERVICE_H_

#include "data/synthetic_world.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "core/check.h"
#include "core/rng.h"

namespace sstban::data {

namespace {

// Normalized demand profile in [0, 1] for a fractional hour-of-day.
// Weekdays have the classic double peak (morning / evening rush); weekends
// are flatter with a midday bump — the structure long-term forecasters must
// learn to predict one or two days ahead on the Seattle scenarios.
double DailyProfile(double hour, bool weekend) {
  auto bump = [](double h, double center, double width) {
    double z = (h - center) / width;
    return std::exp(-0.5 * z * z);
  };
  if (weekend) {
    return 0.14 + 0.45 * bump(hour, 13.0, 3.5) + 0.12 * bump(hour, 19.0, 2.0);
  }
  return 0.10 + 0.70 * bump(hour, 8.0, 1.6) + 0.62 * bump(hour, 17.5, 2.0) +
         0.15 * bump(hour, 12.5, 2.5);
}

struct NodeParams {
  float free_flow_speed;  // mph
  float jam_density;      // vehicles per mile
  float base_demand;      // peak utilization in (0, 1)
};

}  // namespace

SyntheticWorldConfig SeattleLikeConfig() {
  SyntheticWorldConfig config;
  config.name = "seattle-like";
  config.num_nodes = 40;        // scaled down from 323 loop detectors
  config.num_corridors = 5;
  config.steps_per_day = 24;    // 1-hour aggregation, as in the paper
  config.num_days = 84;         // scaled down from 365 days
  config.speed_world = true;    // C = 3: flow, speed, occupancy
  config.events_per_day = 2.0;
  config.noise_level = 0.03;
  config.seed = 20150101;
  return config;
}

SyntheticWorldConfig Pems04LikeConfig() {
  SyntheticWorldConfig config;
  config.name = "pems04-like";
  config.num_nodes = 36;        // scaled down from 307 detectors
  config.num_corridors = 4;
  config.steps_per_day = 96;    // 15-minute slices (paper: 5-minute)
  config.num_days = 21;         // scaled down from 59 days
  config.speed_world = false;   // C = 1: flow only
  config.events_per_day = 3.0;
  config.noise_level = 0.04;
  config.seed = 20180101;
  return config;
}

SyntheticWorldConfig Pems08LikeConfig() {
  SyntheticWorldConfig config = Pems04LikeConfig();
  config.name = "pems08-like";
  config.num_nodes = 28;        // scaled down from 170 detectors
  config.num_corridors = 3;
  config.events_per_day = 2.5;
  config.seed = 20160701;
  return config;
}

TrafficDataset GenerateSyntheticWorld(const SyntheticWorldConfig& config) {
  SSTBAN_CHECK_GT(config.num_nodes, 0);
  SSTBAN_CHECK_GT(config.steps_per_day, 0);
  SSTBAN_CHECK_GT(config.num_days, 0);
  core::Rng rng(config.seed);
  core::Rng graph_rng = rng.Fork();
  core::Rng node_rng = rng.Fork();
  core::Rng event_rng = rng.Fork();
  core::Rng noise_rng = rng.Fork();

  auto g = std::make_shared<graph::TrafficGraph>(graph::TrafficGraph::RandomCorridor(
      config.num_nodes, config.num_corridors, graph_rng));

  int64_t n = config.num_nodes;
  int64_t total = config.steps_per_day * config.num_days;
  int64_t feats = config.speed_world ? 3 : 1;

  std::vector<NodeParams> nodes(n);
  for (int64_t v = 0; v < n; ++v) {
    nodes[v].free_flow_speed = node_rng.NextUniform(55.0f, 70.0f);
    nodes[v].jam_density = node_rng.NextUniform(120.0f, 180.0f);
    nodes[v].base_demand = node_rng.NextUniform(0.40f, 0.70f);
  }

  TrafficDataset dataset;
  dataset.name = config.name;
  dataset.graph = g;
  dataset.signals = tensor::Tensor(tensor::Shape{total, n, feats});
  dataset.time_of_day.resize(total);
  dataset.day_of_week.resize(total);
  dataset.steps_per_day = config.steps_per_day;

  float* out = dataset.signals.data();
  double hours_per_step = 24.0 / static_cast<double>(config.steps_per_day);
  double event_prob_per_step =
      config.events_per_day / static_cast<double>(config.steps_per_day);

  // Slow per-node demand drift (AR(1)) and congestion level state.
  std::vector<double> drift(n, 0.0);
  std::vector<double> congestion(n, 0.0);
  std::vector<double> event_remaining(n, 0.0);  // steps left of active incident
  std::vector<double> event_severity(n, 0.0);
  std::vector<double> next_congestion(n, 0.0);

  for (int64_t t = 0; t < total; ++t) {
    int64_t step_of_day = t % config.steps_per_day;
    int64_t day = t / config.steps_per_day;
    int64_t dow = day % 7;
    bool weekend = (dow >= 5);
    double hour = static_cast<double>(step_of_day) * hours_per_step;
    dataset.time_of_day[t] = step_of_day;
    dataset.day_of_week[t] = dow;

    // Spawn incidents (more likely during peaks, when the network is loaded).
    double profile_now = DailyProfile(hour, weekend);
    if (event_rng.NextDouble() < event_prob_per_step * (0.5 + profile_now)) {
      int64_t v = event_rng.NextBelow(static_cast<uint32_t>(n));
      event_remaining[v] = 3.0 + event_rng.NextDouble() * 9.0;
      event_severity[v] = 0.25 + event_rng.NextDouble() * 0.5;
    }

    // Congestion dynamics: decay + active incidents + upstream shockwave
    // propagation (congestion at v spills onto its predecessors).
    for (int64_t v = 0; v < n; ++v) {
      double c = 0.78 * congestion[v];
      if (event_remaining[v] > 0.0) {
        c += event_severity[v] * 0.5;
        event_remaining[v] -= 1.0;
      }
      next_congestion[v] = c;
    }
    for (int64_t v = 0; v < n; ++v) {
      for (int64_t pred : g->Predecessors(v)) {
        next_congestion[pred] += 0.30 * congestion[v];
      }
    }
    for (int64_t v = 0; v < n; ++v) {
      congestion[v] = std::min(next_congestion[v], 0.7);
    }

    for (int64_t v = 0; v < n; ++v) {
      drift[v] = 0.97 * drift[v] + 0.03 * noise_rng.NextGaussian();
      double demand = nodes[v].base_demand * profile_now * (1.0 + 0.25 * drift[v]);
      // Utilization in (0, 0.95): demand pressure plus congestion backlog.
      double u = std::clamp(0.50 * demand + congestion[v], 0.02, 0.85);
      double speed = nodes[v].free_flow_speed * (1.0 - u);  // Greenshields
      double density = nodes[v].jam_density * u;
      double flow_per_hour = density * speed;                         // veh/h
      double flow = flow_per_hour * hours_per_step;                   // veh/slice
      double occupancy = u;

      double noise = config.noise_level;
      float* cell = out + (t * n + v) * feats;
      if (config.speed_world) {
        cell[0] = static_cast<float>(
            std::max(0.0, flow * (1.0 + noise * noise_rng.NextGaussian())));
        cell[1] = static_cast<float>(std::max(
            2.0, speed + noise * nodes[v].free_flow_speed * noise_rng.NextGaussian()));
        cell[2] = static_cast<float>(
            std::clamp(occupancy + 0.5 * noise * noise_rng.NextGaussian(), 0.0, 1.0));
      } else {
        cell[0] = static_cast<float>(
            std::max(0.0, flow * (1.0 + noise * noise_rng.NextGaussian())));
      }
    }
  }
  return dataset;
}

}  // namespace sstban::data

#include "data/synthetic_world.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "core/check.h"
#include "core/rng.h"

namespace sstban::data {

namespace {

// Normalized demand profile in [0, 1] for a fractional hour-of-day.
// Weekdays have the classic double peak (morning / evening rush); weekends
// are flatter with a midday bump — the structure long-term forecasters must
// learn to predict one or two days ahead on the Seattle scenarios.
double DailyProfile(double hour, bool weekend) {
  auto bump = [](double h, double center, double width) {
    double z = (h - center) / width;
    return std::exp(-0.5 * z * z);
  };
  if (weekend) {
    return 0.14 + 0.45 * bump(hour, 13.0, 3.5) + 0.12 * bump(hour, 19.0, 2.0);
  }
  return 0.10 + 0.70 * bump(hour, 8.0, 1.6) + 0.62 * bump(hour, 17.5, 2.0) +
         0.15 * bump(hour, 12.5, 2.5);
}

struct NodeParams {
  float free_flow_speed;  // mph
  float jam_density;      // vehicles per mile
  float base_demand;      // peak utilization in (0, 1)
};

}  // namespace

SyntheticWorldConfig SeattleLikeConfig() {
  SyntheticWorldConfig config;
  config.name = "seattle-like";
  config.num_nodes = 40;        // scaled down from 323 loop detectors
  config.num_corridors = 5;
  config.steps_per_day = 24;    // 1-hour aggregation, as in the paper
  config.num_days = 84;         // scaled down from 365 days
  config.speed_world = true;    // C = 3: flow, speed, occupancy
  config.events_per_day = 2.0;
  config.noise_level = 0.03;
  config.seed = 20150101;
  return config;
}

SyntheticWorldConfig Pems04LikeConfig() {
  SyntheticWorldConfig config;
  config.name = "pems04-like";
  config.num_nodes = 36;        // scaled down from 307 detectors
  config.num_corridors = 4;
  config.steps_per_day = 96;    // 15-minute slices (paper: 5-minute)
  config.num_days = 21;         // scaled down from 59 days
  config.speed_world = false;   // C = 1: flow only
  config.events_per_day = 3.0;
  config.noise_level = 0.04;
  config.seed = 20180101;
  return config;
}

SyntheticWorldConfig Pems08LikeConfig() {
  SyntheticWorldConfig config = Pems04LikeConfig();
  config.name = "pems08-like";
  config.num_nodes = 28;        // scaled down from 170 detectors
  config.num_corridors = 3;
  config.events_per_day = 2.5;
  config.seed = 20160701;
  return config;
}

TrafficDataset GenerateSyntheticWorld(const SyntheticWorldConfig& config) {
  SSTBAN_CHECK_GT(config.num_nodes, 0);
  SSTBAN_CHECK_GT(config.steps_per_day, 0);
  SSTBAN_CHECK_GT(config.num_days, 0);
  core::Rng rng(config.seed);
  core::Rng graph_rng = rng.Fork();
  core::Rng node_rng = rng.Fork();
  core::Rng event_rng = rng.Fork();
  core::Rng noise_rng = rng.Fork();

  auto g = std::make_shared<graph::TrafficGraph>(graph::TrafficGraph::RandomCorridor(
      config.num_nodes, config.num_corridors, graph_rng));

  int64_t n = config.num_nodes;
  int64_t total = config.steps_per_day * config.num_days;
  int64_t feats = config.speed_world ? 3 : 1;

  std::vector<NodeParams> nodes(n);
  for (int64_t v = 0; v < n; ++v) {
    nodes[v].free_flow_speed = node_rng.NextUniform(55.0f, 70.0f);
    nodes[v].jam_density = node_rng.NextUniform(120.0f, 180.0f);
    nodes[v].base_demand = node_rng.NextUniform(0.40f, 0.70f);
  }

  TrafficDataset dataset;
  dataset.name = config.name;
  dataset.graph = g;
  dataset.signals = tensor::Tensor(tensor::Shape{total, n, feats});
  dataset.time_of_day.resize(total);
  dataset.day_of_week.resize(total);
  dataset.steps_per_day = config.steps_per_day;

  float* out = dataset.signals.data();
  double hours_per_step = 24.0 / static_cast<double>(config.steps_per_day);
  double event_prob_per_step =
      config.events_per_day / static_cast<double>(config.steps_per_day);

  // Slow per-node demand drift (AR(1)) and congestion level state.
  std::vector<double> drift(n, 0.0);
  std::vector<double> congestion(n, 0.0);
  std::vector<double> event_remaining(n, 0.0);  // steps left of active incident
  std::vector<double> event_severity(n, 0.0);
  std::vector<double> next_congestion(n, 0.0);

  for (int64_t t = 0; t < total; ++t) {
    int64_t step_of_day = t % config.steps_per_day;
    int64_t day = t / config.steps_per_day;
    int64_t dow = day % 7;
    bool weekend = (dow >= 5);
    double hour = static_cast<double>(step_of_day) * hours_per_step;
    dataset.time_of_day[t] = step_of_day;
    dataset.day_of_week[t] = dow;

    // Spawn incidents (more likely during peaks, when the network is loaded).
    double profile_now = DailyProfile(hour, weekend);
    if (event_rng.NextDouble() < event_prob_per_step * (0.5 + profile_now)) {
      int64_t v = event_rng.NextBelow(static_cast<uint32_t>(n));
      event_remaining[v] = 3.0 + event_rng.NextDouble() * 9.0;
      event_severity[v] = 0.25 + event_rng.NextDouble() * 0.5;
    }

    // Congestion dynamics: decay + active incidents + upstream shockwave
    // propagation (congestion at v spills onto its predecessors).
    for (int64_t v = 0; v < n; ++v) {
      double c = 0.78 * congestion[v];
      if (event_remaining[v] > 0.0) {
        c += event_severity[v] * 0.5;
        event_remaining[v] -= 1.0;
      }
      next_congestion[v] = c;
    }
    for (int64_t v = 0; v < n; ++v) {
      for (int64_t pred : g->Predecessors(v)) {
        next_congestion[pred] += 0.30 * congestion[v];
      }
    }
    for (int64_t v = 0; v < n; ++v) {
      congestion[v] = std::min(next_congestion[v], 0.7);
    }

    for (int64_t v = 0; v < n; ++v) {
      drift[v] = 0.97 * drift[v] + 0.03 * noise_rng.NextGaussian();
      double demand = nodes[v].base_demand * profile_now * (1.0 + 0.25 * drift[v]);
      // Utilization in (0, 0.95): demand pressure plus congestion backlog.
      double u = std::clamp(0.50 * demand + congestion[v], 0.02, 0.85);
      double speed = nodes[v].free_flow_speed * (1.0 - u);  // Greenshields
      double density = nodes[v].jam_density * u;
      double flow_per_hour = density * speed;                         // veh/h
      double flow = flow_per_hour * hours_per_step;                   // veh/slice
      double occupancy = u;

      double noise = config.noise_level;
      float* cell = out + (t * n + v) * feats;
      if (config.speed_world) {
        cell[0] = static_cast<float>(
            std::max(0.0, flow * (1.0 + noise * noise_rng.NextGaussian())));
        cell[1] = static_cast<float>(std::max(
            2.0, speed + noise * nodes[v].free_flow_speed * noise_rng.NextGaussian()));
        cell[2] = static_cast<float>(
            std::clamp(occupancy + 0.5 * noise * noise_rng.NextGaussian(), 0.0, 1.0));
      } else {
        cell[0] = static_cast<float>(
            std::max(0.0, flow * (1.0 + noise * noise_rng.NextGaussian())));
      }
    }
  }
  return dataset;
}

TrafficDataset ApplySensorRecalibration(const TrafficDataset& base,
                                        int64_t from_step,
                                        double node_fraction, double gain,
                                        double offset, uint64_t seed) {
  SSTBAN_CHECK_GE(from_step, 0);
  SSTBAN_CHECK(node_fraction > 0.0 && node_fraction <= 1.0);
  const int64_t t_total = base.num_steps();
  const int64_t n = base.num_nodes();
  const int64_t feats = base.num_features();

  TrafficDataset out = base;
  out.signals = base.signals.Clone();

  core::Rng rng(seed);
  int64_t k = std::max<int64_t>(1, static_cast<int64_t>(
                                       std::llround(node_fraction * n)));
  std::vector<int64_t> nodes = rng.SampleWithoutReplacement(n, k);

  float* data = out.signals.data();
  for (int64_t t = std::min(from_step, t_total); t < t_total; ++t) {
    for (int64_t v : nodes) {
      float* cell = data + (t * n + v) * feats;
      for (int64_t f = 0; f < feats; ++f) {
        cell[f] = static_cast<float>(gain * cell[f] + offset);
      }
    }
  }
  return out;
}

TrafficDataset ApplySeasonalShift(const TrafficDataset& base,
                                  int64_t from_step, double amplitude,
                                  int64_t ramp_steps) {
  SSTBAN_CHECK_GE(from_step, 0);
  SSTBAN_CHECK_GE(ramp_steps, 1);
  const int64_t t_total = base.num_steps();
  const int64_t per_step = base.num_nodes() * base.num_features();

  TrafficDataset out = base;
  out.signals = base.signals.Clone();

  float* data = out.signals.data();
  for (int64_t t = std::min(from_step, t_total); t < t_total; ++t) {
    double ramp = std::min(1.0, static_cast<double>(t - from_step + 1) /
                                    static_cast<double>(ramp_steps));
    float scale = static_cast<float>(1.0 + amplitude * ramp);
    float* row = data + t * per_step;
    for (int64_t i = 0; i < per_step; ++i) row[i] *= scale;
  }
  return out;
}

TrafficDataset AttachNewSensors(const TrafficDataset& base, int64_t extra,
                                uint64_t seed) {
  SSTBAN_CHECK_GE(extra, 1);
  SSTBAN_CHECK(base.graph != nullptr);
  const int64_t t_total = base.num_steps();
  const int64_t n = base.num_nodes();
  const int64_t feats = base.num_features();
  const int64_t n_new = n + extra;

  core::Rng rng(seed);

  // Each new sensor chains off a donor corridor node, placed slightly
  // offset so the geometry stays plausible.
  std::vector<std::pair<double, double>> coords = base.graph->coords();
  std::vector<int64_t> donors(extra);
  for (int64_t i = 0; i < extra; ++i) {
    donors[i] = rng.NextBelow(static_cast<uint32_t>(n));
    auto [x, y] = coords[donors[i]];
    coords.emplace_back(x + 0.3 + 0.2 * rng.NextDouble(),
                        y + 0.1 * rng.NextGaussian());
  }
  auto graph = std::make_shared<graph::TrafficGraph>(n_new, std::move(coords));
  for (const auto& [from, to, weight] : base.graph->edges()) {
    graph->AddEdge(from, to, weight);
  }
  for (int64_t i = 0; i < extra; ++i) {
    graph->AddEdge(donors[i], n + i, 1.0f);  // spliced downstream of donor
  }

  TrafficDataset out;
  out.name = base.name + "+sensors";
  out.graph = std::move(graph);
  out.time_of_day = base.time_of_day;
  out.day_of_week = base.day_of_week;
  out.steps_per_day = base.steps_per_day;
  out.signals = tensor::Tensor::Zeros({t_total, n_new, feats});

  const float* src = base.signals.data();
  float* dst = out.signals.data();
  for (int64_t t = 0; t < t_total; ++t) {
    for (int64_t v = 0; v < n; ++v) {
      const float* from_cell = src + (t * n + v) * feats;
      float* to_cell = dst + (t * n_new + v) * feats;
      for (int64_t f = 0; f < feats; ++f) to_cell[f] = from_cell[f];
    }
    // New sensors report a noisy copy of their donor: a freshly installed
    // detector on the same corridor sees nearly the donor's traffic.
    for (int64_t i = 0; i < extra; ++i) {
      const float* donor_cell = src + (t * n + donors[i]) * feats;
      float* to_cell = dst + (t * n_new + n + i) * feats;
      for (int64_t f = 0; f < feats; ++f) {
        to_cell[f] = static_cast<float>(
            std::max(0.0, donor_cell[f] * (1.0 + 0.05 * rng.NextGaussian())));
      }
    }
  }
  return out;
}

}  // namespace sstban::data

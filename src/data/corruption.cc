#include "data/corruption.h"

#include "core/check.h"
#include "core/rng.h"

namespace sstban::data {

TrafficDataset AddGaussianNoise(const TrafficDataset& dataset, double fraction,
                                float mean, float stddev, int64_t t_begin,
                                int64_t t_end, uint64_t seed) {
  SSTBAN_CHECK(fraction >= 0.0 && fraction <= 1.0);
  SSTBAN_CHECK(t_begin >= 0 && t_begin <= t_end && t_end <= dataset.num_steps());
  TrafficDataset noisy = dataset;
  noisy.signals = dataset.signals.Clone();
  core::Rng rng(seed);
  int64_t slice = dataset.num_nodes() * dataset.num_features();
  float* p = noisy.signals.data();
  for (int64_t t = t_begin; t < t_end; ++t) {
    float* row = p + t * slice;
    for (int64_t i = 0; i < slice; ++i) {
      if (rng.NextDouble() < fraction) {
        row[i] += rng.NextGaussian(mean, stddev);
      }
    }
  }
  return noisy;
}

}  // namespace sstban::data

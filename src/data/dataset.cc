#include "data/dataset.h"

#include <algorithm>
#include <cstring>

#include "core/check.h"

namespace sstban::data {

WindowDataset::WindowDataset(std::shared_ptr<const TrafficDataset> dataset,
                             int64_t input_len, int64_t output_len)
    : dataset_(std::move(dataset)), input_len_(input_len), output_len_(output_len) {
  SSTBAN_CHECK(dataset_ != nullptr);
  SSTBAN_CHECK_GT(input_len_, 0);
  SSTBAN_CHECK_GT(output_len_, 0);
  SSTBAN_CHECK_GT(num_windows(), 0)
      << "dataset too short:" << dataset_->num_steps() << "steps for P ="
      << input_len_ << ", Q =" << output_len_;
}

Batch WindowDataset::MakeBatch(const std::vector<int64_t>& window_indices) const {
  SSTBAN_CHECK(!window_indices.empty());
  int64_t batch = static_cast<int64_t>(window_indices.size());
  int64_t nodes = dataset_->num_nodes();
  int64_t feats = dataset_->num_features();
  int64_t slice = nodes * feats;

  Batch out;
  out.x = tensor::Tensor(tensor::Shape{batch, input_len_, nodes, feats});
  out.y = tensor::Tensor(tensor::Shape{batch, output_len_, nodes, feats});
  out.tod_in.resize(batch * input_len_);
  out.dow_in.resize(batch * input_len_);
  out.tod_out.resize(batch * output_len_);
  out.dow_out.resize(batch * output_len_);

  const float* src = dataset_->signals.data();
  float* px = out.x.data();
  float* py = out.y.data();
  for (int64_t b = 0; b < batch; ++b) {
    int64_t start = window_indices[b];
    SSTBAN_CHECK(start >= 0 && start < num_windows())
        << "window index" << start << "out of range" << num_windows();
    std::memcpy(px + b * input_len_ * slice, src + start * slice,
                static_cast<size_t>(input_len_ * slice) * sizeof(float));
    std::memcpy(py + b * output_len_ * slice,
                src + (start + input_len_) * slice,
                static_cast<size_t>(output_len_ * slice) * sizeof(float));
    for (int64_t p = 0; p < input_len_; ++p) {
      out.tod_in[b * input_len_ + p] = dataset_->time_of_day[start + p];
      out.dow_in[b * input_len_ + p] = dataset_->day_of_week[start + p];
    }
    for (int64_t q = 0; q < output_len_; ++q) {
      out.tod_out[b * output_len_ + q] =
          dataset_->time_of_day[start + input_len_ + q];
      out.dow_out[b * output_len_ + q] =
          dataset_->day_of_week[start + input_len_ + q];
    }
  }
  return out;
}

SplitIndices ChronologicalSplit(const WindowDataset& windows,
                                double train_fraction, double val_fraction) {
  SSTBAN_CHECK(train_fraction > 0 && val_fraction >= 0 &&
               train_fraction + val_fraction < 1.0);
  int64_t n = windows.num_windows();
  auto train_end = static_cast<int64_t>(n * train_fraction);
  auto val_end = static_cast<int64_t>(n * (train_fraction + val_fraction));
  SplitIndices split;
  for (int64_t i = 0; i < train_end; ++i) split.train.push_back(i);
  for (int64_t i = train_end; i < val_end; ++i) split.val.push_back(i);
  for (int64_t i = val_end; i < n; ++i) split.test.push_back(i);
  SSTBAN_CHECK(!split.train.empty() && !split.test.empty());
  return split;
}

std::vector<int64_t> KeepLatestFraction(const std::vector<int64_t>& train,
                                        double fraction) {
  SSTBAN_CHECK(fraction > 0.0 && fraction <= 1.0);
  auto keep = static_cast<int64_t>(static_cast<double>(train.size()) * fraction);
  keep = std::max<int64_t>(keep, 1);
  return std::vector<int64_t>(train.end() - keep, train.end());
}

}  // namespace sstban::data

#ifndef SSTBAN_DATA_CSV_IO_H_
#define SSTBAN_DATA_CSV_IO_H_

#include <string>

#include "core/status.h"
#include "tensor/tensor.h"

namespace sstban::data {

// Writes a [T, N, C] signal tensor as CSV: one row per time slice with
// N*C columns labeled "n<i>_f<j>". Useful for exporting synthetic worlds
// and for ingesting real recordings when they are available.
core::Status SaveSignalsCsv(const tensor::Tensor& signals,
                            const std::string& path);

// Reads a CSV written by SaveSignalsCsv (or any headered numeric CSV with
// N*C columns) back into a [T, N, C] tensor.
core::StatusOr<tensor::Tensor> LoadSignalsCsv(const std::string& path,
                                              int64_t num_nodes,
                                              int64_t num_features);

}  // namespace sstban::data

#endif  // SSTBAN_DATA_CSV_IO_H_

#ifndef SSTBAN_DATA_SYNTHETIC_WORLD_H_
#define SSTBAN_DATA_SYNTHETIC_WORLD_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"

namespace sstban::data {

// Configuration of the synthetic traffic world that substitutes for the
// paper's real recordings (Seattle Loop, PEMS04, PEMS08). The generator
// couples a per-node demand process (daily double-peak + weekly modulation +
// slow AR(1) drift) with congestion incidents that propagate upstream along
// the sensor graph, then maps utilization to (flow, speed, occupancy)
// through a Greenshields fundamental diagram and adds observation noise.
struct SyntheticWorldConfig {
  std::string name = "synthetic";
  int64_t num_nodes = 32;
  int num_corridors = 4;
  int64_t steps_per_day = 96;  // e.g. 96 = 15-minute slices, 24 = hourly
  int64_t num_days = 21;
  // true -> C=3 features (flow, speed, occupancy), the Seattle Loop layout;
  // false -> C=1 (flow only), the PeMS layout used by the paper.
  bool speed_world = false;
  // Expected congestion incidents per day across the whole network.
  double events_per_day = 3.0;
  // Relative observation-noise level.
  double noise_level = 0.03;
  uint64_t seed = 42;
};

// Presets that mimic the statistical character of the three datasets in
// Table II at CPU-tractable scale (node counts and day counts are reduced;
// see DESIGN.md §4 for the substitution rationale).
SyntheticWorldConfig SeattleLikeConfig();
SyntheticWorldConfig Pems04LikeConfig();
SyntheticWorldConfig Pems08LikeConfig();

// Generates the full recording. Deterministic in config.seed.
TrafficDataset GenerateSyntheticWorld(const SyntheticWorldConfig& config);

// --- Drift scenario transforms (ROADMAP robustness item) ---------------
// Each takes a base recording and returns a modified copy whose statistics
// change partway through — the raw material for testing online adaptation.
// All are deterministic in their seed and leave `base` untouched.

// Sudden sensor recalibration: at `from_step`, a `node_fraction` subset of
// sensors (chosen by `seed`) starts reporting gain * x + offset instead of
// x — a maintenance crew swapped detector hardware. Abrupt, permanent, and
// affine, so a model can recover by adapting its input statistics.
TrafficDataset ApplySensorRecalibration(const TrafficDataset& base,
                                        int64_t from_step,
                                        double node_fraction, double gain,
                                        double offset, uint64_t seed);

// Seasonal demand shift: starting at `from_step`, all signals scale toward
// (1 + amplitude) over a linear ramp of `ramp_steps` slices, then hold —
// school term starting, a stadium opening. Gradual and network-wide.
TrafficDataset ApplySeasonalShift(const TrafficDataset& base,
                                  int64_t from_step, double amplitude,
                                  int64_t ramp_steps);

// Growing city: returns a recording with `extra` additional sensors spliced
// into the graph (each chained off an existing corridor node chosen by
// `seed`, with a noisy copy of its donor's signal). The node count changes,
// which online adaptation must *refuse* — model geometry is fixed at
// training time; this is a retrain-and-redeploy event.
TrafficDataset AttachNewSensors(const TrafficDataset& base, int64_t extra,
                                uint64_t seed);

}  // namespace sstban::data

#endif  // SSTBAN_DATA_SYNTHETIC_WORLD_H_

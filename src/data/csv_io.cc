#include "data/csv_io.h"

#include <cstdlib>
#include <fstream>
#include <vector>

#include "core/string_util.h"

namespace sstban::data {

core::Status SaveSignalsCsv(const tensor::Tensor& signals,
                            const std::string& path) {
  if (signals.rank() != 3) {
    return core::Status::InvalidArgument("expected [T, N, C] signals, got " +
                                         signals.shape().ToString());
  }
  std::ofstream out(path);
  if (!out) return core::Status::IoError("cannot open for writing: " + path);
  int64_t t = signals.dim(0), n = signals.dim(1), c = signals.dim(2);
  for (int64_t v = 0; v < n; ++v) {
    for (int64_t f = 0; f < c; ++f) {
      if (v != 0 || f != 0) out << ',';
      out << "n" << v << "_f" << f;
    }
  }
  out << '\n';
  const float* p = signals.data();
  for (int64_t i = 0; i < t; ++i) {
    for (int64_t j = 0; j < n * c; ++j) {
      if (j != 0) out << ',';
      out << p[i * n * c + j];
    }
    out << '\n';
  }
  if (!out) return core::Status::IoError("write failed: " + path);
  return core::Status::Ok();
}

core::StatusOr<tensor::Tensor> LoadSignalsCsv(const std::string& path,
                                              int64_t num_nodes,
                                              int64_t num_features) {
  std::ifstream in(path);
  if (!in) return core::Status::IoError("cannot open for reading: " + path);
  std::string line;
  if (!std::getline(in, line)) {
    return core::Status::IoError("empty file: " + path);
  }
  int64_t cols = num_nodes * num_features;
  std::vector<float> values;
  int64_t rows = 0;
  while (std::getline(in, line)) {
    line = core::Trim(line);
    if (line.empty()) continue;
    std::vector<std::string> fields = core::Split(line, ',');
    if (static_cast<int64_t>(fields.size()) != cols) {
      return core::Status::InvalidArgument(core::StrFormat(
          "row %lld has %zu fields, expected %lld",
          static_cast<long long>(rows), fields.size(),
          static_cast<long long>(cols)));
    }
    for (const std::string& field : fields) {
      char* end = nullptr;
      float v = std::strtof(field.c_str(), &end);
      if (end == field.c_str()) {
        return core::Status::InvalidArgument("non-numeric field: " + field);
      }
      values.push_back(v);
    }
    ++rows;
  }
  if (rows == 0) return core::Status::InvalidArgument("no data rows in " + path);
  return tensor::Tensor::FromVector(
      tensor::Shape{rows, num_nodes, num_features}, std::move(values));
}

}  // namespace sstban::data

#include "data/normalizer.h"

#include <cmath>

#include "core/check.h"

namespace sstban::data {

Normalizer Normalizer::Fit(const tensor::Tensor& signals) {
  SSTBAN_CHECK_GE(signals.rank(), 1);
  int64_t feats = signals.dim(signals.rank() - 1);
  int64_t rows = signals.size() / feats;
  SSTBAN_CHECK_GT(rows, 1);
  Normalizer norm;
  norm.mean_.assign(feats, 0.0f);
  norm.std_.assign(feats, 0.0f);
  const float* p = signals.data();
  std::vector<double> sum(feats, 0.0), sum_sq(feats, 0.0);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t f = 0; f < feats; ++f) {
      double v = p[r * feats + f];
      sum[f] += v;
      sum_sq[f] += v * v;
    }
  }
  for (int64_t f = 0; f < feats; ++f) {
    double mean = sum[f] / static_cast<double>(rows);
    double var = sum_sq[f] / static_cast<double>(rows) - mean * mean;
    norm.mean_[f] = static_cast<float>(mean);
    norm.std_[f] = static_cast<float>(std::sqrt(std::max(var, 1e-8)));
  }
  return norm;
}

Normalizer Normalizer::FromMoments(std::vector<float> mean,
                                   std::vector<float> stddev) {
  SSTBAN_CHECK_EQ(mean.size(), stddev.size());
  SSTBAN_CHECK_GT(mean.size(), 0u);
  for (float& s : stddev) s = std::max(s, 1e-4f);
  Normalizer norm;
  norm.mean_ = std::move(mean);
  norm.std_ = std::move(stddev);
  return norm;
}

tensor::Tensor Normalizer::Transform(const tensor::Tensor& x) const {
  int64_t feats = num_features();
  SSTBAN_CHECK_EQ(x.dim(x.rank() - 1), feats);
  tensor::Tensor out = tensor::Tensor::Empty(x.shape());
  const float* px = x.data();
  float* po = out.data();
  int64_t rows = x.size() / feats;
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t f = 0; f < feats; ++f) {
      po[r * feats + f] = (px[r * feats + f] - mean_[f]) / std_[f];
    }
  }
  return out;
}

tensor::Tensor Normalizer::InverseTransform(const tensor::Tensor& x) const {
  int64_t feats = num_features();
  SSTBAN_CHECK_EQ(x.dim(x.rank() - 1), feats);
  tensor::Tensor out = tensor::Tensor::Empty(x.shape());
  const float* px = x.data();
  float* po = out.data();
  int64_t rows = x.size() / feats;
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t f = 0; f < feats; ++f) {
      po[r * feats + f] = px[r * feats + f] * std_[f] + mean_[f];
    }
  }
  return out;
}

}  // namespace sstban::data

#ifndef SSTBAN_DATA_CORRUPTION_H_
#define SSTBAN_DATA_CORRUPTION_H_

#include <cstdint>

#include "data/dataset.h"

namespace sstban::data {

// Returns a copy of the dataset with Gaussian noise added to a random
// `fraction` of the signal entries in time range [t_begin, t_end) —
// the paper's Fig. 6 robustness protocol adds N(mean=10, std=500) noise to
// 10/30/90% of the training inputs while validation/test stay clean.
// Deterministic in `seed`.
TrafficDataset AddGaussianNoise(const TrafficDataset& dataset, double fraction,
                                float mean, float stddev, int64_t t_begin,
                                int64_t t_end, uint64_t seed);

}  // namespace sstban::data

#endif  // SSTBAN_DATA_CORRUPTION_H_

#ifndef SSTBAN_DATA_DATASET_H_
#define SSTBAN_DATA_DATASET_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/traffic_graph.h"
#include "tensor/tensor.h"

namespace sstban::data {

// A full traffic recording: the sensor graph, the signal tensor
// [T, N, C], and calendar features per time slice. This mirrors the
// structure of the Seattle Loop / PeMS archives the paper evaluates on.
struct TrafficDataset {
  std::string name;
  std::shared_ptr<graph::TrafficGraph> graph;
  tensor::Tensor signals;            // [T, N, C]
  std::vector<int64_t> time_of_day;  // [T], in [0, steps_per_day)
  std::vector<int64_t> day_of_week;  // [T], in [0, 7)
  int64_t steps_per_day = 0;

  int64_t num_steps() const { return signals.dim(0); }
  int64_t num_nodes() const { return signals.dim(1); }
  int64_t num_features() const { return signals.dim(2); }
};

// One supervised example: P input slices and Q target slices, plus the
// calendar indices the spatial-temporal embedding consumes.
struct Window {
  int64_t start;  // input covers [start, start+P), target [start+P, start+P+Q)
};

// A batch of windows materialized as tensors.
struct Batch {
  tensor::Tensor x;       // [B, P, N, C] raw input signals
  tensor::Tensor y;       // [B, Q, N, C] raw target signals
  std::vector<int64_t> tod_in;   // [B*P] time-of-day per input slice
  std::vector<int64_t> dow_in;   // [B*P] day-of-week per input slice
  std::vector<int64_t> tod_out;  // [B*Q]
  std::vector<int64_t> dow_out;  // [B*Q]

  int64_t batch_size() const { return x.dim(0); }
  int64_t input_len() const { return x.dim(1); }
  int64_t output_len() const { return y.dim(1); }
};

// Sliding-window view over a TrafficDataset, split chronologically.
// The paper splits each dataset 6:2:2 (train:val:test) by time and sets
// P = Q in {24, 36, 48}.
class WindowDataset {
 public:
  WindowDataset(std::shared_ptr<const TrafficDataset> dataset, int64_t input_len,
                int64_t output_len);

  int64_t num_windows() const {
    return dataset_->num_steps() - input_len_ - output_len_ + 1;
  }
  int64_t input_len() const { return input_len_; }
  int64_t output_len() const { return output_len_; }
  const TrafficDataset& dataset() const { return *dataset_; }

  // Materializes the given window indices (each in [0, num_windows())).
  Batch MakeBatch(const std::vector<int64_t>& window_indices) const;

 private:
  std::shared_ptr<const TrafficDataset> dataset_;
  int64_t input_len_;
  int64_t output_len_;
};

// Chronological train/validation/test split of window start indices with the
// given fractions (defaults to the paper's 6:2:2). Windows never straddle a
// split boundary.
struct SplitIndices {
  std::vector<int64_t> train;
  std::vector<int64_t> val;
  std::vector<int64_t> test;
};
SplitIndices ChronologicalSplit(const WindowDataset& windows,
                                double train_fraction = 0.6,
                                double val_fraction = 0.2);

// Drops the earliest windows so only `fraction` of the original training
// windows remain (the paper's Fig. 5 robustness protocol: data is removed
// "starting from the earliest time slice" while val/test stay fixed).
std::vector<int64_t> KeepLatestFraction(const std::vector<int64_t>& train,
                                        double fraction);

}  // namespace sstban::data

#endif  // SSTBAN_DATA_DATASET_H_

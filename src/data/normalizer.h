#ifndef SSTBAN_DATA_NORMALIZER_H_
#define SSTBAN_DATA_NORMALIZER_H_

#include <vector>

#include "tensor/tensor.h"

namespace sstban::data {

// Per-feature z-score normalization ("standard normalization" in the paper,
// §V-C). Statistics are fit on the training portion only and applied
// everywhere; predictions are inverse-transformed before computing metrics.
class Normalizer {
 public:
  Normalizer() = default;

  // Fits per-feature mean/std over a signal tensor whose last axis is the
  // feature axis (e.g. [T, N, C] or [B, P, N, C]).
  static Normalizer Fit(const tensor::Tensor& signals);

  // Builds a normalizer from externally maintained per-feature moments (the
  // streaming ingestor's drift-aware running statistics). Standard deviations
  // are floored at 1e-4 so a constant feature cannot divide by zero.
  static Normalizer FromMoments(std::vector<float> mean,
                                std::vector<float> stddev);

  // (x - mean) / std, elementwise along the last axis.
  tensor::Tensor Transform(const tensor::Tensor& x) const;

  // x * std + mean.
  tensor::Tensor InverseTransform(const tensor::Tensor& x) const;

  int64_t num_features() const { return static_cast<int64_t>(mean_.size()); }
  float mean(int64_t feature) const { return mean_.at(feature); }
  float stddev(int64_t feature) const { return std_.at(feature); }

 private:
  std::vector<float> mean_;
  std::vector<float> std_;
};

}  // namespace sstban::data

#endif  // SSTBAN_DATA_NORMALIZER_H_

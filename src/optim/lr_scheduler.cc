#include "optim/lr_scheduler.h"

#include <cmath>

#include "core/check.h"

namespace sstban::optim {

LrScheduler::LrScheduler(Optimizer* optimizer)
    : optimizer_(optimizer), base_rate_(optimizer->learning_rate()) {
  SSTBAN_CHECK(optimizer != nullptr);
}

void LrScheduler::Step() {
  ++epoch_;
  optimizer_->set_learning_rate(RateAt(epoch_));
}

float LrScheduler::current_rate() const { return optimizer_->learning_rate(); }

StepDecay::StepDecay(Optimizer* optimizer, int step_size, float gamma)
    : LrScheduler(optimizer), step_size_(step_size), gamma_(gamma) {
  SSTBAN_CHECK_GE(step_size, 1);
}

float StepDecay::RateAt(int epoch) const {
  return base_rate_ * std::pow(gamma_, static_cast<float>(epoch / step_size_));
}

CosineAnnealing::CosineAnnealing(Optimizer* optimizer, int max_epochs,
                                 float min_rate)
    : LrScheduler(optimizer), max_epochs_(max_epochs), min_rate_(min_rate) {
  SSTBAN_CHECK_GE(max_epochs, 1);
}

float CosineAnnealing::RateAt(int epoch) const {
  if (epoch >= max_epochs_) return min_rate_;
  float progress = static_cast<float>(epoch) / static_cast<float>(max_epochs_);
  return min_rate_ + 0.5f * (base_rate_ - min_rate_) *
                         (1.0f + std::cos(static_cast<float>(M_PI) * progress));
}

}  // namespace sstban::optim

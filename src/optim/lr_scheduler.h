#ifndef SSTBAN_OPTIM_LR_SCHEDULER_H_
#define SSTBAN_OPTIM_LR_SCHEDULER_H_

#include "optim/optimizer.h"

namespace sstban::optim {

// Adjusts an optimizer's learning rate once per epoch. Call Step() after
// each epoch; the scheduler owns no state besides the epoch counter.
class LrScheduler {
 public:
  explicit LrScheduler(Optimizer* optimizer);
  virtual ~LrScheduler() = default;

  LrScheduler(const LrScheduler&) = delete;
  LrScheduler& operator=(const LrScheduler&) = delete;

  // Advances one epoch and applies the new rate.
  void Step();

  int epoch() const { return epoch_; }
  float current_rate() const;

 protected:
  // Rate to use at the given epoch (0-based, called with epoch >= 1).
  virtual float RateAt(int epoch) const = 0;

  Optimizer* optimizer_;
  float base_rate_;

 private:
  int epoch_ = 0;
};

// Multiplies the rate by `gamma` every `step_size` epochs.
class StepDecay : public LrScheduler {
 public:
  StepDecay(Optimizer* optimizer, int step_size, float gamma = 0.1f);

 protected:
  float RateAt(int epoch) const override;

 private:
  int step_size_;
  float gamma_;
};

// Cosine annealing from the base rate down to `min_rate` over `max_epochs`.
class CosineAnnealing : public LrScheduler {
 public:
  CosineAnnealing(Optimizer* optimizer, int max_epochs, float min_rate = 0.0f);

 protected:
  float RateAt(int epoch) const override;

 private:
  int max_epochs_;
  float min_rate_;
};

}  // namespace sstban::optim

#endif  // SSTBAN_OPTIM_LR_SCHEDULER_H_

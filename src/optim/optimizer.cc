#include "optim/optimizer.h"

#include <cmath>
#include <limits>

#include "core/check.h"

namespace sstban::optim {

Optimizer::Optimizer(std::vector<autograd::Variable> params, float lr)
    : params_(std::move(params)), lr_(lr) {
  for (const auto& p : params_) {
    SSTBAN_CHECK(p.requires_grad()) << "optimizer given a non-trainable tensor";
  }
}

void Optimizer::ZeroGrad() {
  for (auto& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<autograd::Variable> params, float lr, float momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_) {
      velocity_.push_back(tensor::Tensor::Zeros(p.shape()));
    }
  }
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    float* w = p.mutable_value().data();
    const float* g = p.grad().data();
    int64_t n = p.size();
    if (momentum_ > 0.0f) {
      float* v = velocity_[i].data();
      for (int64_t j = 0; j < n; ++j) {
        v[j] = momentum_ * v[j] + g[j];
        w[j] -= lr_ * v[j];
      }
    } else {
      for (int64_t j = 0; j < n; ++j) w[j] -= lr_ * g[j];
    }
  }
}

Adam::Adam(std::vector<autograd::Variable> params, float lr, float beta1,
           float beta2, float eps, float weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.push_back(tensor::Tensor::Zeros(p.shape()));
    v_.push_back(tensor::Tensor::Zeros(p.shape()));
  }
}

void Adam::Step() {
  ++step_;
  float bias1 = 1.0f - std::pow(beta1_, static_cast<float>(step_));
  float bias2 = 1.0f - std::pow(beta2_, static_cast<float>(step_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (!p.has_grad()) continue;
    float* w = p.mutable_value().data();
    const float* g = p.grad().data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    int64_t n = p.size();
    for (int64_t j = 0; j < n; ++j) {
      float grad = g[j] + weight_decay_ * w[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad * grad;
      float m_hat = m[j] / bias1;
      float v_hat = v[j] / bias2;
      w[j] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

void Adam::RestoreState(int64_t step, const std::vector<tensor::Tensor>& m,
                        const std::vector<tensor::Tensor>& v) {
  SSTBAN_CHECK_GE(step, 0);
  SSTBAN_CHECK_EQ(m.size(), m_.size());
  SSTBAN_CHECK_EQ(v.size(), v_.size());
  step_ = step;
  for (size_t i = 0; i < m_.size(); ++i) {
    m_[i].CopyFrom(m[i]);
    v_[i].CopyFrom(v[i]);
  }
}

float ClipGradNorm(const std::vector<autograd::Variable>& params, float max_norm) {
  double total_sq = 0.0;
  for (const auto& p : params) {
    if (!p.has_grad()) continue;
    const float* g = p.grad().data();
    for (int64_t j = 0; j < p.size(); ++j) {
      total_sq += static_cast<double>(g[j]) * g[j];
    }
  }
  float norm = static_cast<float>(std::sqrt(total_sq));
  if (norm > max_norm && norm > 0.0f) {
    float scale = max_norm / norm;
    for (const auto& p : params) {
      if (!p.has_grad()) continue;
      // Grad storage is shared with the node; scaling in place is intended.
      float* g = const_cast<float*>(p.grad().data());
      for (int64_t j = 0; j < p.size(); ++j) g[j] *= scale;
    }
  }
  return norm;
}

EarlyStopping::EarlyStopping(int patience, float min_delta)
    : patience_(patience),
      min_delta_(min_delta),
      best_(std::numeric_limits<float>::infinity()) {}

void EarlyStopping::RestoreState(float best_metric, int epochs_since_best) {
  SSTBAN_CHECK_GE(epochs_since_best, 0);
  best_ = best_metric;
  stale_ = epochs_since_best;
  improved_ = false;
}

bool EarlyStopping::Update(float metric) {
  improved_ = metric < best_ - min_delta_;
  if (improved_) {
    best_ = metric;
    stale_ = 0;
  } else {
    ++stale_;
  }
  return stale_ >= patience_;
}

}  // namespace sstban::optim

#ifndef SSTBAN_OPTIM_OPTIMIZER_H_
#define SSTBAN_OPTIM_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"

namespace sstban::optim {

// Base interface for first-order optimizers. The optimizer keeps references
// (shared nodes) to the parameters it updates; Step() reads each parameter's
// accumulated gradient and updates its value in place.
class Optimizer {
 public:
  explicit Optimizer(std::vector<autograd::Variable> params, float lr);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  // Applies one update using the current gradients. Parameters with no
  // accumulated gradient are skipped.
  virtual void Step() = 0;

  // Clears gradients on all managed parameters.
  void ZeroGrad();

  float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

 protected:
  std::vector<autograd::Variable> params_;
  float lr_;
};

// Plain stochastic gradient descent with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<autograd::Variable> params, float lr, float momentum = 0.0f);

  void Step() override;

 private:
  float momentum_;
  std::vector<tensor::Tensor> velocity_;
};

// Adam (Kingma & Ba 2015) with bias correction — the de-facto optimizer for
// the STGNN literature; the paper trains with lr = 0.001.
class Adam : public Optimizer {
 public:
  Adam(std::vector<autograd::Variable> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);

  void Step() override;

  // Checkpointing hooks: Adam's full state is the step count plus the
  // first/second moment estimates, in parameter order.
  int64_t step_count() const { return step_; }
  const std::vector<tensor::Tensor>& first_moments() const { return m_; }
  const std::vector<tensor::Tensor>& second_moments() const { return v_; }

  // Restores a state captured from an identically-constructed optimizer;
  // moment counts and shapes must match the managed parameters.
  void RestoreState(int64_t step, const std::vector<tensor::Tensor>& m,
                    const std::vector<tensor::Tensor>& v);

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  int64_t step_ = 0;
  std::vector<tensor::Tensor> m_;
  std::vector<tensor::Tensor> v_;
};

// Scales gradients so their global L2 norm is at most `max_norm`.
// Returns the pre-clip norm.
float ClipGradNorm(const std::vector<autograd::Variable>& params, float max_norm);

// Stops training when the validation metric has not improved for `patience`
// consecutive epochs (the paper uses patience = 5).
class EarlyStopping {
 public:
  explicit EarlyStopping(int patience = 5, float min_delta = 0.0f);

  // Records an epoch's validation metric; returns true when training should
  // stop.
  bool Update(float metric);

  bool improved_last_update() const { return improved_; }
  float best_metric() const { return best_; }
  int epochs_since_best() const { return stale_; }

  // Checkpointing hook: reinstates (best metric, epochs since best) so a
  // resumed run counts patience from exactly where the interrupted one
  // stopped.
  void RestoreState(float best_metric, int epochs_since_best);

 private:
  int patience_;
  float min_delta_;
  float best_;
  int stale_ = 0;
  bool improved_ = false;
};

}  // namespace sstban::optim

#endif  // SSTBAN_OPTIM_OPTIMIZER_H_

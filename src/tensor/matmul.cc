#include "tensor/matmul.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/check.h"
#include "core/thread_pool.h"
#include "tensor/parallel.h"
#include "tensor/simd/kernels.h"

namespace sstban::tensor {

namespace {

// ---------------------------------------------------------------------------
// Shape thresholds and tile sizes.
//
// Every dispatch decision below depends only on the GEMM's shape, never on
// the thread count or the partition, so a given problem always takes the
// same arithmetic path. Combined with row-block partitioning (a C row is
// computed start-to-finish by exactly one task, in ascending-k order), this
// makes results bitwise identical run-to-run and across any number of
// threads, including the inline sequential path.
// ---------------------------------------------------------------------------

// Rows of C per parallel task. Also the unit the tiled path packs A in, so
// block boundaries are a pure function of M.
constexpr int64_t kRowBlock = kGemmRowBlock;
// Packed-panel extents: one B panel (kKC x kNC floats = 256 KiB) plus the
// mr x kKC A strip stay resident in L2 while the micro-kernel streams C.
constexpr int64_t kKC = 256;
constexpr int64_t kNC = 256;
// Upper bound on any tier's micro-kernel height (scalar uses 4, AVX2 6);
// sizes the packing scratch so it never depends on the dispatched tier.
constexpr int64_t kMaxPackMR = 8;
// Below this many multiply-adds per GEMM the packed/tiled path loses to the
// plain loops (packing cost dominates).
constexpr int64_t kTiledMaddCutoff = 1 << 13;
// Target multiply-adds per scheduled chunk; smaller problems run inline.
constexpr int64_t kParallelMaddCutoff = 1 << 15;

// ---------------------------------------------------------------------------
// Small-shape kernels. The !ta variants (attention scores QK^T and context
// P*V, plus any problem under the tiled cutoff) live in the dispatched
// kernel table (simd/kernels.h) so the AVX2 tier can vectorize them; the
// transposed-A variants below only appear on backward paths and stay scalar.
// ---------------------------------------------------------------------------

// C[M,N] += A[K,M]^T * B[K,N].
void GemmTN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n) {
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (int64_t i = 0; i < m; ++i) {
      float aval = arow[i];
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

// C[M,N] += A[K,M]^T * B[N,K]^T == (B*A)^T; computed directly.
void GemmTT(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += a[p * m + i] * brow[p];
      c[i * n + j] += acc;
    }
  }
}

void GemmDispatch(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n, bool ta, bool tb) {
  if (!ta && !tb) {
    simd::Kernels().gemm_nn_small(a, b, c, m, k, n);
  } else if (!ta && tb) {
    simd::Kernels().gemm_nt_small(a, b, c, m, k, n);
  } else if (ta && !tb) {
    GemmTN(a, b, c, m, k, n);
  } else {
    GemmTT(a, b, c, m, k, n);
  }
}

// ---------------------------------------------------------------------------
// Tiled/packed path. Transposition is absorbed entirely by the packing step;
// the micro-kernel only ever sees k-major packed panels.
// ---------------------------------------------------------------------------

// Packs the logical (post-transpose) panel B[p0:p0+kc, j0:j0+nc] into
// dst[kc][nc] row-major. `ldb` is the row stride of the *stored* matrix
// (n when !tb, k when tb).
void PackB(const float* b, int64_t ldb, bool tb, int64_t p0, int64_t j0,
           int64_t kc, int64_t nc, float* dst) {
  if (!tb) {
    for (int64_t p = 0; p < kc; ++p) {
      std::memcpy(dst + p * nc, b + (p0 + p) * ldb + j0,
                  static_cast<size_t>(nc) * sizeof(float));
    }
  } else {
    // Stored B is [N, K]; logical B[p][j] = stored[j][p].
    for (int64_t p = 0; p < kc; ++p) {
      float* drow = dst + p * nc;
      const float* src = b + j0 * ldb + (p0 + p);
      for (int64_t j = 0; j < nc; ++j) drow[j] = src[j * ldb];
    }
  }
}

// Packs the logical A strip rows [i0, i0+mr) x cols [p0, p0+kc) k-major:
// dst[p][r] = A[i0+r][p0+p], so the micro-kernel reads one contiguous group
// of mr values per k step. `lda` is the stored row stride (k when !ta, m
// when ta).
void PackA(const float* a, int64_t lda, bool ta, int64_t i0, int64_t p0,
           int64_t mr, int64_t kc, float* dst) {
  if (!ta) {
    for (int64_t p = 0; p < kc; ++p) {
      float* drow = dst + p * mr;
      const float* src = a + i0 * lda + (p0 + p);
      for (int64_t r = 0; r < mr; ++r) drow[r] = src[r * lda];
    }
  } else {
    // Stored A is [K, M]; the strip's k-slice is contiguous per row.
    for (int64_t p = 0; p < kc; ++p) {
      const float* srow = a + (p0 + p) * lda + i0;
      float* drow = dst + p * mr;
      for (int64_t r = 0; r < mr; ++r) drow[r] = srow[r];
    }
  }
}

// Per-thread packing scratch, reused across GEMM calls.
struct PackBuffers {
  std::vector<float> a;
  std::vector<float> b;
};
thread_local PackBuffers tl_pack;

// Computes C rows [i0, i1) of the full GEMM via packed panels. The loop nest
// is j-panel > k-panel > row-strip, so each C element accumulates its k
// contributions strictly in ascending order. The micro-kernel comes from the
// process-wide SIMD dispatch table (tensor/simd/kernels.h); its tile height
// is a constant of the active tier, so strip boundaries stay a pure function
// of the shape. The steady-state loop only ever issues full-height tiles —
// the sub-tile remainder (at most one per row range) runs once after it,
// keeping the per-iteration height branch out of the hot loop.
//
// Pointer convention (see GemmRowRangeAccumulate): for !ta, `a` points at
// logical row i0 of A; for ta it is the full stored [K, M] matrix. `c`
// points at row i0 of C.
void TiledRows(const float* a, const float* b, float* c, int64_t k, int64_t n,
               bool ta, bool tb, int64_t lda, int64_t ldb, int64_t i0,
               int64_t i1) {
  const simd::SimdKernels& ks = simd::Kernels();
  const int64_t mr_full = ks.gemm_mr;
  SSTBAN_CHECK(mr_full <= kMaxPackMR);
  std::vector<float>& apack = tl_pack.a;
  std::vector<float>& bpack = tl_pack.b;
  if (apack.size() < static_cast<size_t>(kMaxPackMR * kKC)) {
    apack.resize(kMaxPackMR * kKC);
  }
  if (bpack.size() < static_cast<size_t>(kKC * kNC)) bpack.resize(kKC * kNC);
  for (int64_t j0 = 0; j0 < n; j0 += kNC) {
    int64_t nc = std::min(kNC, n - j0);
    for (int64_t p0 = 0; p0 < k; p0 += kKC) {
      int64_t kc = std::min(kKC, k - p0);
      PackB(b, ldb, tb, p0, j0, kc, nc, bpack.data());
      int64_t i = i0;
      for (; i + mr_full <= i1; i += mr_full) {
        PackA(a, lda, ta, ta ? i : i - i0, p0, mr_full, kc, apack.data());
        ks.gemm_tile(apack.data(), bpack.data(), c + (i - i0) * n + j0, n, kc,
                     nc);
      }
      if (i < i1) {
        int64_t mr = i1 - i;
        PackA(a, lda, ta, ta ? i : i - i0, p0, mr, kc, apack.data());
        ks.gemm_tail(apack.data(), bpack.data(), c + (i - i0) * n + j0, n, kc,
                     nc, mr);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch and parallel driver.
// ---------------------------------------------------------------------------

bool UseTiledPath(int64_t m, int64_t k, int64_t n, bool ta, bool tb) {
  if (m * k * n < kTiledMaddCutoff) return false;
  // The register-blocked fixed-size kernels still win on the degenerate
  // inner dimensions attention produces; keep them for those shapes.
  if (!ta && !tb && n <= 8) return false;
  if (!ta && tb && k <= 8) return false;
  return true;
}

// Number of row blocks a single GEMM of this shape is split into. The legacy
// transposed-A kernels stride A by the full M, so they only run whole.
int64_t RowBlocksFor(int64_t m, int64_t k, int64_t n, bool ta, bool tb) {
  if (m == 0) return 1;
  if (!UseTiledPath(m, k, n, ta, tb) && ta) return 1;
  return (m + kRowBlock - 1) / kRowBlock;
}

// Computes C rows [i0, i1) for one GEMM, routing to the tiled or small-shape
// kernel. The route depends only on the full (m, k, n, ta, tb) problem, not
// on the row range, so every row takes the same code path regardless of how
// the work was partitioned. Block-pointer convention: for !ta, `a` points at
// logical row i0 of A; for ta it is the full stored matrix. `c` points at
// row i0 of C.
void GemmRows(const float* a, const float* b, float* c, int64_t m, int64_t k,
              int64_t n, bool ta, bool tb, int64_t i0, int64_t i1) {
  if (i0 >= i1 || n == 0) return;
  int64_t lda = ta ? m : k;
  int64_t ldb = tb ? k : n;
  if (UseTiledPath(m, k, n, ta, tb)) {
    TiledRows(a, b, c, k, n, ta, tb, lda, ldb, i0, i1);
    return;
  }
  if (!ta) {
    GemmDispatch(a, b, c, i1 - i0, k, n, ta, tb);
  } else {
    SSTBAN_CHECK(i0 == 0 && i1 == m);
    GemmDispatch(a, b, c, m, k, n, ta, tb);
  }
}

// Shared driver for Matmul (batch == 1) and Bmm: partitions the batch x
// row-block grid across the pool. Chunk granularity is derived from the
// shape alone, so the inline-vs-pooled decision is deterministic too.
void BatchedGemm(const float* pa, const float* pb, float* pc, int64_t batch,
                 int64_t m, int64_t k, int64_t n, bool ta, bool tb,
                 int64_t a_stride, int64_t b_stride) {
  if (batch == 0 || m == 0 || n == 0) return;
  int64_t row_blocks = RowBlocksFor(m, k, n, ta, tb);
  int64_t items = batch * row_blocks;
  int64_t o_stride = m * n;
  int64_t madds_per_item = std::min(m, kRowBlock) * std::max<int64_t>(k, 1) * n;
  int64_t min_chunk =
      std::max<int64_t>(1, kParallelMaddCutoff / std::max<int64_t>(madds_per_item, 1));
  ParallelFor(
      0, items,
      [&](int64_t lo, int64_t hi) {
        for (int64_t idx = lo; idx < hi; ++idx) {
          int64_t bi = idx / row_blocks;
          int64_t blk = idx % row_blocks;
          int64_t i0 = blk * kRowBlock;
          int64_t i1 = row_blocks == 1 ? m : std::min(m, i0 + kRowBlock);
          const float* a_base = pa + bi * a_stride + (ta ? 0 : i0 * k);
          GemmRows(a_base, pb + bi * b_stride, pc + bi * o_stride + i0 * n,
                   m, k, n, ta, tb, i0, i1);
        }
      },
      min_chunk);
}

}  // namespace

void GemmRowRangeAccumulate(const float* a_block, const float* b,
                            float* c_block, int64_t m, int64_t k, int64_t n,
                            bool ta, bool tb, int64_t i0, int64_t i1) {
  SSTBAN_CHECK(!ta || i0 == 0);
  GemmRows(a_block, b, c_block, m, k, n, ta, tb, i0, i1);
}

void GemmBatchedInto(const float* a, const float* b, float* c, int64_t batch,
                     int64_t m, int64_t k, int64_t n, bool ta, bool tb,
                     int64_t a_stride, int64_t b_stride) {
  // Zero-fill first: the kernels accumulate into C, matching the
  // Tensor::Zeros allocations in Matmul/Bmm bit for bit.
  std::fill_n(c, batch * m * n, 0.0f);
  BatchedGemm(a, b, c, batch, m, k, n, ta, tb, a_stride, b_stride);
}

Tensor Matmul(const Tensor& a, const Tensor& b) {
  SSTBAN_CHECK_EQ(a.rank(), 2);
  SSTBAN_CHECK_EQ(b.rank(), 2);
  int64_t m = a.dim(0), k = a.dim(1);
  SSTBAN_CHECK_EQ(b.dim(0), k)
      << "matmul inner dims:" << a.shape().ToString() << "x" << b.shape().ToString();
  int64_t n = b.dim(1);
  // Zeroed on purpose (pool-side AllocateZeroed): every kernel below
  // accumulates into C, so Tensor::Empty would read garbage.
  Tensor out = Tensor::Zeros(Shape{m, n});
  BatchedGemm(a.data(), b.data(), out.data(), /*batch=*/1, m, k, n,
              /*ta=*/false, /*tb=*/false, 0, 0);
  return out;
}

Tensor Bmm(const Tensor& a, const Tensor& b, bool transpose_a,
           bool transpose_b) {
  SSTBAN_CHECK_EQ(a.rank(), 3);
  SSTBAN_CHECK_EQ(b.rank(), 3);
  int64_t batch = a.dim(0);
  SSTBAN_CHECK_EQ(b.dim(0), batch);
  int64_t m = transpose_a ? a.dim(2) : a.dim(1);
  int64_t k = transpose_a ? a.dim(1) : a.dim(2);
  int64_t kb = transpose_b ? b.dim(2) : b.dim(1);
  int64_t n = transpose_b ? b.dim(1) : b.dim(2);
  SSTBAN_CHECK_EQ(k, kb) << "bmm inner dims:" << a.shape().ToString() << "x"
                         << b.shape().ToString();
  // Zeroed on purpose: the GEMM kernels accumulate into C.
  Tensor out = Tensor::Zeros(Shape{batch, m, n});
  BatchedGemm(a.data(), b.data(), out.data(), batch, m, k, n, transpose_a,
              transpose_b, a.dim(1) * a.dim(2), b.dim(1) * b.dim(2));
  return out;
}

}  // namespace sstban::tensor

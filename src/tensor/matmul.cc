#include "tensor/matmul.h"

#include <cstring>

#include "core/check.h"
#include "core/thread_pool.h"

namespace sstban::tensor {

namespace {

// C[M,N] += A[M,K] * B[K,N], all row-major contiguous. i-k-j loop order:
// the inner j-loop streams both B's row and C's row, which vectorizes well.
void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    const float* arow = a + i * k;
    for (int64_t p = 0; p < k; ++p) {
      float aval = arow[p];
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

// C[M,N] += A[M,K] * B[N,K]^T. The inner loop is a contiguous dot product
// over K for both operands (the natural layout for Q*K^T attention scores).
void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      c[i * n + j] += acc;
    }
  }
}

// C[M,N] += A[K,M]^T * B[K,N].
void GemmTN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n) {
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (int64_t i = 0; i < m; ++i) {
      float aval = arow[i];
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

// C[M,N] += A[K,M]^T * B[N,K]^T == (B*A)^T; computed directly.
void GemmTT(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += a[p * m + i] * brow[p];
      c[i * n + j] += acc;
    }
  }
}

// Attention on small models produces floods of tiny GEMMs (head_dim and
// reference-point counts of 1-8); compile-time-unrolled kernels for those
// shapes remove most of the per-element loop overhead.
template <int K>
void GemmNTFixedK(const float* a, const float* b, float* c, int64_t m,
                  int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * K;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * K;
      float acc = 0.0f;
      for (int p = 0; p < K; ++p) acc += arow[p] * brow[p];
      c[i * n + j] += acc;
    }
  }
}

template <int N>
void GemmNNFixedN(const float* a, const float* b, float* c, int64_t m,
                  int64_t k) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float acc[N] = {};
    for (int64_t p = 0; p < k; ++p) {
      float aval = arow[p];
      const float* brow = b + p * N;
      for (int j = 0; j < N; ++j) acc[j] += aval * brow[j];
    }
    float* crow = c + i * N;
    for (int j = 0; j < N; ++j) crow[j] += acc[j];
  }
}

void GemmDispatch(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n, bool ta, bool tb) {
  if (!ta && !tb) {
    switch (n) {
      case 1: GemmNNFixedN<1>(a, b, c, m, k); return;
      case 2: GemmNNFixedN<2>(a, b, c, m, k); return;
      case 3: GemmNNFixedN<3>(a, b, c, m, k); return;
      case 4: GemmNNFixedN<4>(a, b, c, m, k); return;
      case 6: GemmNNFixedN<6>(a, b, c, m, k); return;
      case 8: GemmNNFixedN<8>(a, b, c, m, k); return;
      default: GemmNN(a, b, c, m, k, n); return;
    }
  } else if (!ta && tb) {
    switch (k) {
      case 1: GemmNTFixedK<1>(a, b, c, m, n); return;
      case 2: GemmNTFixedK<2>(a, b, c, m, n); return;
      case 3: GemmNTFixedK<3>(a, b, c, m, n); return;
      case 4: GemmNTFixedK<4>(a, b, c, m, n); return;
      case 6: GemmNTFixedK<6>(a, b, c, m, n); return;
      case 8: GemmNTFixedK<8>(a, b, c, m, n); return;
      default: GemmNT(a, b, c, m, k, n); return;
    }
  } else if (ta && !tb) {
    GemmTN(a, b, c, m, k, n);
  } else {
    GemmTT(a, b, c, m, k, n);
  }
}

}  // namespace

Tensor Matmul(const Tensor& a, const Tensor& b) {
  SSTBAN_CHECK_EQ(a.rank(), 2);
  SSTBAN_CHECK_EQ(b.rank(), 2);
  int64_t m = a.dim(0), k = a.dim(1);
  SSTBAN_CHECK_EQ(b.dim(0), k)
      << "matmul inner dims:" << a.shape().ToString() << "x" << b.shape().ToString();
  int64_t n = b.dim(1);
  Tensor out(Shape{m, n});
  if (m >= 64) {
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    core::ParallelFor(0, m, [&](int64_t lo, int64_t hi) {
      GemmNN(pa + lo * k, pb, po + lo * n, hi - lo, k, n);
    }, /*min_chunk=*/16);
  } else {
    GemmNN(a.data(), b.data(), out.data(), m, k, n);
  }
  return out;
}

Tensor Bmm(const Tensor& a, const Tensor& b, bool transpose_a,
           bool transpose_b) {
  SSTBAN_CHECK_EQ(a.rank(), 3);
  SSTBAN_CHECK_EQ(b.rank(), 3);
  int64_t batch = a.dim(0);
  SSTBAN_CHECK_EQ(b.dim(0), batch);
  int64_t m = transpose_a ? a.dim(2) : a.dim(1);
  int64_t k = transpose_a ? a.dim(1) : a.dim(2);
  int64_t kb = transpose_b ? b.dim(2) : b.dim(1);
  int64_t n = transpose_b ? b.dim(1) : b.dim(2);
  SSTBAN_CHECK_EQ(k, kb) << "bmm inner dims:" << a.shape().ToString() << "x"
                         << b.shape().ToString();
  Tensor out(Shape{batch, m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  int64_t a_stride = a.dim(1) * a.dim(2);
  int64_t b_stride = b.dim(1) * b.dim(2);
  int64_t o_stride = m * n;
  core::ParallelFor(0, batch, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      GemmDispatch(pa + i * a_stride, pb + i * b_stride, po + i * o_stride, m,
                   k, n, transpose_a, transpose_b);
    }
  }, /*min_chunk=*/1);
  return out;
}

}  // namespace sstban::tensor

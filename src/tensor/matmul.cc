#include "tensor/matmul.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/check.h"
#include "core/thread_pool.h"
#include "tensor/parallel.h"

namespace sstban::tensor {

namespace {

// ---------------------------------------------------------------------------
// Shape thresholds and tile sizes.
//
// Every dispatch decision below depends only on the GEMM's shape, never on
// the thread count or the partition, so a given problem always takes the
// same arithmetic path. Combined with row-block partitioning (a C row is
// computed start-to-finish by exactly one task, in ascending-k order), this
// makes results bitwise identical run-to-run and across any number of
// threads, including the inline sequential path.
// ---------------------------------------------------------------------------

// Rows of C per parallel task. Also the unit the tiled path packs A in, so
// block boundaries are a pure function of M.
constexpr int64_t kRowBlock = 64;
// Packed-panel extents: one B panel (kKC x kNC floats = 256 KiB) plus the
// kMR x kKC A strip stay resident in L2 while the micro-kernel streams C.
constexpr int64_t kKC = 256;
constexpr int64_t kNC = 256;
// Micro-kernel height: rows of C updated together per packed A strip.
constexpr int64_t kMR = 4;
// Below this many multiply-adds per GEMM the packed/tiled path loses to the
// plain loops (packing cost dominates).
constexpr int64_t kTiledMaddCutoff = 1 << 13;
// Target multiply-adds per scheduled chunk; smaller problems run inline.
constexpr int64_t kParallelMaddCutoff = 1 << 15;

// ---------------------------------------------------------------------------
// Small-shape kernels (the pre-tiling implementations). They remain the best
// choice for the floods of tiny GEMMs attention produces (head_dim and
// reference-point counts of 1-8) where packing overhead dominates.
// ---------------------------------------------------------------------------

// C[M,N] += A[M,K] * B[K,N], all row-major contiguous. i-k-j loop order:
// the inner j-loop streams both B's row and C's row, which vectorizes well.
void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    const float* arow = a + i * k;
    for (int64_t p = 0; p < k; ++p) {
      float aval = arow[p];
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

// C[M,N] += A[M,K] * B[N,K]^T. The inner loop is a contiguous dot product
// over K for both operands (the natural layout for Q*K^T attention scores).
void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      c[i * n + j] += acc;
    }
  }
}

// C[M,N] += A[K,M]^T * B[K,N].
void GemmTN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n) {
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = a + p * m;
    const float* brow = b + p * n;
    for (int64_t i = 0; i < m; ++i) {
      float aval = arow[i];
      float* crow = c + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

// C[M,N] += A[K,M]^T * B[N,K]^T == (B*A)^T; computed directly.
void GemmTT(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += a[p * m + i] * brow[p];
      c[i * n + j] += acc;
    }
  }
}

// Attention on small models produces floods of tiny GEMMs (head_dim and
// reference-point counts of 1-8); compile-time-unrolled kernels for those
// shapes remove most of the per-element loop overhead.
template <int K>
void GemmNTFixedK(const float* a, const float* b, float* c, int64_t m,
                  int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * K;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * K;
      float acc = 0.0f;
      for (int p = 0; p < K; ++p) acc += arow[p] * brow[p];
      c[i * n + j] += acc;
    }
  }
}

template <int N>
void GemmNNFixedN(const float* a, const float* b, float* c, int64_t m,
                  int64_t k) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float acc[N] = {};
    for (int64_t p = 0; p < k; ++p) {
      float aval = arow[p];
      const float* brow = b + p * N;
      for (int j = 0; j < N; ++j) acc[j] += aval * brow[j];
    }
    float* crow = c + i * N;
    for (int j = 0; j < N; ++j) crow[j] += acc[j];
  }
}

void GemmDispatch(const float* a, const float* b, float* c, int64_t m,
                  int64_t k, int64_t n, bool ta, bool tb) {
  if (!ta && !tb) {
    switch (n) {
      case 1: GemmNNFixedN<1>(a, b, c, m, k); return;
      case 2: GemmNNFixedN<2>(a, b, c, m, k); return;
      case 3: GemmNNFixedN<3>(a, b, c, m, k); return;
      case 4: GemmNNFixedN<4>(a, b, c, m, k); return;
      case 6: GemmNNFixedN<6>(a, b, c, m, k); return;
      case 8: GemmNNFixedN<8>(a, b, c, m, k); return;
      default: GemmNN(a, b, c, m, k, n); return;
    }
  } else if (!ta && tb) {
    switch (k) {
      case 1: GemmNTFixedK<1>(a, b, c, m, n); return;
      case 2: GemmNTFixedK<2>(a, b, c, m, n); return;
      case 3: GemmNTFixedK<3>(a, b, c, m, n); return;
      case 4: GemmNTFixedK<4>(a, b, c, m, n); return;
      case 6: GemmNTFixedK<6>(a, b, c, m, n); return;
      case 8: GemmNTFixedK<8>(a, b, c, m, n); return;
      default: GemmNT(a, b, c, m, k, n); return;
    }
  } else if (ta && !tb) {
    GemmTN(a, b, c, m, k, n);
  } else {
    GemmTT(a, b, c, m, k, n);
  }
}

// ---------------------------------------------------------------------------
// Tiled/packed path. Transposition is absorbed entirely by the packing step;
// the micro-kernel only ever sees k-major packed panels.
// ---------------------------------------------------------------------------

// Packs the logical (post-transpose) panel B[p0:p0+kc, j0:j0+nc] into
// dst[kc][nc] row-major. `ldb` is the row stride of the *stored* matrix
// (n when !tb, k when tb).
void PackB(const float* b, int64_t ldb, bool tb, int64_t p0, int64_t j0,
           int64_t kc, int64_t nc, float* dst) {
  if (!tb) {
    for (int64_t p = 0; p < kc; ++p) {
      std::memcpy(dst + p * nc, b + (p0 + p) * ldb + j0,
                  static_cast<size_t>(nc) * sizeof(float));
    }
  } else {
    // Stored B is [N, K]; logical B[p][j] = stored[j][p].
    for (int64_t p = 0; p < kc; ++p) {
      float* drow = dst + p * nc;
      const float* src = b + j0 * ldb + (p0 + p);
      for (int64_t j = 0; j < nc; ++j) drow[j] = src[j * ldb];
    }
  }
}

// Packs the logical A strip rows [i0, i0+mr) x cols [p0, p0+kc) k-major:
// dst[p][r] = A[i0+r][p0+p], so the micro-kernel reads one contiguous group
// of mr values per k step. `lda` is the stored row stride (k when !ta, m
// when ta).
void PackA(const float* a, int64_t lda, bool ta, int64_t i0, int64_t p0,
           int64_t mr, int64_t kc, float* dst) {
  if (!ta) {
    for (int64_t p = 0; p < kc; ++p) {
      float* drow = dst + p * mr;
      const float* src = a + i0 * lda + (p0 + p);
      for (int64_t r = 0; r < mr; ++r) drow[r] = src[r * lda];
    }
  } else {
    // Stored A is [K, M]; the strip's k-slice is contiguous per row.
    for (int64_t p = 0; p < kc; ++p) {
      const float* srow = a + (p0 + p) * lda + i0;
      float* drow = dst + p * mr;
      for (int64_t r = 0; r < mr; ++r) drow[r] = srow[r];
    }
  }
}

// C[r][j] += sum_p Ap[p][r] * Bp[p][j] for an MR x nc tile. Accumulates
// directly into C in ascending-k order so results never depend on how rows
// were assigned to threads or on panel boundaries.
template <int MR>
void MicroKernel(const float* ap, const float* bp, float* c, int64_t ldc,
                 int64_t kc, int64_t nc) {
  for (int64_t p = 0; p < kc; ++p) {
    const float* brow = bp + p * nc;
    const float* av = ap + p * MR;
    for (int r = 0; r < MR; ++r) {
      float aval = av[r];
      float* crow = c + r * ldc;
      for (int64_t j = 0; j < nc; ++j) crow[j] += aval * brow[j];
    }
  }
}

// Per-thread packing scratch, reused across GEMM calls.
struct PackBuffers {
  std::vector<float> a;
  std::vector<float> b;
};
thread_local PackBuffers tl_pack;

// Computes C rows [i0, i1) of the full GEMM via packed panels. The loop nest
// is j-panel > k-panel > row-strip, so each C element accumulates its k
// contributions strictly in ascending order.
void TiledRows(const float* a, const float* b, float* c, int64_t k, int64_t n,
               bool ta, bool tb, int64_t lda, int64_t ldb, int64_t i0,
               int64_t i1) {
  std::vector<float>& apack = tl_pack.a;
  std::vector<float>& bpack = tl_pack.b;
  if (apack.size() < static_cast<size_t>(kMR * kKC)) apack.resize(kMR * kKC);
  if (bpack.size() < static_cast<size_t>(kKC * kNC)) bpack.resize(kKC * kNC);
  for (int64_t j0 = 0; j0 < n; j0 += kNC) {
    int64_t nc = std::min(kNC, n - j0);
    for (int64_t p0 = 0; p0 < k; p0 += kKC) {
      int64_t kc = std::min(kKC, k - p0);
      PackB(b, ldb, tb, p0, j0, kc, nc, bpack.data());
      for (int64_t i = i0; i < i1; i += kMR) {
        int64_t mr = std::min(kMR, i1 - i);
        PackA(a, lda, ta, i, p0, mr, kc, apack.data());
        float* ctile = c + i * n + j0;
        switch (mr) {
          case 4: MicroKernel<4>(apack.data(), bpack.data(), ctile, n, kc, nc); break;
          case 3: MicroKernel<3>(apack.data(), bpack.data(), ctile, n, kc, nc); break;
          case 2: MicroKernel<2>(apack.data(), bpack.data(), ctile, n, kc, nc); break;
          default: MicroKernel<1>(apack.data(), bpack.data(), ctile, n, kc, nc); break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatch and parallel driver.
// ---------------------------------------------------------------------------

bool UseTiledPath(int64_t m, int64_t k, int64_t n, bool ta, bool tb) {
  if (m * k * n < kTiledMaddCutoff) return false;
  // The register-blocked fixed-size kernels still win on the degenerate
  // inner dimensions attention produces; keep them for those shapes.
  if (!ta && !tb && n <= 8) return false;
  if (!ta && tb && k <= 8) return false;
  return true;
}

// Number of row blocks a single GEMM of this shape is split into. The legacy
// transposed-A kernels stride A by the full M, so they only run whole.
int64_t RowBlocksFor(int64_t m, int64_t k, int64_t n, bool ta, bool tb) {
  if (m == 0) return 1;
  if (!UseTiledPath(m, k, n, ta, tb) && ta) return 1;
  return (m + kRowBlock - 1) / kRowBlock;
}

// Computes C rows [i0, i1) for one GEMM, routing to the tiled or small-shape
// kernel. The route depends only on the full (m, k, n, ta, tb) problem, not
// on the row range, so every row takes the same code path regardless of how
// the work was partitioned.
void GemmRows(const float* a, const float* b, float* c, int64_t m, int64_t k,
              int64_t n, bool ta, bool tb, int64_t i0, int64_t i1) {
  if (i0 >= i1 || n == 0) return;
  int64_t lda = ta ? m : k;
  int64_t ldb = tb ? k : n;
  if (UseTiledPath(m, k, n, ta, tb)) {
    TiledRows(a, b, c, k, n, ta, tb, lda, ldb, i0, i1);
    return;
  }
  if (!ta) {
    // Row-major A: a row range is just a pointer offset.
    GemmDispatch(a + i0 * k, b, c + i0 * n, i1 - i0, k, n, ta, tb);
  } else {
    SSTBAN_CHECK(i0 == 0 && i1 == m);
    GemmDispatch(a, b, c, m, k, n, ta, tb);
  }
}

// Shared driver for Matmul (batch == 1) and Bmm: partitions the batch x
// row-block grid across the pool. Chunk granularity is derived from the
// shape alone, so the inline-vs-pooled decision is deterministic too.
void BatchedGemm(const float* pa, const float* pb, float* pc, int64_t batch,
                 int64_t m, int64_t k, int64_t n, bool ta, bool tb,
                 int64_t a_stride, int64_t b_stride) {
  if (batch == 0 || m == 0 || n == 0) return;
  int64_t row_blocks = RowBlocksFor(m, k, n, ta, tb);
  int64_t items = batch * row_blocks;
  int64_t o_stride = m * n;
  int64_t madds_per_item = std::min(m, kRowBlock) * std::max<int64_t>(k, 1) * n;
  int64_t min_chunk =
      std::max<int64_t>(1, kParallelMaddCutoff / std::max<int64_t>(madds_per_item, 1));
  ParallelFor(
      0, items,
      [&](int64_t lo, int64_t hi) {
        for (int64_t idx = lo; idx < hi; ++idx) {
          int64_t bi = idx / row_blocks;
          int64_t blk = idx % row_blocks;
          int64_t i0 = blk * kRowBlock;
          int64_t i1 = row_blocks == 1 ? m : std::min(m, i0 + kRowBlock);
          GemmRows(pa + bi * a_stride, pb + bi * b_stride, pc + bi * o_stride,
                   m, k, n, ta, tb, i0, i1);
        }
      },
      min_chunk);
}

}  // namespace

void GemmBatchedInto(const float* a, const float* b, float* c, int64_t batch,
                     int64_t m, int64_t k, int64_t n, bool ta, bool tb,
                     int64_t a_stride, int64_t b_stride) {
  // Zero-fill first: the kernels accumulate into C, matching the
  // Tensor::Zeros allocations in Matmul/Bmm bit for bit.
  std::fill_n(c, batch * m * n, 0.0f);
  BatchedGemm(a, b, c, batch, m, k, n, ta, tb, a_stride, b_stride);
}

Tensor Matmul(const Tensor& a, const Tensor& b) {
  SSTBAN_CHECK_EQ(a.rank(), 2);
  SSTBAN_CHECK_EQ(b.rank(), 2);
  int64_t m = a.dim(0), k = a.dim(1);
  SSTBAN_CHECK_EQ(b.dim(0), k)
      << "matmul inner dims:" << a.shape().ToString() << "x" << b.shape().ToString();
  int64_t n = b.dim(1);
  // Zeroed on purpose (pool-side AllocateZeroed): every kernel below
  // accumulates into C, so Tensor::Empty would read garbage.
  Tensor out = Tensor::Zeros(Shape{m, n});
  BatchedGemm(a.data(), b.data(), out.data(), /*batch=*/1, m, k, n,
              /*ta=*/false, /*tb=*/false, 0, 0);
  return out;
}

Tensor Bmm(const Tensor& a, const Tensor& b, bool transpose_a,
           bool transpose_b) {
  SSTBAN_CHECK_EQ(a.rank(), 3);
  SSTBAN_CHECK_EQ(b.rank(), 3);
  int64_t batch = a.dim(0);
  SSTBAN_CHECK_EQ(b.dim(0), batch);
  int64_t m = transpose_a ? a.dim(2) : a.dim(1);
  int64_t k = transpose_a ? a.dim(1) : a.dim(2);
  int64_t kb = transpose_b ? b.dim(2) : b.dim(1);
  int64_t n = transpose_b ? b.dim(1) : b.dim(2);
  SSTBAN_CHECK_EQ(k, kb) << "bmm inner dims:" << a.shape().ToString() << "x"
                         << b.shape().ToString();
  // Zeroed on purpose: the GEMM kernels accumulate into C.
  Tensor out = Tensor::Zeros(Shape{batch, m, n});
  BatchedGemm(a.data(), b.data(), out.data(), batch, m, k, n, transpose_a,
              transpose_b, a.dim(1) * a.dim(2), b.dim(1) * b.dim(2));
  return out;
}

}  // namespace sstban::tensor

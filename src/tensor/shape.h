#ifndef SSTBAN_TENSOR_SHAPE_H_
#define SSTBAN_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace sstban::tensor {

// Dimensions of a dense row-major tensor. Rank 0 denotes a scalar.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  int rank() const { return static_cast<int>(dims_.size()); }
  int64_t dim(int i) const;
  // Negative axes count from the end (-1 is the last axis).
  int64_t operator[](int i) const { return dim(i); }
  const std::vector<int64_t>& dims() const { return dims_; }

  // Product of all dimensions; 1 for a scalar.
  int64_t NumElements() const;

  // Row-major strides, in elements.
  std::vector<int64_t> Strides() const;

  // Canonicalizes a possibly negative axis into [0, rank).
  int CanonicalAxis(int axis) const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return dims_ != other.dims_; }

  // e.g. "[2, 3, 4]".
  std::string ToString() const;

 private:
  std::vector<int64_t> dims_;
};

// Result shape of broadcasting `a` against `b` under NumPy rules.
// CHECK-fails if the shapes are incompatible.
Shape BroadcastShapes(const Shape& a, const Shape& b);

}  // namespace sstban::tensor

#endif  // SSTBAN_TENSOR_SHAPE_H_

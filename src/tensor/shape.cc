#include "tensor/shape.h"

#include <algorithm>

#include "core/check.h"
#include "core/string_util.h"

namespace sstban::tensor {

int64_t Shape::dim(int i) const {
  int axis = CanonicalAxis(i);
  return dims_[axis];
}

int64_t Shape::NumElements() const {
  int64_t n = 1;
  for (int64_t d : dims_) n *= d;
  return n;
}

std::vector<int64_t> Shape::Strides() const {
  std::vector<int64_t> strides(dims_.size());
  int64_t stride = 1;
  for (int i = rank() - 1; i >= 0; --i) {
    strides[i] = stride;
    stride *= dims_[i];
  }
  return strides;
}

int Shape::CanonicalAxis(int axis) const {
  int r = rank();
  if (axis < 0) axis += r;
  SSTBAN_CHECK(axis >= 0 && axis < r)
      << "axis" << axis << "out of range for rank" << r;
  return axis;
}

std::string Shape::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(dims_.size());
  for (int64_t d : dims_) parts.push_back(std::to_string(d));
  return "[" + core::Join(parts, ", ") + "]";
}

Shape BroadcastShapes(const Shape& a, const Shape& b) {
  int rank = std::max(a.rank(), b.rank());
  std::vector<int64_t> dims(rank);
  for (int i = 0; i < rank; ++i) {
    int ai = a.rank() - rank + i;
    int bi = b.rank() - rank + i;
    int64_t da = ai >= 0 ? a.dims()[ai] : 1;
    int64_t db = bi >= 0 ? b.dims()[bi] : 1;
    SSTBAN_CHECK(da == db || da == 1 || db == 1)
        << "cannot broadcast" << a.ToString() << "with" << b.ToString();
    dims[i] = std::max(da, db);
  }
  return Shape(std::move(dims));
}

}  // namespace sstban::tensor

#include "tensor/linalg.h"

#include <cmath>

#include "core/string_util.h"

namespace sstban::tensor {

core::StatusOr<Tensor> CholeskyFactor(const Tensor& a) {
  if (a.rank() != 2 || a.dim(0) != a.dim(1)) {
    return core::Status::InvalidArgument(
        "CholeskyFactor requires a square matrix, got " + a.shape().ToString());
  }
  int64_t n = a.dim(0);
  Tensor l = Tensor::Zeros(Shape{n, n});
  const float* pa = a.data();
  float* pl = l.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      double acc = pa[i * n + j];
      for (int64_t k = 0; k < j; ++k) {
        acc -= static_cast<double>(pl[i * n + k]) * pl[j * n + k];
      }
      if (i == j) {
        if (acc <= 0.0) {
          return core::Status::InvalidArgument(core::StrFormat(
              "matrix is not positive definite (pivot %lld is %g)",
              static_cast<long long>(i), acc));
        }
        pl[i * n + j] = static_cast<float>(std::sqrt(acc));
      } else {
        pl[i * n + j] = static_cast<float>(acc / pl[j * n + j]);
      }
    }
  }
  return l;
}

core::StatusOr<Tensor> CholeskySolve(const Tensor& a, const Tensor& b) {
  if (b.rank() != 2 || b.dim(0) != a.dim(0)) {
    return core::Status::InvalidArgument(
        "CholeskySolve shape mismatch: A " + a.shape().ToString() + ", B " +
        b.shape().ToString());
  }
  auto factor = CholeskyFactor(a);
  if (!factor.ok()) return factor.status();
  const Tensor& l = factor.value();
  int64_t n = a.dim(0);
  int64_t m = b.dim(1);
  const float* pl = l.data();
  // Forward substitution: L Y = B.
  Tensor y = b.Clone();
  float* py = y.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < m; ++c) {
      double acc = py[i * m + c];
      for (int64_t k = 0; k < i; ++k) acc -= static_cast<double>(pl[i * n + k]) * py[k * m + c];
      py[i * m + c] = static_cast<float>(acc / pl[i * n + i]);
    }
  }
  // Back substitution: L^T X = Y.
  Tensor x = y.Clone();
  float* px = x.data();
  for (int64_t i = n - 1; i >= 0; --i) {
    for (int64_t c = 0; c < m; ++c) {
      double acc = px[i * m + c];
      for (int64_t k = i + 1; k < n; ++k) {
        acc -= static_cast<double>(pl[k * n + i]) * px[k * m + c];
      }
      px[i * m + c] = static_cast<float>(acc / pl[i * n + i]);
    }
  }
  return x;
}

}  // namespace sstban::tensor

#ifndef SSTBAN_TENSOR_MATMUL_H_
#define SSTBAN_TENSOR_MATMUL_H_

#include "tensor/tensor.h"

namespace sstban::tensor {

// Dense matrix product of rank-2 tensors: [M, K] x [K, N] -> [M, N].
Tensor Matmul(const Tensor& a, const Tensor& b);

// Batched matrix product of rank-3 tensors with shared batch size:
// [B, M, K] x [B, K, N] -> [B, M, N]. When transpose_a / transpose_b are
// set the corresponding operand's trailing two axes are treated as
// transposed (so a is [B, K, M] and/or b is [B, N, K]); the flags avoid
// materializing transposed copies in attention kernels and backward passes.
Tensor Bmm(const Tensor& a, const Tensor& b, bool transpose_a = false,
           bool transpose_b = false);

// Raw-pointer entry point into the same batched GEMM driver that Matmul and
// Bmm use: zero-fills `c` ([batch, m, n] contiguous) and accumulates
// A ([batch, m, k] or [batch, k, m] when ta) x B ([batch, k, n] or
// [batch, n, k] when tb) into it. `a_stride` / `b_stride` are per-batch
// element strides (pass 0 to reuse one operand across the batch). Kernel
// routing and partitioning depend only on (m, k, n, ta, tb), so results are
// bitwise-identical to Matmul/Bmm on the same operands at any thread count.
void GemmBatchedInto(const float* a, const float* b, float* c, int64_t batch,
                     int64_t m, int64_t k, int64_t n, bool ta, bool tb,
                     int64_t a_stride, int64_t b_stride);

// Accumulates rows [i0, i1) of C += op(A) x op(B) for the *logical* problem
// (m, k, n, ta, tb) without touching the other rows. Block-pointer
// convention: `a_block` points at logical row i0 of A (so callers can hand
// in a scratch tile that only holds those rows) and `c_block` points at row
// i0 of C; both use the full row strides (k and n). `ta` requires i0 == 0
// and a_block == the full stored [K, M] matrix. C rows must already hold
// the values to accumulate onto (zero-fill for a plain product).
//
// Kernel routing is decided from the full (m, k, n, ta, tb) shape — not the
// row count i1 - i0 — so the per-row arithmetic is bitwise identical to a
// GemmBatchedInto of the whole problem. This is what lets the fused
// attention kernel (tensor/fused_attention.h) stream row blocks through
// scratch while matching the unfused Bmm chain bit for bit.
void GemmRowRangeAccumulate(const float* a_block, const float* b,
                            float* c_block, int64_t m, int64_t k, int64_t n,
                            bool ta, bool tb, int64_t i0, int64_t i1);

// The row-block granule GemmBatchedInto partitions M into (and the natural
// `i1 - i0` to pass to GemmRowRangeAccumulate when mirroring it).
inline constexpr int64_t kGemmRowBlock = 64;

}  // namespace sstban::tensor

#endif  // SSTBAN_TENSOR_MATMUL_H_

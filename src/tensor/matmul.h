#ifndef SSTBAN_TENSOR_MATMUL_H_
#define SSTBAN_TENSOR_MATMUL_H_

#include "tensor/tensor.h"

namespace sstban::tensor {

// Dense matrix product of rank-2 tensors: [M, K] x [K, N] -> [M, N].
Tensor Matmul(const Tensor& a, const Tensor& b);

// Batched matrix product of rank-3 tensors with shared batch size:
// [B, M, K] x [B, K, N] -> [B, M, N]. When transpose_a / transpose_b are
// set the corresponding operand's trailing two axes are treated as
// transposed (so a is [B, K, M] and/or b is [B, N, K]); the flags avoid
// materializing transposed copies in attention kernels and backward passes.
Tensor Bmm(const Tensor& a, const Tensor& b, bool transpose_a = false,
           bool transpose_b = false);

}  // namespace sstban::tensor

#endif  // SSTBAN_TENSOR_MATMUL_H_

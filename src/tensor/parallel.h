#ifndef SSTBAN_TENSOR_PARALLEL_H_
#define SSTBAN_TENSOR_PARALLEL_H_

#include <cstdint>
#include <functional>

#include "core/thread_pool.h"

namespace sstban::tensor {

// Chunked parallel loop for tensor kernels: splits [begin, end) into
// contiguous index ranges and runs `body(lo, hi)` across the global worker
// pool. Thin veneer over core::ParallelFor with a grain default tuned for
// elementwise/softmax-style loops; inherits its guarantees:
//   - exceptions thrown by `body` propagate to the caller;
//   - nested calls (a body that itself fans out) cannot deadlock;
//   - which thread runs a chunk never affects the chunk's bounds or its
//     arithmetic, so kernels that write disjoint ranges stay bitwise
//     deterministic at any thread count.
inline void ParallelFor(int64_t begin, int64_t end,
                        const std::function<void(int64_t, int64_t)>& body,
                        int64_t grain = 1024) {
  core::ParallelFor(begin, end, body, grain);
}

// Per-item form for loops whose iterations are individually substantial
// (per-request output slices, per-parameter snapshots): runs fn(i) for each
// i in [0, n), `grain` items per scheduled chunk.
inline void ParallelForEachIndex(int64_t n,
                                 const std::function<void(int64_t)>& fn,
                                 int64_t grain = 1) {
  core::ParallelFor(
      0, n,
      [&fn](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) fn(i);
      },
      grain);
}

}  // namespace sstban::tensor

#endif  // SSTBAN_TENSOR_PARALLEL_H_

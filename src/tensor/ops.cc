#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "core/check.h"
#include "tensor/parallel.h"
#include "tensor/simd/kernels.h"

namespace sstban::tensor {

namespace {

// Same-shape elementwise ops route through the SIMD dispatch table. The
// vector kernels are exactly rounded per element, so the result is bitwise
// identical to the scalar loops in every tier; the indirection exists to
// keep Debug/sanitizer builds fast and the kernel layer in one place.
Tensor SameShapeBinary(const Tensor& a, const Tensor& b, simd::BinaryFn fn) {
  Tensor out = Tensor::Empty(a.shape());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  ParallelFor(0, out.size(), [&](int64_t lo, int64_t hi) {
    fn(pa + lo, pb + lo, po + lo, hi - lo);
  });
  return out;
}

Tensor ScalarMap(const Tensor& a, float s, simd::ScalarMapFn fn) {
  Tensor out = Tensor::Empty(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, out.size(), [&](int64_t lo, int64_t hi) {
    fn(pa + lo, s, po + lo, hi - lo);
  });
  return out;
}

// Strides for iterating `shape` as if broadcast to `out_shape`: broadcast
// axes get stride 0.
std::vector<int64_t> BroadcastStrides(const Shape& shape, const Shape& out_shape) {
  std::vector<int64_t> natural = shape.Strides();
  std::vector<int64_t> strides(out_shape.rank(), 0);
  int offset = out_shape.rank() - shape.rank();
  for (int i = 0; i < shape.rank(); ++i) {
    strides[offset + i] = shape.dims()[i] == 1 ? 0 : natural[i];
  }
  return strides;
}

template <typename BinaryFn>
Tensor BinaryOp(const Tensor& a, const Tensor& b, BinaryFn fn) {
  // Fast path: identical shapes.
  if (a.shape() == b.shape()) {
    Tensor out = Tensor::Empty(a.shape());
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    int64_t n = out.size();
    ParallelFor(0, n, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) po[i] = fn(pa[i], pb[i]);
    });
    return out;
  }
  // Fast path: b is a scalar. Only valid when the broadcast result shape
  // equals a's shape, i.e. b does not carry extra leading axes.
  if (b.size() == 1 && b.rank() <= a.rank()) {
    float s = b.data()[0];
    Tensor out = Tensor::Empty(a.shape());
    const float* pa = a.data();
    float* po = out.data();
    int64_t n = out.size();
    for (int64_t i = 0; i < n; ++i) po[i] = fn(pa[i], s);
    return out;
  }
  if (a.size() == 1 && a.rank() <= b.rank()) {
    float s = a.data()[0];
    Tensor out = Tensor::Empty(b.shape());
    const float* pb = b.data();
    float* po = out.data();
    int64_t n = out.size();
    for (int64_t i = 0; i < n; ++i) po[i] = fn(s, pb[i]);
    return out;
  }
  // General broadcast path with odometer iteration.
  Shape out_shape = BroadcastShapes(a.shape(), b.shape());
  Tensor out = Tensor::Empty(out_shape);
  std::vector<int64_t> sa = BroadcastStrides(a.shape(), out_shape);
  std::vector<int64_t> sb = BroadcastStrides(b.shape(), out_shape);
  int rank = out_shape.rank();
  std::vector<int64_t> index(rank, 0);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  int64_t offset_a = 0;
  int64_t offset_b = 0;
  int64_t n = out.size();
  for (int64_t i = 0; i < n; ++i) {
    po[i] = fn(pa[offset_a], pb[offset_b]);
    // Advance the odometer from the last axis.
    for (int axis = rank - 1; axis >= 0; --axis) {
      ++index[axis];
      offset_a += sa[axis];
      offset_b += sb[axis];
      if (index[axis] < out_shape.dims()[axis]) break;
      offset_a -= sa[axis] * out_shape.dims()[axis];
      offset_b -= sb[axis] * out_shape.dims()[axis];
      index[axis] = 0;
    }
  }
  return out;
}

template <typename UnaryFn>
Tensor UnaryOp(const Tensor& a, UnaryFn fn) {
  Tensor out = Tensor::Empty(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  int64_t n = out.size();
  ParallelFor(0, n, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = fn(pa[i]);
  });
  return out;
}

// Decomposes the shape around `axis` into (outer, axis_size, inner) so that
// flat index = (outer_i * axis_size + axis_i) * inner + inner_i.
void AxisGeometry(const Shape& shape, int axis, int64_t* outer, int64_t* mid,
                  int64_t* inner) {
  *outer = 1;
  *mid = shape.dims()[axis];
  *inner = 1;
  for (int i = 0; i < axis; ++i) *outer *= shape.dims()[i];
  for (int i = axis + 1; i < shape.rank(); ++i) *inner *= shape.dims()[i];
}

Shape ReducedShape(const Shape& shape, int axis, bool keepdim) {
  std::vector<int64_t> dims;
  for (int i = 0; i < shape.rank(); ++i) {
    if (i == axis) {
      if (keepdim) dims.push_back(1);
    } else {
      dims.push_back(shape.dims()[i]);
    }
  }
  return Shape(std::move(dims));
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  if (a.shape() == b.shape()) return SameShapeBinary(a, b, simd::Kernels().add);
  return BinaryOp(a, b, [](float x, float y) { return x + y; });
}
Tensor Sub(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return x - y; });
}
Tensor Mul(const Tensor& a, const Tensor& b) {
  if (a.shape() == b.shape()) return SameShapeBinary(a, b, simd::Kernels().mul);
  return BinaryOp(a, b, [](float x, float y) { return x * y; });
}
Tensor Div(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return x / y; });
}
Tensor Maximum(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return std::max(x, y); });
}
Tensor Minimum(const Tensor& a, const Tensor& b) {
  return BinaryOp(a, b, [](float x, float y) { return std::min(x, y); });
}

Tensor AddScalar(const Tensor& a, float s) {
  return ScalarMap(a, s, simd::Kernels().add_scalar);
}
Tensor MulScalar(const Tensor& a, float s) {
  return ScalarMap(a, s, simd::Kernels().mul_scalar);
}

Tensor Neg(const Tensor& a) {
  return UnaryOp(a, [](float x) { return -x; });
}
Tensor Exp(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::exp(x); });
}
Tensor Log(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::log(x); });
}
Tensor Sqrt(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::sqrt(x); });
}
Tensor Abs(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::fabs(x); });
}
Tensor Sign(const Tensor& a) {
  return UnaryOp(a, [](float x) { return x > 0 ? 1.0f : (x < 0 ? -1.0f : 0.0f); });
}
Tensor Square(const Tensor& a) {
  return UnaryOp(a, [](float x) { return x * x; });
}
Tensor Relu(const Tensor& a) {
  const simd::UnaryFn fn = simd::Kernels().relu;
  Tensor out = Tensor::Empty(a.shape());
  const float* pa = a.data();
  float* po = out.data();
  ParallelFor(0, out.size(), [&](int64_t lo, int64_t hi) {
    fn(pa + lo, po + lo, hi - lo);
  });
  return out;
}
Tensor Sigmoid(const Tensor& a) {
  return UnaryOp(a, [](float x) { return 1.0f / (1.0f + std::exp(-x)); });
}
Tensor Tanh(const Tensor& a) {
  return UnaryOp(a, [](float x) { return std::tanh(x); });
}

Tensor SumAll(const Tensor& a) {
  const float* pa = a.data();
  double acc = 0.0;
  int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) acc += pa[i];
  return Tensor::Scalar(static_cast<float>(acc));
}

Tensor MeanAll(const Tensor& a) {
  SSTBAN_CHECK_GT(a.size(), 0);
  return MulScalar(SumAll(a), 1.0f / static_cast<float>(a.size()));
}

float MaxAll(const Tensor& a) {
  SSTBAN_CHECK_GT(a.size(), 0);
  const float* pa = a.data();
  float m = pa[0];
  int64_t n = a.size();
  for (int64_t i = 1; i < n; ++i) m = std::max(m, pa[i]);
  return m;
}

float MinAll(const Tensor& a) {
  SSTBAN_CHECK_GT(a.size(), 0);
  const float* pa = a.data();
  float m = pa[0];
  int64_t n = a.size();
  for (int64_t i = 1; i < n; ++i) m = std::min(m, pa[i]);
  return m;
}

Tensor Sum(const Tensor& a, int axis, bool keepdim) {
  axis = a.shape().CanonicalAxis(axis);
  int64_t outer, mid, inner;
  AxisGeometry(a.shape(), axis, &outer, &mid, &inner);
  Tensor out = Tensor::Empty(ReducedShape(a.shape(), axis, keepdim));
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t in = 0; in < inner; ++in) {
      double acc = 0.0;
      for (int64_t m = 0; m < mid; ++m) {
        acc += pa[(o * mid + m) * inner + in];
      }
      po[o * inner + in] = static_cast<float>(acc);
    }
  }
  return out;
}

Tensor Mean(const Tensor& a, int axis, bool keepdim) {
  axis = a.shape().CanonicalAxis(axis);
  int64_t n = a.shape().dims()[axis];
  return MulScalar(Sum(a, axis, keepdim), 1.0f / static_cast<float>(n));
}

Tensor Max(const Tensor& a, int axis, bool keepdim) {
  axis = a.shape().CanonicalAxis(axis);
  int64_t outer, mid, inner;
  AxisGeometry(a.shape(), axis, &outer, &mid, &inner);
  SSTBAN_CHECK_GT(mid, 0);
  Tensor out = Tensor::Empty(ReducedShape(a.shape(), axis, keepdim));
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t in = 0; in < inner; ++in) {
      float m = pa[o * mid * inner + in];
      for (int64_t k = 1; k < mid; ++k) {
        m = std::max(m, pa[(o * mid + k) * inner + in]);
      }
      po[o * inner + in] = m;
    }
  }
  return out;
}

Tensor ReduceToShape(const Tensor& grad, const Shape& target) {
  if (grad.shape() == target) return grad;
  Tensor current = grad;
  // Collapse leading extra axes.
  while (current.rank() > target.rank()) {
    current = Sum(current, 0, /*keepdim=*/false);
  }
  // Sum over axes that were broadcast from size 1.
  for (int i = 0; i < target.rank(); ++i) {
    if (target.dims()[i] == 1 && current.shape().dims()[i] != 1) {
      current = Sum(current, i, /*keepdim=*/true);
    }
  }
  SSTBAN_CHECK(current.shape() == target)
      << "cannot reduce" << grad.shape().ToString() << "to" << target.ToString();
  return current;
}

Tensor Transpose(const Tensor& a) {
  SSTBAN_CHECK_EQ(a.rank(), 2);
  return Permute(a, {1, 0});
}

Tensor Permute(const Tensor& a, const std::vector<int>& perm) {
  SSTBAN_CHECK_EQ(static_cast<int>(perm.size()), a.rank());
  int rank = a.rank();
  std::vector<bool> seen(rank, false);
  std::vector<int64_t> new_dims(rank);
  for (int i = 0; i < rank; ++i) {
    SSTBAN_CHECK(perm[i] >= 0 && perm[i] < rank && !seen[perm[i]])
        << "invalid permutation";
    seen[perm[i]] = true;
    new_dims[i] = a.shape().dims()[perm[i]];
  }
  Tensor out = Tensor::Empty(Shape(new_dims));
  std::vector<int64_t> in_strides = a.shape().Strides();
  // Stride in the input for a unit step along each output axis.
  std::vector<int64_t> step(rank);
  for (int i = 0; i < rank; ++i) step[i] = in_strides[perm[i]];
  const float* pa = a.data();
  float* po = out.data();
  // Fast path: when the trailing axes are left in place the innermost run
  // is contiguous in both tensors, so rows can be block-copied (covers the
  // ubiquitous [0,2,1,3]-style attention reshuffles).
  int tail = 0;
  while (tail < rank && perm[rank - 1 - tail] == rank - 1 - tail) ++tail;
  if (tail > 0 && tail < rank) {
    int64_t run = 1;
    for (int i = rank - tail; i < rank; ++i) run *= new_dims[i];
    int outer_rank = rank - tail;
    std::vector<int64_t> index(outer_rank, 0);
    int64_t in_offset = 0;
    int64_t rows = out.size() / run;
    for (int64_t r = 0; r < rows; ++r) {
      std::memcpy(po + r * run, pa + in_offset,
                  static_cast<size_t>(run) * sizeof(float));
      // Odometer over the outer output axes; step[] converts an increment
      // of output axis `axis` into an input-offset delta.
      for (int axis = outer_rank - 1; axis >= 0; --axis) {
        ++index[axis];
        in_offset += step[axis];
        if (index[axis] < new_dims[axis]) break;
        in_offset -= step[axis] * new_dims[axis];
        index[axis] = 0;
      }
    }
    return out;
  }
  std::vector<int64_t> index(rank, 0);
  int64_t in_offset = 0;
  int64_t n = out.size();
  for (int64_t i = 0; i < n; ++i) {
    po[i] = pa[in_offset];
    for (int axis = rank - 1; axis >= 0; --axis) {
      ++index[axis];
      in_offset += step[axis];
      if (index[axis] < new_dims[axis]) break;
      in_offset -= step[axis] * new_dims[axis];
      index[axis] = 0;
    }
  }
  return out;
}

Tensor Concat(const std::vector<Tensor>& parts, int axis) {
  SSTBAN_CHECK(!parts.empty());
  axis = parts[0].shape().CanonicalAxis(axis);
  int rank = parts[0].rank();
  int64_t axis_total = 0;
  for (const Tensor& p : parts) {
    SSTBAN_CHECK_EQ(p.rank(), rank);
    for (int i = 0; i < rank; ++i) {
      if (i != axis) {
        SSTBAN_CHECK_EQ(p.shape().dims()[i], parts[0].shape().dims()[i]);
      }
    }
    axis_total += p.shape().dims()[axis];
  }
  std::vector<int64_t> out_dims = parts[0].shape().dims();
  out_dims[axis] = axis_total;
  Tensor out = Tensor::Empty(Shape(out_dims));
  int64_t outer, mid_unused, inner;
  AxisGeometry(out.shape(), axis, &outer, &mid_unused, &inner);
  float* po = out.data();
  int64_t axis_offset = 0;
  for (const Tensor& p : parts) {
    int64_t mid = p.shape().dims()[axis];
    const float* pp = p.data();
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(po + (o * axis_total + axis_offset) * inner,
                  pp + o * mid * inner,
                  static_cast<size_t>(mid * inner) * sizeof(float));
    }
    axis_offset += mid;
  }
  return out;
}

Tensor Slice(const Tensor& a, int axis, int64_t start, int64_t length) {
  axis = a.shape().CanonicalAxis(axis);
  int64_t axis_size = a.shape().dims()[axis];
  SSTBAN_CHECK(start >= 0 && length >= 0 && start + length <= axis_size)
      << "slice [" << start << "," << (start + length) << ") out of range for axis size"
      << axis_size;
  std::vector<int64_t> out_dims = a.shape().dims();
  out_dims[axis] = length;
  Tensor out = Tensor::Empty(Shape(out_dims));
  int64_t outer, mid, inner;
  AxisGeometry(a.shape(), axis, &outer, &mid, &inner);
  const float* pa = a.data();
  float* po = out.data();
  for (int64_t o = 0; o < outer; ++o) {
    std::memcpy(po + o * length * inner, pa + (o * mid + start) * inner,
                static_cast<size_t>(length * inner) * sizeof(float));
  }
  return out;
}

Tensor RepeatAxis(const Tensor& a, int axis, int64_t repeats) {
  axis = a.shape().CanonicalAxis(axis);
  SSTBAN_CHECK_EQ(a.shape().dims()[axis], 1)
      << "RepeatAxis requires size-1 axis";
  SSTBAN_CHECK_GE(repeats, 1);
  std::vector<int64_t> out_dims = a.shape().dims();
  out_dims[axis] = repeats;
  Tensor out = Tensor::Empty(Shape(std::move(out_dims)));
  int64_t outer, mid, inner;
  AxisGeometry(a.shape(), axis, &outer, &mid, &inner);
  const float* pa = a.data();
  float* po = out.data();
  size_t run_bytes = static_cast<size_t>(inner) * sizeof(float);
  for (int64_t o = 0; o < outer; ++o) {
    const float* src = pa + o * inner;
    float* dst = po + o * repeats * inner;
    for (int64_t r = 0; r < repeats; ++r) {
      std::memcpy(dst + r * inner, src, run_bytes);
    }
  }
  return out;
}

void SoftmaxRows(const float* in, float* out, int64_t rows, int64_t cols) {
  const simd::SoftmaxRowFn fn = simd::Kernels().softmax_row;
  ParallelFor(0, rows, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      fn(in + r * cols, out + r * cols, cols);
    }
  }, /*min_chunk=*/64);
}

Tensor Softmax(const Tensor& a) {
  SSTBAN_CHECK_GE(a.rank(), 1);
  int64_t cols = a.shape().dims()[a.rank() - 1];
  int64_t rows = a.size() / cols;
  Tensor out = Tensor::Empty(a.shape());
  SoftmaxRows(a.data(), out.data(), rows, cols);
  return out;
}

Tensor SoftmaxWithMask(const Tensor& a, const Tensor& additive_mask) {
  return Softmax(Add(a, additive_mask));
}

bool AllClose(const Tensor& a, const Tensor& b, float atol, float rtol) {
  if (a.shape() != b.shape()) return false;
  const float* pa = a.data();
  const float* pb = b.data();
  int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) {
    float tolerance = atol + rtol * std::fabs(pb[i]);
    if (std::fabs(pa[i] - pb[i]) > tolerance) return false;
  }
  return true;
}

bool HasNonFinite(const Tensor& a) {
  const float* pa = a.data();
  int64_t n = a.size();
  for (int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(pa[i])) return true;
  }
  return false;
}

}  // namespace sstban::tensor

#ifndef SSTBAN_TENSOR_SIMD_KERNELS_H_
#define SSTBAN_TENSOR_SIMD_KERNELS_H_

#include <cstdint>

#include "core/cpu_features.h"

namespace sstban::tensor::simd {

// Runtime-dispatched kernel table (DESIGN.md §14). One table is selected for
// the whole process from core::ActiveSimdLevel(); every hot loop in the
// tensor layer (packed GEMM micro-kernel, softmax rows, elementwise ops,
// fused attention) indirects through it. Two invariants make this safe under
// the repo's bitwise determinism contracts:
//   1. The table choice is a process-wide constant — kernel routing never
//      depends on thread count, partition, or call site.
//   2. Every kernel processes its elements in a fixed order that depends
//      only on the problem shape, so results are identical no matter how
//      the surrounding ParallelFor partitioned the work.
// Results *across* tables differ (FMA contraction, vectorized exp); a given
// process never mixes tables, so each mode is self-consistent.

// Packed-GEMM micro-kernel: C[r][j] += sum_p ap[p*mr + r] * bp[p*nc + j]
// for a full-height (mr == gemm_mr) tile. Accumulates into C ascending-p.
using GemmTileFn = void (*)(const float* ap, const float* bp, float* c,
                            int64_t ldc, int64_t kc, int64_t nc);
// Remainder tile with runtime height 1 <= mr < gemm_mr.
using GemmTailFn = void (*)(const float* ap, const float* bp, float* c,
                            int64_t ldc, int64_t kc, int64_t nc, int64_t mr);

// Unpacked attention-shape GEMMs: the small-inner-dimension problems
// UseTiledPath (matmul.cc) keeps out of the packed path. gemm_nt_small is
// C[M,N] += A[M,K] * B[N,K]^T (attention scores QK^T, K = head_dim);
// gemm_nn_small is C[M,N] += A[M,K] * B[K,N] (context P*V, N = head_dim).
// Every C element accumulates its K contributions in ascending order.
using GemmSmallFn = void (*)(const float* a, const float* b, float* c,
                             int64_t m, int64_t k, int64_t n);

using BinaryFn = void (*)(const float* a, const float* b, float* o, int64_t n);
using ScalarMapFn = void (*)(const float* a, float s, float* o, int64_t n);
using UnaryFn = void (*)(const float* a, float* o, int64_t n);
// Max over n elements (n >= 1).
using ReduceMaxFn = float (*)(const float* a, int64_t n);
// o[i] = exp(a[i] - m); returns sum of the written values in double, summed
// in ascending order (scalar) or a fixed lane order (vector).
using ExpSumFn = double (*)(const float* a, float m, float* o, int64_t n);
// Full numerically-stable softmax of one row; in == out allowed.
using SoftmaxRowFn = void (*)(const float* in, float* out, int64_t n);

struct SimdKernels {
  const char* name;
  int64_t gemm_mr;  // full micro-tile height the packed path uses
  GemmTileFn gemm_tile;
  GemmTailFn gemm_tail;
  GemmSmallFn gemm_nt_small;
  GemmSmallFn gemm_nn_small;
  BinaryFn add;
  BinaryFn mul;
  ScalarMapFn add_scalar;
  ScalarMapFn mul_scalar;
  UnaryFn relu;
  ReduceMaxFn reduce_max;
  ExpSumFn exp_sum;
  SoftmaxRowFn softmax_row;
};

// Table for the process-wide active level (resolved once, then cached by
// the caller-side of hot loops; cheap enough to call per op).
const SimdKernels& Kernels();

// Table for an explicit level — bench/test comparisons only.
const SimdKernels& KernelsFor(core::SimdLevel level);

namespace internal {
const SimdKernels& ScalarKernels();
// nullptr when the AVX2 translation unit is compiled out (non-x86 builds).
const SimdKernels* Avx2Kernels();
}  // namespace internal

}  // namespace sstban::tensor::simd

#endif  // SSTBAN_TENSOR_SIMD_KERNELS_H_

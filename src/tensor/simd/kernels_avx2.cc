// AVX2 + FMA kernel tier. This translation unit is compiled with
// -mavx2 -mfma regardless of the global flags (see tensor/CMakeLists.txt);
// nothing here executes unless the runtime dispatcher (core/cpu_features.h)
// confirmed hardware support, so the binary stays safe on plain-SSE x86.
//
// Numerics: FMA keeps qk-products unrounded inside the micro-kernel and the
// vectorized exp is a Cephes-style polynomial (~2 ulp), so this tier's
// results differ from the scalar tier's at the rounding level. Within the
// tier everything is deterministic: lane order, tail handling, and tile
// geometry are pure functions of the problem shape.

#include "tensor/simd/kernels.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace sstban::tensor::simd {

namespace {

constexpr int64_t kAvx2MR = 6;  // 6x16 register block: 12 accumulator ymms

// ---------------------------------------------------------------------------
// Packed-GEMM micro-kernel: 6 rows x 16 columns of C held in registers for
// the whole kc loop (the scalar tier re-loads/stores C every p step, which
// caps it at store throughput; keeping C resident is where the speedup
// comes from). Column tails fall to 8-wide then scalar loops; each C element
// still accumulates its k contributions in ascending order.
// ---------------------------------------------------------------------------

template <int MR>
void MicroKernelAvx2(const float* ap, const float* bp, float* c, int64_t ldc,
                     int64_t kc, int64_t nc) {
  int64_t j = 0;
  for (; j + 16 <= nc; j += 16) {
    __m256 acc0[MR], acc1[MR];
    for (int r = 0; r < MR; ++r) {
      acc0[r] = _mm256_loadu_ps(c + r * ldc + j);
      acc1[r] = _mm256_loadu_ps(c + r * ldc + j + 8);
    }
    const float* brow = bp + j;
    const float* av = ap;
    for (int64_t p = 0; p < kc; ++p, brow += nc, av += MR) {
      __m256 b0 = _mm256_loadu_ps(brow);
      __m256 b1 = _mm256_loadu_ps(brow + 8);
      for (int r = 0; r < MR; ++r) {
        __m256 a = _mm256_broadcast_ss(av + r);
        acc0[r] = _mm256_fmadd_ps(a, b0, acc0[r]);
        acc1[r] = _mm256_fmadd_ps(a, b1, acc1[r]);
      }
    }
    for (int r = 0; r < MR; ++r) {
      _mm256_storeu_ps(c + r * ldc + j, acc0[r]);
      _mm256_storeu_ps(c + r * ldc + j + 8, acc1[r]);
    }
  }
  for (; j + 8 <= nc; j += 8) {
    __m256 acc[MR];
    for (int r = 0; r < MR; ++r) acc[r] = _mm256_loadu_ps(c + r * ldc + j);
    const float* brow = bp + j;
    const float* av = ap;
    for (int64_t p = 0; p < kc; ++p, brow += nc, av += MR) {
      __m256 b0 = _mm256_loadu_ps(brow);
      for (int r = 0; r < MR; ++r) {
        acc[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(av + r), b0, acc[r]);
      }
    }
    for (int r = 0; r < MR; ++r) _mm256_storeu_ps(c + r * ldc + j, acc[r]);
  }
  // Scalar column tail; std::fmaf keeps the contraction behavior of the
  // vector lanes so a column's numerics depend only on its own index.
  for (; j < nc; ++j) {
    for (int r = 0; r < MR; ++r) {
      float acc = c[r * ldc + j];
      for (int64_t p = 0; p < kc; ++p) {
        acc = std::fmaf(ap[p * MR + r], bp[p * nc + j], acc);
      }
      c[r * ldc + j] = acc;
    }
  }
}

void GemmTileAvx2(const float* ap, const float* bp, float* c, int64_t ldc,
                  int64_t kc, int64_t nc) {
  MicroKernelAvx2<kAvx2MR>(ap, bp, c, ldc, kc, nc);
}

void GemmTailAvx2(const float* ap, const float* bp, float* c, int64_t ldc,
                  int64_t kc, int64_t nc, int64_t mr) {
  switch (mr) {
    case 5: MicroKernelAvx2<5>(ap, bp, c, ldc, kc, nc); break;
    case 4: MicroKernelAvx2<4>(ap, bp, c, ldc, kc, nc); break;
    case 3: MicroKernelAvx2<3>(ap, bp, c, ldc, kc, nc); break;
    case 2: MicroKernelAvx2<2>(ap, bp, c, ldc, kc, nc); break;
    default: MicroKernelAvx2<1>(ap, bp, c, ldc, kc, nc); break;
  }
}

// ---------------------------------------------------------------------------
// Unpacked attention-shape GEMMs. The packed path never sees these problems
// (head_dim-sized inner dimensions, see UseTiledPath in matmul.cc), and the
// scalar QK^T loop is a length-K dot product with a horizontal reduction per
// score — the slowest shape in the attention forward. Both kernels instead
// stream register-resident strips of a C row with broadcast-FMA over k in
// ascending order, so an element's value depends only on the problem shape.
// ---------------------------------------------------------------------------

// Shared inner routine: C[M,N] += A[M,K] * B'[K,N] with B' row-major. Strip
// widths 8 -> 4 -> scalar fmaf are a pure function of (j, n).
void BroadcastFmaRows(const float* a, const float* bp, float* c, int64_t m,
                      int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      __m256 acc = _mm256_loadu_ps(crow + j);
      for (int64_t p = 0; p < k; ++p) {
        acc = _mm256_fmadd_ps(_mm256_broadcast_ss(arow + p),
                              _mm256_loadu_ps(bp + p * n + j), acc);
      }
      _mm256_storeu_ps(crow + j, acc);
    }
    for (; j + 4 <= n; j += 4) {
      __m128 acc = _mm_loadu_ps(crow + j);
      for (int64_t p = 0; p < k; ++p) {
        acc = _mm_fmadd_ps(_mm_broadcast_ss(arow + p),
                           _mm_loadu_ps(bp + p * n + j), acc);
      }
      _mm_storeu_ps(crow + j, acc);
    }
    for (; j < n; ++j) {
      float acc = crow[j];
      for (int64_t p = 0; p < k; ++p) {
        acc = std::fmaf(arow[p], bp[p * n + j], acc);
      }
      crow[j] = acc;
    }
  }
}

void GemmNNSmallAvx2(const float* a, const float* b, float* c, int64_t m,
                     int64_t k, int64_t n) {
  BroadcastFmaRows(a, b, c, m, k, n);
}

void GemmNTSmallAvx2(const float* a, const float* b, float* c, int64_t m,
                     int64_t k, int64_t n) {
  // Transpose B ([N,K] row-major) into a [K,N] panel once per call; the
  // QK^T scores then take the same streaming broadcast-FMA form as the NN
  // case instead of one horizontal reduction per element. The panel is tiny
  // (K is a head_dim) and amortizes over every row of the block.
  thread_local std::vector<float> bt;
  if (bt.size() < static_cast<size_t>(k * n)) {
    bt.resize(static_cast<size_t>(k * n));
  }
  float* panel = bt.data();
  for (int64_t p = 0; p < k; ++p) {
    for (int64_t j = 0; j < n; ++j) panel[p * n + j] = b[j * k + p];
  }
  BroadcastFmaRows(a, panel, c, m, k, n);
}

// ---------------------------------------------------------------------------
// Elementwise maps. Exactly-rounded per element, so these agree bitwise with
// the scalar tier; they exist to keep Debug/sanitizer builds (no -O3
// autovectorization) from crawling and to make the dispatch table complete.
// ---------------------------------------------------------------------------

void AddAvx2(const float* a, const float* b, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_add_ps(_mm256_loadu_ps(a + i),
                                          _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) o[i] = a[i] + b[i];
}

void MulAvx2(const float* a, const float* b, float* o, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                          _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) o[i] = a[i] * b[i];
}

void AddConstAvx2(const float* a, float s, float* o, int64_t n) {
  __m256 vs = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_add_ps(_mm256_loadu_ps(a + i), vs));
  }
  for (; i < n; ++i) o[i] = a[i] + s;
}

void MulConstAvx2(const float* a, float s, float* o, int64_t n) {
  __m256 vs = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), vs));
  }
  for (; i < n; ++i) o[i] = a[i] * s;
}

void ReluAvx2(const float* a, float* o, int64_t n) {
  __m256 zero = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(o + i, _mm256_max_ps(_mm256_loadu_ps(a + i), zero));
  }
  for (; i < n; ++i) o[i] = a[i] > 0 ? a[i] : 0.0f;
}

// ---------------------------------------------------------------------------
// Softmax row primitives.
// ---------------------------------------------------------------------------

float ReduceMaxAvx2(const float* a, int64_t n) {
  if (n < 8) {
    float m = a[0];
    for (int64_t i = 1; i < n; ++i) m = std::max(m, a[i]);
    return m;
  }
  __m256 vm = _mm256_loadu_ps(a);
  int64_t i = 8;
  for (; i + 8 <= n; i += 8) vm = _mm256_max_ps(vm, _mm256_loadu_ps(a + i));
  // Horizontal max (max is associative/commutative, order is irrelevant).
  __m128 lo = _mm256_castps256_ps128(vm);
  __m128 hi = _mm256_extractf128_ps(vm, 1);
  __m128 m4 = _mm_max_ps(lo, hi);
  m4 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
  m4 = _mm_max_ps(m4, _mm_shuffle_ps(m4, m4, 0x55));
  float m = _mm_cvtss_f32(m4);
  for (; i < n; ++i) m = std::max(m, a[i]);
  return m;
}

// Cephes-style vector expf: exp(x) = 2^k * exp(r) with r in [-ln2/2, ln2/2]
// and a degree-5 polynomial for exp(r). Max error ~2 ulp over the clamped
// domain. Inputs are clamped to [-87.33, 88.37]; softmax feeds x - max <= 0,
// so the low clamp only engages for hard-masked keys (score -1e9), where the
// result underflows to a ~1e-38 weight that vanishes after normalization.
inline __m256 Exp256(__m256 x) {
  const __m256 kHi = _mm256_set1_ps(88.3762626647950f);
  const __m256 kLo = _mm256_set1_ps(-87.3365478515625f);
  const __m256 kLog2e = _mm256_set1_ps(1.44269504088896341f);
  const __m256 kHalf = _mm256_set1_ps(0.5f);
  const __m256 kLn2Hi = _mm256_set1_ps(0.693359375f);
  const __m256 kLn2Lo = _mm256_set1_ps(-2.12194440e-4f);
  const __m256 kOne = _mm256_set1_ps(1.0f);

  x = _mm256_min_ps(_mm256_max_ps(x, kLo), kHi);

  // k = floor(x * log2(e) + 0.5)
  __m256 fx = _mm256_fmadd_ps(x, kLog2e, kHalf);
  fx = _mm256_floor_ps(fx);
  // r = x - k * ln2, in two pieces for accuracy.
  __m256 r = _mm256_fnmadd_ps(fx, kLn2Hi, x);
  r = _mm256_fnmadd_ps(fx, kLn2Lo, r);

  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(5.0000001201e-1f));
  __m256 r2 = _mm256_mul_ps(r, r);
  y = _mm256_fmadd_ps(y, r2, _mm256_add_ps(r, kOne));

  // 2^k via exponent-field construction.
  __m256i k = _mm256_cvttps_epi32(fx);
  k = _mm256_add_epi32(k, _mm256_set1_epi32(127));
  __m256 pow2k = _mm256_castsi256_ps(_mm256_slli_epi32(k, 23));
  return _mm256_mul_ps(y, pow2k);
}

double ExpSumAvx2(const float* a, float m, float* o, int64_t n) {
  __m256 vm = _mm256_set1_ps(m);
  // Four double accumulators (two per 8-lane block), combined in a fixed
  // order at the end — deterministic regardless of n's alignment.
  __m256d sum_lo = _mm256_setzero_pd();
  __m256d sum_hi = _mm256_setzero_pd();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 e = Exp256(_mm256_sub_ps(_mm256_loadu_ps(a + i), vm));
    _mm256_storeu_ps(o + i, e);
    sum_lo = _mm256_add_pd(sum_lo, _mm256_cvtps_pd(_mm256_castps256_ps128(e)));
    sum_hi = _mm256_add_pd(sum_hi, _mm256_cvtps_pd(_mm256_extractf128_ps(e, 1)));
  }
  __m256d vsum = _mm256_add_pd(sum_lo, sum_hi);
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, vsum);
  double sum = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    // Scalar tail uses the same polynomial (single active lane) so a given
    // element's value does not depend on the row length's alignment.
    __m256 e = Exp256(_mm256_set1_ps(a[i] - m));
    float ef = _mm256_cvtss_f32(e);
    o[i] = ef;
    sum += ef;
  }
  return sum;
}

void SoftmaxRowAvx2(const float* in, float* out, int64_t n) {
  float m = ReduceMaxAvx2(in, n);
  double denom = ExpSumAvx2(in, m, out, n);
  float inv = static_cast<float>(1.0 / denom);
  MulConstAvx2(out, inv, out, n);
}

}  // namespace

namespace internal {

const SimdKernels* Avx2Kernels() {
  static const SimdKernels table = {
      /*name=*/"avx2",
      /*gemm_mr=*/kAvx2MR,
      /*gemm_tile=*/GemmTileAvx2,
      /*gemm_tail=*/GemmTailAvx2,
      /*gemm_nt_small=*/GemmNTSmallAvx2,
      /*gemm_nn_small=*/GemmNNSmallAvx2,
      /*add=*/AddAvx2,
      /*mul=*/MulAvx2,
      /*add_scalar=*/AddConstAvx2,
      /*mul_scalar=*/MulConstAvx2,
      /*relu=*/ReluAvx2,
      /*reduce_max=*/ReduceMaxAvx2,
      /*exp_sum=*/ExpSumAvx2,
      /*softmax_row=*/SoftmaxRowAvx2,
  };
  return &table;
}

}  // namespace internal

}  // namespace sstban::tensor::simd

#else  // non-x86 builds: the dispatcher falls back to the scalar tier.

namespace sstban::tensor::simd::internal {
const SimdKernels* Avx2Kernels() { return nullptr; }
}  // namespace sstban::tensor::simd::internal

#endif

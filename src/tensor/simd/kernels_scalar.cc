#include <algorithm>
#include <cmath>

#include "tensor/simd/kernels.h"

// Portable fallback tier. These are the original hand loops from matmul.cc /
// ops.cc, kept bit-for-bit: the scalar tier must reproduce the pre-SIMD
// numerics exactly so SSTBAN_SIMD=off doubles as the compatibility mode.

namespace sstban::tensor::simd {

namespace {

constexpr int64_t kScalarMR = 4;

// C[r][j] += sum_p Ap[p][r] * Bp[p][j] for an MR x nc tile. Accumulates
// directly into C in ascending-p order so results never depend on how rows
// were assigned to threads or on panel boundaries.
template <int MR>
void MicroKernel(const float* ap, const float* bp, float* c, int64_t ldc,
                 int64_t kc, int64_t nc) {
  for (int64_t p = 0; p < kc; ++p) {
    const float* brow = bp + p * nc;
    const float* av = ap + p * MR;
    for (int r = 0; r < MR; ++r) {
      float aval = av[r];
      float* crow = c + r * ldc;
      for (int64_t j = 0; j < nc; ++j) crow[j] += aval * brow[j];
    }
  }
}

void GemmTileScalar(const float* ap, const float* bp, float* c, int64_t ldc,
                    int64_t kc, int64_t nc) {
  MicroKernel<kScalarMR>(ap, bp, c, ldc, kc, nc);
}

void GemmTailScalar(const float* ap, const float* bp, float* c, int64_t ldc,
                    int64_t kc, int64_t nc, int64_t mr) {
  switch (mr) {
    case 3: MicroKernel<3>(ap, bp, c, ldc, kc, nc); break;
    case 2: MicroKernel<2>(ap, bp, c, ldc, kc, nc); break;
    default: MicroKernel<1>(ap, bp, c, ldc, kc, nc); break;
  }
}

// ---------------------------------------------------------------------------
// Unpacked small-shape GEMMs: the original matmul.cc plain loops and their
// compile-time-unrolled variants for the head_dim / reference-point sized
// inner dimensions attention produces, moved here verbatim so this tier
// keeps the pre-SIMD numerics bit for bit.
// ---------------------------------------------------------------------------

// C[M,N] += A[M,K] * B[K,N], all row-major contiguous. i-k-j loop order:
// the inner j-loop streams both B's row and C's row, which vectorizes well.
void GemmNN(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    const float* arow = a + i * k;
    for (int64_t p = 0; p < k; ++p) {
      float aval = arow[p];
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

// C[M,N] += A[M,K] * B[N,K]^T. The inner loop is a contiguous dot product
// over K for both operands (the natural layout for Q*K^T attention scores).
void GemmNT(const float* a, const float* b, float* c, int64_t m, int64_t k,
            int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += arow[p] * brow[p];
      c[i * n + j] += acc;
    }
  }
}

template <int K>
void GemmNTFixedK(const float* a, const float* b, float* c, int64_t m,
                  int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * K;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = b + j * K;
      float acc = 0.0f;
      for (int p = 0; p < K; ++p) acc += arow[p] * brow[p];
      c[i * n + j] += acc;
    }
  }
}

template <int N>
void GemmNNFixedN(const float* a, const float* b, float* c, int64_t m,
                  int64_t k) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float acc[N] = {};
    for (int64_t p = 0; p < k; ++p) {
      float aval = arow[p];
      const float* brow = b + p * N;
      for (int j = 0; j < N; ++j) acc[j] += aval * brow[j];
    }
    float* crow = c + i * N;
    for (int j = 0; j < N; ++j) crow[j] += acc[j];
  }
}

void GemmNTSmall(const float* a, const float* b, float* c, int64_t m,
                 int64_t k, int64_t n) {
  switch (k) {
    case 1: GemmNTFixedK<1>(a, b, c, m, n); return;
    case 2: GemmNTFixedK<2>(a, b, c, m, n); return;
    case 3: GemmNTFixedK<3>(a, b, c, m, n); return;
    case 4: GemmNTFixedK<4>(a, b, c, m, n); return;
    case 6: GemmNTFixedK<6>(a, b, c, m, n); return;
    case 8: GemmNTFixedK<8>(a, b, c, m, n); return;
    default: GemmNT(a, b, c, m, k, n); return;
  }
}

void GemmNNSmall(const float* a, const float* b, float* c, int64_t m,
                 int64_t k, int64_t n) {
  switch (n) {
    case 1: GemmNNFixedN<1>(a, b, c, m, k); return;
    case 2: GemmNNFixedN<2>(a, b, c, m, k); return;
    case 3: GemmNNFixedN<3>(a, b, c, m, k); return;
    case 4: GemmNNFixedN<4>(a, b, c, m, k); return;
    case 6: GemmNNFixedN<6>(a, b, c, m, k); return;
    case 8: GemmNNFixedN<8>(a, b, c, m, k); return;
    default: GemmNN(a, b, c, m, k, n); return;
  }
}

void AddScalarTier(const float* a, const float* b, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] + b[i];
}

void MulScalarTier(const float* a, const float* b, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] * b[i];
}

void AddConst(const float* a, float s, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] + s;
}

void MulConst(const float* a, float s, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] * s;
}

void Relu(const float* a, float* o, int64_t n) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] > 0 ? a[i] : 0.0f;
}

float ReduceMax(const float* a, int64_t n) {
  float m = a[0];
  for (int64_t i = 1; i < n; ++i) m = std::max(m, a[i]);
  return m;
}

double ExpSum(const float* a, float m, float* o, int64_t n) {
  double sum = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    o[i] = std::exp(a[i] - m);
    sum += o[i];
  }
  return sum;
}

void SoftmaxRow(const float* in, float* out, int64_t n) {
  float m = ReduceMax(in, n);
  double denom = ExpSum(in, m, out, n);
  float inv = static_cast<float>(1.0 / denom);
  for (int64_t i = 0; i < n; ++i) out[i] *= inv;
}

}  // namespace

namespace internal {

const SimdKernels& ScalarKernels() {
  static const SimdKernels table = {
      /*name=*/"scalar",
      /*gemm_mr=*/kScalarMR,
      /*gemm_tile=*/GemmTileScalar,
      /*gemm_tail=*/GemmTailScalar,
      /*gemm_nt_small=*/GemmNTSmall,
      /*gemm_nn_small=*/GemmNNSmall,
      /*add=*/AddScalarTier,
      /*mul=*/MulScalarTier,
      /*add_scalar=*/AddConst,
      /*mul_scalar=*/MulConst,
      /*relu=*/Relu,
      /*reduce_max=*/ReduceMax,
      /*exp_sum=*/ExpSum,
      /*softmax_row=*/SoftmaxRow,
  };
  return table;
}

}  // namespace internal

const SimdKernels& KernelsFor(core::SimdLevel level) {
  if (level == core::SimdLevel::kAvx2) {
    const SimdKernels* avx2 = internal::Avx2Kernels();
    if (avx2 != nullptr) return *avx2;
  }
  return internal::ScalarKernels();
}

const SimdKernels& Kernels() { return KernelsFor(core::ActiveSimdLevel()); }

}  // namespace sstban::tensor::simd

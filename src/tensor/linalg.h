#ifndef SSTBAN_TENSOR_LINALG_H_
#define SSTBAN_TENSOR_LINALG_H_

#include "core/status.h"
#include "tensor/tensor.h"

namespace sstban::tensor {

// Lower-triangular Cholesky factor L of a symmetric positive-definite
// matrix A (L * L^T == A). Returns InvalidArgument when A is not square or
// a non-positive pivot is encountered (A not SPD).
core::StatusOr<Tensor> CholeskyFactor(const Tensor& a);

// Solves A X = B for X where A is SPD, via a Cholesky factorization.
// A: [n, n], B: [n, m] -> X: [n, m]. Used by the closed-form ridge
// regression in the VAR baseline.
core::StatusOr<Tensor> CholeskySolve(const Tensor& a, const Tensor& b);

}  // namespace sstban::tensor

#endif  // SSTBAN_TENSOR_LINALG_H_

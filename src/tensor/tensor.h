#ifndef SSTBAN_TENSOR_TENSOR_H_
#define SSTBAN_TENSOR_TENSOR_H_

#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "tensor/shape.h"

namespace sstban::tensor {

namespace internal {

// Ref-counted float buffer, allocated from (and recycled back to) the
// global core::StoragePool. Logical allocation and deallocation are
// reported to the MemoryTracker so training-time memory footprints can be
// measured. kUninitialized skips the zero-fill for callers that fully
// overwrite the buffer; kZeroed goes through the pool's AllocateZeroed so
// accumulate-into-output kernels (GEMM, conv) still start from zeros.
class Storage {
 public:
  enum class Init { kZeroed, kUninitialized };

  explicit Storage(int64_t num_elements, Init init = Init::kZeroed);
  ~Storage();

  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  float* data() { return data_; }
  const float* data() const { return data_; }
  int64_t num_elements() const { return num_elements_; }

 private:
  float* data_;
  int64_t num_elements_;
  int64_t capacity_;  // size-class capacity owed back to the pool
};

}  // namespace internal

// A dense, contiguous, row-major tensor of float32. Copying a Tensor is
// cheap: it shares the underlying storage (like a shared_ptr). Use Clone()
// for a deep copy. Mutating a tensor mutates all aliases — the autograd
// layer builds purely functional ops on top, so aliasing never surprises
// callers who stay at the Variable level.
class Tensor {
 public:
  // An empty (rank-0, storage-less) tensor; defined() is false.
  Tensor() = default;

  // Allocates zero-initialized storage of the given shape.
  explicit Tensor(Shape shape);

  // -- Factories ------------------------------------------------------------
  // Allocates storage with *unspecified* contents (no zero-fill, and the
  // pool may hand back a recycled buffer with stale values). Only for
  // callers that write every element before any read — see the memory
  // model section of DESIGN.md. Ops that accumulate into their output must
  // use Zeros instead.
  static Tensor Empty(Shape shape);
  static Tensor Zeros(Shape shape);
  static Tensor Ones(Shape shape);
  static Tensor Full(Shape shape, float value);
  static Tensor Scalar(float value);
  // Takes ownership of `values`; CHECK-fails if sizes mismatch.
  static Tensor FromVector(Shape shape, std::vector<float> values);
  // [0, 1, ..., n-1] as a rank-1 tensor.
  static Tensor Arange(int64_t n);
  static Tensor RandomUniform(Shape shape, core::Rng& rng, float lo, float hi);
  static Tensor RandomNormal(Shape shape, core::Rng& rng, float mean = 0.0f,
                             float stddev = 1.0f);

  // -- Introspection ---------------------------------------------------------
  bool defined() const { return storage_ != nullptr; }
  const Shape& shape() const { return shape_; }
  int rank() const { return shape_.rank(); }
  int64_t dim(int i) const { return shape_.dim(i); }
  int64_t size() const { return shape_.NumElements(); }

  float* data();
  const float* data() const;

  // Element access by multi-dimensional index (rank must match).
  float& at(std::initializer_list<int64_t> index);
  float at(std::initializer_list<int64_t> index) const;

  // Value of a one-element tensor.
  float item() const;

  // -- Shape manipulation (storage-sharing, O(1)) ----------------------------
  // New view with the same elements; total element count must match.
  Tensor Reshape(Shape new_shape) const;

  // -- Copies ----------------------------------------------------------------
  Tensor Clone() const;
  // Overwrites this tensor's elements with `src`'s (shapes must match).
  void CopyFrom(const Tensor& src);
  void Fill(float value);

  std::vector<float> ToVector() const;

  // Compact debug string: shape plus leading elements.
  std::string ToString(int64_t max_elements = 16) const;

 private:
  Tensor(std::shared_ptr<internal::Storage> storage, Shape shape)
      : storage_(std::move(storage)), shape_(std::move(shape)) {}

  std::shared_ptr<internal::Storage> storage_;
  Shape shape_;
};

}  // namespace sstban::tensor

#endif  // SSTBAN_TENSOR_TENSOR_H_

#ifndef SSTBAN_TENSOR_OPS_H_
#define SSTBAN_TENSOR_OPS_H_

#include <vector>

#include "tensor/tensor.h"

namespace sstban::tensor {

// All operations are purely functional: they allocate and return new tensors
// and never mutate their inputs. Binary operations broadcast under NumPy
// rules. Shape incompatibilities are programming errors (CHECK).

// -- Elementwise binary -------------------------------------------------------
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Maximum(const Tensor& a, const Tensor& b);
Tensor Minimum(const Tensor& a, const Tensor& b);

// -- Elementwise with scalar --------------------------------------------------
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);

// -- Elementwise unary --------------------------------------------------------
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);  // natural log; input must be > 0
Tensor Sqrt(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Sign(const Tensor& a);  // -1, 0, or +1
Tensor Square(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);

// -- Reductions ---------------------------------------------------------------
// Full reductions return a rank-0 (scalar) tensor.
Tensor SumAll(const Tensor& a);
Tensor MeanAll(const Tensor& a);
float MaxAll(const Tensor& a);
float MinAll(const Tensor& a);

// Axis reductions. `axis` may be negative. With keepdim the reduced axis has
// size 1, otherwise it is removed.
Tensor Sum(const Tensor& a, int axis, bool keepdim = false);
Tensor Mean(const Tensor& a, int axis, bool keepdim = false);
Tensor Max(const Tensor& a, int axis, bool keepdim = false);

// Sums a broadcasted tensor back down to `target` shape (the adjoint of
// broadcasting); used by autograd backward passes.
Tensor ReduceToShape(const Tensor& grad, const Shape& target);

// -- Movement -------------------------------------------------------------
// Swaps the two axes of a rank-2 tensor.
Tensor Transpose(const Tensor& a);
// General axis permutation; `perm` must be a permutation of [0, rank).
Tensor Permute(const Tensor& a, const std::vector<int>& perm);
// Concatenates along `axis`; all other dimensions must agree.
Tensor Concat(const std::vector<Tensor>& parts, int axis);
// Contiguous sub-range [start, start+length) along `axis`.
Tensor Slice(const Tensor& a, int axis, int64_t start, int64_t length);
// Repeats the tensor `repeats` times along an existing axis of size 1.
Tensor RepeatAxis(const Tensor& a, int axis, int64_t repeats);

// -- Softmax --------------------------------------------------------------
// Numerically stable softmax along the last axis.
Tensor Softmax(const Tensor& a);
// Raw-pointer entry point for the same kernel: `rows` rows of `cols`
// contiguous floats each. `in == out` is allowed (each row reads before it
// overwrites). Softmax() delegates here, so the static executor and the tape
// produce bitwise-identical results by construction.
void SoftmaxRows(const float* in, float* out, int64_t rows, int64_t cols);
// Softmax of (a + additive_mask): use large negative mask entries (e.g.
// -1e9) to exclude keys. The mask must broadcast to a's shape. Rows whose
// entries are all excluded degrade to a uniform distribution (no NaNs).
Tensor SoftmaxWithMask(const Tensor& a, const Tensor& additive_mask);

// -- Predicates -----------------------------------------------------------
// True when |a - b| <= atol + rtol * |b| elementwise (shapes must match).
bool AllClose(const Tensor& a, const Tensor& b, float atol = 1e-5f,
              float rtol = 1e-5f);
bool HasNonFinite(const Tensor& a);

}  // namespace sstban::tensor

#endif  // SSTBAN_TENSOR_OPS_H_

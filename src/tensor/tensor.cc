#include "tensor/tensor.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "core/check.h"
#include "core/memory_tracker.h"
#include "core/storage_pool.h"

namespace sstban::tensor {

namespace internal {

Storage::Storage(int64_t num_elements, Init init)
    : num_elements_(num_elements) {
  core::StoragePool& pool = core::StoragePool::Global();
  data_ = init == Init::kZeroed ? pool.AllocateZeroed(num_elements, &capacity_)
                                : pool.Allocate(num_elements, &capacity_);
  core::MemoryTracker::Global().OnAlloc(num_elements_ *
                                        static_cast<int64_t>(sizeof(float)));
}

Storage::~Storage() {
  core::StoragePool::Global().Release(data_, capacity_);
  core::MemoryTracker::Global().OnFree(num_elements_ *
                                       static_cast<int64_t>(sizeof(float)));
}

}  // namespace internal

Tensor::Tensor(Shape shape)
    : storage_(std::make_shared<internal::Storage>(shape.NumElements())),
      shape_(std::move(shape)) {}

Tensor Tensor::Empty(Shape shape) {
  int64_t n = shape.NumElements();
  return Tensor(std::make_shared<internal::Storage>(
                    n, internal::Storage::Init::kUninitialized),
                std::move(shape));
}

Tensor Tensor::Zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::Ones(Shape shape) { return Full(std::move(shape), 1.0f); }

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t = Empty(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Scalar(float value) { return Full(Shape{}, value); }

Tensor Tensor::FromVector(Shape shape, std::vector<float> values) {
  SSTBAN_CHECK_EQ(shape.NumElements(), static_cast<int64_t>(values.size()));
  Tensor t = Empty(std::move(shape));
  std::memcpy(t.data(), values.data(), values.size() * sizeof(float));
  return t;
}

Tensor Tensor::Arange(int64_t n) {
  Tensor t = Empty(Shape{n});
  float* out = t.data();
  for (int64_t i = 0; i < n; ++i) out[i] = static_cast<float>(i);
  return t;
}

Tensor Tensor::RandomUniform(Shape shape, core::Rng& rng, float lo, float hi) {
  Tensor t = Empty(std::move(shape));
  float* out = t.data();
  int64_t n = t.size();
  for (int64_t i = 0; i < n; ++i) out[i] = rng.NextUniform(lo, hi);
  return t;
}

Tensor Tensor::RandomNormal(Shape shape, core::Rng& rng, float mean,
                            float stddev) {
  Tensor t = Empty(std::move(shape));
  float* out = t.data();
  int64_t n = t.size();
  for (int64_t i = 0; i < n; ++i) out[i] = rng.NextGaussian(mean, stddev);
  return t;
}

float* Tensor::data() {
  SSTBAN_CHECK(defined()) << "data() on undefined tensor";
  return storage_->data();
}

const float* Tensor::data() const {
  SSTBAN_CHECK(defined()) << "data() on undefined tensor";
  return storage_->data();
}

float& Tensor::at(std::initializer_list<int64_t> index) {
  SSTBAN_CHECK_EQ(static_cast<int>(index.size()), rank());
  std::vector<int64_t> strides = shape_.Strides();
  int64_t offset = 0;
  int axis = 0;
  for (int64_t i : index) {
    SSTBAN_CHECK(i >= 0 && i < shape_.dims()[axis])
        << "index" << i << "out of bounds for axis" << axis << "with size"
        << shape_.dims()[axis];
    offset += i * strides[axis];
    ++axis;
  }
  return data()[offset];
}

float Tensor::at(std::initializer_list<int64_t> index) const {
  return const_cast<Tensor*>(this)->at(index);
}

float Tensor::item() const {
  SSTBAN_CHECK_EQ(size(), 1);
  return data()[0];
}

Tensor Tensor::Reshape(Shape new_shape) const {
  SSTBAN_CHECK(defined());
  SSTBAN_CHECK_EQ(new_shape.NumElements(), size())
      << "cannot reshape" << shape_.ToString() << "to" << new_shape.ToString();
  return Tensor(storage_, std::move(new_shape));
}

Tensor Tensor::Clone() const {
  SSTBAN_CHECK(defined());
  Tensor copy = Empty(shape_);
  std::memcpy(copy.data(), data(), size() * sizeof(float));
  return copy;
}

void Tensor::CopyFrom(const Tensor& src) {
  SSTBAN_CHECK(shape_ == src.shape())
      << "CopyFrom shape mismatch:" << shape_.ToString() << "vs"
      << src.shape().ToString();
  std::memcpy(data(), src.data(), size() * sizeof(float));
}

void Tensor::Fill(float value) { std::fill_n(data(), size(), value); }

std::vector<float> Tensor::ToVector() const {
  return std::vector<float>(data(), data() + size());
}

std::string Tensor::ToString(int64_t max_elements) const {
  if (!defined()) return "Tensor(undefined)";
  std::ostringstream out;
  out << "Tensor" << shape_.ToString() << " {";
  int64_t n = std::min(size(), max_elements);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) out << ", ";
    out << data()[i];
  }
  if (n < size()) out << ", ...";
  out << "}";
  return out.str();
}

}  // namespace sstban::tensor

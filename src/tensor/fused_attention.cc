#include "tensor/fused_attention.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "core/check.h"
#include "tensor/matmul.h"
#include "tensor/parallel.h"
#include "tensor/simd/kernels.h"

namespace sstban::tensor {

namespace {

// -1 = unresolved, 0 = off, 1 = on.
std::atomic<int> g_fused_enabled{-1};

int ResolveFusedFromEnv() {
  const char* env = std::getenv("SSTBAN_FUSED_ATTENTION");
  if (env == nullptr) return 1;
  std::string v(env);
  for (char& c : v) c = static_cast<char>(std::tolower(c));
  if (v == "off" || v == "0" || v == "false") return 0;
  return 1;
}

// The additive expansion the tape path writes into its materialized mask:
// keeping a key adds exactly 0.0f, excluding it adds -1e9f. Always perform
// the add (never skip the keep case) so the arithmetic matches the unfused
// Add(scores, additive) element for element.
inline void AddMaskRow(float* srow, const float* mrow, int64_t lk) {
  for (int64_t j = 0; j < lk; ++j) {
    srow[j] = srow[j] + (mrow[j] > 0.5f ? 0.0f : -1e9f);
  }
}

// Exact two-pass body for query rows [i0, i1) of batch item bi. Reproduces
// the unfused chain bitwise: the two GEMMs go through GemmRowRangeAccumulate
// with the full problem shape (identical kernel routing and identical 64-row
// partition boundaries as Bmm), and scale/mask/softmax use the same simd
// kernel entry points the tensor ops use.
void ExactBlock(const float* q, const float* k, const float* v,
                const float* mrow, float* out, int64_t lq, int64_t lk,
                int64_t dk, float scale, int64_t bi, int64_t i0, int64_t i1,
                float* scores, const simd::SimdKernels& ks) {
  int64_t rows = i1 - i0;
  const float* qb = q + bi * lq * dk;
  const float* kb = k + bi * lk * dk;
  const float* vb = v + bi * lk * dk;
  float* ob = out + bi * lq * dk + i0 * dk;

  std::memset(scores, 0, static_cast<size_t>(rows * lk) * sizeof(float));
  GemmRowRangeAccumulate(qb + i0 * dk, kb, scores, lq, dk, lk,
                         /*ta=*/false, /*tb=*/true, i0, i1);
  ks.mul_scalar(scores, scale, scores, rows * lk);
  for (int64_t r = 0; r < rows; ++r) {
    float* srow = scores + r * lk;
    if (mrow != nullptr) AddMaskRow(srow, mrow, lk);
    ks.softmax_row(srow, srow, lk);
  }
  std::memset(ob, 0, static_cast<size_t>(rows * dk) * sizeof(float));
  GemmRowRangeAccumulate(scores, vb, ob, lq, lk, dk,
                         /*ta=*/false, /*tb=*/false, i0, i1);
}

// Flash-style online-softmax body: streams key blocks of at most
// kFusedAttentionExactMaxKeys through the same scratch, carrying a running
// (row max, denominator, output accumulator) triple. Sequential over key
// blocks within one (batch, row-block) item, so deterministic; not bitwise
// against the unfused chain (different summation order).
void OnlineBlock(const float* q, const float* k, const float* v,
                 const float* mrow, float* out, int64_t lq, int64_t lk,
                 int64_t dk, float scale, int64_t bi, int64_t i0, int64_t i1,
                 float* scores, float* acc, float* run_max, double* run_sum,
                 const simd::SimdKernels& ks) {
  int64_t rows = i1 - i0;
  const float* qb = q + bi * lq * dk + i0 * dk;
  const float* kb = k + bi * lk * dk;
  const float* vb = v + bi * lk * dk;
  float* ob = out + bi * lq * dk + i0 * dk;

  std::memset(acc, 0, static_cast<size_t>(rows * dk) * sizeof(float));
  for (int64_t r = 0; r < rows; ++r) {
    run_max[r] = -std::numeric_limits<float>::infinity();
    run_sum[r] = 0.0;
  }

  for (int64_t j0 = 0; j0 < lk; j0 += kFusedAttentionExactMaxKeys) {
    int64_t j1 = std::min(lk, j0 + kFusedAttentionExactMaxKeys);
    int64_t jb = j1 - j0;
    GemmBatchedInto(qb, kb + j0 * dk, scores, /*batch=*/1, rows, dk, jb,
                    /*ta=*/false, /*tb=*/true, 0, 0);
    ks.mul_scalar(scores, scale, scores, rows * jb);
    for (int64_t r = 0; r < rows; ++r) {
      float* srow = scores + r * jb;
      if (mrow != nullptr) AddMaskRow(srow, mrow + j0, jb);
      float block_max = ks.reduce_max(srow, jb);
      float new_max = std::max(run_max[r], block_max);
      if (run_sum[r] > 0.0 && new_max != run_max[r]) {
        float corr = std::exp(run_max[r] - new_max);
        run_sum[r] *= corr;
        ks.mul_scalar(acc + r * dk, corr, acc + r * dk, dk);
      }
      run_max[r] = new_max;
      // In-place exponentiation: scores become the unnormalized probs.
      run_sum[r] += ks.exp_sum(srow, new_max, srow, jb);
    }
    GemmRowRangeAccumulate(scores, vb + j0 * dk, acc, rows, jb, dk,
                           /*ta=*/false, /*tb=*/false, 0, rows);
  }
  for (int64_t r = 0; r < rows; ++r) {
    float inv = static_cast<float>(1.0 / run_sum[r]);
    ks.mul_scalar(acc + r * dk, inv, ob + r * dk, dk);
  }
}

}  // namespace

bool FusedAttentionEnabled() {
  int v = g_fused_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    v = ResolveFusedFromEnv();
    g_fused_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void SetFusedAttentionEnabledForTesting(int enabled) {
  g_fused_enabled.store(enabled < 0 ? -1 : (enabled != 0 ? 1 : 0),
                        std::memory_order_relaxed);
}

void FusedAttentionInto(const float* q, const float* k, const float* v,
                        const float* key_mask, int64_t mask_heads, float* out,
                        int64_t batch, int64_t lq, int64_t lk, int64_t dk,
                        float scale) {
  SSTBAN_CHECK_GT(batch, 0);
  SSTBAN_CHECK_GT(lq, 0);
  SSTBAN_CHECK_GT(lk, 0);
  SSTBAN_CHECK_GT(dk, 0);
  if (key_mask != nullptr) {
    SSTBAN_CHECK_GT(mask_heads, 0);
    SSTBAN_CHECK_EQ(batch % mask_heads, 0);
  }
  const simd::SimdKernels& ks = simd::Kernels();
  bool exact = lk <= kFusedAttentionExactMaxKeys;
  int64_t row_blocks = (lq + kGemmRowBlock - 1) / kGemmRowBlock;
  int64_t block_rows = std::min(lq, kGemmRowBlock);
  int64_t score_cols = exact ? lk : kFusedAttentionExactMaxKeys;
  // Work per item drives the same inline-vs-pooled decision BatchedGemm
  // makes; the grid itself is independent of thread count.
  int64_t madds = block_rows * dk * lk;
  int64_t min_chunk = std::max<int64_t>(1, (1 << 16) / std::max<int64_t>(madds, 1));
  ParallelFor(0, batch * row_blocks, [&](int64_t lo, int64_t hi) {
    thread_local std::vector<float> scores;
    thread_local std::vector<float> acc;
    thread_local std::vector<float> run_max;
    thread_local std::vector<double> run_sum;
    scores.resize(static_cast<size_t>(block_rows * score_cols));
    if (!exact) {
      acc.resize(static_cast<size_t>(block_rows * dk));
      run_max.resize(static_cast<size_t>(block_rows));
      run_sum.resize(static_cast<size_t>(block_rows));
    }
    for (int64_t idx = lo; idx < hi; ++idx) {
      int64_t bi = idx / row_blocks;
      int64_t i0 = (idx % row_blocks) * kGemmRowBlock;
      int64_t i1 = std::min(lq, i0 + kGemmRowBlock);
      const float* mrow =
          key_mask != nullptr ? key_mask + (bi / mask_heads) * lk : nullptr;
      if (exact) {
        ExactBlock(q, k, v, mrow, out, lq, lk, dk, scale, bi, i0, i1,
                   scores.data(), ks);
      } else {
        OnlineBlock(q, k, v, mrow, out, lq, lk, dk, scale, bi, i0, i1,
                    scores.data(), acc.data(), run_max.data(), run_sum.data(),
                    ks);
      }
    }
  }, min_chunk);
}

Tensor FusedAttention(const Tensor& q, const Tensor& k, const Tensor& v,
                      const Tensor* key_mask, int64_t mask_heads, float scale) {
  SSTBAN_CHECK_EQ(q.rank(), 3);
  SSTBAN_CHECK_EQ(k.rank(), 3);
  SSTBAN_CHECK_EQ(v.rank(), 3);
  int64_t batch = q.dim(0), lq = q.dim(1), dk = q.dim(2), lk = k.dim(1);
  SSTBAN_CHECK_EQ(k.dim(0), batch);
  SSTBAN_CHECK_EQ(k.dim(2), dk);
  SSTBAN_CHECK_EQ(v.dim(0), batch);
  SSTBAN_CHECK_EQ(v.dim(1), lk);
  SSTBAN_CHECK_EQ(v.dim(2), dk);
  if (key_mask != nullptr) {
    SSTBAN_CHECK_EQ(key_mask->rank(), 2);
    SSTBAN_CHECK_EQ(key_mask->dim(0) * mask_heads, batch);
    SSTBAN_CHECK_EQ(key_mask->dim(1), lk);
  }
  Tensor out = Tensor::Empty(Shape{batch, lq, dk});
  FusedAttentionInto(q.data(), k.data(), v.data(),
                     key_mask != nullptr ? key_mask->data() : nullptr,
                     mask_heads, out.data(), batch, lq, lk, dk, scale);
  return out;
}

void FusedAttentionBackward(const float* q, const float* k, const float* v,
                            const float* key_mask, int64_t mask_heads,
                            const float* dout, float* dq, float* dkk,
                            float* dv, int64_t batch, int64_t lq, int64_t lk,
                            int64_t dk, float scale) {
  const simd::SimdKernels& ks = simd::Kernels();
  int64_t row_blocks = (lq + kGemmRowBlock - 1) / kGemmRowBlock;
  int64_t block_rows = std::min(lq, kGemmRowBlock);
  // Parallel over batch only: dK / dV accumulate across row blocks, and a
  // fixed sequential block order keeps the gradients bitwise deterministic.
  ParallelFor(0, batch, [&](int64_t lo, int64_t hi) {
    thread_local std::vector<float> probs;
    thread_local std::vector<float> dscores;
    probs.resize(static_cast<size_t>(block_rows * lk));
    dscores.resize(static_cast<size_t>(block_rows * lk));
    for (int64_t bi = lo; bi < hi; ++bi) {
      const float* qb = q + bi * lq * dk;
      const float* kb = k + bi * lk * dk;
      const float* vb = v + bi * lk * dk;
      const float* dob = dout + bi * lq * dk;
      float* dqb = dq + bi * lq * dk;
      float* dkb = dkk + bi * lk * dk;
      float* dvb = dv + bi * lk * dk;
      const float* mrow =
          key_mask != nullptr ? key_mask + (bi / mask_heads) * lk : nullptr;
      std::memset(dkb, 0, static_cast<size_t>(lk * dk) * sizeof(float));
      std::memset(dvb, 0, static_cast<size_t>(lk * dk) * sizeof(float));
      for (int64_t blk = 0; blk < row_blocks; ++blk) {
        int64_t i0 = blk * kGemmRowBlock;
        int64_t i1 = std::min(lq, i0 + kGemmRowBlock);
        int64_t rows = i1 - i0;
        float* p = probs.data();
        float* ds = dscores.data();
        // Recompute P for this block (exact softmax regardless of lk).
        std::memset(p, 0, static_cast<size_t>(rows * lk) * sizeof(float));
        GemmRowRangeAccumulate(qb + i0 * dk, kb, p, lq, dk, lk,
                               /*ta=*/false, /*tb=*/true, i0, i1);
        ks.mul_scalar(p, scale, p, rows * lk);
        for (int64_t r = 0; r < rows; ++r) {
          float* prow = p + r * lk;
          if (mrow != nullptr) AddMaskRow(prow, mrow, lk);
          ks.softmax_row(prow, prow, lk);
        }
        // dV += P^T dOut_block.
        GemmRowRangeAccumulate(p, dob + i0 * dk, dvb, lk, rows, dk,
                               /*ta=*/true, /*tb=*/false, 0, lk);
        // dP = dOut_block V^T.
        GemmBatchedInto(dob + i0 * dk, vb, ds, /*batch=*/1, rows, dk, lk,
                        /*ta=*/false, /*tb=*/true, 0, 0);
        // dS = P o (dP - rowsum(dP o P)) * scale, written over dP.
        for (int64_t r = 0; r < rows; ++r) {
          const float* prow = p + r * lk;
          float* dsrow = ds + r * lk;
          double dot = 0.0;
          for (int64_t j = 0; j < lk; ++j) dot += static_cast<double>(dsrow[j]) * prow[j];
          float fdot = static_cast<float>(dot);
          for (int64_t j = 0; j < lk; ++j) {
            dsrow[j] = prow[j] * (dsrow[j] - fdot) * scale;
          }
        }
        // dQ_block = dS K.
        GemmBatchedInto(ds, kb, dqb + i0 * dk, /*batch=*/1, rows, lk, dk,
                        /*ta=*/false, /*tb=*/false, 0, 0);
        // dK += dS^T Q_block.
        GemmRowRangeAccumulate(ds, qb + i0 * dk, dkb, lk, rows, dk,
                               /*ta=*/true, /*tb=*/false, 0, lk);
      }
    }
  }, /*min_chunk=*/1);
}

}  // namespace sstban::tensor

#ifndef SSTBAN_TENSOR_FUSED_ATTENTION_H_
#define SSTBAN_TENSOR_FUSED_ATTENTION_H_

#include "tensor/tensor.h"

namespace sstban::tensor {

// Single-pass scaled-dot-product attention:
//   out = softmax(scale * Q K^T + mask) V
// with Q [batch, lq, dk], K/V [batch, lk, dk], out [batch, lq, dk]. The
// [batch, lq, lk] score tensor is never materialized; scores stream through
// a per-thread row-block scratch instead.
//
// Two regimes, switched on lk:
//   - lk <= kFusedAttentionExactMaxKeys: exact two-pass mode. Each 64-row
//     block runs scores -> scale -> mask-add -> softmax -> xV with the same
//     kernels, the same row-block boundaries (tensor/matmul.h kGemmRowBlock),
//     and the same per-element arithmetic as the unfused
//     Bmm/MulScalar/SoftmaxWithMask/Bmm chain, so the result is bitwise
//     identical to it.
//   - lk > kFusedAttentionExactMaxKeys: flash-style online softmax over key
//     blocks with a running (max, denom, accumulator) triple. Results agree
//     with the unfused chain only to rounding (see DESIGN.md §14 for the
//     tolerance policy) but each call is still bitwise deterministic at any
//     thread count: work items are independent (batch x row-block) and every
//     reduction is sequential within one item.
//
// `key_mask` is optional: when non-null it holds [batch / mask_heads, lk]
// keep rows (> 0.5f keeps a key) and the kernel applies the same
// `keep ? 0.0f : -1e9f` additive expansion the tape path builds explicitly.
// Pass mask_heads = 1 when the mask batch matches the attention batch.

inline constexpr int64_t kFusedAttentionExactMaxKeys = 512;

// Process-wide enable flag for the fused attention path (the MHA forward and
// the static executor's peephole both consult it). Reads SSTBAN_FUSED_ATTENTION
// once: "off" / "0" / "false" disable, anything else (or unset) enables.
bool FusedAttentionEnabled();
// Testing override: 0 = off, 1 = on, -1 = back to the environment setting.
void SetFusedAttentionEnabledForTesting(int enabled);

void FusedAttentionInto(const float* q, const float* k, const float* v,
                        const float* key_mask, int64_t mask_heads, float* out,
                        int64_t batch, int64_t lq, int64_t lk, int64_t dk,
                        float scale);

// Tensor wrapper; `key_mask` may be null.
Tensor FusedAttention(const Tensor& q, const Tensor& k, const Tensor& v,
                      const Tensor* key_mask, int64_t mask_heads, float scale);

// Gradient by recomputation: probabilities are rebuilt per row block (exact
// softmax regardless of lk), then
//   dV += P^T dOut, dP = dOut V^T,
//   dS = P o (dP - rowsum(dP o P)) * scale,
//   dQ = dS K, dK += dS^T Q.
// Parallel over batch only, so the per-matrix accumulation order is fixed and
// the gradients are bitwise deterministic at any thread count. dq/dkk/dv are
// fully overwritten.
void FusedAttentionBackward(const float* q, const float* k, const float* v,
                            const float* key_mask, int64_t mask_heads,
                            const float* dout, float* dq, float* dkk,
                            float* dv, int64_t batch, int64_t lq, int64_t lk,
                            int64_t dk, float scale);

}  // namespace sstban::tensor

#endif  // SSTBAN_TENSOR_FUSED_ATTENTION_H_

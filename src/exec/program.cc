#include "exec/program.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/check.h"
#include "core/failpoint.h"
#include "tensor/fused_attention.h"
#include "tensor/matmul.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"
#include "tensor/simd/kernels.h"

namespace sstban::exec {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;

namespace {

// Arena slots are aligned to 64 bytes so GEMM panels start cache-line
// aligned regardless of what was planned before them.
constexpr int64_t kSlotAlignFloats = 16;

int64_t AlignUp(int64_t n) {
  return (n + kSlotAlignFloats - 1) / kSlotAlignFloats * kSlotAlignFloats;
}

// bfloat16 <-> fp32. Encoding rounds to nearest-even; decoding is an exact
// bit shift, so dequantized weights are identical no matter how the expand
// loop is chunked — the bf16 mode's determinism rests on this.
uint16_t Bf16FromFloat(float f) {
  uint32_t bits;
  std::memcpy(&bits, &f, sizeof(bits));
  uint32_t lsb = (bits >> 16) & 1u;
  bits += 0x7fffu + lsb;
  return static_cast<uint16_t>(bits >> 16);
}

float FloatFromBf16(uint16_t h) {
  uint32_t bits = static_cast<uint32_t>(h) << 16;
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

// Same rule as tensor/ops.cc BroadcastStrides: broadcast axes get stride 0.
std::vector<int64_t> BcastStrides(const t::Shape& shape,
                                  const t::Shape& out_shape) {
  std::vector<int64_t> natural = shape.Strides();
  std::vector<int64_t> strides(out_shape.rank(), 0);
  int offset = out_shape.rank() - shape.rank();
  for (int i = 0; i < shape.rank(); ++i) {
    strides[offset + i] = shape.dims()[i] == 1 ? 0 : natural[i];
  }
  return strides;
}

// First-fit offset planner over slot lifetimes: a sorted, coalesced free
// list plus a bump pointer past everything allocated so far. Total arena
// size is the final bump watermark.
class ArenaPlanner {
 public:
  int64_t Allocate(int64_t size) {
    for (size_t i = 0; i < free_.size(); ++i) {
      if (free_[i].size >= size) {
        int64_t offset = free_[i].offset;
        free_[i].offset += size;
        free_[i].size -= size;
        if (free_[i].size == 0) free_.erase(free_.begin() + i);
        return offset;
      }
    }
    int64_t offset = end_;
    end_ += size;
    peak_ = std::max(peak_, end_);
    return offset;
  }

  void Free(int64_t offset, int64_t size) {
    // Insert sorted by offset, then coalesce with both neighbors.
    size_t i = 0;
    while (i < free_.size() && free_[i].offset < offset) ++i;
    free_.insert(free_.begin() + i, Block{offset, size});
    if (i + 1 < free_.size() &&
        free_[i].offset + free_[i].size == free_[i + 1].offset) {
      free_[i].size += free_[i + 1].size;
      free_.erase(free_.begin() + i + 1);
    }
    if (i > 0 && free_[i - 1].offset + free_[i - 1].size == free_[i].offset) {
      free_[i - 1].size += free_[i].size;
      free_.erase(free_.begin() + i);
      i -= 1;
    }
    // Return a trailing block to the bump pointer so it can be re-split.
    if (!free_.empty() && free_.back().offset + free_.back().size == end_) {
      end_ = free_.back().offset;
      free_.pop_back();
    }
  }

  // Arena size must cover every offset ever handed out, not the final bump
  // position — tail absorption shrinks end_ again as intermediates die while
  // long-lived slots keep offsets from the high-water mark.
  int64_t peak() const { return peak_; }

 private:
  struct Block {
    int64_t offset;
    int64_t size;
  };
  std::vector<Block> free_;
  int64_t end_ = 0;
  int64_t peak_ = 0;
};

// Compile-time state: slot table plus leaf classification maps.
struct Builder {
  explicit Builder(const CompileSpec& s) : spec(s) {
    if (spec.parameters != nullptr) {
      for (const t::Tensor& p : *spec.parameters) param_by_data[p.data()] = p;
    }
    if (spec.notes != nullptr) {
      for (const ag::DynamicNote& note : *spec.notes) {
        switch (note.kind) {
          case ag::DynamicKind::kCalendarOnehot:
            onehot_by_data[note.tensor.data()] = &note;
            break;
          case ag::DynamicKind::kKeepMaskView:
            view_by_data[note.tensor.data()] = &note;
            break;
          case ag::DynamicKind::kAdditiveKeyMask:
            additive_by_data[note.tensor.data()] = &note;
            break;
        }
      }
    }
  }

  const CompileSpec& spec;
  std::vector<Slot> slots;
  std::vector<Instr> instrs;
  std::vector<DynamicFill> fills;
  std::vector<int64_t> def_idx;   // per slot; -1 = live from run start
  std::vector<int64_t> last_use;  // per slot; instruction index
  std::unordered_map<const ag::Node*, int> node_slot;
  std::unordered_map<const float*, int> leaf_slot;  // leaf dedup by storage
  std::unordered_map<const float*, t::Tensor> param_by_data;
  std::unordered_map<const float*, const ag::DynamicNote*> onehot_by_data;
  std::unordered_map<const float*, const ag::DynamicNote*> view_by_data;
  std::unordered_map<const float*, const ag::DynamicNote*> additive_by_data;
  // Additive masks with the same geometry have identical contents; dedup to
  // one slot + one fill. Key: (spatial_layout, heads, lq, lk).
  std::unordered_map<std::string, int> additive_key_slot;
  int input_slot = -1;
  int keep_slot = -1;

  // The keep mask's slot, created on demand: the fused-attention peephole can
  // need it (spatial mask) before any recorded op consumes the keep tensor.
  int KeepSlot() {
    if (keep_slot < 0) {
      keep_slot = NewSlot(
          Slot::Kind::kArena,
          spec.batch_size * spec.input_len * spec.num_nodes, -1, t::Tensor());
      leaf_slot[spec.keep_data] = keep_slot;
    }
    return keep_slot;
  }

  int NewSlot(Slot::Kind kind, int64_t size, int64_t def, t::Tensor backing) {
    Slot slot;
    slot.kind = kind;
    slot.size = size;
    slot.backing = std::move(backing);
    slots.push_back(std::move(slot));
    def_idx.push_back(def);
    last_use.push_back(def);
    return static_cast<int>(slots.size()) - 1;
  }

  void Use(int slot, int64_t instr_index) {
    last_use[slot] = std::max(last_use[slot], instr_index);
  }

  // Slot for a materialized [B*N, T] transpose of the keep mask (mask_t in
  // stba_block.cc), rebuilt from the keep slot at each Run.
  core::StatusOr<int> MaskViewSlot(const ag::DynamicNote& note) {
    auto hit = leaf_slot.find(note.tensor.data());
    if (hit != leaf_slot.end()) return hit->second;
    if (note.view_src != spec.keep_data ||
        note.view_batch != spec.batch_size ||
        note.view_time != spec.input_len ||
        note.view_nodes != spec.num_nodes) {
      return core::Status::Internal(
          "executor: keep-mask view geometry mismatch");
    }
    int slot = NewSlot(Slot::Kind::kArena, note.tensor.size(), -1, t::Tensor());
    DynamicFill fill;
    fill.kind = ag::DynamicKind::kKeepMaskView;
    fill.slot = slot;
    fills.push_back(fill);
    leaf_slot[note.tensor.data()] = slot;
    return slot;
  }

  // Resolves a fused-attention key mask by storage identity: either the keep
  // mask itself (the spatial reshape aliases its storage) or an annotated
  // transposed view of it.
  core::StatusOr<int> FusedMaskSlot(const float* mask_data) {
    if (spec.keep_data != nullptr && mask_data == spec.keep_data) {
      return KeepSlot();
    }
    auto it = view_by_data.find(mask_data);
    if (it != view_by_data.end()) return MaskViewSlot(*it->second);
    return core::Status::Internal(
        "executor: fused attention mask with unknown source");
  }

  core::StatusOr<int> AdditiveSlot(const ag::DynamicNote& note,
                                   const t::Tensor& value) {
    bool spatial;
    if (spec.keep_data != nullptr && note.mask_src == spec.keep_data) {
      spatial = true;  // mask_s aliases the keep mask directly
    } else if (view_by_data.count(note.mask_src) > 0) {
      spatial = false;  // mask_t, the materialized [B*N, T] transpose
    } else {
      return core::Status::Internal(
          "executor: additive key mask with unknown source");
    }
    int64_t expect_lk = spatial ? spec.num_nodes : spec.input_len;
    if (note.lk != expect_lk) {
      return core::Status::Internal("executor: additive key mask lk mismatch");
    }
    std::string key = (spatial ? "s/" : "t/") + std::to_string(note.heads) +
                      "/" + std::to_string(note.lq) + "/" +
                      std::to_string(note.lk);
    auto it = additive_key_slot.find(key);
    if (it != additive_key_slot.end()) return it->second;
    int slot = NewSlot(Slot::Kind::kArena, value.size(), -1, t::Tensor());
    DynamicFill fill;
    fill.kind = ag::DynamicKind::kAdditiveKeyMask;
    fill.slot = slot;
    fill.spatial_layout = spatial;
    fill.heads = note.heads;
    fill.lq = note.lq;
    fill.lk = note.lk;
    fills.push_back(fill);
    additive_key_slot[key] = slot;
    return slot;
  }

  // Classifies a tensor that enters the program from outside the recorded
  // ops: model input, keep mask, parameter, annotated dynamic input, or a
  // baked constant.
  core::StatusOr<int> LeafSlot(const t::Tensor& value) {
    const float* d = value.data();
    auto hit = leaf_slot.find(d);
    if (hit != leaf_slot.end()) return hit->second;
    int slot;
    if (d == spec.input_data) {
      slot = NewSlot(Slot::Kind::kArena, value.size(), -1, t::Tensor());
      input_slot = slot;
    } else if (spec.keep_data != nullptr && d == spec.keep_data) {
      slot = NewSlot(Slot::Kind::kArena, value.size(), -1, t::Tensor());
      keep_slot = slot;
    } else if (param_by_data.count(d) > 0) {
      slot = NewSlot(Slot::Kind::kExternal, value.size(), -1, param_by_data[d]);
    } else if (onehot_by_data.count(d) > 0) {
      const ag::DynamicNote& note = *onehot_by_data[d];
      bool out_stream;
      if (note.tod == spec.tod_in && note.dow == spec.dow_in) {
        out_stream = false;
      } else if (note.tod == spec.tod_out && note.dow == spec.dow_out) {
        out_stream = true;
      } else {
        return core::Status::Internal(
            "executor: calendar one-hot from unknown stream");
      }
      slot = NewSlot(Slot::Kind::kArena, value.size(), -1, t::Tensor());
      DynamicFill fill;
      fill.kind = ag::DynamicKind::kCalendarOnehot;
      fill.slot = slot;
      fill.out_stream = out_stream;
      fill.onehot_rows = note.tensor.dim(0);
      fill.onehot_dim = note.tensor.dim(1);
      fill.steps_per_day = note.steps_per_day;
      fills.push_back(fill);
    } else if (view_by_data.count(d) > 0) {
      auto result = MaskViewSlot(*view_by_data[d]);
      if (!result.ok()) return result.status();
      slot = result.value();
    } else if (additive_by_data.count(d) > 0) {
      auto result = AdditiveSlot(*additive_by_data[d], value);
      if (!result.ok()) return result.status();
      slot = result.value();
    } else {
      // Request-independent tensor (e.g. the zeros broadcast helper in
      // BottleneckAttention): bake a private copy.
      slot = NewSlot(Slot::Kind::kExternal, value.size(), -1, value.Clone());
    }
    leaf_slot[d] = slot;
    return slot;
  }

  core::StatusOr<int> SlotFor(const ag::NodePtr& node) {
    auto it = node_slot.find(node.get());
    if (it != node_slot.end()) return it->second;
    auto result = LeafSlot(node->value);
    if (!result.ok()) return result.status();
    node_slot[node.get()] = result.value();
    return result.value();
  }
};

}  // namespace

core::StatusOr<std::unique_ptr<Program>> Program::Compile(
    const CompileSpec& spec) {
  SSTBAN_CHECK(spec.records != nullptr && spec.output != nullptr);
  Builder b(spec);
  const std::vector<ag::TraceRecord>& records = *spec.records;

  // Recorded-consumer counts, for the attention peephole: an intermediate
  // may only be fused away when exactly one recorded op reads it and it is
  // not the program output.
  std::unordered_map<const ag::Node*, int> consumers;
  for (const ag::TraceRecord& rec : records) {
    for (const ag::NodePtr& in : rec.inputs) consumers[in.get()]++;
  }
  auto fusable = [&](const ag::NodePtr& node) {
    return consumers[node.get()] == 1 && node.get() != spec.output.get();
  };
  const bool fuse_attention = t::FusedAttentionEnabled();

  for (size_t ri = 0; ri < records.size(); ++ri) {
    const ag::TraceRecord& rec = records[ri];
    int64_t i = static_cast<int64_t>(b.instrs.size());
    const std::string op = rec.op;
    const t::Shape& out_shape = rec.node->value.shape();

    // Peephole: collapse the unfused attention chain
    //   bmm(q, k, tb) -> mul_scalar -> softmax[_masked] -> bmm(probs, v)
    // into one kFusedAttention instruction, so the [B, Lq, Lk] score tensor
    // is never materialized. Restricted to the exact regime
    // (Lk <= kFusedAttentionExactMaxKeys) where the fused kernel is bitwise
    // identical to the chain it replaces — the engine's compile-time
    // self-check compares against the unfused trace output byte for byte.
    if (fuse_attention && ri + 3 < records.size() && op == "bmm" &&
        !rec.attrs.transpose_a && rec.attrs.transpose_b) {
      const ag::TraceRecord& r_scale = records[ri + 1];
      const ag::TraceRecord& r_soft = records[ri + 2];
      const ag::TraceRecord& r_ctx = records[ri + 3];
      const t::Tensor& qv = rec.inputs[0]->value;
      const t::Tensor& kv = rec.inputs[1]->value;
      bool match =
          std::string(r_scale.op) == "mul_scalar" &&
          r_scale.inputs.size() == 1 && r_scale.inputs[0] == rec.node &&
          fusable(rec.node) && std::string(r_soft.op) == "softmax" &&
          r_soft.inputs.size() == 1 && r_soft.inputs[0] == r_scale.node &&
          fusable(r_scale.node) && std::string(r_ctx.op) == "bmm" &&
          !r_ctx.attrs.transpose_a && !r_ctx.attrs.transpose_b &&
          r_ctx.inputs.size() == 2 && r_ctx.inputs[0] == r_soft.node &&
          fusable(r_soft.node) && kv.dim(1) <= t::kFusedAttentionExactMaxKeys;
      if (match) {
        const t::Tensor& vv = r_ctx.inputs[1]->value;
        match = vv.dim(0) == qv.dim(0) && vv.dim(1) == kv.dim(1) &&
                vv.dim(2) == qv.dim(2);
      }
      int mask_slot = -1;
      int64_t mask_heads = 1;
      if (match && r_soft.attrs.softmax_mask.defined()) {
        // The chain's additive mask must trace back to the keep mask so the
        // fused kernel can re-expand it on the fly.
        auto note_it =
            b.additive_by_data.find(r_soft.attrs.softmax_mask.data());
        if (note_it == b.additive_by_data.end()) {
          match = false;
        } else {
          const ag::DynamicNote& note = *note_it->second;
          core::StatusOr<int> slot = b.FusedMaskSlot(note.mask_src);
          if (!slot.ok()) {
            match = false;  // fall back to the unfused lowering
          } else {
            mask_slot = slot.value();
            mask_heads = note.heads;
          }
        }
      }
      if (match) {
        auto q = b.SlotFor(rec.inputs[0]);
        auto k = b.SlotFor(rec.inputs[1]);
        auto v = b.SlotFor(r_ctx.inputs[1]);
        if (!q.ok()) return q.status();
        if (!k.ok()) return k.status();
        if (!v.ok()) return v.status();
        Instr f;
        f.kind = OpKind::kFusedAttention;
        f.a = q.value();
        f.b = k.value();
        f.c = v.value();
        f.mask = mask_slot;
        f.heads = mask_heads;
        f.scalar = r_scale.attrs.scalar;
        f.batch = qv.dim(0);
        f.m = qv.dim(1);
        f.k = qv.dim(2);
        f.gemm_n = kv.dim(1);
        f.out = b.NewSlot(Slot::Kind::kArena, r_ctx.node->value.size(), i,
                          t::Tensor());
        b.node_slot[r_ctx.node.get()] = f.out;
        b.Use(f.a, i);
        b.Use(f.b, i);
        b.Use(f.c, i);
        if (f.mask >= 0) b.Use(f.mask, i);
        b.instrs.push_back(std::move(f));
        ri += 3;
        continue;
      }
    }

    if (op == "reshape") {
      // Pure storage alias: the node shares its input's slot; downstream
      // instructions bake the reshaped geometry anyway.
      auto in = b.SlotFor(rec.inputs[0]);
      if (!in.ok()) return in.status();
      b.node_slot[rec.node.get()] = in.value();
      b.Use(in.value(), i);  // keep the storage alive across the alias point
      continue;
    }

    Instr ins;
    bool known = true;
    if (op == "add" || op == "mul") {
      auto a = b.SlotFor(rec.inputs[0]);
      auto c = b.SlotFor(rec.inputs[1]);
      if (!a.ok()) return a.status();
      if (!c.ok()) return c.status();
      ins.a = a.value();
      ins.b = c.value();
      const t::Shape& sa = rec.inputs[0]->value.shape();
      const t::Shape& sb = rec.inputs[1]->value.shape();
      if (sa == sb) {
        ins.kind = op == "add" ? OpKind::kAddSame : OpKind::kMulSame;
      } else {
        ins.kind = op == "add" ? OpKind::kAddBcast : OpKind::kMulBcast;
        ins.sa = BcastStrides(sa, out_shape);
        ins.sb = BcastStrides(sb, out_shape);
        ins.odims = out_shape.dims();
        ins.rank = out_shape.rank();
        ins.idx.resize(ins.rank);
      }
      ins.n = rec.node->value.size();
    } else if (op == "add_scalar" || op == "mul_scalar") {
      auto a = b.SlotFor(rec.inputs[0]);
      if (!a.ok()) return a.status();
      ins.a = a.value();
      ins.kind = op == "add_scalar" ? OpKind::kAddScalar : OpKind::kMulScalar;
      ins.scalar = rec.attrs.scalar;
      ins.n = rec.node->value.size();
    } else if (op == "relu") {
      auto a = b.SlotFor(rec.inputs[0]);
      if (!a.ok()) return a.status();
      ins.a = a.value();
      ins.kind = OpKind::kRelu;
      ins.n = rec.node->value.size();
    } else if (op == "matmul") {
      auto a = b.SlotFor(rec.inputs[0]);
      auto c = b.SlotFor(rec.inputs[1]);
      if (!a.ok()) return a.status();
      if (!c.ok()) return c.status();
      ins.kind = OpKind::kGemm;
      ins.a = a.value();
      ins.b = c.value();
      ins.batch = 1;
      ins.m = rec.inputs[0]->value.dim(0);
      ins.k = rec.inputs[0]->value.dim(1);
      ins.gemm_n = rec.inputs[1]->value.dim(1);
    } else if (op == "bmm") {
      auto a = b.SlotFor(rec.inputs[0]);
      auto c = b.SlotFor(rec.inputs[1]);
      if (!a.ok()) return a.status();
      if (!c.ok()) return c.status();
      const t::Tensor& av = rec.inputs[0]->value;
      const t::Tensor& bv = rec.inputs[1]->value;
      ins.kind = OpKind::kGemm;
      ins.a = a.value();
      ins.b = c.value();
      ins.ta = rec.attrs.transpose_a;
      ins.tb = rec.attrs.transpose_b;
      ins.batch = av.dim(0);
      ins.m = ins.ta ? av.dim(2) : av.dim(1);
      ins.k = ins.ta ? av.dim(1) : av.dim(2);
      ins.gemm_n = ins.tb ? bv.dim(1) : bv.dim(2);
      ins.a_stride = av.dim(1) * av.dim(2);
      ins.b_stride = bv.dim(1) * bv.dim(2);
    } else if (op == "permute") {
      auto a = b.SlotFor(rec.inputs[0]);
      if (!a.ok()) return a.status();
      ins.kind = OpKind::kPermute;
      ins.a = a.value();
      const std::vector<int>& perm = rec.attrs.perm;
      int rank = static_cast<int>(perm.size());
      std::vector<int64_t> in_strides = rec.inputs[0]->value.shape().Strides();
      ins.new_dims = out_shape.dims();
      ins.step.resize(rank);
      for (int j = 0; j < rank; ++j) ins.step[j] = in_strides[perm[j]];
      ins.n = rec.node->value.size();
      int tail = 0;
      while (tail < rank && perm[rank - 1 - tail] == rank - 1 - tail) ++tail;
      if (tail > 0 && tail < rank) {
        ins.run = 1;
        for (int j = rank - tail; j < rank; ++j) ins.run *= ins.new_dims[j];
        ins.outer_rank = rank - tail;
        ins.idx.resize(ins.outer_rank);
      } else {
        ins.run = 0;
        ins.outer_rank = rank;
        ins.idx.resize(rank);
      }
    } else if (op == "concat") {
      ins.kind = OpKind::kConcat;
      int axis = rec.attrs.axis;
      ins.outer = 1;
      ins.inner = 1;
      const std::vector<int64_t>& odims = out_shape.dims();
      for (int j = 0; j < axis; ++j) ins.outer *= odims[j];
      for (size_t j = axis + 1; j < odims.size(); ++j) ins.inner *= odims[j];
      ins.axis_total = odims[axis];
      for (const ag::NodePtr& part : rec.inputs) {
        auto p = b.SlotFor(part);
        if (!p.ok()) return p.status();
        ins.parts.push_back(p.value());
        ins.part_mid.push_back(part->value.shape().dims()[axis]);
      }
    } else if (op == "fused_attention") {
      auto q = b.SlotFor(rec.inputs[0]);
      auto k = b.SlotFor(rec.inputs[1]);
      auto v = b.SlotFor(rec.inputs[2]);
      if (!q.ok()) return q.status();
      if (!k.ok()) return k.status();
      if (!v.ok()) return v.status();
      const t::Tensor& qv = rec.inputs[0]->value;
      const t::Tensor& kv = rec.inputs[1]->value;
      ins.kind = OpKind::kFusedAttention;
      ins.a = q.value();
      ins.b = k.value();
      ins.c = v.value();
      ins.scalar = rec.attrs.scalar;
      ins.heads = rec.attrs.attn_heads > 0 ? rec.attrs.attn_heads : 1;
      ins.batch = qv.dim(0);
      ins.m = qv.dim(1);
      ins.k = qv.dim(2);
      ins.gemm_n = kv.dim(1);
      if (rec.attrs.softmax_mask.defined()) {
        auto mask = b.FusedMaskSlot(rec.attrs.softmax_mask.data());
        if (!mask.ok()) return mask.status();
        ins.mask = mask.value();
      }
    } else if (op == "softmax") {
      auto a = b.SlotFor(rec.inputs[0]);
      if (!a.ok()) return a.status();
      ins.a = a.value();
      ins.cols = out_shape.dims()[out_shape.rank() - 1];
      ins.rows = rec.node->value.size() / ins.cols;
      ins.n = rec.node->value.size();
      if (rec.attrs.softmax_mask.defined()) {
        // The additive mask is not an op input; resolve it through the same
        // leaf classifier (it must be an annotated dynamic mask).
        auto mask = b.LeafSlot(rec.attrs.softmax_mask);
        if (!mask.ok()) return mask.status();
        if (b.slots[mask.value()].kind != Slot::Kind::kArena ||
            b.def_idx[mask.value()] != -1) {
          return core::Status::Internal(
              "executor: softmax mask is not a dynamic input");
        }
        ins.kind = OpKind::kSoftmaxMasked;
        ins.b = mask.value();
      } else {
        ins.kind = OpKind::kSoftmax;
      }
    } else {
      known = false;
    }
    if (!known) {
      return core::Status::Internal(std::string("executor: unsupported op '") +
                                    rec.op + "'");
    }

    ins.out = b.NewSlot(Slot::Kind::kArena, rec.node->value.size(), i,
                        t::Tensor());
    b.node_slot[rec.node.get()] = ins.out;
    if (ins.a >= 0) b.Use(ins.a, i);
    if (ins.b >= 0) b.Use(ins.b, i);
    if (ins.c >= 0) b.Use(ins.c, i);
    if (ins.mask >= 0) b.Use(ins.mask, i);
    for (int p : ins.parts) b.Use(p, i);
    b.instrs.push_back(std::move(ins));
  }

  auto out_it = b.node_slot.find(spec.output.get());
  if (out_it == b.node_slot.end()) {
    return core::Status::Internal("executor: output node was never produced");
  }
  if (b.input_slot < 0) {
    return core::Status::Internal("executor: model input never consumed");
  }
  if (spec.keep_data != nullptr && b.keep_slot < 0) {
    return core::Status::Internal("executor: keep mask never consumed");
  }

  auto program = std::unique_ptr<Program>(new Program());
  program->instrs_ = std::move(b.instrs);
  program->fills_ = std::move(b.fills);
  program->slots_ = std::move(b.slots);
  program->input_slot_ = b.input_slot;
  program->keep_slot_ = b.keep_slot;
  program->output_slot_ = out_it->second;
  program->input_shape_ =
      t::Shape{spec.batch_size, spec.input_len, spec.num_nodes,
               spec.num_features};
  program->keep_shape_ =
      t::Shape{spec.batch_size, spec.input_len, spec.num_nodes};
  program->output_shape_ = spec.output->value.shape();

  // Plan the arena from exact lifetimes. At each step, outputs born at that
  // instruction are placed before inputs dying there are freed, so no
  // instruction ever reads and writes overlapping storage.
  int64_t n_instr = static_cast<int64_t>(program->instrs_.size());
  int64_t n_slots = static_cast<int64_t>(program->slots_.size());
  b.last_use[program->output_slot_] = n_instr;  // survives to the final copy
  std::vector<std::vector<int>> born(n_instr + 1), dies(n_instr + 1);
  for (int64_t s = 0; s < n_slots; ++s) {
    if (program->slots_[s].kind != Slot::Kind::kArena) continue;
    born[b.def_idx[s] + 1].push_back(static_cast<int>(s));
    if (b.last_use[s] < n_instr) dies[b.last_use[s] + 1].push_back(
        static_cast<int>(s));
  }
  ArenaPlanner planner;
  for (int64_t step = 0; step <= n_instr; ++step) {
    for (int s : born[step]) {
      program->slots_[s].offset =
          planner.Allocate(AlignUp(program->slots_[s].size));
    }
    for (int s : dies[step]) {
      planner.Free(program->slots_[s].offset,
                   AlignUp(program->slots_[s].size));
    }
  }
  program->arena_ =
      t::Tensor::Zeros(t::Shape{std::max<int64_t>(planner.peak(), 1)});

  program->ptrs_.resize(n_slots);
  for (int64_t s = 0; s < n_slots; ++s) {
    Slot& slot = program->slots_[s];
    program->ptrs_[s] = slot.kind == Slot::Kind::kArena
                            ? program->arena_.data() + slot.offset
                            : slot.backing.data();
  }

  // Reduced-precision weight rewrite: every parameter GEMM of the Linear
  // shape (batch == 1, no transposes, external weight slot) gets a quantized
  // weight copy; everything else stays fp32. Each instruction owns its copy
  // so int8 calibration can track per-call-site activation ranges even when
  // two call sites share one weight tensor.
  program->precision_ = spec.precision;
  if (spec.precision != PrecisionMode::kFp32) {
    int64_t max_stage = 0, max_act = 0;
    for (Instr& ins : program->instrs_) {
      if (ins.kind != OpKind::kGemm || ins.batch != 1 || ins.ta || ins.tb) {
        continue;
      }
      const Slot& wslot = program->slots_[ins.b];
      if (wslot.kind != Slot::Kind::kExternal ||
          wslot.backing.size() != ins.k * ins.gemm_n) {
        continue;
      }
      const float* wd = wslot.backing.data();
      LowPrecGemm lp;
      lp.k = ins.k;
      lp.n = ins.gemm_n;
      if (spec.precision == PrecisionMode::kBf16) {
        lp.bf16.resize(static_cast<size_t>(lp.k * lp.n));
        for (int64_t i = 0; i < lp.k * lp.n; ++i) {
          lp.bf16[i] = Bf16FromFloat(wd[i]);
        }
      } else {
        lp.q.resize(static_cast<size_t>(lp.k * lp.n));
        lp.col_scale.resize(static_cast<size_t>(lp.n));
        for (int64_t j = 0; j < lp.n; ++j) {
          float wmax = 0.0f;
          for (int64_t p = 0; p < lp.k; ++p) {
            wmax = std::max(wmax, std::fabs(wd[p * lp.n + j]));
          }
          float scale = wmax > 0.0f ? wmax / 127.0f : 1.0f;
          lp.col_scale[j] = scale;
          float inv = 1.0f / scale;
          for (int64_t p = 0; p < lp.k; ++p) {
            float x = wd[p * lp.n + j] * inv;
            x = std::min(127.0f, std::max(-127.0f, x));
            lp.q[p * lp.n + j] = static_cast<int8_t>(std::lrintf(x));
          }
        }
      }
      ins.lowprec = static_cast<int>(program->lowprec_.size());
      program->lowprec_.push_back(std::move(lp));
      max_stage = std::max(max_stage, ins.k * ins.gemm_n);
      max_act = std::max(max_act, ins.m * ins.k);
    }
    if (spec.precision == PrecisionMode::kBf16) {
      program->staging_.resize(static_cast<size_t>(max_stage));
    } else {
      program->act_q_.resize(static_cast<size_t>(max_act));
    }
  }
  return program;
}

namespace {

// Routed through the same runtime-dispatched simd kernels the tensor ops
// use. Elementwise float add/mul are exactly rounded, so the bitwise
// equivalence with the tape path holds at every simd level.
void RunElementwise(const Instr& ins, const float* pa, const float* pb,
                    float* po) {
  const t::simd::SimdKernels& ks = t::simd::Kernels();
  switch (ins.kind) {
    case OpKind::kAddSame:
      t::ParallelFor(0, ins.n, [&](int64_t lo, int64_t hi) {
        ks.add(pa + lo, pb + lo, po + lo, hi - lo);
      });
      break;
    case OpKind::kMulSame:
      t::ParallelFor(0, ins.n, [&](int64_t lo, int64_t hi) {
        ks.mul(pa + lo, pb + lo, po + lo, hi - lo);
      });
      break;
    case OpKind::kAddScalar: {
      float s = ins.scalar;
      t::ParallelFor(0, ins.n, [&](int64_t lo, int64_t hi) {
        ks.add_scalar(pa + lo, s, po + lo, hi - lo);
      });
      break;
    }
    case OpKind::kMulScalar: {
      float s = ins.scalar;
      t::ParallelFor(0, ins.n, [&](int64_t lo, int64_t hi) {
        ks.mul_scalar(pa + lo, s, po + lo, hi - lo);
      });
      break;
    }
    case OpKind::kRelu:
      t::ParallelFor(0, ins.n, [&](int64_t lo, int64_t hi) {
        ks.relu(pa + lo, po + lo, hi - lo);
      });
      break;
    default:
      SSTBAN_CHECK(false) << "not an elementwise op";
  }
}

// Sequential odometer matching the tape's general broadcast path bit for bit
// (elementwise float ops are exactly rounded, so partitioning would not
// matter either way).
template <bool kMul>
void RunBroadcast(const Instr& ins, const float* pa, const float* pb,
                  float* po) {
  std::fill(ins.idx.begin(), ins.idx.end(), 0);
  int rank = ins.rank;
  int64_t offset_a = 0, offset_b = 0;
  for (int64_t i = 0; i < ins.n; ++i) {
    po[i] = kMul ? pa[offset_a] * pb[offset_b] : pa[offset_a] + pb[offset_b];
    for (int axis = rank - 1; axis >= 0; --axis) {
      ++ins.idx[axis];
      offset_a += ins.sa[axis];
      offset_b += ins.sb[axis];
      if (ins.idx[axis] < ins.odims[axis]) break;
      offset_a -= ins.sa[axis] * ins.odims[axis];
      offset_b -= ins.sb[axis] * ins.odims[axis];
      ins.idx[axis] = 0;
    }
  }
}

// Same two code paths as tensor::Permute: trailing-tail memcpy when the
// innermost axes stay in place, full odometer otherwise.
void RunPermute(const Instr& ins, const float* pa, float* po) {
  std::fill(ins.idx.begin(), ins.idx.end(), 0);
  if (ins.run > 0) {
    int64_t in_offset = 0;
    int64_t rows = ins.n / ins.run;
    for (int64_t r = 0; r < rows; ++r) {
      std::memcpy(po + r * ins.run, pa + in_offset,
                  static_cast<size_t>(ins.run) * sizeof(float));
      for (int axis = ins.outer_rank - 1; axis >= 0; --axis) {
        ++ins.idx[axis];
        in_offset += ins.step[axis];
        if (ins.idx[axis] < ins.new_dims[axis]) break;
        in_offset -= ins.step[axis] * ins.new_dims[axis];
        ins.idx[axis] = 0;
      }
    }
    return;
  }
  int64_t in_offset = 0;
  int rank = ins.outer_rank;
  for (int64_t i = 0; i < ins.n; ++i) {
    po[i] = pa[in_offset];
    for (int axis = rank - 1; axis >= 0; --axis) {
      ++ins.idx[axis];
      in_offset += ins.step[axis];
      if (ins.idx[axis] < ins.new_dims[axis]) break;
      in_offset -= ins.step[axis] * ins.new_dims[axis];
      ins.idx[axis] = 0;
    }
  }
}

}  // namespace

core::Status Program::Run(const t::Tensor& x_norm, const t::Tensor* keep,
                          const data::Batch& batch, t::Tensor* out) {
  return RunInternal(x_norm, keep, batch, out, /*calibrate=*/false);
}

core::Status Program::Calibrate(const t::Tensor& x_norm, const t::Tensor* keep,
                                const data::Batch& batch) {
  t::Tensor scratch;
  SSTBAN_RETURN_IF_ERROR(
      RunInternal(x_norm, keep, batch, &scratch, /*calibrate=*/true));
  std::lock_guard<std::mutex> lock(run_mu_);
  for (LowPrecGemm& lp : lowprec_) {
    if (lp.calib_amax > 0.0f) lp.static_scale = lp.calib_amax / 127.0f;
  }
  return core::Status::Ok();
}

core::Status Program::RunInternal(const t::Tensor& x_norm,
                                  const t::Tensor* keep,
                                  const data::Batch& batch, t::Tensor* out,
                                  bool calibrate) {
  std::lock_guard<std::mutex> lock(run_mu_);
  SSTBAN_RETURN_IF_ERROR(core::FailPointStatus("exec_run"));
  if (x_norm.shape() != input_shape_) {
    return core::Status::InvalidArgument("executor: input shape mismatch");
  }
  if ((keep != nullptr) != masked()) {
    return core::Status::InvalidArgument(
        "executor: masked/unmasked program mismatch");
  }
  if (keep != nullptr && keep->shape() != keep_shape_) {
    return core::Status::InvalidArgument("executor: keep mask shape mismatch");
  }

  std::memcpy(ptrs_[input_slot_], x_norm.data(),
              static_cast<size_t>(x_norm.size()) * sizeof(float));
  if (keep != nullptr) {
    std::memcpy(ptrs_[keep_slot_], keep->data(),
                static_cast<size_t>(keep->size()) * sizeof(float));
  }

  for (const DynamicFill& fill : fills_) {
    float* po = ptrs_[fill.slot];
    if (fill.kind == ag::DynamicKind::kCalendarOnehot) {
      const std::vector<int64_t>& tod =
          fill.out_stream ? batch.tod_out : batch.tod_in;
      const std::vector<int64_t>& dow =
          fill.out_stream ? batch.dow_out : batch.dow_in;
      if (static_cast<int64_t>(tod.size()) != fill.onehot_rows ||
          static_cast<int64_t>(dow.size()) != fill.onehot_rows) {
        return core::Status::InvalidArgument(
            "executor: calendar feature length mismatch");
      }
      std::fill_n(po, fill.onehot_rows * fill.onehot_dim, 0.0f);
      for (int64_t r = 0; r < fill.onehot_rows; ++r) {
        if (tod[r] < 0 || tod[r] >= fill.steps_per_day || dow[r] < 0 ||
            dow[r] >= 7) {
          return core::Status::InvalidArgument(
              "executor: calendar index out of range");
        }
        po[r * fill.onehot_dim + tod[r]] = 1.0f;
        po[r * fill.onehot_dim + fill.steps_per_day + dow[r]] = 1.0f;
      }
    } else if (fill.kind == ag::DynamicKind::kKeepMaskView) {
      // The [B*N, T] transpose of the keep mask, value-for-value the tensor
      // the tape materializes via Permute + Reshape (raw 0/1 floats; the
      // fused kernel applies its own > 0.5 expansion).
      const float* keep_ptr = ptrs_[keep_slot_];
      int64_t nodes = keep_shape_.dims()[2];
      int64_t time = keep_shape_.dims()[1];
      int64_t bn = keep_shape_.dims()[0] * nodes;
      t::ParallelFor(0, bn, [&](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          int64_t bb = r / nodes;
          int64_t node = r % nodes;
          float* row = po + r * time;
          for (int64_t j = 0; j < time; ++j) {
            row[j] = keep_ptr[(bb * time + j) * nodes + node];
          }
        }
      }, /*min_chunk=*/256);
    } else if (fill.kind == ag::DynamicKind::kAdditiveKeyMask) {
      // Rebuild the additive mask straight from the keep mask, fusing the
      // tape's permute/reshape view with its >0.5 -> {0, -1e9} expansion:
      // the written values are exact constants either way.
      const float* keep_ptr = ptrs_[keep_slot_];
      int64_t nodes = keep_shape_.dims()[2];
      int64_t time = keep_shape_.dims()[1];
      int64_t total_rows = slots_[fill.slot].size / fill.lk;
      int64_t hq = fill.heads * fill.lq;
      if (fill.spatial_layout) {
        t::ParallelFor(0, total_rows, [&](int64_t lo, int64_t hi) {
          for (int64_t r = lo; r < hi; ++r) {
            float* row = po + r * fill.lk;
            const float* mrow = keep_ptr + (r / hq) * nodes;
            for (int64_t j = 0; j < fill.lk; ++j) {
              row[j] = mrow[j] > 0.5f ? 0.0f : -1e9f;
            }
          }
        }, /*min_chunk=*/256);
      } else {
        t::ParallelFor(0, total_rows, [&](int64_t lo, int64_t hi) {
          for (int64_t r = lo; r < hi; ++r) {
            float* row = po + r * fill.lk;
            int64_t bn = r / hq;
            int64_t bb = bn / nodes;
            int64_t node = bn % nodes;
            for (int64_t j = 0; j < fill.lk; ++j) {
              row[j] =
                  keep_ptr[(bb * time + j) * nodes + node] > 0.5f ? 0.0f
                                                                  : -1e9f;
            }
          }
        }, /*min_chunk=*/256);
      }
    }
  }

  for (const Instr& ins : instrs_) {
    const float* pa = ins.a >= 0 ? ptrs_[ins.a] : nullptr;
    const float* pb = ins.b >= 0 ? ptrs_[ins.b] : nullptr;
    float* po = ptrs_[ins.out];
    switch (ins.kind) {
      case OpKind::kAddSame:
      case OpKind::kMulSame:
      case OpKind::kAddScalar:
      case OpKind::kMulScalar:
      case OpKind::kRelu:
        RunElementwise(ins, pa, pb, po);
        break;
      case OpKind::kAddBcast:
        RunBroadcast<false>(ins, pa, pb, po);
        break;
      case OpKind::kMulBcast:
        RunBroadcast<true>(ins, pa, pb, po);
        break;
      case OpKind::kGemm:
        if (ins.lowprec >= 0) {
          RunLowPrecGemm(ins, lowprec_[ins.lowprec], pa, po, calibrate);
        } else {
          t::GemmBatchedInto(pa, pb, po, ins.batch, ins.m, ins.k, ins.gemm_n,
                             ins.ta, ins.tb, ins.a_stride, ins.b_stride);
        }
        break;
      case OpKind::kPermute:
        RunPermute(ins, pa, po);
        break;
      case OpKind::kConcat: {
        int64_t axis_offset = 0;
        for (size_t p = 0; p < ins.parts.size(); ++p) {
          const float* pp = ptrs_[ins.parts[p]];
          int64_t mid = ins.part_mid[p];
          for (int64_t o = 0; o < ins.outer; ++o) {
            std::memcpy(
                po + (o * ins.axis_total + axis_offset) * ins.inner,
                pp + o * mid * ins.inner,
                static_cast<size_t>(mid * ins.inner) * sizeof(float));
          }
          axis_offset += mid;
        }
        break;
      }
      case OpKind::kSoftmax:
        t::SoftmaxRows(pa, po, ins.rows, ins.cols);
        break;
      case OpKind::kSoftmaxMasked:
        // Matches the tape's SoftmaxWithMask = Softmax(Add(scores, mask));
        // SoftmaxRows is in-place safe.
        t::ParallelFor(0, ins.n, [&](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) po[i] = pa[i] + pb[i];
        });
        t::SoftmaxRows(po, po, ins.rows, ins.cols);
        break;
      case OpKind::kFusedAttention:
        t::FusedAttentionInto(pa, pb, ptrs_[ins.c],
                              ins.mask >= 0 ? ptrs_[ins.mask] : nullptr,
                              ins.heads, po, ins.batch, /*lq=*/ins.m,
                              /*lk=*/ins.gemm_n, /*dk=*/ins.k, ins.scalar);
        break;
    }
  }

  if (!out->defined() || out->shape() != output_shape_) {
    *out = t::Tensor::Empty(output_shape_);
  }
  std::memcpy(out->data(), ptrs_[output_slot_],
              static_cast<size_t>(out->size()) * sizeof(float));
  return core::Status::Ok();
}

void Program::RunLowPrecGemm(const Instr& ins, LowPrecGemm& lp,
                             const float* pa, float* po, bool calibrate) {
  const int64_t m = ins.m, k = ins.k, n = ins.gemm_n;
  if (precision_ == PrecisionMode::kBf16) {
    // Expand the bf16 weights into the shared staging buffer (exact: decode
    // is a bit shift) and run the normal fp32 GEMM, so the result is bitwise
    // identical at any thread count just like the fp32 path.
    const uint16_t* w = lp.bf16.data();
    float* stage = staging_.data();
    t::ParallelFor(0, k * n, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) stage[i] = FloatFromBf16(w[i]);
    }, /*min_chunk=*/4096);
    t::GemmBatchedInto(pa, stage, po, 1, m, k, n, false, false, 0, 0);
    return;
  }
  // int8: per-row activation scale (dynamic, or the calibrated per-tensor
  // static scale), exact int32 accumulation, fp32 rescale on write-out.
  // Rows are quantized and accumulated independently in a fixed order, so
  // the result is bitwise deterministic at any thread count.
  if (calibrate) {
    float amax = lp.calib_amax;
    for (int64_t i = 0; i < m * k; ++i) {
      amax = std::max(amax, std::fabs(pa[i]));
    }
    lp.calib_amax = amax;
  }
  const bool use_static = !calibrate && lp.static_scale > 0.0f;
  const int8_t* wq = lp.q.data();
  const float* cs = lp.col_scale.data();
  int8_t* aq = act_q_.data();
  const int64_t min_chunk = std::max<int64_t>(1, (1 << 16) / std::max<int64_t>(1, k * n));
  t::ParallelFor(0, m, [&](int64_t lo, int64_t hi) {
    std::vector<int32_t> acc(static_cast<size_t>(n));
    for (int64_t r = lo; r < hi; ++r) {
      const float* arow = pa + r * k;
      int8_t* qrow = aq + r * k;
      float scale;
      if (use_static) {
        scale = lp.static_scale;
      } else {
        float amax = 0.0f;
        for (int64_t p = 0; p < k; ++p) amax = std::max(amax, std::fabs(arow[p]));
        scale = amax > 0.0f ? amax / 127.0f : 1.0f;
      }
      const float inv = 1.0f / scale;
      for (int64_t p = 0; p < k; ++p) {
        float x = arow[p] * inv;
        x = std::min(127.0f, std::max(-127.0f, x));
        qrow[p] = static_cast<int8_t>(std::lrintf(x));
      }
      std::fill(acc.begin(), acc.end(), 0);
      for (int64_t p = 0; p < k; ++p) {
        const int32_t av = qrow[p];
        if (av == 0) continue;
        const int8_t* wrow = wq + p * n;
        for (int64_t j = 0; j < n; ++j) {
          acc[j] += av * static_cast<int32_t>(wrow[j]);
        }
      }
      float* orow = po + r * n;
      for (int64_t j = 0; j < n; ++j) {
        orow[j] = static_cast<float>(acc[j]) * (scale * cs[j]);
      }
    }
  }, min_chunk);
}

}  // namespace sstban::exec

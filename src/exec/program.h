#ifndef SSTBAN_EXEC_PROGRAM_H_
#define SSTBAN_EXEC_PROGRAM_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "autograd/trace.h"
#include "core/status.h"
#include "data/dataset.h"
#include "exec/precision.h"
#include "tensor/tensor.h"

namespace sstban::exec {

// A Program is one (B, P, Q, N, C[, masked]) shape specialization of the
// model forward, compiled from a tape trace (autograd/trace.h) into a flat
// list of enum-tagged instructions over integer tensor slots. All shapes,
// strides, GEMM dims, and memcpy plans are baked at compile time; arena
// slots are assigned from exact [def, last-use] lifetimes, so a steady-state
// Run does no pool lookups and no heap allocations. Every instruction bottoms
// out in the same kernels the tape uses (GemmBatchedInto, SoftmaxRows,
// identical elementwise/odometer loops), which is what makes Run output
// bitwise-identical to the tape forward — see DESIGN.md §13.

// Where a slot's floats live.
struct Slot {
  enum class Kind : uint8_t {
    kArena,     // planned offset in the program's arena tensor
    kExternal,  // model parameter or baked constant; `backing` pins storage
  };
  Kind kind = Kind::kArena;
  int64_t offset = 0;  // arena slots: offset in floats
  int64_t size = 0;    // element count
  tensor::Tensor backing;
};

enum class OpKind : uint8_t {
  kAddSame,        // same-shape elementwise add
  kMulSame,        // same-shape elementwise mul
  kAddBcast,       // broadcast add (odometer, baked strides)
  kMulBcast,       // broadcast mul
  kAddScalar,
  kMulScalar,
  kRelu,
  kGemm,           // matmul (batch == 1) and bmm
  kPermute,
  kConcat,
  kSoftmax,        // softmax over the last axis
  kSoftmaxMasked,  // add additive mask, then softmax in place
  kFusedAttention, // softmax(scale * a b^T + mask) c in one streaming pass
};

struct Instr {
  OpKind kind;
  int a = -1;    // input slots
  int b = -1;    // second input (binary ops / additive mask)
  int c = -1;    // third input (kFusedAttention: the value tensor)
  int mask = -1; // kFusedAttention: [batch/heads, lk] keep-mask slot, or -1
  int out = -1;
  int64_t n = 0;           // elementwise size
  float scalar = 0.0f;     // kAddScalar / kMulScalar
  // kGemm
  int64_t batch = 0, m = 0, k = 0, gemm_n = 0;
  bool ta = false, tb = false;
  int64_t a_stride = 0, b_stride = 0;
  // kPermute: same descriptors as tensor::Permute (step[] converts a unit
  // move along output axis i into an input-offset delta). run > 0 selects
  // the trailing-tail memcpy fast path over `outer_rank` outer axes.
  std::vector<int64_t> step;
  std::vector<int64_t> new_dims;
  int64_t run = 0;
  int outer_rank = 0;
  // kConcat memcpy plan
  std::vector<int> parts;
  std::vector<int64_t> part_mid;
  int64_t outer = 0, inner = 0, axis_total = 0;
  // kAddBcast / kMulBcast odometer
  std::vector<int64_t> sa, sb, odims;
  int rank = 0;
  // kSoftmax / kSoftmaxMasked
  int64_t rows = 0, cols = 0;
  // kFusedAttention: mask-batch divisor (attention batch / mask rows); the
  // GEMM dims reuse batch/m/k/gemm_n as (batch, lq, dk, lk) and `scalar`
  // holds the softmax scale.
  int64_t heads = 0;
  // Index into the program's reduced-precision weight table, or -1 when this
  // GEMM runs in fp32 (always -1 for non-kGemm instructions).
  int lowprec = -1;
  // Preallocated odometer scratch (zeroed at each use; Run is serialized by
  // the program mutex so this is safe).
  mutable std::vector<int64_t> idx;
};

// A request-dependent slot rebuilt at the start of every Run from the live
// inputs, mirroring the raw loops the tape path runs (ste.cc one-hots,
// attention.cc additive masks).
struct DynamicFill {
  autograd::DynamicKind kind;
  int slot = -1;
  // kCalendarOnehot
  bool out_stream = false;  // tod_out/dow_out vs tod_in/dow_in
  int64_t onehot_rows = 0, onehot_dim = 0, steps_per_day = 0;
  // kAdditiveKeyMask: spatial layout reads the keep mask as [B*T, N] rows;
  // temporal layout reads it as [B, T, N] transposed per node.
  bool spatial_layout = false;
  int64_t heads = 0, lq = 0, lk = 0;
};

// Everything Program::Compile needs to classify trace leaves and lower ops.
struct CompileSpec {
  const std::vector<autograd::TraceRecord>* records = nullptr;
  const std::vector<autograd::DynamicNote>* notes = nullptr;
  // Leaf identity, by storage pointer at trace time.
  const float* input_data = nullptr;  // the traced x_norm
  const float* keep_data = nullptr;   // the traced keep mask (masked only)
  const std::vector<tensor::Tensor>* parameters = nullptr;
  // Calendar vector addresses of the batch the trace ran against, to tell
  // the input-window one-hot stream from the output-window one.
  const std::vector<int64_t>* tod_in = nullptr;
  const std::vector<int64_t>* dow_in = nullptr;
  const std::vector<int64_t>* tod_out = nullptr;
  const std::vector<int64_t>* dow_out = nullptr;
  // Model dims: input [B, P, N, C], keep [B, P, N].
  int64_t batch_size = 0, input_len = 0, num_nodes = 0, num_features = 0;
  // Numeric mode for eligible parameter GEMMs (exec/precision.h).
  PrecisionMode precision = PrecisionMode::kFp32;
  // The forward result node.
  autograd::NodePtr output;
};

class Program {
 public:
  // Lowers a trace into a program. Fails with Internal (a structural,
  // permanent condition — the caller should stop retrying this shape) when
  // the trace contains an op or a dynamic input the executor cannot replay.
  static core::StatusOr<std::unique_ptr<Program>> Compile(
      const CompileSpec& spec);

  // Replays the program: copies the inputs into their arena slots, rebuilds
  // dynamic slots, runs the instruction list, and copies the result into
  // `*out` (reused in place when already the right shape, so steady-state
  // runs allocate nothing). `keep` must be non-null iff the program was
  // compiled from a masked trace. Serialized internally; a Program is safe
  // to share across threads.
  core::Status Run(const tensor::Tensor& x_norm, const tensor::Tensor* keep,
                   const data::Batch& batch, tensor::Tensor* out);

  // Int8-mode calibration pass: identical to Run (dynamic per-row activation
  // scales) but additionally records the running max |activation| feeding
  // each quantized GEMM; afterwards those maxima become static per-tensor
  // activation scales used by every subsequent Run. Call once per batch of
  // the calibration split. No-op beyond a plain Run in fp32/bf16 modes.
  core::Status Calibrate(const tensor::Tensor& x_norm,
                         const tensor::Tensor* keep, const data::Batch& batch);

  const tensor::Shape& output_shape() const { return output_shape_; }
  bool masked() const { return keep_slot_ >= 0; }
  int64_t arena_floats() const { return arena_.size(); }
  int64_t num_instrs() const { return static_cast<int64_t>(instrs_.size()); }
  PrecisionMode precision() const { return precision_; }
  int64_t num_lowprec_gemms() const {
    return static_cast<int64_t>(lowprec_.size());
  }

 private:
  Program() = default;

  // One eligible parameter GEMM's reduced-precision weight copy.
  struct LowPrecGemm {
    int64_t k = 0, n = 0;            // weight dims [k, n]
    std::vector<uint16_t> bf16;      // kBf16: row-major bfloat16 weights
    std::vector<int8_t> q;           // kInt8: row-major int8 weights
    std::vector<float> col_scale;    // kInt8: per-output-channel scales [n]
    float calib_amax = 0.0f;         // running max |A| over Calibrate runs
    float static_scale = 0.0f;       // > 0 once calibrated: per-tensor scale
  };

  core::Status RunInternal(const tensor::Tensor& x_norm,
                           const tensor::Tensor* keep,
                           const data::Batch& batch, tensor::Tensor* out,
                           bool calibrate);
  void RunLowPrecGemm(const Instr& ins, LowPrecGemm& lp, const float* pa,
                      float* po, bool calibrate);

  const float* SlotPtr(int slot) const { return ptrs_[slot]; }
  float* MutableSlotPtr(int slot) { return ptrs_[slot]; }

  PrecisionMode precision_ = PrecisionMode::kFp32;
  std::vector<LowPrecGemm> lowprec_;
  std::vector<float> staging_;       // shared bf16 dequant buffer
  std::vector<int8_t> act_q_;        // shared int8 activation buffer
  std::vector<Slot> slots_;
  std::vector<float*> ptrs_;  // resolved base pointer per slot
  std::vector<Instr> instrs_;
  std::vector<DynamicFill> fills_;
  tensor::Tensor arena_;
  int input_slot_ = -1;
  int keep_slot_ = -1;
  int output_slot_ = -1;
  tensor::Shape input_shape_;
  tensor::Shape keep_shape_;
  tensor::Shape output_shape_;
  std::mutex run_mu_;
};

}  // namespace sstban::exec

#endif  // SSTBAN_EXEC_PROGRAM_H_

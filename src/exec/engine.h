#ifndef SSTBAN_EXEC_ENGINE_H_
#define SSTBAN_EXEC_ENGINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "autograd/variable.h"
#include "core/status.h"
#include "data/dataset.h"
#include "exec/program.h"
#include "tensor/tensor.h"

namespace sstban::exec {

// Hooks the engine uses to trace a model. The callables run the ordinary
// tape forward (they are invoked under NoGrad, with a TraceScope active on
// the calling thread); `parameters` pins the storage the traced weights live
// in so compiled programs can reference it directly.
struct EngineConfig {
  std::function<autograd::Variable(const tensor::Tensor& x_norm,
                                   const data::Batch& batch)>
      forward;
  std::function<autograd::Variable(const tensor::Tensor& x_norm,
                                   const tensor::Tensor& keep_pos,
                                   const data::Batch& batch)>
      masked_forward;
  std::vector<tensor::Tensor> parameters;
  // Numeric mode for compiled programs (exec/precision.h). fp32 programs
  // must replay the trace bitwise; reduced-precision programs are held to a
  // tolerance instead (see the self-check in GetOrCompile).
  PrecisionMode precision = PrecisionMode::kFp32;
};

// Shape-specialized inference executor: traces the tape forward once per
// (B, P, Q, N, C, masked) key, compiles the trace into a Program, and
// replays it on subsequent calls. Thread-safe. Failure semantics:
//   - transient errors (the `exec_trace` / `exec_run` failpoints, input
//     validation) leave the cache untouched, so the next call retries;
//   - structural failures (unsupported op, or the compile-time self-check
//     replay not matching the trace bitwise) poison the cache entry, and
//     every later call for that key fails fast — callers fall back to the
//     tape path permanently for that shape.
class InferenceEngine {
 public:
  explicit InferenceEngine(EngineConfig config);

  // Runs the forward for `x_norm` (shape [B, P, N, C]) with the batch's
  // calendar features, writing the prediction into `*out` (reused in place
  // when already the right shape). Compiles on first use of a shape.
  core::Status Run(const tensor::Tensor& x_norm, const data::Batch& batch,
                   tensor::Tensor* out);

  // Masked variant; `keep_pos` must be [B, P, N].
  core::Status RunMasked(const tensor::Tensor& x_norm,
                         const tensor::Tensor& keep_pos,
                         const data::Batch& batch, tensor::Tensor* out);

  // Int8-mode calibration: compiles the program for this shape if needed and
  // runs one calibration pass over the batch (see Program::Calibrate). In
  // fp32/bf16 modes this just warms the cache.
  core::Status Calibrate(const tensor::Tensor& x_norm,
                         const tensor::Tensor* keep_pos,
                         const data::Batch& batch);

  struct Stats {
    int64_t compiles = 0;   // successful trace+compile cycles
    int64_t runs = 0;       // successful static executions
    int64_t failures = 0;   // failed runs or compiles (incl. failpoints)
    int64_t poisoned = 0;   // shape keys permanently routed back to the tape
  };
  Stats stats() const;

  // Number of shape keys with a live compiled program (poisoned keys
  // excluded). The promotion gate uses this to verify a candidate model was
  // prewarmed — its retrace paid — before it is installed for serving.
  int64_t cached_programs() const;

 private:
  using Key = std::tuple<int64_t, int64_t, int64_t, int64_t, int64_t, bool>;

  core::StatusOr<std::shared_ptr<Program>> GetOrCompile(
      const tensor::Tensor& x_norm, const tensor::Tensor* keep_pos,
      const data::Batch& batch);
  core::Status RunImpl(const tensor::Tensor& x_norm,
                       const tensor::Tensor* keep_pos,
                       const data::Batch& batch, tensor::Tensor* out);

  EngineConfig config_;
  mutable std::mutex mu_;
  // nullptr value = poisoned key (structural failure).
  std::map<Key, std::shared_ptr<Program>> cache_;
  Stats stats_;
};

}  // namespace sstban::exec

#endif  // SSTBAN_EXEC_ENGINE_H_

#include "exec/precision.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <string>

namespace sstban::exec {

namespace {

// -1 = unresolved; otherwise a PrecisionMode value.
std::atomic<int> g_mode{-1};

int ResolveFromEnv() {
  const char* env = std::getenv("SSTBAN_PRECISION");
  if (env == nullptr) return static_cast<int>(PrecisionMode::kFp32);
  std::string v(env);
  for (char& c : v) c = static_cast<char>(std::tolower(c));
  if (v == "bf16") return static_cast<int>(PrecisionMode::kBf16);
  if (v == "int8") return static_cast<int>(PrecisionMode::kInt8);
  return static_cast<int>(PrecisionMode::kFp32);
}

}  // namespace

const char* PrecisionModeName(PrecisionMode mode) {
  switch (mode) {
    case PrecisionMode::kBf16: return "bf16";
    case PrecisionMode::kInt8: return "int8";
    default: return "fp32";
  }
}

PrecisionMode ResolvePrecisionMode() {
  int v = g_mode.load(std::memory_order_relaxed);
  if (v < 0) {
    v = ResolveFromEnv();
    g_mode.store(v, std::memory_order_relaxed);
  }
  return static_cast<PrecisionMode>(v);
}

void SetPrecisionModeForTesting(PrecisionMode mode) {
  g_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

void ResetPrecisionModeForTesting() {
  g_mode.store(-1, std::memory_order_relaxed);
}

}  // namespace sstban::exec

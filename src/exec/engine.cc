#include "exec/engine.h"

#include <cstring>
#include <utility>

#include "autograd/trace.h"
#include "core/check.h"
#include "core/failpoint.h"
#include "tensor/ops.h"

namespace sstban::exec {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;

InferenceEngine::InferenceEngine(EngineConfig config)
    : config_(std::move(config)) {}

core::StatusOr<std::shared_ptr<Program>> InferenceEngine::GetOrCompile(
    const t::Tensor& x_norm, const t::Tensor* keep_pos,
    const data::Batch& batch) {
  bool masked = keep_pos != nullptr;
  Key key{x_norm.dim(0), x_norm.dim(1),
          static_cast<int64_t>(batch.tod_out.size()), x_norm.dim(2),
          x_norm.dim(3), masked};

  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    if (it->second == nullptr) {
      return core::Status::FailedPrecondition(
          "executor: shape poisoned after a structural compile failure");
    }
    return it->second;
  }

  core::Status armed = core::FailPointStatus("exec_trace");
  if (!armed.ok()) {
    stats_.failures++;
    return armed;  // transient: not cached, the next call retries
  }

  // Trace the tape forward. The batch is copied so the calendar vectors
  // recorded by the STE annotation live at addresses we can compare against.
  data::Batch trace_batch = batch;
  ag::NoGradGuard no_grad;
  ag::TraceScope scope;
  ag::Variable result = masked
                            ? config_.masked_forward(x_norm, *keep_pos,
                                                     trace_batch)
                            : config_.forward(x_norm, trace_batch);

  CompileSpec spec;
  spec.records = &scope.records();
  spec.notes = &scope.notes();
  spec.input_data = x_norm.data();
  spec.keep_data = masked ? keep_pos->data() : nullptr;
  spec.parameters = &config_.parameters;
  spec.tod_in = &trace_batch.tod_in;
  spec.dow_in = &trace_batch.dow_in;
  spec.tod_out = &trace_batch.tod_out;
  spec.dow_out = &trace_batch.dow_out;
  spec.batch_size = x_norm.dim(0);
  spec.input_len = x_norm.dim(1);
  spec.num_nodes = x_norm.dim(2);
  spec.num_features = x_norm.dim(3);
  spec.precision = config_.precision;
  spec.output = result.node();

  auto compiled = Program::Compile(spec);
  if (!compiled.ok()) {
    // Structural: this model/shape contains something the executor cannot
    // replay, and retrying would fail the same way. Poison the key.
    cache_[key] = nullptr;
    stats_.failures++;
    stats_.poisoned++;
    return compiled.status();
  }
  std::shared_ptr<Program> program = std::move(compiled).value();

  // Self-check: replay the program on the very inputs it was traced from.
  // fp32 programs must match the trace bit for bit; reduced-precision
  // programs deliberately perturb eligible GEMMs, so they are held to the
  // mode's accuracy tolerance instead (DESIGN.md §14). Catches lowering bugs
  // at compile time instead of serving wrong forecasts.
  t::Tensor check;
  core::Status run_status = program->Run(x_norm, keep_pos, trace_batch, &check);
  if (!run_status.ok()) {
    stats_.failures++;
    return run_status;  // exec_run failpoint etc.: transient, not cached
  }
  bool self_check_ok;
  switch (config_.precision) {
    case PrecisionMode::kBf16:
      self_check_ok = t::AllClose(check, result.value(), /*atol=*/5e-2f,
                                  /*rtol=*/5e-2f);
      break;
    case PrecisionMode::kInt8:
      self_check_ok = t::AllClose(check, result.value(), /*atol=*/2e-1f,
                                  /*rtol=*/2e-1f);
      break;
    default:
      self_check_ok =
          std::memcmp(check.data(), result.value().data(),
                      static_cast<size_t>(check.size()) * sizeof(float)) == 0;
      break;
  }
  if (!self_check_ok) {
    cache_[key] = nullptr;
    stats_.failures++;
    stats_.poisoned++;
    return core::Status::Internal(
        "executor: compiled program disagrees with its own trace");
  }

  cache_[key] = program;
  stats_.compiles++;
  return program;
}

core::Status InferenceEngine::RunImpl(const t::Tensor& x_norm,
                                      const t::Tensor* keep_pos,
                                      const data::Batch& batch,
                                      t::Tensor* out) {
  if (x_norm.rank() != 4) {
    return core::Status::InvalidArgument("executor: input must be [B,P,N,C]");
  }
  auto program = GetOrCompile(x_norm, keep_pos, batch);
  if (!program.ok()) return program.status();
  core::Status status = program.value()->Run(x_norm, keep_pos, batch, out);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (status.ok()) {
      stats_.runs++;
    } else {
      stats_.failures++;
    }
  }
  return status;
}

core::Status InferenceEngine::Run(const t::Tensor& x_norm,
                                  const data::Batch& batch, t::Tensor* out) {
  return RunImpl(x_norm, nullptr, batch, out);
}

core::Status InferenceEngine::Calibrate(const t::Tensor& x_norm,
                                        const t::Tensor* keep_pos,
                                        const data::Batch& batch) {
  if (x_norm.rank() != 4) {
    return core::Status::InvalidArgument("executor: input must be [B,P,N,C]");
  }
  auto program = GetOrCompile(x_norm, keep_pos, batch);
  if (!program.ok()) return program.status();
  return program.value()->Calibrate(x_norm, keep_pos, batch);
}

core::Status InferenceEngine::RunMasked(const t::Tensor& x_norm,
                                        const t::Tensor& keep_pos,
                                        const data::Batch& batch,
                                        t::Tensor* out) {
  return RunImpl(x_norm, &keep_pos, batch, out);
}

InferenceEngine::Stats InferenceEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int64_t InferenceEngine::cached_programs() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t live = 0;
  for (const auto& [key, program] : cache_) {
    if (program != nullptr) ++live;
  }
  return live;
}

}  // namespace sstban::exec

#ifndef SSTBAN_EXEC_PRECISION_H_
#define SSTBAN_EXEC_PRECISION_H_

#include <cstdint>

namespace sstban::exec {

// Numeric mode for the static executor's serving forward. Reduced-precision
// modes rewrite the weight side of eligible parameter GEMMs at compile time
// (Linear layers: batch == 1, no transposes, external weight slot); every
// other instruction runs in fp32 unchanged. All three modes are bitwise
// deterministic at any thread count — see DESIGN.md §14.
//   kFp32: the default; programs replay the tape bit for bit.
//   kBf16: weights stored as bfloat16 (round-to-nearest-even) and expanded
//          back to fp32 (exact) before each GEMM; activations stay fp32.
//   kInt8: weights quantized per output channel to int8; activations
//          quantized per row on the fly (or with a per-tensor static scale
//          after calibration); products accumulate exactly in int32.
enum class PrecisionMode : uint8_t { kFp32, kBf16, kInt8 };

const char* PrecisionModeName(PrecisionMode mode);

// Reads SSTBAN_PRECISION once: "bf16" / "int8" select the reduced modes,
// anything else (or unset) is fp32.
PrecisionMode ResolvePrecisionMode();

// Testing override: pass a mode to force it, or nullptr-like reset via
// ResetPrecisionModeForTesting to re-read the environment.
void SetPrecisionModeForTesting(PrecisionMode mode);
void ResetPrecisionModeForTesting();

}  // namespace sstban::exec

#endif  // SSTBAN_EXEC_PRECISION_H_

#include "autograd/variable.h"

#include <unordered_set>

#include "core/check.h"

namespace sstban::autograd {

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

void Node::AccumulateGrad(const tensor::Tensor& g) {
  SSTBAN_CHECK(g.shape() == value.shape())
      << "gradient shape" << g.shape().ToString() << "does not match value shape"
      << value.shape().ToString() << "for op" << op;
  if (!grad.defined()) {
    grad = g.Clone();
    return;
  }
  float* pg = grad.data();
  const float* pn = g.data();
  int64_t n = grad.size();
  for (int64_t i = 0; i < n; ++i) pg[i] += pn[i];
}

const tensor::Tensor& Variable::value() const {
  SSTBAN_CHECK(defined());
  return node_->value;
}

tensor::Tensor& Variable::mutable_value() {
  SSTBAN_CHECK(defined());
  return node_->value;
}

const tensor::Tensor& Variable::grad() const {
  SSTBAN_CHECK(defined());
  SSTBAN_CHECK(node_->grad.defined()) << "no gradient accumulated for" << node_->op;
  return node_->grad;
}

bool Variable::has_grad() const { return defined() && node_->grad.defined(); }

bool Variable::requires_grad() const { return defined() && node_->requires_grad; }

Variable Variable::Detach() const {
  SSTBAN_CHECK(defined());
  return Variable(node_->value, /*requires_grad=*/false);
}

void Variable::ZeroGrad() {
  SSTBAN_CHECK(defined());
  node_->grad = tensor::Tensor();
}

void Variable::Backward() {
  SSTBAN_CHECK(defined());
  SSTBAN_CHECK_EQ(size(), 1) << "Backward() requires a scalar output";
  // Topological order via iterative post-order DFS over requiring parents.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(node_.get(), 0);
  visited.insert(node_.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      Node* child = node->parents[next_child].get();
      ++next_child;
      if (child->requires_grad && !visited.count(child)) {
        visited.insert(child);
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  node_->AccumulateGrad(tensor::Tensor::Ones(value().shape()));
  // Reverse topological order: every node sees its full gradient before
  // propagating to parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward_fn && node->grad.defined()) {
      node->backward_fn(*node);
    }
  }
}

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) { g_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }
bool NoGradGuard::GradEnabled() { return g_grad_enabled; }

}  // namespace sstban::autograd

#ifndef SSTBAN_AUTOGRAD_VARIABLE_H_
#define SSTBAN_AUTOGRAD_VARIABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace sstban::autograd {

class Node;
using NodePtr = std::shared_ptr<Node>;

// A node of the dynamic computation graph: the forward value, the
// accumulated gradient, the parent nodes the value was computed from, and a
// closure that propagates this node's gradient into the parents.
class Node {
 public:
  Node(tensor::Tensor value, bool requires_grad, std::string op)
      : value(std::move(value)), requires_grad(requires_grad), op(std::move(op)) {}

  tensor::Tensor value;
  tensor::Tensor grad;  // allocated lazily on first accumulation
  bool requires_grad;
  std::string op;
  std::vector<NodePtr> parents;
  // Propagates `grad` into the parents. Null for leaves.
  std::function<void(Node&)> backward_fn;

  // grad += g, allocating a zero grad on first use.
  void AccumulateGrad(const tensor::Tensor& g);
};

// Handle to a graph node. Variables are cheap to copy (shared_ptr
// semantics). Operations on Variables (see autograd/ops.h) record the graph
// when gradients are enabled and any input requires them.
class Variable {
 public:
  // An undefined variable; defined() is false.
  Variable() = default;

  // Wraps a tensor as a graph leaf.
  explicit Variable(tensor::Tensor value, bool requires_grad = false)
      : node_(std::make_shared<Node>(std::move(value), requires_grad, "leaf")) {}

  // Internal: wraps an existing node.
  explicit Variable(NodePtr node) : node_(std::move(node)) {}

  bool defined() const { return node_ != nullptr; }
  const tensor::Tensor& value() const;
  tensor::Tensor& mutable_value();
  const tensor::Tensor& grad() const;
  bool has_grad() const;
  bool requires_grad() const;

  const tensor::Shape& shape() const { return value().shape(); }
  int rank() const { return value().rank(); }
  int64_t dim(int i) const { return value().dim(i); }
  int64_t size() const { return value().size(); }
  float item() const { return value().item(); }

  // A leaf sharing this variable's value but cut off from the graph.
  Variable Detach() const;

  // Clears the accumulated gradient (leaves keep requiring grad).
  void ZeroGrad();

  // Reverse-mode sweep from this (scalar) variable: seeds d(this)/d(this)=1
  // and accumulates gradients into every reachable node that requires them.
  void Backward();

  NodePtr node() const { return node_; }

 private:
  NodePtr node_;
};

// Disables graph recording while alive (like torch.no_grad()). Ops executed
// under the guard produce detached results; use for evaluation loops.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();

  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

  static bool GradEnabled();

 private:
  bool previous_;
};

}  // namespace sstban::autograd

#endif  // SSTBAN_AUTOGRAD_VARIABLE_H_

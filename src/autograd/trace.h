#ifndef SSTBAN_AUTOGRAD_TRACE_H_
#define SSTBAN_AUTOGRAD_TRACE_H_

#include <cstdint>
#include <vector>

#include "autograd/variable.h"
#include "tensor/tensor.h"

namespace sstban::autograd {

// -- Op recording -------------------------------------------------------------
// The static-graph executor (src/exec) builds its flat op program by running
// the ordinary tape forward once under a TraceScope. Every op funnels through
// MakeOp (ops.cc), which reports itself here; op parameters that are not
// recoverable from the result tensor (scalars, transpose flags, permutations,
// additive softmax masks) ride along in TraceAttrs. Nothing in this file does
// any work unless a scope is active on the current thread, so the training
// and serving tape paths stay allocation-free.

struct TraceAttrs {
  float scalar = 0.0f;             // add_scalar / mul_scalar
  bool transpose_a = false;        // bmm
  bool transpose_b = false;        // bmm
  std::vector<int> perm;           // permute
  int axis = 0;                    // concat / slice (canonical)
  int64_t start = 0;               // slice
  int64_t length = 0;              // slice
  tensor::Tensor softmax_mask;     // additive mask (softmax-with-mask only);
                                   // for fused_attention: the [B', lk] keep
                                   // mask the kernel expands on the fly
  int64_t attn_heads = 0;          // fused_attention: batch / mask rows
};

struct TraceRecord {
  const char* op;                  // MakeOp name literal
  NodePtr node;                    // strong ref: keeps the value storage alive
  std::vector<NodePtr> inputs;     // strong refs, same reason
  TraceAttrs attrs;
};

// -- Dynamic-input annotations ------------------------------------------------
// A handful of tensors on the forward path are built by raw loops outside the
// op layer but depend on the request contents: the STE calendar one-hots and
// the attention key masks derived from the [B, P, N] keep mask. The model
// code annotates them while tracing so the compiler can classify those leaves
// as rebuild-per-run slots instead of baking stale values as constants.

enum class DynamicKind : uint8_t {
  kCalendarOnehot,   // STE one-hot rows built from tod/dow vectors
  kKeepMaskView,     // a materialized permuted view of the keep mask
  kAdditiveKeyMask,  // MHA additive mask expanded from a key mask
};

struct DynamicNote {
  DynamicKind kind;
  tensor::Tensor tensor;  // the built tensor; identity for lookup is data()
  // kCalendarOnehot: vector addresses distinguish the input vs output
  // calendar stream even when P == Q.
  const std::vector<int64_t>* tod = nullptr;
  const std::vector<int64_t>* dow = nullptr;
  int64_t steps_per_day = 0;
  // kKeepMaskView: data() of the source [B, T, N] keep mask, plus its dims.
  const float* view_src = nullptr;
  int64_t view_batch = 0;
  int64_t view_time = 0;
  int64_t view_nodes = 0;
  // kAdditiveKeyMask: data() of the key mask the additive mask expands, and
  // the expansion geometry ([B'*heads, lq, lk] from a [B', lk] key mask).
  const float* mask_src = nullptr;
  int64_t heads = 0;
  int64_t lq = 0;
  int64_t lk = 0;
};

// RAII recording scope for the current thread. The traced forward must run
// on this thread (tensor kernels may fan out internally; op construction is
// always on the caller's thread). Scopes do not nest.
class TraceScope {
 public:
  TraceScope();
  ~TraceScope();
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  std::vector<TraceRecord>& records() { return records_; }
  std::vector<DynamicNote>& notes() { return notes_; }

  // True when a scope is active on the current thread. Cheap enough to guard
  // per-op attr construction with.
  static bool Active();
  static TraceScope* Current();

 private:
  std::vector<TraceRecord> records_;
  std::vector<DynamicNote> notes_;
};

// Hook points; no-ops when no scope is active on this thread.
void TraceOp(const char* op, const NodePtr& node,
             const std::vector<Variable>& inputs, const TraceAttrs* attrs);
void TraceDynamicInput(DynamicNote note);

}  // namespace sstban::autograd

#endif  // SSTBAN_AUTOGRAD_TRACE_H_

#ifndef SSTBAN_AUTOGRAD_OPS_H_
#define SSTBAN_AUTOGRAD_OPS_H_

#include <vector>

#include "autograd/variable.h"
#include "core/rng.h"
#include "tensor/tensor.h"

namespace sstban::autograd {

// Differentiable counterparts of the tensor layer. Each op computes its
// forward value eagerly and, when gradients are enabled and any input
// requires them, records a backward closure on the graph. Elementwise binary
// ops broadcast under NumPy rules (their backward reduces gradients back to
// the operand shapes).

// -- Elementwise binary -------------------------------------------------------
Variable Add(const Variable& a, const Variable& b);
Variable Sub(const Variable& a, const Variable& b);
Variable Mul(const Variable& a, const Variable& b);
Variable Div(const Variable& a, const Variable& b);

// -- Scalar ---------------------------------------------------------------
Variable AddScalar(const Variable& a, float s);
Variable MulScalar(const Variable& a, float s);

// -- Elementwise unary --------------------------------------------------------
Variable Neg(const Variable& a);
Variable Exp(const Variable& a);
Variable Log(const Variable& a);
Variable Sqrt(const Variable& a);
Variable Abs(const Variable& a);
Variable Square(const Variable& a);
Variable Relu(const Variable& a);
Variable Sigmoid(const Variable& a);
Variable Tanh(const Variable& a);
// Smooth ReLU: log(1 + e^x), numerically stable for large |x|.
Variable Softplus(const Variable& a);
// Gaussian error linear unit (tanh approximation).
Variable Gelu(const Variable& a);

// -- Matrix products ----------------------------------------------------------
// [M, K] x [K, N] -> [M, N].
Variable Matmul(const Variable& a, const Variable& b);
// Batched [B, M, K] x [B, K, N] -> [B, M, N]; transpose flags apply to the
// trailing two axes (see tensor::Bmm).
Variable Bmm(const Variable& a, const Variable& b, bool transpose_a = false,
             bool transpose_b = false);

// -- Shape / movement ----------------------------------------------------
Variable Reshape(const Variable& a, tensor::Shape new_shape);
Variable Permute(const Variable& a, const std::vector<int>& perm);
Variable Concat(const std::vector<Variable>& parts, int axis);
Variable Slice(const Variable& a, int axis, int64_t start, int64_t length);

// -- Reductions -----------------------------------------------------------
Variable Sum(const Variable& a, int axis, bool keepdim = false);
Variable Mean(const Variable& a, int axis, bool keepdim = false);
Variable SumAll(const Variable& a);
Variable MeanAll(const Variable& a);

// -- Softmax --------------------------------------------------------------
// Numerically stable softmax along the last axis.
Variable Softmax(const Variable& a);
// Softmax of (a + additive_mask); the mask is a constant (no grad flows into
// it). Use large negative entries (e.g. -1e9) to exclude keys, matching the
// paper's "set masked values to -inf in the softmax input".
Variable SoftmaxWithMask(const Variable& a, const tensor::Tensor& additive_mask);

// -- Fused attention ------------------------------------------------------
// softmax(scale * q k^T + mask) v in one streaming pass over [B, L, dk]
// head-batched operands; the [B, Lq, Lk] score tensor is never materialized
// (tensor/fused_attention.h; bitwise-identical to the unfused chain when
// Lk <= kFusedAttentionExactMaxKeys). `key_mask` is an optional
// [B / mask_heads, Lk] keep mask constant (no grad flows into it); backward
// recomputes the probabilities per row block.
Variable FusedAttention(const Variable& q, const Variable& k,
                        const Variable& v, const tensor::Tensor* key_mask,
                        int64_t mask_heads, float scale);

// -- Regularization -------------------------------------------------------
// Inverted dropout: keeps elements with probability 1-p and rescales by
// 1/(1-p). Identity when !training or p == 0.
Variable Dropout(const Variable& a, float p, core::Rng& rng, bool training);

// -- Embedding / gather -----------------------------------------------------
// Selects rows of `weight` ([V, d]) by index: result [indices.size(), d].
// Backward scatter-adds into the weight gradient.
Variable EmbeddingLookup(const Variable& weight,
                         const std::vector<int64_t>& indices);

// -- Temporal convolution -----------------------------------------------------
// 1-D "valid" convolution along the middle (time) axis.
//   input  [B, T, C_in], weight [K, C_in, C_out], optional bias [C_out]
//   output [B, T - (K-1)*dilation, C_out]
// Used by the dilated-TCN baselines (Graph WaveNet, DMSTGCN).
Variable Conv1dTime(const Variable& input, const Variable& weight,
                    const Variable& bias, int64_t dilation = 1);

// -- Losses ---------------------------------------------------------------
// Mean absolute error over all elements.
Variable MaeLoss(const Variable& pred, const Variable& target);
// Mean squared error over all elements.
Variable MseLoss(const Variable& pred, const Variable& target);
// Huber / smooth-L1: quadratic within |e| <= delta, linear outside.
Variable HuberLoss(const Variable& pred, const Variable& target,
                   float delta = 1.0f);
// Masked MAE, the traffic-forecasting community's standard loss for data
// with zero-filled gaps: entries whose |target| <= threshold are excluded
// from the mean. The mask is a constant (no gradient flows through it).
Variable MaskedMaeLoss(const Variable& pred, const Variable& target,
                       float threshold = 1e-1f);

}  // namespace sstban::autograd

#endif  // SSTBAN_AUTOGRAD_OPS_H_

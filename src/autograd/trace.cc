#include "autograd/trace.h"

#include <utility>

#include "core/check.h"

namespace sstban::autograd {

namespace {
thread_local TraceScope* t_current = nullptr;
}  // namespace

TraceScope::TraceScope() {
  SSTBAN_CHECK(t_current == nullptr) << "TraceScope does not nest";
  t_current = this;
}

TraceScope::~TraceScope() { t_current = nullptr; }

bool TraceScope::Active() { return t_current != nullptr; }

TraceScope* TraceScope::Current() { return t_current; }

void TraceOp(const char* op, const NodePtr& node,
             const std::vector<Variable>& inputs, const TraceAttrs* attrs) {
  TraceScope* scope = t_current;
  if (scope == nullptr) return;
  TraceRecord record;
  record.op = op;
  record.node = node;
  record.inputs.reserve(inputs.size());
  for (const Variable& v : inputs) record.inputs.push_back(v.node());
  if (attrs != nullptr) record.attrs = *attrs;
  scope->records().push_back(std::move(record));
}

void TraceDynamicInput(DynamicNote note) {
  TraceScope* scope = t_current;
  if (scope == nullptr) return;
  scope->notes().push_back(std::move(note));
}

}  // namespace sstban::autograd

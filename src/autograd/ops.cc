#include "autograd/ops.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "autograd/trace.h"
#include "core/check.h"
#include "tensor/fused_attention.h"
#include "tensor/matmul.h"
#include "tensor/ops.h"

namespace sstban::autograd {

namespace t = ::sstban::tensor;

namespace {

// Records an op node when grads are enabled and any input requires them;
// otherwise returns a detached result. When a TraceScope is active on this
// thread (executor tracing, see trace.h), the op is also reported there;
// `attrs` carries parameters not recoverable from the result tensor and is
// only non-null while tracing.
Variable MakeOp(const char* name, t::Tensor value,
                std::vector<Variable> inputs,
                std::function<void(Node&)> backward,
                const TraceAttrs* attrs = nullptr) {
  bool needs_grad = false;
  if (NoGradGuard::GradEnabled()) {
    for (const Variable& v : inputs) needs_grad = needs_grad || v.requires_grad();
  }
  auto node = std::make_shared<Node>(std::move(value), needs_grad, name);
  if (needs_grad) {
    node->parents.reserve(inputs.size());
    for (Variable& v : inputs) node->parents.push_back(v.node());
    node->backward_fn = std::move(backward);
  }
  if (TraceScope::Active()) TraceOp(name, node, inputs, attrs);
  return Variable(std::move(node));
}

void Accumulate(const NodePtr& parent, const t::Tensor& grad) {
  if (parent->requires_grad) parent->AccumulateGrad(grad);
}

// Expands `grad` (result of a keepdim reduction) back to `shape` by
// broadcasting-add against zeros.
t::Tensor ExpandTo(const t::Tensor& grad, const t::Shape& shape) {
  return t::Add(t::Tensor::Zeros(shape), grad);
}

}  // namespace

Variable Add(const Variable& a, const Variable& b) {
  NodePtr na = a.node(), nb = b.node();
  return MakeOp("add", t::Add(a.value(), b.value()), {a, b}, [na, nb](Node& n) {
    Accumulate(na, t::ReduceToShape(n.grad, na->value.shape()));
    Accumulate(nb, t::ReduceToShape(n.grad, nb->value.shape()));
  });
}

Variable Sub(const Variable& a, const Variable& b) {
  NodePtr na = a.node(), nb = b.node();
  return MakeOp("sub", t::Sub(a.value(), b.value()), {a, b}, [na, nb](Node& n) {
    Accumulate(na, t::ReduceToShape(n.grad, na->value.shape()));
    Accumulate(nb, t::ReduceToShape(t::Neg(n.grad), nb->value.shape()));
  });
}

Variable Mul(const Variable& a, const Variable& b) {
  NodePtr na = a.node(), nb = b.node();
  return MakeOp("mul", t::Mul(a.value(), b.value()), {a, b}, [na, nb](Node& n) {
    Accumulate(na, t::ReduceToShape(t::Mul(n.grad, nb->value), na->value.shape()));
    Accumulate(nb, t::ReduceToShape(t::Mul(n.grad, na->value), nb->value.shape()));
  });
}

Variable Div(const Variable& a, const Variable& b) {
  NodePtr na = a.node(), nb = b.node();
  return MakeOp("div", t::Div(a.value(), b.value()), {a, b}, [na, nb](Node& n) {
    Accumulate(na, t::ReduceToShape(t::Div(n.grad, nb->value), na->value.shape()));
    // d/db (a/b) = -a / b^2
    t::Tensor gb = t::Neg(t::Div(t::Mul(n.grad, na->value), t::Square(nb->value)));
    Accumulate(nb, t::ReduceToShape(gb, nb->value.shape()));
  });
}

Variable AddScalar(const Variable& a, float s) {
  NodePtr na = a.node();
  TraceAttrs attrs;
  const TraceAttrs* pattrs = nullptr;
  if (TraceScope::Active()) {
    attrs.scalar = s;
    pattrs = &attrs;
  }
  return MakeOp("add_scalar", t::AddScalar(a.value(), s), {a},
                [na](Node& n) { Accumulate(na, n.grad); }, pattrs);
}

Variable MulScalar(const Variable& a, float s) {
  NodePtr na = a.node();
  TraceAttrs attrs;
  const TraceAttrs* pattrs = nullptr;
  if (TraceScope::Active()) {
    attrs.scalar = s;
    pattrs = &attrs;
  }
  return MakeOp("mul_scalar", t::MulScalar(a.value(), s), {a},
                [na, s](Node& n) { Accumulate(na, t::MulScalar(n.grad, s)); },
                pattrs);
}

Variable Neg(const Variable& a) {
  NodePtr na = a.node();
  return MakeOp("neg", t::Neg(a.value()), {a},
                [na](Node& n) { Accumulate(na, t::Neg(n.grad)); });
}

Variable Exp(const Variable& a) {
  NodePtr na = a.node();
  t::Tensor y = t::Exp(a.value());
  return MakeOp("exp", y, {a}, [na](Node& n) {
    Accumulate(na, t::Mul(n.grad, n.value));
  });
}

Variable Log(const Variable& a) {
  NodePtr na = a.node();
  return MakeOp("log", t::Log(a.value()), {a}, [na](Node& n) {
    Accumulate(na, t::Div(n.grad, na->value));
  });
}

Variable Sqrt(const Variable& a) {
  NodePtr na = a.node();
  return MakeOp("sqrt", t::Sqrt(a.value()), {a}, [na](Node& n) {
    // d sqrt(x) = 0.5 / sqrt(x)
    Accumulate(na, t::Div(t::MulScalar(n.grad, 0.5f), n.value));
  });
}

Variable Abs(const Variable& a) {
  NodePtr na = a.node();
  return MakeOp("abs", t::Abs(a.value()), {a}, [na](Node& n) {
    Accumulate(na, t::Mul(n.grad, t::Sign(na->value)));
  });
}

Variable Square(const Variable& a) {
  NodePtr na = a.node();
  return MakeOp("square", t::Square(a.value()), {a}, [na](Node& n) {
    Accumulate(na, t::Mul(n.grad, t::MulScalar(na->value, 2.0f)));
  });
}

Variable Relu(const Variable& a) {
  NodePtr na = a.node();
  return MakeOp("relu", t::Relu(a.value()), {a}, [na](Node& n) {
    t::Tensor gate = t::Tensor::Empty(na->value.shape());
    const float* px = na->value.data();
    float* pg = gate.data();
    for (int64_t i = 0; i < gate.size(); ++i) pg[i] = px[i] > 0 ? 1.0f : 0.0f;
    Accumulate(na, t::Mul(n.grad, gate));
  });
}

Variable Sigmoid(const Variable& a) {
  NodePtr na = a.node();
  return MakeOp("sigmoid", t::Sigmoid(a.value()), {a}, [na](Node& n) {
    // y * (1 - y)
    t::Tensor dy = t::Mul(n.value, t::AddScalar(t::Neg(n.value), 1.0f));
    Accumulate(na, t::Mul(n.grad, dy));
  });
}

Variable Tanh(const Variable& a) {
  NodePtr na = a.node();
  return MakeOp("tanh", t::Tanh(a.value()), {a}, [na](Node& n) {
    // 1 - y^2
    t::Tensor dy = t::AddScalar(t::Neg(t::Square(n.value)), 1.0f);
    Accumulate(na, t::Mul(n.grad, dy));
  });
}

Variable Matmul(const Variable& a, const Variable& b) {
  NodePtr na = a.node(), nb = b.node();
  return MakeOp("matmul", t::Matmul(a.value(), b.value()), {a, b},
                [na, nb](Node& n) {
    int64_t m = na->value.dim(0), k = na->value.dim(1), p = nb->value.dim(1);
    t::Tensor g3 = n.grad.Reshape(t::Shape{1, m, p});
    t::Tensor a3 = na->value.Reshape(t::Shape{1, m, k});
    t::Tensor b3 = nb->value.Reshape(t::Shape{1, k, p});
    Accumulate(na, t::Bmm(g3, b3, false, true).Reshape(t::Shape{m, k}));
    Accumulate(nb, t::Bmm(a3, g3, true, false).Reshape(t::Shape{k, p}));
  });
}

Variable Bmm(const Variable& a, const Variable& b, bool transpose_a,
             bool transpose_b) {
  NodePtr na = a.node(), nb = b.node();
  TraceAttrs attrs;
  const TraceAttrs* pattrs = nullptr;
  if (TraceScope::Active()) {
    attrs.transpose_a = transpose_a;
    attrs.transpose_b = transpose_b;
    pattrs = &attrs;
  }
  return MakeOp("bmm", t::Bmm(a.value(), b.value(), transpose_a, transpose_b),
                {a, b}, [na, nb, transpose_a, transpose_b](Node& n) {
    const t::Tensor& g = n.grad;
    const t::Tensor& av = na->value;
    const t::Tensor& bv = nb->value;
    t::Tensor ga, gb;
    if (!transpose_a) {
      ga = transpose_b ? t::Bmm(g, bv, false, false) : t::Bmm(g, bv, false, true);
    } else {
      ga = transpose_b ? t::Bmm(bv, g, true, true) : t::Bmm(bv, g, false, true);
    }
    if (!transpose_b) {
      gb = transpose_a ? t::Bmm(av, g, false, false) : t::Bmm(av, g, true, false);
    } else {
      gb = transpose_a ? t::Bmm(g, av, true, true) : t::Bmm(g, av, true, false);
    }
    Accumulate(na, ga);
    Accumulate(nb, gb);
  }, pattrs);
}

Variable Reshape(const Variable& a, t::Shape new_shape) {
  NodePtr na = a.node();
  t::Shape old_shape = a.shape();
  return MakeOp("reshape", a.value().Reshape(std::move(new_shape)), {a},
                [na, old_shape](Node& n) {
    Accumulate(na, n.grad.Reshape(old_shape));
  });
}

Variable Permute(const Variable& a, const std::vector<int>& perm) {
  NodePtr na = a.node();
  std::vector<int> inverse(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) inverse[perm[i]] = static_cast<int>(i);
  TraceAttrs attrs;
  const TraceAttrs* pattrs = nullptr;
  if (TraceScope::Active()) {
    attrs.perm = perm;  // vector copy: trace-only, never on the hot path
    pattrs = &attrs;
  }
  return MakeOp("permute", t::Permute(a.value(), perm), {a},
                [na, inverse](Node& n) {
    Accumulate(na, t::Permute(n.grad, inverse));
  }, pattrs);
}

Variable Concat(const std::vector<Variable>& parts, int axis) {
  SSTBAN_CHECK(!parts.empty());
  std::vector<t::Tensor> values;
  values.reserve(parts.size());
  for (const Variable& p : parts) values.push_back(p.value());
  int canonical = parts[0].shape().CanonicalAxis(axis);
  std::vector<NodePtr> nodes;
  for (const Variable& p : parts) nodes.push_back(p.node());
  TraceAttrs attrs;
  const TraceAttrs* pattrs = nullptr;
  if (TraceScope::Active()) {
    attrs.axis = canonical;
    pattrs = &attrs;
  }
  return MakeOp("concat", t::Concat(values, axis), parts,
                [nodes, canonical](Node& n) {
    int64_t offset = 0;
    for (const NodePtr& p : nodes) {
      int64_t length = p->value.shape().dims()[canonical];
      Accumulate(p, t::Slice(n.grad, canonical, offset, length));
      offset += length;
    }
  }, pattrs);
}

Variable Slice(const Variable& a, int axis, int64_t start, int64_t length) {
  NodePtr na = a.node();
  int canonical = a.shape().CanonicalAxis(axis);
  TraceAttrs attrs;
  const TraceAttrs* pattrs = nullptr;
  if (TraceScope::Active()) {
    attrs.axis = canonical;
    attrs.start = start;
    attrs.length = length;
    pattrs = &attrs;
  }
  return MakeOp("slice", t::Slice(a.value(), axis, start, length), {a},
                [na, canonical, start, length](Node& n) {
    // Scatter the gradient back into a zero tensor of the input shape.
    t::Tensor full = t::Tensor::Zeros(na->value.shape());
    int64_t outer = 1, inner = 1;
    const auto& dims = na->value.shape().dims();
    for (int i = 0; i < canonical; ++i) outer *= dims[i];
    for (size_t i = canonical + 1; i < dims.size(); ++i) inner *= dims[i];
    int64_t mid = dims[canonical];
    const float* pg = n.grad.data();
    float* pf = full.data();
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(pf + (o * mid + start) * inner, pg + o * length * inner,
                  static_cast<size_t>(length * inner) * sizeof(float));
    }
    Accumulate(na, full);
  }, pattrs);
}

Variable Sum(const Variable& a, int axis, bool keepdim) {
  NodePtr na = a.node();
  int canonical = a.shape().CanonicalAxis(axis);
  return MakeOp("sum", t::Sum(a.value(), axis, keepdim), {a},
                [na, canonical, keepdim](Node& n) {
    t::Tensor g = n.grad;
    if (!keepdim) {
      std::vector<int64_t> dims = na->value.shape().dims();
      dims[canonical] = 1;
      g = g.Reshape(t::Shape(dims));
    }
    Accumulate(na, ExpandTo(g, na->value.shape()));
  });
}

Variable Mean(const Variable& a, int axis, bool keepdim) {
  int canonical = a.shape().CanonicalAxis(axis);
  float scale = 1.0f / static_cast<float>(a.shape().dims()[canonical]);
  return MulScalar(Sum(a, axis, keepdim), scale);
}

Variable SumAll(const Variable& a) {
  NodePtr na = a.node();
  return MakeOp("sum_all", t::SumAll(a.value()), {a}, [na](Node& n) {
    Accumulate(na, t::Tensor::Full(na->value.shape(), n.grad.item()));
  });
}

Variable MeanAll(const Variable& a) {
  return MulScalar(SumAll(a), 1.0f / static_cast<float>(a.size()));
}

namespace {

Variable SoftmaxImpl(const Variable& a, const t::Tensor& value,
                     const t::Tensor* additive_mask) {
  NodePtr na = a.node();
  TraceAttrs attrs;
  const TraceAttrs* pattrs = nullptr;
  if (TraceScope::Active() && additive_mask != nullptr) {
    attrs.softmax_mask = *additive_mask;  // the mask is not an op input
    pattrs = &attrs;
  }
  return MakeOp("softmax", value, {a}, [na](Node& n) {
    // dX = Y * (G - sum(G * Y, last, keepdim))
    t::Tensor gy = t::Mul(n.grad, n.value);
    t::Tensor s = t::Sum(gy, -1, /*keepdim=*/true);
    Accumulate(na, t::Mul(n.value, t::Sub(n.grad, s)));
  }, pattrs);
}

}  // namespace

Variable Softmax(const Variable& a) {
  return SoftmaxImpl(a, t::Softmax(a.value()), nullptr);
}

Variable SoftmaxWithMask(const Variable& a, const t::Tensor& additive_mask) {
  return SoftmaxImpl(a, t::SoftmaxWithMask(a.value(), additive_mask),
                     &additive_mask);
}

Variable FusedAttention(const Variable& q, const Variable& k,
                        const Variable& v, const t::Tensor* key_mask,
                        int64_t mask_heads, float scale) {
  NodePtr nq = q.node(), nk = k.node(), nv = v.node();
  TraceAttrs attrs;
  const TraceAttrs* pattrs = nullptr;
  if (TraceScope::Active()) {
    attrs.scalar = scale;
    attrs.attn_heads = mask_heads;
    if (key_mask != nullptr) attrs.softmax_mask = *key_mask;
    pattrs = &attrs;
  }
  // Copy the mask so the backward closure does not dangle if the caller's
  // tensor goes away before Backward runs.
  t::Tensor mask_copy = key_mask != nullptr ? *key_mask : t::Tensor();
  t::Tensor value =
      t::FusedAttention(q.value(), k.value(), v.value(), key_mask, mask_heads,
                        scale);
  return MakeOp("fused_attention", std::move(value), {q, k, v},
                [nq, nk, nv, mask_copy, mask_heads, scale](Node& n) {
    const t::Tensor& qv = nq->value;
    const t::Tensor& kv = nk->value;
    const t::Tensor& vv = nv->value;
    int64_t batch = qv.dim(0), lq = qv.dim(1), dk = qv.dim(2), lk = kv.dim(1);
    t::Tensor gq = t::Tensor::Empty(qv.shape());
    t::Tensor gk = t::Tensor::Empty(kv.shape());
    t::Tensor gv = t::Tensor::Empty(vv.shape());
    t::FusedAttentionBackward(
        qv.data(), kv.data(), vv.data(),
        mask_copy.defined() ? mask_copy.data() : nullptr, mask_heads,
        n.grad.data(), gq.data(), gk.data(), gv.data(), batch, lq, lk, dk,
        scale);
    Accumulate(nq, gq);
    Accumulate(nk, gk);
    Accumulate(nv, gv);
  }, pattrs);
}

Variable Dropout(const Variable& a, float p, core::Rng& rng, bool training) {
  if (!training || p <= 0.0f) return a;
  SSTBAN_CHECK_LT(p, 1.0f);
  float scale = 1.0f / (1.0f - p);
  t::Tensor mask = t::Tensor::Empty(a.shape());
  float* pm = mask.data();
  for (int64_t i = 0; i < mask.size(); ++i) {
    pm[i] = rng.NextDouble() < p ? 0.0f : scale;
  }
  NodePtr na = a.node();
  return MakeOp("dropout", t::Mul(a.value(), mask), {a}, [na, mask](Node& n) {
    Accumulate(na, t::Mul(n.grad, mask));
  });
}

Variable EmbeddingLookup(const Variable& weight,
                         const std::vector<int64_t>& indices) {
  SSTBAN_CHECK_EQ(weight.rank(), 2);
  int64_t vocab = weight.dim(0);
  int64_t dim = weight.dim(1);
  int64_t n = static_cast<int64_t>(indices.size());
  t::Tensor out = t::Tensor::Empty(t::Shape{n, dim});
  const float* pw = weight.value().data();
  float* po = out.data();
  for (int64_t i = 0; i < n; ++i) {
    SSTBAN_CHECK(indices[i] >= 0 && indices[i] < vocab)
        << "embedding index" << indices[i] << "out of range" << vocab;
    std::memcpy(po + i * dim, pw + indices[i] * dim,
                static_cast<size_t>(dim) * sizeof(float));
  }
  NodePtr nw = weight.node();
  return MakeOp("embedding", out, {weight}, [nw, indices, dim](Node& n) {
    t::Tensor gw = t::Tensor::Zeros(nw->value.shape());
    const float* pg = n.grad.data();
    float* pgw = gw.data();
    for (size_t i = 0; i < indices.size(); ++i) {
      float* row = pgw + indices[i] * dim;
      const float* grow = pg + static_cast<int64_t>(i) * dim;
      for (int64_t d = 0; d < dim; ++d) row[d] += grow[d];
    }
    Accumulate(nw, gw);
  });
}

Variable Conv1dTime(const Variable& input, const Variable& weight,
                    const Variable& bias, int64_t dilation) {
  SSTBAN_CHECK_EQ(input.rank(), 3);
  SSTBAN_CHECK_EQ(weight.rank(), 3);
  SSTBAN_CHECK_GE(dilation, 1);
  int64_t batch = input.dim(0), time = input.dim(1), cin = input.dim(2);
  int64_t kernel = weight.dim(0), cout = weight.dim(2);
  SSTBAN_CHECK_EQ(weight.dim(1), cin);
  int64_t t_out = time - (kernel - 1) * dilation;
  SSTBAN_CHECK_GT(t_out, 0) << "conv1d: input too short (T=" << time
                            << ", K=" << kernel << ", dilation=" << dilation << ")";
  if (bias.defined()) {
    SSTBAN_CHECK_EQ(bias.rank(), 1);
    SSTBAN_CHECK_EQ(bias.dim(0), cout);
  }
  // Zeroed on purpose: rows accumulate across kernel taps (and start
  // from zero when there is no bias).
  t::Tensor out = t::Tensor::Zeros(t::Shape{batch, t_out, cout});
  const float* px = input.value().data();
  const float* pw = weight.value().data();
  float* po = out.data();
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t ti = 0; ti < t_out; ++ti) {
      float* orow = po + (b * t_out + ti) * cout;
      if (bias.defined()) {
        std::memcpy(orow, bias.value().data(),
                    static_cast<size_t>(cout) * sizeof(float));
      }
      for (int64_t k = 0; k < kernel; ++k) {
        const float* xrow = px + (b * time + ti + k * dilation) * cin;
        const float* wmat = pw + k * cin * cout;
        for (int64_t ci = 0; ci < cin; ++ci) {
          float xv = xrow[ci];
          if (xv == 0.0f) continue;
          const float* wrow = wmat + ci * cout;
          for (int64_t co = 0; co < cout; ++co) orow[co] += xv * wrow[co];
        }
      }
    }
  }
  NodePtr nx = input.node(), nw = weight.node();
  NodePtr nb = bias.defined() ? bias.node() : nullptr;
  std::vector<Variable> inputs = {input, weight};
  if (bias.defined()) inputs.push_back(bias);
  return MakeOp("conv1d_time", out, inputs,
                [nx, nw, nb, batch, time, cin, kernel, cout, t_out,
                 dilation](Node& n) {
    const float* pg = n.grad.data();
    const float* px = nx->value.data();
    const float* pw = nw->value.data();
    t::Tensor gx = t::Tensor::Zeros(nx->value.shape());
    t::Tensor gw = t::Tensor::Zeros(nw->value.shape());
    float* pgx = gx.data();
    float* pgw = gw.data();
    for (int64_t b = 0; b < batch; ++b) {
      for (int64_t ti = 0; ti < t_out; ++ti) {
        const float* grow = pg + (b * t_out + ti) * cout;
        for (int64_t k = 0; k < kernel; ++k) {
          int64_t src = ti + k * dilation;
          const float* xrow = px + (b * time + src) * cin;
          float* gxrow = pgx + (b * time + src) * cin;
          const float* wmat = pw + k * cin * cout;
          float* gwmat = pgw + k * cin * cout;
          for (int64_t ci = 0; ci < cin; ++ci) {
            const float* wrow = wmat + ci * cout;
            float* gwrow = gwmat + ci * cout;
            float xv = xrow[ci];
            double gx_acc = 0.0;
            for (int64_t co = 0; co < cout; ++co) {
              gx_acc += static_cast<double>(grow[co]) * wrow[co];
              gwrow[co] += grow[co] * xv;
            }
            gxrow[ci] += static_cast<float>(gx_acc);
          }
        }
      }
    }
    Accumulate(nx, gx);
    Accumulate(nw, gw);
    if (nb) {
      t::Tensor gb = t::Tensor::Zeros(nb->value.shape());
      float* pgb = gb.data();
      for (int64_t b = 0; b < batch; ++b) {
        for (int64_t ti = 0; ti < t_out; ++ti) {
          const float* grow = pg + (b * t_out + ti) * cout;
          for (int64_t co = 0; co < cout; ++co) pgb[co] += grow[co];
        }
      }
      Accumulate(nb, gb);
    }
  });
}

Variable Softplus(const Variable& a) {
  NodePtr na = a.node();
  t::Tensor y = t::Tensor::Empty(a.shape());
  const float* px = a.value().data();
  float* py = y.data();
  int64_t n = y.size();
  for (int64_t i = 0; i < n; ++i) {
    // max(x, 0) + log1p(exp(-|x|)) avoids overflow either way.
    float x = px[i];
    py[i] = std::max(x, 0.0f) + std::log1p(std::exp(-std::fabs(x)));
  }
  return MakeOp("softplus", y, {a}, [na](Node& node) {
    // d softplus = sigmoid(x)
    Accumulate(na, t::Mul(node.grad, t::Sigmoid(na->value)));
  });
}

Variable Gelu(const Variable& a) {
  // tanh approximation: 0.5 x (1 + tanh(sqrt(2/pi)(x + 0.044715 x^3))).
  // Composed from primitive ops so the backward pass comes for free.
  Variable x3 = Mul(Mul(a, a), a);
  Variable inner =
      MulScalar(Add(a, MulScalar(x3, 0.044715f)), 0.7978845608f);
  Variable gate = MulScalar(AddScalar(Tanh(inner), 1.0f), 0.5f);
  return Mul(a, gate);
}

Variable MaeLoss(const Variable& pred, const Variable& target) {
  return MeanAll(Abs(Sub(pred, target)));
}

Variable MseLoss(const Variable& pred, const Variable& target) {
  return MeanAll(Square(Sub(pred, target)));
}

Variable HuberLoss(const Variable& pred, const Variable& target, float delta) {
  SSTBAN_CHECK_GT(delta, 0.0f);
  Variable abs_err = Abs(Sub(pred, target));
  // Branchless composition with m = min(|e|, delta), expressed through
  // primitives so autograd covers both regions:
  //   m = |e| - relu(|e| - delta)
  //   loss = 0.5 * m^2 + delta * (|e| - m)
  Variable m = Sub(abs_err, Relu(AddScalar(abs_err, -delta)));
  Variable quadratic = MulScalar(Square(m), 0.5f);
  Variable linear = MulScalar(Sub(abs_err, m), delta);
  return MeanAll(Add(quadratic, linear));
}

Variable MaskedMaeLoss(const Variable& pred, const Variable& target,
                       float threshold) {
  SSTBAN_CHECK(pred.shape() == target.shape());
  t::Tensor mask = t::Tensor::Empty(target.shape());
  const float* pt = target.value().data();
  float* pm = mask.data();
  int64_t n = mask.size();
  double valid = 0;
  for (int64_t i = 0; i < n; ++i) {
    pm[i] = std::fabs(pt[i]) > threshold ? 1.0f : 0.0f;
    valid += pm[i];
  }
  if (valid == 0) {
    // Nothing to supervise: a constant zero that still links the graph.
    return MulScalar(SumAll(Sub(pred, pred)), 0.0f);
  }
  Variable masked_abs = Mul(Abs(Sub(pred, target)), Variable(mask));
  return MulScalar(SumAll(masked_abs), static_cast<float>(1.0 / valid));
}

}  // namespace sstban::autograd

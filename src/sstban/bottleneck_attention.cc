#include "sstban/bottleneck_attention.h"

#include "autograd/ops.h"
#include "core/check.h"
#include "nn/init.h"

namespace sstban::sstban {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;

BottleneckAttention::BottleneckAttention(int64_t in_dim, int64_t out_dim,
                                         int64_t num_refs, int64_t num_heads,
                                         core::Rng& rng)
    : in_dim_(in_dim), num_refs_(num_refs) {
  refs_ = RegisterParameter(
      "refs", nn::XavierUniform(t::Shape{num_refs, in_dim}, rng));
  // Stage one keeps the reference points at the input width (2d in the
  // paper's equations); stage two projects down to the block output width.
  absorb_ = std::make_unique<nn::MultiHeadAttention>(in_dim, in_dim, in_dim,
                                                     num_heads, rng);
  broadcast_ = std::make_unique<nn::MultiHeadAttention>(in_dim, in_dim, out_dim,
                                                        num_heads, rng);
  RegisterModule("absorb", absorb_.get());
  RegisterModule("broadcast", broadcast_.get());
}

ag::Variable BottleneckAttention::Forward(const ag::Variable& x,
                                          const t::Tensor* key_mask,
                                          t::Tensor* assignment_probs) const {
  SSTBAN_CHECK_EQ(x.rank(), 3);
  SSTBAN_CHECK_EQ(x.dim(2), in_dim_);
  int64_t batch = x.dim(0);
  // Broadcast the shared reference points across the batch; the
  // broadcasting-add keeps gradient flow into the single parameter.
  ag::Variable refs = ag::Reshape(refs_, t::Shape{1, num_refs_, in_dim_});
  ag::Variable zeros(t::Tensor::Zeros(t::Shape{batch, num_refs_, in_dim_}));
  ag::Variable refs_batched = ag::Add(refs, zeros);
  ag::Variable updated = absorb_->Forward(refs_batched, x, x, key_mask);
  return broadcast_->Forward(x, updated, updated, /*key_mask=*/nullptr,
                             assignment_probs);
}

FullSelfAttention::FullSelfAttention(int64_t in_dim, int64_t out_dim,
                                     int64_t num_heads, core::Rng& rng) {
  attention_ = std::make_unique<nn::MultiHeadAttention>(in_dim, in_dim, out_dim,
                                                        num_heads, rng);
  RegisterModule("attention", attention_.get());
}

ag::Variable FullSelfAttention::Forward(const ag::Variable& x,
                                        const t::Tensor* key_mask) const {
  return attention_->Forward(x, x, x, key_mask);
}

}  // namespace sstban::sstban

#include "sstban/stba_block.h"

#include "autograd/ops.h"
#include "autograd/trace.h"
#include "core/check.h"
#include "tensor/ops.h"

namespace sstban::sstban {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;

StbaBlock::StbaBlock(int64_t dim, int64_t num_heads, int64_t temporal_refs,
                     int64_t spatial_refs, bool use_bottleneck, core::Rng& rng,
                     bool spatial_mixing)
    : dim_(dim), use_bottleneck_(use_bottleneck),
      spatial_mixing_(spatial_mixing) {
  int64_t in_dim = 2 * dim;  // Z = H || E
  if (use_bottleneck_) {
    temporal_bottleneck_ = std::make_unique<BottleneckAttention>(
        in_dim, dim, temporal_refs, num_heads, rng);
    RegisterModule("tba", temporal_bottleneck_.get());
    if (spatial_mixing_) {
      spatial_bottleneck_ = std::make_unique<BottleneckAttention>(
          in_dim, dim, spatial_refs, num_heads, rng);
      RegisterModule("sba", spatial_bottleneck_.get());
    }
  } else {
    temporal_full_ =
        std::make_unique<FullSelfAttention>(in_dim, dim, num_heads, rng);
    RegisterModule("tba_full", temporal_full_.get());
    if (spatial_mixing_) {
      spatial_full_ =
          std::make_unique<FullSelfAttention>(in_dim, dim, num_heads, rng);
      RegisterModule("sba_full", spatial_full_.get());
    }
  }
}

ag::Variable StbaBlock::Forward(const ag::Variable& h, const ag::Variable& e,
                                const t::Tensor* keep_mask) const {
  SSTBAN_CHECK_EQ(h.rank(), 4);
  SSTBAN_CHECK(h.shape() == e.shape())
      << "H" << h.shape().ToString() << "vs E" << e.shape().ToString();
  int64_t batch = h.dim(0), time = h.dim(1), nodes = h.dim(2);
  SSTBAN_CHECK_EQ(h.dim(3), dim_);

  ag::Variable z = ag::Concat({h, e}, -1);  // [B, T, N, 2d]

  // Temporal branch: attention over T for every (batch, node).
  ag::Variable zt = ag::Permute(z, {0, 2, 1, 3});  // [B, N, T, 2d]
  zt = ag::Reshape(zt, t::Shape{batch * nodes, time, 2 * dim_});
  t::Tensor mask_t;
  if (keep_mask != nullptr) {
    SSTBAN_CHECK(keep_mask->shape() == (t::Shape{batch, time, nodes}));
    mask_t = t::Permute(*keep_mask, {0, 2, 1})
                 .Reshape(t::Shape{batch * nodes, time});
    if (ag::TraceScope::Active()) {
      // mask_t is a materialized copy (unlike mask_s below, which aliases the
      // keep mask's storage), so the executor needs its provenance recorded.
      ag::DynamicNote note;
      note.kind = ag::DynamicKind::kKeepMaskView;
      note.tensor = mask_t;
      note.view_src = keep_mask->data();
      note.view_batch = batch;
      note.view_time = time;
      note.view_nodes = nodes;
      ag::TraceDynamicInput(std::move(note));
    }
  }
  ag::Variable temporal =
      ApplyTemporal(zt, keep_mask ? &mask_t : nullptr);  // [B*N, T, d]
  temporal = ag::Reshape(temporal, t::Shape{batch, nodes, time, dim_});
  temporal = ag::Permute(temporal, {0, 2, 1, 3});  // [B, T, N, d]

  // Temporal-only variant: no cross-node mixing, H^(l) = T + H.
  if (!spatial_mixing_) return ag::Add(temporal, h);

  // Spatial branch: attention over N for every (batch, time slice).
  ag::Variable zs = ag::Reshape(z, t::Shape{batch * time, nodes, 2 * dim_});
  t::Tensor mask_s;
  if (keep_mask != nullptr) {
    mask_s = keep_mask->Reshape(t::Shape{batch * time, nodes});
  }
  ag::Variable spatial =
      ApplySpatial(zs, keep_mask ? &mask_s : nullptr);  // [B*T, N, d]
  spatial = ag::Reshape(spatial, t::Shape{batch, time, nodes, dim_});

  // H^(l) = T + S, plus a residual connection (§IV-C1).
  return ag::Add(ag::Add(temporal, spatial), h);
}

ag::Variable StbaBlock::ApplyTemporal(const ag::Variable& z,
                                      const t::Tensor* key_mask) const {
  return use_bottleneck_ ? temporal_bottleneck_->Forward(z, key_mask)
                         : temporal_full_->Forward(z, key_mask);
}

ag::Variable StbaBlock::ApplySpatial(const ag::Variable& z,
                                     const t::Tensor* key_mask) const {
  return use_bottleneck_ ? spatial_bottleneck_->Forward(z, key_mask)
                         : spatial_full_->Forward(z, key_mask);
}

}  // namespace sstban::sstban

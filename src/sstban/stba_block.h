#ifndef SSTBAN_SSTBAN_STBA_BLOCK_H_
#define SSTBAN_SSTBAN_STBA_BLOCK_H_

#include <memory>

#include "nn/module.h"
#include "sstban/bottleneck_attention.h"

namespace sstban::sstban {

// Spatial-Temporal Bottleneck Attentive block (§IV-B, Fig. 2). The block
// concatenates its input H with the ST embedding E into Z = H || E
// (width 2d), runs temporal bottleneck attention per node (over the T axis)
// and spatial bottleneck attention per time slice (over the N axis), and
// returns T + S plus a residual connection to H.
class StbaBlock : public nn::Module {
 public:
  // When use_bottleneck is false both attentions fall back to full
  // quadratic self-attention (the Table VI "w/o STBA" variant). When
  // spatial_mixing is false the spatial branch is omitted entirely and the
  // block returns T plus the residual — the temporal-only variant whose
  // receptive field never crosses nodes (see SstbanConfig::spatial_mixing).
  StbaBlock(int64_t dim, int64_t num_heads, int64_t temporal_refs,
            int64_t spatial_refs, bool use_bottleneck, core::Rng& rng,
            bool spatial_mixing = true);

  // h, e: [B, T, N, d]. `keep_mask`, when given, is [B, T, N] with 1 for
  // observed positions; masked positions are excluded as attention keys.
  autograd::Variable Forward(const autograd::Variable& h,
                             const autograd::Variable& e,
                             const tensor::Tensor* keep_mask = nullptr) const;

 private:
  autograd::Variable ApplyTemporal(const autograd::Variable& z,
                                   const tensor::Tensor* key_mask) const;
  autograd::Variable ApplySpatial(const autograd::Variable& z,
                                  const tensor::Tensor* key_mask) const;

  int64_t dim_;
  bool use_bottleneck_;
  bool spatial_mixing_;
  std::unique_ptr<BottleneckAttention> temporal_bottleneck_;
  std::unique_ptr<BottleneckAttention> spatial_bottleneck_;
  std::unique_ptr<FullSelfAttention> temporal_full_;
  std::unique_ptr<FullSelfAttention> spatial_full_;
};

}  // namespace sstban::sstban

#endif  // SSTBAN_SSTBAN_STBA_BLOCK_H_

#ifndef SSTBAN_SSTBAN_ENCODER_H_
#define SSTBAN_SSTBAN_ENCODER_H_

#include <memory>
#include <vector>

#include "nn/linear.h"
#include "nn/module.h"
#include "sstban/config.h"
#include "sstban/stba_block.h"

namespace sstban::sstban {

// Spatial-Temporal encoder (§IV-C1): a linear projection C -> d followed by
// L residual STBA blocks. Shared verbatim by the forecasting branch and the
// self-supervised branch (the sharing is the point of the multi-task
// design — the MAE task exercises this encoder).
class StEncoder : public nn::Module {
 public:
  StEncoder(const SstbanConfig& config, core::Rng& rng);

  // x: [B, P, N, C] normalized signals; e: [B, P, N, d] ST embedding;
  // keep_mask (optional): [B, P, N] with 1 = observed. Returns the latent
  // H^(L) in [B, P, N, d].
  autograd::Variable Forward(const autograd::Variable& x,
                             const autograd::Variable& e,
                             const tensor::Tensor* keep_mask = nullptr) const;

 private:
  std::unique_ptr<nn::Linear> input_proj_;
  std::vector<std::unique_ptr<StbaBlock>> blocks_;
};

}  // namespace sstban::sstban

#endif  // SSTBAN_SSTBAN_ENCODER_H_

#ifndef SSTBAN_SSTBAN_STE_H_
#define SSTBAN_SSTBAN_STE_H_

#include <memory>
#include <vector>

#include "nn/embedding.h"
#include "nn/mlp.h"
#include "nn/module.h"

namespace sstban::sstban {

// Spatial-Temporal Embedding (STE) block (§IV-A). The spatial embedding is
// a learned vector per node, shared across time; the temporal embedding is
// produced from one-hot time-of-day and day-of-week features through an MLP,
// shared across nodes. The two are summed into E in R^{len x N x d}.
class SpatialTemporalEmbedding : public nn::Module {
 public:
  SpatialTemporalEmbedding(int64_t num_nodes, int64_t steps_per_day,
                           int64_t dim, core::Rng& rng);

  // tod/dow: flattened calendar indices of length batch*len (as produced by
  // data::Batch). Returns E of shape [batch, len, N, dim].
  autograd::Variable Forward(const std::vector<int64_t>& tod,
                             const std::vector<int64_t>& dow, int64_t batch,
                             int64_t len) const;

  int64_t dim() const { return dim_; }

 private:
  int64_t num_nodes_;
  int64_t steps_per_day_;
  int64_t dim_;
  std::unique_ptr<nn::Embedding> spatial_;  // [N, d]
  std::unique_ptr<nn::Mlp> temporal_mlp_;   // one-hot(tod) ++ one-hot(dow) -> d
};

}  // namespace sstban::sstban

#endif  // SSTBAN_SSTBAN_STE_H_

#ifndef SSTBAN_SSTBAN_MODEL_H_
#define SSTBAN_SSTBAN_MODEL_H_

#include <memory>
#include <string>

#include "core/rng.h"
#include "sstban/config.h"
#include "sstban/decoders.h"
#include "sstban/encoder.h"
#include "sstban/ste.h"
#include "sstban/transform_attention.h"
#include "training/model.h"

namespace sstban::sstban {

// The full SSTBAN model (Fig. 1): a forecasting branch
// (encoder -> transform attention -> forecasting decoder) and a
// self-supervised masked-autoencoding branch (masking -> shared encoder ->
// reconstructing decoder -> latent alignment), combined through the
// multi-task loss (1 - lambda) * MAE + lambda * MSE.
class SstbanModel : public training::TrafficModel {
 public:
  explicit SstbanModel(const SstbanConfig& config);

  // Forecasting branch only (used at inference / evaluation).
  autograd::Variable Predict(const tensor::Tensor& x_norm,
                             const data::Batch& batch) override;

  // Two-branch multi-task objective (training).
  autograd::Variable TrainingLoss(const tensor::Tensor& x_norm,
                                  const tensor::Tensor& y_norm,
                                  const data::Batch& batch) override;

  // Masked-reconstruction branch alone: mask the window, re-encode, align the
  // reconstruction with the clean-encoder latent. Needs no labels, which is
  // what lets the online adapter fine-tune on live windows whose ground-truth
  // future has not been observed yet. Draws masks from the same checkpointed
  // mask_rng_ stream as TrainingLoss. Undefined when the model was built
  // without the reconstructing decoder.
  autograd::Variable SelfSupervisedLoss(const tensor::Tensor& x_norm,
                                        const data::Batch& batch) override;

  std::string name() const override {
    return config_.use_bottleneck ? "SSTBAN" : "SSTBAN-w/o-STBA";
  }

  // The masking stream advances once per training step; checkpointing it is
  // what makes a resumed run draw the same masks as an uninterrupted one.
  core::Rng* TrainingRng() override { return &mask_rng_; }

  const SstbanConfig& config() const { return config_; }

  // The serving forward's only request-dependent inputs are x_norm, the keep
  // mask, and the calendar vectors — all annotated for tracing — so the
  // static executor may bake everything else as constants.
  bool SupportsStaticExecutor() const override { return true; }

  // Runtime adjustments for self-supervision scheduling experiments
  // (multi-task vs pre-train-then-fine-tune; see bench_ablation_ssl_modes).
  // lambda = 1 trains the reconstruction objective alone; lambda = 0 (or
  // set_self_supervised(false)) trains pure forecasting.
  void set_lambda(double lambda) { config_.lambda = lambda; }
  void set_self_supervised(bool enabled);

  // Forecast from partially observed input: `keep_pos` is [B, P, N] with 1
  // where the position was actually observed. Missing positions are zeroed
  // in the input and excluded as attention keys in the encoder — the same
  // machinery the self-supervised branch trains, reused for inference with
  // sensor dropouts.
  autograd::Variable PredictWithMissing(const tensor::Tensor& x_norm,
                                        const tensor::Tensor& keep_pos,
                                        const data::Batch& batch);

  // Serving-facing mask entry point (TrafficModel interface): degraded-mode
  // inference is PredictWithMissing, i.e. exactly the encoder pathway the
  // self-supervised branch trained.
  autograd::Variable PredictMasked(const tensor::Tensor& x_norm,
                                   const tensor::Tensor& keep_pos,
                                   const data::Batch& batch) override {
    return PredictWithMissing(x_norm, keep_pos, batch);
  }

  // Exposed pieces of one training forward pass, for tests and ablations.
  struct ForwardOutput {
    autograd::Variable prediction;      // [B, Q, N, C]
    autograd::Variable forecast_loss;   // scalar MAE
    autograd::Variable alignment_loss;  // scalar MSE (undefined if SSL off)
    autograd::Variable total_loss;      // scalar
  };
  ForwardOutput ForwardTwoBranch(const tensor::Tensor& x_norm,
                                 const tensor::Tensor& y_norm,
                                 const data::Batch& batch);

 private:
  // The per-branch forecasting pipeline; returns the normalized prediction
  // and (via h_latent) the clean-encoder latent used as alignment target.
  autograd::Variable ForecastBranch(const autograd::Variable& x,
                                    const data::Batch& batch,
                                    autograd::Variable* h_latent,
                                    autograd::Variable* e_in);

  // Draws per-sample spacetime patch masks from mask_rng_: `mask` is
  // [B, P, N, C], `keep_pos` [B, P, N] and `keep_latent` [B, P, N, 1] mark
  // positions where any channel survived. Shared by ForwardTwoBranch and
  // SelfSupervisedLoss.
  void DrawStepMasks(int64_t batch_size, tensor::Tensor* mask,
                     tensor::Tensor* keep_pos, tensor::Tensor* keep_latent);

  SstbanConfig config_;
  core::Rng rng_;       // construction-time weight init stream
  core::Rng mask_rng_;  // per-step masking stream
  std::unique_ptr<SpatialTemporalEmbedding> ste_;
  std::unique_ptr<StEncoder> encoder_;
  std::unique_ptr<TransformAttention> transform_;
  std::unique_ptr<StForecastingDecoder> decoder_;
  std::unique_ptr<StReconstructingDecoder> reconstructor_;
};

}  // namespace sstban::sstban

#endif  // SSTBAN_SSTBAN_MODEL_H_

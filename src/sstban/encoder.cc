#include "sstban/encoder.h"

#include "core/string_util.h"

namespace sstban::sstban {

namespace ag = ::sstban::autograd;

StEncoder::StEncoder(const SstbanConfig& config, core::Rng& rng) {
  input_proj_ = std::make_unique<nn::Linear>(config.num_features,
                                             config.hidden_dim, rng);
  RegisterModule("input_proj", input_proj_.get());
  for (int64_t l = 0; l < config.encoder_blocks; ++l) {
    blocks_.push_back(std::make_unique<StbaBlock>(
        config.hidden_dim, config.num_heads, config.temporal_refs,
        config.spatial_refs, config.use_bottleneck, rng,
        config.spatial_mixing));
    RegisterModule(core::StrFormat("block%lld", static_cast<long long>(l)),
                   blocks_.back().get());
  }
}

ag::Variable StEncoder::Forward(const ag::Variable& x, const ag::Variable& e,
                                const tensor::Tensor* keep_mask) const {
  ag::Variable h = input_proj_->Forward(x);  // [B, P, N, d]
  for (const auto& block : blocks_) {
    h = block->Forward(h, e, keep_mask);
  }
  return h;
}

}  // namespace sstban::sstban

#ifndef SSTBAN_SSTBAN_DECODERS_H_
#define SSTBAN_SSTBAN_DECODERS_H_

#include <memory>
#include <vector>

#include "nn/linear.h"
#include "nn/module.h"
#include "sstban/config.h"
#include "sstban/stba_block.h"

namespace sstban::sstban {

// ST Forecasting decoder (§IV-C3): L' residual STBA blocks over the
// transform-attention output, followed by a linear projection d -> C that
// emits the future traffic signals.
class StForecastingDecoder : public nn::Module {
 public:
  StForecastingDecoder(const SstbanConfig& config, core::Rng& rng);

  // h: [B, Q, N, d], e_out: [B, Q, N, d] -> prediction [B, Q, N, C].
  autograd::Variable Forward(const autograd::Variable& h,
                             const autograd::Variable& e_out) const;

 private:
  std::vector<std::unique_ptr<StbaBlock>> blocks_;
  std::unique_ptr<nn::Linear> output_proj_;
};

// ST Reconstructing decoder (§IV-D3): fills the masked latent positions
// with a shared learnable mask token, then runs L'' STBA blocks to recover
// the complete latent representation, which is aligned with the clean
// encoder's H^(L) in latent space.
class StReconstructingDecoder : public nn::Module {
 public:
  StReconstructingDecoder(const SstbanConfig& config, core::Rng& rng);

  // encoded: [B, P, N, d] (latent from the masked encoder pass);
  // e: [B, P, N, d]; keep_latent: [B, P, N, 1] with 1 where the position
  // was (at least partially) observed. Returns [B, P, N, d].
  autograd::Variable Forward(const autograd::Variable& encoded,
                             const autograd::Variable& e,
                             const tensor::Tensor& keep_latent) const;

 private:
  int64_t dim_;
  autograd::Variable mask_token_;  // [d], shared across positions
  std::vector<std::unique_ptr<StbaBlock>> blocks_;
};

}  // namespace sstban::sstban

#endif  // SSTBAN_SSTBAN_DECODERS_H_

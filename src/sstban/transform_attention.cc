#include "sstban/transform_attention.h"

#include "autograd/ops.h"
#include "core/check.h"

namespace sstban::sstban {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;

TransformAttention::TransformAttention(int64_t dim, int64_t num_heads,
                                       core::Rng& rng)
    : dim_(dim) {
  attention_ =
      std::make_unique<nn::MultiHeadAttention>(dim, dim, dim, num_heads, rng);
  RegisterModule("attention", attention_.get());
}

ag::Variable TransformAttention::Forward(const ag::Variable& e_out,
                                         const ag::Variable& e_in,
                                         const ag::Variable& h) const {
  SSTBAN_CHECK_EQ(e_out.rank(), 4);
  SSTBAN_CHECK(e_in.shape() == h.shape());
  int64_t batch = h.dim(0), p = h.dim(1), nodes = h.dim(2);
  int64_t q = e_out.dim(1);
  SSTBAN_CHECK_EQ(e_out.dim(0), batch);
  SSTBAN_CHECK_EQ(e_out.dim(2), nodes);
  SSTBAN_CHECK_EQ(e_out.dim(3), dim_);

  // Per-node sequences: [B, L, N, d] -> [B*N, L, d].
  auto per_node = [&](const ag::Variable& x, int64_t len) {
    ag::Variable r = ag::Permute(x, {0, 2, 1, 3});  // [B, N, L, d]
    return ag::Reshape(r, t::Shape{batch * nodes, len, dim_});
  };
  ag::Variable query = per_node(e_out, q);
  ag::Variable key = per_node(e_in, p);
  ag::Variable value = per_node(h, p);
  ag::Variable out = attention_->Forward(query, key, value);  // [B*N, Q, d]
  out = ag::Reshape(out, t::Shape{batch, nodes, q, dim_});
  return ag::Permute(out, {0, 2, 1, 3});  // [B, Q, N, d]
}

}  // namespace sstban::sstban

#ifndef SSTBAN_SSTBAN_CONFIG_H_
#define SSTBAN_SSTBAN_CONFIG_H_

#include <cstdint>
#include <string>

#include "core/status.h"
#include "sstban/masking.h"

namespace sstban::sstban {

// Hyper-parameters of the SSTBAN model, following the paper's notation
// (Table I) and the per-scenario settings of Table III.
struct SstbanConfig {
  // -- Problem geometry ---------------------------------------------------
  int64_t num_nodes = 0;      // N
  int64_t input_len = 24;     // P
  int64_t output_len = 24;    // Q
  int64_t num_features = 1;   // C
  int64_t steps_per_day = 96; // time-of-day vocabulary for the STE block

  // -- Network (Table III, "Encoder/Decoder" columns) -----------------------
  int64_t hidden_dim = 16;     // d
  int64_t num_heads = 8;       // h
  int64_t encoder_blocks = 2;  // L
  int64_t decoder_blocks = 2;  // L'
  int64_t recon_blocks = 1;    // L'' ("a narrow decoder is enough", §V-C)
  int64_t temporal_refs = 3;   // T' reference points
  int64_t spatial_refs = 3;    // N' reference points
  // false replaces every bottleneck attention with full quadratic
  // self-attention — the "w/o STBA" ablation of Table VI.
  bool use_bottleneck = true;
  // false drops the spatial branch of every STBA block entirely (blocks
  // compute T + residual): each node's forecast then depends only on its own
  // history, i.e. the spatial receptive field is node-local. This is the
  // temporal-only ablation and the configuration under which horizontally
  // sharded serving (src/sharding) is bitwise-exact per shard.
  bool spatial_mixing = true;

  // -- Self-supervised branch (Table III, "Self-supervised Task") ------------
  bool self_supervised = true;
  int64_t patch_len = 12;  // l_m
  double mask_rate = 0.3;  // alpha_m
  double lambda = 0.1;     // weight of the alignment loss
  MaskStrategy mask_strategy = MaskStrategy::kSpacetimeAgnostic;
  // Stop-gradient on the alignment target H^(L) (see DESIGN.md §5).
  bool detach_alignment_target = true;

  uint64_t seed = 1;

  core::Status Validate() const;
};

// Presets reproducing Table III rows at our scaled-down node counts. The
// scenario key is "<dataset>-<steps>", e.g. "seattle-36", "pems08-24".
// CHECK-fails on an unknown key.
SstbanConfig TableIiiConfig(const std::string& scenario);

}  // namespace sstban::sstban

#endif  // SSTBAN_SSTBAN_CONFIG_H_

#ifndef SSTBAN_SSTBAN_BOTTLENECK_ATTENTION_H_
#define SSTBAN_SSTBAN_BOTTLENECK_ATTENTION_H_

#include <memory>

#include "nn/attention.h"
#include "nn/module.h"

namespace sstban::sstban {

// One-dimensional bottleneck attention (the TBA / SBA primitive of §IV-B,
// Eq. 1-2). R learnable reference points bridge all-pairs interactions:
//
//   I' = MHSA(I, X, X)    — reference points absorb global context
//   Y  = MHSA(X, I', I')  — elements read the compressed context back
//
// Complexity is O(L * R) per sequence instead of O(L^2). The reference
// points act like learned cluster centers (a Set-Transformer-style induced
// bottleneck).
class BottleneckAttention : public nn::Module {
 public:
  // in_dim is the element dimension (2d in the paper, since the block input
  // is H concatenated with the ST embedding); out_dim is d.
  BottleneckAttention(int64_t in_dim, int64_t out_dim, int64_t num_refs,
                      int64_t num_heads, core::Rng& rng);

  // x: [B', L, in_dim] -> [B', L, out_dim]. `key_mask` ([B', L], 1 = visible)
  // excludes masked elements from the first stage so reference points only
  // aggregate observed signals (the MAE branch's -inf masking).
  // `assignment_probs`, when non-null, receives the second-stage attention
  // [B', L, R]: how strongly each element reads each reference point — the
  // soft "cluster membership" of §IV-B's cluster-center interpretation.
  autograd::Variable Forward(const autograd::Variable& x,
                             const tensor::Tensor* key_mask = nullptr,
                             tensor::Tensor* assignment_probs = nullptr) const;

  int64_t num_refs() const { return num_refs_; }

 private:
  int64_t in_dim_;
  int64_t num_refs_;
  autograd::Variable refs_;  // [R, in_dim] learnable reference points
  std::unique_ptr<nn::MultiHeadAttention> absorb_;   // I' = MHSA(I, X, X)
  std::unique_ptr<nn::MultiHeadAttention> broadcast_;  // Y = MHSA(X, I', I')
};

// Drop-in quadratic replacement used by the "w/o STBA" ablation (Table VI):
// plain multi-head self-attention MHSA(X, X, X) with O(L^2) cost.
class FullSelfAttention : public nn::Module {
 public:
  FullSelfAttention(int64_t in_dim, int64_t out_dim, int64_t num_heads,
                    core::Rng& rng);

  autograd::Variable Forward(const autograd::Variable& x,
                             const tensor::Tensor* key_mask = nullptr) const;

 private:
  std::unique_ptr<nn::MultiHeadAttention> attention_;
};

}  // namespace sstban::sstban

#endif  // SSTBAN_SSTBAN_BOTTLENECK_ATTENTION_H_

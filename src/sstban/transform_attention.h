#ifndef SSTBAN_SSTBAN_TRANSFORM_ATTENTION_H_
#define SSTBAN_SSTBAN_TRANSFORM_ATTENTION_H_

#include <memory>

#include "nn/attention.h"
#include "nn/module.h"

namespace sstban::sstban {

// Transform attention (§IV-C2, Eq. 3): converts the P-step encoder output
// into a Q-step decoder input by attending from the output-time ST
// embedding E' (queries) to the input-time ST embedding E (keys) over the
// encoder latent H^(L) (values), independently for every node. This directly
// links each future step with every historical step, sidestepping recursive
// error propagation (the approach GMAN introduced).
class TransformAttention : public nn::Module {
 public:
  TransformAttention(int64_t dim, int64_t num_heads, core::Rng& rng);

  // e_out: [B, Q, N, d], e_in: [B, P, N, d], h: [B, P, N, d]
  // -> [B, Q, N, d].
  autograd::Variable Forward(const autograd::Variable& e_out,
                             const autograd::Variable& e_in,
                             const autograd::Variable& h) const;

 private:
  int64_t dim_;
  std::unique_ptr<nn::MultiHeadAttention> attention_;
};

}  // namespace sstban::sstban

#endif  // SSTBAN_SSTBAN_TRANSFORM_ATTENTION_H_

#include "sstban/config.h"

#include "core/check.h"

namespace sstban::sstban {

core::Status SstbanConfig::Validate() const {
  if (num_nodes <= 0) return core::Status::InvalidArgument("num_nodes must be > 0");
  if (input_len <= 0 || output_len <= 0) {
    return core::Status::InvalidArgument("input_len/output_len must be > 0");
  }
  if (num_features <= 0) {
    return core::Status::InvalidArgument("num_features must be > 0");
  }
  if (steps_per_day <= 0) {
    return core::Status::InvalidArgument("steps_per_day must be > 0");
  }
  if (hidden_dim <= 0 || num_heads <= 0) {
    return core::Status::InvalidArgument("hidden_dim/num_heads must be > 0");
  }
  if (encoder_blocks <= 0 || decoder_blocks <= 0 || recon_blocks <= 0) {
    return core::Status::InvalidArgument("block counts must be > 0");
  }
  if (use_bottleneck && (temporal_refs <= 0 || spatial_refs <= 0)) {
    return core::Status::InvalidArgument("reference point counts must be > 0");
  }
  if (self_supervised) {
    if (patch_len <= 0) return core::Status::InvalidArgument("patch_len must be > 0");
    if (mask_rate < 0.0 || mask_rate >= 1.0) {
      return core::Status::InvalidArgument("mask_rate must be in [0, 1)");
    }
    if (lambda < 0.0 || lambda > 1.0) {
      return core::Status::InvalidArgument("lambda must be in [0, 1]");
    }
  }
  return core::Status::Ok();
}

SstbanConfig TableIiiConfig(const std::string& scenario) {
  SstbanConfig c;
  // Common to all nine scenarios (§V-C): T' = N' = 3, L'' = 1.
  c.temporal_refs = 3;
  c.spatial_refs = 3;
  c.recon_blocks = 1;
  if (scenario == "seattle-24") {
    c.input_len = c.output_len = 24;
    c.encoder_blocks = c.decoder_blocks = 4;
    c.hidden_dim = 4;
    c.num_heads = 8;
    c.patch_len = 3;
    c.mask_rate = 0.3;
    c.lambda = 0.1;
  } else if (scenario == "seattle-36") {
    c.input_len = c.output_len = 36;
    c.encoder_blocks = c.decoder_blocks = 2;
    c.hidden_dim = 8;
    c.num_heads = 16;
    c.patch_len = 18;
    c.mask_rate = 0.5;
    c.lambda = 0.5;
  } else if (scenario == "seattle-48") {
    c.input_len = c.output_len = 48;
    c.encoder_blocks = c.decoder_blocks = 2;
    c.hidden_dim = 8;
    c.num_heads = 16;
    c.patch_len = 3;
    c.mask_rate = 0.3;
    c.lambda = 0.1;
  } else if (scenario == "pems04-24") {
    c.input_len = c.output_len = 24;
    c.encoder_blocks = c.decoder_blocks = 2;
    c.hidden_dim = 16;
    c.num_heads = 8;
    c.patch_len = 12;
    c.mask_rate = 0.1;
    c.lambda = 0.05;
  } else if (scenario == "pems04-36") {
    c.input_len = c.output_len = 36;
    c.encoder_blocks = c.decoder_blocks = 2;
    c.hidden_dim = 16;
    c.num_heads = 8;
    c.patch_len = 12;
    c.mask_rate = 0.3;
    c.lambda = 0.05;
  } else if (scenario == "pems04-48") {
    c.input_len = c.output_len = 48;
    c.encoder_blocks = c.decoder_blocks = 2;
    c.hidden_dim = 16;
    c.num_heads = 8;
    c.patch_len = 3;
    c.mask_rate = 0.2;
    c.lambda = 0.3;
  } else if (scenario == "pems08-24") {
    c.input_len = c.output_len = 24;
    c.encoder_blocks = c.decoder_blocks = 3;
    c.hidden_dim = 16;
    c.num_heads = 8;
    c.patch_len = 12;
    c.mask_rate = 0.1;
    c.lambda = 0.05;
  } else if (scenario == "pems08-36") {
    c.input_len = c.output_len = 36;
    c.encoder_blocks = c.decoder_blocks = 3;
    c.hidden_dim = 16;
    c.num_heads = 8;
    c.patch_len = 12;
    c.mask_rate = 0.5;
    c.lambda = 0.8;
  } else if (scenario == "pems08-48") {
    c.input_len = c.output_len = 48;
    c.encoder_blocks = c.decoder_blocks = 3;
    c.hidden_dim = 16;
    c.num_heads = 8;
    c.patch_len = 24;
    c.mask_rate = 0.5;
    c.lambda = 0.3;
  } else {
    SSTBAN_CHECK(false) << "unknown Table III scenario:" << scenario;
  }
  return c;
}

}  // namespace sstban::sstban

#include "sstban/ste.h"

#include "autograd/ops.h"
#include "autograd/trace.h"
#include "core/check.h"

namespace sstban::sstban {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;

SpatialTemporalEmbedding::SpatialTemporalEmbedding(int64_t num_nodes,
                                                   int64_t steps_per_day,
                                                   int64_t dim, core::Rng& rng)
    : num_nodes_(num_nodes), steps_per_day_(steps_per_day), dim_(dim) {
  spatial_ = std::make_unique<nn::Embedding>(num_nodes, dim, rng);
  int64_t onehot_dim = steps_per_day + 7;
  temporal_mlp_ = std::make_unique<nn::Mlp>(
      std::vector<int64_t>{onehot_dim, dim, dim}, rng, nn::Activation::kRelu);
  RegisterModule("spatial", spatial_.get());
  RegisterModule("temporal_mlp", temporal_mlp_.get());
}

ag::Variable SpatialTemporalEmbedding::Forward(const std::vector<int64_t>& tod,
                                               const std::vector<int64_t>& dow,
                                               int64_t batch, int64_t len) const {
  int64_t rows = batch * len;
  SSTBAN_CHECK_EQ(static_cast<int64_t>(tod.size()), rows);
  SSTBAN_CHECK_EQ(static_cast<int64_t>(dow.size()), rows);
  int64_t onehot_dim = steps_per_day_ + 7;
  t::Tensor onehot = t::Tensor::Zeros(t::Shape{rows, onehot_dim});
  float* po = onehot.data();
  for (int64_t r = 0; r < rows; ++r) {
    SSTBAN_CHECK(tod[r] >= 0 && tod[r] < steps_per_day_);
    SSTBAN_CHECK(dow[r] >= 0 && dow[r] < 7);
    po[r * onehot_dim + tod[r]] = 1.0f;
    po[r * onehot_dim + steps_per_day_ + dow[r]] = 1.0f;
  }
  if (ag::TraceScope::Active()) {
    // The vector addresses let the executor tell the input-window calendar
    // stream from the output-window one even when both have the same length.
    ag::DynamicNote note;
    note.kind = ag::DynamicKind::kCalendarOnehot;
    note.tensor = onehot;
    note.tod = &tod;
    note.dow = &dow;
    note.steps_per_day = steps_per_day_;
    ag::TraceDynamicInput(std::move(note));
  }
  // Temporal part: [B*len, d] -> [B, len, 1, d].
  ag::Variable temporal = temporal_mlp_->Forward(ag::Variable(onehot));
  temporal = ag::Reshape(temporal, t::Shape{batch, len, 1, dim_});
  // Spatial part: [N, d] -> [1, 1, N, d]; broadcasting sum yields
  // E in [B, len, N, d].
  ag::Variable spatial =
      ag::Reshape(spatial_->weight(), t::Shape{1, 1, num_nodes_, dim_});
  return ag::Add(temporal, spatial);
}

}  // namespace sstban::sstban

#ifndef SSTBAN_SSTBAN_MASKING_H_
#define SSTBAN_SSTBAN_MASKING_H_

#include <cstdint>

#include "core/rng.h"
#include "tensor/tensor.h"

namespace sstban::sstban {

// The three mask-sampling strategies compared in §V-D4 / Fig. 8.
enum class MaskStrategy {
  // Algorithm 1: patches (length-l_m temporal runs of one node/feature
  // series) are sampled uniformly across space and time.
  kSpacetimeAgnostic,
  // Whole nodes are masked for the entire input window.
  kSpaceOnly,
  // Whole temporal patches are masked across every node.
  kTimeOnly,
};

const char* MaskStrategyName(MaskStrategy strategy);

// Generates a {0, 1} mask tensor of shape [P, N, C] (1 = keep, 0 = masked)
// for one input sample. `patch_len` is the paper's l_m, `mask_rate` its
// alpha_m. A trailing partial patch is allowed when l_m does not divide P.
// At least one patch is always left visible so the encoder never sees a
// fully-masked input.
tensor::Tensor GenerateMask(int64_t input_len, int64_t num_nodes,
                            int64_t num_features, int64_t patch_len,
                            double mask_rate, MaskStrategy strategy,
                            core::Rng& rng);

}  // namespace sstban::sstban

#endif  // SSTBAN_SSTBAN_MASKING_H_

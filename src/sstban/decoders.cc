#include "sstban/decoders.h"

#include "autograd/ops.h"
#include "core/check.h"
#include "core/string_util.h"
#include "tensor/ops.h"

namespace sstban::sstban {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;

StForecastingDecoder::StForecastingDecoder(const SstbanConfig& config,
                                           core::Rng& rng) {
  for (int64_t l = 0; l < config.decoder_blocks; ++l) {
    blocks_.push_back(std::make_unique<StbaBlock>(
        config.hidden_dim, config.num_heads, config.temporal_refs,
        config.spatial_refs, config.use_bottleneck, rng,
        config.spatial_mixing));
    RegisterModule(core::StrFormat("block%lld", static_cast<long long>(l)),
                   blocks_.back().get());
  }
  output_proj_ = std::make_unique<nn::Linear>(config.hidden_dim,
                                              config.num_features, rng);
  RegisterModule("output_proj", output_proj_.get());
}

ag::Variable StForecastingDecoder::Forward(const ag::Variable& h,
                                           const ag::Variable& e_out) const {
  ag::Variable out = h;
  for (const auto& block : blocks_) {
    out = block->Forward(out, e_out);
  }
  return output_proj_->Forward(out);
}

StReconstructingDecoder::StReconstructingDecoder(const SstbanConfig& config,
                                                 core::Rng& rng)
    : dim_(config.hidden_dim) {
  mask_token_ = RegisterParameter(
      "mask_token", t::Tensor::RandomNormal(t::Shape{dim_}, rng, 0.0f, 0.02f));
  for (int64_t l = 0; l < config.recon_blocks; ++l) {
    blocks_.push_back(std::make_unique<StbaBlock>(
        config.hidden_dim, config.num_heads, config.temporal_refs,
        config.spatial_refs, config.use_bottleneck, rng,
        config.spatial_mixing));
    RegisterModule(core::StrFormat("block%lld", static_cast<long long>(l)),
                   blocks_.back().get());
  }
}

ag::Variable StReconstructingDecoder::Forward(const ag::Variable& encoded,
                                              const ag::Variable& e,
                                              const t::Tensor& keep_latent) const {
  SSTBAN_CHECK_EQ(encoded.rank(), 4);
  int64_t batch = encoded.dim(0), time = encoded.dim(1), nodes = encoded.dim(2);
  SSTBAN_CHECK(keep_latent.shape() == (t::Shape{batch, time, nodes, 1}))
      << "keep_latent" << keep_latent.shape().ToString();
  // h~(0) = keep * encoded + (1 - keep) * mask_token.
  ag::Variable keep(keep_latent);
  ag::Variable drop(t::AddScalar(t::Neg(keep_latent), 1.0f));
  ag::Variable token = ag::Reshape(mask_token_, t::Shape{1, 1, 1, dim_});
  ag::Variable h = ag::Add(ag::Mul(keep, encoded), ag::Mul(drop, token));
  for (const auto& block : blocks_) {
    h = block->Forward(h, e);
  }
  return h;
}

}  // namespace sstban::sstban

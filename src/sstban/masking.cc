#include "sstban/masking.h"

#include <algorithm>
#include <vector>

#include "core/check.h"

namespace sstban::sstban {

const char* MaskStrategyName(MaskStrategy strategy) {
  switch (strategy) {
    case MaskStrategy::kSpacetimeAgnostic:
      return "spacetime-agnostic";
    case MaskStrategy::kSpaceOnly:
      return "space-only";
    case MaskStrategy::kTimeOnly:
      return "time-only";
  }
  return "unknown";
}

namespace {

// Zeros time steps [seg*l_m, min((seg+1)*l_m, P)) of series (v, c).
void MaskPatch(tensor::Tensor& mask, int64_t seg, int64_t v, int64_t c,
               int64_t patch_len, int64_t input_len) {
  int64_t n = mask.dim(1), feats = mask.dim(2);
  int64_t t_begin = seg * patch_len;
  int64_t t_end = std::min(t_begin + patch_len, input_len);
  float* p = mask.data();
  for (int64_t t = t_begin; t < t_end; ++t) {
    p[(t * n + v) * feats + c] = 0.0f;
  }
}

}  // namespace

tensor::Tensor GenerateMask(int64_t input_len, int64_t num_nodes,
                            int64_t num_features, int64_t patch_len,
                            double mask_rate, MaskStrategy strategy,
                            core::Rng& rng) {
  SSTBAN_CHECK_GT(input_len, 0);
  SSTBAN_CHECK_GT(num_nodes, 0);
  SSTBAN_CHECK_GT(num_features, 0);
  SSTBAN_CHECK_GT(patch_len, 0);
  SSTBAN_CHECK(mask_rate >= 0.0 && mask_rate < 1.0)
      << "mask rate must be in [0, 1), got" << mask_rate;
  tensor::Tensor mask =
      tensor::Tensor::Ones(tensor::Shape{input_len, num_nodes, num_features});

  int64_t segments = (input_len + patch_len - 1) / patch_len;
  switch (strategy) {
    case MaskStrategy::kSpacetimeAgnostic: {
      int64_t num_patches = segments * num_nodes * num_features;
      auto num_masked = static_cast<int64_t>(mask_rate * num_patches);
      num_masked = std::min(num_masked, num_patches - 1);  // keep >= 1 visible
      std::vector<int64_t> sampled =
          rng.SampleWithoutReplacement(num_patches, num_masked);
      for (int64_t idx : sampled) {
        int64_t seg = idx / (num_nodes * num_features);
        int64_t rest = idx % (num_nodes * num_features);
        int64_t v = rest / num_features;
        int64_t c = rest % num_features;
        MaskPatch(mask, seg, v, c, patch_len, input_len);
      }
      break;
    }
    case MaskStrategy::kSpaceOnly: {
      auto num_masked = static_cast<int64_t>(mask_rate * num_nodes);
      num_masked = std::min(num_masked, num_nodes - 1);
      std::vector<int64_t> sampled =
          rng.SampleWithoutReplacement(num_nodes, num_masked);
      for (int64_t v : sampled) {
        for (int64_t seg = 0; seg < segments; ++seg) {
          for (int64_t c = 0; c < num_features; ++c) {
            MaskPatch(mask, seg, v, c, patch_len, input_len);
          }
        }
      }
      break;
    }
    case MaskStrategy::kTimeOnly: {
      auto num_masked = static_cast<int64_t>(mask_rate * segments);
      num_masked = std::min(num_masked, segments - 1);
      std::vector<int64_t> sampled =
          rng.SampleWithoutReplacement(segments, num_masked);
      for (int64_t seg : sampled) {
        for (int64_t v = 0; v < num_nodes; ++v) {
          for (int64_t c = 0; c < num_features; ++c) {
            MaskPatch(mask, seg, v, c, patch_len, input_len);
          }
        }
      }
      break;
    }
  }
  return mask;
}

}  // namespace sstban::sstban

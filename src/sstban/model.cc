#include "sstban/model.h"

#include <algorithm>
#include <cstring>

#include "autograd/ops.h"
#include "core/check.h"
#include "tensor/ops.h"

namespace sstban::sstban {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;

SstbanModel::SstbanModel(const SstbanConfig& config)
    : config_(config), rng_(config.seed), mask_rng_(config.seed ^ 0x9e3779b9) {
  core::Status status = config_.Validate();
  SSTBAN_CHECK(status.ok()) << status.ToString();
  ste_ = std::make_unique<SpatialTemporalEmbedding>(
      config_.num_nodes, config_.steps_per_day, config_.hidden_dim, rng_);
  encoder_ = std::make_unique<StEncoder>(config_, rng_);
  transform_ = std::make_unique<TransformAttention>(config_.hidden_dim,
                                                    config_.num_heads, rng_);
  decoder_ = std::make_unique<StForecastingDecoder>(config_, rng_);
  RegisterModule("ste", ste_.get());
  RegisterModule("encoder", encoder_.get());
  RegisterModule("transform", transform_.get());
  RegisterModule("decoder", decoder_.get());
  if (config_.self_supervised) {
    reconstructor_ = std::make_unique<StReconstructingDecoder>(config_, rng_);
    RegisterModule("reconstructor", reconstructor_.get());
  }
}

ag::Variable SstbanModel::ForecastBranch(const ag::Variable& x,
                                         const data::Batch& batch,
                                         ag::Variable* h_latent,
                                         ag::Variable* e_in) {
  int64_t batch_size = x.dim(0);
  ag::Variable e = ste_->Forward(batch.tod_in, batch.dow_in, batch_size,
                                 config_.input_len);
  ag::Variable e_out = ste_->Forward(batch.tod_out, batch.dow_out, batch_size,
                                     config_.output_len);
  ag::Variable h = encoder_->Forward(x, e);
  ag::Variable h0 = transform_->Forward(e_out, e, h);
  ag::Variable prediction = decoder_->Forward(h0, e_out);
  if (h_latent != nullptr) *h_latent = h;
  if (e_in != nullptr) *e_in = e;
  return prediction;
}

ag::Variable SstbanModel::Predict(const t::Tensor& x_norm,
                                  const data::Batch& batch) {
  ag::Variable x(x_norm);
  return ForecastBranch(x, batch, nullptr, nullptr);
}

SstbanModel::ForwardOutput SstbanModel::ForwardTwoBranch(
    const t::Tensor& x_norm, const t::Tensor& y_norm, const data::Batch& batch) {
  SSTBAN_CHECK_EQ(x_norm.rank(), 4);
  int64_t batch_size = x_norm.dim(0);
  int64_t p = config_.input_len, n = config_.num_nodes, c = config_.num_features;
  SSTBAN_CHECK(x_norm.shape() == (t::Shape{batch_size, p, n, c}))
      << "input" << x_norm.shape().ToString();

  ForwardOutput out;
  ag::Variable x(x_norm);
  ag::Variable h_latent, e_in;
  out.prediction = ForecastBranch(x, batch, &h_latent, &e_in);
  out.forecast_loss =
      ag::MaeLoss(out.prediction, ag::Variable(y_norm, /*requires_grad=*/false));

  if (!config_.self_supervised || !training()) {
    out.total_loss = out.forecast_loss;
    return out;
  }

  // -- Self-supervised branch --------------------------------------------
  t::Tensor mask, keep_pos, keep_latent;
  DrawStepMasks(batch_size, &mask, &keep_pos, &keep_latent);

  ag::Variable x_masked = ag::Mul(x, ag::Variable(mask));
  ag::Variable e = ste_->Forward(batch.tod_in, batch.dow_in, batch_size, p);
  ag::Variable h_masked = encoder_->Forward(x_masked, e, &keep_pos);
  ag::Variable h_recon = reconstructor_->Forward(h_masked, e, keep_latent);

  ag::Variable target =
      config_.detach_alignment_target ? h_latent.Detach() : h_latent;
  out.alignment_loss = ag::MseLoss(h_recon, target);

  float lambda = static_cast<float>(config_.lambda);
  out.total_loss = ag::Add(ag::MulScalar(out.forecast_loss, 1.0f - lambda),
                           ag::MulScalar(out.alignment_loss, lambda));
  return out;
}

void SstbanModel::DrawStepMasks(int64_t batch_size, t::Tensor* mask,
                                t::Tensor* keep_pos, t::Tensor* keep_latent) {
  int64_t p = config_.input_len, n = config_.num_nodes, c = config_.num_features;
  // Per-sample spacetime patch masks, concatenated to [B, P, N, C].
  *mask = t::Tensor::Empty(t::Shape{batch_size, p, n, c});
  for (int64_t b = 0; b < batch_size; ++b) {
    t::Tensor sample =
        GenerateMask(p, n, c, config_.patch_len, config_.mask_rate,
                     config_.mask_strategy, mask_rng_);
    std::memcpy(mask->data() + b * p * n * c, sample.data(),
                static_cast<size_t>(p * n * c) * sizeof(float));
  }
  // Position-level keep masks: a position is observed if any of its
  // channels survived masking.
  *keep_pos = t::Tensor::Empty(t::Shape{batch_size, p, n});
  *keep_latent = t::Tensor::Empty(t::Shape{batch_size, p, n, 1});
  const float* pm = mask->data();
  float* pk = keep_pos->data();
  float* pl = keep_latent->data();
  int64_t positions = batch_size * p * n;
  for (int64_t i = 0; i < positions; ++i) {
    float any = 0.0f;
    for (int64_t f = 0; f < c; ++f) any = std::max(any, pm[i * c + f]);
    pk[i] = any;
    pl[i] = any;
  }
}

ag::Variable SstbanModel::SelfSupervisedLoss(const t::Tensor& x_norm,
                                             const data::Batch& batch) {
  if (reconstructor_ == nullptr) return {};
  SSTBAN_CHECK_EQ(x_norm.rank(), 4);
  int64_t batch_size = x_norm.dim(0);
  int64_t p = config_.input_len, n = config_.num_nodes, c = config_.num_features;
  SSTBAN_CHECK(x_norm.shape() == (t::Shape{batch_size, p, n, c}))
      << "input" << x_norm.shape().ToString();

  ag::Variable x(x_norm);
  ag::Variable e = ste_->Forward(batch.tod_in, batch.dow_in, batch_size, p);
  ag::Variable h_clean = encoder_->Forward(x, e);
  ag::Variable target =
      config_.detach_alignment_target ? h_clean.Detach() : h_clean;

  t::Tensor mask, keep_pos, keep_latent;
  DrawStepMasks(batch_size, &mask, &keep_pos, &keep_latent);
  ag::Variable x_masked = ag::Mul(x, ag::Variable(mask));
  ag::Variable h_masked = encoder_->Forward(x_masked, e, &keep_pos);
  ag::Variable h_recon = reconstructor_->Forward(h_masked, e, keep_latent);
  return ag::MseLoss(h_recon, target);
}

void SstbanModel::set_self_supervised(bool enabled) {
  SSTBAN_CHECK(!enabled || reconstructor_ != nullptr)
      << "model was built without a reconstructing decoder";
  config_.self_supervised = enabled;
}

ag::Variable SstbanModel::PredictWithMissing(const t::Tensor& x_norm,
                                             const t::Tensor& keep_pos,
                                             const data::Batch& batch) {
  int64_t batch_size = x_norm.dim(0);
  int64_t p = config_.input_len, n = config_.num_nodes, c = config_.num_features;
  SSTBAN_CHECK(keep_pos.shape() == (t::Shape{batch_size, p, n}));
  // Zero out missing observations, matching the corrupted-input pathway.
  t::Tensor channel_mask = keep_pos.Reshape(t::Shape{batch_size, p, n, 1});
  ag::Variable x = ag::Mul(ag::Variable(x_norm), ag::Variable(channel_mask));
  (void)c;
  ag::Variable e = ste_->Forward(batch.tod_in, batch.dow_in, batch_size, p);
  ag::Variable e_out = ste_->Forward(batch.tod_out, batch.dow_out, batch_size,
                                     config_.output_len);
  ag::Variable h = encoder_->Forward(x, e, &keep_pos);
  ag::Variable h0 = transform_->Forward(e_out, e, h);
  return decoder_->Forward(h0, e_out);
}

ag::Variable SstbanModel::TrainingLoss(const t::Tensor& x_norm,
                                       const t::Tensor& y_norm,
                                       const data::Batch& batch) {
  return ForwardTwoBranch(x_norm, y_norm, batch).total_loss;
}

}  // namespace sstban::sstban

#ifndef SSTBAN_SERVING_BATCHER_H_
#define SSTBAN_SERVING_BATCHER_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "exec/precision.h"

#include "serving/fallback.h"
#include "serving/health.h"
#include "serving/model_registry.h"
#include "serving/overload/overload.h"
#include "serving/request.h"
#include "serving/request_queue.h"
#include "serving/server_stats.h"
#include "training/forecast_service.h"

namespace sstban::serving {

struct BatcherOptions {
  // Upper bound on requests coalesced into one model pass.
  int64_t max_batch = 8;
  // How long the batcher holds an underfull batch open waiting for more
  // requests before flushing what it has.
  std::chrono::microseconds max_wait{2000};
  // Window geometry shared by every request (calendar-feature derivation).
  int64_t input_len = 24;
  int64_t output_len = 24;
  int64_t steps_per_day = 96;
  // Which forward implementation the primary model pass uses (kAuto defers
  // to the SSTBAN_EXECUTOR environment variable). The static executor is a
  // fast path only: any executor failure falls back to the tape inside
  // RunBatchedInference, so the breaker/fallback semantics are unchanged.
  training::ExecutorMode executor_mode = training::ExecutorMode::kAuto;
  // Numeric mode for the static executor's compiled programs (defaults to
  // what SSTBAN_PRECISION resolves to). Applied to the served model before
  // each primary pass, so hot-swapped models inherit it. Reduced-precision
  // modes only affect the executor fast path; the tape fallback stays fp32.
  exec::PrecisionMode precision = exec::ResolvePrecisionMode();
};

// The micro-batching worker: drains the request queue, coalesces up to
// `max_batch` requests sharing one [P, N, C] shape (or flushes after
// `max_wait`), stacks them into a single [B, P, N, C] tensor, runs ONE
// batched TrafficModel::Predict pass on the currently served model, and
// fulfills each request's promise with its annotated [Q, N, C] slice.
//
// Resilience behavior layered on top of the happy path:
//   - Every loop iteration sweeps expired requests out of the queue (and the
//     holdover) with DeadlineExceeded before they can join a batch.
//   - The primary model pass runs only when the fallback chain's primary
//     circuit breaker admits it, inside a try/catch, and its output is
//     checked for NaN/Inf — a throwing or poisoned model becomes a recorded
//     breaker failure, never a dead worker.
//   - Any primary-tier failure (breaker open, injected fault, exception,
//     non-finite output, registry failure) routes the whole batch through
//     FallbackChain::Run; only a fault injected into the fallback itself
//     yields per-request Unavailable.
//   - Requests carrying a sanitizer keep-mask run through the model's
//     degraded-mode pathway (RunBatchedInferenceMasked) batched together
//     with clean requests.
//   - The watchdog is ticked every iteration and brackets each model pass so
//     health probes can detect a wedged worker.
//
// The loop runs on a dedicated thread rather than a core::ThreadPool slot:
// the global pool is the substrate the tensor kernels parallelize on via
// ParallelFor, and parking a never-finishing loop there would deadlock any
// Wait() on the pool. One batched forward runs at a time, so the model
// needs no internal synchronization; hot-swap safety comes from pinning the
// registry snapshot for the duration of each batch.
class Batcher {
 public:
  Batcher(BatcherOptions options, RequestQueue* queue, ModelRegistry* registry,
          ServerStats* stats, FallbackChain* fallback,
          BatcherWatchdog* watchdog, OverloadControl* overload);
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  void Start();

  // Returns once the queue is closed and fully drained (every queued
  // request's promise fulfilled) and the worker thread has exited. The queue
  // must already be closed or Join blocks indefinitely.
  void Join();

 private:
  void WorkerLoop();
  // Rejects every expired request in the queue and the holdover deque.
  void SweepExpired(Clock::time_point now);
  // Terminates `req` with DeadlineExceeded (expired, or predicted to miss
  // its deadline given the current p50 service estimate) and releases its
  // admission slot.
  void RejectExpired(PendingRequest* req);
  // Deadline propagation at dequeue: true when the request's remaining
  // budget is below the p50 batch-execution estimate, so running it would
  // burn a batch slot on a guaranteed miss.
  bool PredictedLate(const PendingRequest& req, Clock::time_point now) const;
  // Executes one assembled batch; `assembly_seconds` is how long the batch
  // was held open.
  void RunBatch(std::vector<PendingRequest> batch, double assembly_seconds);
  // Runs the primary model pass for `model_batch` ([B, P, N, C] with
  // calendar features; `keep_pos` is [B, P, N] or undefined when every
  // request is clean). Returns false — after recording the breaker outcome —
  // on injected fault, exception, or non-finite output.
  bool RunPrimary(const ModelRegistry::Served& served,
                  const data::Batch& model_batch,
                  const tensor::Tensor& keep_pos, tensor::Tensor* denorm);

  BatcherOptions options_;
  RequestQueue* queue_;
  ModelRegistry* registry_;
  ServerStats* stats_;
  FallbackChain* fallback_;
  BatcherWatchdog* watchdog_;
  OverloadControl* overload_;
  std::thread worker_;
  bool started_ = false;
  // Last served model version, to notice hot-swaps for the stats and to
  // reset the primary breaker (a fresh model deserves a clean window).
  int64_t last_version_ = 0;
  // Popped requests whose shape did not match the batch being assembled;
  // they lead the next batch so nothing is ever dropped or reordered
  // indefinitely.
  std::deque<PendingRequest> holdover_;
};

}  // namespace sstban::serving

#endif  // SSTBAN_SERVING_BATCHER_H_

#ifndef SSTBAN_SERVING_SERVER_STATS_H_
#define SSTBAN_SERVING_SERVER_STATS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/histogram.h"
#include "core/timer.h"

namespace sstban::serving {

// Observability for the forecast server: per-stage latency histograms with
// quantile extraction, throughput and rejection counters, queue-depth
// gauges, and the batch-size distribution. Counters are atomics and the
// histograms sit behind one short-lived mutex, so recording stays cheap on
// the request path. All latencies are recorded in seconds.
class ServerStats {
 public:
  ServerStats();

  // -- Stage latencies -------------------------------------------------------
  void RecordQueueWait(double seconds);   // submit -> popped by the batcher
  void RecordAssembly(double seconds);    // first pop -> batch sealed
  void RecordForward(double seconds);     // one batched model pass
  void RecordEndToEnd(double seconds);    // submit -> promise fulfilled

  // -- Counters --------------------------------------------------------------
  void RecordAccepted() { accepted_.fetch_add(1); }
  void RecordCompleted() { completed_.fetch_add(1); }
  void RecordRejectedFull() { rejected_full_.fetch_add(1); }
  void RecordRejectedDeadline() { rejected_deadline_.fetch_add(1); }
  void RecordRejectedInvalid() { rejected_invalid_.fetch_add(1); }
  void RecordHotSwap() { hot_swaps_.fetch_add(1); }

  // One executed batch of the given size (also feeds the distribution).
  void RecordBatch(int64_t batch_size);

  // Gauge update; tracks the high-water mark as a side effect.
  void UpdateQueueDepth(int64_t depth);

  // -- Reporting -------------------------------------------------------------
  struct StageSummary {
    int64_t count = 0;
    double mean = 0.0, p50 = 0.0, p90 = 0.0, p99 = 0.0, max = 0.0;
  };
  // Process-wide memory picture at snapshot time, read from the global
  // MemoryTracker: live/peak tensor bytes plus the StoragePool's recycling
  // counters (how much allocation work the pool absorbed for the serving
  // hot path).
  struct MemorySummary {
    int64_t live_bytes = 0, peak_bytes = 0;
    int64_t pool_hits = 0, pool_misses = 0;
    double pool_hit_rate = 0.0;  // hits / (hits + misses)
    int64_t pool_recycled_bytes = 0;
    int64_t pool_resident_bytes = 0, pool_peak_resident_bytes = 0;
    int64_t heap_allocs = 0;
  };
  struct Snapshot {
    StageSummary queue_wait, assembly, forward, end_to_end;
    int64_t accepted = 0, completed = 0, batches = 0;
    int64_t rejected_full = 0, rejected_deadline = 0, rejected_invalid = 0;
    int64_t hot_swaps = 0;
    int64_t queue_depth = 0, peak_queue_depth = 0;
    std::vector<std::pair<int64_t, int64_t>> batch_sizes;  // (size, count)
    double elapsed_seconds = 0.0;
    double requests_per_second = 0.0;  // completed / elapsed
    MemorySummary memory;
  };
  Snapshot TakeSnapshot() const;

  // Human-readable text table of the snapshot.
  std::string ReportTable() const;

  // The same snapshot as a single JSON object (machine-readable dump).
  std::string ReportJson() const;

 private:
  core::Timer uptime_;

  mutable std::mutex mutex_;  // guards the histograms and batch_sizes_
  core::Histogram queue_wait_, assembly_, forward_, end_to_end_;
  std::map<int64_t, int64_t> batch_sizes_;

  std::atomic<int64_t> accepted_{0}, completed_{0}, batches_{0};
  std::atomic<int64_t> rejected_full_{0}, rejected_deadline_{0},
      rejected_invalid_{0};
  std::atomic<int64_t> hot_swaps_{0};
  std::atomic<int64_t> queue_depth_{0}, peak_queue_depth_{0};
};

}  // namespace sstban::serving

#endif  // SSTBAN_SERVING_SERVER_STATS_H_

#ifndef SSTBAN_SERVING_SERVER_STATS_H_
#define SSTBAN_SERVING_SERVER_STATS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/histogram.h"
#include "core/timer.h"
#include "serving/request.h"

namespace sstban::serving {

// Observability for the forecast server: per-stage latency histograms with
// quantile extraction, throughput and rejection counters, queue-depth
// gauges, and the batch-size distribution. Counters are atomics and the
// histograms sit behind one short-lived mutex, so recording stays cheap on
// the request path. All latencies are recorded in seconds.
class ServerStats {
 public:
  ServerStats();

  // -- Stage latencies -------------------------------------------------------
  void RecordQueueWait(double seconds);   // submit -> popped by the batcher
  void RecordAssembly(double seconds);    // first pop -> batch sealed
  void RecordForward(double seconds);     // one batched model pass
  void RecordEndToEnd(double seconds);    // submit -> promise fulfilled

  // -- Counters --------------------------------------------------------------
  void RecordAccepted() { accepted_.fetch_add(1); }
  void RecordCompleted() { completed_.fetch_add(1); }
  void RecordRejectedFull() { rejected_full_.fetch_add(1); }
  void RecordRejectedDeadline() { rejected_deadline_.fetch_add(1); }
  void RecordRejectedInvalid() { rejected_invalid_.fetch_add(1); }
  void RecordHotSwap() { hot_swaps_.fetch_add(1); }

  // -- Resilience counters ---------------------------------------------------
  // Strict-mode sanitizer rejection (NaN/Inf on a non-degradable channel).
  void RecordRejectedNonFinite() {
    rejected_invalid_.fetch_add(1);
    rejected_nonfinite_.fetch_add(1);
  }
  // Submit failed fast because the batcher watchdog reported a wedged worker.
  void RecordRejectedWedged() { rejected_wedged_.fetch_add(1); }
  // Expired requests removed by the pre-batch queue sweep.
  void RecordSweptExpired(int64_t n) { swept_expired_.fetch_add(n); }

  // -- Overload-control counters ---------------------------------------------
  // Push refused because the queue was closed (shutdown, not load shed —
  // kept apart from rejected_full so the two failure modes are tellable).
  void RecordRejectedShutdown() { rejected_shutdown_.fetch_add(1); }
  // Shed by the adaptive admission controller (concurrency limit).
  void RecordShedAdmission() { shed_admission_.fetch_add(1); }
  // Shed (or soon-to-miss-deadline rejected) by the brownout ladder.
  void RecordShedBrownout() { shed_brownout_.fetch_add(1); }
  // Low-criticality request routed to the fallback tiers by brownout.
  void RecordForcedFallback() { forced_fallback_.fetch_add(1); }
  // Deadline propagation: rejected at Submit (remaining < p50 end-to-end).
  void RecordRejectedPredictedLate() { rejected_predicted_late_.fetch_add(1); }
  // Deadline propagation: rejected at dequeue (remaining < p50 service).
  void RecordSweptPredictedLate() { swept_predicted_late_.fetch_add(1); }
  // One completed request, bucketed by input degradation level.
  void RecordDegradation(DegradationLevel level);
  // One completed request, bucketed by the tier that answered.
  void RecordServedBy(ServedBy tier);

  // One executed batch of the given size (also feeds the distribution).
  void RecordBatch(int64_t batch_size);

  // Gauge update; tracks the high-water mark as a side effect.
  void UpdateQueueDepth(int64_t depth);

  // -- Reporting -------------------------------------------------------------
  struct StageSummary {
    int64_t count = 0;
    double mean = 0.0, p50 = 0.0, p90 = 0.0, p99 = 0.0, max = 0.0;
  };
  // Process-wide memory picture at snapshot time, read from the global
  // MemoryTracker: live/peak tensor bytes plus the StoragePool's recycling
  // counters (how much allocation work the pool absorbed for the serving
  // hot path).
  struct MemorySummary {
    int64_t live_bytes = 0, peak_bytes = 0;
    int64_t pool_hits = 0, pool_misses = 0;
    double pool_hit_rate = 0.0;  // hits / (hits + misses)
    int64_t pool_recycled_bytes = 0;
    int64_t pool_resident_bytes = 0, pool_peak_resident_bytes = 0;
    int64_t heap_allocs = 0;
  };
  // Circuit-breaker / fallback-chain picture, filled in at snapshot time by
  // the provider the ForecastServer registers (the breakers live in the
  // FallbackChain, not here).
  struct ResilienceSummary {
    bool fallback_enabled = false, var_available = false;
    std::string primary_breaker_state = "closed";
    std::string var_breaker_state = "closed";
    int64_t primary_trips = 0, primary_probes = 0, primary_rejected = 0;
    int64_t var_trips = 0, var_probes = 0, var_rejected = 0;
    int64_t cached_sensors = 0;
  };
  using ResilienceProvider = std::function<ResilienceSummary()>;
  void SetResilienceProvider(ResilienceProvider provider);

  // Overload-control picture (admission limit, brownout level, deadline
  // estimators), filled in at snapshot time by the provider ForecastServer
  // registers — the controllers live in OverloadControl, not here.
  struct OverloadSummary {
    bool admission_enabled = false;
    double admission_limit = 0.0;
    int64_t in_flight = 0;
    double min_batch_latency_ms = 0.0;
    int64_t shed_interactive = 0, shed_batch = 0, shed_whatif = 0;
    int64_t admission_backoffs = 0;
    bool brownout_enabled = false;
    std::string brownout_level = "normal";
    int64_t brownout_probe_bytes = 0;
    int64_t brownout_steps_up = 0, brownout_steps_down = 0;
    double submit_p50_ms = 0.0;   // end-to-end estimate behind Submit's gate
    double service_p50_ms = 0.0;  // batch-execution estimate at dequeue
  };
  using OverloadProvider = std::function<OverloadSummary()>;
  void SetOverloadProvider(OverloadProvider provider);

  struct Snapshot {
    StageSummary queue_wait, assembly, forward, end_to_end;
    int64_t accepted = 0, completed = 0, batches = 0;
    int64_t rejected_full = 0, rejected_deadline = 0, rejected_invalid = 0;
    int64_t hot_swaps = 0;
    int64_t queue_depth = 0, peak_queue_depth = 0;
    std::vector<std::pair<int64_t, int64_t>> batch_sizes;  // (size, count)
    double elapsed_seconds = 0.0;
    double requests_per_second = 0.0;  // completed / elapsed
    // Degraded-request histogram (completed requests per degradation level)
    // and per-tier serve counts.
    int64_t degraded_none = 0, degraded_partial = 0, degraded_heavy = 0;
    int64_t served_model = 0, served_var = 0, served_cache = 0;
    int64_t rejected_nonfinite = 0, rejected_wedged = 0, swept_expired = 0;
    int64_t rejected_shutdown = 0;
    int64_t shed_admission = 0, shed_brownout = 0, forced_fallback = 0;
    int64_t rejected_predicted_late = 0, swept_predicted_late = 0;
    ResilienceSummary resilience;
    OverloadSummary overload;
    MemorySummary memory;
  };
  Snapshot TakeSnapshot() const;

  // Human-readable text table of the snapshot.
  std::string ReportTable() const;

  // The same snapshot as a single JSON object (machine-readable dump).
  std::string ReportJson() const;

 private:
  core::Timer uptime_;

  mutable std::mutex mutex_;  // guards the histograms and batch_sizes_
  core::Histogram queue_wait_, assembly_, forward_, end_to_end_;
  std::map<int64_t, int64_t> batch_sizes_;

  std::atomic<int64_t> accepted_{0}, completed_{0}, batches_{0};
  std::atomic<int64_t> rejected_full_{0}, rejected_deadline_{0},
      rejected_invalid_{0};
  std::atomic<int64_t> hot_swaps_{0};
  std::atomic<int64_t> queue_depth_{0}, peak_queue_depth_{0};
  std::atomic<int64_t> degraded_none_{0}, degraded_partial_{0},
      degraded_heavy_{0};
  std::atomic<int64_t> served_model_{0}, served_var_{0}, served_cache_{0};
  std::atomic<int64_t> rejected_nonfinite_{0}, rejected_wedged_{0},
      swept_expired_{0};
  std::atomic<int64_t> rejected_shutdown_{0};
  std::atomic<int64_t> shed_admission_{0}, shed_brownout_{0},
      forced_fallback_{0};
  std::atomic<int64_t> rejected_predicted_late_{0}, swept_predicted_late_{0};
  ResilienceProvider resilience_provider_;  // set before Start, then read-only
  OverloadProvider overload_provider_;      // same lifecycle
};

}  // namespace sstban::serving

#endif  // SSTBAN_SERVING_SERVER_STATS_H_

#include "serving/request_queue.h"

#include "core/check.h"
#include "core/string_util.h"

namespace sstban::serving {

RequestQueue::RequestQueue(int64_t capacity) : capacity_(capacity) {
  SSTBAN_CHECK_GT(capacity, 0);
}

core::Status RequestQueue::Push(PendingRequest* req, PushReject* cause) {
  SSTBAN_CHECK(req != nullptr);
  PushReject why = PushReject::kNone;
  if (cause != nullptr) *cause = why;
  if (req->Expired(Clock::now())) {
    if (cause != nullptr) *cause = PushReject::kExpired;
    return core::Status::DeadlineExceeded("deadline passed before enqueue");
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_) {
      why = PushReject::kClosed;
    } else if (static_cast<int64_t>(items_.size()) >= capacity_) {
      why = PushReject::kFull;
    } else {
      items_.push_back(std::move(*req));
    }
  }
  if (why != PushReject::kNone) {
    if (cause != nullptr) *cause = why;
    return why == PushReject::kClosed
               ? core::Status::Unavailable(
                     "request queue is shut down (server stopping)")
               : core::Status::Unavailable(core::StrFormat(
                     "request queue is full (capacity %lld): load shed",
                     static_cast<long long>(capacity_)));
  }
  not_empty_.notify_one();
  return core::Status::Ok();
}

std::optional<PendingRequest> RequestQueue::PopBlocking() {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return std::nullopt;
  PendingRequest req = std::move(items_.front());
  items_.pop_front();
  return req;
}

std::optional<PendingRequest> RequestQueue::TryPop() {
  std::unique_lock<std::mutex> lock(mutex_);
  if (items_.empty()) return std::nullopt;
  PendingRequest req = std::move(items_.front());
  items_.pop_front();
  return req;
}

std::optional<PendingRequest> RequestQueue::PopUntil(Clock::time_point until) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait_until(lock, until,
                        [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return std::nullopt;
  PendingRequest req = std::move(items_.front());
  items_.pop_front();
  return req;
}

int64_t RequestQueue::SweepExpired(
    Clock::time_point now,
    const std::function<void(PendingRequest&&)>& reject) {
  // Collect under the lock, complete promises outside it: a promise's
  // continuation must never run while the queue mutex is held.
  std::vector<PendingRequest> expired;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (auto it = items_.begin(); it != items_.end();) {
      if (it->Expired(now)) {
        expired.push_back(std::move(*it));
        it = items_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (PendingRequest& req : expired) reject(std::move(req));
  return static_cast<int64_t>(expired.size());
}

void RequestQueue::Close() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
}

bool RequestQueue::closed() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return closed_;
}

int64_t RequestQueue::depth() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return static_cast<int64_t>(items_.size());
}

}  // namespace sstban::serving

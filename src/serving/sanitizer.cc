#include "serving/sanitizer.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"
#include "core/string_util.h"
#include "serving/request.h"

namespace sstban::serving {

const char* DegradationLevelName(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::kNone:
      return "none";
    case DegradationLevel::kPartial:
      return "partial";
    case DegradationLevel::kHeavy:
      return "heavy";
  }
  return "unknown";
}

const char* CriticalityName(Criticality criticality) {
  switch (criticality) {
    case Criticality::kInteractive:
      return "interactive";
    case Criticality::kBatch:
      return "batch";
    case Criticality::kWhatIf:
      return "what-if";
  }
  return "unknown";
}

const char* ServedByName(ServedBy tier) {
  switch (tier) {
    case ServedBy::kModel:
      return "model";
    case ServedBy::kVarBaseline:
      return "var";
    case ServedBy::kCache:
      return "cache";
  }
  return "unknown";
}

InputSanitizer::InputSanitizer(SanitizerOptions options)
    : options_(std::move(options)) {
  SSTBAN_CHECK_GT(options_.heavy_fraction, 0.0);
  for (int64_t channel : options_.degradable_channels) {
    SSTBAN_CHECK_GE(channel, 0);
  }
}

bool InputSanitizer::ChannelDegradable(int64_t channel) const {
  return std::find(options_.degradable_channels.begin(),
                   options_.degradable_channels.end(),
                   channel) != options_.degradable_channels.end();
}

core::StatusOr<SanitizeResult> InputSanitizer::Sanitize(
    tensor::Tensor* window) const {
  SSTBAN_CHECK(window != nullptr && window->rank() == 3);
  const int64_t p = window->dim(0), n = window->dim(1), c = window->dim(2);
  SanitizeResult result;
  result.total_positions = p * n;

  // Pass 1: find the first broken reading without touching anything — the
  // fully-observed hot path is a single scan, no allocation, no writes.
  float* data = window->data();
  const int64_t elems = p * n * c;
  const float sentinel =
      options_.missing_sentinel.value_or(0.0f);  // unused unless set
  const bool has_sentinel = options_.missing_sentinel.has_value();
  int64_t first_bad = -1;
  for (int64_t i = 0; i < elems; ++i) {
    if (!std::isfinite(data[i]) || (has_sentinel && data[i] == sentinel)) {
      first_bad = i;
      break;
    }
  }
  if (first_bad < 0) return result;

  // Re-point the request at a private copy before scrubbing: tensors share
  // storage, and the broken window may still be the client's buffer.
  *window = window->Clone();
  data = window->data();

  // Something is broken: build the [P, N] keep mask, scrubbing degradable
  // readings and rejecting on the first strict one. Masking is per position
  // (the encoder's keep mask is [B, P, N]), so one broken degradable channel
  // hides every channel of that (step, sensor) — the same granularity the
  // self-supervised branch trains with.
  result.keep_pos = tensor::Tensor::Ones(tensor::Shape{p, n});
  float* keep = result.keep_pos.data();
  for (int64_t i = first_bad; i < elems; ++i) {
    const bool broken =
        !std::isfinite(data[i]) || (has_sentinel && data[i] == sentinel);
    if (!broken) continue;
    const int64_t channel = i % c;
    const int64_t position = i / c;  // flattened (step, sensor)
    if (!ChannelDegradable(channel)) {
      return core::Status::InvalidArgument(core::StrFormat(
          "non-finite or flagged-missing reading at step %lld, sensor %lld, "
          "channel %lld (strict channel; mark it degradable to allow "
          "masked inference)",
          static_cast<long long>(position / n),
          static_cast<long long>(position % n),
          static_cast<long long>(channel)));
    }
    if (keep[position] != 0.0f) {
      keep[position] = 0.0f;
      ++result.masked_positions;
    }
    // Scrub so the value cannot poison normalization or a coalesced batch;
    // the masked pathway never reads it (any finite value * 0-mask = 0).
    data[i] = 0.0f;
  }
  if (options_.reject_fully_masked &&
      result.masked_positions == result.total_positions) {
    return core::Status::InvalidArgument(
        "every position of the window is missing; nothing to condition on");
  }
  return result;
}

}  // namespace sstban::serving

#ifndef SSTBAN_SERVING_FALLBACK_H_
#define SSTBAN_SERVING_FALLBACK_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "baselines/var_model.h"
#include "core/status.h"
#include "data/dataset.h"
#include "data/normalizer.h"
#include "serving/circuit_breaker.h"
#include "serving/request.h"

namespace sstban::serving {

// Last-known-good forecast per sensor: every successful batch refreshes each
// sensor's most recent [Q, C] forecast column; the terminal fallback tier
// re-serves those columns. Sensors never forecast successfully (or after a
// geometry change) degrade further to persistence — the sensor's last
// observed reading repeated across the horizon — so assembly is infallible.
class LastGoodCache {
 public:
  // Records a successful [Q, N, C] raw-scale forecast. `logical_step` is the
  // first forecast step's absolute slice index (the producing request's
  // first_step) — the timestamp staleness is measured against.
  void Update(const tensor::Tensor& forecast, int64_t logical_step = 0);

  // Builds a [Q, N, C] forecast for a request whose raw [P, N, C] window is
  // `recent`: the cached column where one exists *and is fresh enough*,
  // persistence otherwise. `now_step` is the requesting window's first_step;
  // a cached entry older than `max_age_steps` (< 0 = unbounded) is refused
  // and the request falls to the persistence floor — a dead model must not
  // keep serving an arbitrarily stale forecast forever. When the cached entry
  // answers, `*age_out` (if non-null) is set to its age in steps (>= 0);
  // persistence reports -1.
  tensor::Tensor Assemble(const tensor::Tensor& recent, int64_t output_len,
                          int64_t now_step = 0, int64_t max_age_steps = -1,
                          int64_t* age_out = nullptr) const;

  int64_t cached_sensors() const;
  // Logical step of the cached forecast; -1 before the first Update.
  int64_t cached_step() const;

 private:
  mutable std::mutex mutex_;
  tensor::Tensor last_;  // [Q, N, C]; undefined before the first Update
  int64_t last_step_ = -1;
};

struct FallbackOptions {
  // Disabling the chain turns every model-tier fault into Unavailable (the
  // pre-resilience behavior, kept for A/B benchmarks).
  bool enabled = true;
  // Oldest last-known-good entry (in logical slice steps, relative to the
  // requesting window's first_step) the cache tier may serve; -1 = unbounded
  // (the pre-staleness behavior). Beyond the horizon requests fall to the
  // persistence floor.
  int64_t max_cache_age_steps = -1;
  CircuitBreakerOptions primary_breaker;
  CircuitBreakerOptions var_breaker;
};

// The degraded tiers behind the primary model: SSTBAN -> VAR baseline ->
// last-known-good cache. The batcher consults primary_breaker() before the
// model pass; when the pass fails (fault, exception, non-finite output) or
// the breaker is open, Run executes the remaining tiers for the whole batch.
// Each tier has its own circuit breaker; the cache tier has none because it
// cannot fail. Thread-compatible: Run is only called from the batcher
// thread, the cache and breakers are internally locked for probes/stats.
class FallbackChain {
 public:
  explicit FallbackChain(FallbackOptions options);

  // Installs a *fitted* VAR baseline (see VarModel::FitSeries). Without one
  // the VAR tier is skipped. Must be called before the server starts.
  void SetVarBaseline(std::unique_ptr<baselines::VarModel> var);

  // Runs the chain for one assembled batch (batch.x is the scrubbed raw
  // [B, P, N, C] with calendar features). On success fills one [Q, N, C]
  // slice per request and reports which tier answered. `normalizer` may be
  // nullptr when no model snapshot could be pinned (registry fault before
  // the first install) — the VAR tier needs the serving normalization stats,
  // so it is skipped and the cache tier answers. `first_steps` carries each
  // request's first_step (the cache tier's logical clock for staleness;
  // empty = treat every request as step 0). When `cache_ages` is non-null it
  // is filled with one entry per request: the served cache entry's age in
  // steps, or -1 when the answer did not come from the cached column. Fails
  // only when the serve_fallback failpoint injects an error — the chaos
  // tests' hook for "the fallback itself broke".
  core::Status Run(const data::Batch& batch, const data::Normalizer* normalizer,
                   int64_t output_len, const std::vector<int64_t>& first_steps,
                   std::vector<tensor::Tensor>* slices, ServedBy* served_by,
                   std::vector<int64_t>* cache_ages = nullptr);

  bool enabled() const { return options_.enabled; }
  bool has_var_baseline() const { return var_ != nullptr; }
  CircuitBreaker& primary_breaker() { return primary_breaker_; }
  const CircuitBreaker& primary_breaker() const { return primary_breaker_; }
  CircuitBreaker& var_breaker() { return var_breaker_; }
  const CircuitBreaker& var_breaker() const { return var_breaker_; }
  LastGoodCache& cache() { return cache_; }
  const LastGoodCache& cache() const { return cache_; }

 private:
  FallbackOptions options_;
  CircuitBreaker primary_breaker_;
  CircuitBreaker var_breaker_;
  std::unique_ptr<baselines::VarModel> var_;
  LastGoodCache cache_;
};

}  // namespace sstban::serving

#endif  // SSTBAN_SERVING_FALLBACK_H_

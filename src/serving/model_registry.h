#ifndef SSTBAN_SERVING_MODEL_REGISTRY_H_
#define SSTBAN_SERVING_MODEL_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "core/status.h"
#include "data/normalizer.h"
#include "training/model.h"

namespace sstban::serving {

// Versioned model store enabling zero-downtime hot-swap. The registry
// publishes an immutable shared_ptr snapshot; the batcher pins one snapshot
// per batch, so an in-flight batch finishes on the weights it started with
// while the next batch picks up a freshly swapped version. A failed load
// never unpublishes the current version (rollback-by-not-committing).
class ModelRegistry {
 public:
  // Builds an architecture-compatible empty model for a checkpoint to load
  // into. Called once per LoadVersion; must be thread-compatible.
  using ModelFactory =
      std::function<std::unique_ptr<training::TrafficModel>()>;

  struct Served {
    std::unique_ptr<training::TrafficModel> model;
    data::Normalizer normalizer;
    int64_t version = 0;
    std::string source;  // checkpoint path or "<direct>"
  };

  // `normalizer` is fixed per registry: checkpoints carry weights only, and
  // the training-time normalization statistics must travel with the model
  // geometry the factory encodes.
  ModelRegistry(ModelFactory factory, data::Normalizer normalizer);

  // Constructs a fresh model via the factory, validates that `path` loads
  // cleanly into it (LoadParameters is all-or-nothing and CRC-verified),
  // and atomically publishes it as the next version. A corrupt, truncated,
  // or unreadable checkpoint returns kFailedPrecondition; the previously
  // served version stays installed — a swap can never leave a torn model.
  core::Status LoadVersion(const std::string& path);

  // Publishes an already-built model (initial deployment, tests).
  void Install(std::unique_ptr<training::TrafficModel> model,
               std::string source = "<direct>");

  // Snapshot of the currently served version; nullptr before the first
  // Install/LoadVersion. Callers keep the shared_ptr alive for as long as
  // they use the model — the registry never mutates a published snapshot.
  std::shared_ptr<const Served> current() const;

  // 0 before anything is served.
  int64_t current_version() const;

 private:
  void Publish(std::unique_ptr<training::TrafficModel> model,
               std::string source);

  ModelFactory factory_;
  data::Normalizer normalizer_;
  mutable std::mutex mutex_;
  std::shared_ptr<const Served> current_;
  int64_t next_version_ = 1;
};

}  // namespace sstban::serving

#endif  // SSTBAN_SERVING_MODEL_REGISTRY_H_

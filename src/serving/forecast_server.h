#ifndef SSTBAN_SERVING_FORECAST_SERVER_H_
#define SSTBAN_SERVING_FORECAST_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "baselines/var_model.h"
#include "core/status.h"
#include "serving/batcher.h"
#include "serving/fallback.h"
#include "serving/health.h"
#include "serving/model_registry.h"
#include "serving/overload/overload.h"
#include "serving/request.h"
#include "serving/request_queue.h"
#include "serving/sanitizer.h"
#include "serving/server_stats.h"

namespace sstban::serving {

struct ServerOptions {
  // Window geometry every request must match.
  int64_t input_len = 24;
  int64_t output_len = 24;
  int64_t steps_per_day = 96;
  // Expected node/feature counts; validated per request when >= 0.
  int64_t num_nodes = -1;
  int64_t num_features = -1;
  // Micro-batching knobs (see BatcherOptions).
  int64_t max_batch = 8;
  std::chrono::microseconds max_wait{2000};
  // Backpressure bound: Submit sheds load with Unavailable beyond this.
  int64_t queue_capacity = 256;
  // Input-boundary policy for NaN/Inf/sentinel readings (strict everywhere
  // by default; list degradable channels to enable masked inference).
  SanitizerOptions sanitizer;
  // Degraded tiers + circuit breakers behind the primary model.
  FallbackOptions fallback;
  // A batch in flight longer than this means the worker is wedged: the
  // readiness probe goes false and Submit fails fast with Unavailable.
  std::chrono::milliseconds stall_budget{2000};
  // Which forward the batcher's primary pass uses: the autograd tape or the
  // shape-specialized static executor (kAuto reads SSTBAN_EXECUTOR once).
  training::ExecutorMode executor_mode = training::ExecutorMode::kAuto;
  // Numeric mode for the executor fast path (defaults to SSTBAN_PRECISION);
  // see BatcherOptions::precision.
  exec::PrecisionMode precision = exec::ResolvePrecisionMode();
  // Overload control: adaptive admission, deadline propagation, and the
  // memory-pressure brownout ladder (defaults read SSTBAN_ADMISSION /
  // SSTBAN_BROWNOUT_WATERMARKS once).
  OverloadOptions overload = ResolveOverloadOptions();
};

// The multi-client inference facade: Submit validates, sanitizes, and
// enqueues a request and returns a future; the batcher coalesces queued
// requests into single batched model passes against whatever version the
// ModelRegistry currently serves, falling back to the VAR baseline or the
// last-known-good cache when the primary tier is broken (see FallbackChain).
// Submit is safe from any number of client threads.
// Lifecycle: Start -> Submit... -> Shutdown (graceful: the queue stops
// accepting, everything already queued is still executed, then the worker
// joins). The registry is borrowed and may be hot-swapped concurrently.
class ForecastServer {
 public:
  ForecastServer(ServerOptions options, ModelRegistry* registry);
  ~ForecastServer();

  ForecastServer(const ForecastServer&) = delete;
  ForecastServer& operator=(const ForecastServer&) = delete;

  // FailedPrecondition when the registry has no model installed yet.
  core::Status Start();

  // Installs a fitted VAR baseline as the tier-2 fallback (see
  // FallbackChain::SetVarBaseline). Must be called before Start.
  void SetVarBaseline(std::unique_ptr<baselines::VarModel> var);

  // Validates and sanitizes the request and enqueues it. Errors:
  //   InvalidArgument    - window shape mismatch, negative first_step, or a
  //                        NaN/Inf/sentinel reading on a strict channel
  //   Unavailable        - server not running, shutting down, queue full,
  //                        or the batcher watchdog reports a wedged worker
  //   DeadlineExceeded   - the deadline already passed
  // On success the future later yields an annotated ForecastResponse (or a
  // terminal error that struck while the request waited).
  core::StatusOr<ForecastFuture> Submit(ForecastRequest request);

  // One readiness/liveness evaluation (cheap; safe from any thread).
  HealthReport CheckHealth() const;

  // Graceful shutdown: stops accepting, drains in-flight requests, joins
  // the worker. Idempotent.
  void Shutdown();

  bool running() const { return running_.load(); }
  const ServerOptions& options() const { return options_; }
  const ServerStats& stats() const { return stats_; }
  const FallbackChain& fallback() const { return fallback_; }
  FallbackChain& fallback() { return fallback_; }
  const BatcherWatchdog& watchdog() const { return watchdog_; }
  const OverloadControl& overload() const { return overload_; }
  OverloadControl& overload() { return overload_; }

 private:
  ServerOptions options_;
  ModelRegistry* registry_;
  ServerStats stats_;
  InputSanitizer sanitizer_;
  FallbackChain fallback_;
  BatcherWatchdog watchdog_;
  OverloadControl overload_;
  RequestQueue queue_;
  Batcher batcher_;
  std::atomic<bool> running_{false};
  bool started_ = false;
};

}  // namespace sstban::serving

#endif  // SSTBAN_SERVING_FORECAST_SERVER_H_

#include "serving/circuit_breaker.h"

#include <algorithm>
#include <utility>

#include "core/check.h"

namespace sstban::serving {

CircuitBreaker::CircuitBreaker(CircuitBreakerOptions options, NowFn now)
    : options_(options), now_(std::move(now)) {
  SSTBAN_CHECK_GT(options_.window, 0);
  SSTBAN_CHECK_GT(options_.min_samples, 0);
  SSTBAN_CHECK_LE(options_.min_samples, options_.window);
  SSTBAN_CHECK_GT(options_.probe_successes_to_close, 0);
  if (now_ == nullptr) now_ = [] { return Clock::now(); };
  // Fixed-capacity ring + scratch, so the closed-state hot path never
  // allocates after construction.
  ring_.resize(static_cast<size_t>(options_.window), 0.0);
  scratch_.reserve(static_cast<size_t>(options_.window));
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen: {
      if (now_() < open_until_) {
        ++stats_.rejected;
        return false;
      }
      state_ = State::kHalfOpen;
      half_open_in_flight_ = 1;
      half_open_successes_ = 0;
      ++stats_.probes;
      return true;
    }
    case State::kHalfOpen: {
      if (half_open_in_flight_ >= options_.probe_successes_to_close) {
        ++stats_.rejected;
        return false;
      }
      ++half_open_in_flight_;
      ++stats_.probes;
      return true;
    }
  }
  return false;
}

void CircuitBreaker::RecordSuccess(double latency_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == State::kHalfOpen) {
    half_open_in_flight_ = std::max<int64_t>(half_open_in_flight_ - 1, 0);
    if (++half_open_successes_ >= options_.probe_successes_to_close) {
      state_ = State::kClosed;
      ring_count_ = 0;
      ring_head_ = 0;
      window_failures_ = 0;
      stats_.consecutive_trips = 0;
    }
    return;
  }
  if (state_ != State::kClosed) return;  // stale in-flight from before a trip
  PushOutcomeLocked(std::max(latency_seconds, 0.0));
  MaybeTripLocked(now_());
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == State::kHalfOpen) {
    half_open_in_flight_ = std::max<int64_t>(half_open_in_flight_ - 1, 0);
    OpenLocked(now_());  // a failed probe re-opens with doubled cooldown
    return;
  }
  if (state_ != State::kClosed) return;
  PushOutcomeLocked(kFailureMark);
  MaybeTripLocked(now_());
}

void CircuitBreaker::OnModelSwapped() {
  std::lock_guard<std::mutex> lock(mutex_);
  state_ = State::kClosed;
  ring_count_ = 0;
  ring_head_ = 0;
  window_failures_ = 0;
  half_open_in_flight_ = 0;
  half_open_successes_ = 0;
  stats_.consecutive_trips = 0;
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

const char* CircuitBreaker::StateName() const {
  switch (state()) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

CircuitBreaker::Stats CircuitBreaker::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void CircuitBreaker::PushOutcomeLocked(double outcome) {
  const int64_t capacity = options_.window;
  if (ring_count_ == capacity) {
    if (ring_[static_cast<size_t>(ring_head_)] == kFailureMark) {
      --window_failures_;
    }
  } else {
    ++ring_count_;
  }
  ring_[static_cast<size_t>(ring_head_)] = outcome;
  ring_head_ = (ring_head_ + 1) % capacity;
  if (outcome == kFailureMark) ++window_failures_;
}

void CircuitBreaker::MaybeTripLocked(Clock::time_point now) {
  if (ring_count_ < options_.min_samples) return;
  const double error_rate =
      static_cast<double>(window_failures_) / static_cast<double>(ring_count_);
  if (error_rate >= options_.error_rate_threshold) {
    OpenLocked(now);
    return;
  }
  if (options_.latency_threshold_seconds > 0.0 &&
      WindowQuantileLocked(options_.latency_quantile) >
          options_.latency_threshold_seconds) {
    OpenLocked(now);
  }
}

double CircuitBreaker::WindowQuantileLocked(double q) const {
  scratch_.clear();
  for (int64_t i = 0; i < ring_count_; ++i) {
    double v = ring_[static_cast<size_t>(i)];
    if (v != kFailureMark) scratch_.push_back(v);
  }
  if (scratch_.empty()) return 0.0;
  std::sort(scratch_.begin(), scratch_.end());
  size_t rank = static_cast<size_t>(q * static_cast<double>(scratch_.size()));
  rank = std::min(rank, scratch_.size() - 1);
  return scratch_[rank];
}

void CircuitBreaker::OpenLocked(Clock::time_point now) {
  state_ = State::kOpen;
  ++stats_.trips;
  ++stats_.consecutive_trips;
  // Exponential probe backoff, capped: cooldown * 2^(consecutive - 1).
  auto cooldown = options_.cooldown;
  for (int64_t i = 1; i < stats_.consecutive_trips &&
                      cooldown < options_.max_cooldown;
       ++i) {
    cooldown *= 2;
  }
  cooldown = std::min(cooldown, options_.max_cooldown);
  open_until_ = now + cooldown;
  ring_count_ = 0;
  ring_head_ = 0;
  window_failures_ = 0;
  half_open_in_flight_ = 0;
  half_open_successes_ = 0;
}

}  // namespace sstban::serving

#include "serving/server_stats.h"

#include "core/memory_tracker.h"
#include "core/string_util.h"

namespace sstban::serving {

namespace {

ServerStats::StageSummary Summarize(const core::Histogram& h) {
  ServerStats::StageSummary s;
  s.count = h.count();
  s.mean = h.mean();
  s.p50 = h.Quantile(0.50);
  s.p90 = h.Quantile(0.90);
  s.p99 = h.Quantile(0.99);
  s.max = h.max();
  return s;
}

void AppendStageRow(std::string* out, const char* name,
                    const ServerStats::StageSummary& s) {
  *out += core::StrFormat(
      "  %-14s %8lld  %9.3f  %9.3f  %9.3f  %9.3f  %9.3f\n", name,
      static_cast<long long>(s.count), s.mean * 1e3, s.p50 * 1e3, s.p90 * 1e3,
      s.p99 * 1e3, s.max * 1e3);
}

void AppendStageJson(std::string* out, const char* name,
                     const ServerStats::StageSummary& s, bool trailing_comma) {
  *out += core::StrFormat(
      "    \"%s\": {\"count\": %lld, \"mean_ms\": %.6f, \"p50_ms\": %.6f, "
      "\"p90_ms\": %.6f, \"p99_ms\": %.6f, \"max_ms\": %.6f}%s\n",
      name, static_cast<long long>(s.count), s.mean * 1e3, s.p50 * 1e3,
      s.p90 * 1e3, s.p99 * 1e3, s.max * 1e3, trailing_comma ? "," : "");
}

}  // namespace

ServerStats::ServerStats() = default;

void ServerStats::RecordQueueWait(double seconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  queue_wait_.Record(seconds);
}

void ServerStats::RecordAssembly(double seconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  assembly_.Record(seconds);
}

void ServerStats::RecordForward(double seconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  forward_.Record(seconds);
}

void ServerStats::RecordEndToEnd(double seconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  end_to_end_.Record(seconds);
}

void ServerStats::RecordDegradation(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::kNone:
      degraded_none_.fetch_add(1);
      break;
    case DegradationLevel::kPartial:
      degraded_partial_.fetch_add(1);
      break;
    case DegradationLevel::kHeavy:
      degraded_heavy_.fetch_add(1);
      break;
  }
}

void ServerStats::RecordServedBy(ServedBy tier) {
  switch (tier) {
    case ServedBy::kModel:
      served_model_.fetch_add(1);
      break;
    case ServedBy::kVarBaseline:
      served_var_.fetch_add(1);
      break;
    case ServedBy::kCache:
      served_cache_.fetch_add(1);
      break;
  }
}

void ServerStats::SetResilienceProvider(ResilienceProvider provider) {
  resilience_provider_ = std::move(provider);
}

void ServerStats::SetOverloadProvider(OverloadProvider provider) {
  overload_provider_ = std::move(provider);
}

void ServerStats::RecordBatch(int64_t batch_size) {
  batches_.fetch_add(1);
  std::unique_lock<std::mutex> lock(mutex_);
  ++batch_sizes_[batch_size];
}

void ServerStats::UpdateQueueDepth(int64_t depth) {
  queue_depth_.store(depth);
  int64_t peak = peak_queue_depth_.load();
  while (depth > peak &&
         !peak_queue_depth_.compare_exchange_weak(peak, depth)) {
  }
}

ServerStats::Snapshot ServerStats::TakeSnapshot() const {
  Snapshot snap;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    snap.queue_wait = Summarize(queue_wait_);
    snap.assembly = Summarize(assembly_);
    snap.forward = Summarize(forward_);
    snap.end_to_end = Summarize(end_to_end_);
    snap.batch_sizes.assign(batch_sizes_.begin(), batch_sizes_.end());
  }
  snap.accepted = accepted_.load();
  snap.completed = completed_.load();
  snap.batches = batches_.load();
  snap.rejected_full = rejected_full_.load();
  snap.rejected_deadline = rejected_deadline_.load();
  snap.rejected_invalid = rejected_invalid_.load();
  snap.hot_swaps = hot_swaps_.load();
  snap.queue_depth = queue_depth_.load();
  snap.peak_queue_depth = peak_queue_depth_.load();
  snap.degraded_none = degraded_none_.load();
  snap.degraded_partial = degraded_partial_.load();
  snap.degraded_heavy = degraded_heavy_.load();
  snap.served_model = served_model_.load();
  snap.served_var = served_var_.load();
  snap.served_cache = served_cache_.load();
  snap.rejected_nonfinite = rejected_nonfinite_.load();
  snap.rejected_wedged = rejected_wedged_.load();
  snap.swept_expired = swept_expired_.load();
  snap.rejected_shutdown = rejected_shutdown_.load();
  snap.shed_admission = shed_admission_.load();
  snap.shed_brownout = shed_brownout_.load();
  snap.forced_fallback = forced_fallback_.load();
  snap.rejected_predicted_late = rejected_predicted_late_.load();
  snap.swept_predicted_late = swept_predicted_late_.load();
  if (resilience_provider_) snap.resilience = resilience_provider_();
  if (overload_provider_) snap.overload = overload_provider_();
  snap.elapsed_seconds = uptime_.ElapsedSeconds();
  snap.requests_per_second =
      snap.elapsed_seconds > 0.0
          ? static_cast<double>(snap.completed) / snap.elapsed_seconds
          : 0.0;
  const core::MemoryTracker& mem = core::MemoryTracker::Global();
  snap.memory.live_bytes = mem.live_bytes();
  snap.memory.peak_bytes = mem.peak_bytes();
  snap.memory.pool_hits = mem.pool_hits();
  snap.memory.pool_misses = mem.pool_misses();
  int64_t pool_requests = snap.memory.pool_hits + snap.memory.pool_misses;
  snap.memory.pool_hit_rate =
      pool_requests > 0
          ? static_cast<double>(snap.memory.pool_hits) / pool_requests
          : 0.0;
  snap.memory.pool_recycled_bytes = mem.pool_recycled_bytes();
  snap.memory.pool_resident_bytes = mem.pool_resident_bytes();
  snap.memory.pool_peak_resident_bytes = mem.pool_peak_resident_bytes();
  snap.memory.heap_allocs = mem.heap_allocs();
  return snap;
}

std::string ServerStats::ReportTable() const {
  Snapshot s = TakeSnapshot();
  std::string out;
  out += core::StrFormat(
      "serving stats (%.2fs uptime)\n"
      "  requests: accepted=%lld completed=%lld  throughput=%.1f req/s\n"
      "  rejected: shed-full=%lld shutdown=%lld deadline=%lld invalid=%lld\n"
      "  queue:    depth=%lld peak=%lld   batches=%lld   hot-swaps=%lld\n",
      s.elapsed_seconds, static_cast<long long>(s.accepted),
      static_cast<long long>(s.completed), s.requests_per_second,
      static_cast<long long>(s.rejected_full),
      static_cast<long long>(s.rejected_shutdown),
      static_cast<long long>(s.rejected_deadline),
      static_cast<long long>(s.rejected_invalid),
      static_cast<long long>(s.queue_depth),
      static_cast<long long>(s.peak_queue_depth),
      static_cast<long long>(s.batches), static_cast<long long>(s.hot_swaps));
  out += core::StrFormat("  %-14s %8s  %9s  %9s  %9s  %9s  %9s\n", "stage (ms)",
                         "count", "mean", "p50", "p90", "p99", "max");
  AppendStageRow(&out, "queue_wait", s.queue_wait);
  AppendStageRow(&out, "assembly", s.assembly);
  AppendStageRow(&out, "forward", s.forward);
  AppendStageRow(&out, "end_to_end", s.end_to_end);
  out += "  batch sizes: ";
  for (size_t i = 0; i < s.batch_sizes.size(); ++i) {
    out += core::StrFormat("%s%lldx%lld", i == 0 ? "" : " ",
                           static_cast<long long>(s.batch_sizes[i].first),
                           static_cast<long long>(s.batch_sizes[i].second));
  }
  out += "\n";
  const ResilienceSummary& r = s.resilience;
  out += core::StrFormat(
      "  degraded: none=%lld partial=%lld heavy=%lld   served: model=%lld "
      "var=%lld cache=%lld\n"
      "  resilience: fallback=%s var=%s swept_expired=%lld "
      "rejected_nonfinite=%lld rejected_wedged=%lld cached_sensors=%lld\n"
      "  breaker primary: state=%s trips=%lld probes=%lld rejected=%lld\n"
      "  breaker var:     state=%s trips=%lld probes=%lld rejected=%lld\n",
      static_cast<long long>(s.degraded_none),
      static_cast<long long>(s.degraded_partial),
      static_cast<long long>(s.degraded_heavy),
      static_cast<long long>(s.served_model),
      static_cast<long long>(s.served_var),
      static_cast<long long>(s.served_cache), r.fallback_enabled ? "on" : "off",
      r.var_available ? "on" : "off", static_cast<long long>(s.swept_expired),
      static_cast<long long>(s.rejected_nonfinite),
      static_cast<long long>(s.rejected_wedged),
      static_cast<long long>(r.cached_sensors), r.primary_breaker_state.c_str(),
      static_cast<long long>(r.primary_trips),
      static_cast<long long>(r.primary_probes),
      static_cast<long long>(r.primary_rejected), r.var_breaker_state.c_str(),
      static_cast<long long>(r.var_trips), static_cast<long long>(r.var_probes),
      static_cast<long long>(r.var_rejected));
  const MemorySummary& m = s.memory;
  out += core::StrFormat(
      "  memory:   live=%.1fMB peak=%.1fMB heap-allocs=%lld\n"
      "  pool:     hits=%lld misses=%lld (%.1f%% hit)  recycled=%.1fMB  "
      "resident=%.1fMB peak=%.1fMB\n",
      m.live_bytes / 1e6, m.peak_bytes / 1e6,
      static_cast<long long>(m.heap_allocs),
      static_cast<long long>(m.pool_hits),
      static_cast<long long>(m.pool_misses), m.pool_hit_rate * 100.0,
      m.pool_recycled_bytes / 1e6, m.pool_resident_bytes / 1e6,
      m.pool_peak_resident_bytes / 1e6);
  const OverloadSummary& o = s.overload;
  out += core::StrFormat(
      "  overload: admission=%s limit=%.1f in_flight=%lld min_batch=%.3fms "
      "backoffs=%lld\n"
      "            shed: admission=%lld (int=%lld batch=%lld whatif=%lld) "
      "brownout=%lld forced_fallback=%lld\n"
      "            predicted_late: submit=%lld dequeue=%lld  "
      "p50 est: e2e=%.3fms service=%.3fms\n"
      "  brownout: %s level=%s probe=%.1fMB steps_up=%lld steps_down=%lld\n",
      o.admission_enabled ? "on" : "off", o.admission_limit,
      static_cast<long long>(o.in_flight), o.min_batch_latency_ms,
      static_cast<long long>(o.admission_backoffs),
      static_cast<long long>(s.shed_admission),
      static_cast<long long>(o.shed_interactive),
      static_cast<long long>(o.shed_batch),
      static_cast<long long>(o.shed_whatif),
      static_cast<long long>(s.shed_brownout),
      static_cast<long long>(s.forced_fallback),
      static_cast<long long>(s.rejected_predicted_late),
      static_cast<long long>(s.swept_predicted_late), o.submit_p50_ms,
      o.service_p50_ms, o.brownout_enabled ? "on" : "off",
      o.brownout_level.c_str(), o.brownout_probe_bytes / 1e6,
      static_cast<long long>(o.brownout_steps_up),
      static_cast<long long>(o.brownout_steps_down));
  return out;
}

std::string ServerStats::ReportJson() const {
  Snapshot s = TakeSnapshot();
  std::string out = "{\n";
  out += core::StrFormat(
      "  \"elapsed_seconds\": %.6f,\n"
      "  \"accepted\": %lld,\n"
      "  \"completed\": %lld,\n"
      "  \"requests_per_second\": %.3f,\n"
      "  \"rejected_full\": %lld,\n"
      "  \"rejected_shutdown\": %lld,\n"
      "  \"rejected_deadline\": %lld,\n"
      "  \"rejected_invalid\": %lld,\n"
      "  \"queue_depth\": %lld,\n"
      "  \"peak_queue_depth\": %lld,\n"
      "  \"batches\": %lld,\n"
      "  \"hot_swaps\": %lld,\n",
      s.elapsed_seconds, static_cast<long long>(s.accepted),
      static_cast<long long>(s.completed), s.requests_per_second,
      static_cast<long long>(s.rejected_full),
      static_cast<long long>(s.rejected_shutdown),
      static_cast<long long>(s.rejected_deadline),
      static_cast<long long>(s.rejected_invalid),
      static_cast<long long>(s.queue_depth),
      static_cast<long long>(s.peak_queue_depth),
      static_cast<long long>(s.batches), static_cast<long long>(s.hot_swaps));
  out += "  \"stages\": {\n";
  AppendStageJson(&out, "queue_wait", s.queue_wait, true);
  AppendStageJson(&out, "assembly", s.assembly, true);
  AppendStageJson(&out, "forward", s.forward, true);
  AppendStageJson(&out, "end_to_end", s.end_to_end, false);
  out += "  },\n";
  out += "  \"batch_sizes\": {";
  for (size_t i = 0; i < s.batch_sizes.size(); ++i) {
    out += core::StrFormat("%s\"%lld\": %lld", i == 0 ? "" : ", ",
                           static_cast<long long>(s.batch_sizes[i].first),
                           static_cast<long long>(s.batch_sizes[i].second));
  }
  out += "},\n";
  const ResilienceSummary& r = s.resilience;
  out += core::StrFormat(
      "  \"degraded\": {\"none\": %lld, \"partial\": %lld, \"heavy\": %lld},\n"
      "  \"served_by\": {\"model\": %lld, \"var\": %lld, \"cache\": %lld},\n"
      "  \"resilience\": {\"fallback_enabled\": %s, \"var_available\": %s, "
      "\"swept_expired\": %lld, \"rejected_nonfinite\": %lld, "
      "\"rejected_wedged\": %lld, \"cached_sensors\": %lld, "
      "\"primary_breaker\": {\"state\": %s, \"trips\": %lld, "
      "\"probes\": %lld, \"rejected\": %lld}, "
      "\"var_breaker\": {\"state\": %s, \"trips\": %lld, "
      "\"probes\": %lld, \"rejected\": %lld}},\n",
      static_cast<long long>(s.degraded_none),
      static_cast<long long>(s.degraded_partial),
      static_cast<long long>(s.degraded_heavy),
      static_cast<long long>(s.served_model),
      static_cast<long long>(s.served_var),
      static_cast<long long>(s.served_cache),
      r.fallback_enabled ? "true" : "false",
      r.var_available ? "true" : "false",
      static_cast<long long>(s.swept_expired),
      static_cast<long long>(s.rejected_nonfinite),
      static_cast<long long>(s.rejected_wedged),
      static_cast<long long>(r.cached_sensors),
      core::JsonQuote(r.primary_breaker_state).c_str(),
      static_cast<long long>(r.primary_trips),
      static_cast<long long>(r.primary_probes),
      static_cast<long long>(r.primary_rejected),
      core::JsonQuote(r.var_breaker_state).c_str(),
      static_cast<long long>(r.var_trips), static_cast<long long>(r.var_probes),
      static_cast<long long>(r.var_rejected));
  const OverloadSummary& o = s.overload;
  out += core::StrFormat(
      "  \"overload\": {\"admission_enabled\": %s, \"admission_limit\": %.3f, "
      "\"in_flight\": %lld, \"min_batch_latency_ms\": %.6f, "
      "\"admission_backoffs\": %lld, \"shed_admission\": %lld, "
      "\"shed_by_class\": {\"interactive\": %lld, \"batch\": %lld, "
      "\"whatif\": %lld}, \"shed_brownout\": %lld, \"forced_fallback\": %lld, "
      "\"rejected_predicted_late\": %lld, \"swept_predicted_late\": %lld, "
      "\"submit_p50_ms\": %.6f, \"service_p50_ms\": %.6f, "
      "\"brownout\": {\"enabled\": %s, \"level\": %s, \"probe_bytes\": %lld, "
      "\"steps_up\": %lld, \"steps_down\": %lld}},\n",
      o.admission_enabled ? "true" : "false", o.admission_limit,
      static_cast<long long>(o.in_flight), o.min_batch_latency_ms,
      static_cast<long long>(o.admission_backoffs),
      static_cast<long long>(s.shed_admission),
      static_cast<long long>(o.shed_interactive),
      static_cast<long long>(o.shed_batch),
      static_cast<long long>(o.shed_whatif),
      static_cast<long long>(s.shed_brownout),
      static_cast<long long>(s.forced_fallback),
      static_cast<long long>(s.rejected_predicted_late),
      static_cast<long long>(s.swept_predicted_late), o.submit_p50_ms,
      o.service_p50_ms, o.brownout_enabled ? "true" : "false",
      core::JsonQuote(o.brownout_level).c_str(),
      static_cast<long long>(o.brownout_probe_bytes),
      static_cast<long long>(o.brownout_steps_up),
      static_cast<long long>(o.brownout_steps_down));
  const MemorySummary& m = s.memory;
  out += core::StrFormat(
      "  \"memory\": {\"live_bytes\": %lld, \"peak_bytes\": %lld, "
      "\"heap_allocs\": %lld, \"pool_hits\": %lld, \"pool_misses\": %lld, "
      "\"pool_hit_rate\": %.4f, \"pool_recycled_bytes\": %lld, "
      "\"pool_resident_bytes\": %lld, \"pool_peak_resident_bytes\": %lld}\n",
      static_cast<long long>(m.live_bytes),
      static_cast<long long>(m.peak_bytes),
      static_cast<long long>(m.heap_allocs),
      static_cast<long long>(m.pool_hits),
      static_cast<long long>(m.pool_misses), m.pool_hit_rate,
      static_cast<long long>(m.pool_recycled_bytes),
      static_cast<long long>(m.pool_resident_bytes),
      static_cast<long long>(m.pool_peak_resident_bytes));
  out += "}\n";
  return out;
}

}  // namespace sstban::serving

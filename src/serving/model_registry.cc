#include "serving/model_registry.h"

#include <utility>

#include "core/check.h"
#include "core/failpoint.h"
#include "nn/serialization.h"

namespace sstban::serving {

ModelRegistry::ModelRegistry(ModelFactory factory, data::Normalizer normalizer)
    : factory_(std::move(factory)), normalizer_(std::move(normalizer)) {
  SSTBAN_CHECK(factory_ != nullptr);
}

core::Status ModelRegistry::LoadVersion(const std::string& path) {
  std::unique_ptr<training::TrafficModel> fresh = factory_();
  if (fresh == nullptr) {
    return core::Status::Internal("model factory returned null");
  }
  // LoadParameters stages everything before touching the module, so a bad
  // checkpoint leaves `fresh` untouched — and `fresh` is discarded anyway:
  // the currently served version was never at risk. Any validation failure
  // (torn file, checksum mismatch, injected I/O fault) surfaces as
  // kFailedPrecondition: the swap's precondition — a complete, verified
  // checkpoint — did not hold, and the previous version keeps serving.
  core::Status validated = [&]() -> core::Status {
    SSTBAN_FAILPOINT("registry_swap_load");
    return nn::LoadParameters(fresh.get(), path);
  }();
  if (!validated.ok()) {
    return core::Status::FailedPrecondition(
        "hot-swap rejected, keeping current version: " + validated.ToString());
  }
  Publish(std::move(fresh), path);
  return core::Status::Ok();
}

void ModelRegistry::Install(std::unique_ptr<training::TrafficModel> model,
                            std::string source) {
  SSTBAN_CHECK(model != nullptr);
  Publish(std::move(model), std::move(source));
}

void ModelRegistry::Publish(std::unique_ptr<training::TrafficModel> model,
                            std::string source) {
  auto served = std::make_shared<Served>();
  served->model = std::move(model);
  served->normalizer = normalizer_;
  served->source = std::move(source);
  std::unique_lock<std::mutex> lock(mutex_);
  served->version = next_version_++;
  current_ = std::move(served);
}

std::shared_ptr<const ModelRegistry::Served> ModelRegistry::current() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return current_;
}

int64_t ModelRegistry::current_version() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return current_ == nullptr ? 0 : current_->version;
}

}  // namespace sstban::serving

#ifndef SSTBAN_SERVING_REQUEST_QUEUE_H_
#define SSTBAN_SERVING_REQUEST_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "core/status.h"
#include "serving/request.h"

namespace sstban::serving {

// Why a Push was refused. Distinguishes load shedding (kFull — transient,
// retry later) from shutdown (kClosed — permanent for this process) so the
// server can count and report them separately instead of folding both into
// one undifferentiated Unavailable.
enum class PushReject { kNone = 0, kFull = 1, kClosed = 2, kExpired = 3 };

// Bounded MPMC queue of forecast requests with backpressure: when the queue
// is full, Push returns Unavailable immediately instead of buffering without
// bound — the client sheds load rather than the server. Producers never
// block; the consumer (the batcher) blocks waiting for work.
class RequestQueue {
 public:
  explicit RequestQueue(int64_t capacity);

  // Enqueues `req`, or returns Unavailable when the queue is at capacity or
  // has been closed — each with a distinct message and, when `cause` is
  // given, a distinct PushReject. Expired requests are rejected with
  // DeadlineExceeded before they occupy a slot. The promise inside `req` is
  // untouched on failure so the caller can complete it with the returned
  // status.
  core::Status Push(PendingRequest* req, PushReject* cause = nullptr);

  // Blocks until an item is available or the queue is closed and drained;
  // nullopt means closed-and-empty (the consumer should exit).
  std::optional<PendingRequest> PopBlocking();

  // Non-blocking pop; nullopt when currently empty.
  std::optional<PendingRequest> TryPop();

  // Waits until `until` for an item; nullopt on timeout (or closed+empty).
  std::optional<PendingRequest> PopUntil(Clock::time_point until);

  // Removes every request whose deadline has passed as of `now` and hands it
  // to `reject` for terminal completion, without letting it reach a batch.
  // The batcher runs this right before assembling each batch, so a request
  // that expired while an earlier (slow) batch held the worker never wastes
  // a slot in a model pass. Returns the number of requests swept.
  int64_t SweepExpired(Clock::time_point now,
                       const std::function<void(PendingRequest&&)>& reject);

  // After Close, Push fails with Unavailable; queued items remain poppable
  // so a graceful shutdown can drain them.
  void Close();
  bool closed() const;

  int64_t depth() const;
  int64_t capacity() const { return capacity_; }

 private:
  const int64_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::deque<PendingRequest> items_;
  bool closed_ = false;
};

}  // namespace sstban::serving

#endif  // SSTBAN_SERVING_REQUEST_QUEUE_H_

#include "serving/health.h"

#include "core/string_util.h"

namespace sstban::serving {

bool BatcherWatchdog::Wedged(std::chrono::milliseconds stall_budget,
                             Clock::time_point now) const {
  const int64_t started = batch_started_ns_.load(std::memory_order_acquire);
  if (started == 0) return false;
  return ToNs(now) - started >
         std::chrono::duration_cast<std::chrono::nanoseconds>(stall_budget)
             .count();
}

double BatcherWatchdog::InFlightSeconds(Clock::time_point now) const {
  const int64_t started = batch_started_ns_.load(std::memory_order_acquire);
  if (started == 0) return 0.0;
  return static_cast<double>(ToNs(now) - started) * 1e-9;
}

std::string HealthReport::ToString() const {
  return core::StrFormat(
      "%s: live=%d ready=%d wedged=%d accepting=%d version=%lld depth=%lld "
      "in_flight=%.3fs breakers=%s/%s",
      ready ? "READY" : (live ? "DEGRADED" : "DOWN"), live ? 1 : 0,
      ready ? 1 : 0, wedged ? 1 : 0, accepting ? 1 : 0,
      static_cast<long long>(model_version),
      static_cast<long long>(queue_depth), batch_in_flight_seconds,
      primary_breaker.c_str(), var_breaker.c_str());
}

std::string HealthReport::ToJson() const {
  return core::StrFormat(
      "{\"live\": %s, \"ready\": %s, \"wedged\": %s, \"accepting\": %s, "
      "\"model_version\": %lld, \"queue_depth\": %lld, "
      "\"batch_in_flight_seconds\": %.6f, \"primary_breaker\": %s, "
      "\"var_breaker\": %s}",
      live ? "true" : "false", ready ? "true" : "false",
      wedged ? "true" : "false", accepting ? "true" : "false",
      static_cast<long long>(model_version),
      static_cast<long long>(queue_depth), batch_in_flight_seconds,
      core::JsonQuote(primary_breaker).c_str(),
      core::JsonQuote(var_breaker).c_str());
}

}  // namespace sstban::serving

#ifndef SSTBAN_SERVING_REQUEST_H_
#define SSTBAN_SERVING_REQUEST_H_

#include <chrono>
#include <cstdint>
#include <future>
#include <optional>

#include "core/status.h"
#include "tensor/tensor.h"

namespace sstban::serving {

using Clock = std::chrono::steady_clock;

// How much the client cares, for overload shedding: when the server is past
// its concurrency limit or browning out under memory pressure, what-if
// traffic sheds first, then batch, and interactive last. The default is the
// most protected class so existing callers keep today's behavior.
enum class Criticality { kInteractive = 0, kBatch = 1, kWhatIf = 2 };

const char* CriticalityName(Criticality criticality);

// What a client hands to ForecastServer::Submit: one raw [P, N, C] recent
// window, the absolute slice index of its first row (for calendar features),
// an optional deadline after which the client no longer wants the answer,
// and the criticality class overload control sheds by.
struct ForecastRequest {
  tensor::Tensor recent;  // [P, N, C] raw (denormalized) signals
  int64_t first_step = 0;
  std::optional<Clock::time_point> deadline;
  Criticality criticality = Criticality::kInteractive;
};

// How much of the request's input survived sanitization. Partial means some
// positions were masked-missing and the encoder ran in degraded mode; heavy
// means more than SanitizerOptions::heavy_fraction of positions were
// missing — the answer leans mostly on learned structure, not observations.
enum class DegradationLevel { kNone = 0, kPartial = 1, kHeavy = 2 };

// Which tier of the fallback chain produced the forecast.
enum class ServedBy { kModel = 0, kVarBaseline = 1, kCache = 2 };

const char* DegradationLevelName(DegradationLevel level);
const char* ServedByName(ServedBy tier);

// A successful answer: the forecast plus how it was produced. `degradation`
// and `masked_positions` describe the *input* (sanitizer verdict);
// `served_by` describes the *path* (primary model, VAR baseline, or the
// last-known-good cache after breaker/fault fallback). `model_version` is 0
// when the primary model was bypassed.
struct ForecastResponse {
  tensor::Tensor forecast;  // [Q, N, C] raw-scale
  DegradationLevel degradation = DegradationLevel::kNone;
  ServedBy served_by = ServedBy::kModel;
  int64_t masked_positions = 0;  // of input_len * num_nodes
  int64_t model_version = 0;
  // Age, in logical slice steps (request first_step minus the step the cached
  // forecast was produced at), of the last-known-good entry that answered.
  // -1 unless served_by == kCache *and* the cached column was used — the
  // persistence floor reports -1 because it derives from the request's own
  // window, not from stored state.
  int64_t cache_age_steps = -1;

  bool degraded() const {
    return degradation != DegradationLevel::kNone ||
           served_by != ServedBy::kModel;
  }
};

// Every request resolves to exactly one terminal: an annotated forecast
// (possibly degraded) or one of {Unavailable, DeadlineExceeded,
// InvalidArgument} — never a hang.
using ForecastResult = core::StatusOr<ForecastResponse>;
using ForecastFuture = std::future<ForecastResult>;

// A queued request: the client's payload plus the promise that delivers the
// result back and the timestamp backing the queue-wait latency stat. When
// the sanitizer flagged missing readings, `keep_pos` is the [P, N] observed
// mask (empty tensor = fully observed) and batch.x holds the scrubbed
// window (non-finite readings zeroed so they cannot poison the batch).
struct PendingRequest {
  ForecastRequest request;
  std::promise<ForecastResult> promise;
  Clock::time_point enqueued_at;
  tensor::Tensor keep_pos;  // [P, N] 1=observed; undefined when clean
  DegradationLevel degradation = DegradationLevel::kNone;
  int64_t masked_positions = 0;
  // Brownout verdict made at Submit time: skip the primary model and serve
  // this request from the fallback tiers (batched separately from primary
  // traffic so the two never coalesce).
  bool force_fallback = false;

  bool Expired(Clock::time_point now) const {
    return request.deadline.has_value() && now > *request.deadline;
  }
};

}  // namespace sstban::serving

#endif  // SSTBAN_SERVING_REQUEST_H_

#ifndef SSTBAN_SERVING_REQUEST_H_
#define SSTBAN_SERVING_REQUEST_H_

#include <chrono>
#include <cstdint>
#include <future>
#include <optional>

#include "core/status.h"
#include "tensor/tensor.h"

namespace sstban::serving {

using Clock = std::chrono::steady_clock;

// What a client hands to ForecastServer::Submit: one raw [P, N, C] recent
// window, the absolute slice index of its first row (for calendar features),
// and an optional deadline after which the client no longer wants the answer.
struct ForecastRequest {
  tensor::Tensor recent;  // [P, N, C] raw (denormalized) signals
  int64_t first_step = 0;
  std::optional<Clock::time_point> deadline;
};

// Every request resolves to a denormalized [Q, N, C] forecast or an error.
using ForecastResult = core::StatusOr<tensor::Tensor>;
using ForecastFuture = std::future<ForecastResult>;

// A queued request: the client's payload plus the promise that delivers the
// result back and the timestamp backing the queue-wait latency stat.
struct PendingRequest {
  ForecastRequest request;
  std::promise<ForecastResult> promise;
  Clock::time_point enqueued_at;

  bool Expired(Clock::time_point now) const {
    return request.deadline.has_value() && now > *request.deadline;
  }
};

}  // namespace sstban::serving

#endif  // SSTBAN_SERVING_REQUEST_H_

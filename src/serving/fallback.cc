#include "serving/fallback.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <exception>
#include <utility>

#include "core/check.h"
#include "core/failpoint.h"
#include "core/timer.h"
#include "tensor/ops.h"
#include "training/forecast_service.h"

namespace sstban::serving {

namespace t = ::sstban::tensor;

void LastGoodCache::Update(const t::Tensor& forecast, int64_t logical_step) {
  SSTBAN_CHECK_EQ(forecast.rank(), 3);
  std::lock_guard<std::mutex> lock(mutex_);
  last_ = forecast;
  last_step_ = logical_step;
}

t::Tensor LastGoodCache::Assemble(const t::Tensor& recent, int64_t output_len,
                                  int64_t now_step, int64_t max_age_steps,
                                  int64_t* age_out) const {
  SSTBAN_CHECK_EQ(recent.rank(), 3);
  if (age_out != nullptr) *age_out = -1;
  const int64_t p = recent.dim(0), n = recent.dim(1), c = recent.dim(2);
  t::Tensor cached;
  int64_t cached_at = -1;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cached = last_;  // shares storage; published tensors are never mutated
    cached_at = last_step_;
  }
  // A clock that ran backwards (replayed request) counts as age 0, not as a
  // forecast from the future.
  const int64_t age = cached_at < 0 ? 0 : std::max<int64_t>(0, now_step - cached_at);
  const bool fresh = max_age_steps < 0 || age <= max_age_steps;
  const bool usable = cached.defined() && cached.dim(0) == output_len &&
                      cached.dim(1) == n && cached.dim(2) == c && fresh;
  if (usable) {
    if (age_out != nullptr) *age_out = age;
    return cached;
  }

  // Persistence: each sensor's most recent finite observation, held flat
  // across the horizon. A sensor with no finite reading at all forecasts 0.
  t::Tensor out = t::Tensor::Empty(t::Shape{output_len, n, c});
  const float* in = recent.data();
  float* dst = out.data();
  for (int64_t j = 0; j < n * c; ++j) {
    float value = 0.0f;
    for (int64_t step = p - 1; step >= 0; --step) {
      float v = in[step * n * c + j];
      if (std::isfinite(v)) {
        value = v;
        break;
      }
    }
    for (int64_t q = 0; q < output_len; ++q) dst[q * n * c + j] = value;
  }
  return out;
}

int64_t LastGoodCache::cached_sensors() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_.defined() ? last_.dim(1) : 0;
}

int64_t LastGoodCache::cached_step() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_step_;
}

FallbackChain::FallbackChain(FallbackOptions options)
    : options_(options),
      primary_breaker_(options.primary_breaker),
      var_breaker_(options.var_breaker) {}

void FallbackChain::SetVarBaseline(std::unique_ptr<baselines::VarModel> var) {
  SSTBAN_CHECK(var == nullptr || var->fitted())
      << "fallback VAR baseline must be fitted (VarModel::FitSeries)";
  var_ = std::move(var);
}

core::Status FallbackChain::Run(const data::Batch& batch,
                                const data::Normalizer* normalizer,
                                int64_t output_len,
                                const std::vector<int64_t>& first_steps,
                                std::vector<t::Tensor>* slices,
                                ServedBy* served_by,
                                std::vector<int64_t>* cache_ages) {
  SSTBAN_CHECK(slices != nullptr && served_by != nullptr);
  SSTBAN_FAILPOINT("serve_fallback");
  const int64_t b = batch.x.dim(0);
  const int64_t n = batch.x.dim(2), c = batch.x.dim(3);
  SSTBAN_CHECK(first_steps.empty() ||
               first_steps.size() == static_cast<size_t>(b));
  slices->assign(static_cast<size_t>(b), t::Tensor());
  if (cache_ages != nullptr) cache_ages->assign(static_cast<size_t>(b), -1);

  // -- Tier 2: VAR baseline ---------------------------------------------------
  // Cheap (closed-form linear), batched, and immune to whatever corrupted
  // the primary: its coefficients never hot-swap.
  if (var_ != nullptr && normalizer != nullptr &&
      batch.x.dim(1) >= var_->lag() && var_breaker_.Allow()) {
    core::Timer timer;
    bool ok = true;
    t::Tensor denorm;
    try {
      denorm = training::RunBatchedInference(var_.get(), *normalizer, batch);
      ok = !t::HasNonFinite(denorm);
    } catch (const std::exception&) {
      ok = false;
    }
    if (ok) {
      var_breaker_.RecordSuccess(timer.ElapsedSeconds());
      for (int64_t i = 0; i < b; ++i) {
        (*slices)[static_cast<size_t>(i)] =
            t::Slice(denorm, 0, i, 1).Reshape(t::Shape{output_len, n, c});
      }
      *served_by = ServedBy::kVarBaseline;
      return core::Status::Ok();
    }
    var_breaker_.RecordFailure();
  }

  // -- Tier 3: last-known-good cache / persistence (infallible) ---------------
  const int64_t p = batch.x.dim(1);
  for (int64_t i = 0; i < b; ++i) {
    t::Tensor recent =
        t::Slice(batch.x, 0, i, 1).Reshape(t::Shape{p, n, c});
    const int64_t now =
        first_steps.empty() ? 0 : first_steps[static_cast<size_t>(i)];
    int64_t age = -1;
    (*slices)[static_cast<size_t>(i)] = cache_.Assemble(
        recent, output_len, now, options_.max_cache_age_steps, &age);
    if (cache_ages != nullptr) (*cache_ages)[static_cast<size_t>(i)] = age;
  }
  *served_by = ServedBy::kCache;
  return core::Status::Ok();
}

}  // namespace sstban::serving

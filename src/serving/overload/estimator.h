#ifndef SSTBAN_SERVING_OVERLOAD_ESTIMATOR_H_
#define SSTBAN_SERVING_OVERLOAD_ESTIMATOR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace sstban::serving {

// Windowed p50 service-time estimate backing cooperative deadline
// propagation: "will this request plausibly finish before its deadline?" is
// answered against the median of the last `window` observed service times.
// Returns 0 until `min_samples` observations have arrived, so cold servers
// and tiny tests never reject on a garbage estimate. Record() is called from
// the batcher thread; P50() from any submit thread (atomic read).
class ServiceTimeEstimator {
 public:
  explicit ServiceTimeEstimator(int64_t window = 64, int64_t min_samples = 16);

  void Record(double seconds);

  // Median of the recent window in seconds; 0.0 while under-sampled.
  double P50() const { return p50_.load(std::memory_order_relaxed); }

  int64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  const int64_t window_;
  const int64_t min_samples_;
  std::atomic<double> p50_{0.0};
  std::atomic<int64_t> count_{0};
  std::mutex mutex_;  // guards the ring
  std::vector<double> ring_;
  int64_t next_ = 0;
};

}  // namespace sstban::serving

#endif  // SSTBAN_SERVING_OVERLOAD_ESTIMATOR_H_

#ifndef SSTBAN_SERVING_OVERLOAD_OVERLOAD_H_
#define SSTBAN_SERVING_OVERLOAD_OVERLOAD_H_

#include <cstdint>

#include "serving/overload/admission.h"
#include "serving/overload/brownout.h"
#include "serving/overload/budget.h"
#include "serving/overload/estimator.h"

namespace sstban::serving {

// Deadline-propagation knobs (tentpole layer 2). A request is rejected —
// at Submit and again at dequeue — when its remaining deadline is smaller
// than safety_factor x the current p50 estimate of the relevant stage, so a
// doomed request never occupies a queue slot or a batch slot.
struct DeadlineOptions {
  bool enabled = true;
  double safety_factor = 1.0;
  // Estimator shape (see ServiceTimeEstimator): no predictions are rejected
  // until min_samples completions have been observed.
  int64_t window = 64;
  int64_t min_samples = 16;
};

// Everything the overload-control subsystem needs, hung off ServerOptions.
// Defaults come from the environment:
//   SSTBAN_ADMISSION            off | on | key=value list
//                               (limit, min, max, tolerance, increase,
//                                decrease) e.g. "limit=32,tolerance=1.5"
//   SSTBAN_BROWNOUT_WATERMARKS  off | "<mb1>,<mb2>,<mb3>" enter watermarks
//                               in MB for levels 1..3
struct OverloadOptions {
  AdmissionOptions admission;
  DeadlineOptions deadline;
  BrownoutOptions brownout;

  // Turns every layer off (pure pre-overload-control behavior; the bench's
  // "admission off" arm and the big red switch for experiments).
  void DisableAll() {
    admission.enabled = false;
    deadline.enabled = false;
    brownout.enabled = false;
  }
};

// Reads SSTBAN_ADMISSION / SSTBAN_BROWNOUT_WATERMARKS once per call.
OverloadOptions ResolveOverloadOptions();

// The per-server bundle: one admission controller, the two stage estimators
// behind deadline propagation, and the brownout ladder. ForecastServer owns
// one and shares a pointer with its Batcher.
class OverloadControl {
 public:
  explicit OverloadControl(const OverloadOptions& options)
      : options_(options),
        admission_(options.admission),
        submit_estimator_(options.deadline.window, options.deadline.min_samples),
        service_estimator_(options.deadline.window,
                           options.deadline.min_samples),
        brownout_(options.brownout) {}

  const OverloadOptions& options() const { return options_; }
  AdmissionController& admission() { return admission_; }
  const AdmissionController& admission() const { return admission_; }
  // Submit-time gate: full end-to-end (queue wait + assembly + forward).
  ServiceTimeEstimator& submit_estimator() { return submit_estimator_; }
  // Dequeue-time gate: batch execution only (the work still ahead of a
  // request that has already been popped).
  ServiceTimeEstimator& service_estimator() { return service_estimator_; }
  BrownoutController& brownout() { return brownout_; }
  const BrownoutController& brownout() const { return brownout_; }

 private:
  OverloadOptions options_;
  AdmissionController admission_;
  ServiceTimeEstimator submit_estimator_;
  ServiceTimeEstimator service_estimator_;
  BrownoutController brownout_;
};

}  // namespace sstban::serving

#endif  // SSTBAN_SERVING_OVERLOAD_OVERLOAD_H_

#ifndef SSTBAN_SERVING_OVERLOAD_BUDGET_H_
#define SSTBAN_SERVING_OVERLOAD_BUDGET_H_

#include <cstdint>
#include <mutex>

namespace sstban::serving {

struct RetryBudgetOptions {
  bool enabled = true;
  // Tokens earned per primary dispatch: retries + hedges stay bounded to
  // this fraction of real traffic, so a sick fleet cannot amplify its own
  // load via hedging (the "retry storm" failure mode).
  double ratio = 0.2;
  // Bucket capacity; also the initial fill, so cold-start hedging (the very
  // first request landing on a dead replica) still works.
  double burst = 8.0;
};

// Token bucket gating hedges and failovers toward one (shard, replica).
// OnPrimary() deposits `ratio` tokens when the replica is used as a rotation
// pick; TryAcquire() spends one token to dispatch a hedge/failover at it.
// Disabled => TryAcquire always succeeds (PR-6 behavior).
class RetryBudget {
 public:
  explicit RetryBudget(RetryBudgetOptions options);

  void OnPrimary();
  bool TryAcquire();

  struct Snapshot {
    double tokens = 0.0;
    int64_t acquired = 0;
    int64_t denied = 0;
  };
  Snapshot TakeSnapshot() const;

 private:
  const RetryBudgetOptions options_;
  mutable std::mutex mutex_;
  double tokens_;
  int64_t acquired_ = 0;
  int64_t denied_ = 0;
};

}  // namespace sstban::serving

#endif  // SSTBAN_SERVING_OVERLOAD_BUDGET_H_

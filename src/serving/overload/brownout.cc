#include "serving/overload/brownout.h"

#include <utility>

#include "core/failpoint.h"
#include "core/memory_tracker.h"

namespace sstban::serving {

const char* BrownoutLevelName(BrownoutLevel level) {
  switch (level) {
    case BrownoutLevel::kNormal:
      return "normal";
    case BrownoutLevel::kNoHedge:
      return "no-hedge";
    case BrownoutLevel::kFallbackLow:
      return "fallback-low";
    case BrownoutLevel::kShedLow:
      return "shed-low";
  }
  return "unknown";
}

namespace {

int64_t TrackedFootprintBytes() {
  return core::MemoryTracker::Global().resident_footprint_bytes();
}

}  // namespace

BrownoutController::BrownoutController(BrownoutOptions options)
    : options_(std::move(options)) {
  last_transition_ = options_.now ? options_.now() : Clock::now();
}

BrownoutLevel BrownoutController::Update() {
  if (!options_.enabled) return BrownoutLevel::kNormal;
  const int64_t bytes =
      options_.probe ? options_.probe() : TrackedFootprintBytes();
  probe_bytes_.store(bytes, std::memory_order_relaxed);

  std::unique_lock<std::mutex> lock(mutex_);
  const int level = level_.load(std::memory_order_relaxed);
  int target = 0;
  for (int l = 3; l >= 1; --l) {
    if (bytes >= options_.enter_bytes[static_cast<size_t>(l - 1)]) {
      target = l;
      break;
    }
  }
  const Clock::time_point now = options_.now ? options_.now() : Clock::now();
  if (target > level) {
    // Escalate immediately (possibly several levels): protection that waits
    // for a dwell timer defeats its purpose.
    level_.store(target, std::memory_order_relaxed);
    steps_up_.fetch_add(target - level, std::memory_order_relaxed);
    last_transition_ = now;
    SSTBAN_FAILPOINT_NOTIFY("brownout_step");
  } else if (level > 0) {
    // De-escalate one level at a time, only once the footprint has dropped
    // below the *exit* watermark of the current level and the dwell has
    // elapsed — together these make the ladder hysteretic, not flappy.
    const double exit_bytes =
        options_.exit_fraction *
        static_cast<double>(options_.enter_bytes[static_cast<size_t>(level - 1)]);
    if (static_cast<double>(bytes) < exit_bytes &&
        now - last_transition_ >= options_.min_dwell) {
      level_.store(level - 1, std::memory_order_relaxed);
      steps_down_.fetch_add(1, std::memory_order_relaxed);
      last_transition_ = now;
      SSTBAN_FAILPOINT_NOTIFY("brownout_step");
    }
  }
  return static_cast<BrownoutLevel>(level_.load(std::memory_order_relaxed));
}

BrownoutController::Snapshot BrownoutController::TakeSnapshot() const {
  Snapshot snap;
  snap.enabled = options_.enabled;
  snap.level = level();
  snap.probe_bytes = probe_bytes_.load(std::memory_order_relaxed);
  snap.steps_up = steps_up_.load(std::memory_order_relaxed);
  snap.steps_down = steps_down_.load(std::memory_order_relaxed);
  return snap;
}

}  // namespace sstban::serving

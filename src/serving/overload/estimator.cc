#include "serving/overload/estimator.h"

#include <algorithm>

#include "core/check.h"

namespace sstban::serving {

ServiceTimeEstimator::ServiceTimeEstimator(int64_t window, int64_t min_samples)
    : window_(window), min_samples_(min_samples) {
  SSTBAN_CHECK_GT(window, 0);
  ring_.reserve(static_cast<size_t>(window));
}

void ServiceTimeEstimator::Record(double seconds) {
  if (seconds < 0.0) return;
  std::unique_lock<std::mutex> lock(mutex_);
  if (static_cast<int64_t>(ring_.size()) < window_) {
    ring_.push_back(seconds);
  } else {
    ring_[static_cast<size_t>(next_)] = seconds;
  }
  next_ = (next_ + 1) % window_;
  const int64_t n = count_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n < min_samples_) return;
  // nth_element over <= `window` doubles, once per completion on the batcher
  // thread — cheap enough to keep the estimate fresh every sample.
  std::vector<double> sorted(ring_);
  auto mid = sorted.begin() + sorted.size() / 2;
  std::nth_element(sorted.begin(), mid, sorted.end());
  p50_.store(*mid, std::memory_order_relaxed);
}

}  // namespace sstban::serving

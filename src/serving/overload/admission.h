#ifndef SSTBAN_SERVING_OVERLOAD_ADMISSION_H_
#define SSTBAN_SERVING_OVERLOAD_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <mutex>

#include "serving/request.h"

namespace sstban::serving {

struct AdmissionOptions {
  bool enabled = true;
  // Starting concurrency limit (requests in flight: queued + batching).
  double initial_limit = 64.0;
  // The limit never shrinks below this, so a burst of slow batches cannot
  // starve the server into rejecting everything forever.
  double min_limit = 8.0;
  double max_limit = 4096.0;
  // Congestion threshold: a batch whose end-to-end latency exceeds
  // `tolerance` x the moving-minimum latency signals queue buildup.
  double tolerance = 2.0;
  // Additive probe on a good batch: limit += increase / limit (concave climb,
  // AIMD-style), and the floor added on every gradient update.
  double increase = 1.0;
  // Multiplicative decrease factor applied on congestion.
  double decrease = 0.9;
  // Samples per moving-minimum window; the minimum resets every window so a
  // permanent latency shift (bigger model, slower host) re-baselines instead
  // of reading as permanent congestion.
  int64_t min_window = 128;
  // Fraction of the limit each criticality class may fill. Interactive gets
  // the whole limit; lower classes hit their ceiling first and shed first.
  double batch_fraction = 0.9;
  double whatif_fraction = 0.75;
};

// Adaptive concurrency limiter in front of the request queue. The limit is
// steered by per-batch latency (submit -> promise fulfilled, averaged over
// the batch) against a windowed moving minimum: latency near the minimum
// means the queue is empty-ish and the limit climbs additively; latency
// beyond tolerance x minimum means requests are queueing and the limit
// decreases multiplicatively. Criticality classes share one in-flight
// counter but cap at different fractions of the limit, so under pressure
// what-if traffic sheds before batch, batch before interactive.
//
// Thread-safety: Admit/OnTerminal are lock-free on the hot path;
// OnBatchLatency takes a short mutex (called once per batch).
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  // True = admitted (in-flight incremented; the caller must balance with
  // exactly one OnTerminal). False = shed (counter recorded per class).
  bool Admit(Criticality criticality);

  // One admitted request reached its terminal (any status).
  void OnTerminal();

  // Feed one completed batch's mean end-to-end latency (seconds).
  void OnBatchLatency(double seconds);

  struct Snapshot {
    bool enabled = false;
    double limit = 0.0;
    int64_t in_flight = 0;
    double min_latency = 0.0;  // current moving-minimum (seconds)
    int64_t shed_interactive = 0, shed_batch = 0, shed_whatif = 0;
    int64_t backoffs = 0;  // multiplicative-decrease events
  };
  Snapshot TakeSnapshot() const;

  int64_t in_flight() const { return in_flight_.load(); }
  double limit() const { return limit_.load(); }

 private:
  const AdmissionOptions options_;
  std::atomic<int64_t> in_flight_{0};
  std::atomic<double> limit_;
  std::atomic<int64_t> shed_interactive_{0}, shed_batch_{0}, shed_whatif_{0};
  std::atomic<int64_t> backoffs_{0};

  mutable std::mutex mutex_;  // guards the moving-minimum window
  double window_min_ = 0.0;
  int64_t window_count_ = 0;
  double current_min_ = 0.0;  // minimum carried from the last full window
};

}  // namespace sstban::serving

#endif  // SSTBAN_SERVING_OVERLOAD_ADMISSION_H_

#include "serving/overload/budget.h"

#include <algorithm>

namespace sstban::serving {

RetryBudget::RetryBudget(RetryBudgetOptions options)
    : options_(options), tokens_(options.burst) {}

void RetryBudget::OnPrimary() {
  if (!options_.enabled) return;
  std::unique_lock<std::mutex> lock(mutex_);
  tokens_ = std::min(tokens_ + options_.ratio, options_.burst);
}

bool RetryBudget::TryAcquire() {
  if (!options_.enabled) return true;
  std::unique_lock<std::mutex> lock(mutex_);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    ++acquired_;
    return true;
  }
  ++denied_;
  return false;
}

RetryBudget::Snapshot RetryBudget::TakeSnapshot() const {
  std::unique_lock<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.tokens = tokens_;
  snap.acquired = acquired_;
  snap.denied = denied_;
  return snap;
}

}  // namespace sstban::serving

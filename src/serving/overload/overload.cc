#include "serving/overload/overload.h"

#include <cstdlib>
#include <string>
#include <vector>

namespace sstban::serving {

namespace {

std::vector<std::string> SplitCommas(const std::string& text) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    parts.push_back(text.substr(start, comma - start));
    start = comma + 1;
  }
  return parts;
}

bool ParseDouble(const std::string& text, double* out) {
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return false;
  *out = value;
  return true;
}

// "off" | "on" | comma list of key=value overrides. Unknown keys and
// malformed values are ignored — a typo'd knob must never take the server
// down, it just keeps the default.
void ApplyAdmissionEnv(const char* env, AdmissionOptions* admission) {
  std::string spec(env);
  if (spec == "off" || spec == "0" || spec == "false") {
    admission->enabled = false;
    return;
  }
  if (spec == "on" || spec == "1" || spec == "true" || spec.empty()) return;
  for (const std::string& part : SplitCommas(spec)) {
    size_t eq = part.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = part.substr(0, eq);
    double value = 0.0;
    if (!ParseDouble(part.substr(eq + 1), &value)) continue;
    if (key == "limit") {
      admission->initial_limit = value;
    } else if (key == "min") {
      admission->min_limit = value;
    } else if (key == "max") {
      admission->max_limit = value;
    } else if (key == "tolerance") {
      admission->tolerance = value;
    } else if (key == "increase") {
      admission->increase = value;
    } else if (key == "decrease") {
      admission->decrease = value;
    }
  }
}

// "off" | "<mb1>,<mb2>,<mb3>" — enter watermarks in MB for levels 1..3.
// Fewer than three values extend the last one (a single number browns the
// whole ladder out at once).
void ApplyBrownoutEnv(const char* env, BrownoutOptions* brownout) {
  std::string spec(env);
  if (spec == "off" || spec == "0" || spec == "false") {
    brownout->enabled = false;
    return;
  }
  std::vector<int64_t> mbs;
  for (const std::string& part : SplitCommas(spec)) {
    double value = 0.0;
    if (ParseDouble(part, &value) && value > 0.0) {
      mbs.push_back(static_cast<int64_t>(value * 1e6));
    }
  }
  if (mbs.empty()) return;
  for (size_t l = 0; l < 3; ++l) {
    brownout->enter_bytes[l] = mbs[l < mbs.size() ? l : mbs.size() - 1];
  }
}

}  // namespace

OverloadOptions ResolveOverloadOptions() {
  OverloadOptions options;
  if (const char* env = std::getenv("SSTBAN_ADMISSION")) {
    ApplyAdmissionEnv(env, &options.admission);
  }
  if (const char* env = std::getenv("SSTBAN_BROWNOUT_WATERMARKS")) {
    ApplyBrownoutEnv(env, &options.brownout);
  }
  return options;
}

}  // namespace sstban::serving

#ifndef SSTBAN_SERVING_OVERLOAD_BROWNOUT_H_
#define SSTBAN_SERVING_OVERLOAD_BROWNOUT_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>

#include "serving/request.h"

namespace sstban::serving {

// Memory-pressure degrade ladder, worst first:
//   kNormal      - full service.
//   kNoHedge     - the shard router stops hedging/failing over (retries are
//                  pure extra load when memory is the bottleneck).
//   kFallbackLow - low-criticality (batch / what-if) requests skip the
//                  primary model and serve from the VAR/cache fallback tiers.
//   kShedLow     - low-criticality requests are shed outright.
// Interactive traffic keeps full service at every level below kShedLow.
enum class BrownoutLevel : int {
  kNormal = 0,
  kNoHedge = 1,
  kFallbackLow = 2,
  kShedLow = 3,
};

const char* BrownoutLevelName(BrownoutLevel level);

struct BrownoutOptions {
  bool enabled = true;
  // Enter watermarks (bytes of tracked resident footprint) for levels 1..3.
  // Defaults are far above anything the tests or benches allocate, so
  // brownout is inert until configured (SSTBAN_BROWNOUT_WATERMARKS).
  std::array<int64_t, 3> enter_bytes = {
      int64_t{6} << 30, int64_t{7} << 30, int64_t{8} << 30};
  // A level exits only once the footprint drops below
  // exit_fraction * enter_bytes[level]: the gap between enter and exit is
  // the hysteresis band that stops flapping across a watermark.
  double exit_fraction = 0.85;
  // Minimum dwell at a level before stepping back down (debounces sawtooth
  // allocation patterns that dip below the exit watermark between batches).
  std::chrono::milliseconds min_dwell{250};
  // Injectable memory probe (bytes); null = MemoryTracker::Global()'s
  // resident footprint (live tensor bytes + pool free lists).
  std::function<int64_t()> probe;
  // Injectable clock for hysteresis tests; null = Clock::now.
  std::function<Clock::time_point()> now;
};

// Steps the server through the degrade ladder from memory watermarks.
// Transitions are hysteretic in both space (exit watermark below enter) and
// time (min_dwell before any step down), step UP is immediate (possibly
// multiple levels at once — protection must not lag), step DOWN is one level
// per dwell so recovery is gradual and fully reversible.
class BrownoutController {
 public:
  explicit BrownoutController(BrownoutOptions options);

  // Re-evaluates the probe and returns the (possibly changed) level.
  // Cheap; called from Submit and from the batcher loop. Thread-safe.
  BrownoutLevel Update();

  // Last computed level without re-probing.
  BrownoutLevel level() const {
    return static_cast<BrownoutLevel>(level_.load(std::memory_order_relaxed));
  }

  struct Snapshot {
    bool enabled = false;
    BrownoutLevel level = BrownoutLevel::kNormal;
    int64_t probe_bytes = 0;  // as of the last Update
    int64_t steps_up = 0;
    int64_t steps_down = 0;
  };
  Snapshot TakeSnapshot() const;

 private:
  const BrownoutOptions options_;
  std::atomic<int> level_{0};
  std::atomic<int64_t> probe_bytes_{0};
  std::atomic<int64_t> steps_up_{0}, steps_down_{0};
  std::mutex mutex_;  // serializes transitions
  Clock::time_point last_transition_;
};

}  // namespace sstban::serving

#endif  // SSTBAN_SERVING_OVERLOAD_BROWNOUT_H_

#include "serving/overload/admission.h"

#include <algorithm>

namespace sstban::serving {

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options), limit_(options.initial_limit) {}

bool AdmissionController::Admit(Criticality criticality) {
  if (!options_.enabled) {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  double fraction = 1.0;
  switch (criticality) {
    case Criticality::kInteractive:
      fraction = 1.0;
      break;
    case Criticality::kBatch:
      fraction = options_.batch_fraction;
      break;
    case Criticality::kWhatIf:
      fraction = options_.whatif_fraction;
      break;
  }
  const double ceiling = limit_.load(std::memory_order_relaxed) * fraction;
  // CAS loop so two racing Submits cannot both squeeze through one slot.
  int64_t current = in_flight_.load(std::memory_order_relaxed);
  for (;;) {
    if (static_cast<double>(current) >= ceiling) {
      switch (criticality) {
        case Criticality::kInteractive:
          shed_interactive_.fetch_add(1, std::memory_order_relaxed);
          break;
        case Criticality::kBatch:
          shed_batch_.fetch_add(1, std::memory_order_relaxed);
          break;
        case Criticality::kWhatIf:
          shed_whatif_.fetch_add(1, std::memory_order_relaxed);
          break;
      }
      return false;
    }
    if (in_flight_.compare_exchange_weak(current, current + 1,
                                         std::memory_order_relaxed)) {
      return true;
    }
  }
}

void AdmissionController::OnTerminal() {
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
}

void AdmissionController::OnBatchLatency(double seconds) {
  if (!options_.enabled || seconds <= 0.0) return;
  std::unique_lock<std::mutex> lock(mutex_);
  if (window_count_ == 0 || seconds < window_min_) window_min_ = seconds;
  ++window_count_;
  if (current_min_ == 0.0) current_min_ = window_min_;
  if (window_count_ >= options_.min_window) {
    // Roll the window: the new baseline is what the *last* window observed,
    // so a regime change stops reading as congestion within one window.
    current_min_ = window_min_;
    window_count_ = 0;
  }

  double limit = limit_.load(std::memory_order_relaxed);
  if (seconds > options_.tolerance * current_min_) {
    limit *= options_.decrease;
    backoffs_.fetch_add(1, std::memory_order_relaxed);
  } else {
    limit += options_.increase / std::max(limit, 1.0);
  }
  limit = std::clamp(limit, options_.min_limit, options_.max_limit);
  limit_.store(limit, std::memory_order_relaxed);
}

AdmissionController::Snapshot AdmissionController::TakeSnapshot() const {
  Snapshot snap;
  snap.enabled = options_.enabled;
  snap.limit = limit_.load(std::memory_order_relaxed);
  snap.in_flight = in_flight_.load(std::memory_order_relaxed);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    snap.min_latency = current_min_;
  }
  snap.shed_interactive = shed_interactive_.load(std::memory_order_relaxed);
  snap.shed_batch = shed_batch_.load(std::memory_order_relaxed);
  snap.shed_whatif = shed_whatif_.load(std::memory_order_relaxed);
  snap.backoffs = backoffs_.load(std::memory_order_relaxed);
  return snap;
}

}  // namespace sstban::serving

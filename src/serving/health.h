#ifndef SSTBAN_SERVING_HEALTH_H_
#define SSTBAN_SERVING_HEALTH_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "serving/request.h"

namespace sstban::serving {

// Liveness signal the batcher thread feeds and the health probe reads: the
// worker ticks on every loop iteration and brackets each model pass. A batch
// that has been in flight longer than the stall budget while requests keep
// queueing means the worker is wedged (a hung model, a deadlocked pool) —
// the readiness probe goes false and Submit fails fast with Unavailable
// instead of letting requests pile up behind a thread that will never drain
// them. Lock-free: all fields are relaxed atomics on the worker hot path.
class BatcherWatchdog {
 public:
  // Worker-side signals.
  void MarkLoopTick() { loop_ticks_.fetch_add(1, std::memory_order_relaxed); }
  void MarkBatchStart(Clock::time_point now) {
    batch_started_ns_.store(ToNs(now), std::memory_order_release);
  }
  void MarkBatchEnd() {
    batch_started_ns_.store(0, std::memory_order_release);
    batches_finished_.fetch_add(1, std::memory_order_relaxed);
  }

  // True when a model pass has been running longer than `stall_budget`.
  bool Wedged(std::chrono::milliseconds stall_budget,
              Clock::time_point now = Clock::now()) const;

  int64_t loop_ticks() const {
    return loop_ticks_.load(std::memory_order_relaxed);
  }
  int64_t batches_finished() const {
    return batches_finished_.load(std::memory_order_relaxed);
  }
  // Seconds the current batch has been in flight; 0 when idle.
  double InFlightSeconds(Clock::time_point now = Clock::now()) const;

 private:
  static int64_t ToNs(Clock::time_point tp) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               tp.time_since_epoch())
        .count();
  }

  std::atomic<int64_t> loop_ticks_{0};
  std::atomic<int64_t> batches_finished_{0};
  // Start of the in-flight model pass (ns since clock epoch); 0 = idle.
  std::atomic<int64_t> batch_started_ns_{0};
};

// One health-probe evaluation, in the shape load balancers expect: `live`
// says the process and worker thread exist; `ready` says this replica should
// receive traffic right now.
struct HealthReport {
  bool live = false;
  bool ready = false;
  bool wedged = false;
  bool accepting = false;       // queue open and below capacity
  int64_t model_version = 0;    // 0 = no model installed
  int64_t queue_depth = 0;
  double batch_in_flight_seconds = 0.0;
  std::string primary_breaker;  // "closed" / "open" / "half-open"
  std::string var_breaker;

  // Single-line "status: detail" rendering plus a JSON object, for the
  // sstban_serve front end and scrape-style integrations.
  std::string ToString() const;
  std::string ToJson() const;
};

}  // namespace sstban::serving

#endif  // SSTBAN_SERVING_HEALTH_H_

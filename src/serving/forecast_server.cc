#include "serving/forecast_server.h"

#include <utility>

#include "core/failpoint.h"
#include "core/string_util.h"

namespace sstban::serving {

namespace {

BatcherOptions MakeBatcherOptions(const ServerOptions& options) {
  BatcherOptions batcher;
  batcher.max_batch = options.max_batch;
  batcher.max_wait = options.max_wait;
  batcher.input_len = options.input_len;
  batcher.output_len = options.output_len;
  batcher.steps_per_day = options.steps_per_day;
  batcher.executor_mode = options.executor_mode;
  batcher.precision = options.precision;
  return batcher;
}

}  // namespace

ForecastServer::ForecastServer(ServerOptions options, ModelRegistry* registry)
    : options_(options),
      registry_(registry),
      sanitizer_(options.sanitizer),
      fallback_(options.fallback),
      queue_(options.queue_capacity),
      batcher_(MakeBatcherOptions(options), &queue_, registry, &stats_,
               &fallback_, &watchdog_) {
  // Breaker and cache counters live in the fallback chain; hand the stats
  // sink a closure so /stats snapshots can fold them in.
  stats_.SetResilienceProvider([this] {
    ServerStats::ResilienceSummary summary;
    summary.fallback_enabled = fallback_.enabled();
    summary.var_available = fallback_.has_var_baseline();
    const CircuitBreaker& primary = fallback_.primary_breaker();
    summary.primary_breaker_state = primary.StateName();
    CircuitBreaker::Stats ps = primary.stats();
    summary.primary_trips = ps.trips;
    summary.primary_probes = ps.probes;
    summary.primary_rejected = ps.rejected;
    const CircuitBreaker& var = fallback_.var_breaker();
    summary.var_breaker_state = var.StateName();
    CircuitBreaker::Stats vs = var.stats();
    summary.var_trips = vs.trips;
    summary.var_probes = vs.probes;
    summary.var_rejected = vs.rejected;
    summary.cached_sensors = fallback_.cache().cached_sensors();
    return summary;
  });
}

ForecastServer::~ForecastServer() { Shutdown(); }

core::Status ForecastServer::Start() {
  if (started_) {
    return core::Status::FailedPrecondition("server already started");
  }
  if (registry_->current() == nullptr) {
    return core::Status::FailedPrecondition(
        "cannot start: the model registry has no version installed");
  }
  started_ = true;
  running_.store(true);
  batcher_.Start();
  return core::Status::Ok();
}

void ForecastServer::SetVarBaseline(std::unique_ptr<baselines::VarModel> var) {
  fallback_.SetVarBaseline(std::move(var));
}

core::StatusOr<ForecastFuture> ForecastServer::Submit(ForecastRequest request) {
  if (!running_.load()) {
    return core::Status::Unavailable("server is not running");
  }
  // Fail fast rather than queue behind a worker that will never drain: a
  // wedged batcher turns every accepted request into a client-side timeout.
  if (watchdog_.Wedged(options_.stall_budget)) {
    stats_.RecordRejectedWedged();
    return core::Status::Unavailable(core::StrFormat(
        "batcher wedged: current batch in flight for %.3fs (budget %.3fs)",
        watchdog_.InFlightSeconds(),
        std::chrono::duration<double>(options_.stall_budget).count()));
  }
  const tensor::Tensor& recent = request.recent;
  if (recent.rank() != 3 || recent.dim(0) != options_.input_len ||
      (options_.num_nodes >= 0 && recent.dim(1) != options_.num_nodes) ||
      (options_.num_features >= 0 &&
       recent.dim(2) != options_.num_features)) {
    stats_.RecordRejectedInvalid();
    std::string nodes_str = options_.num_nodes >= 0
                                ? std::to_string(options_.num_nodes)
                                : std::string("*");
    std::string feats_str = options_.num_features >= 0
                                ? std::to_string(options_.num_features)
                                : std::string("*");
    return core::Status::InvalidArgument(core::StrFormat(
        "expected a [%lld, %s, %s] window, got %s",
        static_cast<long long>(options_.input_len), nodes_str.c_str(),
        feats_str.c_str(), recent.shape().ToString().c_str()));
  }
  if (request.first_step < 0) {
    stats_.RecordRejectedInvalid();
    return core::Status::InvalidArgument("first_step must be >= 0");
  }

  PendingRequest pending;
  pending.request = std::move(request);

  // Input boundary: NaN/Inf/sentinel readings either reject the request
  // (strict channel) or become a keep mask + scrubbed window copy for
  // degraded-mode inference.
  core::StatusOr<SanitizeResult> sanitized =
      sanitizer_.Sanitize(&pending.request.recent);
  if (!sanitized.ok()) {
    stats_.RecordRejectedNonFinite();
    return sanitized.status();
  }
  if (!sanitized.value().clean()) {
    pending.keep_pos = std::move(sanitized.value().keep_pos);
    pending.masked_positions = sanitized.value().masked_positions;
    const double fraction =
        static_cast<double>(sanitized.value().masked_positions) /
        static_cast<double>(sanitized.value().total_positions);
    pending.degradation = fraction > options_.sanitizer.heavy_fraction
                              ? DegradationLevel::kHeavy
                              : DegradationLevel::kPartial;
  }

  core::Status injected = core::FailPointStatus("serve_enqueue");
  if (!injected.ok()) {
    stats_.RecordRejectedFull();
    return injected;
  }

  pending.enqueued_at = Clock::now();
  ForecastFuture future = pending.promise.get_future();
  core::Status pushed = queue_.Push(&pending);
  if (!pushed.ok()) {
    if (pushed.code() == core::StatusCode::kDeadlineExceeded) {
      stats_.RecordRejectedDeadline();
    } else {
      stats_.RecordRejectedFull();
    }
    return pushed;
  }
  stats_.RecordAccepted();
  stats_.UpdateQueueDepth(queue_.depth());
  return future;
}

HealthReport ForecastServer::CheckHealth() const {
  HealthReport report;
  report.live = started_ && running_.load();
  report.wedged = watchdog_.Wedged(options_.stall_budget);
  report.accepting =
      report.live && !queue_.closed() && queue_.depth() < queue_.capacity();
  report.model_version = registry_->current_version();
  report.queue_depth = queue_.depth();
  report.batch_in_flight_seconds = watchdog_.InFlightSeconds();
  report.primary_breaker = fallback_.primary_breaker().StateName();
  report.var_breaker = fallback_.var_breaker().StateName();
  report.ready = report.live && report.accepting && !report.wedged &&
                 report.model_version > 0;
  return report;
}

void ForecastServer::Shutdown() {
  if (!started_) return;
  bool was_running = running_.exchange(false);
  queue_.Close();
  if (was_running) batcher_.Join();
}

}  // namespace sstban::serving

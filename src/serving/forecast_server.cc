#include "serving/forecast_server.h"

#include <utility>

#include "core/failpoint.h"
#include "core/string_util.h"

namespace sstban::serving {

namespace {

BatcherOptions MakeBatcherOptions(const ServerOptions& options) {
  BatcherOptions batcher;
  batcher.max_batch = options.max_batch;
  batcher.max_wait = options.max_wait;
  batcher.input_len = options.input_len;
  batcher.output_len = options.output_len;
  batcher.steps_per_day = options.steps_per_day;
  batcher.executor_mode = options.executor_mode;
  batcher.precision = options.precision;
  return batcher;
}

}  // namespace

ForecastServer::ForecastServer(ServerOptions options, ModelRegistry* registry)
    : options_(options),
      registry_(registry),
      sanitizer_(options.sanitizer),
      fallback_(options.fallback),
      overload_(options.overload),
      queue_(options.queue_capacity),
      batcher_(MakeBatcherOptions(options), &queue_, registry, &stats_,
               &fallback_, &watchdog_, &overload_) {
  // Breaker and cache counters live in the fallback chain; hand the stats
  // sink a closure so /stats snapshots can fold them in.
  stats_.SetResilienceProvider([this] {
    ServerStats::ResilienceSummary summary;
    summary.fallback_enabled = fallback_.enabled();
    summary.var_available = fallback_.has_var_baseline();
    const CircuitBreaker& primary = fallback_.primary_breaker();
    summary.primary_breaker_state = primary.StateName();
    CircuitBreaker::Stats ps = primary.stats();
    summary.primary_trips = ps.trips;
    summary.primary_probes = ps.probes;
    summary.primary_rejected = ps.rejected;
    const CircuitBreaker& var = fallback_.var_breaker();
    summary.var_breaker_state = var.StateName();
    CircuitBreaker::Stats vs = var.stats();
    summary.var_trips = vs.trips;
    summary.var_probes = vs.probes;
    summary.var_rejected = vs.rejected;
    summary.cached_sensors = fallback_.cache().cached_sensors();
    return summary;
  });
  stats_.SetOverloadProvider([this] {
    ServerStats::OverloadSummary summary;
    AdmissionController::Snapshot a = overload_.admission().TakeSnapshot();
    summary.admission_enabled = a.enabled;
    summary.admission_limit = a.limit;
    summary.in_flight = a.in_flight;
    summary.min_batch_latency_ms = a.min_latency * 1e3;
    summary.shed_interactive = a.shed_interactive;
    summary.shed_batch = a.shed_batch;
    summary.shed_whatif = a.shed_whatif;
    summary.admission_backoffs = a.backoffs;
    BrownoutController::Snapshot b = overload_.brownout().TakeSnapshot();
    summary.brownout_enabled = b.enabled;
    summary.brownout_level = BrownoutLevelName(b.level);
    summary.brownout_probe_bytes = b.probe_bytes;
    summary.brownout_steps_up = b.steps_up;
    summary.brownout_steps_down = b.steps_down;
    summary.submit_p50_ms = overload_.submit_estimator().P50() * 1e3;
    summary.service_p50_ms = overload_.service_estimator().P50() * 1e3;
    return summary;
  });
}

ForecastServer::~ForecastServer() { Shutdown(); }

core::Status ForecastServer::Start() {
  if (started_) {
    return core::Status::FailedPrecondition("server already started");
  }
  if (registry_->current() == nullptr) {
    return core::Status::FailedPrecondition(
        "cannot start: the model registry has no version installed");
  }
  started_ = true;
  running_.store(true);
  batcher_.Start();
  return core::Status::Ok();
}

void ForecastServer::SetVarBaseline(std::unique_ptr<baselines::VarModel> var) {
  fallback_.SetVarBaseline(std::move(var));
}

core::StatusOr<ForecastFuture> ForecastServer::Submit(ForecastRequest request) {
  if (!running_.load()) {
    stats_.RecordRejectedShutdown();
    return core::Status::Unavailable("server is not running");
  }
  // Eagerly reject a deadline that has already passed: letting the sweep
  // find it later would burn a queue slot on work nobody wants.
  const Clock::time_point submit_now = Clock::now();
  if (request.deadline.has_value() && submit_now > *request.deadline) {
    stats_.RecordRejectedDeadline();
    return core::Status::DeadlineExceeded(
        "deadline already expired at submit time");
  }
  // Fail fast rather than queue behind a worker that will never drain: a
  // wedged batcher turns every accepted request into a client-side timeout.
  if (watchdog_.Wedged(options_.stall_budget)) {
    stats_.RecordRejectedWedged();
    return core::Status::Unavailable(core::StrFormat(
        "batcher wedged: current batch in flight for %.3fs (budget %.3fs)",
        watchdog_.InFlightSeconds(),
        std::chrono::duration<double>(options_.stall_budget).count()));
  }
  const tensor::Tensor& recent = request.recent;
  if (recent.rank() != 3 || recent.dim(0) != options_.input_len ||
      (options_.num_nodes >= 0 && recent.dim(1) != options_.num_nodes) ||
      (options_.num_features >= 0 &&
       recent.dim(2) != options_.num_features)) {
    stats_.RecordRejectedInvalid();
    std::string nodes_str = options_.num_nodes >= 0
                                ? std::to_string(options_.num_nodes)
                                : std::string("*");
    std::string feats_str = options_.num_features >= 0
                                ? std::to_string(options_.num_features)
                                : std::string("*");
    return core::Status::InvalidArgument(core::StrFormat(
        "expected a [%lld, %s, %s] window, got %s",
        static_cast<long long>(options_.input_len), nodes_str.c_str(),
        feats_str.c_str(), recent.shape().ToString().c_str()));
  }
  if (request.first_step < 0) {
    stats_.RecordRejectedInvalid();
    return core::Status::InvalidArgument("first_step must be >= 0");
  }

  // -- Overload control, cheapest verdicts first -----------------------------
  const Criticality criticality = request.criticality;
  // Brownout ladder: under memory pressure low-criticality traffic first
  // moves to the fallback tiers, then sheds outright. Interactive traffic is
  // untouched below kShedLow, and even there it keeps full service — memory
  // relief comes from the classes that can wait.
  bool force_fallback = false;
  const BrownoutLevel brownout = overload_.brownout().Update();
  if (criticality != Criticality::kInteractive &&
      brownout >= BrownoutLevel::kFallbackLow) {
    const bool can_fallback =
        fallback_.enabled() && brownout < BrownoutLevel::kShedLow;
    if (can_fallback) {
      force_fallback = true;
      stats_.RecordForcedFallback();
    } else {
      stats_.RecordShedBrownout();
      return core::Status::Unavailable(core::StrFormat(
          "brownout (%s): shedding %s traffic under memory pressure",
          BrownoutLevelName(brownout), CriticalityName(criticality)));
    }
  }
  // Deadline propagation: if the request cannot plausibly finish before its
  // deadline (remaining budget below the observed p50 end-to-end), reject
  // now instead of letting it ride the queue to a guaranteed sweep.
  const DeadlineOptions& dl = overload_.options().deadline;
  if (dl.enabled && request.deadline.has_value()) {
    const double p50 = overload_.submit_estimator().P50();
    const double remaining =
        std::chrono::duration<double>(*request.deadline - submit_now).count();
    if (p50 > 0.0 && remaining < dl.safety_factor * p50) {
      stats_.RecordRejectedPredictedLate();
      return core::Status::DeadlineExceeded(core::StrFormat(
          "cannot finish before deadline: %.1fms remaining < p50 estimate "
          "%.1fms",
          remaining * 1e3, p50 * 1e3));
    }
  }
  core::Status admit_injected = core::FailPointStatus("overload_admit");
  const bool admitted = admit_injected.ok() && overload_.admission().Admit(criticality);
  if (!admitted) {
    stats_.RecordShedAdmission();
    if (!admit_injected.ok()) return admit_injected;
    return core::Status::Unavailable(core::StrFormat(
        "admission limit reached (%.1f in flight, limit %.1f): %s load shed",
        static_cast<double>(overload_.admission().in_flight()),
        overload_.admission().limit(), CriticalityName(criticality)));
  }
  // Every path below must balance the admission slot with exactly one
  // OnTerminal — on rejection here, or in the batcher at the terminal.

  PendingRequest pending;
  pending.request = std::move(request);
  pending.force_fallback = force_fallback;

  // Input boundary: NaN/Inf/sentinel readings either reject the request
  // (strict channel) or become a keep mask + scrubbed window copy for
  // degraded-mode inference.
  core::StatusOr<SanitizeResult> sanitized =
      sanitizer_.Sanitize(&pending.request.recent);
  if (!sanitized.ok()) {
    overload_.admission().OnTerminal();
    stats_.RecordRejectedNonFinite();
    return sanitized.status();
  }
  if (!sanitized.value().clean()) {
    pending.keep_pos = std::move(sanitized.value().keep_pos);
    pending.masked_positions = sanitized.value().masked_positions;
    const double fraction =
        static_cast<double>(sanitized.value().masked_positions) /
        static_cast<double>(sanitized.value().total_positions);
    pending.degradation = fraction > options_.sanitizer.heavy_fraction
                              ? DegradationLevel::kHeavy
                              : DegradationLevel::kPartial;
  }

  core::Status injected = core::FailPointStatus("serve_enqueue");
  if (!injected.ok()) {
    overload_.admission().OnTerminal();
    stats_.RecordRejectedFull();
    return injected;
  }

  pending.enqueued_at = Clock::now();
  ForecastFuture future = pending.promise.get_future();
  PushReject cause = PushReject::kNone;
  core::Status pushed = queue_.Push(&pending, &cause);
  if (!pushed.ok()) {
    overload_.admission().OnTerminal();
    switch (cause) {
      case PushReject::kExpired:
        stats_.RecordRejectedDeadline();
        break;
      case PushReject::kClosed:
        stats_.RecordRejectedShutdown();
        break;
      case PushReject::kFull:
      case PushReject::kNone:
        stats_.RecordRejectedFull();
        break;
    }
    return pushed;
  }
  stats_.RecordAccepted();
  stats_.UpdateQueueDepth(queue_.depth());
  return future;
}

HealthReport ForecastServer::CheckHealth() const {
  HealthReport report;
  report.live = started_ && running_.load();
  report.wedged = watchdog_.Wedged(options_.stall_budget);
  report.accepting =
      report.live && !queue_.closed() && queue_.depth() < queue_.capacity();
  report.model_version = registry_->current_version();
  report.queue_depth = queue_.depth();
  report.batch_in_flight_seconds = watchdog_.InFlightSeconds();
  report.primary_breaker = fallback_.primary_breaker().StateName();
  report.var_breaker = fallback_.var_breaker().StateName();
  report.ready = report.live && report.accepting && !report.wedged &&
                 report.model_version > 0;
  return report;
}

void ForecastServer::Shutdown() {
  if (!started_) return;
  bool was_running = running_.exchange(false);
  queue_.Close();
  if (was_running) batcher_.Join();
}

}  // namespace sstban::serving

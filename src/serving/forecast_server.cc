#include "serving/forecast_server.h"

#include <utility>

#include "core/string_util.h"

namespace sstban::serving {

namespace {

BatcherOptions MakeBatcherOptions(const ServerOptions& options) {
  BatcherOptions batcher;
  batcher.max_batch = options.max_batch;
  batcher.max_wait = options.max_wait;
  batcher.input_len = options.input_len;
  batcher.output_len = options.output_len;
  batcher.steps_per_day = options.steps_per_day;
  return batcher;
}

}  // namespace

ForecastServer::ForecastServer(ServerOptions options, ModelRegistry* registry)
    : options_(options),
      registry_(registry),
      queue_(options.queue_capacity),
      batcher_(MakeBatcherOptions(options), &queue_, registry, &stats_) {}

ForecastServer::~ForecastServer() { Shutdown(); }

core::Status ForecastServer::Start() {
  if (started_) {
    return core::Status::FailedPrecondition("server already started");
  }
  if (registry_->current() == nullptr) {
    return core::Status::FailedPrecondition(
        "cannot start: the model registry has no version installed");
  }
  started_ = true;
  running_.store(true);
  batcher_.Start();
  return core::Status::Ok();
}

core::StatusOr<ForecastFuture> ForecastServer::Submit(ForecastRequest request) {
  if (!running_.load()) {
    return core::Status::Unavailable("server is not running");
  }
  const tensor::Tensor& recent = request.recent;
  if (recent.rank() != 3 || recent.dim(0) != options_.input_len ||
      (options_.num_nodes >= 0 && recent.dim(1) != options_.num_nodes) ||
      (options_.num_features >= 0 &&
       recent.dim(2) != options_.num_features)) {
    stats_.RecordRejectedInvalid();
    std::string nodes_str = options_.num_nodes >= 0
                                ? std::to_string(options_.num_nodes)
                                : std::string("*");
    std::string feats_str = options_.num_features >= 0
                                ? std::to_string(options_.num_features)
                                : std::string("*");
    return core::Status::InvalidArgument(core::StrFormat(
        "expected a [%lld, %s, %s] window, got %s",
        static_cast<long long>(options_.input_len), nodes_str.c_str(),
        feats_str.c_str(), recent.shape().ToString().c_str()));
  }
  if (request.first_step < 0) {
    stats_.RecordRejectedInvalid();
    return core::Status::InvalidArgument("first_step must be >= 0");
  }

  PendingRequest pending;
  pending.request = std::move(request);
  pending.enqueued_at = Clock::now();
  ForecastFuture future = pending.promise.get_future();
  core::Status pushed = queue_.Push(&pending);
  if (!pushed.ok()) {
    if (pushed.code() == core::StatusCode::kDeadlineExceeded) {
      stats_.RecordRejectedDeadline();
    } else {
      stats_.RecordRejectedFull();
    }
    return pushed;
  }
  stats_.RecordAccepted();
  stats_.UpdateQueueDepth(queue_.depth());
  return future;
}

void ForecastServer::Shutdown() {
  if (!started_) return;
  bool was_running = running_.exchange(false);
  queue_.Close();
  if (was_running) batcher_.Join();
}

}  // namespace sstban::serving

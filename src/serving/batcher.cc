#include "serving/batcher.h"

#include <utility>

#include "core/check.h"
#include "core/timer.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"
#include "training/forecast_service.h"

namespace sstban::serving {

namespace {

// Completes an expired request without spending any model compute on it.
void RejectExpired(PendingRequest* req, ServerStats* stats) {
  req->promise.set_value(core::Status::DeadlineExceeded(
      "deadline passed while the request waited in the queue"));
  stats->RecordRejectedDeadline();
}

}  // namespace

Batcher::Batcher(BatcherOptions options, RequestQueue* queue,
                 ModelRegistry* registry, ServerStats* stats)
    : options_(options), queue_(queue), registry_(registry), stats_(stats) {
  SSTBAN_CHECK(queue != nullptr);
  SSTBAN_CHECK(registry != nullptr);
  SSTBAN_CHECK(stats != nullptr);
  SSTBAN_CHECK_GT(options.max_batch, 0);
}

Batcher::~Batcher() {
  if (started_ && worker_.joinable()) {
    queue_->Close();
    worker_.join();
  }
}

void Batcher::Start() {
  SSTBAN_CHECK(!started_) << "Batcher started twice";
  started_ = true;
  worker_ = std::thread([this] { WorkerLoop(); });
}

void Batcher::Join() {
  if (started_ && worker_.joinable()) worker_.join();
}

void Batcher::WorkerLoop() {
  for (;;) {
    // Seed the next batch: prefer a held-over request, otherwise block for
    // the first arrival. nullopt means the queue closed and drained — once
    // the holdover is empty too, every promise has been fulfilled.
    PendingRequest first;
    if (!holdover_.empty()) {
      first = std::move(holdover_.front());
      holdover_.pop_front();
    } else {
      std::optional<PendingRequest> popped = queue_->PopBlocking();
      if (!popped.has_value()) return;
      first = std::move(*popped);
    }
    Clock::time_point seeded_at = Clock::now();
    stats_->RecordQueueWait(
        std::chrono::duration<double>(seeded_at - first.enqueued_at).count());
    if (first.Expired(seeded_at)) {
      RejectExpired(&first, stats_);
      continue;
    }

    core::Timer assembly;
    tensor::Shape key = first.request.recent.shape();
    std::vector<PendingRequest> batch;
    batch.push_back(std::move(first));

    // Pull shape-compatible holdovers first — they have waited longest.
    for (auto it = holdover_.begin();
         it != holdover_.end() &&
         static_cast<int64_t>(batch.size()) < options_.max_batch;) {
      if (it->request.recent.shape() == key) {
        batch.push_back(std::move(*it));
        it = holdover_.erase(it);
      } else {
        ++it;
      }
    }

    // Keep the batch open up to max_wait for more arrivals.
    Clock::time_point flush_at = seeded_at + options_.max_wait;
    while (static_cast<int64_t>(batch.size()) < options_.max_batch) {
      std::optional<PendingRequest> popped = queue_->PopUntil(flush_at);
      if (!popped.has_value()) break;
      Clock::time_point now = Clock::now();
      stats_->RecordQueueWait(
          std::chrono::duration<double>(now - popped->enqueued_at).count());
      if (popped->Expired(now)) {
        RejectExpired(&*popped, stats_);
        continue;
      }
      if (popped->request.recent.shape() == key) {
        batch.push_back(std::move(*popped));
      } else {
        holdover_.push_back(std::move(*popped));
      }
    }
    stats_->UpdateQueueDepth(queue_->depth());
    RunBatch(std::move(batch), assembly.ElapsedSeconds());
  }
}

void Batcher::RunBatch(std::vector<PendingRequest> batch,
                       double assembly_seconds) {
  stats_->RecordAssembly(assembly_seconds);
  const int64_t b = static_cast<int64_t>(batch.size());
  stats_->RecordBatch(b);

  // Pin the served snapshot for the whole batch: a concurrent hot-swap
  // publishes a new snapshot for *later* batches while this one finishes on
  // the weights it started with.
  std::shared_ptr<const ModelRegistry::Served> served = registry_->current();
  if (served != nullptr) {
    if (last_version_ != 0 && served->version != last_version_) {
      stats_->RecordHotSwap();
    }
    last_version_ = served->version;
  }
  if (served == nullptr) {
    for (PendingRequest& req : batch) {
      req.promise.set_value(
          core::Status::FailedPrecondition("no model version installed"));
    }
    return;
  }

  const int64_t p = options_.input_len;
  const int64_t q = options_.output_len;
  const int64_t n = batch[0].request.recent.dim(1);
  const int64_t c = batch[0].request.recent.dim(2);

  data::Batch model_batch;
  std::vector<tensor::Tensor> parts;
  parts.reserve(batch.size());
  for (PendingRequest& req : batch) {
    parts.push_back(req.request.recent.Reshape(tensor::Shape{1, p, n, c}));
    training::AppendCalendarFeatures(req.request.first_step, p, q,
                                     options_.steps_per_day, &model_batch);
  }
  model_batch.x = b == 1 ? parts[0] : tensor::Concat(parts, 0);
  model_batch.y = tensor::Tensor::Zeros(tensor::Shape{b, q, n, c});

  core::Timer forward;
  tensor::Tensor denorm = training::RunBatchedInference(
      served->model.get(), served->normalizer, model_batch);
  stats_->RecordForward(forward.ElapsedSeconds());

  // Cutting the batched output back into per-request slices is one memcpy
  // per request; fan it out and fulfil the promises in arrival order after.
  std::vector<tensor::Tensor> slices(static_cast<size_t>(b));
  tensor::ParallelForEachIndex(b, [&](int64_t i) {
    slices[static_cast<size_t>(i)] =
        tensor::Slice(denorm, 0, i, 1).Reshape(tensor::Shape{q, n, c});
  });

  Clock::time_point done = Clock::now();
  for (int64_t i = 0; i < b; ++i) {
    batch[i].promise.set_value(std::move(slices[static_cast<size_t>(i)]));
    stats_->RecordCompleted();
    stats_->RecordEndToEnd(
        std::chrono::duration<double>(done - batch[i].enqueued_at).count());
  }
}

}  // namespace sstban::serving

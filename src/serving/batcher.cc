#include "serving/batcher.h"

#include <exception>
#include <utility>

#include "core/check.h"
#include "core/failpoint.h"
#include "core/timer.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"
#include "training/forecast_service.h"

namespace sstban::serving {

// Completes an expired request without spending any model compute on it.
void Batcher::RejectExpired(PendingRequest* req) {
  req->promise.set_value(core::Status::DeadlineExceeded(
      "deadline passed while the request waited in the queue"));
  stats_->RecordRejectedDeadline();
  overload_->admission().OnTerminal();
}

bool Batcher::PredictedLate(const PendingRequest& req,
                            Clock::time_point now) const {
  const DeadlineOptions& dl = overload_->options().deadline;
  if (!dl.enabled || !req.request.deadline.has_value()) return false;
  const double p50 = overload_->service_estimator().P50();
  if (p50 <= 0.0) return false;
  const double remaining =
      std::chrono::duration<double>(*req.request.deadline - now).count();
  return remaining < dl.safety_factor * p50;
}

Batcher::Batcher(BatcherOptions options, RequestQueue* queue,
                 ModelRegistry* registry, ServerStats* stats,
                 FallbackChain* fallback, BatcherWatchdog* watchdog,
                 OverloadControl* overload)
    : options_(options),
      queue_(queue),
      registry_(registry),
      stats_(stats),
      fallback_(fallback),
      watchdog_(watchdog),
      overload_(overload) {
  SSTBAN_CHECK(queue != nullptr);
  SSTBAN_CHECK(registry != nullptr);
  SSTBAN_CHECK(stats != nullptr);
  SSTBAN_CHECK(fallback != nullptr);
  SSTBAN_CHECK(watchdog != nullptr);
  SSTBAN_CHECK(overload != nullptr);
  SSTBAN_CHECK_GT(options.max_batch, 0);
}

Batcher::~Batcher() {
  if (started_ && worker_.joinable()) {
    queue_->Close();
    worker_.join();
  }
}

void Batcher::Start() {
  SSTBAN_CHECK(!started_) << "Batcher started twice";
  started_ = true;
  worker_ = std::thread([this] { WorkerLoop(); });
}

void Batcher::Join() {
  if (started_ && worker_.joinable()) worker_.join();
}

void Batcher::SweepExpired(Clock::time_point now) {
  int64_t swept = queue_->SweepExpired(
      now, [this](PendingRequest&& req) { RejectExpired(&req); });
  for (auto it = holdover_.begin(); it != holdover_.end();) {
    if (it->Expired(now)) {
      RejectExpired(&*it);
      it = holdover_.erase(it);
      ++swept;
    } else {
      ++it;
    }
  }
  if (swept > 0) stats_->RecordSweptExpired(swept);
}

void Batcher::WorkerLoop() {
  for (;;) {
    watchdog_->MarkLoopTick();
    // Re-probe the brownout ladder every tick so a server with no incoming
    // traffic still steps back down once memory pressure clears.
    overload_->brownout().Update();
    // Expired requests never coalesce: anything whose deadline passed while
    // a previous (possibly slow) batch held the worker is terminated with
    // DeadlineExceeded before batch assembly even starts.
    SweepExpired(Clock::now());

    // Seed the next batch: prefer a held-over request, otherwise block for
    // the first arrival. nullopt means the queue closed and drained — once
    // the holdover is empty too, every promise has been fulfilled.
    PendingRequest first;
    if (!holdover_.empty()) {
      first = std::move(holdover_.front());
      holdover_.pop_front();
    } else {
      std::optional<PendingRequest> popped = queue_->PopBlocking();
      if (!popped.has_value()) return;
      first = std::move(*popped);
    }
    Clock::time_point seeded_at = Clock::now();
    stats_->RecordQueueWait(
        std::chrono::duration<double>(seeded_at - first.enqueued_at).count());
    if (first.Expired(seeded_at)) {
      RejectExpired(&first);
      continue;
    }
    if (PredictedLate(first, seeded_at)) {
      stats_->RecordSweptPredictedLate();
      RejectExpired(&first);
      continue;
    }

    core::Timer assembly;
    // Batch identity is shape + routing tier: force-fallback requests (the
    // brownout verdict) never coalesce with primary traffic, so skipping
    // the model for them costs primary requests nothing.
    tensor::Shape key = first.request.recent.shape();
    const bool fallback_key = first.force_fallback;
    std::vector<PendingRequest> batch;
    batch.push_back(std::move(first));

    // Pull batch-compatible holdovers first — they have waited longest.
    for (auto it = holdover_.begin();
         it != holdover_.end() &&
         static_cast<int64_t>(batch.size()) < options_.max_batch;) {
      if (it->request.recent.shape() == key &&
          it->force_fallback == fallback_key) {
        batch.push_back(std::move(*it));
        it = holdover_.erase(it);
      } else {
        ++it;
      }
    }

    // Keep the batch open up to max_wait for more arrivals.
    Clock::time_point flush_at = seeded_at + options_.max_wait;
    while (static_cast<int64_t>(batch.size()) < options_.max_batch) {
      std::optional<PendingRequest> popped = queue_->PopUntil(flush_at);
      if (!popped.has_value()) break;
      Clock::time_point now = Clock::now();
      stats_->RecordQueueWait(
          std::chrono::duration<double>(now - popped->enqueued_at).count());
      if (popped->Expired(now)) {
        RejectExpired(&*popped);
        continue;
      }
      if (PredictedLate(*popped, now)) {
        stats_->RecordSweptPredictedLate();
        RejectExpired(&*popped);
        continue;
      }
      if (popped->request.recent.shape() == key &&
          popped->force_fallback == fallback_key) {
        batch.push_back(std::move(*popped));
      } else {
        holdover_.push_back(std::move(*popped));
      }
    }
    stats_->UpdateQueueDepth(queue_->depth());
    RunBatch(std::move(batch), assembly.ElapsedSeconds());
  }
}

bool Batcher::RunPrimary(const ModelRegistry::Served& served,
                         const data::Batch& model_batch,
                         const tensor::Tensor& keep_pos,
                         tensor::Tensor* denorm) {
  core::Timer forward;
  // Injected faults, a throwing model, and non-finite output are the same
  // event from the caller's perspective: one failed primary pass, recorded
  // against the breaker.
  core::Status injected = core::FailPointStatus("serve_batch_run");
  bool ok = injected.ok();
  if (ok) {
    try {
      // No-op when unchanged; on a hot-swap the fresh model picks the
      // configured mode up here before its first compiled program.
      served.model->set_inference_precision(options_.precision);
      if (keep_pos.defined()) {
        core::StatusOr<tensor::Tensor> masked =
            training::RunBatchedInferenceMasked(served.model.get(),
                                                served.normalizer, model_batch,
                                                keep_pos,
                                                options_.executor_mode);
        ok = masked.ok();
        if (ok) *denorm = std::move(masked).value();
      } else {
        *denorm = training::RunBatchedInference(served.model.get(),
                                                served.normalizer, model_batch,
                                                options_.executor_mode);
      }
      ok = ok && !tensor::HasNonFinite(*denorm);
    } catch (const std::exception&) {
      ok = false;
    }
  }
  if (ok) {
    stats_->RecordForward(forward.ElapsedSeconds());
    fallback_->primary_breaker().RecordSuccess(forward.ElapsedSeconds());
  } else {
    fallback_->primary_breaker().RecordFailure();
  }
  return ok;
}

void Batcher::RunBatch(std::vector<PendingRequest> batch,
                       double assembly_seconds) {
  stats_->RecordAssembly(assembly_seconds);
  const int64_t b = static_cast<int64_t>(batch.size());
  stats_->RecordBatch(b);
  // Brownout verdict carried from Submit: the whole batch bypasses the
  // primary model and serves from the fallback tiers (batches are
  // tier-homogeneous by construction in WorkerLoop).
  const bool force_fallback = batch[0].force_fallback && fallback_->enabled();
  core::Timer execution;  // feeds the dequeue-time service estimate

  watchdog_->MarkBatchStart(Clock::now());

  // Pin the served snapshot for the whole batch: a concurrent hot-swap
  // publishes a new snapshot for *later* batches while this one finishes on
  // the weights it started with. An injected registry fault serves the batch
  // from the fallback tiers instead of the model.
  std::shared_ptr<const ModelRegistry::Served> served;
  if (core::FailPointStatus("registry_get").ok()) {
    served = registry_->current();
  }
  if (served != nullptr) {
    if (last_version_ != 0 && served->version != last_version_) {
      stats_->RecordHotSwap();
      // A fresh model must not inherit the old version's failure window.
      fallback_->primary_breaker().OnModelSwapped();
    }
    last_version_ = served->version;
  }
  if (served == nullptr && !fallback_->enabled()) {
    for (PendingRequest& req : batch) {
      req.promise.set_value(
          core::Status::FailedPrecondition("no model version installed"));
      overload_->admission().OnTerminal();
    }
    watchdog_->MarkBatchEnd();
    return;
  }

  const int64_t p = options_.input_len;
  const int64_t q = options_.output_len;
  const int64_t n = batch[0].request.recent.dim(1);
  const int64_t c = batch[0].request.recent.dim(2);

  data::Batch model_batch;
  std::vector<tensor::Tensor> parts;
  parts.reserve(batch.size());
  bool any_masked = false;
  for (PendingRequest& req : batch) {
    parts.push_back(req.request.recent.Reshape(tensor::Shape{1, p, n, c}));
    training::AppendCalendarFeatures(req.request.first_step, p, q,
                                     options_.steps_per_day, &model_batch);
    any_masked = any_masked || req.keep_pos.defined();
  }
  model_batch.x = b == 1 ? parts[0] : tensor::Concat(parts, 0);
  model_batch.y = tensor::Tensor::Zeros(tensor::Shape{b, q, n, c});

  // Batched keep mask: clean requests contribute an all-ones [P, N] plane so
  // they can coalesce with degraded ones in a single pass.
  tensor::Tensor keep_pos;
  if (any_masked) {
    std::vector<tensor::Tensor> keeps;
    keeps.reserve(batch.size());
    for (PendingRequest& req : batch) {
      keeps.push_back(req.keep_pos.defined()
                          ? req.keep_pos.Reshape(tensor::Shape{1, p, n})
                          : tensor::Tensor::Ones(tensor::Shape{1, p, n}));
    }
    keep_pos = b == 1 ? keeps[0] : tensor::Concat(keeps, 0);
  }

  // -- Tier 1: the primary model, behind its circuit breaker ------------------
  tensor::Tensor denorm;
  ServedBy served_by = ServedBy::kModel;
  bool primary_ok = false;
  if (served != nullptr && !force_fallback) {
    if (!fallback_->enabled() || fallback_->primary_breaker().Allow()) {
      primary_ok = RunPrimary(*served, model_batch, keep_pos, &denorm);
    }
  }

  std::vector<tensor::Tensor> slices(static_cast<size_t>(b));
  std::vector<int64_t> cache_ages;  // filled only on the cache tier
  if (primary_ok) {
    // Cutting the batched output back into per-request slices is one memcpy
    // per request; fan it out and fulfil the promises in arrival order after.
    tensor::ParallelForEachIndex(b, [&](int64_t i) {
      slices[static_cast<size_t>(i)] =
          tensor::Slice(denorm, 0, i, 1).Reshape(tensor::Shape{q, n, c});
    });
    // The cache entry's logical timestamp is the producing request's
    // first_step; staleness of later fallback serves is measured against it.
    fallback_->cache().Update(slices.back(),
                              batch.back().request.first_step);
  } else if (fallback_->enabled()) {
    std::vector<int64_t> first_steps;
    first_steps.reserve(batch.size());
    for (const PendingRequest& req : batch) {
      first_steps.push_back(req.request.first_step);
    }
    core::Status degraded = fallback_->Run(
        model_batch, served != nullptr ? &served->normalizer : nullptr, q,
        first_steps, &slices, &served_by, &cache_ages);
    if (!degraded.ok()) {
      // The chain itself faulted (serve_fallback injection): the one path
      // where a request terminates Unavailable instead of degraded-Ok.
      Clock::time_point done = Clock::now();
      for (PendingRequest& req : batch) {
        req.promise.set_value(core::Status::Unavailable(
            "model pass failed and fallback chain errored: " +
            degraded.message()));
        stats_->RecordEndToEnd(
            std::chrono::duration<double>(done - req.enqueued_at).count());
        overload_->admission().OnTerminal();
      }
      watchdog_->MarkBatchEnd();
      return;
    }
  } else {
    Clock::time_point done = Clock::now();
    for (PendingRequest& req : batch) {
      req.promise.set_value(
          core::Status::Unavailable("model pass failed (fallback disabled)"));
      stats_->RecordEndToEnd(
          std::chrono::duration<double>(done - req.enqueued_at).count());
      overload_->admission().OnTerminal();
    }
    watchdog_->MarkBatchEnd();
    return;
  }

  const int64_t version =
      served_by == ServedBy::kModel && served != nullptr ? served->version : 0;
  Clock::time_point done = Clock::now();
  double e2e_sum = 0.0;
  for (int64_t i = 0; i < b; ++i) {
    PendingRequest& req = batch[static_cast<size_t>(i)];
    ForecastResponse response;
    response.forecast = std::move(slices[static_cast<size_t>(i)]);
    response.degradation = req.degradation;
    response.served_by = served_by;
    response.masked_positions = req.masked_positions;
    response.model_version = version;
    if (!cache_ages.empty()) {
      response.cache_age_steps = cache_ages[static_cast<size_t>(i)];
    }
    const double e2e =
        std::chrono::duration<double>(done - req.enqueued_at).count();
    req.promise.set_value(std::move(response));
    stats_->RecordCompleted();
    stats_->RecordDegradation(req.degradation);
    stats_->RecordServedBy(served_by);
    stats_->RecordEndToEnd(e2e);
    overload_->admission().OnTerminal();
    overload_->submit_estimator().Record(e2e);
    e2e_sum += e2e;
  }
  // Steer the admission limit with this batch's mean end-to-end latency
  // (queue wait included — that is the congestion signal) and refresh the
  // dequeue-time service estimate with the pure execution time.
  overload_->admission().OnBatchLatency(e2e_sum / static_cast<double>(b));
  overload_->service_estimator().Record(execution.ElapsedSeconds());
  watchdog_->MarkBatchEnd();
}

}  // namespace sstban::serving

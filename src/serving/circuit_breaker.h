#ifndef SSTBAN_SERVING_CIRCUIT_BREAKER_H_
#define SSTBAN_SERVING_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "serving/request.h"

namespace sstban::serving {

struct CircuitBreakerOptions {
  // Rolling outcome window the trip conditions are evaluated over.
  int64_t window = 32;
  // No tripping before this many outcomes are in the window (a single cold
  // failure must not open the breaker).
  int64_t min_samples = 8;
  // Open when failures / window-size reaches this fraction...
  double error_rate_threshold = 0.5;
  // ...or when the window's `latency_quantile` latency exceeds this bound
  // (<= 0 disables the latency condition).
  double latency_threshold_seconds = 0.0;
  double latency_quantile = 0.99;
  // Open -> half-open probe schedule: first probe after `cooldown`, doubling
  // on every re-trip up to `max_cooldown` (exponential backoff).
  std::chrono::milliseconds cooldown{100};
  std::chrono::milliseconds max_cooldown{5000};
  // Successful probes required in half-open before closing again.
  int64_t probe_successes_to_close = 2;
};

// Per-model-tier circuit breaker: closed passes everything and records
// outcomes; too many failures (or a latency-quantile blow-up) trips it open,
// which sheds the tier entirely until the cooldown expires; half-open lets a
// bounded number of probes through — success closes, failure re-opens with
// doubled cooldown. All transitions are count- and clock-driven, and the
// clock is injectable so tests are deterministic without sleeping.
//
// Thread-safe; Allow/Record are a short mutex hold each, no allocation once
// the rolling window has filled (it is a fixed-capacity ring after warmup).
class CircuitBreaker {
 public:
  enum class State { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  using NowFn = std::function<Clock::time_point()>;

  explicit CircuitBreaker(CircuitBreakerOptions options, NowFn now = nullptr);

  // True when a request may use this tier right now. In the open state this
  // is where the cooldown expiry is noticed (transitioning to half-open and
  // admitting one probe); in half-open only `probe_successes_to_close`
  // concurrent probes are admitted.
  bool Allow();

  // Outcome of an admitted request. Latency (seconds) feeds the quantile
  // condition; failures count toward the error rate.
  void RecordSuccess(double latency_seconds);
  void RecordFailure();

  // The served model changed under us (hot-swap): give the new version a
  // fresh start — clear the rolling window and close.
  void OnModelSwapped();

  State state() const;
  const char* StateName() const;

  struct Stats {
    int64_t trips = 0;        // closed/half-open -> open transitions
    int64_t probes = 0;       // requests admitted while half-open
    int64_t rejected = 0;     // Allow() == false
    int64_t consecutive_trips = 0;  // backoff exponent
  };
  Stats stats() const;

 private:
  // Successes store their latency (clamped >= 0); failures store this mark.
  static constexpr double kFailureMark = -1.0;

  void PushOutcomeLocked(double outcome);
  // Evaluates the trip conditions over the window; caller holds mutex_.
  void MaybeTripLocked(Clock::time_point now);
  void OpenLocked(Clock::time_point now);
  double WindowQuantileLocked(double q) const;

  CircuitBreakerOptions options_;
  NowFn now_;
  mutable std::mutex mutex_;
  State state_ = State::kClosed;
  // Fixed-capacity rolling outcome ring (no allocation after construction).
  std::vector<double> ring_;
  int64_t ring_count_ = 0;
  int64_t ring_head_ = 0;
  int64_t window_failures_ = 0;
  mutable std::vector<double> scratch_;  // quantile workspace, pre-reserved
  Clock::time_point open_until_{};
  int64_t half_open_in_flight_ = 0;
  int64_t half_open_successes_ = 0;
  Stats stats_;
};

}  // namespace sstban::serving

#endif  // SSTBAN_SERVING_CIRCUIT_BREAKER_H_

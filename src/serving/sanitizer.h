#ifndef SSTBAN_SERVING_SANITIZER_H_
#define SSTBAN_SERVING_SANITIZER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/status.h"
#include "tensor/tensor.h"

namespace sstban::serving {

// Input-boundary policy for broken sensor readings.
struct SanitizerOptions {
  // Channels whose NaN/Inf/sentinel readings may be routed through the
  // model's masking mechanism instead of rejecting the request. Channels NOT
  // listed here are strict: any non-finite value in them is InvalidArgument.
  // Empty (the default) = strict everywhere.
  std::vector<int64_t> degradable_channels;
  // Optional sentinel that upstream feeds use to flag a missing reading
  // (e.g. -1 in loop-detector exports). Compared exactly; NaN/Inf are always
  // treated as missing on degradable channels.
  std::optional<float> missing_sentinel;
  // A request with more than this fraction of its [P, N] positions masked is
  // annotated kHeavy instead of kPartial.
  double heavy_fraction = 0.3;
  // Reject (InvalidArgument) when every position of the window is missing —
  // there is no observation left to condition on.
  bool reject_fully_masked = true;
};

// The sanitizer's verdict on one [P, N, C] window.
struct SanitizeResult {
  // [P, N] with 1 = observed; an undefined tensor when nothing was masked
  // (the clean hot path allocates nothing).
  tensor::Tensor keep_pos;
  int64_t masked_positions = 0;
  int64_t total_positions = 0;
  bool clean() const { return masked_positions == 0; }
};

// Detects NaN/Inf/sentinel readings at the serving boundary. For degradable
// channels it scrubs the offending values (so they cannot poison a coalesced
// batch: 0 * mask is 0, NaN * mask is NaN) and emits the [P, N] keep mask
// the encoder consumes for degraded-mode inference. For strict channels it
// returns InvalidArgument naming the first offending index.
//
// A clean window is a single read-only scan (no allocation, no writes). A
// broken one is re-pointed at a private clone before scrubbing, so the
// client's storage is never mutated. Thread-compatible: no shared state.
class InputSanitizer {
 public:
  explicit InputSanitizer(SanitizerOptions options);

  core::StatusOr<SanitizeResult> Sanitize(tensor::Tensor* window) const;

  const SanitizerOptions& options() const { return options_; }

 private:
  SanitizerOptions options_;
  // Dense per-channel degradable flags, sized lazily per window's C.
  bool ChannelDegradable(int64_t channel) const;
};

}  // namespace sstban::serving

#endif  // SSTBAN_SERVING_SANITIZER_H_

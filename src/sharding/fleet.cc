#include "sharding/fleet.h"

#include <utility>

#include "core/check.h"
#include "sharding/shard_model.h"

namespace sstban::sharding {

core::StatusOr<std::unique_ptr<ShardedFleet>> ShardedFleet::Create(
    const graph::TrafficGraph& graph, const sstban::SstbanModel& full_model,
    const data::Normalizer& normalizer, const FleetOptions& options) {
  if (options.replicas_per_shard < 1) {
    return core::Status::InvalidArgument("replicas_per_shard must be >= 1");
  }
  if (full_model.config().num_nodes != graph.num_nodes()) {
    return core::Status::InvalidArgument("model/graph node count mismatch");
  }
  auto plan_or = PartitionGraph(graph, options.partition);
  if (!plan_or.ok()) return plan_or.status();

  auto fleet = std::unique_ptr<ShardedFleet>(new ShardedFleet());
  fleet->plan_ = std::move(plan_or).value();
  fleet->replicas_per_shard_ = options.replicas_per_shard;
  fleet->workers_.reserve(fleet->plan_.num_shards *
                          options.replicas_per_shard);
  for (const ShardSpec& spec : fleet->plan_.shards) {
    // Every replica gets an independent slice plus a factory building
    // architecture-compatible empty models, so per-shard checkpoint
    // hot-swap (registry.LoadVersion) works exactly like the single-server
    // path.
    sstban::SstbanConfig shard_config = full_model.config();
    shard_config.num_nodes = static_cast<int64_t>(spec.view.size());
    auto factory = [shard_config]() -> std::unique_ptr<training::TrafficModel> {
      return std::make_unique<sstban::SstbanModel>(shard_config);
    };
    for (int64_t r = 0; r < options.replicas_per_shard; ++r) {
      fleet->workers_.push_back(std::make_unique<ShardWorker>(
          spec, factory, BuildShardModel(full_model, spec.view), normalizer,
          options.server));
    }
  }
  std::vector<std::vector<ShardWorker*>> by_shard(fleet->plan_.num_shards);
  for (int64_t s = 0; s < fleet->plan_.num_shards; ++s) {
    for (int64_t r = 0; r < options.replicas_per_shard; ++r) {
      by_shard[s].push_back(
          fleet->workers_[s * options.replicas_per_shard + r].get());
    }
  }
  fleet->router_ = std::make_unique<ShardRouter>(
      &fleet->plan_, std::move(by_shard), options.router);
  return fleet;
}

core::Status ShardedFleet::Start() {
  if (started_) return core::Status::Ok();
  for (auto& worker : workers_) {
    SSTBAN_RETURN_IF_ERROR(worker->Start());
  }
  SSTBAN_RETURN_IF_ERROR(router_->Start());
  started_ = true;
  return core::Status::Ok();
}

void ShardedFleet::Shutdown() {
  if (router_ != nullptr) router_->Shutdown();
  for (auto& worker : workers_) worker->Shutdown();
  started_ = false;
}

}  // namespace sstban::sharding

#include "sharding/partitioner.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <map>

#include "core/check.h"
#include "core/rng.h"
#include "core/string_util.h"

namespace sstban::sharding {

namespace {

// Undirected neighbor lists with merged weights and directed-edge
// multiplicities. The partitioner treats the sensor network as undirected:
// congestion couples both directions of a corridor, and the cut metric
// counts directed edges, so a pair with edges both ways costs 2 when split.
struct UndirectedAdjacency {
  // neighbor id -> (summed weight, number of directed edges between pair)
  std::vector<std::vector<std::tuple<int64_t, float, int64_t>>> nbrs;

  explicit UndirectedAdjacency(const graph::TrafficGraph& graph) {
    const int64_t n = graph.num_nodes();
    std::vector<std::map<int64_t, std::pair<float, int64_t>>> merged(n);
    for (const auto& [from, to, weight] : graph.edges()) {
      if (from == to) continue;
      auto& a = merged[from][to];
      a.first += weight;
      a.second += 1;
      auto& b = merged[to][from];
      b.first += weight;
      b.second += 1;
    }
    nbrs.resize(n);
    for (int64_t v = 0; v < n; ++v) {
      nbrs[v].reserve(merged[v].size());
      for (const auto& [u, wc] : merged[v]) {
        nbrs[v].emplace_back(u, wc.first, wc.second);
      }
    }
  }
};

// Picks K seeds spread across the graph: the first at random, each next one
// maximizing the hop distance to its nearest already-chosen seed (farthest-
// point traversal), ties to the smallest id. Disconnected components get
// seeded naturally because unreachable nodes have infinite distance.
std::vector<int64_t> SpreadSeeds(const UndirectedAdjacency& adj, int64_t n,
                                 int64_t k, core::Rng& rng) {
  constexpr int64_t kInf = std::numeric_limits<int64_t>::max();
  std::vector<int64_t> seeds;
  seeds.reserve(k);
  std::vector<int64_t> dist(n, kInf);  // hops to nearest seed
  auto relax_from = [&](int64_t seed) {
    std::deque<int64_t> frontier;
    dist[seed] = 0;
    frontier.push_back(seed);
    while (!frontier.empty()) {
      int64_t v = frontier.front();
      frontier.pop_front();
      for (const auto& [u, w, c] : adj.nbrs[v]) {
        (void)w;
        (void)c;
        if (dist[u] == kInf || dist[u] > dist[v] + 1) {
          dist[u] = dist[v] + 1;
          frontier.push_back(u);
        }
      }
    }
  };
  int64_t first = static_cast<int64_t>(rng.NextBelow(static_cast<uint32_t>(n)));
  seeds.push_back(first);
  relax_from(first);
  while (static_cast<int64_t>(seeds.size()) < k) {
    int64_t best = -1;
    int64_t best_dist = -1;
    for (int64_t v = 0; v < n; ++v) {
      if (dist[v] == 0) continue;  // already a seed
      if (dist[v] > best_dist) {
        best_dist = dist[v];
        best = v;
      }
    }
    SSTBAN_CHECK(best >= 0) << "fewer candidate seeds than shards";
    seeds.push_back(best);
    relax_from(best);
  }
  return seeds;
}

// Greedy corridor growth: always extend the currently-smallest shard by the
// unassigned node most strongly connected to it, so shard sizes never
// diverge by more than one and shards follow corridors.
std::vector<int64_t> GrowShards(const UndirectedAdjacency& adj, int64_t n,
                                int64_t k,
                                const std::vector<int64_t>& seeds) {
  std::vector<int64_t> shard_of(n, -1);
  std::vector<int64_t> size(k, 0);
  // conn[v][s]: summed edge weight from unassigned v into shard s.
  std::vector<std::vector<float>> conn(n, std::vector<float>(k, 0.0f));
  int64_t assigned = 0;
  auto assign = [&](int64_t v, int64_t s) {
    shard_of[v] = s;
    ++size[s];
    ++assigned;
    for (const auto& [u, w, c] : adj.nbrs[v]) {
      (void)c;
      if (shard_of[u] < 0) conn[u][s] += w;
    }
  };
  for (int64_t s = 0; s < k; ++s) assign(seeds[s], s);
  int64_t next_unassigned = 0;
  while (assigned < n) {
    int64_t s = 0;
    for (int64_t t = 1; t < k; ++t) {
      if (size[t] < size[s]) s = t;
    }
    int64_t best = -1;
    float best_conn = 0.0f;
    for (int64_t v = 0; v < n; ++v) {
      if (shard_of[v] >= 0) continue;
      if (conn[v][s] > best_conn) {
        best_conn = conn[v][s];
        best = v;
      }
    }
    if (best < 0) {
      // The shard's frontier is exhausted (component boundary): take the
      // smallest-id unassigned node to keep growth deterministic.
      while (shard_of[next_unassigned] >= 0) ++next_unassigned;
      best = next_unassigned;
    }
    assign(best, s);
  }
  return shard_of;
}

// Boundary refinement: move a node to a neighboring shard when that strictly
// reduces the number of cut (directed) edges and both shards stay within the
// balance band [floor(N/K), ceil(N/K)].
void RefineBoundary(const UndirectedAdjacency& adj, int64_t n, int64_t k,
                    int64_t passes, std::vector<int64_t>* shard_of) {
  const int64_t lo = n / k;
  const int64_t hi = (n + k - 1) / k;
  std::vector<int64_t> size(k, 0);
  for (int64_t v = 0; v < n; ++v) ++size[(*shard_of)[v]];
  for (int64_t pass = 0; pass < passes; ++pass) {
    bool improved = false;
    for (int64_t v = 0; v < n; ++v) {
      const int64_t a = (*shard_of)[v];
      if (size[a] <= lo) continue;
      // Directed-edge multiplicity of v's links into each shard.
      std::vector<int64_t> links(k, 0);
      for (const auto& [u, w, c] : adj.nbrs[v]) {
        (void)w;
        links[(*shard_of)[u]] += c;
      }
      int64_t best_shard = a;
      int64_t best_links = links[a];
      for (int64_t b = 0; b < k; ++b) {
        if (b == a || size[b] >= hi) continue;
        if (links[b] > best_links ||
            (links[b] == best_links && b < best_shard && best_shard != a)) {
          best_links = links[b];
          best_shard = b;
        }
      }
      if (best_shard != a) {
        (*shard_of)[v] = best_shard;
        --size[a];
        ++size[best_shard];
        improved = true;
      }
    }
    if (!improved) break;
  }
}

std::vector<int64_t> StripeAssignment(int64_t n, int64_t k) {
  std::vector<int64_t> shard_of(n);
  // Contiguous ranges with sizes differing by at most one.
  for (int64_t v = 0; v < n; ++v) shard_of[v] = v * k / n;
  return shard_of;
}

// Materializes ShardSpecs (owned / halo / view / index maps) from a total
// assignment vector.
ShardPlan BuildPlan(const graph::TrafficGraph& graph,
                    const UndirectedAdjacency& adj,
                    const PartitionOptions& options,
                    std::vector<int64_t> shard_of) {
  const int64_t n = graph.num_nodes();
  const int64_t k = options.num_shards;
  ShardPlan plan;
  plan.num_nodes = n;
  plan.num_shards = k;
  plan.halo_hops = options.halo_hops;
  plan.shard_of = std::move(shard_of);
  plan.total_edges = static_cast<int64_t>(graph.edges().size());
  plan.cross_shard_edges = CountCrossEdges(graph, plan.shard_of);
  plan.shards.resize(k);
  for (int64_t s = 0; s < k; ++s) plan.shards[s].shard_id = s;
  for (int64_t v = 0; v < n; ++v) {
    plan.shards[plan.shard_of[v]].owned.push_back(v);  // ascending by loop
  }
  for (ShardSpec& spec : plan.shards) {
    // Halo: undirected BFS up to halo_hops from the owned set.
    std::vector<int64_t> hops(n, -1);
    std::deque<int64_t> frontier;
    for (int64_t v : spec.owned) {
      hops[v] = 0;
      frontier.push_back(v);
    }
    while (!frontier.empty()) {
      int64_t v = frontier.front();
      frontier.pop_front();
      if (hops[v] >= options.halo_hops) continue;
      for (const auto& [u, w, c] : adj.nbrs[v]) {
        (void)w;
        (void)c;
        if (hops[u] < 0) {
          hops[u] = hops[v] + 1;
          frontier.push_back(u);
        }
      }
    }
    for (int64_t v = 0; v < n; ++v) {
      if (hops[v] > 0) spec.halo.push_back(v);
    }
    spec.view.reserve(spec.owned.size() + spec.halo.size());
    for (int64_t v = 0; v < n; ++v) {
      if (hops[v] >= 0) spec.view.push_back(v);
    }
    spec.view_local_of.assign(n, -1);
    for (size_t i = 0; i < spec.view.size(); ++i) {
      spec.view_local_of[spec.view[i]] = static_cast<int64_t>(i);
    }
    spec.owned_view_index.reserve(spec.owned.size());
    for (int64_t v : spec.owned) {
      spec.owned_view_index.push_back(spec.view_local_of[v]);
    }
  }
  return plan;
}

core::Status ValidateOptions(const graph::TrafficGraph& graph,
                             const PartitionOptions& options) {
  if (options.num_shards < 1) {
    return core::Status::InvalidArgument(core::StrFormat(
        "num_shards must be >= 1, got %lld",
        static_cast<long long>(options.num_shards)));
  }
  if (options.num_shards > graph.num_nodes()) {
    return core::Status::InvalidArgument(core::StrFormat(
        "num_shards (%lld) exceeds sensor count (%lld)",
        static_cast<long long>(options.num_shards),
        static_cast<long long>(graph.num_nodes())));
  }
  if (options.halo_hops < 0) {
    return core::Status::InvalidArgument("halo_hops must be >= 0");
  }
  return core::Status::Ok();
}

}  // namespace

std::string ShardPlan::Summary() const {
  std::vector<std::string> sizes;
  sizes.reserve(shards.size());
  for (const ShardSpec& s : shards) {
    sizes.push_back(core::StrFormat(
        "%lld(+%lld halo)", static_cast<long long>(s.owned.size()),
        static_cast<long long>(s.halo.size())));
  }
  return core::StrFormat(
      "partition: K=%lld N=%lld halo_hops=%lld cut=%lld/%lld owned=[%s]",
      static_cast<long long>(num_shards), static_cast<long long>(num_nodes),
      static_cast<long long>(halo_hops),
      static_cast<long long>(cross_shard_edges),
      static_cast<long long>(total_edges), core::Join(sizes, ", ").c_str());
}

int64_t CountCrossEdges(const graph::TrafficGraph& graph,
                        const std::vector<int64_t>& shard_of) {
  SSTBAN_CHECK_EQ(static_cast<int64_t>(shard_of.size()), graph.num_nodes());
  int64_t cross = 0;
  for (const auto& [from, to, weight] : graph.edges()) {
    (void)weight;
    if (shard_of[from] != shard_of[to]) ++cross;
  }
  return cross;
}

core::StatusOr<ShardPlan> PartitionGraph(const graph::TrafficGraph& graph,
                                         const PartitionOptions& options) {
  SSTBAN_RETURN_IF_ERROR(ValidateOptions(graph, options));
  const int64_t n = graph.num_nodes();
  const int64_t k = options.num_shards;
  UndirectedAdjacency adj(graph);
  core::Rng rng(options.seed, /*stream=*/0x5ad0);
  std::vector<int64_t> seeds = SpreadSeeds(adj, n, k, rng);
  std::vector<int64_t> grown = GrowShards(adj, n, k, seeds);
  RefineBoundary(adj, n, k, options.refine_passes, &grown);
  // Never worse than the naive baseline: keep whichever assignment cuts
  // fewer directed edges (ties go to the corridor-grown plan).
  std::vector<int64_t> striped = StripeAssignment(n, k);
  if (CountCrossEdges(graph, striped) < CountCrossEdges(graph, grown)) {
    grown = std::move(striped);
  }
  return BuildPlan(graph, adj, options, std::move(grown));
}

core::StatusOr<ShardPlan> StripePartition(const graph::TrafficGraph& graph,
                                          const PartitionOptions& options) {
  SSTBAN_RETURN_IF_ERROR(ValidateOptions(graph, options));
  UndirectedAdjacency adj(graph);
  return BuildPlan(graph, adj, options,
                   StripeAssignment(graph.num_nodes(), options.num_shards));
}

}  // namespace sstban::sharding

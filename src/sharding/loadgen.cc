#include "sharding/loadgen.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "core/check.h"
#include "core/histogram.h"
#include "core/rng.h"
#include "core/string_util.h"

namespace sstban::sharding {

namespace {

struct InFlight {
  ShardedFuture future;
  Clock::time_point scheduled_at;
};

}  // namespace

std::string LoadGenReport::ToJson() const {
  return core::StrFormat(
      "{\"offered_rps\": %.3f, \"achieved_rps\": %.3f, "
      "\"duration_seconds\": %.6f, \"submitted\": %lld, \"ok\": %lld, "
      "\"partial\": %lld, \"rejected\": %lld, \"deadline_exceeded\": %lld, "
      "\"unavailable\": %lld, \"invalid\": %lld, \"latency_ms\": "
      "{\"mean\": %.6f, \"p50\": %.6f, \"p90\": %.6f, \"p99\": %.6f, "
      "\"p999\": %.6f, \"max\": %.6f}}",
      offered_rps, achieved_rps, duration_seconds,
      static_cast<long long>(submitted), static_cast<long long>(ok),
      static_cast<long long>(partial), static_cast<long long>(rejected),
      static_cast<long long>(deadline_exceeded),
      static_cast<long long>(unavailable), static_cast<long long>(invalid),
      mean * 1e3, p50 * 1e3, p90 * 1e3, p99 * 1e3, p999 * 1e3, max * 1e3);
}

LoadGenReport RunOpenLoopLoad(ShardRouter* router,
                              const tensor::Tensor& window, int64_t first_step,
                              const LoadGenOptions& options) {
  SSTBAN_CHECK(options.rate_rps > 0.0);
  SSTBAN_CHECK(options.requests > 0);
  const int64_t n = router->plan().num_nodes;

  // The whole schedule — arrival offsets, widths, sensor subsets — is drawn
  // up front so the offered load is identical across runs with one seed.
  core::Rng rng(options.seed, /*stream=*/0x10ad);
  std::vector<double> arrival_offsets(options.requests);
  std::vector<std::vector<int64_t>> subsets(options.requests);
  double t = 0.0;
  for (int64_t i = 0; i < options.requests; ++i) {
    t += -std::log(1.0 - rng.NextDouble()) / options.rate_rps;
    arrival_offsets[i] = t;
    const double u = std::max(1e-12, 1.0 - rng.NextDouble());
    const double raw = static_cast<double>(options.min_sensors) *
                       std::pow(u, -1.0 / options.size_alpha);
    const int64_t width = std::min<int64_t>(
        n, std::max<int64_t>(options.min_sensors,
                             static_cast<int64_t>(raw)));
    subsets[i] = (width >= n) ? std::vector<int64_t>{}
                              : rng.SampleWithoutReplacement(n, width);
  }

  LoadGenReport report;
  report.offered_rps = options.rate_rps;

  core::Histogram latencies(1e-6, 1.3, 90);
  std::mutex stats_mutex;
  std::atomic<int64_t> ok{0}, partial{0}, deadline_exceeded{0},
      unavailable{0}, invalid{0}, rejected{0};

  // Completion drain: a FIFO of in-flight futures consumed by a small pool.
  // Waits overlap in wall time, so FIFO observation adds at most scheduler
  // noise to the recorded latencies.
  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<InFlight> in_flight;
  bool submitting = true;
  auto drain = [&] {
    while (true) {
      InFlight item;
      {
        std::unique_lock<std::mutex> lock(queue_mutex);
        queue_cv.wait(lock,
                      [&] { return !in_flight.empty() || !submitting; });
        if (in_flight.empty()) return;
        item = std::move(in_flight.front());
        in_flight.pop_front();
      }
      ShardedResult result = item.future.get();
      const double latency =
          std::chrono::duration<double>(Clock::now() - item.scheduled_at)
              .count();
      {
        std::unique_lock<std::mutex> lock(stats_mutex);
        latencies.Record(latency);
      }
      if (result.ok()) {
        if (result.value().failed_sensors.empty()) {
          ok.fetch_add(1);
        } else {
          partial.fetch_add(1);
        }
      } else {
        switch (result.status().code()) {
          case core::StatusCode::kDeadlineExceeded:
            deadline_exceeded.fetch_add(1);
            break;
          case core::StatusCode::kInvalidArgument:
            invalid.fetch_add(1);
            break;
          default:
            unavailable.fetch_add(1);
        }
      }
    }
  };
  std::vector<std::thread> drainers;
  const int64_t drain_threads = std::max<int64_t>(1, options.completion_threads);
  drainers.reserve(drain_threads);
  for (int64_t i = 0; i < drain_threads; ++i) drainers.emplace_back(drain);

  const Clock::time_point start = Clock::now();
  for (int64_t i = 0; i < options.requests; ++i) {
    const Clock::time_point scheduled =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(arrival_offsets[i]));
    std::this_thread::sleep_until(scheduled);  // open loop: never waits on answers
    ShardedRequest request;
    request.recent = window;
    request.sensors = subsets[i];
    request.first_step = first_step;
    request.criticality = options.criticality;
    if (options.deadline.count() > 0) {
      request.deadline = scheduled + options.deadline;
    }
    ++report.submitted;
    auto submitted = router->Submit(std::move(request));
    if (!submitted.ok()) {
      rejected.fetch_add(1);
      // A synchronous rejection is a terminal answer at ~zero latency.
      const double latency =
          std::chrono::duration<double>(Clock::now() - scheduled).count();
      std::unique_lock<std::mutex> lock(stats_mutex);
      latencies.Record(latency);
      continue;
    }
    {
      std::unique_lock<std::mutex> lock(queue_mutex);
      in_flight.push_back(
          InFlight{std::move(submitted).value(), scheduled});
    }
    queue_cv.notify_one();
  }
  {
    std::unique_lock<std::mutex> lock(queue_mutex);
    submitting = false;
  }
  queue_cv.notify_all();
  for (std::thread& thread : drainers) thread.join();
  const Clock::time_point end = Clock::now();

  report.duration_seconds =
      std::chrono::duration<double>(end - start).count();
  report.ok = ok.load();
  report.partial = partial.load();
  report.rejected = rejected.load();
  report.deadline_exceeded = deadline_exceeded.load();
  report.unavailable = unavailable.load();
  report.invalid = invalid.load();
  report.achieved_rps =
      report.duration_seconds > 0.0
          ? static_cast<double>(report.ok + report.partial) /
                report.duration_seconds
          : 0.0;
  report.p50 = latencies.Quantile(0.50);
  report.p90 = latencies.Quantile(0.90);
  report.p99 = latencies.Quantile(0.99);
  report.p999 = latencies.Quantile(0.999);
  report.mean = latencies.mean();
  report.max = latencies.max();
  return report;
}

}  // namespace sstban::sharding

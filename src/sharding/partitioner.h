#ifndef SSTBAN_SHARDING_PARTITIONER_H_
#define SSTBAN_SHARDING_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "graph/traffic_graph.h"

namespace sstban::sharding {

struct PartitionOptions {
  // K-way split; every sensor lands in exactly one shard's `owned` set.
  int64_t num_shards = 4;
  // Undirected hop radius of the halo each shard sees beyond its owned
  // sensors. 0 means the shard view is exactly its owned set (sufficient
  // for the temporal-only model, SstbanConfig::spatial_mixing = false);
  // a radius covering the whole graph reproduces the unsharded model
  // exactly even with spatial attention on.
  int64_t halo_hops = 0;
  // Seeds the corridor-growth heuristic; the same seed always yields the
  // same plan regardless of thread count.
  uint64_t seed = 1;
  // Local-refinement passes trading boundary nodes to reduce cut edges.
  int64_t refine_passes = 4;
};

// One shard's slice of the sensor network. All index vectors are sorted
// ascending, so slicing a [*, N, C] tensor down to `view` and back is
// order-preserving.
struct ShardSpec {
  int64_t shard_id = 0;
  std::vector<int64_t> owned;  // global sensor ids this shard answers for
  std::vector<int64_t> halo;   // extra context sensors (disjoint from owned)
  std::vector<int64_t> view;   // sorted(owned ∪ halo): the model's node axis
  // Global sensor id -> index into `view`, or -1 when the sensor is not in
  // this shard's view. Size = total sensors in the graph.
  std::vector<int64_t> view_local_of;
  // For each entry of `owned` (in order), its index into `view` — the rows
  // of the shard forecast that are authoritative.
  std::vector<int64_t> owned_view_index;
};

// A complete K-way partition of the sensor graph.
struct ShardPlan {
  int64_t num_nodes = 0;
  int64_t num_shards = 0;
  int64_t halo_hops = 0;
  std::vector<ShardSpec> shards;
  // Global sensor id -> owning shard id. Size num_nodes; total cover, no
  // overlaps (every sensor appears in exactly one shard's `owned`).
  std::vector<int64_t> shard_of;
  // Directed edges of the graph whose endpoints live in different shards.
  int64_t cross_shard_edges = 0;
  int64_t total_edges = 0;

  std::string Summary() const;
};

// Corridor-aware balanced K-way partition. Grows shards greedily from
// spread-out seeds, always extending the currently-smallest shard along its
// strongest frontier edge (so corridors stay contiguous), then runs
// boundary refinement, and finally keeps whichever of {refined plan, naive
// striping} cuts fewer edges. Guarantees:
//   - every sensor is owned by exactly one shard,
//   - max and min owned-set sizes differ by at most one,
//   - cross-shard edge count <= that of StripePartition,
//   - deterministic for a given (graph, options), independent of threads.
// InvalidArgument when num_shards < 1, num_shards > num_nodes, or
// halo_hops < 0.
core::StatusOr<ShardPlan> PartitionGraph(const graph::TrafficGraph& graph,
                                         const PartitionOptions& options);

// The naive baseline: sensor i goes to shard i * K / N (contiguous id
// ranges). Used as the quality floor and for tests.
core::StatusOr<ShardPlan> StripePartition(const graph::TrafficGraph& graph,
                                          const PartitionOptions& options);

// Directed edges whose endpoints are owned by different shards, given a
// total assignment vector (size num_nodes).
int64_t CountCrossEdges(const graph::TrafficGraph& graph,
                        const std::vector<int64_t>& shard_of);

}  // namespace sstban::sharding

#endif  // SSTBAN_SHARDING_PARTITIONER_H_

#ifndef SSTBAN_SHARDING_SHARD_WORKER_H_
#define SSTBAN_SHARDING_SHARD_WORKER_H_

#include <memory>
#include <utility>

#include "baselines/var_model.h"
#include "core/status.h"
#include "data/normalizer.h"
#include "serving/forecast_server.h"
#include "serving/model_registry.h"
#include "sharding/partitioner.h"

namespace sstban::sharding {

// One shard replica: a full ForecastServer (batcher, sanitizer,
// breaker/fallback chain, watchdog — all reused unchanged) serving a model
// whose node axis is this shard's view. Requests submitted here must
// already be sliced to the view ([P, view.size(), C]); the router does the
// slicing. The worker owns its registry, so per-shard hot-swap works
// exactly like the single-server path.
class ShardWorker {
 public:
  // `options.num_nodes` is overridden to the view size; everything else
  // (batching, queue bounds, sanitizer, fallback, stall budget) applies
  // per replica as-is.
  ShardWorker(ShardSpec spec, serving::ModelRegistry::ModelFactory factory,
              std::unique_ptr<training::TrafficModel> model,
              data::Normalizer normalizer, serving::ServerOptions options);

  ShardWorker(const ShardWorker&) = delete;
  ShardWorker& operator=(const ShardWorker&) = delete;

  // Must be called before Start (mirrors ForecastServer::SetVarBaseline).
  void SetVarBaseline(std::unique_ptr<baselines::VarModel> var) {
    server_.SetVarBaseline(std::move(var));
  }

  core::Status Start() { return server_.Start(); }
  void Shutdown() { server_.Shutdown(); }

  core::StatusOr<serving::ForecastFuture> Submit(
      serving::ForecastRequest request) {
    return server_.Submit(std::move(request));
  }

  serving::HealthReport CheckHealth() const { return server_.CheckHealth(); }

  const ShardSpec& spec() const { return spec_; }
  serving::ModelRegistry& registry() { return registry_; }
  serving::ForecastServer& server() { return server_; }
  const serving::ForecastServer& server() const { return server_; }

 private:
  static serving::ServerOptions WithViewNodes(serving::ServerOptions options,
                                              const ShardSpec& spec) {
    options.num_nodes = static_cast<int64_t>(spec.view.size());
    return options;
  }

  ShardSpec spec_;
  serving::ModelRegistry registry_;
  serving::ForecastServer server_;
};

}  // namespace sstban::sharding

#endif  // SSTBAN_SHARDING_SHARD_WORKER_H_

#include "sharding/shard_model.h"

#include <cstring>
#include <string>
#include <utility>

#include "core/check.h"

namespace sstban::sharding {

namespace t = ::sstban::tensor;

t::Tensor GatherNodes(const t::Tensor& recent,
                      const std::vector<int64_t>& nodes) {
  SSTBAN_CHECK_EQ(recent.rank(), 3);
  const int64_t p = recent.dim(0), n = recent.dim(1), c = recent.dim(2);
  const int64_t s = static_cast<int64_t>(nodes.size());
  t::Tensor out = t::Tensor::Empty(t::Shape{p, s, c});
  const float* src = recent.data();
  float* dst = out.data();
  for (int64_t step = 0; step < p; ++step) {
    for (int64_t i = 0; i < s; ++i) {
      const int64_t v = nodes[i];
      SSTBAN_CHECK(v >= 0 && v < n) << "node " << v << " out of [0, " << n << ")";
      std::memcpy(dst + (step * s + i) * c, src + (step * n + v) * c,
                  static_cast<size_t>(c) * sizeof(float));
    }
  }
  return out;
}

void ScatterNodes(const t::Tensor& shard_slice,
                  const std::vector<int64_t>& nodes, t::Tensor* full) {
  SSTBAN_CHECK_EQ(shard_slice.rank(), 3);
  SSTBAN_CHECK_EQ(full->rank(), 3);
  const int64_t p = shard_slice.dim(0);
  const int64_t s = shard_slice.dim(1);
  const int64_t c = shard_slice.dim(2);
  SSTBAN_CHECK_EQ(full->dim(0), p);
  SSTBAN_CHECK_EQ(full->dim(2), c);
  SSTBAN_CHECK_EQ(static_cast<int64_t>(nodes.size()), s);
  const int64_t n = full->dim(1);
  const float* src = shard_slice.data();
  float* dst = full->data();
  for (int64_t step = 0; step < p; ++step) {
    for (int64_t i = 0; i < s; ++i) {
      const int64_t v = nodes[i];
      SSTBAN_CHECK(v >= 0 && v < n) << "node " << v << " out of [0, " << n << ")";
      std::memcpy(dst + (step * n + v) * c, src + (step * s + i) * c,
                  static_cast<size_t>(c) * sizeof(float));
    }
  }
}

std::unique_ptr<sstban::SstbanModel> BuildShardModel(
    const sstban::SstbanModel& full, const std::vector<int64_t>& view_nodes) {
  const int64_t n = full.config().num_nodes;
  const int64_t s = static_cast<int64_t>(view_nodes.size());
  SSTBAN_CHECK(s >= 1) << "empty shard view";
  for (size_t i = 0; i < view_nodes.size(); ++i) {
    SSTBAN_CHECK(view_nodes[i] >= 0 && view_nodes[i] < n);
    if (i > 0) SSTBAN_CHECK(view_nodes[i] > view_nodes[i - 1])
        << "view nodes must be sorted ascending and unique";
  }

  sstban::SstbanConfig config = full.config();
  config.num_nodes = s;
  auto shard = std::make_unique<sstban::SstbanModel>(config);

  // Architectures agree except for the node axis, so NamedParameters walks
  // both trees in the same order with the same names.
  auto full_params = full.NamedParameters();
  auto shard_params = shard->NamedParameters();
  SSTBAN_CHECK_EQ(full_params.size(), shard_params.size());
  for (size_t i = 0; i < full_params.size(); ++i) {
    const std::string& name = full_params[i].first;
    SSTBAN_CHECK(name == shard_params[i].first)
        << "parameter order mismatch: " << name << " vs "
        << shard_params[i].first;
    const t::Tensor& src = full_params[i].second.value();
    t::Tensor& dst = shard_params[i].second.mutable_value();
    if (name == "ste.spatial.weight") {
      // [N, d] node embedding: gather the view rows.
      SSTBAN_CHECK_EQ(src.dim(0), n);
      SSTBAN_CHECK_EQ(dst.dim(0), s);
      const int64_t d = src.dim(1);
      for (int64_t row = 0; row < s; ++row) {
        std::memcpy(dst.data() + row * d, src.data() + view_nodes[row] * d,
                    static_cast<size_t>(d) * sizeof(float));
      }
    } else {
      SSTBAN_CHECK(src.shape() == dst.shape())
          << "unexpected node-dependent parameter " << name;
      std::memcpy(dst.data(), src.data(),
                  static_cast<size_t>(src.size()) * sizeof(float));
    }
  }
  shard->SetTraining(false);
  return shard;
}

}  // namespace sstban::sharding

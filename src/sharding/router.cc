#include "sharding/router.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "core/check.h"
#include "core/string_util.h"
#include "sharding/shard_model.h"

namespace sstban::sharding {

namespace t = ::sstban::tensor;

bool ShardedResponse::degraded() const {
  if (!failed_sensors.empty()) return true;
  if (degradation != serving::DegradationLevel::kNone) return true;
  for (const ShardOutcome& o : shards) {
    if (o.status.ok() && o.served_by != serving::ServedBy::kModel) return true;
  }
  return false;
}

ShardRouter::ShardRouter(const ShardPlan* plan,
                         std::vector<std::vector<ShardWorker*>> workers,
                         RouterOptions options)
    : plan_(plan),
      workers_(std::move(workers)),
      options_(options),
      brownout_(options.brownout),
      gather_estimator_(options.deadline.window, options.deadline.min_samples) {
  SSTBAN_CHECK(plan_ != nullptr);
  SSTBAN_CHECK_EQ(static_cast<int64_t>(workers_.size()), plan_->num_shards);
  for (const auto& replicas : workers_) {
    SSTBAN_CHECK(!replicas.empty()) << "every shard needs >= 1 replica";
  }
  budgets_.resize(workers_.size());
  for (size_t s = 0; s < workers_.size(); ++s) {
    budgets_[s].reserve(workers_[s].size());
    for (size_t r = 0; r < workers_[s].size(); ++r) {
      budgets_[s].push_back(
          std::make_unique<serving::RetryBudget>(options_.retry_budget));
    }
  }
  const serving::ServerOptions& geom = workers_[0][0]->server().options();
  input_len_ = geom.input_len;
  output_len_ = geom.output_len;
  num_features_ = geom.num_features;
  per_shard_.reset(new PerShardCounters[plan_->num_shards]);
}

ShardRouter::~ShardRouter() { Shutdown(); }

core::Status ShardRouter::Start() {
  if (running_.load()) return core::Status::Ok();
  running_.store(true);
  const int64_t n = std::max<int64_t>(1, options_.gather_threads);
  gatherers_.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    gatherers_.emplace_back([this] { GatherLoop(); });
  }
  return core::Status::Ok();
}

void ShardRouter::Shutdown() {
  if (!running_.exchange(false)) return;
  queue_cv_.notify_all();
  for (std::thread& thread : gatherers_) {
    if (thread.joinable()) thread.join();
  }
  gatherers_.clear();
  // Anything still parked resolves to a terminal, never a hang.
  std::deque<GatherTask> leftover;
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    leftover.swap(queue_);
  }
  for (GatherTask& task : leftover) {
    failed_.fetch_add(1);
    task.promise.set_value(
        core::Status::Unavailable("router shut down before gather"));
  }
}

core::StatusOr<ShardedFuture> ShardRouter::Submit(ShardedRequest request) {
  if (!running_.load()) {
    rejected_.fetch_add(1);
    return core::Status::Unavailable("router is not running");
  }
  const int64_t n = plan_->num_nodes;
  if (request.recent.rank() != 3 || request.recent.dim(0) != input_len_ ||
      request.recent.dim(1) != n || request.recent.dim(2) != num_features_) {
    rejected_.fetch_add(1);
    return core::Status::InvalidArgument(core::StrFormat(
        "recent window must be [%lld, %lld, %lld]",
        static_cast<long long>(input_len_), static_cast<long long>(n),
        static_cast<long long>(num_features_)));
  }
  std::vector<int64_t> sensors = std::move(request.sensors);
  if (sensors.empty()) {
    sensors.resize(n);
    for (int64_t v = 0; v < n; ++v) sensors[v] = v;
  }
  for (int64_t v : sensors) {
    if (v < 0 || v >= n) {
      rejected_.fetch_add(1);
      return core::Status::InvalidArgument(
          core::StrFormat("sensor id %lld out of [0, %lld)",
                          static_cast<long long>(v), static_cast<long long>(n)));
    }
  }
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    if (static_cast<int64_t>(queue_.size()) >= options_.queue_capacity) {
      rejected_.fetch_add(1);
      return core::Status::Unavailable("router gather queue is full");
    }
  }

  const Clock::time_point now = Clock::now();
  // Fleet-level brownout tick (hedging is gated on the result in Dispatch)
  // and deadline propagation: a request that cannot plausibly gather before
  // its deadline is rejected here instead of fanning out to every shard.
  brownout_.Update();
  if (options_.deadline.enabled && request.deadline.has_value()) {
    const double p50 = gather_estimator_.P50();
    const double remaining =
        std::chrono::duration<double>(*request.deadline - now).count();
    // Already-expired deadlines are NOT rejected here: the scatter/gather
    // contract resolves them through the future (each shard server rejects
    // eagerly at its own Submit), so only the predictive gate fires.
    if (p50 > 0.0 && remaining < options_.deadline.safety_factor * p50) {
      rejected_.fetch_add(1);
      rejected_predicted_late_.fetch_add(1);
      return core::Status::DeadlineExceeded(core::StrFormat(
          "cannot gather before deadline: %.1fms remaining < p50 estimate "
          "%.1fms",
          remaining * 1e3, p50 * 1e3));
    }
  }
  Clock::time_point shard_deadline = now + options_.shard_timeout;
  if (request.deadline.has_value() && *request.deadline < shard_deadline) {
    shard_deadline = *request.deadline;
  }

  // Group the requested sensor positions by owning shard.
  std::vector<std::vector<int64_t>> positions_of(plan_->num_shards);
  for (size_t i = 0; i < sensors.size(); ++i) {
    positions_of[plan_->shard_of[sensors[i]]].push_back(
        static_cast<int64_t>(i));
  }

  GatherTask task;
  task.sensors = std::move(sensors);
  task.submitted_at = now;
  task.give_up_at = shard_deadline + options_.gather_grace;
  task.output_len = output_len_;
  task.num_features = num_features_;
  for (int64_t s = 0; s < plan_->num_shards; ++s) {
    if (positions_of[s].empty()) continue;
    const ShardSpec& spec = plan_->shards[s];
    PendingShard pending;
    pending.shard = s;
    pending.outcome.shard = s;
    pending.positions = std::move(positions_of[s]);
    pending.view_rows.reserve(pending.positions.size());
    for (int64_t pos : pending.positions) {
      pending.view_rows.push_back(spec.view_local_of[task.sensors[pos]]);
    }
    serving::ForecastRequest sub;
    sub.recent = GatherNodes(request.recent, spec.view);
    sub.first_step = request.first_step;
    sub.deadline = shard_deadline;
    sub.criticality = request.criticality;
    Dispatch(s, std::move(sub), &pending);
    task.pending.push_back(std::move(pending));
  }
  submitted_.fetch_add(1);

  std::future<ShardedResult> future = task.promise.get_future();
  {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
  return future;
}

namespace {

bool ReplicaHealthy(const serving::HealthReport& health) {
  return health.ready && health.primary_breaker != "open";
}

}  // namespace

void ShardRouter::Dispatch(int64_t shard, serving::ForecastRequest request,
                           PendingShard* out) {
  std::vector<ShardWorker*>& replicas = workers_[shard];
  const int64_t r = static_cast<int64_t>(replicas.size());
  const int64_t start = rotation_.fetch_add(1) % r;
  std::vector<int64_t> order(r);
  for (int64_t i = 0; i < r; ++i) order[i] = (start + i) % r;
  // Every sub-request earns each replica bucket a fraction of a token:
  // hedges + failovers toward a replica stay capped at
  // burst + ratio * primary traffic no matter how sick the fleet gets.
  for (int64_t i = 0; i < r; ++i) budgets_[shard][i]->OnPrimary();
  // Brownout level >= kNoHedge turns retries off outright — when memory is
  // the bottleneck, every hedge is pure amplification.
  const bool retries_allowed =
      brownout_.level() < serving::BrownoutLevel::kNoHedge;
  if (options_.hedge_on_unhealthy && retries_allowed && r > 1) {
    // Route around a replica whose probe says not-ready or whose primary
    // breaker is open: move the first healthy replica to the front — if the
    // healthy target still has hedge budget.
    for (int64_t i = 0; i < r; ++i) {
      if (ReplicaHealthy(replicas[order[i]]->CheckHealth())) {
        if (i > 0) {
          if (budgets_[shard][order[i]]->TryAcquire()) {
            std::rotate(order.begin(), order.begin() + i, order.end());
            out->outcome.hedged = true;
            hedges_.fetch_add(1);
          } else {
            hedges_denied_.fetch_add(1);
          }
        }
        break;
      }
    }
  }
  core::Status last = core::Status::Unavailable("no replica accepted");
  for (int64_t i = 0; i < r; ++i) {
    ShardWorker* worker = replicas[order[i]];
    if (i > 0) {
      if (!retries_allowed) {
        last = core::Status::Unavailable(core::StrFormat(
            "failover suppressed (brownout %s): %s",
            serving::BrownoutLevelName(brownout_.level()),
            last.message().c_str()));
        break;
      }
      if (!budgets_[shard][order[i]]->TryAcquire()) {
        failovers_denied_.fetch_add(1);
        last = core::Status::Unavailable(
            "failover budget exhausted: " + last.message());
        break;
      }
      out->outcome.failed_over = true;
      failovers_.fetch_add(1);
    }
    out->outcome.replica = order[i];
    shard_dispatches_.fetch_add(1);
    per_shard_[shard].dispatched.fetch_add(1);
    auto submitted = worker->Submit(request);  // tensor copy is shallow
    if (submitted.ok()) {
      out->outcome.status = core::Status::Ok();
      out->future = std::move(submitted).value();
      return;
    }
    last = submitted.status();
  }
  out->outcome.status = last;
}

void ShardRouter::GatherLoop() {
  while (true) {
    GatherTask task;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return !queue_.empty() || !running_.load(); });
      if (queue_.empty()) {
        if (!running_.load()) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    Finish(std::move(task));
  }
}

void ShardRouter::Finish(GatherTask task) {
  const int64_t q = task.output_len;
  const int64_t c = task.num_features;
  const int64_t s = static_cast<int64_t>(task.sensors.size());

  ShardedResponse response;
  response.sensors = task.sensors;
  response.forecast =
      t::Tensor::Full(t::Shape{q, s, c}, std::numeric_limits<float>::quiet_NaN());

  int64_t num_ok = 0;
  core::Status worst = core::Status::Ok();
  bool saw_deadline = false, saw_unavailable = false;
  for (PendingShard& pending : task.pending) {
    serving::ForecastResult result =
        core::Status::Unavailable("shard dispatch failed");
    if (!pending.outcome.status.ok()) {
      result = pending.outcome.status;
    } else {
      // Dispatch succeeded; wait out the shard (bounded by give_up_at).
      if (pending.future.wait_until(task.give_up_at) ==
          std::future_status::ready) {
        result = pending.future.get();
      } else {
        result = core::Status::DeadlineExceeded(
            core::StrFormat("shard %lld did not answer in time",
                            static_cast<long long>(pending.shard)));
      }
    }
    if (result.ok()) {
      const serving::ForecastResponse& shard_response = result.value();
      pending.outcome.status = core::Status::Ok();
      pending.outcome.served_by = shard_response.served_by;
      pending.outcome.degradation = shard_response.degradation;
      pending.outcome.model_version = shard_response.model_version;
      if (static_cast<int>(shard_response.degradation) >
          static_cast<int>(response.degradation)) {
        response.degradation = shard_response.degradation;
      }
      const t::Tensor& shard_forecast = shard_response.forecast;
      SSTBAN_CHECK_EQ(shard_forecast.dim(0), q);
      SSTBAN_CHECK_EQ(shard_forecast.dim(2), c);
      const int64_t view = shard_forecast.dim(1);
      const float* src = shard_forecast.data();
      float* dst = response.forecast.data();
      for (size_t i = 0; i < pending.positions.size(); ++i) {
        const int64_t pos = pending.positions[i];
        const int64_t row = pending.view_rows[i];
        for (int64_t step = 0; step < q; ++step) {
          std::memcpy(dst + (step * s + pos) * c,
                      src + (step * view + row) * c,
                      static_cast<size_t>(c) * sizeof(float));
        }
      }
      ++num_ok;
      per_shard_[pending.shard].ok.fetch_add(1);
    } else {
      pending.outcome.status = result.status();
      if (result.status().code() == core::StatusCode::kDeadlineExceeded) {
        saw_deadline = true;
      }
      if (result.status().code() == core::StatusCode::kUnavailable) {
        saw_unavailable = true;
      }
      if (worst.ok()) worst = result.status();
      for (int64_t pos : pending.positions) {
        response.failed_sensors.push_back(task.sensors[pos]);
      }
      shard_failures_.fetch_add(1);
      per_shard_[pending.shard].failed.fetch_add(1);
    }
    response.shards.push_back(pending.outcome);
  }
  std::sort(response.failed_sensors.begin(), response.failed_sensors.end());

  const double latency =
      std::chrono::duration<double>(Clock::now() - task.submitted_at).count();
  {
    std::unique_lock<std::mutex> lock(latency_mutex_);
    latency_.Record(latency);
  }
  gather_estimator_.Record(latency);

  const bool all_ok = response.failed_sensors.empty();
  if (num_ok > 0 && (all_ok || options_.partial_results)) {
    completed_.fetch_add(1);
    if (!all_ok) partial_.fetch_add(1);
    task.promise.set_value(std::move(response));
    return;
  }
  failed_.fetch_add(1);
  if (saw_deadline) {
    task.promise.set_value(core::Status::DeadlineExceeded(
        "no shard answered before the deadline"));
  } else if (saw_unavailable || worst.ok()) {
    task.promise.set_value(
        core::Status::Unavailable("all shards unavailable"));
  } else {
    task.promise.set_value(worst);
  }
}

RouterStatsSnapshot ShardRouter::StatsSnapshot() const {
  RouterStatsSnapshot snap;
  snap.submitted = submitted_.load();
  snap.completed = completed_.load();
  snap.partial = partial_.load();
  snap.failed = failed_.load();
  snap.rejected = rejected_.load();
  snap.rejected_predicted_late = rejected_predicted_late_.load();
  snap.hedges = hedges_.load();
  snap.failovers = failovers_.load();
  snap.hedges_denied = hedges_denied_.load();
  snap.failovers_denied = failovers_denied_.load();
  snap.shard_dispatches = shard_dispatches_.load();
  snap.shard_failures = shard_failures_.load();
  snap.brownout_level = serving::BrownoutLevelName(brownout_.level());
  {
    std::unique_lock<std::mutex> lock(latency_mutex_);
    snap.latency_p50 = latency_.Quantile(0.50);
    snap.latency_p90 = latency_.Quantile(0.90);
    snap.latency_p99 = latency_.Quantile(0.99);
    snap.latency_mean = latency_.mean();
    snap.latency_max = latency_.max();
  }
  return snap;
}

std::string ShardRouter::FleetTable() const {
  RouterStatsSnapshot r = StatsSnapshot();
  std::string out = core::StrFormat(
      "fleet: %lld shards, %s\n"
      "router: submitted=%lld completed=%lld partial=%lld failed=%lld "
      "rejected=%lld (predicted-late=%lld) hedges=%lld failovers=%lld\n"
      "router overload: brownout=%s hedges-denied=%lld failovers-denied=%lld\n"
      "router latency (ms): mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f\n",
      static_cast<long long>(plan_->num_shards), plan_->Summary().c_str(),
      static_cast<long long>(r.submitted), static_cast<long long>(r.completed),
      static_cast<long long>(r.partial), static_cast<long long>(r.failed),
      static_cast<long long>(r.rejected),
      static_cast<long long>(r.rejected_predicted_late),
      static_cast<long long>(r.hedges), static_cast<long long>(r.failovers),
      r.brownout_level.c_str(), static_cast<long long>(r.hedges_denied),
      static_cast<long long>(r.failovers_denied), r.latency_mean * 1e3,
      r.latency_p50 * 1e3, r.latency_p90 * 1e3, r.latency_p99 * 1e3,
      r.latency_max * 1e3);
  out += core::StrFormat("  %5s %7s %6s %7s %9s %9s %9s %10s %s\n", "shard",
                         "replica", "ready", "version", "dispatched",
                         "accepted", "completed", "e2e_p50ms", "breaker");
  for (int64_t s = 0; s < plan_->num_shards; ++s) {
    for (size_t i = 0; i < workers_[s].size(); ++i) {
      const ShardWorker* w = workers_[s][i];
      serving::HealthReport h = w->CheckHealth();
      serving::ServerStats::Snapshot stats = w->server().stats().TakeSnapshot();
      out += core::StrFormat(
          "  %5lld %7lld %6s %7lld %9lld %9lld %9lld %10.3f %s\n",
          static_cast<long long>(s), static_cast<long long>(i),
          h.ready ? "yes" : "NO", static_cast<long long>(h.model_version),
          static_cast<long long>(per_shard_[s].dispatched.load()),
          static_cast<long long>(stats.accepted),
          static_cast<long long>(stats.completed), stats.end_to_end.p50 * 1e3,
          h.primary_breaker.c_str());
    }
  }
  return out;
}

std::string ShardRouter::FleetJson() const {
  RouterStatsSnapshot r = StatsSnapshot();
  std::string out = "{\n";
  out += core::StrFormat(
      "  \"plan\": {\"num_shards\": %lld, \"num_nodes\": %lld, "
      "\"halo_hops\": %lld, \"cross_shard_edges\": %lld, "
      "\"total_edges\": %lld},\n",
      static_cast<long long>(plan_->num_shards),
      static_cast<long long>(plan_->num_nodes),
      static_cast<long long>(plan_->halo_hops),
      static_cast<long long>(plan_->cross_shard_edges),
      static_cast<long long>(plan_->total_edges));
  out += core::StrFormat(
      "  \"router\": {\"submitted\": %lld, \"completed\": %lld, "
      "\"partial\": %lld, \"failed\": %lld, \"rejected\": %lld, "
      "\"rejected_predicted_late\": %lld, "
      "\"hedges\": %lld, \"failovers\": %lld, \"hedges_denied\": %lld, "
      "\"failovers_denied\": %lld, \"brownout_level\": %s, "
      "\"shard_dispatches\": %lld, "
      "\"shard_failures\": %lld, \"latency_ms\": {\"mean\": %.6f, "
      "\"p50\": %.6f, \"p90\": %.6f, \"p99\": %.6f, \"max\": %.6f}},\n",
      static_cast<long long>(r.submitted), static_cast<long long>(r.completed),
      static_cast<long long>(r.partial), static_cast<long long>(r.failed),
      static_cast<long long>(r.rejected),
      static_cast<long long>(r.rejected_predicted_late),
      static_cast<long long>(r.hedges), static_cast<long long>(r.failovers),
      static_cast<long long>(r.hedges_denied),
      static_cast<long long>(r.failovers_denied),
      core::JsonQuote(r.brownout_level).c_str(),
      static_cast<long long>(r.shard_dispatches),
      static_cast<long long>(r.shard_failures), r.latency_mean * 1e3,
      r.latency_p50 * 1e3, r.latency_p90 * 1e3, r.latency_p99 * 1e3,
      r.latency_max * 1e3);
  out += "  \"shards\": [\n";
  for (int64_t s = 0; s < plan_->num_shards; ++s) {
    const ShardSpec& spec = plan_->shards[s];
    out += core::StrFormat(
        "    {\"shard\": %lld, \"owned\": %lld, \"view\": %lld, "
        "\"dispatched\": %lld, \"ok\": %lld, \"failed\": %lld, "
        "\"replicas\": [\n",
        static_cast<long long>(s), static_cast<long long>(spec.owned.size()),
        static_cast<long long>(spec.view.size()),
        static_cast<long long>(per_shard_[s].dispatched.load()),
        static_cast<long long>(per_shard_[s].ok.load()),
        static_cast<long long>(per_shard_[s].failed.load()));
    for (size_t i = 0; i < workers_[s].size(); ++i) {
      const ShardWorker* w = workers_[s][i];
      serving::HealthReport h = w->CheckHealth();
      serving::ServerStats::Snapshot stats = w->server().stats().TakeSnapshot();
      out += core::StrFormat(
          "      {\"replica\": %lld, \"health\": %s, \"accepted\": %lld, "
          "\"completed\": %lld, \"served_by\": {\"model\": %lld, "
          "\"var\": %lld, \"cache\": %lld}, \"degraded\": {\"none\": %lld, "
          "\"partial\": %lld, \"heavy\": %lld}}%s\n",
          static_cast<long long>(i), h.ToJson().c_str(),
          static_cast<long long>(stats.accepted),
          static_cast<long long>(stats.completed),
          static_cast<long long>(stats.served_model),
          static_cast<long long>(stats.served_var),
          static_cast<long long>(stats.served_cache),
          static_cast<long long>(stats.degraded_none),
          static_cast<long long>(stats.degraded_partial),
          static_cast<long long>(stats.degraded_heavy),
          i + 1 < workers_[s].size() ? "," : "");
    }
    out += core::StrFormat("    ]}%s\n",
                           s + 1 < plan_->num_shards ? "," : "");
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace sstban::sharding

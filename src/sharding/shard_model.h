#ifndef SSTBAN_SHARDING_SHARD_MODEL_H_
#define SSTBAN_SHARDING_SHARD_MODEL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "sstban/model.h"
#include "tensor/tensor.h"

namespace sstban::sharding {

// Selects the given node columns out of a [P, N, C] window, preserving
// their relative order: result is [P, nodes.size(), C]. Every index must be
// in [0, N).
tensor::Tensor GatherNodes(const tensor::Tensor& recent,
                           const std::vector<int64_t>& nodes);

// Scatters [P, S, C] rows back into a [P, N, C] tensor at the given node
// columns; untouched columns keep their existing values.
void ScatterNodes(const tensor::Tensor& shard_slice,
                  const std::vector<int64_t>& nodes, tensor::Tensor* full);

// Builds an SSTBAN model over the `view_nodes` subset of the full model's
// node axis, copying every trained parameter. The only node-count-dependent
// parameter is the spatial embedding table ("ste.spatial.weight", [N, d]),
// whose rows are gathered down to the view; all other parameters are shared
// verbatim. Because the forward pass is bitwise-invariant to batch and node
// count (row-partitioned matmuls with a fixed accumulation order), the
// sliced model's forecast for a view node equals the full model's forecast
// for that node exactly whenever the node's receptive field lies inside the
// view — always true with spatial_mixing = false, and true for any node
// when the view covers the whole graph.
// `view_nodes` must be sorted ascending with unique entries in [0, N).
std::unique_ptr<sstban::SstbanModel> BuildShardModel(
    const sstban::SstbanModel& full, const std::vector<int64_t>& view_nodes);

}  // namespace sstban::sharding

#endif  // SSTBAN_SHARDING_SHARD_MODEL_H_

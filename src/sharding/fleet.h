#ifndef SSTBAN_SHARDING_FLEET_H_
#define SSTBAN_SHARDING_FLEET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/status.h"
#include "data/normalizer.h"
#include "graph/traffic_graph.h"
#include "serving/forecast_server.h"
#include "sharding/partitioner.h"
#include "sharding/router.h"
#include "sharding/shard_worker.h"
#include "sstban/model.h"

namespace sstban::sharding {

struct FleetOptions {
  PartitionOptions partition;
  // Per-replica server template; num_nodes is overridden to each shard's
  // view size.
  serving::ServerOptions server;
  RouterOptions router;
  int64_t replicas_per_shard = 1;
};

// Owns a complete sharded deployment: the partition plan, one sliced model
// per (shard, replica), the per-replica ForecastServers, and the scatter/
// gather router. Built from a trained full-graph model; every replica of a
// shard gets its own independent slice (registry, breakers, queue), so one
// replica wedging never infects its sibling.
class ShardedFleet {
 public:
  // Partitions the graph and slices `full_model` per shard view. The model
  // and normalizer are only read during construction.
  static core::StatusOr<std::unique_ptr<ShardedFleet>> Create(
      const graph::TrafficGraph& graph, const sstban::SstbanModel& full_model,
      const data::Normalizer& normalizer, const FleetOptions& options);

  ShardedFleet(const ShardedFleet&) = delete;
  ShardedFleet& operator=(const ShardedFleet&) = delete;
  ~ShardedFleet() { Shutdown(); }

  // Starts every worker, then the router. Workers that need a VAR baseline
  // must receive it (worker(s, r).SetVarBaseline) before Start.
  core::Status Start();
  // Router first (fail in-flight gathers), then the workers. Idempotent.
  void Shutdown();

  const ShardPlan& plan() const { return plan_; }
  ShardRouter& router() { return *router_; }
  int64_t replicas_per_shard() const { return replicas_per_shard_; }
  ShardWorker& worker(int64_t shard, int64_t replica) {
    return *workers_.at(shard * replicas_per_shard_ + replica);
  }

 private:
  ShardedFleet() = default;

  ShardPlan plan_;
  int64_t replicas_per_shard_ = 1;
  // Flattened [shard * replicas + replica]; unique_ptr because workers are
  // immovable (they own running threads).
  std::vector<std::unique_ptr<ShardWorker>> workers_;
  std::unique_ptr<ShardRouter> router_;
  bool started_ = false;
};

}  // namespace sstban::sharding

#endif  // SSTBAN_SHARDING_FLEET_H_

#ifndef SSTBAN_SHARDING_LOADGEN_H_
#define SSTBAN_SHARDING_LOADGEN_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "sharding/router.h"
#include "tensor/tensor.h"

namespace sstban::sharding {

// Open-loop load: arrivals follow a seeded Poisson process at `rate_rps`
// regardless of how fast the fleet answers (no coordinated omission — a
// slow fleet faces a growing backlog, exactly like production), and request
// widths (how many sensors a request asks for) follow a truncated Pareto,
// so most requests are narrow and a heavy tail sweeps much of the graph.
struct LoadGenOptions {
  double rate_rps = 50.0;
  int64_t requests = 200;
  uint64_t seed = 7;
  // Pareto shape for the request width; smaller = heavier tail. Widths are
  // min_sensors * U^(-1/size_alpha), truncated to the graph size.
  double size_alpha = 1.2;
  int64_t min_sensors = 4;
  // Client deadline per request; zero leaves it to the router's shard
  // timeout.
  std::chrono::milliseconds deadline{0};
  // Threads draining completions; waits overlap, so a handful suffices.
  int64_t completion_threads = 8;
  // Criticality stamped on every generated request; mixes are modeled by
  // running one generator per class.
  serving::Criticality criticality = serving::Criticality::kInteractive;
};

struct LoadGenReport {
  double offered_rps = 0.0;   // configured arrival rate
  double achieved_rps = 0.0;  // ok terminals / wall duration
  double duration_seconds = 0.0;
  int64_t submitted = 0;
  int64_t ok = 0;       // full answers
  int64_t partial = 0;  // ok with NaN-filled failed sensors
  int64_t rejected = 0;             // Submit refused synchronously
  int64_t deadline_exceeded = 0;
  int64_t unavailable = 0;
  int64_t invalid = 0;
  // Latency measured from the *scheduled* arrival instant, so dispatcher
  // lag under overload is charged to the fleet (seconds).
  double p50 = 0.0, p90 = 0.0, p99 = 0.0, p999 = 0.0;
  double mean = 0.0, max = 0.0;

  std::string ToJson() const;
};

// Drives `router` with options.requests open-loop arrivals built from the
// given full-graph window. Blocks until every accepted request reached a
// terminal. Deterministic schedule (arrival offsets, request widths, sensor
// subsets) for a given seed; actual latencies are of course not.
LoadGenReport RunOpenLoopLoad(ShardRouter* router,
                              const tensor::Tensor& window, int64_t first_step,
                              const LoadGenOptions& options);

}  // namespace sstban::sharding

#endif  // SSTBAN_SHARDING_LOADGEN_H_

#include "sharding/shard_worker.h"

namespace sstban::sharding {

ShardWorker::ShardWorker(ShardSpec spec,
                         serving::ModelRegistry::ModelFactory factory,
                         std::unique_ptr<training::TrafficModel> model,
                         data::Normalizer normalizer,
                         serving::ServerOptions options)
    : spec_(std::move(spec)),
      registry_(std::move(factory), std::move(normalizer)),
      server_(WithViewNodes(std::move(options), spec_), &registry_) {
  registry_.Install(std::move(model), "<shard-slice>");
}

}  // namespace sstban::sharding

#ifndef SSTBAN_SHARDING_ROUTER_H_
#define SSTBAN_SHARDING_ROUTER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/histogram.h"
#include "core/status.h"
#include "serving/overload/overload.h"
#include "serving/request.h"
#include "sharding/partitioner.h"
#include "sharding/shard_worker.h"

namespace sstban::sharding {

using serving::Clock;

// A fleet-level request: one full-graph [P, N, C] window plus the sensors
// the caller wants forecasts for (empty = all N). The router slices the
// window per shard view, scatters to the owning shards, and gathers the
// shard answers back into one [Q, S, C] response.
struct ShardedRequest {
  tensor::Tensor recent;  // [P, N, C] raw signals over the FULL graph
  std::vector<int64_t> sensors;  // requested global sensor ids; empty = all
  int64_t first_step = 0;
  std::optional<Clock::time_point> deadline;
  // Propagated to every shard sub-request, so fleet-level shedding follows
  // the same interactive > batch > what-if order as each replica's own
  // admission control.
  serving::Criticality criticality = serving::Criticality::kInteractive;
};

// What happened on one shard for one request.
struct ShardOutcome {
  int64_t shard = 0;
  int64_t replica = 0;    // replica that finally served (or last tried)
  bool hedged = false;    // dispatched away from the rotation pick on health
  bool failed_over = false;  // re-dispatched after a Submit rejection
  core::Status status;    // terminal status of this shard's sub-request
  serving::ServedBy served_by = serving::ServedBy::kModel;
  serving::DegradationLevel degradation = serving::DegradationLevel::kNone;
  int64_t model_version = 0;
};

// The gathered answer. `forecast` is [Q, S, C] where S = sensors.size();
// row i answers sensors[i]. Sensors whose shard failed are NaN-filled and
// listed in `failed_sensors` (only possible when RouterOptions::
// partial_results is true — otherwise any shard failure fails the request).
struct ShardedResponse {
  tensor::Tensor forecast;  // [Q, S, C] raw-scale
  std::vector<int64_t> sensors;
  std::vector<ShardOutcome> shards;
  std::vector<int64_t> failed_sensors;
  serving::DegradationLevel degradation = serving::DegradationLevel::kNone;

  bool degraded() const;
};

// Exactly-one-terminal holds at the fleet level too: Ok (possibly partial /
// degraded), Unavailable, DeadlineExceeded, or InvalidArgument.
using ShardedResult = core::StatusOr<ShardedResponse>;
using ShardedFuture = std::future<ShardedResult>;

struct RouterOptions {
  // Per-shard sub-request deadline when the client gave none (or a later
  // one): scatter at t dispatches with deadline min(client, t + timeout).
  std::chrono::milliseconds shard_timeout{2000};
  // Extra slack the gatherer waits past a shard's deadline before declaring
  // the sub-request lost (covers promise-fulfillment latency).
  std::chrono::milliseconds gather_grace{250};
  // Route around replicas whose health probe is not ready or whose primary
  // breaker is open, and re-dispatch to the next replica when a Submit is
  // rejected outright.
  bool hedge_on_unhealthy = true;
  // Answer with the sensors that succeeded (NaN-filling the rest) when at
  // least one shard delivered; false turns any shard failure terminal.
  bool partial_results = true;
  int64_t gather_threads = 2;
  // Backpressure bound on requests parked waiting for their shard futures.
  int64_t queue_capacity = 256;
  // Token bucket per (shard, replica) capping hedges + failovers to a
  // fraction of primary traffic, so a slow fleet is never asked to also
  // absorb a hedging storm.
  serving::RetryBudgetOptions retry_budget;
  // Fleet-level memory brownout: at kNoHedge and above the router stops
  // hedging/failing over entirely (probe/watermarks as in BrownoutOptions).
  serving::BrownoutOptions brownout;
  // Reject at the router any request whose remaining deadline is below the
  // observed p50 gathered latency (same estimator shape as the server's).
  serving::DeadlineOptions deadline;
};

// Aggregate router counters plus the end-to-end latency distribution
// (scatter to gathered terminal, seconds).
struct RouterStatsSnapshot {
  int64_t submitted = 0;
  int64_t completed = 0;       // ok terminals (full or partial)
  int64_t partial = 0;         // ok terminals with failed sensors
  int64_t failed = 0;          // error terminals
  int64_t rejected = 0;        // Submit refused (bad request / overload)
  int64_t rejected_predicted_late = 0;  // deadline below p50 gather estimate
  int64_t hedges = 0;
  int64_t failovers = 0;
  int64_t hedges_denied = 0;     // wanted to hedge, budget empty
  int64_t failovers_denied = 0;  // wanted to fail over, budget empty
  int64_t shard_dispatches = 0;
  int64_t shard_failures = 0;
  std::string brownout_level = "normal";
  double latency_p50 = 0.0, latency_p90 = 0.0, latency_p99 = 0.0;
  double latency_mean = 0.0, latency_max = 0.0;
};

// Scatter/gather front end over a fleet of ShardWorkers. `workers[s]` holds
// the replicas of shard s (at least one each); the router borrows them and
// never manages their lifecycle (see ShardedFleet). Sensor -> shard routing
// is the plan's ownership map, so the same sensor always lands on the same
// shard. Submit is safe from any number of client threads.
class ShardRouter {
 public:
  ShardRouter(const ShardPlan* plan,
              std::vector<std::vector<ShardWorker*>> workers,
              RouterOptions options);
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  core::Status Start();
  // Fails in-flight gathers with Unavailable and joins the gather threads.
  // Does NOT shut the workers down. Idempotent.
  void Shutdown();

  // Validates, slices, and scatters the request. Errors mirror the
  // single-server contract: InvalidArgument for shape/sensor-id problems,
  // Unavailable when the router is stopped or its gather queue is full.
  // Every accepted request's future resolves to exactly one terminal.
  core::StatusOr<ShardedFuture> Submit(ShardedRequest request);

  RouterStatsSnapshot StatsSnapshot() const;

  // Fleet-level health/stats rollups across every shard and replica
  // (router counters + each replica's HealthReport and ServerStats).
  std::string FleetTable() const;
  std::string FleetJson() const;

  const ShardPlan& plan() const { return *plan_; }
  const RouterOptions& options() const { return options_; }

 private:
  struct PendingShard {
    int64_t shard = 0;
    // Positions into the request's sensor list answered by this shard, and
    // the matching row indices into the shard's [Q, view, C] forecast.
    std::vector<int64_t> positions;
    std::vector<int64_t> view_rows;
    serving::ForecastFuture future;  // valid only when outcome.status is OK
    ShardOutcome outcome;            // pre-filled with dispatch info
  };

  struct GatherTask {
    std::promise<ShardedResult> promise;
    std::vector<int64_t> sensors;
    std::vector<PendingShard> pending;
    Clock::time_point submitted_at;
    Clock::time_point give_up_at;  // shard deadline + gather_grace
    int64_t output_len = 0;
    int64_t num_features = 0;
  };

  struct PerShardCounters {
    std::atomic<int64_t> dispatched{0};
    std::atomic<int64_t> ok{0};
    std::atomic<int64_t> failed{0};
  };

  // Picks a replica for the shard (health-aware when hedging is on) and
  // submits, failing over across replicas. On success `out->future` holds
  // the shard future; on failure `out->outcome.status` has the last error.
  void Dispatch(int64_t shard, serving::ForecastRequest request,
                PendingShard* out);
  void GatherLoop();
  void Finish(GatherTask task);

  const ShardPlan* plan_;
  std::vector<std::vector<ShardWorker*>> workers_;
  RouterOptions options_;
  int64_t output_len_ = 0;
  int64_t input_len_ = 0;
  int64_t num_features_ = 0;

  std::atomic<bool> running_{false};
  std::atomic<int64_t> rotation_{0};

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<GatherTask> queue_;
  std::vector<std::thread> gatherers_;

  // Overload control: hedge/failover token buckets per (shard, replica),
  // the fleet brownout ladder, and the gathered-latency estimate behind the
  // router's deadline-propagation gate.
  std::vector<std::vector<std::unique_ptr<serving::RetryBudget>>> budgets_;
  serving::BrownoutController brownout_;
  serving::ServiceTimeEstimator gather_estimator_;

  // Stats.
  std::atomic<int64_t> submitted_{0}, completed_{0}, partial_{0}, failed_{0},
      rejected_{0}, rejected_predicted_late_{0}, hedges_{0}, failovers_{0},
      hedges_denied_{0}, failovers_denied_{0}, shard_dispatches_{0},
      shard_failures_{0};
  mutable std::mutex latency_mutex_;
  core::Histogram latency_;
  std::unique_ptr<PerShardCounters[]> per_shard_;
};

}  // namespace sstban::sharding

#endif  // SSTBAN_SHARDING_ROUTER_H_

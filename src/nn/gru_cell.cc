#include "nn/gru_cell.h"

#include "autograd/ops.h"
#include "core/check.h"

namespace sstban::nn {

namespace ag = ::sstban::autograd;

GruCell::GruCell(int64_t input_dim, int64_t hidden_dim, core::Rng& rng)
    : hidden_dim_(hidden_dim) {
  input_proj_ = std::make_unique<Linear>(input_dim, 3 * hidden_dim, rng);
  hidden_proj_ =
      std::make_unique<Linear>(hidden_dim, 3 * hidden_dim, rng, /*use_bias=*/false);
  RegisterModule("input_proj", input_proj_.get());
  RegisterModule("hidden_proj", hidden_proj_.get());
}

ag::Variable GruCell::Forward(const ag::Variable& x, const ag::Variable& h) const {
  SSTBAN_CHECK_EQ(h.dim(h.rank() - 1), hidden_dim_);
  ag::Variable xi = input_proj_->Forward(x);   // [B, 3H]
  ag::Variable hi = hidden_proj_->Forward(h);  // [B, 3H]
  auto part = [&](const ag::Variable& v, int64_t idx) {
    return ag::Slice(v, -1, idx * hidden_dim_, hidden_dim_);
  };
  ag::Variable z = ag::Sigmoid(ag::Add(part(xi, 0), part(hi, 0)));
  ag::Variable r = ag::Sigmoid(ag::Add(part(xi, 1), part(hi, 1)));
  // Candidate uses the reset-gated hidden state: x Wc + r * (h Uc).
  ag::Variable c = ag::Tanh(ag::Add(part(xi, 2), ag::Mul(r, part(hi, 2))));
  ag::Variable one_minus_z = ag::AddScalar(ag::Neg(z), 1.0f);
  return ag::Add(ag::Mul(one_minus_z, h), ag::Mul(z, c));
}

}  // namespace sstban::nn

#include "nn/layer_norm.h"

#include "autograd/ops.h"
#include "core/check.h"

namespace sstban::nn {

namespace ag = ::sstban::autograd;

LayerNorm::LayerNorm(int64_t dim, float eps) : dim_(dim), eps_(eps) {
  gamma_ = RegisterParameter("gamma", tensor::Tensor::Ones(tensor::Shape{dim}));
  beta_ = RegisterParameter("beta", tensor::Tensor::Zeros(tensor::Shape{dim}));
}

ag::Variable LayerNorm::Forward(const ag::Variable& x) const {
  SSTBAN_CHECK_EQ(x.dim(x.rank() - 1), dim_);
  ag::Variable mean = ag::Mean(x, -1, /*keepdim=*/true);
  ag::Variable centered = ag::Sub(x, mean);
  ag::Variable variance = ag::Mean(ag::Square(centered), -1, /*keepdim=*/true);
  ag::Variable denom = ag::Sqrt(ag::AddScalar(variance, eps_));
  ag::Variable normalized = ag::Div(centered, denom);
  return ag::Add(ag::Mul(normalized, gamma_), beta_);
}

}  // namespace sstban::nn

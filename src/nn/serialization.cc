#include "nn/serialization.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "core/string_util.h"

namespace sstban::nn {

namespace {

constexpr char kMagic[4] = {'S', 'S', 'T', 'B'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

core::Status SaveParameters(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return core::Status::IoError("cannot open for writing: " + path);
  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  auto named = module.NamedParameters();
  WritePod(out, static_cast<uint64_t>(named.size()));
  for (const auto& [name, param] : named) {
    WritePod(out, static_cast<uint64_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    const tensor::Tensor& value = param.value();
    WritePod(out, static_cast<uint32_t>(value.rank()));
    for (int64_t d : value.shape().dims()) WritePod(out, d);
    out.write(reinterpret_cast<const char*>(value.data()),
              static_cast<std::streamsize>(value.size() * sizeof(float)));
  }
  if (!out) return core::Status::IoError("write failed: " + path);
  return core::Status::Ok();
}

core::Status LoadParameters(Module* module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return core::Status::IoError("cannot open for reading: " + path);
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return core::Status::InvalidArgument("not an SSTBAN checkpoint: " + path);
  }
  uint32_t version = 0;
  if (!ReadPod(in, &version) || version != kVersion) {
    return core::Status::InvalidArgument(
        core::StrFormat("unsupported checkpoint version %u", version));
  }
  uint64_t count = 0;
  if (!ReadPod(in, &count)) return core::Status::IoError("truncated header");
  auto named = module->NamedParameters();
  if (count != named.size()) {
    return core::Status::InvalidArgument(core::StrFormat(
        "checkpoint has %llu parameters, module has %zu",
        static_cast<unsigned long long>(count), named.size()));
  }
  // Stage everything first so a mismatch leaves the module untouched.
  std::vector<tensor::Tensor> staged(named.size());
  for (size_t i = 0; i < named.size(); ++i) {
    uint64_t name_len = 0;
    if (!ReadPod(in, &name_len) || name_len > 4096) {
      return core::Status::IoError("truncated or corrupt parameter name");
    }
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    if (!in) return core::Status::IoError("truncated parameter name");
    if (name != named[i].first) {
      return core::Status::InvalidArgument(
          "parameter name mismatch: file has '" + name + "', module expects '" +
          named[i].first + "'");
    }
    uint32_t rank = 0;
    if (!ReadPod(in, &rank) || rank > 16) {
      return core::Status::IoError("corrupt parameter rank");
    }
    std::vector<int64_t> dims(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      if (!ReadPod(in, &dims[d])) return core::Status::IoError("truncated dims");
    }
    tensor::Shape shape(dims);
    if (shape != named[i].second.shape()) {
      return core::Status::InvalidArgument(
          "shape mismatch for '" + name + "': file " + shape.ToString() +
          " vs module " + named[i].second.shape().ToString());
    }
    tensor::Tensor value(shape);
    std::streamsize want =
        static_cast<std::streamsize>(value.size() * sizeof(float));
    in.read(reinterpret_cast<char*>(value.data()), want);
    if (!in || in.gcount() != want) {
      return core::Status::IoError(
          "truncated parameter data for '" + name + "' in " + path);
    }
    staged[i] = value;
  }
  // A well-formed checkpoint ends exactly after the last parameter; anything
  // else (a truncated write that happened to end on a record boundary, or a
  // corrupted/concatenated file) must not be silently accepted — the serving
  // model registry hot-swaps on the strength of this check.
  if (in.peek() != std::ifstream::traits_type::eof()) {
    return core::Status::IoError("trailing bytes after last parameter: " + path);
  }
  for (size_t i = 0; i < named.size(); ++i) {
    named[i].second.mutable_value().CopyFrom(staged[i]);
  }
  return core::Status::Ok();
}

}  // namespace sstban::nn

#include "nn/serialization.h"

#include <cstdint>
#include <cstring>
#include <vector>

#include "core/crc32.h"
#include "core/failpoint.h"
#include "core/string_util.h"

namespace sstban::nn {

namespace {

constexpr char kMagic[4] = {'S', 'S', 'T', 'B'};
constexpr uint32_t kVersion = 2;  // v2 = v1 body + CRC32 footer
constexpr size_t kFooterBytes = sizeof(uint32_t);

}  // namespace

void AppendTensor(core::BufferWriter& w, const tensor::Tensor& value) {
  w.Pod(static_cast<uint32_t>(value.rank()));
  for (int64_t d : value.shape().dims()) w.Pod(d);
  w.Bytes(value.data(), static_cast<size_t>(value.size()) * sizeof(float));
}

core::Status ReadTensor(core::BufferReader& r, tensor::Tensor* out) {
  uint32_t rank = 0;
  if (!r.Pod(&rank) || rank > 16) {
    return core::Status::IoError("corrupt tensor rank");
  }
  std::vector<int64_t> dims(rank);
  uint64_t numel = 1;
  for (uint32_t d = 0; d < rank; ++d) {
    if (!r.Pod(&dims[d]) || dims[d] < 0) {
      return core::Status::IoError("corrupt tensor dims");
    }
    // Overflow-safe product bound: nothing bigger than the bytes still in
    // the buffer can be legitimate.
    uint64_t dim = static_cast<uint64_t>(dims[d]);
    if (dim != 0 && numel > r.remaining() / dim + 1) {
      return core::Status::IoError("tensor larger than remaining bytes");
    }
    numel *= dim;
  }
  if (numel * sizeof(float) > r.remaining()) {
    return core::Status::IoError("truncated tensor data");
  }
  tensor::Tensor value{tensor::Shape(dims)};
  if (!r.Bytes(value.data(), static_cast<size_t>(numel) * sizeof(float))) {
    return core::Status::IoError("truncated tensor data");
  }
  *out = std::move(value);
  return core::Status::Ok();
}

core::Status SaveParameters(const Module& module, const std::string& path) {
  core::BufferWriter w;
  w.Bytes(kMagic, sizeof(kMagic));
  w.Pod(kVersion);
  auto named = module.NamedParameters();
  w.Pod(static_cast<uint64_t>(named.size()));
  for (const auto& [name, param] : named) {
    w.Pod(static_cast<uint64_t>(name.size()));
    w.Bytes(name.data(), name.size());
    AppendTensor(w, param.value());
  }
  w.Pod(core::Crc32(w.str().data(), w.str().size()));
  return core::WriteFileAtomic(path, w.str());
}

core::Status LoadParameters(Module* module, const std::string& path) {
  std::string blob;
  SSTBAN_RETURN_IF_ERROR(core::ReadFileToString(path, &blob));
  core::BufferReader r(blob);
  char magic[4];
  if (!r.Bytes(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return core::Status::InvalidArgument("not an SSTBAN checkpoint: " + path);
  }
  uint32_t version = 0;
  if (!r.Pod(&version) || version < 1 || version > kVersion) {
    return core::Status::InvalidArgument(
        core::StrFormat("unsupported checkpoint version %u", version));
  }
  uint64_t count = 0;
  if (!r.Pod(&count)) return core::Status::IoError("truncated header");
  auto named = module->NamedParameters();
  if (count != named.size()) {
    return core::Status::InvalidArgument(core::StrFormat(
        "checkpoint has %llu parameters, module has %zu",
        static_cast<unsigned long long>(count), named.size()));
  }
  // Stage everything first so a mismatch leaves the module untouched.
  std::vector<tensor::Tensor> staged(named.size());
  for (size_t i = 0; i < named.size(); ++i) {
    uint64_t name_len = 0;
    if (!r.Pod(&name_len) || name_len > 4096) {
      return core::Status::IoError("truncated or corrupt parameter name");
    }
    std::string name(name_len, '\0');
    if (!r.Bytes(name.data(), name_len)) {
      return core::Status::IoError("truncated parameter name");
    }
    if (name != named[i].first) {
      return core::Status::InvalidArgument(
          "parameter name mismatch: file has '" + name + "', module expects '" +
          named[i].first + "'");
    }
    tensor::Tensor value;
    core::Status read = ReadTensor(r, &value);
    if (!read.ok()) {
      return core::Status::IoError("truncated parameter data for '" + name +
                                   "' in " + path + ": " + read.message());
    }
    if (value.shape() != named[i].second.shape()) {
      return core::Status::InvalidArgument(
          "shape mismatch for '" + name + "': file " +
          value.shape().ToString() + " vs module " +
          named[i].second.shape().ToString());
    }
    staged[i] = std::move(value);
  }
  // A well-formed checkpoint ends exactly after the last parameter (plus the
  // CRC footer from version 2 on); anything else (a truncated write that
  // happened to end on a record boundary, or a corrupted/concatenated file)
  // must not be silently accepted — the serving model registry hot-swaps on
  // the strength of this check.
  if (version >= 2) {
    if (r.remaining() < kFooterBytes) {
      return core::Status::IoError("truncated checksum footer: " + path);
    }
    if (r.remaining() > kFooterBytes) {
      return core::Status::IoError("trailing bytes after last parameter: " +
                                   path);
    }
    uint32_t stored = 0;
    r.Pod(&stored);
    uint32_t actual = core::Crc32(blob.data(), blob.size() - kFooterBytes);
    if (stored != actual) {
      return core::Status::IoError(core::StrFormat(
          "checksum mismatch (CRC32 %08x vs stored %08x): %s", actual, stored,
          path.c_str()));
    }
  } else if (!r.AtEnd()) {
    return core::Status::IoError("trailing bytes after last parameter: " +
                                 path);
  }
  for (size_t i = 0; i < named.size(); ++i) {
    named[i].second.mutable_value().CopyFrom(staged[i]);
  }
  return core::Status::Ok();
}

}  // namespace sstban::nn

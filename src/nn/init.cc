#include "nn/init.h"

#include <cmath>

#include "core/check.h"

namespace sstban::nn {

namespace {

void ComputeFans(const tensor::Shape& shape, float* fan_in, float* fan_out) {
  SSTBAN_CHECK_GE(shape.rank(), 1);
  if (shape.rank() == 1) {
    *fan_in = *fan_out = static_cast<float>(shape.dims()[0]);
    return;
  }
  // Trailing two axes are (in, out); any leading axes (e.g. conv kernel
  // taps) multiply both fans.
  float receptive = 1.0f;
  for (int i = 0; i + 2 < shape.rank(); ++i) {
    receptive *= static_cast<float>(shape.dims()[i]);
  }
  *fan_in = receptive * static_cast<float>(shape.dims()[shape.rank() - 2]);
  *fan_out = receptive * static_cast<float>(shape.dims()[shape.rank() - 1]);
}

}  // namespace

tensor::Tensor XavierUniform(const tensor::Shape& shape, core::Rng& rng) {
  float fan_in, fan_out;
  ComputeFans(shape, &fan_in, &fan_out);
  float bound = std::sqrt(6.0f / (fan_in + fan_out));
  return tensor::Tensor::RandomUniform(shape, rng, -bound, bound);
}

tensor::Tensor HeNormal(const tensor::Shape& shape, core::Rng& rng) {
  float fan_in, fan_out;
  ComputeFans(shape, &fan_in, &fan_out);
  return tensor::Tensor::RandomNormal(shape, rng, 0.0f,
                                      std::sqrt(2.0f / fan_in));
}

}  // namespace sstban::nn

#ifndef SSTBAN_NN_LAYER_NORM_H_
#define SSTBAN_NN_LAYER_NORM_H_

#include "nn/module.h"

namespace sstban::nn {

// Layer normalization over the last axis with learned scale (gamma) and
// shift (beta): y = gamma * (x - mean) / sqrt(var + eps) + beta.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim, float eps = 1e-5f);

  autograd::Variable Forward(const autograd::Variable& x) const;

 private:
  int64_t dim_;
  float eps_;
  autograd::Variable gamma_;  // [dim]
  autograd::Variable beta_;   // [dim]
};

}  // namespace sstban::nn

#endif  // SSTBAN_NN_LAYER_NORM_H_

#ifndef SSTBAN_NN_MLP_H_
#define SSTBAN_NN_MLP_H_

#include <memory>
#include <vector>

#include "nn/linear.h"
#include "nn/module.h"

namespace sstban::nn {

enum class Activation { kNone, kRelu, kSigmoid, kTanh };

// Fully-connected stack: Linear -> activation -> ... -> Linear. The final
// layer's activation is controlled separately (default none), as usual for
// regression heads and the paper's STE feature MLPs.
class Mlp : public Module {
 public:
  // `dims` = {in, hidden..., out}; requires at least {in, out}.
  Mlp(const std::vector<int64_t>& dims, core::Rng& rng,
      Activation hidden_activation = Activation::kRelu,
      Activation output_activation = Activation::kNone);

  autograd::Variable Forward(const autograd::Variable& x) const;

 private:
  std::vector<std::unique_ptr<Linear>> layers_;
  Activation hidden_activation_;
  Activation output_activation_;
};

// Applies the given activation (kNone is the identity).
autograd::Variable Activate(const autograd::Variable& x, Activation activation);

}  // namespace sstban::nn

#endif  // SSTBAN_NN_MLP_H_

#ifndef SSTBAN_NN_LINEAR_H_
#define SSTBAN_NN_LINEAR_H_

#include "nn/module.h"

namespace sstban::nn {

// Affine map y = x W + b applied along the last axis: input [..., in_dim]
// -> output [..., out_dim]. Leading axes are flattened for the matmul and
// restored afterwards.
class Linear : public Module {
 public:
  Linear(int64_t in_dim, int64_t out_dim, core::Rng& rng, bool use_bias = true);

  autograd::Variable Forward(const autograd::Variable& x) const;

  int64_t in_dim() const { return in_dim_; }
  int64_t out_dim() const { return out_dim_; }

 private:
  int64_t in_dim_;
  int64_t out_dim_;
  autograd::Variable weight_;  // [in_dim, out_dim]
  autograd::Variable bias_;    // [out_dim] or undefined
};

}  // namespace sstban::nn

#endif  // SSTBAN_NN_LINEAR_H_

#ifndef SSTBAN_NN_MODULE_H_
#define SSTBAN_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"

namespace sstban::nn {

// Base class for neural-network building blocks. A module owns trainable
// parameters (autograd leaves with requires_grad) and may contain child
// modules; `Parameters()` walks the tree so optimizers see every weight.
// Modules are neither copyable nor movable: parameters are shared by
// reference with the optimizer.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  // All parameters of this module and its descendants, in registration order.
  std::vector<autograd::Variable> Parameters() const;

  // Parameters paired with dotted path names ("encoder.block0.wq").
  std::vector<std::pair<std::string, autograd::Variable>> NamedParameters() const;

  // Total number of scalar weights.
  int64_t NumParameters() const;

  // Switches train/eval behavior (dropout etc.) for the whole subtree.
  void SetTraining(bool training);
  bool training() const { return training_; }

  // Zeroes the gradients of every parameter in the subtree.
  void ZeroGrad();

 protected:
  // Registers `init` as a trainable parameter and returns the leaf variable.
  autograd::Variable RegisterParameter(std::string name, tensor::Tensor init);

  // Registers a child (non-owning; children are normally members of the
  // parent and outlive it naturally).
  void RegisterModule(std::string name, Module* child);

 private:
  void CollectNamed(const std::string& prefix,
                    std::vector<std::pair<std::string, autograd::Variable>>* out) const;

  std::vector<std::pair<std::string, autograd::Variable>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
  bool training_ = true;
};

}  // namespace sstban::nn

#endif  // SSTBAN_NN_MODULE_H_

#ifndef SSTBAN_NN_ATTENTION_H_
#define SSTBAN_NN_ATTENTION_H_

#include <memory>

#include "nn/linear.h"
#include "nn/module.h"

namespace sstban::nn {

// Multi-head scaled dot-product attention (the paper's MHSA primitive):
//
//   MHSA(Q, K, V) = concat(head_1..head_h) W^O
//   head_j = softmax(Q W_j^Q (K W_j^K)^T / sqrt(d)) V W_j^V
//
// Dimensions are deliberately asymmetric: SSTBAN's bottleneck attention
// feeds 2d-dimensional inputs but produces d-dimensional outputs in its
// second stage (Eq. 1-2), so query/key-value/output dims are independent.
class MultiHeadAttention : public Module {
 public:
  // head_dim defaults to max(1, out_dim / num_heads).
  MultiHeadAttention(int64_t query_dim, int64_t kv_dim, int64_t out_dim,
                     int64_t num_heads, core::Rng& rng, int64_t head_dim = 0);

  // q: [B, Lq, query_dim], k/v: [B, Lk, kv_dim] -> [B, Lq, out_dim].
  // `key_mask`, when given, is [B, Lk] with 1 = attend, 0 = exclude; excluded
  // keys receive -1e9 before the softmax (the paper's -inf masking). A fully
  // masked row degrades to uniform attention rather than NaN.
  // When `attention_probs` is non-null it receives a detached copy of the
  // post-softmax attention averaged over heads ([B, Lq, Lk]) — used by the
  // reference-point interpretability analysis.
  autograd::Variable Forward(const autograd::Variable& q,
                             const autograd::Variable& k,
                             const autograd::Variable& v,
                             const tensor::Tensor* key_mask = nullptr,
                             tensor::Tensor* attention_probs = nullptr) const;

  int64_t num_heads() const { return num_heads_; }
  int64_t head_dim() const { return head_dim_; }

 private:
  int64_t num_heads_;
  int64_t head_dim_;
  int64_t out_dim_;
  std::unique_ptr<Linear> wq_;
  std::unique_ptr<Linear> wk_;
  std::unique_ptr<Linear> wv_;
  std::unique_ptr<Linear> wo_;
};

}  // namespace sstban::nn

#endif  // SSTBAN_NN_ATTENTION_H_

#include "nn/linear.h"

#include "autograd/ops.h"
#include "core/check.h"
#include "nn/init.h"

namespace sstban::nn {

Linear::Linear(int64_t in_dim, int64_t out_dim, core::Rng& rng, bool use_bias)
    : in_dim_(in_dim), out_dim_(out_dim) {
  weight_ = RegisterParameter(
      "weight", XavierUniform(tensor::Shape{in_dim, out_dim}, rng));
  if (use_bias) {
    bias_ = RegisterParameter("bias", tensor::Tensor::Zeros(tensor::Shape{out_dim}));
  }
}

autograd::Variable Linear::Forward(const autograd::Variable& x) const {
  SSTBAN_CHECK_GE(x.rank(), 1);
  SSTBAN_CHECK_EQ(x.dim(x.rank() - 1), in_dim_)
      << "Linear expects last dim" << in_dim_ << "got" << x.shape().ToString();
  std::vector<int64_t> out_dims = x.shape().dims();
  out_dims.back() = out_dim_;
  int64_t rows = x.size() / in_dim_;
  autograd::Variable flat = autograd::Reshape(x, tensor::Shape{rows, in_dim_});
  autograd::Variable y = autograd::Matmul(flat, weight_);
  if (bias_.defined()) y = autograd::Add(y, bias_);
  return autograd::Reshape(y, tensor::Shape(out_dims));
}

}  // namespace sstban::nn

#ifndef SSTBAN_NN_EMBEDDING_H_
#define SSTBAN_NN_EMBEDDING_H_

#include <vector>

#include "nn/module.h"

namespace sstban::nn {

// Learned lookup table: indices -> rows of a trainable [vocab, dim] matrix.
class Embedding : public Module {
 public:
  Embedding(int64_t vocab, int64_t dim, core::Rng& rng);

  // Returns [indices.size(), dim].
  autograd::Variable Forward(const std::vector<int64_t>& indices) const;

  // Direct access to the full table (e.g. SSTBAN's spatial embedding, which
  // uses every node's vector each step).
  const autograd::Variable& weight() const { return weight_; }

 private:
  autograd::Variable weight_;
};

}  // namespace sstban::nn

#endif  // SSTBAN_NN_EMBEDDING_H_

#include "nn/mlp.h"

#include "autograd/ops.h"
#include "core/check.h"
#include "core/string_util.h"

namespace sstban::nn {

Mlp::Mlp(const std::vector<int64_t>& dims, core::Rng& rng,
         Activation hidden_activation, Activation output_activation)
    : hidden_activation_(hidden_activation),
      output_activation_(output_activation) {
  SSTBAN_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    RegisterModule(core::StrFormat("layer%zu", i), layers_.back().get());
  }
}

autograd::Variable Mlp::Forward(const autograd::Variable& x) const {
  autograd::Variable h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    bool last = (i + 1 == layers_.size());
    h = Activate(h, last ? output_activation_ : hidden_activation_);
  }
  return h;
}

autograd::Variable Activate(const autograd::Variable& x, Activation activation) {
  switch (activation) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return autograd::Relu(x);
    case Activation::kSigmoid:
      return autograd::Sigmoid(x);
    case Activation::kTanh:
      return autograd::Tanh(x);
  }
  return x;
}

}  // namespace sstban::nn

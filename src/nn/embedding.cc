#include "nn/embedding.h"

#include "autograd/ops.h"
#include "nn/init.h"

namespace sstban::nn {

Embedding::Embedding(int64_t vocab, int64_t dim, core::Rng& rng) {
  weight_ = RegisterParameter("weight",
                              XavierUniform(tensor::Shape{vocab, dim}, rng));
}

autograd::Variable Embedding::Forward(const std::vector<int64_t>& indices) const {
  return autograd::EmbeddingLookup(weight_, indices);
}

}  // namespace sstban::nn

#include "nn/attention.h"

#include <cmath>

#include "autograd/ops.h"
#include "autograd/trace.h"
#include "core/check.h"
#include "tensor/fused_attention.h"
#include "tensor/ops.h"
#include "tensor/parallel.h"

namespace sstban::nn {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;

MultiHeadAttention::MultiHeadAttention(int64_t query_dim, int64_t kv_dim,
                                       int64_t out_dim, int64_t num_heads,
                                       core::Rng& rng, int64_t head_dim)
    : num_heads_(num_heads),
      head_dim_(head_dim > 0 ? head_dim : std::max<int64_t>(1, out_dim / num_heads)),
      out_dim_(out_dim) {
  int64_t hidden = num_heads_ * head_dim_;
  wq_ = std::make_unique<Linear>(query_dim, hidden, rng, /*use_bias=*/false);
  wk_ = std::make_unique<Linear>(kv_dim, hidden, rng, /*use_bias=*/false);
  wv_ = std::make_unique<Linear>(kv_dim, hidden, rng, /*use_bias=*/false);
  wo_ = std::make_unique<Linear>(hidden, out_dim, rng);
  RegisterModule("wq", wq_.get());
  RegisterModule("wk", wk_.get());
  RegisterModule("wv", wv_.get());
  RegisterModule("wo", wo_.get());
}

ag::Variable MultiHeadAttention::Forward(const ag::Variable& q,
                                         const ag::Variable& k,
                                         const ag::Variable& v,
                                         const t::Tensor* key_mask,
                                         t::Tensor* attention_probs) const {
  SSTBAN_CHECK_EQ(q.rank(), 3);
  SSTBAN_CHECK_EQ(k.rank(), 3);
  SSTBAN_CHECK_EQ(v.rank(), 3);
  int64_t batch = q.dim(0), lq = q.dim(1), lk = k.dim(1);
  SSTBAN_CHECK_EQ(k.dim(0), batch);
  SSTBAN_CHECK_EQ(v.dim(0), batch);
  SSTBAN_CHECK_EQ(v.dim(1), lk);

  // Splits [B, L, h*dk] into per-head batches [B*h, L, dk].
  auto split_heads = [&](const ag::Variable& x, int64_t len) {
    ag::Variable r = ag::Reshape(x, t::Shape{batch, len, num_heads_, head_dim_});
    r = ag::Permute(r, {0, 2, 1, 3});  // [B, h, L, dk]
    return ag::Reshape(r, t::Shape{batch * num_heads_, len, head_dim_});
  };

  ag::Variable qh = split_heads(wq_->Forward(q), lq);
  ag::Variable kh = split_heads(wk_->Forward(k), lk);
  ag::Variable vh = split_heads(wv_->Forward(v), lk);

  float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  // Inference fast path: stream scores through the fused kernel instead of
  // materializing the [B*h, Lq, Lk] tensor. Kept off the training path so
  // gradient numerics are unchanged (the fused op's recompute backward
  // reorders accumulations), and off when the caller wants the probabilities.
  if (t::FusedAttentionEnabled() && attention_probs == nullptr &&
      !ag::NoGradGuard::GradEnabled()) {
    if (key_mask != nullptr) {
      SSTBAN_CHECK_EQ(key_mask->rank(), 2);
      SSTBAN_CHECK_EQ(key_mask->dim(0), batch);
      SSTBAN_CHECK_EQ(key_mask->dim(1), lk);
    }
    ag::Variable context =
        ag::FusedAttention(qh, kh, vh, key_mask, num_heads_, scale);
    context = ag::Reshape(context, t::Shape{batch, num_heads_, lq, head_dim_});
    context = ag::Permute(context, {0, 2, 1, 3});  // [B, Lq, h, dk]
    context = ag::Reshape(context, t::Shape{batch, lq, num_heads_ * head_dim_});
    return wo_->Forward(context);
  }
  ag::Variable scores =
      ag::MulScalar(ag::Bmm(qh, kh, /*transpose_a=*/false, /*transpose_b=*/true),
                    scale);  // [B*h, Lq, Lk]

  ag::Variable attn;
  if (key_mask != nullptr) {
    SSTBAN_CHECK_EQ(key_mask->rank(), 2);
    SSTBAN_CHECK_EQ(key_mask->dim(0), batch);
    SSTBAN_CHECK_EQ(key_mask->dim(1), lk);
    // Expand [B, Lk] -> additive [B*h, Lq, Lk]: excluded keys get -1e9.
    t::Tensor additive =
        t::Tensor::Empty(t::Shape{batch * num_heads_, lq, lk});
    const float* pm = key_mask->data();
    float* pa = additive.data();
    int64_t rows = batch * num_heads_ * lq;
    t::ParallelFor(0, rows, [&](int64_t lo, int64_t hi) {
      for (int64_t r = lo; r < hi; ++r) {
        float* row = pa + r * lk;
        const float* mrow = pm + (r / (num_heads_ * lq)) * lk;
        for (int64_t j = 0; j < lk; ++j) {
          row[j] = mrow[j] > 0.5f ? 0.0f : -1e9f;
        }
      }
    }, /*grain=*/256);
    if (ag::TraceScope::Active()) {
      ag::DynamicNote note;
      note.kind = ag::DynamicKind::kAdditiveKeyMask;
      note.tensor = additive;
      note.mask_src = key_mask->data();
      note.heads = num_heads_;
      note.lq = lq;
      note.lk = lk;
      ag::TraceDynamicInput(std::move(note));
    }
    attn = ag::SoftmaxWithMask(scores, additive);
  } else {
    attn = ag::Softmax(scores);
  }

  if (attention_probs != nullptr) {
    // Average the per-head distributions into [B, Lq, Lk].
    t::Tensor heads =
        attn.value().Reshape(t::Shape{batch, num_heads_, lq, lk});
    *attention_probs = t::Mean(heads, 1);
  }

  ag::Variable context = ag::Bmm(attn, vh);  // [B*h, Lq, dk]
  context = ag::Reshape(context, t::Shape{batch, num_heads_, lq, head_dim_});
  context = ag::Permute(context, {0, 2, 1, 3});  // [B, Lq, h, dk]
  context = ag::Reshape(context, t::Shape{batch, lq, num_heads_ * head_dim_});
  return wo_->Forward(context);
}

}  // namespace sstban::nn

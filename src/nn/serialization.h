#ifndef SSTBAN_NN_SERIALIZATION_H_
#define SSTBAN_NN_SERIALIZATION_H_

#include <string>

#include "core/file_io.h"
#include "core/status.h"
#include "nn/module.h"

namespace sstban::nn {

// Binary checkpoint format for module parameters:
//   magic "SSTB" | uint32 version | uint64 param count |
//   per parameter: uint64 name length | name bytes |
//                  uint32 rank | int64 dims[rank] | float data[numel]
//   version >= 2 only: uint32 CRC32 over every preceding byte
// Parameters are matched by their dotted registry path, so the module on
// the loading side must have the same architecture.
//
// Writes are atomic (temp file -> fsync -> rename): a crash mid-save leaves
// the previous checkpoint — or no file — at `path`, never a torn one. The
// reader verifies the CRC footer before trusting any value; legacy
// footer-less version-1 files are still accepted.

// Writes every named parameter of `module` to `path`.
core::Status SaveParameters(const Module& module, const std::string& path);

// Restores parameter values into `module`; fails (without partial writes
// to the module) if the checksum, names, counts, or shapes do not match.
core::Status LoadParameters(Module* module, const std::string& path);

// Tensor payload helpers shared with the training checkpoint format:
// rank | dims[rank] | float data. ReadTensor bounds-checks rank/dims against
// the bytes actually remaining, so corrupt length fields cannot trigger
// huge allocations.
void AppendTensor(core::BufferWriter& w, const tensor::Tensor& value);
core::Status ReadTensor(core::BufferReader& r, tensor::Tensor* out);

}  // namespace sstban::nn

#endif  // SSTBAN_NN_SERIALIZATION_H_

#ifndef SSTBAN_NN_SERIALIZATION_H_
#define SSTBAN_NN_SERIALIZATION_H_

#include <string>

#include "core/status.h"
#include "nn/module.h"

namespace sstban::nn {

// Binary checkpoint format for module parameters:
//   magic "SSTB" | uint32 version | uint64 param count |
//   per parameter: uint64 name length | name bytes |
//                  uint32 rank | int64 dims[rank] | float data[numel]
// Parameters are matched by their dotted registry path, so the module on
// the loading side must have the same architecture.

// Writes every named parameter of `module` to `path`.
core::Status SaveParameters(const Module& module, const std::string& path);

// Restores parameter values into `module`; fails (without partial writes
// to the module) if names, counts, or shapes do not match the file.
core::Status LoadParameters(Module* module, const std::string& path);

}  // namespace sstban::nn

#endif  // SSTBAN_NN_SERIALIZATION_H_

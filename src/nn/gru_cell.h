#ifndef SSTBAN_NN_GRU_CELL_H_
#define SSTBAN_NN_GRU_CELL_H_

#include <memory>

#include "nn/linear.h"
#include "nn/module.h"

namespace sstban::nn {

// Gated recurrent unit cell:
//   z = sigmoid(x Wz + h Uz),  r = sigmoid(x Wr + h Ur)
//   c = tanh(x Wc + (r * h) Uc),  h' = (1 - z) * h + z * c
// Used by the RNN-family baselines (DCRNN/AGCRN use graph-conv variants of
// the same gating; see src/baselines).
class GruCell : public Module {
 public:
  GruCell(int64_t input_dim, int64_t hidden_dim, core::Rng& rng);

  // x: [B, input_dim], h: [B, hidden_dim] -> new hidden [B, hidden_dim].
  autograd::Variable Forward(const autograd::Variable& x,
                             const autograd::Variable& h) const;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  int64_t hidden_dim_;
  std::unique_ptr<Linear> input_proj_;   // x -> [z | r | c] pre-activations
  std::unique_ptr<Linear> hidden_proj_;  // h -> [z | r | c] pre-activations
};

}  // namespace sstban::nn

#endif  // SSTBAN_NN_GRU_CELL_H_

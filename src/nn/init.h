#ifndef SSTBAN_NN_INIT_H_
#define SSTBAN_NN_INIT_H_

#include "core/rng.h"
#include "tensor/tensor.h"

namespace sstban::nn {

// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
// For rank-2 weights fan_in/fan_out are the two dims; for conv weights
// [K, C_in, C_out] the kernel size multiplies the fans.
tensor::Tensor XavierUniform(const tensor::Shape& shape, core::Rng& rng);

// He/Kaiming normal: N(0, sqrt(2 / fan_in)); preferred before ReLU.
tensor::Tensor HeNormal(const tensor::Shape& shape, core::Rng& rng);

}  // namespace sstban::nn

#endif  // SSTBAN_NN_INIT_H_

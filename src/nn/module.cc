#include "nn/module.h"

#include "core/check.h"

namespace sstban::nn {

std::vector<autograd::Variable> Module::Parameters() const {
  std::vector<autograd::Variable> result;
  for (const auto& [name, param] : NamedParameters()) result.push_back(param);
  return result;
}

std::vector<std::pair<std::string, autograd::Variable>> Module::NamedParameters()
    const {
  std::vector<std::pair<std::string, autograd::Variable>> result;
  CollectNamed("", &result);
  return result;
}

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const auto& p : Parameters()) total += p.size();
  return total;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->SetTraining(training);
}

void Module::ZeroGrad() {
  for (auto& p : Parameters()) p.ZeroGrad();
}

autograd::Variable Module::RegisterParameter(std::string name,
                                             tensor::Tensor init) {
  autograd::Variable param(std::move(init), /*requires_grad=*/true);
  params_.emplace_back(std::move(name), param);
  return param;
}

void Module::RegisterModule(std::string name, Module* child) {
  SSTBAN_CHECK(child != nullptr);
  children_.emplace_back(std::move(name), child);
}

void Module::CollectNamed(
    const std::string& prefix,
    std::vector<std::pair<std::string, autograd::Variable>>* out) const {
  for (const auto& [name, param] : params_) {
    out->emplace_back(prefix.empty() ? name : prefix + "." + name, param);
  }
  for (const auto& [name, child] : children_) {
    child->CollectNamed(prefix.empty() ? name : prefix + "." + name, out);
  }
}

}  // namespace sstban::nn

#include "streaming/drift_detector.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace sstban::streaming {

const char* DriftStateName(DriftState state) {
  switch (state) {
    case DriftState::kCooldown: return "cooldown";
    case DriftState::kWarmup: return "warmup";
    case DriftState::kStable: return "stable";
    case DriftState::kSuspect: return "suspect";
    case DriftState::kDrift: return "drift";
  }
  return "unknown";
}

DriftDetector::DriftDetector(DriftDetectorOptions options)
    : options_(options) {
  SSTBAN_CHECK_GT(options_.num_groups, 0);
  SSTBAN_CHECK_GE(options_.warmup, 2);
  SSTBAN_CHECK_GT(options_.threshold_sigma, 0.0);
  SSTBAN_CHECK_GE(options_.confirm, 1);
  SSTBAN_CHECK_GT(options_.clamp_sigma, options_.slack_sigma);
  groups_.resize(static_cast<size_t>(options_.num_groups));
}

DriftState DriftDetector::Observe(int64_t group, double error) {
  Group& g = groups_.at(static_cast<size_t>(group));
  if (g.state == DriftState::kDrift) return g.state;
  if (!std::isfinite(error)) {
    // A non-finite error is a serving fault, not evidence about the traffic
    // regime; the breaker/fallback layer owns it. Treat as a maximal
    // (winsorized) excess so *sustained* breakage still confirms.
    error = g.stddev > 0.0
                ? g.mean + options_.clamp_sigma * g.stddev
                : 0.0;
  }
  if (g.cooldown_left > 0) {
    --g.cooldown_left;
    g.state = g.cooldown_left > 0 ? DriftState::kCooldown : DriftState::kWarmup;
    return DriftState::kCooldown;
  }
  if (g.seen < options_.warmup) {
    // Welford accumulation of the baseline.
    ++g.seen;
    const double delta = error - g.mean;
    g.mean += delta / static_cast<double>(g.seen);
    g.m2 += delta * (error - g.mean);
    if (g.seen == options_.warmup) {
      // Future residuals are measured against the *estimated* mean, so their
      // variance is sigma^2 * (1 + 1/W); bake that inflation into the frozen
      // stddev or a W-sample baseline gives the CUSUM a positive drift under
      // pure baseline noise (slack and threshold would both be undersized).
      const double var = g.m2 / static_cast<double>(g.seen - 1);
      const double inflate = 1.0 + 1.0 / static_cast<double>(g.seen);
      g.stddev = std::sqrt(std::max(var * inflate, 0.0));
      // Floor: a perfectly flat warmup error (tiny deterministic worlds)
      // must not make every later fluctuation register as infinite sigmas.
      g.stddev = std::max(g.stddev, 1e-3 * std::max(std::abs(g.mean), 1.0));
      g.state = DriftState::kStable;
    } else {
      g.state = DriftState::kWarmup;
    }
    return g.state;
  }

  ++g.post_warmup;
  const double clamped =
      std::min(error, g.mean + options_.clamp_sigma * g.stddev);
  const double excess = clamped - g.mean - options_.slack_sigma * g.stddev;
  g.cusum = std::max(0.0, g.cusum + excess);

  if (g.cusum > options_.threshold_sigma * g.stddev) {
    ++g.trip_streak;
    if (g.trip_streak >= options_.confirm) {
      g.state = DriftState::kDrift;
      g.confirmed_after = g.post_warmup;
    } else {
      g.state = DriftState::kSuspect;
    }
  } else {
    g.trip_streak = 0;
    g.state = DriftState::kStable;
  }
  return g.state;
}

DriftState DriftDetector::state(int64_t group) const {
  return groups_.at(static_cast<size_t>(group)).state;
}

double DriftDetector::cusum_sigma(int64_t group) const {
  const Group& g = groups_.at(static_cast<size_t>(group));
  return g.stddev > 0.0 ? g.cusum / g.stddev : 0.0;
}

double DriftDetector::baseline_mean(int64_t group) const {
  return groups_.at(static_cast<size_t>(group)).mean;
}

double DriftDetector::baseline_stddev(int64_t group) const {
  return groups_.at(static_cast<size_t>(group)).stddev;
}

int64_t DriftDetector::observations_to_confirm(int64_t group) const {
  return groups_.at(static_cast<size_t>(group)).confirmed_after;
}

void DriftDetector::ResetGroup(int64_t group) {
  Group& g = groups_.at(static_cast<size_t>(group));
  g = Group();
  g.cooldown_left = options_.cooldown;
  g.state = g.cooldown_left > 0 ? DriftState::kCooldown : DriftState::kWarmup;
}

}  // namespace sstban::streaming

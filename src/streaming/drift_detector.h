#ifndef SSTBAN_STREAMING_DRIFT_DETECTOR_H_
#define SSTBAN_STREAMING_DRIFT_DETECTOR_H_

#include <cstdint>
#include <vector>

namespace sstban::streaming {

struct DriftDetectorOptions {
  // Independent CUSUM streams, one per sensor group (the controller runs one
  // stream for the whole network; per-corridor callers shard errors).
  int64_t num_groups = 1;
  // Observations used to establish the error baseline (frozen Welford
  // mean/stddev) before accumulation starts.
  int64_t warmup = 16;
  // CUSUM slack, in baseline stddevs: only error excess beyond
  // mean + slack_sigma * stddev accumulates, so ordinary fluctuation decays
  // the statistic instead of feeding it.
  double slack_sigma = 0.5;
  // Trip threshold for the accumulated statistic, in baseline stddevs.
  double threshold_sigma = 8.0;
  // Hysteresis: the statistic must stay tripped for this many *consecutive*
  // observations before drift is confirmed. Transient spikes — a breaker
  // trip, one bad batch served by the fallback chain — recover within a
  // window or two and never confirm; only a sustained regime shift does.
  int64_t confirm = 3;
  // Per-observation accumulation is winsorized at this many stddevs so a
  // single absurd error (Inf after a fault) cannot trip the statistic alone.
  double clamp_sigma = 6.0;
  // Observations ignored after ResetGroup before the baseline re-learns —
  // the re-warmed baseline must not be estimated from the adaptation
  // transient itself.
  int64_t cooldown = 8;
};

enum class DriftState {
  kCooldown = 0,  // post-reset quiet period, observations discarded
  kWarmup,        // learning the error baseline
  kStable,        // statistic at zero
  kSuspect,       // statistic tripped, hysteresis not yet satisfied
  kDrift,         // confirmed; latched until ResetGroup
};

const char* DriftStateName(DriftState state);

// One-sided error-vs-baseline CUSUM per sensor group. Feed it one scalar
// forecast error per evaluation window; it answers "has the error level
// sustainably shifted above the baseline regime". Deterministic: no clocks,
// no randomness — the same error sequence always produces the same states.
class DriftDetector {
 public:
  explicit DriftDetector(DriftDetectorOptions options);

  // Records one error observation for `group` and returns the group's new
  // state. Once kDrift is returned the group latches there (observations are
  // counted but ignored) until ResetGroup.
  DriftState Observe(int64_t group, double error);

  DriftState state(int64_t group) const;
  // Current accumulated statistic, in baseline stddevs.
  double cusum_sigma(int64_t group) const;
  double baseline_mean(int64_t group) const;
  double baseline_stddev(int64_t group) const;
  // Observations between the end of warmup and the kDrift confirmation;
  // -1 while not confirmed. The bench reports this as windows-to-detect.
  int64_t observations_to_confirm(int64_t group) const;

  // Clears the group's statistic *and* baseline: after an adaptation (or a
  // refused promotion) the error regime changes, so the baseline re-learns
  // behind a cooldown instead of comparing the new model to the old world.
  void ResetGroup(int64_t group);

  int64_t num_groups() const { return options_.num_groups; }

 private:
  struct Group {
    DriftState state = DriftState::kWarmup;
    int64_t seen = 0;          // warmup observations consumed
    int64_t cooldown_left = 0;
    double mean = 0.0;         // Welford accumulation during warmup,
    double m2 = 0.0;           // frozen baseline afterwards
    double stddev = 0.0;
    double cusum = 0.0;        // in absolute error units
    int64_t trip_streak = 0;
    int64_t post_warmup = 0;   // observations since the baseline froze
    int64_t confirmed_after = -1;
  };

  DriftDetectorOptions options_;
  std::vector<Group> groups_;
};

}  // namespace sstban::streaming

#endif  // SSTBAN_STREAMING_DRIFT_DETECTOR_H_

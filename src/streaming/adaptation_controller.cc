#include "streaming/adaptation_controller.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "core/check.h"

namespace sstban::streaming {

const char* StreamEventName(StreamEvent event) {
  switch (event) {
    case StreamEvent::kIngested: return "ingested";
    case StreamEvent::kDriftSuspect: return "drift-suspect";
    case StreamEvent::kAdaptFailed: return "adapt-failed";
    case StreamEvent::kPromoted: return "promoted";
    case StreamEvent::kRefused: return "refused";
    case StreamEvent::kRolledBack: return "rolled-back";
    case StreamEvent::kGeometryChange: return "geometry-change";
  }
  return "unknown";
}

AdaptationController::AdaptationController(
    AdaptationControllerOptions options, serving::ModelRegistry* registry)
    : options_(std::move(options)),
      registry_(registry),
      ingestor_(options_.ingest),
      detector_([&] {
        DriftDetectorOptions drift = options_.drift;
        drift.num_groups = 1;
        return drift;
      }()),
      evaluator_(options_.shadow),
      gate_(options_.gate, registry, options_.factory),
      last_live_error_(std::numeric_limits<double>::quiet_NaN()) {
  SSTBAN_CHECK(registry_ != nullptr);
  SSTBAN_CHECK(options_.factory != nullptr);
  SSTBAN_CHECK_GE(options_.shadow_windows, 1);
  SSTBAN_CHECK_GE(options_.adapt_windows, 1);
  eval_stride_ = options_.eval_stride > 0 ? options_.eval_stride
                                          : options_.ingest.output_len;
}

core::StatusOr<StreamEvent> AdaptationController::OnSlice(
    const tensor::Tensor& slice, int64_t step) {
  // Geometry change is the growing-city scenario: new sensors attached to
  // the network. Online adaptation cannot change model geometry — that is a
  // retrain-and-redeploy event — so the stream refuses the slice before it
  // can corrupt the ring or the running stats.
  if (slice.defined() && slice.rank() == 2 &&
      (slice.dim(0) != options_.ingest.num_nodes ||
       slice.dim(1) != options_.ingest.num_features)) {
    ++geometry_changes_;
    return StreamEvent::kGeometryChange;
  }

  SSTBAN_RETURN_IF_ERROR(ingestor_.Append(slice, step));

  // Shadow-score the incumbent on the newest matured window every
  // eval_stride slices; those errors are both the drift detector's input and
  // the post-promotion regression monitor's.
  const int64_t p = options_.ingest.input_len;
  const int64_t q = options_.ingest.output_len;
  if (ingestor_.size() < p + q) return StreamEvent::kIngested;
  if (last_eval_step_ >= 0 &&
      ingestor_.next_step() - last_eval_step_ < eval_stride_) {
    return StreamEvent::kIngested;
  }
  std::shared_ptr<const serving::ModelRegistry::Served> served =
      registry_->current();
  if (served == nullptr) return StreamEvent::kIngested;
  last_eval_step_ = ingestor_.next_step();

  core::StatusOr<data::TrafficDataset> snapshot = ingestor_.Snapshot(p + q);
  SSTBAN_CHECK(snapshot.ok()) << snapshot.status().ToString();
  auto dataset = std::make_shared<data::TrafficDataset>(
      std::move(snapshot).value());
  data::WindowDataset windows(dataset, p, q);
  std::unique_ptr<training::TrafficModel> shadow_incumbent =
      CloneWithWeights(options_.factory, *served->model);
  core::StatusOr<double> score = evaluator_.Score(
      shadow_incumbent.get(), windows, {0}, served->normalizer);
  ++evals_;
  // An unscorable incumbent (injected shadow_eval fault, throwing model) is
  // a serving fault, not regime evidence: the breaker/fallback chain owns
  // transient breakage, and the detector's winsorized non-finite handling
  // owns sustained breakage.
  last_live_error_ = score.ok()
                         ? score.value()
                         : std::numeric_limits<double>::infinity();

  if (gate_.ObserveLive(last_live_error_)) {
    // Live regression rolled the previous weights back; the error regime
    // changes again, so the detector re-learns its baseline.
    detector_.ResetGroup(0);
    return StreamEvent::kRolledBack;
  }

  DriftState state = detector_.Observe(0, last_live_error_);
  if (state == DriftState::kSuspect) return StreamEvent::kDriftSuspect;
  if (state != DriftState::kDrift) return StreamEvent::kIngested;
  return RunAdaptationRound();
}

core::StatusOr<StreamEvent> AdaptationController::RunAdaptationRound() {
  const int64_t p = options_.ingest.input_len;
  const int64_t q = options_.ingest.output_len;
  std::shared_ptr<const serving::ModelRegistry::Served> served =
      registry_->current();
  SSTBAN_CHECK(served != nullptr);  // drift is only observed while serving
  ++rounds_;

  // Materialize the freshest history: enough windows for adaptation plus the
  // temporal holdout the shadow comparison scores on.
  const int64_t span = options_.adapt_windows + options_.shadow_windows +
                       p + q - 1;
  core::StatusOr<data::TrafficDataset> snapshot = ingestor_.Snapshot(span);
  SSTBAN_CHECK(snapshot.ok()) << snapshot.status().ToString();
  auto dataset = std::make_shared<data::TrafficDataset>(
      std::move(snapshot).value());
  data::WindowDataset windows(dataset, p, q);
  const int64_t total = windows.num_windows();
  const int64_t shadow_n = std::min(options_.shadow_windows, total);
  std::vector<int64_t> shadow_indices, adapt_indices;
  for (int64_t i = total - shadow_n; i < total; ++i) {
    shadow_indices.push_back(i);
  }
  for (int64_t i = 0; i < total - shadow_n; ++i) adapt_indices.push_back(i);
  if (adapt_indices.empty()) adapt_indices = shadow_indices;

  std::unique_ptr<training::TrafficModel> candidate =
      CloneWithWeights(options_.factory, *served->model);

  // Per-round checkpoint directory: a finished previous round's checkpoint
  // must never resume into (and thereby skip) a new round.
  OnlineAdapterOptions adapter_options = options_.adapter;
  if (!adapter_options.checkpoint_dir.empty()) {
    adapter_options.checkpoint_dir +=
        "/round_" + std::to_string(rounds_);
  }
  OnlineAdapter adapter(adapter_options);
  core::StatusOr<AdaptReport> adapted = adapter.Adapt(
      candidate.get(), windows, adapt_indices, served->normalizer);
  if (!adapted.ok()) {
    ++adapt_failures_;
    last_adapt_status_ = adapted.status();
    // Reset (with cooldown) instead of hot-looping the failed round on every
    // subsequent slice; sustained drift re-confirms after the baseline
    // re-learns.
    detector_.ResetGroup(0);
    return StreamEvent::kAdaptFailed;
  }
  last_adapt_status_ = core::Status::Ok();

  core::StatusOr<PromotionDecision> decision = gate_.TryPromote(
      std::move(candidate), windows, shadow_indices, served->normalizer,
      evaluator_);
  detector_.ResetGroup(0);
  if (!decision.ok()) return decision.status();
  return decision.value().promoted ? StreamEvent::kPromoted
                                   : StreamEvent::kRefused;
}

}  // namespace sstban::streaming

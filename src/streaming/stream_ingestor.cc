#include "streaming/stream_ingestor.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/check.h"
#include "core/failpoint.h"

namespace sstban::streaming {

namespace t = ::sstban::tensor;

StreamIngestor::StreamIngestor(StreamIngestorOptions options)
    : options_(std::move(options)), sanitizer_(options_.sanitizer) {
  SSTBAN_CHECK_GT(options_.num_nodes, 0);
  SSTBAN_CHECK_GT(options_.num_features, 0);
  SSTBAN_CHECK_GT(options_.input_len, 0);
  SSTBAN_CHECK_GT(options_.output_len, 0);
  SSTBAN_CHECK_GT(options_.steps_per_day, 0);
  if (options_.capacity <= 0) {
    options_.capacity =
        std::max<int64_t>(8 * (options_.input_len + options_.output_len),
                          2 * options_.steps_per_day);
  }
  SSTBAN_CHECK_GE(options_.capacity,
                  options_.input_len + options_.output_len);
  ring_ = t::Tensor::Zeros(
      t::Shape{options_.capacity, options_.num_nodes, options_.num_features});
  staging_ =
      t::Tensor::Zeros(t::Shape{1, options_.num_nodes, options_.num_features});
  const double halflife = std::max(options_.stats_halflife_slices, 1.0);
  // Per-reading decay: the half-life is expressed in slices, and every slice
  // contributes up to N readings per feature.
  stats_alpha_ =
      1.0 - std::exp(std::log(0.5) /
                     (halflife * static_cast<double>(options_.num_nodes)));
  ew_mean_.assign(static_cast<size_t>(options_.num_features), 0.0);
  ew_var_.assign(static_cast<size_t>(options_.num_features), 0.0);
  slice_sum_.assign(static_cast<size_t>(options_.num_features), 0.0);
  slice_count_.assign(static_cast<size_t>(options_.num_features), 0);
}

core::Status StreamIngestor::Append(const t::Tensor& slice, int64_t step) {
  SSTBAN_FAILPOINT("ingest_append");
  const int64_t n = options_.num_nodes, c = options_.num_features;

  if (!slice.defined() || slice.rank() != 2 || slice.dim(0) != n ||
      slice.dim(1) != c) {
    ++rejected_geometry_;
    return core::Status::InvalidArgument(
        "slice geometry does not match the ingest stream (expected [" +
        std::to_string(n) + ", " + std::to_string(c) + "])");
  }
  // Timestamp discipline: the logical clock is pinned by the first accepted
  // slice and must advance by exactly one thereafter. A regressed, repeated,
  // or gapped step means the feed glitched; accepting it would corrupt the
  // calendar features of every window cut from the ring.
  if (step < 0 || (started_ && step != next_step_)) {
    ++rejected_timestamps_;
    return core::Status::OutOfRange(
        "out-of-range timestamp " + std::to_string(step) + " (expected " +
        std::to_string(started_ ? next_step_ : 0) + " or later start)");
  }

  // Sanitize a staged copy so a rejected slice never touches the ring.
  std::memcpy(staging_.data(), slice.data(),
              static_cast<size_t>(n * c) * sizeof(float));
  core::StatusOr<serving::SanitizeResult> sanitized =
      sanitizer_.Sanitize(&staging_);
  if (!sanitized.ok()) {
    ++rejected_values_;
    // The reading is bad but the timestamp is legitimate: consume it so the
    // feed keeps flowing, and punch a hole in window continuity — retained
    // history must stay temporally contiguous, so the ring restarts. The
    // running stats are untouched (zero-poison guarantee).
    if (started_) {
      next_step_ = step + 1;
      count_ = 0;
    }
    return sanitized.status();
  }
  const serving::SanitizeResult& verdict = sanitized.value();
  scrubbed_positions_ += verdict.masked_positions;

  // Exponentially-weighted running moments over surviving readings only:
  // scrubbed positions are exactly the readings that must not poison the
  // normalizer statistics.
  const float* pv = staging_.data();
  const float* keep =
      verdict.keep_pos.defined() ? verdict.keep_pos.data() : nullptr;
  const double a = stats_alpha_;
  for (int64_t node = 0; node < n; ++node) {
    if (keep != nullptr && keep[node] == 0.0f) continue;
    for (int64_t f = 0; f < c; ++f) {
      const double v = pv[node * c + f];
      const size_t fi = static_cast<size_t>(f);
      const double delta = v - ew_mean_[fi];
      ew_mean_[fi] += a * delta;
      ew_var_[fi] = (1.0 - a) * (ew_var_[fi] + a * delta * delta);
    }
  }

  // Commit to the ring.
  const int64_t row = accepted_ % options_.capacity;
  std::memcpy(ring_.data() + row * n * c, staging_.data(),
              static_cast<size_t>(n * c) * sizeof(float));
  started_ = true;
  next_step_ = step + 1;
  ++accepted_;
  count_ = std::min(count_ + 1, options_.capacity);
  return core::Status::Ok();
}

core::StatusOr<data::Normalizer> StreamIngestor::RunningNormalizer() const {
  if (accepted_ < options_.input_len) {
    return core::Status::FailedPrecondition(
        "running stats need at least input_len accepted slices (" +
        std::to_string(accepted_) + "/" + std::to_string(options_.input_len) +
        ")");
  }
  std::vector<float> mean(ew_mean_.begin(), ew_mean_.end());
  std::vector<float> stddev(ew_var_.size());
  for (size_t f = 0; f < ew_var_.size(); ++f) {
    stddev[f] = static_cast<float>(std::sqrt(std::max(ew_var_[f], 0.0)));
  }
  return data::Normalizer::FromMoments(std::move(mean), std::move(stddev));
}

double StreamIngestor::running_mean(int64_t feature) const {
  return ew_mean_.at(static_cast<size_t>(feature));
}

double StreamIngestor::running_stddev(int64_t feature) const {
  return std::sqrt(std::max(ew_var_.at(static_cast<size_t>(feature)), 0.0));
}

core::StatusOr<t::Tensor> StreamIngestor::LatestWindow(
    int64_t* first_step) const {
  const int64_t p = options_.input_len;
  if (count_ < p) {
    return core::Status::NotFound("only " + std::to_string(count_) +
                                  " slices retained, window needs " +
                                  std::to_string(p));
  }
  const int64_t n = options_.num_nodes, c = options_.num_features;
  t::Tensor out = t::Tensor::Empty(t::Shape{p, n, c});
  for (int64_t i = 0; i < p; ++i) {
    const int64_t logical = accepted_ - p + i;
    const int64_t row = logical % options_.capacity;
    std::memcpy(out.data() + i * n * c, ring_.data() + row * n * c,
                static_cast<size_t>(n * c) * sizeof(float));
  }
  if (first_step != nullptr) *first_step = next_step_ - p;
  return out;
}

core::StatusOr<data::TrafficDataset> StreamIngestor::Snapshot(
    int64_t slices) const {
  const int64_t need = options_.input_len + options_.output_len;
  int64_t take = slices <= 0 ? count_ : std::min(slices, count_);
  if (take < need) {
    return core::Status::NotFound(
        "snapshot needs at least input_len + output_len slices (" +
        std::to_string(take) + "/" + std::to_string(need) + ")");
  }
  const int64_t n = options_.num_nodes, c = options_.num_features;
  data::TrafficDataset dataset;
  dataset.name = options_.name;
  dataset.graph = options_.graph;
  dataset.steps_per_day = options_.steps_per_day;
  dataset.signals = t::Tensor::Empty(t::Shape{take, n, c});
  dataset.time_of_day.resize(static_cast<size_t>(take));
  dataset.day_of_week.resize(static_cast<size_t>(take));
  for (int64_t i = 0; i < take; ++i) {
    const int64_t logical = accepted_ - take + i;
    const int64_t row = logical % options_.capacity;
    std::memcpy(dataset.signals.data() + i * n * c, ring_.data() + row * n * c,
                static_cast<size_t>(n * c) * sizeof(float));
    const int64_t step = next_step_ - take + i;
    dataset.time_of_day[static_cast<size_t>(i)] = step % options_.steps_per_day;
    dataset.day_of_week[static_cast<size_t>(i)] =
        (step / options_.steps_per_day) % 7;
  }
  return dataset;
}

}  // namespace sstban::streaming

#include "streaming/promotion.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <limits>
#include <utility>

#include "core/check.h"
#include "core/failpoint.h"
#include "tensor/ops.h"
#include "training/metrics.h"

namespace sstban::streaming {

namespace t = ::sstban::tensor;

ShadowEvaluator::ShadowEvaluator(ShadowEvaluatorOptions options)
    : options_(options) {
  SSTBAN_CHECK_GT(options_.batch_size, 0);
}

core::StatusOr<double> ShadowEvaluator::Score(
    training::TrafficModel* model, const data::WindowDataset& windows,
    const std::vector<int64_t>& indices,
    const data::Normalizer& normalizer) const {
  SSTBAN_CHECK(model != nullptr);
  SSTBAN_FAILPOINT("shadow_eval");
  if (indices.empty()) {
    return core::Status::InvalidArgument("no shadow windows to score on");
  }
  training::MetricsAccumulator acc;
  for (size_t begin = 0; begin < indices.size();
       begin += static_cast<size_t>(options_.batch_size)) {
    size_t end = std::min(begin + static_cast<size_t>(options_.batch_size),
                          indices.size());
    std::vector<int64_t> chunk(indices.begin() + begin, indices.begin() + end);
    data::Batch batch = windows.MakeBatch(chunk);
    t::Tensor denorm;
    try {
      denorm = training::RunBatchedInference(model, normalizer, batch,
                                             options_.executor_mode);
    } catch (const std::exception& e) {
      return core::Status::Internal(std::string("shadow forward threw: ") +
                                    e.what());
    }
    if (t::HasNonFinite(denorm)) {
      return core::Status::Internal("shadow forward produced non-finite");
    }
    t::Tensor truth = batch.y;
    if (options_.target_feature >= 0) {
      denorm = t::Slice(denorm, -1, options_.target_feature, 1);
      truth = t::Slice(truth, -1, options_.target_feature, 1);
    }
    acc.Add(denorm, truth);
  }
  return acc.Compute().mae;
}

PromotionGate::PromotionGate(PromotionGateOptions options,
                             serving::ModelRegistry* registry,
                             serving::ModelRegistry::ModelFactory factory)
    : options_(options),
      registry_(registry),
      factory_(std::move(factory)) {
  SSTBAN_CHECK(registry_ != nullptr);
  SSTBAN_CHECK(factory_ != nullptr);
  SSTBAN_CHECK_GE(options_.min_relative_improvement, 0.0);
  SSTBAN_CHECK_GE(options_.rollback_after, 1);
}

std::unique_ptr<training::TrafficModel> CloneWithWeights(
    const serving::ModelRegistry::ModelFactory& factory,
    const training::TrafficModel& source) {
  std::unique_ptr<training::TrafficModel> clone = factory();
  auto src = source.NamedParameters();
  auto dst = clone->NamedParameters();
  SSTBAN_CHECK_EQ(src.size(), dst.size())
      << "factory architecture differs from the served model";
  for (size_t i = 0; i < src.size(); ++i) {
    SSTBAN_CHECK(src[i].second.value().shape() == dst[i].second.value().shape())
        << "parameter " << src[i].first << " shape mismatch";
    dst[i].second.mutable_value().CopyFrom(src[i].second.value());
  }
  return clone;
}

core::StatusOr<PromotionDecision> PromotionGate::TryPromote(
    std::unique_ptr<training::TrafficModel> candidate,
    const data::WindowDataset& shadow_windows,
    const std::vector<int64_t>& shadow_indices,
    const data::Normalizer& normalizer, const ShadowEvaluator& evaluator) {
  SSTBAN_CHECK(candidate != nullptr);
  PromotionDecision decision;
  std::shared_ptr<const serving::ModelRegistry::Served> incumbent =
      registry_->current();
  decision.previous_version = incumbent != nullptr ? incumbent->version : 0;

  // Candidate first: an unscorable candidate refuses immediately, regardless
  // of the incumbent's condition.
  core::StatusOr<double> cand =
      evaluator.Score(candidate.get(), shadow_windows, shadow_indices,
                      normalizer);
  if (!cand.ok() || !std::isfinite(cand.value())) {
    decision.reason = "candidate unscorable: " +
                      (cand.ok() ? std::string("non-finite score")
                                 : cand.status().ToString());
    ++refusals_;
    last_decision_ = decision;
    return decision;
  }
  decision.candidate_score = cand.value();

  // Incumbent scored through a weight-copied clone: the served instance may
  // be running inference on the batcher thread right now, and Score flips
  // train/eval state. An unscorable incumbent (its forward throws — the
  // failure drift adaptation exists to recover from) counts as infinitely
  // bad, so a healthy candidate can still promote past it.
  double incumbent_score = std::numeric_limits<double>::infinity();
  if (incumbent != nullptr) {
    std::unique_ptr<training::TrafficModel> shadow_incumbent =
        CloneWithWeights(factory_, *incumbent->model);
    core::StatusOr<double> inc =
        evaluator.Score(shadow_incumbent.get(), shadow_windows, shadow_indices,
                        normalizer);
    if (inc.ok() && std::isfinite(inc.value())) incumbent_score = inc.value();
  }
  decision.incumbent_score = incumbent_score;

  const bool beats =
      decision.candidate_score <
      incumbent_score * (1.0 - options_.min_relative_improvement);
  if (!beats) {
    decision.reason = "candidate did not beat incumbent";
    ++refusals_;
    last_decision_ = decision;
    return decision;
  }

  // The swap itself can fault (promote_swap): rollback-by-not-committing —
  // the incumbent stays installed and the round counts as refused.
  core::Status gate = core::FailPointStatus("promote_swap");
  if (!gate.ok()) {
    decision.reason = "swap fault: " + gate.ToString();
    ++refusals_;
    last_decision_ = decision;
    return decision;
  }

  // Pay the static-executor retrace before install, off the serving path.
  // (Shadow scoring under kStatic already compiled the shadow batch shapes;
  // this warms the single-request shape the server most commonly runs.)
  if (options_.prewarm_executor && candidate->SupportsStaticExecutor() &&
      training::ResolveExecutorMode(evaluator.options().executor_mode) ==
          training::ExecutorMode::kStatic &&
      !shadow_indices.empty()) {
    try {
      data::Batch one = shadow_windows.MakeBatch({shadow_indices.front()});
      (void)training::RunBatchedInference(candidate.get(), normalizer, one,
                                          training::ExecutorMode::kStatic);
    } catch (const std::exception&) {
      // Prewarm is an optimization; the serving path retraces lazily anyway.
    }
  }

  // Snapshot the incumbent's weights for post-promotion rollback.
  previous_params_.clear();
  if (incumbent != nullptr) {
    auto named = incumbent->model->NamedParameters();
    previous_params_.reserve(named.size());
    for (const auto& [name, param] : named) {
      (void)name;
      previous_params_.push_back(param.value().Clone());
    }
  }

  registry_->Install(std::move(candidate), "online-adapt");
  decision.promoted = true;
  decision.new_version = registry_->current_version();
  promoted_score_ = decision.candidate_score;
  regress_streak_ = 0;
  monitoring_ = incumbent != nullptr;  // nothing to roll back to otherwise
  ++promotions_;
  last_decision_ = decision;
  return decision;
}

bool PromotionGate::ObserveLive(double error) {
  if (!monitoring_) return false;
  const double bound =
      options_.rollback_factor *
      std::max(promoted_score_, options_.rollback_floor);
  if (!std::isfinite(error) || error > bound) {
    ++regress_streak_;
  } else {
    regress_streak_ = 0;
  }
  if (regress_streak_ < options_.rollback_after) return false;
  Rollback();
  return true;
}

void PromotionGate::Rollback() {
  // Deliberately failpoint-free: the safety path must not be injectable.
  std::unique_ptr<training::TrafficModel> restored = factory_();
  auto named = restored->NamedParameters();
  SSTBAN_CHECK_EQ(named.size(), previous_params_.size());
  for (size_t i = 0; i < named.size(); ++i) {
    named[i].second.mutable_value().CopyFrom(previous_params_[i]);
  }
  registry_->Install(std::move(restored), "rollback");
  monitoring_ = false;
  regress_streak_ = 0;
  ++rollbacks_;
}

}  // namespace sstban::streaming

#ifndef SSTBAN_STREAMING_ADAPTATION_CONTROLLER_H_
#define SSTBAN_STREAMING_ADAPTATION_CONTROLLER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/status.h"
#include "serving/model_registry.h"
#include "streaming/drift_detector.h"
#include "streaming/online_adapter.h"
#include "streaming/promotion.h"
#include "streaming/stream_ingestor.h"

namespace sstban::streaming {

struct AdaptationControllerOptions {
  StreamIngestorOptions ingest;
  DriftDetectorOptions drift;  // the controller runs a single group (0)
  OnlineAdapterOptions adapter;
  ShadowEvaluatorOptions shadow;
  PromotionGateOptions gate;
  // Builds architecture-compatible empty models; backs incumbent cloning for
  // shadow scoring, candidate construction, and rollback.
  serving::ModelRegistry::ModelFactory factory;
  // Slices between incumbent shadow evaluations; 0 = output_len.
  int64_t eval_stride = 0;
  // Newest matured windows held out for shadow scoring; the windows before
  // them feed adaptation.
  int64_t shadow_windows = 6;
  int64_t adapt_windows = 24;
};

// What one OnSlice tick amounted to, most significant first.
enum class StreamEvent {
  kIngested = 0,      // slice accepted, nothing else happened
  kDriftSuspect,      // CUSUM tripped, hysteresis pending
  kAdaptFailed,       // drift confirmed but the adaptation round errored
  kPromoted,          // drift -> adapt -> candidate won -> hot-swapped
  kRefused,           // drift -> adapt -> candidate lost (or swap faulted)
  kRolledBack,        // post-promotion live regression, previous weights back
  kGeometryChange,    // slice arrived with a different sensor set (growing
                      // city): refused before it can corrupt the ring —
                      // online adaptation cannot change model geometry
};

const char* StreamEventName(StreamEvent event);

// The drive-everything state machine: feed it one [N, C] slice per step and
// it ingests, shadow-scores the serving incumbent on matured windows, runs
// CUSUM drift detection over those errors, and on confirmed drift executes
//   clone incumbent -> OnlineAdapter (label-free) -> ShadowEvaluator ->
//   PromotionGate -> (hot-swap | refuse) -> DriftDetector reset,
// then keeps watching the promoted model for post-promotion regression
// (automatic rollback). Fully synchronous and deterministic: the same slice
// sequence produces the same events, adapted weights, and registry versions.
// Thread-compatible; the registry it promotes through is itself thread-safe,
// so a live ForecastServer keeps serving across promotions.
class AdaptationController {
 public:
  AdaptationController(AdaptationControllerOptions options,
                       serving::ModelRegistry* registry);

  // Errors propagate from the ingest boundary (rejected value/timestamp,
  // injected ingest_append fault); every error leaves the pipeline state
  // untouched. A geometry change is an *event*, not an error — it is the
  // growing-city drift scenario, answered with a deliberate refusal.
  core::StatusOr<StreamEvent> OnSlice(const tensor::Tensor& slice,
                                      int64_t step);

  const StreamIngestor& ingestor() const { return ingestor_; }
  const DriftDetector& detector() const { return detector_; }
  const PromotionGate& gate() const { return gate_; }
  const ShadowEvaluator& evaluator() const { return evaluator_; }

  int64_t evals() const { return evals_; }
  int64_t adaptation_rounds() const { return rounds_; }
  int64_t adapt_failures() const { return adapt_failures_; }
  int64_t geometry_changes() const { return geometry_changes_; }
  // Most recent incumbent shadow error; NaN before the first eval.
  double last_live_error() const { return last_live_error_; }
  const core::Status& last_adapt_status() const { return last_adapt_status_; }

 private:
  core::StatusOr<StreamEvent> RunAdaptationRound();

  AdaptationControllerOptions options_;
  serving::ModelRegistry* registry_;
  StreamIngestor ingestor_;
  DriftDetector detector_;
  ShadowEvaluator evaluator_;
  PromotionGate gate_;

  int64_t eval_stride_;
  int64_t last_eval_step_ = -1;
  int64_t evals_ = 0;
  int64_t rounds_ = 0;
  int64_t adapt_failures_ = 0;
  int64_t geometry_changes_ = 0;
  double last_live_error_;
  core::Status last_adapt_status_;
};

}  // namespace sstban::streaming

#endif  // SSTBAN_STREAMING_ADAPTATION_CONTROLLER_H_

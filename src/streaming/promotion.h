#ifndef SSTBAN_STREAMING_PROMOTION_H_
#define SSTBAN_STREAMING_PROMOTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "data/dataset.h"
#include "data/normalizer.h"
#include "serving/model_registry.h"
#include "training/forecast_service.h"
#include "training/model.h"

namespace sstban::streaming {

struct ShadowEvaluatorOptions {
  int64_t batch_size = 8;
  // Score only this feature channel (-1 = all), matching the serving
  // deployment's headline metric.
  int target_feature = -1;
  // Forward implementation; kStatic doubles as the candidate's executor
  // prewarm — scoring traces and compiles the serving shape before install.
  training::ExecutorMode executor_mode = training::ExecutorMode::kAuto;
};

// Scores a model on matured live windows (windows whose ground-truth horizon
// has since been observed): denormalized forecast MAE, exactly the serving
// metric. Used to score both the incumbent and an adapted candidate on the
// *same* windows, which is what makes the promotion comparison fair.
class ShadowEvaluator {
 public:
  explicit ShadowEvaluator(ShadowEvaluatorOptions options);

  // Failpoint `shadow_eval` fires first. A model that throws or produces
  // non-finite forecasts scores Internal — the gate treats that as "do not
  // promote" (candidate) or "incumbent unmeasurable, keep it" (incumbent).
  core::StatusOr<double> Score(training::TrafficModel* model,
                               const data::WindowDataset& windows,
                               const std::vector<int64_t>& indices,
                               const data::Normalizer& normalizer) const;

  const ShadowEvaluatorOptions& options() const { return options_; }

 private:
  ShadowEvaluatorOptions options_;
};

// Builds a factory-fresh model carrying `source`'s weights (copied by
// position; the factory contract guarantees an architecture-identical
// parameter list). Both the gate and the controller clone before scoring or
// adapting: the served instance may be running inference on the batcher
// thread, and training/eval passes flip shared module state.
std::unique_ptr<training::TrafficModel> CloneWithWeights(
    const serving::ModelRegistry::ModelFactory& factory,
    const training::TrafficModel& source);

struct PromotionGateOptions {
  // Candidate must beat the incumbent by this relative margin:
  // candidate < incumbent * (1 - min_relative_improvement).
  double min_relative_improvement = 0.0;
  // Post-promotion regression monitor: live error above
  // rollback_factor * max(candidate shadow score, rollback_floor) for
  // rollback_after consecutive observations rolls the previous weights back.
  double rollback_factor = 1.5;
  double rollback_floor = 1e-6;
  int64_t rollback_after = 3;
  // Prewarm the candidate's static executor for the serving shape before
  // install, so the hot-swap retrace cost is paid off-path (verified via
  // exec::InferenceEngine::cached_programs in tests).
  bool prewarm_executor = true;
};

struct PromotionDecision {
  bool promoted = false;
  double incumbent_score = 0.0;
  double candidate_score = 0.0;
  int64_t previous_version = 0;  // incumbent version before the swap
  int64_t new_version = 0;       // version installed (0 when refused)
  std::string reason;
};

// Shadow-gated hot-swap with automatic rollback. Invariants (pinned by
// streaming_chaos_test under every failure schedule):
//   - the serving incumbent is never replaced by a candidate whose shadow
//     score is not strictly better by the configured margin;
//   - a swap fault (promote_swap failpoint) refuses the promotion and leaves
//     the incumbent installed — rollback-by-not-committing;
//   - a sustained post-promotion live regression reinstates the
//     pre-promotion weights as a fresh registry version (the rollback path
//     itself has no failpoint: the safety path must not be injectable).
// The batcher-side half of the contract is unchanged from PR 5: on the next
// batch after any Install the server pins the new snapshot and resets the
// primary circuit breaker (CircuitBreaker::OnModelSwapped).
class PromotionGate {
 public:
  // `factory` builds architecture-compatible empty models (the registry's
  // own factory works); it backs the rollback snapshot restore.
  PromotionGate(PromotionGateOptions options,
                serving::ModelRegistry* registry,
                serving::ModelRegistry::ModelFactory factory);

  // Scores incumbent and candidate on the same shadow windows and promotes
  // the candidate through ModelRegistry::Install iff it wins. On promotion
  // the incumbent's weights are snapshotted for rollback. An unscorable
  // candidate refuses; an unscorable incumbent (throwing model) treats the
  // incumbent as infinitely bad — promotion is the recovery path.
  core::StatusOr<PromotionDecision> TryPromote(
      std::unique_ptr<training::TrafficModel> candidate,
      const data::WindowDataset& shadow_windows,
      const std::vector<int64_t>& shadow_indices,
      const data::Normalizer& normalizer, const ShadowEvaluator& evaluator);

  // Feeds one live post-promotion error observation. Returns true when this
  // observation triggered a rollback. No-op (false) when no promotion is
  // being monitored.
  bool ObserveLive(double error);

  bool monitoring() const { return monitoring_; }
  int64_t promotions() const { return promotions_; }
  int64_t refusals() const { return refusals_; }
  int64_t rollbacks() const { return rollbacks_; }
  const PromotionDecision& last_decision() const { return last_decision_; }

 private:
  void Rollback();

  PromotionGateOptions options_;
  serving::ModelRegistry* registry_;
  serving::ModelRegistry::ModelFactory factory_;

  // Pre-promotion weight snapshot for rollback.
  std::vector<tensor::Tensor> previous_params_;
  double promoted_score_ = 0.0;
  int64_t regress_streak_ = 0;
  bool monitoring_ = false;

  PromotionDecision last_decision_;
  int64_t promotions_ = 0;
  int64_t refusals_ = 0;
  int64_t rollbacks_ = 0;
};

}  // namespace sstban::streaming

#endif  // SSTBAN_STREAMING_PROMOTION_H_

#ifndef SSTBAN_STREAMING_ONLINE_ADAPTER_H_
#define SSTBAN_STREAMING_ONLINE_ADAPTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "data/dataset.h"
#include "data/normalizer.h"
#include "training/model.h"

namespace sstban::streaming {

struct OnlineAdapterOptions {
  // Fine-tuning steps per adaptation round.
  int64_t num_steps = 48;
  int64_t batch_size = 8;
  float learning_rate = 5e-4f;
  float grad_clip = 5.0f;
  // Seed of the window-sampling stream (checkpointed, so a resumed round
  // replays the identical sample sequence).
  uint64_t seed = 17;
  // Crash-safety: when non-empty, the adapter persists a full-state
  // training::TrainCheckpoint here every `checkpoint_every_steps` steps (and
  // at the final step) via core::WriteFileAtomic, and — when `resume` is set —
  // continues from the newest valid checkpoint instead of starting over.
  // The directory must be dedicated to one adaptation round: stale
  // checkpoints from an architecture- or window-compatible *previous* round
  // would otherwise resume into the wrong run.
  std::string checkpoint_dir;
  int64_t checkpoint_every_steps = 8;
  bool resume = true;
};

struct AdaptReport {
  int64_t steps_run = 0;          // steps executed by this call
  int64_t start_step = 0;         // > 0 when resumed from a checkpoint
  std::string resumed_from;       // checkpoint path, empty if fresh
  std::vector<double> step_loss;  // per-step SSL loss, resumed prefix included
};

// Incremental label-free fine-tuning: on confirmed drift the controller hands
// this a candidate model plus recent windows, and the adapter runs
// `num_steps` of Adam on TrafficModel::SelfSupervisedLoss — the paper's
// masked-reconstruction branch alone, which needs no ground-truth future.
//
// Crash-safety contract (pinned by streaming_crash_test at 1 and 8 threads):
// a round killed at any armed failpoint and re-run resumes from its last
// checkpoint and finishes with weights *bitwise identical* to an
// uninterrupted round. Everything stochastic is checkpointed: model weights,
// Adam step/moments, the sampling RNG, and the model's mask RNG.
class OnlineAdapter {
 public:
  explicit OnlineAdapter(OnlineAdapterOptions options);

  // Fine-tunes `model` in place on the windows named by `indices` (positions
  // into `windows`), normalizing inputs with the *serving* normalizer — the
  // statistics the weights were trained under; the ingestor's running stats
  // are drift telemetry, not a drop-in replacement. Errors:
  //   FailedPrecondition — the model exposes no label-free objective
  //                        (SelfSupervisedLoss undefined) or is not trainable;
  //   InvalidArgument    — empty `indices`;
  //   anything else      — an injected `adapt_step` fault, propagated.
  // Checkpoint write failures never abort the round (warn and continue) —
  // checkpointing is the safety net, not a dependency.
  core::StatusOr<AdaptReport> Adapt(training::TrafficModel* model,
                                    const data::WindowDataset& windows,
                                    const std::vector<int64_t>& indices,
                                    const data::Normalizer& normalizer) const;

  const OnlineAdapterOptions& options() const { return options_; }

 private:
  OnlineAdapterOptions options_;
};

}  // namespace sstban::streaming

#endif  // SSTBAN_STREAMING_ONLINE_ADAPTER_H_

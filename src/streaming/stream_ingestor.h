#ifndef SSTBAN_STREAMING_STREAM_INGESTOR_H_
#define SSTBAN_STREAMING_STREAM_INGESTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "data/dataset.h"
#include "data/normalizer.h"
#include "serving/sanitizer.h"
#include "tensor/tensor.h"

namespace sstban::streaming {

struct StreamIngestorOptions {
  int64_t num_nodes = 0;
  int64_t num_features = 0;
  int64_t input_len = 12;
  int64_t output_len = 12;
  int64_t steps_per_day = 96;
  // Ring size in slices; 0 derives a default large enough for adaptation
  // snapshots (8 * (input_len + output_len), at least two days).
  int64_t capacity = 0;
  // Value policy at the append boundary. Channels listed as degradable are
  // scrubbed (and excluded from the running stats); any non-finite/sentinel
  // reading in a strict channel rejects the whole slice, so corrupt readings
  // can never poison the normalizer statistics.
  serving::SanitizerOptions sanitizer;
  // Exponential half-life, in slices, of the running mean/variance the
  // drift-aware normalizer is derived from.
  double stats_halflife_slices = 256.0;
  // Attached to snapshot datasets (MakeBatch never reads it; models take the
  // graph from their own config). May be nullptr.
  std::shared_ptr<graph::TrafficGraph> graph;
  std::string name = "stream";
};

// Append-only ingestion boundary for live sensor readings. One slice = the
// [N, C] readings of every sensor at one absolute slice index (slices since
// the Monday-00:00 origin, the serving calendar convention). The ingestor
//   - validates geometry and timestamps (appends must advance the logical
//     clock by exactly one; regressions, gaps, and negative steps are
//     rejected as out-of-range timestamps),
//   - applies serving::InputSanitizer channel rules to the values,
//   - maintains exponentially-weighted per-feature running moments over the
//     readings that survived sanitization (the drift-aware normalizer), and
//   - retains the last `capacity` slices in a preallocated ring, from which
//     it assembles sliding windows for inference and adaptation snapshots.
// The accepted-clean-slice path performs no heap allocation (gated by
// bench_online_adaptation). Thread-compatible: callers serialize appends.
class StreamIngestor {
 public:
  explicit StreamIngestor(StreamIngestorOptions options);

  // Appends the [N, C] slice observed at absolute index `step`. Failpoint
  // `ingest_append` fires first (chaos hook). Errors:
  //   InvalidArgument      — wrong geometry (node/feature count changed), or
  //                          a strict-channel value violation;
  //   OutOfRange           — step is negative, regresses, or skips ahead.
  // Geometry and timestamp rejections leave everything untouched. A value
  // rejection consumes its (legitimate) timestamp so the feed keeps flowing,
  // but punches a hole in window continuity: the ring restarts, because
  // retained history must stay temporally contiguous. The running stats are
  // untouched in every rejection case — corrupt readings cannot poison them.
  core::Status Append(const tensor::Tensor& slice, int64_t step);

  // Slices currently retained (<= capacity).
  int64_t size() const { return count_; }
  // The step the next Append must carry; 0 before the first append (the
  // first accepted slice pins the clock, which then advances by one per
  // accepted slice).
  int64_t next_step() const { return next_step_; }
  bool started() const { return started_; }

  int64_t accepted() const { return accepted_; }
  int64_t rejected_values() const { return rejected_values_; }
  int64_t rejected_timestamps() const { return rejected_timestamps_; }
  int64_t rejected_geometry() const { return rejected_geometry_; }
  // Degradable readings scrubbed-and-masked so far (they are excluded from
  // the running stats but the slice itself is kept).
  int64_t scrubbed_positions() const { return scrubbed_positions_; }

  // Drift-aware normalizer from the running moments. FailedPrecondition
  // until at least input_len slices were accepted.
  core::StatusOr<data::Normalizer> RunningNormalizer() const;
  double running_mean(int64_t feature) const;
  double running_stddev(int64_t feature) const;

  // The newest fully-observed [P, N, C] window (a fresh copy), for serving.
  // `first_step` (if non-null) receives the window's first slice index.
  // NotFound until input_len slices are retained.
  core::StatusOr<tensor::Tensor> LatestWindow(int64_t* first_step) const;

  // Materializes the newest `slices` retained slices (0 = everything) as a
  // TrafficDataset with self-consistent calendar features, ready for
  // data::WindowDataset. NotFound until input_len + output_len slices are
  // retained. The returned dataset owns copies; the ring keeps appending.
  core::StatusOr<data::TrafficDataset> Snapshot(int64_t slices = 0) const;

  const StreamIngestorOptions& options() const { return options_; }

 private:
  StreamIngestorOptions options_;
  serving::InputSanitizer sanitizer_;
  tensor::Tensor ring_;     // [capacity, N, C]
  tensor::Tensor staging_;  // [1, N, C] scratch the sanitizer runs against
  bool started_ = false;
  int64_t next_step_ = 0;  // logical clock: step the next append must carry
  int64_t count_ = 0;      // retained slices
  int64_t accepted_ = 0;
  int64_t rejected_values_ = 0;
  int64_t rejected_timestamps_ = 0;
  int64_t rejected_geometry_ = 0;
  int64_t scrubbed_positions_ = 0;
  double stats_alpha_ = 0.0;  // per-slice EW weight
  std::vector<double> ew_mean_;
  std::vector<double> ew_var_;
  // Scratch for per-slice per-feature accumulation (avoids reallocating).
  std::vector<double> slice_sum_;
  std::vector<int64_t> slice_count_;
};

}  // namespace sstban::streaming

#endif  // SSTBAN_STREAMING_STREAM_INGESTOR_H_

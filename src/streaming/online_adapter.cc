#include "streaming/online_adapter.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "autograd/variable.h"
#include "core/check.h"
#include "core/failpoint.h"
#include "core/rng.h"
#include "optim/optimizer.h"
#include "training/checkpoint.h"

namespace sstban::streaming {

namespace {

// An adapter checkpoint resumes only into the identical round: same
// architecture (parameter names + shapes), same window set, same model-side
// stochastic setup. Anything else starts fresh — resuming a previous round's
// finished checkpoint would silently skip the new round entirely.
bool CheckpointMatchesRound(
    const training::TrainCheckpoint& ckpt,
    const std::vector<std::pair<std::string, autograd::Variable>>& named,
    const std::vector<int64_t>& indices, bool model_has_rng,
    int64_t num_steps) {
  if (ckpt.has_model_rng != model_has_rng) return false;
  if (ckpt.next_epoch > num_steps) return false;
  if (ckpt.params.size() != named.size()) return false;
  for (size_t i = 0; i < named.size(); ++i) {
    if (ckpt.params[i].first != named[i].first ||
        ckpt.params[i].second.shape() != named[i].second.shape()) {
      return false;
    }
  }
  if (ckpt.order.size() != indices.size()) return false;
  std::vector<int64_t> a = ckpt.order;
  std::vector<int64_t> b = indices;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

}  // namespace

OnlineAdapter::OnlineAdapter(OnlineAdapterOptions options)
    : options_(std::move(options)) {
  SSTBAN_CHECK_GT(options_.num_steps, 0);
  SSTBAN_CHECK_GT(options_.batch_size, 0);
  SSTBAN_CHECK_GT(options_.checkpoint_every_steps, 0);
}

core::StatusOr<AdaptReport> OnlineAdapter::Adapt(
    training::TrafficModel* model, const data::WindowDataset& windows,
    const std::vector<int64_t>& indices,
    const data::Normalizer& normalizer) const {
  SSTBAN_CHECK(model != nullptr);
  if (indices.empty()) {
    return core::Status::InvalidArgument("no adaptation windows");
  }
  if (!model->IsTrainable()) {
    return core::Status::FailedPrecondition(
        model->name() + " is not gradient-trainable");
  }

  std::vector<autograd::Variable> params = model->Parameters();
  auto named = model->NamedParameters();
  optim::Adam optimizer(params, options_.learning_rate);
  core::Rng rng(options_.seed);
  AdaptReport report;

  if (!options_.checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.checkpoint_dir, ec);
    if (ec) {
      std::fprintf(stderr, "[adapt] cannot create %s: %s (continuing)\n",
                   options_.checkpoint_dir.c_str(), ec.message().c_str());
    }
  }
  if (!options_.checkpoint_dir.empty() && options_.resume) {
    training::TrainCheckpoint ckpt;
    std::string from;
    core::Status status = training::LoadNewestValidTrainCheckpoint(
        options_.checkpoint_dir, &ckpt, &from);
    if (status.ok()) {
      if (CheckpointMatchesRound(ckpt, named, indices,
                                 model->TrainingRng() != nullptr,
                                 options_.num_steps)) {
        for (size_t i = 0; i < named.size(); ++i) {
          named[i].second.mutable_value().CopyFrom(ckpt.params[i].second);
        }
        optimizer.RestoreState(ckpt.adam_step, ckpt.adam_m, ckpt.adam_v);
        rng.RestoreState(ckpt.shuffle_rng);
        if (ckpt.has_model_rng) {
          model->TrainingRng()->RestoreState(ckpt.model_rng);
        }
        report.step_loss = std::move(ckpt.epoch_train_loss);
        report.start_step = ckpt.next_epoch;
        report.resumed_from = from;
      } else {
        std::fprintf(stderr,
                     "[adapt] %s is incompatible with this round "
                     "(architecture or window set changed); starting fresh\n",
                     from.c_str());
      }
    } else if (status.code() != core::StatusCode::kNotFound) {
      std::fprintf(stderr, "[adapt] resume scan failed: %s\n",
                   status.ToString().c_str());
    }
  }

  auto write_checkpoint = [&](int64_t next_step) {
    // The adapt_ckpt_write failpoint models "the checkpoint layer itself is
    // down": an error action skips the write (warn-only, the round goes on);
    // a crash action kills the process here, which is exactly the window the
    // kill-and-resume matrix exercises.
    core::Status gate = core::FailPointStatus("adapt_ckpt_write");
    if (!gate.ok()) {
      std::fprintf(stderr, "[adapt] checkpoint write skipped: %s\n",
                   gate.ToString().c_str());
      return;
    }
    training::TrainCheckpoint ckpt;
    ckpt.next_epoch = static_cast<int32_t>(next_step);
    ckpt.global_step = optimizer.step_count();
    ckpt.shuffle_rng = rng.SaveState();
    if (core::Rng* model_rng = model->TrainingRng()) {
      ckpt.has_model_rng = true;
      ckpt.model_rng = model_rng->SaveState();
    }
    ckpt.epoch_train_loss = report.step_loss;
    ckpt.order = indices;
    ckpt.params.reserve(named.size());
    for (const auto& [name, param] : named) {
      ckpt.params.emplace_back(name, param.value());  // shares storage
    }
    ckpt.adam_step = optimizer.step_count();
    ckpt.adam_m = optimizer.first_moments();
    ckpt.adam_v = optimizer.second_moments();
    // The adapter keeps no best-epoch snapshot (promotion gating happens in
    // the shadow evaluator); the record format wants a mirror, share weights.
    ckpt.best_params.reserve(named.size());
    for (const auto& [name, param] : named) {
      (void)name;
      ckpt.best_params.push_back(param.value());
    }
    std::string path = options_.checkpoint_dir + "/" +
                       training::TrainCheckpointFileName(
                           static_cast<int>(next_step));
    core::Status status = training::SaveTrainCheckpoint(path, ckpt);
    if (!status.ok()) {
      std::fprintf(stderr, "[adapt] checkpoint write failed (continuing): %s\n",
                   status.ToString().c_str());
    }
  };

  const int64_t pool = static_cast<int64_t>(indices.size());
  const int64_t k = std::min(options_.batch_size, pool);
  model->SetTraining(true);
  for (int64_t step = report.start_step; step < options_.num_steps; ++step) {
    SSTBAN_FAILPOINT("adapt_step");
    std::vector<int64_t> picks = rng.SampleWithoutReplacement(pool, k);
    std::vector<int64_t> batch_indices(picks.size());
    for (size_t i = 0; i < picks.size(); ++i) {
      batch_indices[i] = indices[static_cast<size_t>(picks[i])];
    }
    data::Batch batch = windows.MakeBatch(batch_indices);
    tensor::Tensor x_norm = normalizer.Transform(batch.x);
    autograd::Variable loss = model->SelfSupervisedLoss(x_norm, batch);
    if (!loss.defined()) {
      model->SetTraining(false);
      return core::Status::FailedPrecondition(
          model->name() + " exposes no label-free objective; cannot adapt "
          "online without ground truth");
    }
    model->ZeroGrad();
    loss.Backward();
    optim::ClipGradNorm(params, options_.grad_clip);
    optimizer.Step();
    report.step_loss.push_back(loss.item());
    ++report.steps_run;
    if (!options_.checkpoint_dir.empty() &&
        ((step + 1) % options_.checkpoint_every_steps == 0 ||
         step + 1 == options_.num_steps)) {
      // Cadence in *absolute* steps, so a resumed round writes the same
      // checkpoint files an uninterrupted one would — byte-comparable.
      write_checkpoint(step + 1);
    }
  }
  model->SetTraining(false);
  return report;
}

}  // namespace sstban::streaming

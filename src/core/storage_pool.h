#ifndef SSTBAN_CORE_STORAGE_POOL_H_
#define SSTBAN_CORE_STORAGE_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace sstban::core {

// Size-class-bucketed recycling allocator for tensor storage.
//
// Every intermediate in the autograd graph is a short-lived float buffer,
// and attention-style models produce floods of them in a handful of
// repeating shapes per layer. Instead of a malloc/free pair (plus a
// redundant zero-fill) per op, freed buffers are parked on a free list for
// their size class and handed back to the next request of that class.
//
// Layout of a request of n floats:
//   - n is rounded up to a size class: a 64-float floor, then four
//     geometric classes per power of two (<= ~25% internal fragmentation),
//     so distinct-but-similar shapes share one free list.
//   - Allocate() returns an *uninitialized* buffer; callers that fully
//     overwrite their output (every tensor op in ops.cc) skip the
//     zero-fill entirely. AllocateZeroed() zeroes the requested length for
//     consumers that accumulate into their output (GEMM, conv).
//
// Recycling is two-level:
//   - a lock-free per-thread cache (bounded count/bytes, small buffers
//     only) absorbs the common alloc-free-alloc churn of op evaluation;
//   - a global free list (mutex-protected) catches everything else and is
//     the hand-off point for cross-thread recycling. A thread's cache is
//     migrated to the global list when the thread exits.
//
// The global list is LRU-bounded: when cached-but-free bytes exceed the
// budget (SSTBAN_POOL_MAX_MB, default 256 MiB) the least recently released
// buffers are returned to the heap.
//
// The pool is transparent: buffer contents never depend on where a buffer
// came from (zeroed allocations are zeroed either way; uninitialized
// allocations must be fully written before being read), so results are
// bitwise identical with the pool on or off. SSTBAN_DISABLE_POOL=1 turns
// it into a plain new[]/delete[] pass-through. SSTBAN_POOL_POISON=1 fills
// recycled and freshly handed-out uninitialized buffers with a quiet-NaN
// pattern so reads of never-written or stale memory surface as NaNs (the
// pool keeps buffers alive, which otherwise blinds ASan to
// use-after-recycle).
//
// Statistics (hits/misses, recycled bytes, resident high-water mark, heap
// alloc counts) are reported to core::MemoryTracker.
class StoragePool {
 public:
  static StoragePool& Global();

  StoragePool(const StoragePool&) = delete;
  StoragePool& operator=(const StoragePool&) = delete;

  // Smallest size class holding n floats (pure function of n; the class
  // boundaries never depend on pool state, so allocation sizes are
  // deterministic).
  static int64_t RoundUpCapacity(int64_t n);

  // Returns a buffer of at least `num_elements` floats with unspecified
  // contents. `*capacity` receives the granted capacity in floats; pass it
  // back to Release() unchanged.
  float* Allocate(int64_t num_elements, int64_t* capacity);

  // As Allocate(), but the first `num_elements` floats are zero (the
  // size-class tail beyond them stays unspecified).
  float* AllocateZeroed(int64_t num_elements, int64_t* capacity);

  // Returns a buffer obtained from Allocate()/AllocateZeroed() to the
  // pool. When the pool is disabled the buffer goes straight back to the
  // heap.
  void Release(float* data, int64_t capacity);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Frees every buffer in the global free list and the calling thread's
  // local cache. (Other threads' caches drain when those threads exit.)
  void Flush();

  // -- Test hooks -------------------------------------------------------------
  // Toggles the pool at runtime (flushes first). Lets tests compare
  // pool-on vs pool-off in one process regardless of SSTBAN_DISABLE_POOL.
  void SetEnabledForTesting(bool enabled);
  // Toggles poison-on-recycle regardless of SSTBAN_POOL_POISON.
  void SetPoisonForTesting(bool poison);
  // Overrides the global free-list byte budget; 0 restores the default.
  void SetMaxResidentBytesForTesting(int64_t bytes);

 private:
  struct CachedBuffer {
    float* data;
    int64_t capacity;
  };
  using LruList = std::list<CachedBuffer>;

  StoragePool();
  ~StoragePool() = delete;  // leaked singleton; see Global()

  // Per-thread cache: a few small buffers per class, no locking. Its
  // destructor migrates the cache to the global list at thread exit.
  struct ThreadCache;
  static ThreadCache& LocalCache();

  // Takes a buffer from the global free list; nullptr on miss.
  float* TakeGlobal(int64_t capacity);
  // Parks a buffer on the global free list and trims over-budget LRU
  // entries.
  void InsertGlobal(float* data, int64_t capacity);
  // Migrates a dying thread's cache into the global list.
  void AdoptThreadCache(ThreadCache& cache);

  std::vector<CachedBuffer> TrimOverBudgetLocked();
  static void FreeEvicted(const std::vector<CachedBuffer>& evicted);

  void MaybePoison(float* data, int64_t capacity) const;

  std::atomic<bool> enabled_;
  std::atomic<bool> poison_;

  std::mutex mutex_;
  // Most recently released buffers at the front; trim evicts from the back.
  LruList lru_;
  // capacity -> iterators into lru_, most recently released last (LIFO
  // reuse keeps the hottest buffer in cache).
  std::unordered_map<int64_t, std::vector<LruList::iterator>> classes_;
  int64_t global_resident_bytes_ = 0;
  int64_t max_resident_bytes_;
};

}  // namespace sstban::core

#endif  // SSTBAN_CORE_STORAGE_POOL_H_

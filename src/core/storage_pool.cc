#include "core/storage_pool.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>

#include "core/memory_tracker.h"

namespace sstban::core {

namespace {

// Smallest class: one cache line's worth of floats times four. Scalars and
// tiny reduction outputs all share this list.
constexpr int64_t kMinClassElements = 64;
// Default budget for free-but-cached bytes on the global list.
constexpr int64_t kDefaultMaxResidentBytes = 256LL << 20;  // 256 MiB
// Per-thread cache limits: only small buffers, a handful per class, so a
// long-lived worker thread can pin at most a couple of MiB.
constexpr int64_t kThreadCacheMaxBufferBytes = 256LL << 10;  // 256 KiB
constexpr int64_t kThreadCacheMaxBytes = 2LL << 20;          // 2 MiB
constexpr size_t kThreadCacheMaxPerClass = 4;
// Quiet NaN with a recognizable payload; any float op on it stays NaN, so
// reads of recycled-or-unwritten memory propagate loudly in poison mode.
constexpr uint32_t kPoisonPattern = 0x7fc0dead;

bool EnvFlagSet(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && value[0] != '\0' && std::strcmp(value, "0") != 0;
}

int64_t EnvMaxResidentBytes() {
  const char* value = std::getenv("SSTBAN_POOL_MAX_MB");
  if (value == nullptr || value[0] == '\0') return kDefaultMaxResidentBytes;
  char* end = nullptr;
  long long mb = std::strtoll(value, &end, 10);
  if (end == value || mb < 0) return kDefaultMaxResidentBytes;
  return static_cast<int64_t>(mb) << 20;
}

int64_t CapacityBytes(int64_t capacity) {
  return capacity * static_cast<int64_t>(sizeof(float));
}

}  // namespace

// The per-thread fast path. Destruction migrates the cache into the global
// list so buffers freed on a short-lived thread stay recyclable.
struct StoragePool::ThreadCache {
  std::unordered_map<int64_t, std::vector<float*>> buckets;
  int64_t bytes = 0;

  ~ThreadCache() { StoragePool::Global().AdoptThreadCache(*this); }
};

StoragePool::ThreadCache& StoragePool::LocalCache() {
  static thread_local ThreadCache cache;
  return cache;
}

StoragePool& StoragePool::Global() {
  // Leaked so Release() stays safe from static and thread_local
  // destructors running at any point of shutdown.
  static StoragePool* pool = new StoragePool();
  return *pool;
}

StoragePool::StoragePool()
    : enabled_(!EnvFlagSet("SSTBAN_DISABLE_POOL")),
      poison_(EnvFlagSet("SSTBAN_POOL_POISON")),
      max_resident_bytes_(EnvMaxResidentBytes()) {}

int64_t StoragePool::RoundUpCapacity(int64_t n) {
  if (n <= kMinClassElements) return kMinClassElements;
  // Four classes per power of two: round up to a multiple of 2^(ceil(log2
  // n) - 3), e.g. (64, 128] -> {80, 96, 112, 128}.
  int bits = std::bit_width(static_cast<uint64_t>(n - 1));
  int64_t step = int64_t{1} << (bits - 3);
  return (n + step - 1) & ~(step - 1);
}

void StoragePool::MaybePoison(float* data, int64_t capacity) const {
  if (!poison_.load(std::memory_order_relaxed)) return;
  uint32_t* words = reinterpret_cast<uint32_t*>(data);
  std::fill_n(words, capacity, kPoisonPattern);
}

float* StoragePool::Allocate(int64_t num_elements, int64_t* capacity) {
  auto& tracker = MemoryTracker::Global();
  if (!enabled()) {
    *capacity = num_elements;
    tracker.OnHeapAlloc();
    return new float[static_cast<size_t>(num_elements)];
  }
  int64_t cap = RoundUpCapacity(num_elements);
  *capacity = cap;
  int64_t cap_bytes = CapacityBytes(cap);
  // Thread-local fast path.
  ThreadCache& cache = LocalCache();
  auto bucket = cache.buckets.find(cap);
  if (bucket != cache.buckets.end() && !bucket->second.empty()) {
    float* data = bucket->second.back();
    bucket->second.pop_back();
    cache.bytes -= cap_bytes;
    tracker.OnPoolDrop(cap_bytes);
    tracker.OnPoolHit(cap_bytes);
    MaybePoison(data, cap);
    return data;
  }
  if (float* data = TakeGlobal(cap)) {
    tracker.OnPoolDrop(cap_bytes);
    tracker.OnPoolHit(cap_bytes);
    MaybePoison(data, cap);
    return data;
  }
  tracker.OnPoolMiss();
  tracker.OnHeapAlloc();
  float* data = new float[static_cast<size_t>(cap)];
  MaybePoison(data, cap);
  return data;
}

float* StoragePool::AllocateZeroed(int64_t num_elements, int64_t* capacity) {
  float* data = Allocate(num_elements, capacity);
  std::memset(data, 0, static_cast<size_t>(num_elements) * sizeof(float));
  return data;
}

void StoragePool::Release(float* data, int64_t capacity) {
  if (data == nullptr) return;
  auto& tracker = MemoryTracker::Global();
  if (!enabled()) {
    tracker.OnHeapFree();
    delete[] data;
    return;
  }
  MaybePoison(data, capacity);
  int64_t cap_bytes = CapacityBytes(capacity);
  ThreadCache& cache = LocalCache();
  if (cap_bytes <= kThreadCacheMaxBufferBytes &&
      cache.bytes + cap_bytes <= kThreadCacheMaxBytes) {
    std::vector<float*>& bucket = cache.buckets[capacity];
    if (bucket.size() < kThreadCacheMaxPerClass) {
      bucket.push_back(data);
      cache.bytes += cap_bytes;
      tracker.OnPoolRetain(cap_bytes);
      return;
    }
  }
  tracker.OnPoolRetain(cap_bytes);
  InsertGlobal(data, capacity);
}

float* StoragePool::TakeGlobal(int64_t capacity) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto it = classes_.find(capacity);
  if (it == classes_.end() || it->second.empty()) return nullptr;
  LruList::iterator entry = it->second.back();
  it->second.pop_back();
  float* data = entry->data;
  global_resident_bytes_ -= CapacityBytes(capacity);
  lru_.erase(entry);
  return data;
}

// Evicts least-recently-released buffers until the global list fits the
// budget again. Requires mutex_ held; the caller frees the returned
// buffers outside the lock.
std::vector<StoragePool::CachedBuffer> StoragePool::TrimOverBudgetLocked() {
  std::vector<CachedBuffer> evicted;
  while (global_resident_bytes_ > max_resident_bytes_ && !lru_.empty()) {
    LruList::iterator victim_it = std::prev(lru_.end());
    CachedBuffer victim = *victim_it;
    std::vector<LruList::iterator>& bucket = classes_[victim.capacity];
    bucket.erase(std::find(bucket.begin(), bucket.end(), victim_it));
    lru_.pop_back();
    global_resident_bytes_ -= CapacityBytes(victim.capacity);
    evicted.push_back(victim);
  }
  return evicted;
}

void StoragePool::FreeEvicted(const std::vector<CachedBuffer>& evicted) {
  auto& tracker = MemoryTracker::Global();
  for (const CachedBuffer& buf : evicted) {
    int64_t bytes = CapacityBytes(buf.capacity);
    tracker.OnPoolDrop(bytes);
    tracker.OnPoolTrim(bytes);
    tracker.OnHeapFree();
    delete[] buf.data;
  }
}

void StoragePool::InsertGlobal(float* data, int64_t capacity) {
  std::vector<CachedBuffer> evicted;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    lru_.push_front(CachedBuffer{data, capacity});
    classes_[capacity].push_back(lru_.begin());
    global_resident_bytes_ += CapacityBytes(capacity);
    evicted = TrimOverBudgetLocked();
  }
  FreeEvicted(evicted);
}

void StoragePool::AdoptThreadCache(ThreadCache& cache) {
  for (auto& [capacity, bucket] : cache.buckets) {
    // Already counted as pool-resident while in the thread cache, so this
    // migration leaves the tracker's totals unchanged.
    for (float* data : bucket) InsertGlobal(data, capacity);
  }
  cache.buckets.clear();
  cache.bytes = 0;
}

void StoragePool::Flush() {
  auto& tracker = MemoryTracker::Global();
  ThreadCache& cache = LocalCache();
  for (auto& [capacity, bucket] : cache.buckets) {
    for (float* data : bucket) {
      tracker.OnPoolDrop(CapacityBytes(capacity));
      tracker.OnHeapFree();
      delete[] data;
    }
  }
  cache.buckets.clear();
  cache.bytes = 0;
  std::vector<float*> drained;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (CachedBuffer& buf : lru_) {
      tracker.OnPoolDrop(CapacityBytes(buf.capacity));
      drained.push_back(buf.data);
    }
    lru_.clear();
    classes_.clear();
    global_resident_bytes_ = 0;
  }
  for (float* data : drained) {
    tracker.OnHeapFree();
    delete[] data;
  }
}

void StoragePool::SetEnabledForTesting(bool enabled) {
  Flush();
  enabled_.store(enabled, std::memory_order_relaxed);
}

void StoragePool::SetPoisonForTesting(bool poison) {
  poison_.store(poison, std::memory_order_relaxed);
}

void StoragePool::SetMaxResidentBytesForTesting(int64_t bytes) {
  std::vector<CachedBuffer> evicted;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    max_resident_bytes_ = bytes > 0 ? bytes : kDefaultMaxResidentBytes;
    evicted = TrimOverBudgetLocked();
  }
  FreeEvicted(evicted);
}

}  // namespace sstban::core

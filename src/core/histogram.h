#ifndef SSTBAN_CORE_HISTOGRAM_H_
#define SSTBAN_CORE_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sstban::core {

// Fixed-size log-bucketed histogram for positive measurements (latencies,
// sizes). Recording is O(1) and allocation-free, so it is cheap enough for
// per-request hot paths; quantile extraction interpolates within the bucket
// that crosses the requested rank. Not thread-safe — callers that record
// from multiple threads wrap it in their own lock (see serving::ServerStats).
class Histogram {
 public:
  // Buckets are log-spaced: bucket i covers [lowest * growth^i,
  // lowest * growth^(i+1)). The defaults span ~1us to ~minutes when values
  // are seconds. Values at or below `lowest` land in bucket 0; values beyond
  // the top land in the last bucket (exact min/max are tracked separately).
  explicit Histogram(double lowest = 1e-6, double growth = 1.3,
                     int num_buckets = 80);

  void Record(double value);

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  // Value at rank q*count (q in [0, 1]); 0 when empty. Interpolated within
  // the crossing bucket and clamped to the exact observed [min, max].
  double Quantile(double q) const;

  void Reset();

 private:
  int BucketIndex(double value) const;
  double BucketLowerBound(int index) const;

  double lowest_;
  double log_growth_;
  std::vector<int64_t> counts_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace sstban::core

#endif  // SSTBAN_CORE_HISTOGRAM_H_

#ifndef SSTBAN_CORE_THREAD_POOL_H_
#define SSTBAN_CORE_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sstban::core {

// A fixed-size worker pool. On single-core machines (num_threads <= 1) work
// is run inline so the pool adds no overhead; the heavy tensor kernels call
// ParallelFor below and transparently scale with available hardware.
//
// Any thread that blocks waiting on pool work (Wait, RunAndWait) helps
// execute queued tasks while it waits, so pool tasks may themselves fan out
// to the pool without deadlocking.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Enqueues a task. Tasks must not throw (use RunAndWait when the caller
  // needs exceptions propagated).
  void Schedule(std::function<void()> task);

  // Blocks until every scheduled task has completed, except tasks on the
  // calling thread's own stack (a worker waiting for its own in-flight task
  // would never return). While blocked the caller executes queued tasks, so
  // tasks scheduled from inside other tasks are drained, not missed.
  void Wait();

  // Runs `tasks` on the pool and blocks until all of them have completed.
  // The caller helps execute queued work while waiting, so RunAndWait may be
  // called from inside a pool task (nested fan-out cannot deadlock). The
  // first exception thrown by any task is rethrown here once all tasks have
  // finished.
  void RunAndWait(std::vector<std::function<void()>> tasks);

  // Process-wide pool sized from std::thread::hardware_concurrency() (or the
  // SSTBAN_NUM_THREADS environment variable when set).
  static ThreadPool& Global();

 private:
  void WorkerLoop();
  // Pops and runs one queued task; `lock` must hold mutex_ and is released
  // around the task body. Returns false if the queue was empty.
  bool RunOneTask(std::unique_lock<std::mutex>& lock);

  const int num_threads_;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  // Signalled on task arrival, task completion, and shutdown. Workers and
  // helping waiters share it; everyone re-checks their predicate on wake.
  std::condition_variable cv_;
  int64_t pending_ = 0;  // queued + currently executing tasks
  bool shutdown_ = false;
};

// Caps the fan-out ParallelFor uses: 1 forces every loop to run inline on
// the calling thread, 0 removes the cap (use the pool size). Benchmarks use
// this to measure sequential-vs-parallel on the same process, and tests use
// it to verify that results do not depend on the degree of parallelism.
void SetParallelismCapForTesting(int cap);

// Max number of chunks ParallelFor will split a range into (the global pool
// size unless capped by SetParallelismCapForTesting).
int EffectiveParallelism();

// Splits [begin, end) into contiguous chunks and runs `body(chunk_begin,
// chunk_end)` on the global pool, blocking until all chunks finish. Runs
// inline when the range is at most `min_chunk` or only one thread is
// available. `body` must be safe to invoke concurrently on disjoint ranges;
// exceptions thrown by `body` propagate to the caller. Safe to call from
// inside pool tasks (nested calls help drain the queue instead of
// deadlocking).
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& body,
                 int64_t min_chunk = 1024);

}  // namespace sstban::core

#endif  // SSTBAN_CORE_THREAD_POOL_H_

#ifndef SSTBAN_CORE_THREAD_POOL_H_
#define SSTBAN_CORE_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sstban::core {

// A fixed-size worker pool. On single-core machines (num_threads <= 1) work
// is run inline so the pool adds no overhead; the heavy tensor kernels call
// ParallelFor below and transparently scale with available hardware.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  // Enqueues a task. Tasks must not throw.
  void Schedule(std::function<void()> task);

  // Blocks until all scheduled tasks have completed.
  void Wait();

  // Process-wide pool sized from std::thread::hardware_concurrency() (or the
  // SSTBAN_NUM_THREADS environment variable when set).
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  const int num_threads_;
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  int64_t pending_ = 0;
  bool shutdown_ = false;
};

// Splits [begin, end) into chunks and runs `body(chunk_begin, chunk_end)` on
// the global pool. Runs inline when the range is small or only one thread is
// available. `body` must be safe to invoke concurrently on disjoint ranges.
void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& body,
                 int64_t min_chunk = 1024);

}  // namespace sstban::core

#endif  // SSTBAN_CORE_THREAD_POOL_H_

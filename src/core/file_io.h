#ifndef SSTBAN_CORE_FILE_IO_H_
#define SSTBAN_CORE_FILE_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "core/status.h"

namespace sstban::core {

// Reads the whole file into *out. Failpoint: "ckpt_read".
Status ReadFileToString(const std::string& path, std::string* out);

// Crash-safe whole-file replacement: writes to a temp file in the same
// directory, fsyncs it, rename(2)s it over `path`, then fsyncs the parent
// directory. A crash or injected error at any point leaves either the old
// bytes or no file at `path` — never a torn file. On error the temp file is
// removed. Failpoints: "ckpt_write_open", "ckpt_write_mid" (between the two
// halves of the payload), "ckpt_write_fsync", "ckpt_rename".
Status WriteFileAtomic(const std::string& path, std::string_view data);

// Little-endian POD append/consume helpers for the checkpoint formats.
// Writers build the whole record in memory so the CRC32 footer can cover
// every preceding byte and the file can be committed in one atomic write.
class BufferWriter {
 public:
  template <typename T>
  void Pod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    Bytes(&value, sizeof(T));
  }
  void Bytes(const void* data, size_t n) {
    out_.append(static_cast<const char*>(data), n);
  }
  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

// Bounds-checked sequential reads; every accessor returns false (without
// advancing) once the buffer is exhausted, so corrupt length fields cannot
// walk past the end.
class BufferReader {
 public:
  explicit BufferReader(std::string_view data) : data_(data) {}

  template <typename T>
  bool Pod(T* value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return Bytes(value, sizeof(T));
  }
  bool Bytes(void* out, size_t n) {
    if (remaining() < n) return false;
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace sstban::core

#endif  // SSTBAN_CORE_FILE_IO_H_

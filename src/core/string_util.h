#ifndef SSTBAN_CORE_STRING_UTIL_H_
#define SSTBAN_CORE_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace sstban::core {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Joins the elements with the separator, e.g. Join({"a","b"}, ", ") == "a, b".
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

// Splits on the given delimiter; empty fields are preserved.
std::vector<std::string> Split(const std::string& text, char delim);

// Removes leading/trailing whitespace.
std::string Trim(const std::string& text);

// Escapes a string for embedding inside a JSON string literal: quotes and
// backslashes are backslash-escaped, control characters below 0x20 become
// \b \f \n \r \t or \u00XX. Returns the escaped body WITHOUT surrounding
// quotes. Every place the library renders a string into JSON must go
// through this (or JsonQuote) — no per-file ad-hoc escaping.
std::string JsonEscape(const std::string& text);

// JsonEscape plus surrounding double quotes: a complete JSON string token.
std::string JsonQuote(const std::string& text);

}  // namespace sstban::core

#endif  // SSTBAN_CORE_STRING_UTIL_H_

#include "core/rng.h"

#include <cmath>

#include "core/check.h"

namespace sstban::core {

Rng::Rng(uint64_t seed, uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  NextUint32();
  state_ += seed;
  NextUint32();
}

uint32_t Rng::NextUint32() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
}

uint32_t Rng::NextBelow(uint32_t n) {
  SSTBAN_CHECK_GT(n, 0u);
  // Lemire-style rejection to avoid modulo bias.
  uint32_t threshold = (-n) % n;
  for (;;) {
    uint32_t r = NextUint32();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextDouble() {
  return NextUint32() * (1.0 / 4294967296.0);
}

float Rng::NextUniform(float lo, float hi) {
  return lo + static_cast<float>(NextDouble()) * (hi - lo);
}

float Rng::NextGaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-12);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  spare_ = static_cast<float>(mag * std::sin(2.0 * M_PI * u2));
  has_spare_ = true;
  return static_cast<float>(mag * std::cos(2.0 * M_PI * u2));
}

float Rng::NextGaussian(float mean, float stddev) {
  return mean + stddev * NextGaussian();
}

void Rng::Shuffle(std::vector<int64_t>& values) {
  for (size_t i = values.size(); i > 1; --i) {
    size_t j = NextBelow(static_cast<uint32_t>(i));
    std::swap(values[i - 1], values[j]);
  }
}

std::vector<int64_t> Rng::SampleWithoutReplacement(int64_t n, int64_t k) {
  SSTBAN_CHECK_GE(k, 0);
  SSTBAN_CHECK_LE(k, n);
  // Partial Fisher-Yates over an index vector; O(n) memory, O(n + k) time.
  std::vector<int64_t> indices(n);
  for (int64_t i = 0; i < n; ++i) indices[i] = i;
  std::vector<int64_t> result(k);
  for (int64_t i = 0; i < k; ++i) {
    int64_t j = i + NextBelow(static_cast<uint32_t>(n - i));
    std::swap(indices[i], indices[j]);
    result[i] = indices[i];
  }
  return result;
}

Rng::State Rng::SaveState() const {
  return State{state_, inc_, has_spare_, spare_};
}

void Rng::RestoreState(const State& s) {
  state_ = s.state;
  inc_ = s.inc;
  has_spare_ = s.has_spare;
  spare_ = s.spare;
}

Rng Rng::Fork() {
  uint64_t seed = (static_cast<uint64_t>(NextUint32()) << 32) | NextUint32();
  uint64_t stream = (static_cast<uint64_t>(NextUint32()) << 32) | NextUint32();
  return Rng(seed, stream | 1u);
}

}  // namespace sstban::core

#include "core/memory_tracker.h"

namespace sstban::core {

MemoryTracker& MemoryTracker::Global() {
  static MemoryTracker* tracker = new MemoryTracker();
  return *tracker;
}

void MemoryTracker::OnAlloc(int64_t bytes) {
  int64_t now = live_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  total_.fetch_add(bytes, std::memory_order_relaxed);
  int64_t prev_peak = peak_.load(std::memory_order_relaxed);
  while (now > prev_peak &&
         !peak_.compare_exchange_weak(prev_peak, now, std::memory_order_relaxed)) {
  }
}

void MemoryTracker::OnFree(int64_t bytes) {
  live_.fetch_sub(bytes, std::memory_order_relaxed);
}

void MemoryTracker::ResetPeak() {
  peak_.store(live_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
}

}  // namespace sstban::core

#include "core/memory_tracker.h"

namespace sstban::core {

MemoryTracker& MemoryTracker::Global() {
  static MemoryTracker* tracker = new MemoryTracker();
  return *tracker;
}

void MemoryTracker::UpdateMax(std::atomic<int64_t>& peak, int64_t candidate) {
  int64_t prev = peak.load(std::memory_order_relaxed);
  while (candidate > prev &&
         !peak.compare_exchange_weak(prev, candidate,
                                     std::memory_order_relaxed)) {
  }
}

void MemoryTracker::OnAlloc(int64_t bytes) {
  int64_t now = live_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  total_.fetch_add(bytes, std::memory_order_relaxed);
  UpdateMax(peak_, now);
}

void MemoryTracker::OnFree(int64_t bytes) {
  live_.fetch_sub(bytes, std::memory_order_relaxed);
}

void MemoryTracker::OnPoolHit(int64_t bytes) {
  pool_hits_.fetch_add(1, std::memory_order_relaxed);
  pool_recycled_.fetch_add(bytes, std::memory_order_relaxed);
}

void MemoryTracker::OnPoolRetain(int64_t bytes) {
  int64_t now =
      pool_resident_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  UpdateMax(pool_peak_resident_, now);
}

void MemoryTracker::ResetPeak() {
  peak_.store(live_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
}

}  // namespace sstban::core

#ifndef SSTBAN_CORE_CHECK_H_
#define SSTBAN_CORE_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace sstban::core {

// Accumulates a failure message via operator<< and aborts the process when
// destroyed. Used only through the SSTBAN_CHECK* macros below; CHECK failures
// indicate programming errors (the library's equivalent of assert, but always
// on and with context).
class CheckFailure {
 public:
  CheckFailure(const char* file, int line, const char* condition) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << condition;
  }

  [[noreturn]] ~CheckFailure() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailure& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace sstban::core

#define SSTBAN_CHECK(condition)                                        \
  if (condition) {                                                     \
  } else                                                               \
    ::sstban::core::CheckFailure(__FILE__, __LINE__, #condition)

#define SSTBAN_CHECK_EQ(a, b) SSTBAN_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ")"
#define SSTBAN_CHECK_NE(a, b) SSTBAN_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ")"
#define SSTBAN_CHECK_LT(a, b) SSTBAN_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ")"
#define SSTBAN_CHECK_LE(a, b) SSTBAN_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ")"
#define SSTBAN_CHECK_GT(a, b) SSTBAN_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ")"
#define SSTBAN_CHECK_GE(a, b) SSTBAN_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ")"

#endif  // SSTBAN_CORE_CHECK_H_

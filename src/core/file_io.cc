#include "core/file_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/failpoint.h"
#include "core/string_util.h"

namespace sstban::core {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " failed for " + path + ": " +
                         std::strerror(errno));
}

// Writes the full span, retrying short writes/EINTR.
Status WriteAll(int fd, const char* data, size_t n, const std::string& path) {
  size_t written = 0;
  while (written < n) {
    ssize_t w = ::write(fd, data + written, n - written);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Errno("write", path);
    }
    written += static_cast<size_t>(w);
  }
  return Status::Ok();
}

std::string ParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

Status ReadFileToString(const std::string& path, std::string* out) {
  SSTBAN_FAILPOINT("ckpt_read");
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  *out = std::move(buffer).str();
  return Status::Ok();
}

Status WriteFileAtomic(const std::string& path, std::string_view data) {
  const std::string tmp =
      StrFormat("%s.tmp.%d", path.c_str(), static_cast<int>(::getpid()));
  // Any early return after this point must not leave the temp file behind;
  // a *crash* may (the stale temp is inert — readers never look at it).
  auto fail = [&tmp](Status status, int fd) {
    if (fd >= 0) ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  };

  SSTBAN_FAILPOINT("ckpt_write_open");
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("open", tmp);

  // Split the payload so a mid-write fault lands between two real write(2)
  // calls — the torn-temp-file case the rename protocol exists for.
  size_t half = data.size() / 2;
  Status status = WriteAll(fd, data.data(), half, tmp);
  if (!status.ok()) return fail(status, fd);
  {
    auto mid = []() -> Status {
      SSTBAN_FAILPOINT("ckpt_write_mid");
      return Status::Ok();
    }();
    if (!mid.ok()) return fail(mid, fd);
  }
  status = WriteAll(fd, data.data() + half, data.size() - half, tmp);
  if (!status.ok()) return fail(status, fd);

  {
    auto sync = []() -> Status {
      SSTBAN_FAILPOINT("ckpt_write_fsync");
      return Status::Ok();
    }();
    if (!sync.ok()) return fail(sync, fd);
  }
  if (::fsync(fd) != 0) return fail(Errno("fsync", tmp), fd);
  if (::close(fd) != 0) return fail(Errno("close", tmp), -1);

  {
    auto ren = []() -> Status {
      SSTBAN_FAILPOINT("ckpt_rename");
      return Status::Ok();
    }();
    if (!ren.ok()) return fail(ren, -1);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return fail(Errno("rename", path), -1);
  }

  // Make the rename itself durable: fsync the containing directory. Failure
  // here is reported but the destination already holds a complete file.
  int dir_fd = ::open(ParentDir(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    int rc = ::fsync(dir_fd);
    ::close(dir_fd);
    if (rc != 0) return Errno("fsync directory", ParentDir(path));
  }
  return Status::Ok();
}

}  // namespace sstban::core

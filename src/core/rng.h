#ifndef SSTBAN_CORE_RNG_H_
#define SSTBAN_CORE_RNG_H_

#include <cstdint>
#include <vector>

namespace sstban::core {

// Deterministic PCG32 pseudo-random generator (O'Neill 2014). Every
// stochastic component in the library (parameter init, masking, batching,
// data synthesis, noise injection) draws from an explicitly seeded Rng so
// experiments and tests are reproducible bit-for-bit across runs.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1);

  // Uniform 32-bit value.
  uint32_t NextUint32();

  // Uniform in [0, n). Requires n > 0.
  uint32_t NextBelow(uint32_t n);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform float in [lo, hi).
  float NextUniform(float lo, float hi);

  // Standard normal via Box-Muller (cached spare).
  float NextGaussian();

  // Normal with the given mean and standard deviation.
  float NextGaussian(float mean, float stddev);

  // Fisher-Yates shuffle of the given indices.
  void Shuffle(std::vector<int64_t>& values);

  // k distinct values sampled uniformly from {0, ..., n-1}, in random order.
  // Requires 0 <= k <= n.
  std::vector<int64_t> SampleWithoutReplacement(int64_t n, int64_t k);

  // Derives an independent child generator; useful for giving each
  // subsystem its own stream from one experiment seed.
  Rng Fork();

  // Complete serializable generator state, for checkpointing: restoring it
  // replays the exact draw sequence (including the cached Box-Muller spare).
  struct State {
    uint64_t state = 0;
    uint64_t inc = 0;
    bool has_spare = false;
    float spare = 0.0f;
  };
  State SaveState() const;
  void RestoreState(const State& s);

 private:
  uint64_t state_;
  uint64_t inc_;
  bool has_spare_ = false;
  float spare_ = 0.0f;
};

}  // namespace sstban::core

#endif  // SSTBAN_CORE_RNG_H_

#ifndef SSTBAN_CORE_CPU_FEATURES_H_
#define SSTBAN_CORE_CPU_FEATURES_H_

namespace sstban::core {

// CPUID-derived capabilities of the machine we are running on. Detection is
// performed once; the result never changes over the process lifetime.
struct CpuFeatures {
  bool avx = false;
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
};

// Raw hardware capabilities (ignores the kill switch below).
const CpuFeatures& DetectCpuFeatures();

// The SIMD tier the kernel layer dispatches on. Exactly one tier is active
// for the whole process: every kernel-table lookup (tensor/simd/kernels.h)
// resolves against it, so all arithmetic within a process is internally
// consistent — the precondition for the bitwise determinism contracts
// (DESIGN.md §8/§14).
enum class SimdLevel {
  kScalar,  // portable C fallback (also the SSTBAN_SIMD=off kill switch)
  kAvx2,    // AVX2 + FMA micro-kernels
};

// The active tier: hardware support gated by the SSTBAN_SIMD environment
// variable ("off"/"0"/"scalar" force kScalar; unset/"on"/"auto" pick the
// best supported tier). Resolved once on first call.
SimdLevel ActiveSimdLevel();

const char* SimdLevelName(SimdLevel level);

// Test/bench-only override of the active tier (mirrors
// ThreadPool::SetParallelismCapForTesting). Requesting kAvx2 on hardware
// without AVX2+FMA is ignored; returns the level now in effect. Not
// thread-safe against concurrent kernel execution — call it only from a
// quiesced process, and note that mixing tiers within one logical
// computation voids the bitwise reproducibility contract.
SimdLevel SetSimdLevelForTesting(SimdLevel level);

}  // namespace sstban::core

#endif  // SSTBAN_CORE_CPU_FEATURES_H_

#ifndef SSTBAN_CORE_FAILPOINT_H_
#define SSTBAN_CORE_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "core/status.h"

namespace sstban::core {

// Deterministic fault injection for I/O and serving hot spots.
//
// Code declares named failpoints with SSTBAN_FAILPOINT("name") (or the
// _NOTIFY variant in functions that cannot return a Status). Nothing
// happens unless a failpoint is armed, either programmatically
// (FailPoint::Set) or through the environment at process start:
//
//   SSTBAN_FAILPOINTS="ckpt_write_mid=error(kIoError)@2,ckpt_rename=crash"
//
// Spec grammar:   <action>[@N]
//   error(<StatusCode name>)  return that status from the enclosing function
//   crash                     abort the process (for subprocess-based tests)
//   delay(<ms>)               sleep, then continue normally
//   @N                        fire on the Nth time the failpoint is reached
//                             (1-based), exactly once; without @N the action
//                             fires on every hit.
//
// When nothing is armed the macro costs one relaxed atomic load and a
// predictable branch — cheap enough to compile into every checkpoint write
// and registry swap unconditionally.
class FailPoint {
 public:
  // Arms `name` with `spec` (e.g. "error(kIoError)@2"); replaces any
  // previous arming and resets its hit counter.
  static Status Set(const std::string& name, const std::string& spec);

  // Arms every entry of a comma-separated "name=spec,name=spec" list (the
  // SSTBAN_FAILPOINTS format). Entries before a malformed one stay armed.
  static Status SetFromList(const std::string& list);

  static void Clear(const std::string& name);
  static void ClearAll();

  // Times the named failpoint was reached while armed (including hits where
  // the action did not fire). 0 if never armed.
  static int64_t HitCount(const std::string& name);

  // Internal: reached-failpoint dispatch; returns the injected error for
  // error actions, Ok otherwise. Called only when something is armed.
  static Status Hit(const char* name);
};

namespace failpoint_internal {
// Number of currently armed failpoints; inline fast-path guard.
extern std::atomic<int> g_armed_count;
inline bool AnyArmed() {
  return g_armed_count.load(std::memory_order_relaxed) != 0;
}
}  // namespace failpoint_internal

// Expression form of SSTBAN_FAILPOINT for call sites that cannot simply
// `return status` (the serving data plane maps an injected fault to a
// degraded answer instead of propagating it). Disarmed cost is identical to
// the macro: one relaxed atomic load and a predictable branch.
inline Status FailPointStatus(const char* name) {
  if (!failpoint_internal::AnyArmed()) return Status::Ok();
  return FailPoint::Hit(name);
}

}  // namespace sstban::core

// Declares a failpoint in a function returning core::Status: an armed
// error(...) action propagates to the caller as if the surrounding
// operation had failed.
#define SSTBAN_FAILPOINT(name)                                       \
  do {                                                               \
    if (::sstban::core::failpoint_internal::AnyArmed()) {            \
      ::sstban::core::Status _sstban_fp_status =                     \
          ::sstban::core::FailPoint::Hit(name);                      \
      if (!_sstban_fp_status.ok()) return _sstban_fp_status;         \
    }                                                                \
  } while (false)

// Variant for void/non-Status contexts: crash and delay actions still fire;
// an armed error action is counted but has no effect.
#define SSTBAN_FAILPOINT_NOTIFY(name)                                \
  do {                                                               \
    if (::sstban::core::failpoint_internal::AnyArmed()) {            \
      (void)::sstban::core::FailPoint::Hit(name);                    \
    }                                                                \
  } while (false)

#endif  // SSTBAN_CORE_FAILPOINT_H_

#ifndef SSTBAN_CORE_CRC32_H_
#define SSTBAN_CORE_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace sstban::core {

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
// `seed` lets callers chain partial computations:
//   Crc32(b, nb, Crc32(a, na)) == Crc32(concat(a, b)).
// Checkpoint files append this as a little-endian footer so a torn or
// bit-flipped file is rejected before any of it is trusted.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace sstban::core

#endif  // SSTBAN_CORE_CRC32_H_

#include "core/histogram.h"

#include <algorithm>
#include <cmath>

#include "core/check.h"

namespace sstban::core {

Histogram::Histogram(double lowest, double growth, int num_buckets)
    : lowest_(lowest), log_growth_(std::log(growth)), counts_(num_buckets, 0) {
  SSTBAN_CHECK_GT(lowest, 0.0);
  SSTBAN_CHECK_GT(growth, 1.0);
  SSTBAN_CHECK_GT(num_buckets, 0);
}

int Histogram::BucketIndex(double value) const {
  if (value <= lowest_) return 0;
  int index = static_cast<int>(std::log(value / lowest_) / log_growth_);
  return std::min<int>(index, static_cast<int>(counts_.size()) - 1);
}

double Histogram::BucketLowerBound(int index) const {
  return lowest_ * std::exp(log_growth_ * index);
}

void Histogram::Record(double value) {
  value = std::max(value, 0.0);
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++counts_[BucketIndex(value)];
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  // The extremes are tracked exactly; only interior quantiles need buckets.
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  double rank = q * static_cast<double>(count_);
  int64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    if (static_cast<double>(seen + counts_[i]) >= rank) {
      // Interpolate by position of the rank within this bucket.
      double within = (rank - static_cast<double>(seen)) /
                      static_cast<double>(counts_[i]);
      double lo = BucketLowerBound(static_cast<int>(i));
      double hi = BucketLowerBound(static_cast<int>(i) + 1);
      return std::clamp(lo + within * (hi - lo), min_, max_);
    }
    seen += counts_[i];
  }
  return max_;
}

void Histogram::Reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

}  // namespace sstban::core

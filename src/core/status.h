#ifndef SSTBAN_CORE_STATUS_H_
#define SSTBAN_CORE_STATUS_H_

#include <string>
#include <utility>

#include "core/check.h"

namespace sstban::core {

// Error categories for recoverable failures (I/O, configuration, parsing).
// Programming errors (shape mismatches, bad indices) use SSTBAN_CHECK instead.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
};

// Returns a stable human-readable name, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

// A lightweight success-or-error result, modeled after absl::Status.
// Library entry points that can fail for non-programming reasons return
// Status (or StatusOr<T>) rather than throwing: the library never throws.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  // The resource cannot accept work right now (e.g. a full request queue);
  // the caller may retry with backoff.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  // The request's deadline passed before the work could be done.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Holds either a value of type T or an error Status. Accessing the value of
// an errored StatusOr is a checked programming error.
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so functions can `return value;` or
  // `return Status::...;` directly, mirroring absl::StatusOr.
  StatusOr(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    SSTBAN_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SSTBAN_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return value_;
  }
  T& value() & {
    SSTBAN_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return value_;
  }
  T&& value() && {
    SSTBAN_CHECK(ok()) << "StatusOr::value on error: " << status_.ToString();
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace sstban::core

// Propagates a non-OK status to the caller.
#define SSTBAN_RETURN_IF_ERROR(expr)                  \
  do {                                                \
    ::sstban::core::Status _status = (expr);          \
    if (!_status.ok()) return _status;                \
  } while (false)

#endif  // SSTBAN_CORE_STATUS_H_

#include "core/cpu_features.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#include <cpuid.h>
#define SSTBAN_HAVE_CPUID 1
#endif

namespace sstban::core {

namespace {

CpuFeatures Detect() {
  CpuFeatures f;
#ifdef SSTBAN_HAVE_CPUID
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  unsigned max_leaf = __get_cpuid_max(0, nullptr);
  if (max_leaf >= 1) {
    __cpuid(1, eax, ebx, ecx, edx);
    f.avx = (ecx & bit_AVX) != 0;
    f.fma = (ecx & bit_FMA) != 0;
    // OSXSAVE + XGETBV: the OS must save/restore the ymm state, otherwise
    // executing AVX faults even though CPUID advertises it.
    bool osxsave = (ecx & bit_OSXSAVE) != 0;
    bool ymm_enabled = false;
    if (osxsave) {
      unsigned lo = 0, hi = 0;
      __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
      ymm_enabled = (lo & 0x6) == 0x6;  // XMM and YMM state enabled
    }
    f.avx = f.avx && ymm_enabled;
    f.fma = f.fma && ymm_enabled;
  }
  if (max_leaf >= 7) {
    __cpuid_count(7, 0, eax, ebx, ecx, edx);
    f.avx2 = f.avx && (ebx & bit_AVX2) != 0;
    f.avx512f = f.avx && (ebx & bit_AVX512F) != 0;
  }
#endif
  return f;
}

SimdLevel ResolveFromEnv() {
  const CpuFeatures& hw = DetectCpuFeatures();
  SimdLevel best = (hw.avx2 && hw.fma) ? SimdLevel::kAvx2 : SimdLevel::kScalar;
  const char* env = std::getenv("SSTBAN_SIMD");
  if (env == nullptr || *env == '\0') return best;
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0 ||
      std::strcmp(env, "scalar") == 0) {
    return SimdLevel::kScalar;
  }
  // "on" / "auto" / "avx2" / anything else: best supported tier.
  return best;
}

std::atomic<int> g_level{-1};  // -1 = unresolved

}  // namespace

const CpuFeatures& DetectCpuFeatures() {
  static const CpuFeatures features = Detect();
  return features;
}

SimdLevel ActiveSimdLevel() {
  int level = g_level.load(std::memory_order_acquire);
  if (level < 0) {
    // Benign race: ResolveFromEnv is deterministic, every thread computes
    // the same value.
    level = static_cast<int>(ResolveFromEnv());
    g_level.store(level, std::memory_order_release);
  }
  return static_cast<SimdLevel>(level);
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "unknown";
}

SimdLevel SetSimdLevelForTesting(SimdLevel level) {
  const CpuFeatures& hw = DetectCpuFeatures();
  if (level == SimdLevel::kAvx2 && !(hw.avx2 && hw.fma)) {
    level = SimdLevel::kScalar;
  }
  g_level.store(static_cast<int>(level), std::memory_order_release);
  return level;
}

}  // namespace sstban::core

#ifndef SSTBAN_CORE_MEMORY_TRACKER_H_
#define SSTBAN_CORE_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>

namespace sstban::core {

// Tracks live bytes of tensor storage. The tensor layer reports every
// allocation and free here, so `peak_bytes` measures the activation +
// parameter footprint of a training run — our CPU substitute for the paper's
// "GPU cost (M)" column in Table VII. Thread-safe.
class MemoryTracker {
 public:
  static MemoryTracker& Global();

  void OnAlloc(int64_t bytes);
  void OnFree(int64_t bytes);

  int64_t live_bytes() const { return live_.load(std::memory_order_relaxed); }
  int64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  int64_t total_allocated_bytes() const {
    return total_.load(std::memory_order_relaxed);
  }

  // Resets the peak to the current live size (call at the start of the
  // region being measured). Total-allocated is reset to zero.
  void ResetPeak();

 private:
  MemoryTracker() = default;

  std::atomic<int64_t> live_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<int64_t> total_{0};
};

}  // namespace sstban::core

#endif  // SSTBAN_CORE_MEMORY_TRACKER_H_

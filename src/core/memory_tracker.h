#ifndef SSTBAN_CORE_MEMORY_TRACKER_H_
#define SSTBAN_CORE_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>

namespace sstban::core {

// Tracks live bytes of tensor storage. The tensor layer reports every
// allocation and free here, so `peak_bytes` measures the activation +
// parameter footprint of a training run — our CPU substitute for the paper's
// "GPU cost (M)" column in Table VII. Also aggregates the StoragePool's
// recycling statistics (hits/misses, recycled bytes, resident free-list
// bytes and their high-water mark) and the underlying heap traffic, so the
// serving stats report and bench_alloc_churn can quantify how much
// allocation work the pool absorbs. Thread-safe.
class MemoryTracker {
 public:
  static MemoryTracker& Global();

  void OnAlloc(int64_t bytes);
  void OnFree(int64_t bytes);

  int64_t live_bytes() const { return live_.load(std::memory_order_relaxed); }
  int64_t peak_bytes() const { return peak_.load(std::memory_order_relaxed); }
  int64_t total_allocated_bytes() const {
    return total_.load(std::memory_order_relaxed);
  }

  // -- Pool statistics (reported by core::StoragePool) -----------------------
  // A request served from a free list (thread-local or global).
  void OnPoolHit(int64_t bytes);
  // A request that fell through to the heap.
  void OnPoolMiss() { pool_misses_.fetch_add(1, std::memory_order_relaxed); }
  // Actual heap traffic (operator new[] / delete[] calls).
  void OnHeapAlloc() { heap_allocs_.fetch_add(1, std::memory_order_relaxed); }
  void OnHeapFree() { heap_frees_.fetch_add(1, std::memory_order_relaxed); }
  // A buffer entered / left the pool's free lists.
  void OnPoolRetain(int64_t bytes);
  void OnPoolDrop(int64_t bytes) {
    pool_resident_.fetch_sub(bytes, std::memory_order_relaxed);
  }
  // Bytes evicted by the LRU resident-size bound.
  void OnPoolTrim(int64_t bytes) {
    pool_trimmed_.fetch_add(bytes, std::memory_order_relaxed);
  }

  int64_t pool_hits() const {
    return pool_hits_.load(std::memory_order_relaxed);
  }
  int64_t pool_misses() const {
    return pool_misses_.load(std::memory_order_relaxed);
  }
  // Cumulative bytes served from recycled buffers instead of the heap.
  int64_t pool_recycled_bytes() const {
    return pool_recycled_.load(std::memory_order_relaxed);
  }
  // Bytes currently parked on free lists (global list + thread caches).
  int64_t pool_resident_bytes() const {
    return pool_resident_.load(std::memory_order_relaxed);
  }
  int64_t pool_peak_resident_bytes() const {
    return pool_peak_resident_.load(std::memory_order_relaxed);
  }
  int64_t pool_trimmed_bytes() const {
    return pool_trimmed_.load(std::memory_order_relaxed);
  }
  int64_t heap_allocs() const {
    return heap_allocs_.load(std::memory_order_relaxed);
  }
  int64_t heap_frees() const {
    return heap_frees_.load(std::memory_order_relaxed);
  }

  // Everything the tensor layer is currently holding onto: live tensor
  // storage plus buffers parked on the pool's free lists. This is the
  // process footprint signal the serving brownout ladder watches.
  int64_t resident_footprint_bytes() const {
    return live_bytes() + pool_resident_bytes();
  }

  // Resets the peak to the current live size (call at the start of the
  // region being measured). Total-allocated is reset to zero.
  void ResetPeak();

 private:
  MemoryTracker() = default;

  static void UpdateMax(std::atomic<int64_t>& peak, int64_t candidate);

  std::atomic<int64_t> live_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<int64_t> total_{0};

  std::atomic<int64_t> pool_hits_{0};
  std::atomic<int64_t> pool_misses_{0};
  std::atomic<int64_t> pool_recycled_{0};
  std::atomic<int64_t> pool_resident_{0};
  std::atomic<int64_t> pool_peak_resident_{0};
  std::atomic<int64_t> pool_trimmed_{0};
  std::atomic<int64_t> heap_allocs_{0};
  std::atomic<int64_t> heap_frees_{0};
};

}  // namespace sstban::core

#endif  // SSTBAN_CORE_MEMORY_TRACKER_H_

#ifndef SSTBAN_CORE_TIMER_H_
#define SSTBAN_CORE_TIMER_H_

#include <chrono>

namespace sstban::core {

// Monotonic wall-clock stopwatch used by the trainer and the computation-cost
// benchmarks (Table VII).
class Timer {
 public:
  Timer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  // Elapsed seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sstban::core

#endif  // SSTBAN_CORE_TIMER_H_

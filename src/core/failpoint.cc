#include "core/failpoint.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "core/string_util.h"

namespace sstban::core {

namespace failpoint_internal {
std::atomic<int> g_armed_count{0};
}  // namespace failpoint_internal

namespace {

enum class Action { kError, kCrash, kDelay };

struct Armed {
  Action action = Action::kError;
  StatusCode code = StatusCode::kIoError;
  int64_t delay_ms = 0;
  int64_t nth = 0;  // 0 = every hit; N > 0 = exactly the Nth hit
  int64_t hits = 0;
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, Armed> armed;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

bool ParseStatusCode(const std::string& name, StatusCode* out) {
  // Accepts the enumerator with or without the leading 'k'.
  std::string n = name;
  if (!n.empty() && n[0] == 'k') n = n.substr(1);
  static const std::map<std::string, StatusCode> kCodes = {
      {"InvalidArgument", StatusCode::kInvalidArgument},
      {"NotFound", StatusCode::kNotFound},
      {"IoError", StatusCode::kIoError},
      {"FailedPrecondition", StatusCode::kFailedPrecondition},
      {"OutOfRange", StatusCode::kOutOfRange},
      {"Internal", StatusCode::kInternal},
      {"Unavailable", StatusCode::kUnavailable},
      {"DeadlineExceeded", StatusCode::kDeadlineExceeded},
  };
  auto it = kCodes.find(n);
  if (it == kCodes.end()) return false;
  *out = it->second;
  return true;
}

Status ParseSpec(const std::string& spec, Armed* out) {
  std::string body = spec;
  size_t at = spec.rfind('@');
  // '@' inside parentheses would belong to an argument; actions never take
  // one, so a plain rfind is safe.
  if (at != std::string::npos) {
    char* end = nullptr;
    std::string count = spec.substr(at + 1);
    long long n = std::strtoll(count.c_str(), &end, 10);
    if (count.empty() || end == nullptr || *end != '\0' || n < 1) {
      return Status::InvalidArgument("failpoint spec: bad hit count '" + spec +
                                     "'");
    }
    out->nth = n;
    body = spec.substr(0, at);
  }
  if (body == "crash") {
    out->action = Action::kCrash;
    return Status::Ok();
  }
  if (body.rfind("error(", 0) == 0 && body.back() == ')') {
    out->action = Action::kError;
    std::string code = body.substr(6, body.size() - 7);
    if (!ParseStatusCode(code, &out->code)) {
      return Status::InvalidArgument("failpoint spec: unknown status code '" +
                                     code + "'");
    }
    return Status::Ok();
  }
  if (body.rfind("delay(", 0) == 0 && body.back() == ')') {
    out->action = Action::kDelay;
    std::string ms = body.substr(6, body.size() - 7);
    char* end = nullptr;
    long long n = std::strtoll(ms.c_str(), &end, 10);
    if (ms.empty() || end == nullptr || *end != '\0' || n < 0) {
      return Status::InvalidArgument("failpoint spec: bad delay '" + spec +
                                     "'");
    }
    out->delay_ms = n;
    return Status::Ok();
  }
  return Status::InvalidArgument("failpoint spec: unknown action '" + spec +
                                 "'");
}

// Arms everything in SSTBAN_FAILPOINTS before main() runs. Static
// initialization order across translation units is not a hazard here:
// nothing in the library reaches a failpoint during static init, and
// g_armed_count is constant-initialized.
struct EnvInit {
  EnvInit() {
    const char* env = std::getenv("SSTBAN_FAILPOINTS");
    if (env == nullptr || env[0] == '\0') return;
    Status status = FailPoint::SetFromList(env);
    if (!status.ok()) {
      std::fprintf(stderr, "[failpoint] ignoring SSTBAN_FAILPOINTS: %s\n",
                   status.ToString().c_str());
    }
  }
};
EnvInit g_env_init;

}  // namespace

Status FailPoint::Set(const std::string& name, const std::string& spec) {
  if (name.empty()) {
    return Status::InvalidArgument("failpoint name is empty");
  }
  Armed armed;
  SSTBAN_RETURN_IF_ERROR(ParseSpec(spec, &armed));
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto [it, inserted] = registry.armed.insert_or_assign(name, armed);
  (void)it;
  if (inserted) {
    failpoint_internal::g_armed_count.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::Ok();
}

Status FailPoint::SetFromList(const std::string& list) {
  for (const std::string& raw : Split(list, ',')) {
    std::string entry = Trim(raw);
    if (entry.empty()) continue;
    size_t eq = entry.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("failpoint entry missing '=': " + entry);
    }
    SSTBAN_RETURN_IF_ERROR(Set(entry.substr(0, eq), entry.substr(eq + 1)));
  }
  return Status::Ok();
}

void FailPoint::Clear(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  if (registry.armed.erase(name) > 0) {
    failpoint_internal::g_armed_count.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailPoint::ClearAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  failpoint_internal::g_armed_count.fetch_sub(
      static_cast<int>(registry.armed.size()), std::memory_order_relaxed);
  registry.armed.clear();
}

int64_t FailPoint::HitCount(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto it = registry.armed.find(name);
  return it == registry.armed.end() ? 0 : it->second.hits;
}

Status FailPoint::Hit(const char* name) {
  Armed fire;
  bool should_fire = false;
  {
    Registry& registry = GetRegistry();
    std::lock_guard<std::mutex> lock(registry.mutex);
    auto it = registry.armed.find(name);
    if (it == registry.armed.end()) return Status::Ok();
    Armed& armed = it->second;
    ++armed.hits;
    should_fire = armed.nth == 0 || armed.hits == armed.nth;
    fire = armed;
  }
  if (!should_fire) return Status::Ok();
  switch (fire.action) {
    case Action::kCrash:
      std::fprintf(stderr, "[failpoint] %s: crash (hit %lld)\n", name,
                   static_cast<long long>(fire.hits));
      std::abort();
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(fire.delay_ms));
      return Status::Ok();
    case Action::kError:
      return Status(fire.code,
                    StrFormat("injected by failpoint '%s' (hit %lld)", name,
                              static_cast<long long>(fire.hits)));
  }
  return Status::Ok();
}

}  // namespace sstban::core

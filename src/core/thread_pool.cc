#include "core/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "core/check.h"

namespace sstban::core {

ThreadPool::ThreadPool(int num_threads) : num_threads_(std::max(num_threads, 1)) {
  if (num_threads_ > 1) {
    workers_.reserve(num_threads_);
    for (int i = 0; i < num_threads_; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++pending_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (shutdown_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --pending_;
      if (pending_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = [] {
    int threads = static_cast<int>(std::thread::hardware_concurrency());
    if (const char* env = std::getenv("SSTBAN_NUM_THREADS")) {
      threads = std::atoi(env);
    }
    return new ThreadPool(std::max(threads, 1));
  }();
  return *pool;
}

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& body,
                 int64_t min_chunk) {
  SSTBAN_CHECK_LE(begin, end);
  int64_t total = end - begin;
  if (total == 0) return;
  ThreadPool& pool = ThreadPool::Global();
  int threads = pool.num_threads();
  if (threads <= 1 || total <= min_chunk) {
    body(begin, end);
    return;
  }
  int64_t chunks = std::min<int64_t>(threads, (total + min_chunk - 1) / min_chunk);
  int64_t chunk_size = (total + chunks - 1) / chunks;
  for (int64_t c = 0; c < chunks; ++c) {
    int64_t lo = begin + c * chunk_size;
    int64_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    pool.Schedule([&body, lo, hi] { body(lo, hi); });
  }
  pool.Wait();
}

}  // namespace sstban::core

#include "core/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "core/check.h"

namespace sstban::core {

namespace {

std::atomic<int> g_parallelism_cap{0};

// Pools whose tasks are on this thread's call stack, innermost last. Wait()
// uses it to exclude the caller's own in-flight tasks; it tracks the owning
// pool per frame so waiting on a *different* pool from inside a task still
// waits for all of that pool's work.
thread_local std::vector<const ThreadPool*> tl_task_stack;

}  // namespace

ThreadPool::ThreadPool(int num_threads) : num_threads_(std::max(num_threads, 1)) {
  if (num_threads_ > 1) {
    workers_.reserve(num_threads_);
    for (int i = 0; i < num_threads_; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Schedule(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    ++pending_;
  }
  cv_.notify_all();
}

bool ThreadPool::RunOneTask(std::unique_lock<std::mutex>& lock) {
  if (tasks_.empty()) return false;
  std::function<void()> task = std::move(tasks_.front());
  tasks_.pop();
  tl_task_stack.push_back(this);
  lock.unlock();
  task();
  lock.lock();
  tl_task_stack.pop_back();
  --pending_;
  cv_.notify_all();
  return true;
}

void ThreadPool::Wait() {
  if (workers_.empty()) return;
  int64_t own = static_cast<int64_t>(
      std::count(tl_task_stack.begin(), tl_task_stack.end(), this));
  std::unique_lock<std::mutex> lock(mutex_);
  while (pending_ > own) {
    if (!RunOneTask(lock)) cv_.wait(lock);
  }
}

void ThreadPool::RunAndWait(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (workers_.empty()) {
    for (auto& task : tasks) task();
    return;
  }
  // Stack-allocated: RunAndWait only returns once remaining hits zero, at
  // which point no wrapped task touches the latch again.
  struct Latch {
    int64_t remaining;
    std::exception_ptr error;
  } latch{static_cast<int64_t>(tasks.size()), nullptr};
  {
    std::unique_lock<std::mutex> lock(mutex_);
    for (auto& task : tasks) {
      tasks_.push([this, &latch, body = std::move(task)] {
        std::exception_ptr error;
        try {
          body();
        } catch (...) {
          error = std::current_exception();
        }
        {
          std::unique_lock<std::mutex> g(mutex_);
          if (error && !latch.error) latch.error = error;
          --latch.remaining;
        }
      });
      ++pending_;
    }
  }
  cv_.notify_all();
  std::unique_lock<std::mutex> lock(mutex_);
  while (latch.remaining > 0) {
    if (!RunOneTask(lock)) cv_.wait(lock);
  }
  lock.unlock();
  if (latch.error) std::rethrow_exception(latch.error);
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (shutdown_ && tasks_.empty()) return;
    if (!RunOneTask(lock)) cv_.wait(lock);
  }
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = [] {
    int threads = static_cast<int>(std::thread::hardware_concurrency());
    if (const char* env = std::getenv("SSTBAN_NUM_THREADS")) {
      threads = std::atoi(env);
    }
    return new ThreadPool(std::max(threads, 1));
  }();
  return *pool;
}

void SetParallelismCapForTesting(int cap) {
  g_parallelism_cap.store(cap, std::memory_order_relaxed);
}

int EffectiveParallelism() {
  int threads = ThreadPool::Global().num_threads();
  int cap = g_parallelism_cap.load(std::memory_order_relaxed);
  return cap > 0 ? std::min(threads, cap) : threads;
}

void ParallelFor(int64_t begin, int64_t end,
                 const std::function<void(int64_t, int64_t)>& body,
                 int64_t min_chunk) {
  SSTBAN_CHECK_LE(begin, end);
  int64_t total = end - begin;
  if (total == 0) return;
  if (min_chunk < 1) min_chunk = 1;
  int parallelism = EffectiveParallelism();
  if (parallelism <= 1 || total <= min_chunk) {
    body(begin, end);
    return;
  }
  int64_t chunks =
      std::min<int64_t>(parallelism, (total + min_chunk - 1) / min_chunk);
  int64_t chunk_size = (total + chunks - 1) / chunks;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<size_t>(chunks));
  for (int64_t c = 0; c < chunks; ++c) {
    int64_t lo = begin + c * chunk_size;
    int64_t hi = std::min(end, lo + chunk_size);
    if (lo >= hi) break;
    tasks.push_back([&body, lo, hi] { body(lo, hi); });
  }
  ThreadPool::Global().RunAndWait(std::move(tasks));
}

}  // namespace sstban::core

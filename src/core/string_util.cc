#include "core/string_util.h"

#include <cstdio>

namespace sstban::core {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int size = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (size < 0) {
    va_end(args_copy);
    return "";
  }
  std::string result(static_cast<size_t>(size), '\0');
  std::vsnprintf(result.data(), result.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return result;
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += sep;
    result += parts[i];
  }
  return result;
}

std::vector<std::string> Split(const std::string& text, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delim) {
      parts.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string Trim(const std::string& text) {
  size_t begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  size_t end = text.find_last_not_of(" \t\r\n");
  return text.substr(begin, end - begin + 1);
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonQuote(const std::string& text) {
  return "\"" + JsonEscape(text) + "\"";
}

}  // namespace sstban::core

#include "baselines/historical_average.h"

#include "tensor/ops.h"

namespace sstban::baselines {

autograd::Variable HistoricalAverage::Predict(const tensor::Tensor& x_norm,
                                              const data::Batch& batch) {
  // Mean over the P axis, repeated Q times.
  tensor::Tensor mean = tensor::Mean(x_norm, 1, /*keepdim=*/true);
  tensor::Tensor repeated = tensor::RepeatAxis(mean, 1, batch.output_len());
  return autograd::Variable(repeated);
}

}  // namespace sstban::baselines

#ifndef SSTBAN_BASELINES_DMSTGCN_H_
#define SSTBAN_BASELINES_DMSTGCN_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/linear.h"
#include "training/model.h"

namespace sstban::baselines {

// DMSTGCN-style forecaster (Han et al. 2021): the defining idea is a
// *dynamic* spatial dependency — the adjacency is constructed per sample
// from learned node factors modulated by a time-of-day embedding, so the
// graph changes through the day. Lite pipeline: gated dilated temporal
// convolutions interleaved with dynamic-graph convolutions, direct
// multi-step head.
class DmstgcnLite : public training::TrafficModel {
 public:
  DmstgcnLite(int64_t num_nodes, int64_t num_features, int64_t output_len,
              int64_t steps_per_day, int64_t channels = 16, int num_layers = 2,
              uint64_t seed = 19);

  autograd::Variable Predict(const tensor::Tensor& x_norm,
                             const data::Batch& batch) override;

  std::string name() const override { return "DMSTGCN"; }

 private:
  struct Layer {
    autograd::Variable filter_w;
    autograd::Variable filter_b;
    autograd::Variable gate_w;
    autograd::Variable gate_b;
    std::unique_ptr<nn::Linear> graph_proj;
    std::unique_ptr<nn::Linear> skip_proj;
    int64_t dilation;
  };

  // Per-sample dynamic adjacency [B, N, N] from the time-of-day of each
  // sample's final input slice.
  autograd::Variable DynamicAdjacency(const data::Batch& batch,
                                      int64_t batch_size) const;

  int64_t num_nodes_;
  int64_t num_features_;
  int64_t output_len_;
  int64_t channels_;
  int64_t rank_;
  core::Rng rng_;
  autograd::Variable source_factors_;  // [N, r]
  autograd::Variable target_factors_;  // [N, r]
  autograd::Variable tod_factors_;     // [steps_per_day, r]
  std::unique_ptr<nn::Linear> input_proj_;
  std::vector<Layer> layers_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace sstban::baselines

#endif  // SSTBAN_BASELINES_DMSTGCN_H_

#include "baselines/gwnet.h"

#include "autograd/ops.h"
#include "baselines/common.h"
#include "core/check.h"
#include "core/string_util.h"
#include "nn/init.h"

namespace sstban::baselines {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;

GwnetLite::GwnetLite(const graph::TrafficGraph& graph, int64_t num_features,
                     int64_t output_len, int64_t residual_channels,
                     int num_layers, uint64_t seed)
    : num_nodes_(graph.num_nodes()),
      num_features_(num_features),
      output_len_(output_len),
      channels_(residual_channels),
      rng_(seed),
      fixed_support_(graph.NormalizedAdjacency()) {
  const int64_t adaptive_rank = 8;
  emb1_ = RegisterParameter(
      "emb1", t::Tensor::RandomNormal(t::Shape{num_nodes_, adaptive_rank}, rng_,
                                      0.0f, 0.1f));
  emb2_ = RegisterParameter(
      "emb2", t::Tensor::RandomNormal(t::Shape{num_nodes_, adaptive_rank}, rng_,
                                      0.0f, 0.1f));
  input_proj_ = std::make_unique<nn::Linear>(num_features, channels_, rng_);
  RegisterModule("input_proj", input_proj_.get());
  int64_t dilation = 1;
  for (int l = 0; l < num_layers; ++l) {
    Layer layer;
    layer.dilation = dilation;
    dilation *= 2;
    layer.filter_w = RegisterParameter(
        core::StrFormat("layer%d.filter_w", l),
        nn::XavierUniform(t::Shape{2, channels_, channels_}, rng_));
    layer.filter_b = RegisterParameter(core::StrFormat("layer%d.filter_b", l),
                                       t::Tensor::Zeros(t::Shape{channels_}));
    layer.gate_w = RegisterParameter(
        core::StrFormat("layer%d.gate_w", l),
        nn::XavierUniform(t::Shape{2, channels_, channels_}, rng_));
    layer.gate_b = RegisterParameter(core::StrFormat("layer%d.gate_b", l),
                                     t::Tensor::Zeros(t::Shape{channels_}));
    layer.graph_proj = std::make_unique<nn::Linear>(2 * channels_, channels_, rng_);
    layer.skip_proj = std::make_unique<nn::Linear>(channels_, channels_, rng_);
    RegisterModule(core::StrFormat("layer%d.graph_proj", l),
                   layer.graph_proj.get());
    RegisterModule(core::StrFormat("layer%d.skip_proj", l),
                   layer.skip_proj.get());
    layers_.push_back(std::move(layer));
  }
  head_ = std::make_unique<nn::Linear>(channels_, output_len * num_features, rng_);
  RegisterModule("head", head_.get());
}

ag::Variable GwnetLite::Predict(const tensor::Tensor& x_norm,
                                const data::Batch& batch) {
  int64_t batch_size = x_norm.dim(0), p = x_norm.dim(1);
  SSTBAN_CHECK_EQ(x_norm.dim(2), num_nodes_);
  SSTBAN_CHECK_EQ(x_norm.dim(3), num_features_);
  SSTBAN_CHECK_EQ(batch.output_len(), output_len_);

  ag::Variable adaptive = AdaptiveAdjacency(emb1_, emb2_);

  // [B, P, N, C] -> per-node sequences [B*N, P, C].
  ag::Variable x(x_norm);
  ag::Variable h = ag::Permute(x, {0, 2, 1, 3});  // [B, N, P, C]
  h = ag::Reshape(h, t::Shape{batch_size * num_nodes_, p, num_features_});
  h = input_proj_->Forward(h);  // [B*N, P, R]

  ag::Variable skip_sum;
  int64_t time = p;
  for (const Layer& layer : layers_) {
    SSTBAN_CHECK_GT(time - layer.dilation, 0)
        << "input too short for GWNet dilation stack";
    ag::Variable filter =
        ag::Conv1dTime(h, layer.filter_w, layer.filter_b, layer.dilation);
    ag::Variable gate =
        ag::Conv1dTime(h, layer.gate_w, layer.gate_b, layer.dilation);
    ag::Variable conv = ag::Mul(ag::Tanh(filter), ag::Sigmoid(gate));
    int64_t new_time = time - layer.dilation;

    // Graph convolution across nodes: fold time into features so every
    // time slice is mixed by the same [N, N] supports.
    ag::Variable nodes4 =
        ag::Reshape(conv, t::Shape{batch_size, num_nodes_, new_time, channels_});
    ag::Variable folded =
        ag::Reshape(nodes4, t::Shape{batch_size, num_nodes_, new_time * channels_});
    ag::Variable mixed_fixed = SupportMatmul(fixed_support_, folded);
    ag::Variable mixed_adaptive = SupportMatmul(adaptive, folded);
    auto unfold = [&](const ag::Variable& m) {
      ag::Variable r = ag::Reshape(
          m, t::Shape{batch_size, num_nodes_, new_time, channels_});
      return ag::Reshape(r, t::Shape{batch_size * num_nodes_, new_time, channels_});
    };
    ag::Variable gc = layer.graph_proj->Forward(
        ag::Concat({unfold(mixed_fixed), unfold(mixed_adaptive)}, -1));

    // Residual: crop the layer input to the shortened time axis.
    ag::Variable residual = ag::Slice(h, 1, layer.dilation, new_time);
    h = ag::Add(gc, residual);
    time = new_time;

    // Skip path: mean over the remaining time axis.
    ag::Variable skip = layer.skip_proj->Forward(ag::Mean(h, 1));  // [B*N, R]
    skip_sum = skip_sum.defined() ? ag::Add(skip_sum, skip) : skip;
  }

  ag::Variable out = head_->Forward(ag::Relu(skip_sum));  // [B*N, Q*C]
  out = ag::Reshape(
      out, t::Shape{batch_size, num_nodes_, output_len_, num_features_});
  return ag::Permute(out, {0, 2, 1, 3});  // [B, Q, N, C]
}

}  // namespace sstban::baselines

#ifndef SSTBAN_BASELINES_VAR_MODEL_H_
#define SSTBAN_BASELINES_VAR_MODEL_H_

#include <string>

#include "training/model.h"

namespace sstban::baselines {

// Vector AutoRegression baseline (§V-B). The N*C signal vector is modeled
// as a linear function of its previous `lag` values:
//   y_t = A_1 y_{t-1} + ... + A_lag y_{t-lag} + b
// fit by ridge least squares (closed form via Cholesky) on the normalized
// training series. Multi-step forecasts roll the model forward recursively.
class VarModel : public training::TrafficModel {
 public:
  explicit VarModel(int lag = 3, float ridge = 1e-2f);

  void Fit(const data::WindowDataset& windows,
           const std::vector<int64_t>& train_indices,
           const data::Normalizer& normalizer) override;

  // Fits directly on a normalized [T, N, C] series — what the serving
  // fallback chain uses to train its VAR tier without a WindowDataset.
  void FitSeries(const tensor::Tensor& series_norm);

  autograd::Variable Predict(const tensor::Tensor& x_norm,
                             const data::Batch& batch) override;

  bool IsTrainable() const override { return false; }
  std::string name() const override { return "VAR"; }

  bool fitted() const { return coeffs_.defined(); }
  int lag() const { return lag_; }

 private:
  int lag_;
  float ridge_;
  tensor::Tensor coeffs_;  // [lag*D + 1, D], last row is the intercept
};

}  // namespace sstban::baselines

#endif  // SSTBAN_BASELINES_VAR_MODEL_H_

#ifndef SSTBAN_BASELINES_GMAN_H_
#define SSTBAN_BASELINES_GMAN_H_

#include <memory>
#include <string>

#include "sstban/model.h"
#include "training/model.h"

namespace sstban::baselines {

// GMAN-style forecaster (Zheng et al. 2020). GMAN's ingredients — spatial
// + temporal embeddings, full (quadratic) spatial and temporal attention
// blocks, and transform attention bridging history to future — are exactly
// the SSTBAN architecture with the bottleneck removed and the
// self-supervised branch disabled, so this baseline instantiates the core
// model in that configuration (it is also the Table VI "w/o STBA" degraded
// variant when the SSL branch is re-enabled).
class GmanLite : public training::TrafficModel {
 public:
  // `config` should describe the scenario; use_bottleneck/self_supervised
  // are overridden internally.
  explicit GmanLite(sstban::SstbanConfig config);

  autograd::Variable Predict(const tensor::Tensor& x_norm,
                             const data::Batch& batch) override;
  autograd::Variable TrainingLoss(const tensor::Tensor& x_norm,
                                  const tensor::Tensor& y_norm,
                                  const data::Batch& batch) override;

  std::string name() const override { return "GMAN"; }

 private:
  std::unique_ptr<sstban::SstbanModel> impl_;
};

}  // namespace sstban::baselines

#endif  // SSTBAN_BASELINES_GMAN_H_

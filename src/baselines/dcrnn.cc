#include "baselines/dcrnn.h"

#include "autograd/ops.h"
#include "baselines/common.h"
#include "core/check.h"
#include "tensor/ops.h"

namespace sstban::baselines {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;

DcGruCell::DcGruCell(int64_t input_dim, int64_t hidden_dim,
                     std::vector<ag::Variable> supports, core::Rng& rng)
    : hidden_dim_(hidden_dim), supports_(std::move(supports)) {
  SSTBAN_CHECK(!supports_.empty());
  int64_t conv_in = (input_dim + hidden_dim) * static_cast<int64_t>(supports_.size());
  gates_proj_ = std::make_unique<nn::Linear>(conv_in, 2 * hidden_dim, rng);
  candidate_proj_ = std::make_unique<nn::Linear>(conv_in, hidden_dim, rng);
  RegisterModule("gates_proj", gates_proj_.get());
  RegisterModule("candidate_proj", candidate_proj_.get());
}

ag::Variable DcGruCell::DiffusionConv(const ag::Variable& x,
                                      const nn::Linear& proj) const {
  std::vector<ag::Variable> diffused;
  diffused.reserve(supports_.size());
  for (const auto& support : supports_) {
    diffused.push_back(SupportMatmul(support, x));
  }
  return proj.Forward(ag::Concat(diffused, -1));
}

ag::Variable DcGruCell::Forward(const ag::Variable& x,
                                const ag::Variable& h) const {
  ag::Variable cat = ag::Concat({x, h}, -1);  // [B, N, F+H]
  ag::Variable zr = ag::Sigmoid(DiffusionConv(cat, *gates_proj_));
  ag::Variable z = ag::Slice(zr, -1, 0, hidden_dim_);
  ag::Variable r = ag::Slice(zr, -1, hidden_dim_, hidden_dim_);
  ag::Variable cat_reset = ag::Concat({x, ag::Mul(r, h)}, -1);
  ag::Variable c = ag::Tanh(DiffusionConv(cat_reset, *candidate_proj_));
  ag::Variable one_minus_z = ag::AddScalar(ag::Neg(z), 1.0f);
  return ag::Add(ag::Mul(one_minus_z, h), ag::Mul(z, c));
}

DcrnnLite::DcrnnLite(const graph::TrafficGraph& graph, int64_t num_features,
                     int64_t hidden_dim, uint64_t seed)
    : num_nodes_(graph.num_nodes()),
      num_features_(num_features),
      hidden_dim_(hidden_dim),
      rng_(seed) {
  int64_t n = num_nodes_;
  std::vector<ag::Variable> supports;
  tensor::Tensor identity = tensor::Tensor::Zeros(t::Shape{n, n});
  for (int64_t i = 0; i < n; ++i) identity.data()[i * n + i] = 1.0f;
  supports.emplace_back(identity);
  supports.emplace_back(graph.RandomWalkMatrix(/*reverse=*/false));
  supports.emplace_back(graph.RandomWalkMatrix(/*reverse=*/true));

  encoder_cell_ =
      std::make_unique<DcGruCell>(num_features, hidden_dim, supports, rng_);
  decoder_cell_ =
      std::make_unique<DcGruCell>(num_features, hidden_dim, supports, rng_);
  output_proj_ = std::make_unique<nn::Linear>(hidden_dim, num_features, rng_);
  RegisterModule("encoder_cell", encoder_cell_.get());
  RegisterModule("decoder_cell", decoder_cell_.get());
  RegisterModule("output_proj", output_proj_.get());
}

ag::Variable DcrnnLite::Predict(const tensor::Tensor& x_norm,
                                const data::Batch& batch) {
  int64_t batch_size = x_norm.dim(0), p = x_norm.dim(1);
  SSTBAN_CHECK_EQ(x_norm.dim(2), num_nodes_);
  SSTBAN_CHECK_EQ(x_norm.dim(3), num_features_);
  int64_t q = batch.output_len();

  ag::Variable x(x_norm);
  ag::Variable h(
      t::Tensor::Zeros(t::Shape{batch_size, num_nodes_, hidden_dim_}));
  for (int64_t step = 0; step < p; ++step) {
    ag::Variable x_t = ag::Reshape(
        ag::Slice(x, 1, step, 1), t::Shape{batch_size, num_nodes_, num_features_});
    h = encoder_cell_->Forward(x_t, h);
  }

  // Decoder: start from a zero "GO" frame, feed back own predictions.
  ag::Variable prev(
      t::Tensor::Zeros(t::Shape{batch_size, num_nodes_, num_features_}));
  std::vector<ag::Variable> outputs;
  outputs.reserve(q);
  for (int64_t step = 0; step < q; ++step) {
    h = decoder_cell_->Forward(prev, h);
    ag::Variable y_t = output_proj_->Forward(h);  // [B, N, C]
    outputs.push_back(
        ag::Reshape(y_t, t::Shape{batch_size, 1, num_nodes_, num_features_}));
    prev = y_t;
  }
  return ag::Concat(outputs, 1);  // [B, Q, N, C]
}

}  // namespace sstban::baselines

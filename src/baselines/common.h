#ifndef SSTBAN_BASELINES_COMMON_H_
#define SSTBAN_BASELINES_COMMON_H_

#include "autograd/variable.h"
#include "tensor/tensor.h"

namespace sstban::baselines {

// support @ X for every batch element: support [N, N] (a Variable so both
// fixed graph supports and learned adaptive adjacencies work), x [B, N, F]
// -> [B, N, F]. Implemented by folding the batch into the feature axis:
// one [N, N] x [N, B*F] matmul instead of B small ones.
autograd::Variable SupportMatmul(const autograd::Variable& support,
                                 const autograd::Variable& x);

// Row-softmax(ReLU(e1 @ e2^T)): the adaptive adjacency construction shared
// by Graph WaveNet / AGCRN / DMSTGCN. e1, e2: [N, r] -> [N, N].
autograd::Variable AdaptiveAdjacency(const autograd::Variable& e1,
                                     const autograd::Variable& e2);

}  // namespace sstban::baselines

#endif  // SSTBAN_BASELINES_COMMON_H_

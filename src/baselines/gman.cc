#include "baselines/gman.h"

namespace sstban::baselines {

GmanLite::GmanLite(sstban::SstbanConfig config) {
  config.use_bottleneck = false;    // full quadratic ST attention
  config.self_supervised = false;   // forecasting branch only
  impl_ = std::make_unique<sstban::SstbanModel>(config);
  RegisterModule("impl", impl_.get());
}

autograd::Variable GmanLite::Predict(const tensor::Tensor& x_norm,
                                     const data::Batch& batch) {
  return impl_->Predict(x_norm, batch);
}

autograd::Variable GmanLite::TrainingLoss(const tensor::Tensor& x_norm,
                                          const tensor::Tensor& y_norm,
                                          const data::Batch& batch) {
  return impl_->TrainingLoss(x_norm, y_norm, batch);
}

}  // namespace sstban::baselines

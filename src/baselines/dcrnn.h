#ifndef SSTBAN_BASELINES_DCRNN_H_
#define SSTBAN_BASELINES_DCRNN_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/traffic_graph.h"
#include "nn/linear.h"
#include "training/model.h"

namespace sstban::baselines {

// Diffusion-convolutional GRU cell: the GRU gate matmuls are replaced by
// graph diffusion over {I, D_o^{-1}A, D_i^{-1}A^T} supports (DCRNN, Li et
// al. 2018).
class DcGruCell : public nn::Module {
 public:
  DcGruCell(int64_t input_dim, int64_t hidden_dim,
            std::vector<autograd::Variable> supports, core::Rng& rng);

  // x: [B, N, input_dim], h: [B, N, hidden_dim] -> [B, N, hidden_dim].
  autograd::Variable Forward(const autograd::Variable& x,
                             const autograd::Variable& h) const;

  int64_t hidden_dim() const { return hidden_dim_; }

 private:
  // Diffusion convolution of [B, N, F]: concat over supports then project.
  autograd::Variable DiffusionConv(const autograd::Variable& x,
                                   const nn::Linear& proj) const;

  int64_t hidden_dim_;
  std::vector<autograd::Variable> supports_;  // constant [N, N] matrices
  std::unique_ptr<nn::Linear> gates_proj_;      // -> [z | r]
  std::unique_ptr<nn::Linear> candidate_proj_;  // -> c
};

// Sequence-to-sequence DCRNN-style forecaster: a DCGRU encoder consumes the
// P input steps, a DCGRU decoder unrolls Q steps feeding back its own
// predictions (no scheduled sampling in this lite version).
class DcrnnLite : public training::TrafficModel {
 public:
  DcrnnLite(const graph::TrafficGraph& graph, int64_t num_features,
            int64_t hidden_dim, uint64_t seed = 11);

  autograd::Variable Predict(const tensor::Tensor& x_norm,
                             const data::Batch& batch) override;

  std::string name() const override { return "DCRNN"; }

 private:
  int64_t num_nodes_;
  int64_t num_features_;
  int64_t hidden_dim_;
  core::Rng rng_;
  std::unique_ptr<DcGruCell> encoder_cell_;
  std::unique_ptr<DcGruCell> decoder_cell_;
  std::unique_ptr<nn::Linear> output_proj_;
};

}  // namespace sstban::baselines

#endif  // SSTBAN_BASELINES_DCRNN_H_

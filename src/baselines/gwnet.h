#ifndef SSTBAN_BASELINES_GWNET_H_
#define SSTBAN_BASELINES_GWNET_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/traffic_graph.h"
#include "nn/linear.h"
#include "training/model.h"

namespace sstban::baselines {

// Graph WaveNet-style forecaster (Wu et al. 2019): stacked gated dilated
// causal temporal convolutions interleaved with graph convolutions over a
// learned adaptive adjacency (plus the fixed graph support), with skip
// connections into a direct multi-step output head.
class GwnetLite : public training::TrafficModel {
 public:
  GwnetLite(const graph::TrafficGraph& graph, int64_t num_features,
            int64_t output_len, int64_t residual_channels = 16,
            int num_layers = 3, uint64_t seed = 13);

  autograd::Variable Predict(const tensor::Tensor& x_norm,
                             const data::Batch& batch) override;

  std::string name() const override { return "GWNet"; }

 private:
  struct Layer {
    autograd::Variable filter_w;  // [2, R, R] kernel-2 conv taps
    autograd::Variable filter_b;  // [R]
    autograd::Variable gate_w;
    autograd::Variable gate_b;
    std::unique_ptr<nn::Linear> graph_proj;  // after node mixing
    std::unique_ptr<nn::Linear> skip_proj;
    int64_t dilation;
  };

  int64_t num_nodes_;
  int64_t num_features_;
  int64_t output_len_;
  int64_t channels_;
  core::Rng rng_;
  autograd::Variable fixed_support_;  // normalized adjacency (constant)
  autograd::Variable emb1_, emb2_;    // adaptive adjacency factors [N, r]
  std::unique_ptr<nn::Linear> input_proj_;
  std::vector<Layer> layers_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace sstban::baselines

#endif  // SSTBAN_BASELINES_GWNET_H_

#include "baselines/var_model.h"

#include <cstring>
#include <vector>

#include "core/check.h"
#include "tensor/linalg.h"
#include "tensor/matmul.h"
#include "tensor/ops.h"

namespace sstban::baselines {

namespace t = ::sstban::tensor;

VarModel::VarModel(int lag, float ridge) : lag_(lag), ridge_(ridge) {
  SSTBAN_CHECK_GE(lag_, 1);
}

void VarModel::Fit(const data::WindowDataset& windows,
                   const std::vector<int64_t>& train_indices,
                   const data::Normalizer& normalizer) {
  SSTBAN_CHECK(!train_indices.empty());
  const data::TrafficDataset& dataset = windows.dataset();
  // The training series covers every step any training window can touch.
  int64_t t_end = train_indices.back() + windows.input_len();
  FitSeries(normalizer.Transform(
      t::Slice(dataset.signals, 0, 0, t_end)));  // [T_train, N, C]
}

void VarModel::FitSeries(const t::Tensor& series_norm) {
  SSTBAN_CHECK_EQ(series_norm.rank(), 3);
  const t::Tensor& series = series_norm;
  int64_t dim = series.dim(1) * series.dim(2);
  int64_t steps = series.dim(0);
  SSTBAN_CHECK_GT(steps, lag_);
  int64_t rows = steps - lag_;
  int64_t cols = lag_ * dim + 1;

  // Design matrix X [rows, cols]: lagged vectors newest-first, plus bias.
  t::Tensor x = t::Tensor::Empty(t::Shape{rows, cols});
  t::Tensor y = t::Tensor::Empty(t::Shape{rows, dim});
  const float* ps = series.data();
  float* px = x.data();
  float* py = y.data();
  for (int64_t r = 0; r < rows; ++r) {
    int64_t target = r + lag_;
    for (int l = 0; l < lag_; ++l) {
      std::memcpy(px + r * cols + l * dim, ps + (target - 1 - l) * dim,
                  static_cast<size_t>(dim) * sizeof(float));
    }
    px[r * cols + cols - 1] = 1.0f;
    std::memcpy(py + r * dim, ps + target * dim,
                static_cast<size_t>(dim) * sizeof(float));
  }

  // Ridge normal equations: (X^T X + ridge I) W = X^T Y.
  t::Tensor xt = t::Transpose(x);
  t::Tensor gram = t::Matmul(xt, x);
  float* pg = gram.data();
  for (int64_t i = 0; i < cols; ++i) pg[i * cols + i] += ridge_;
  t::Tensor rhs = t::Matmul(xt, y);
  auto solved = t::CholeskySolve(gram, rhs);
  SSTBAN_CHECK(solved.ok()) << solved.status().ToString();
  coeffs_ = solved.value();  // [cols, dim]
}

autograd::Variable VarModel::Predict(const tensor::Tensor& x_norm,
                                     const data::Batch& batch) {
  SSTBAN_CHECK(fitted()) << "VarModel::Predict before Fit";
  int64_t batch_size = x_norm.dim(0);
  int64_t p = x_norm.dim(1);
  int64_t n = x_norm.dim(2), c = x_norm.dim(3);
  int64_t dim = n * c;
  int64_t q = batch.output_len();
  SSTBAN_CHECK_GE(p, lag_);
  int64_t cols = lag_ * dim + 1;

  t::Tensor pred = t::Tensor::Empty(t::Shape{batch_size, q, n, c});
  const float* px = x_norm.data();
  const float* pw = coeffs_.data();
  float* pp = pred.data();
  std::vector<float> history(static_cast<size_t>(lag_ * dim));
  std::vector<float> next(static_cast<size_t>(dim));
  for (int64_t b = 0; b < batch_size; ++b) {
    // history holds the most recent `lag` vectors, newest first.
    for (int l = 0; l < lag_; ++l) {
      std::memcpy(history.data() + l * dim, px + (b * p + (p - 1 - l)) * dim,
                  static_cast<size_t>(dim) * sizeof(float));
    }
    for (int64_t step = 0; step < q; ++step) {
      for (int64_t j = 0; j < dim; ++j) {
        double acc = pw[(cols - 1) * dim + j];  // intercept
        for (int64_t i = 0; i < lag_ * dim; ++i) {
          acc += static_cast<double>(history[i]) * pw[i * dim + j];
        }
        next[j] = static_cast<float>(acc);
      }
      std::memcpy(pp + (b * q + step) * dim, next.data(),
                  static_cast<size_t>(dim) * sizeof(float));
      // Shift the lag buffer: newest first.
      std::memmove(history.data() + dim, history.data(),
                   static_cast<size_t>((lag_ - 1) * dim) * sizeof(float));
      std::memcpy(history.data(), next.data(),
                  static_cast<size_t>(dim) * sizeof(float));
    }
  }
  return autograd::Variable(pred);
}

}  // namespace sstban::baselines

#ifndef SSTBAN_BASELINES_ASTGNN_H_
#define SSTBAN_BASELINES_ASTGNN_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/traffic_graph.h"
#include "nn/attention.h"
#include "nn/layer_norm.h"
#include "nn/linear.h"
#include "training/model.h"

namespace sstban::baselines {

// ASTGNN-style forecaster (Guo et al. 2021): layers of full (quadratic)
// temporal self-attention per node combined with graph convolution per time
// slice, with residual connections and layer norm. A learned positional
// embedding supplies temporal order; the head maps the P-step latent to all
// Q future steps with a linear time-axis projection.
class AstgnnLite : public training::TrafficModel {
 public:
  AstgnnLite(const graph::TrafficGraph& graph, int64_t num_features,
             int64_t input_len, int64_t output_len, int64_t hidden_dim = 16,
             int num_layers = 2, int64_t num_heads = 4, uint64_t seed = 23);

  autograd::Variable Predict(const tensor::Tensor& x_norm,
                             const data::Batch& batch) override;

  std::string name() const override { return "ASTGNN"; }

 private:
  struct Layer {
    std::unique_ptr<nn::MultiHeadAttention> temporal_attention;
    std::unique_ptr<nn::Linear> graph_proj;
    std::unique_ptr<nn::LayerNorm> norm;
  };

  int64_t num_nodes_;
  int64_t num_features_;
  int64_t input_len_;
  int64_t output_len_;
  int64_t hidden_dim_;
  core::Rng rng_;
  autograd::Variable support_;        // normalized adjacency (constant)
  autograd::Variable pos_embedding_;  // [P, d]
  std::unique_ptr<nn::Linear> input_proj_;
  std::vector<Layer> layers_;
  std::unique_ptr<nn::Linear> time_proj_;    // P -> Q along the time axis
  std::unique_ptr<nn::Linear> output_proj_;  // d -> C
};

}  // namespace sstban::baselines

#endif  // SSTBAN_BASELINES_ASTGNN_H_

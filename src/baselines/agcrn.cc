#include "baselines/agcrn.h"

#include "autograd/ops.h"
#include "baselines/common.h"
#include "core/check.h"
#include "nn/init.h"

namespace sstban::baselines {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;

AgcrnLite::AgcrnLite(int64_t num_nodes, int64_t num_features,
                     int64_t output_len, int64_t hidden_dim, int64_t embed_dim,
                     uint64_t seed)
    : num_nodes_(num_nodes),
      num_features_(num_features),
      output_len_(output_len),
      hidden_dim_(hidden_dim),
      rng_(seed) {
  node_emb_ = RegisterParameter(
      "node_emb",
      t::Tensor::RandomNormal(t::Shape{num_nodes, embed_dim}, rng_, 0.0f, 0.1f));
  int64_t conv_in = num_features + hidden_dim;
  gates_proj_ = std::make_unique<nn::Linear>(conv_in, 2 * hidden_dim, rng_);
  gates_node_bias_ = std::make_unique<nn::Linear>(embed_dim, 2 * hidden_dim, rng_);
  candidate_proj_ = std::make_unique<nn::Linear>(conv_in, hidden_dim, rng_);
  candidate_node_bias_ = std::make_unique<nn::Linear>(embed_dim, hidden_dim, rng_);
  head_ = std::make_unique<nn::Linear>(hidden_dim, output_len * num_features, rng_);
  RegisterModule("gates_proj", gates_proj_.get());
  RegisterModule("gates_node_bias", gates_node_bias_.get());
  RegisterModule("candidate_proj", candidate_proj_.get());
  RegisterModule("candidate_node_bias", candidate_node_bias_.get());
  RegisterModule("head", head_.get());
}

ag::Variable AgcrnLite::AdaptiveConv(const ag::Variable& x,
                                     const ag::Variable& adjacency,
                                     const nn::Linear& proj,
                                     const nn::Linear& node_bias) const {
  ag::Variable mixed = SupportMatmul(adjacency, x);  // [B, N, F]
  ag::Variable shared = proj.Forward(mixed);
  // Node-adaptive bias generated from the node embedding, broadcast over
  // the batch: [N, out] -> [1, N, out].
  ag::Variable bias = node_bias.Forward(node_emb_);
  bias = ag::Reshape(bias, t::Shape{1, num_nodes_, bias.dim(1)});
  return ag::Add(shared, bias);
}

ag::Variable AgcrnLite::Predict(const tensor::Tensor& x_norm,
                                const data::Batch& batch) {
  int64_t batch_size = x_norm.dim(0), p = x_norm.dim(1);
  SSTBAN_CHECK_EQ(x_norm.dim(2), num_nodes_);
  SSTBAN_CHECK_EQ(batch.output_len(), output_len_);

  ag::Variable adjacency = AdaptiveAdjacency(node_emb_, node_emb_);
  ag::Variable x(x_norm);
  ag::Variable h(
      t::Tensor::Zeros(t::Shape{batch_size, num_nodes_, hidden_dim_}));
  for (int64_t step = 0; step < p; ++step) {
    ag::Variable x_t = ag::Reshape(
        ag::Slice(x, 1, step, 1), t::Shape{batch_size, num_nodes_, num_features_});
    ag::Variable cat = ag::Concat({x_t, h}, -1);
    ag::Variable zr = ag::Sigmoid(
        AdaptiveConv(cat, adjacency, *gates_proj_, *gates_node_bias_));
    ag::Variable z = ag::Slice(zr, -1, 0, hidden_dim_);
    ag::Variable r = ag::Slice(zr, -1, hidden_dim_, hidden_dim_);
    ag::Variable cat_reset = ag::Concat({x_t, ag::Mul(r, h)}, -1);
    ag::Variable c = ag::Tanh(AdaptiveConv(cat_reset, adjacency,
                                           *candidate_proj_,
                                           *candidate_node_bias_));
    ag::Variable one_minus_z = ag::AddScalar(ag::Neg(z), 1.0f);
    h = ag::Add(ag::Mul(one_minus_z, h), ag::Mul(z, c));
  }
  ag::Variable out = head_->Forward(h);  // [B, N, Q*C]
  out = ag::Reshape(
      out, t::Shape{batch_size, num_nodes_, output_len_, num_features_});
  return ag::Permute(out, {0, 2, 1, 3});
}

}  // namespace sstban::baselines

#include "baselines/astgnn.h"

#include "autograd/ops.h"
#include "baselines/common.h"
#include "core/check.h"
#include "core/string_util.h"
#include "nn/init.h"

namespace sstban::baselines {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;

AstgnnLite::AstgnnLite(const graph::TrafficGraph& graph, int64_t num_features,
                       int64_t input_len, int64_t output_len,
                       int64_t hidden_dim, int num_layers, int64_t num_heads,
                       uint64_t seed)
    : num_nodes_(graph.num_nodes()),
      num_features_(num_features),
      input_len_(input_len),
      output_len_(output_len),
      hidden_dim_(hidden_dim),
      rng_(seed),
      support_(graph.NormalizedAdjacency()) {
  pos_embedding_ = RegisterParameter(
      "pos_embedding",
      t::Tensor::RandomNormal(t::Shape{input_len, hidden_dim}, rng_, 0.0f, 0.1f));
  input_proj_ = std::make_unique<nn::Linear>(num_features, hidden_dim, rng_);
  RegisterModule("input_proj", input_proj_.get());
  for (int l = 0; l < num_layers; ++l) {
    Layer layer;
    layer.temporal_attention = std::make_unique<nn::MultiHeadAttention>(
        hidden_dim, hidden_dim, hidden_dim, num_heads, rng_);
    layer.graph_proj = std::make_unique<nn::Linear>(hidden_dim, hidden_dim, rng_);
    layer.norm = std::make_unique<nn::LayerNorm>(hidden_dim);
    RegisterModule(core::StrFormat("layer%d.attention", l),
                   layer.temporal_attention.get());
    RegisterModule(core::StrFormat("layer%d.graph_proj", l),
                   layer.graph_proj.get());
    RegisterModule(core::StrFormat("layer%d.norm", l), layer.norm.get());
    layers_.push_back(std::move(layer));
  }
  time_proj_ = std::make_unique<nn::Linear>(input_len, output_len, rng_);
  output_proj_ = std::make_unique<nn::Linear>(hidden_dim, num_features, rng_);
  RegisterModule("time_proj", time_proj_.get());
  RegisterModule("output_proj", output_proj_.get());
}

ag::Variable AstgnnLite::Predict(const tensor::Tensor& x_norm,
                                 const data::Batch& batch) {
  int64_t batch_size = x_norm.dim(0), p = x_norm.dim(1);
  SSTBAN_CHECK_EQ(p, input_len_);
  SSTBAN_CHECK_EQ(x_norm.dim(2), num_nodes_);
  SSTBAN_CHECK_EQ(batch.output_len(), output_len_);

  ag::Variable x(x_norm);
  ag::Variable h = input_proj_->Forward(x);  // [B, P, N, d]
  // Temporal positional embedding, broadcast over batch and nodes.
  ag::Variable pos =
      ag::Reshape(pos_embedding_, t::Shape{1, input_len_, 1, hidden_dim_});
  h = ag::Add(h, pos);

  for (const Layer& layer : layers_) {
    // Temporal self-attention per node: [B, P, N, d] -> [B*N, P, d].
    ag::Variable seq = ag::Permute(h, {0, 2, 1, 3});
    seq = ag::Reshape(seq, t::Shape{batch_size * num_nodes_, p, hidden_dim_});
    ag::Variable attended = layer.temporal_attention->Forward(seq, seq, seq);
    attended = ag::Reshape(attended,
                           t::Shape{batch_size, num_nodes_, p, hidden_dim_});
    attended = ag::Permute(attended, {0, 2, 1, 3});  // [B, P, N, d]

    // Graph convolution per time slice: fold (B, P) into the batch.
    ag::Variable slices = ag::Reshape(
        attended, t::Shape{batch_size * p, num_nodes_, hidden_dim_});
    ag::Variable mixed = layer.graph_proj->Forward(SupportMatmul(support_, slices));
    mixed = ag::Reshape(mixed, t::Shape{batch_size, p, num_nodes_, hidden_dim_});

    h = layer.norm->Forward(ag::Add(h, ag::Relu(mixed)));
  }

  // Time-axis projection P -> Q per (node, channel).
  ag::Variable swapped = ag::Permute(h, {0, 2, 3, 1});  // [B, N, d, P]
  ag::Variable mapped = time_proj_->Forward(swapped);   // [B, N, d, Q]
  mapped = ag::Permute(mapped, {0, 3, 1, 2});           // [B, Q, N, d]
  return output_proj_->Forward(mapped);                 // [B, Q, N, C]
}

}  // namespace sstban::baselines

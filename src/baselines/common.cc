#include "baselines/common.h"

#include "autograd/ops.h"
#include "core/check.h"

namespace sstban::baselines {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;

ag::Variable SupportMatmul(const ag::Variable& support, const ag::Variable& x) {
  SSTBAN_CHECK_EQ(support.rank(), 2);
  SSTBAN_CHECK_EQ(x.rank(), 3);
  int64_t n = support.dim(0);
  SSTBAN_CHECK_EQ(support.dim(1), n);
  SSTBAN_CHECK_EQ(x.dim(1), n);
  int64_t batch = x.dim(0), feats = x.dim(2);
  // [B, N, F] -> [N, B*F]
  ag::Variable folded = ag::Permute(x, {1, 0, 2});
  folded = ag::Reshape(folded, t::Shape{n, batch * feats});
  ag::Variable mixed = ag::Matmul(support, folded);  // [N, B*F]
  mixed = ag::Reshape(mixed, t::Shape{n, batch, feats});
  return ag::Permute(mixed, {1, 0, 2});
}

ag::Variable AdaptiveAdjacency(const ag::Variable& e1, const ag::Variable& e2) {
  SSTBAN_CHECK_EQ(e1.rank(), 2);
  SSTBAN_CHECK(e1.shape() == e2.shape());
  ag::Variable scores = ag::Matmul(e1, ag::Permute(e2, {1, 0}));
  return ag::Softmax(ag::Relu(scores));
}

}  // namespace sstban::baselines

#ifndef SSTBAN_BASELINES_HISTORICAL_AVERAGE_H_
#define SSTBAN_BASELINES_HISTORICAL_AVERAGE_H_

#include <string>

#include "training/model.h"

namespace sstban::baselines {

// HA baseline (§V-B): predicts every future step as the mean of the input
// window, per node and feature. Closed-form; nothing to train.
class HistoricalAverage : public training::TrafficModel {
 public:
  HistoricalAverage() = default;

  autograd::Variable Predict(const tensor::Tensor& x_norm,
                             const data::Batch& batch) override;

  bool IsTrainable() const override { return false; }
  std::string name() const override { return "HA"; }
};

}  // namespace sstban::baselines

#endif  // SSTBAN_BASELINES_HISTORICAL_AVERAGE_H_

#include "baselines/dmstgcn.h"

#include "autograd/ops.h"
#include "baselines/common.h"
#include "core/check.h"
#include "core/string_util.h"
#include "nn/init.h"

namespace sstban::baselines {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;

DmstgcnLite::DmstgcnLite(int64_t num_nodes, int64_t num_features,
                         int64_t output_len, int64_t steps_per_day,
                         int64_t channels, int num_layers, uint64_t seed)
    : num_nodes_(num_nodes),
      num_features_(num_features),
      output_len_(output_len),
      channels_(channels),
      rank_(8),
      rng_(seed) {
  source_factors_ = RegisterParameter(
      "source_factors",
      t::Tensor::RandomNormal(t::Shape{num_nodes, rank_}, rng_, 0.0f, 0.1f));
  target_factors_ = RegisterParameter(
      "target_factors",
      t::Tensor::RandomNormal(t::Shape{num_nodes, rank_}, rng_, 0.0f, 0.1f));
  tod_factors_ = RegisterParameter(
      "tod_factors",
      t::Tensor::RandomNormal(t::Shape{steps_per_day, rank_}, rng_, 1.0f, 0.1f));
  input_proj_ = std::make_unique<nn::Linear>(num_features, channels_, rng_);
  RegisterModule("input_proj", input_proj_.get());
  int64_t dilation = 1;
  for (int l = 0; l < num_layers; ++l) {
    Layer layer;
    layer.dilation = dilation;
    dilation *= 2;
    layer.filter_w = RegisterParameter(
        core::StrFormat("layer%d.filter_w", l),
        nn::XavierUniform(t::Shape{2, channels_, channels_}, rng_));
    layer.filter_b = RegisterParameter(core::StrFormat("layer%d.filter_b", l),
                                       t::Tensor::Zeros(t::Shape{channels_}));
    layer.gate_w = RegisterParameter(
        core::StrFormat("layer%d.gate_w", l),
        nn::XavierUniform(t::Shape{2, channels_, channels_}, rng_));
    layer.gate_b = RegisterParameter(core::StrFormat("layer%d.gate_b", l),
                                     t::Tensor::Zeros(t::Shape{channels_}));
    layer.graph_proj = std::make_unique<nn::Linear>(channels_, channels_, rng_);
    layer.skip_proj = std::make_unique<nn::Linear>(channels_, channels_, rng_);
    RegisterModule(core::StrFormat("layer%d.graph_proj", l),
                   layer.graph_proj.get());
    RegisterModule(core::StrFormat("layer%d.skip_proj", l),
                   layer.skip_proj.get());
    layers_.push_back(std::move(layer));
  }
  head_ = std::make_unique<nn::Linear>(channels_, output_len * num_features, rng_);
  RegisterModule("head", head_.get());
}

ag::Variable DmstgcnLite::DynamicAdjacency(const data::Batch& batch,
                                           int64_t batch_size) const {
  // Time-of-day of each sample's last input slice selects the modulation.
  int64_t p = batch.input_len();
  std::vector<int64_t> tod(batch_size);
  for (int64_t b = 0; b < batch_size; ++b) {
    tod[b] = batch.tod_in[b * p + (p - 1)];
  }
  ag::Variable k = ag::EmbeddingLookup(tod_factors_, tod);  // [B, r]
  k = ag::Reshape(k, t::Shape{batch_size, 1, rank_});
  // U modulated per sample: [1, N, r] * [B, 1, r] -> [B, N, r].
  ag::Variable u = ag::Reshape(source_factors_, t::Shape{1, num_nodes_, rank_});
  ag::Variable u_mod = ag::Mul(u, k);
  // V tiled across the batch via broadcasting-add.
  ag::Variable v = ag::Reshape(target_factors_, t::Shape{1, num_nodes_, rank_});
  ag::Variable v_tiled =
      ag::Add(v, ag::Variable(t::Tensor::Zeros(t::Shape{batch_size, num_nodes_, rank_})));
  ag::Variable scores = ag::Bmm(u_mod, v_tiled, /*transpose_a=*/false,
                                /*transpose_b=*/true);  // [B, N, N]
  return ag::Softmax(ag::Relu(scores));
}

ag::Variable DmstgcnLite::Predict(const tensor::Tensor& x_norm,
                                  const data::Batch& batch) {
  int64_t batch_size = x_norm.dim(0), p = x_norm.dim(1);
  SSTBAN_CHECK_EQ(x_norm.dim(2), num_nodes_);
  SSTBAN_CHECK_EQ(batch.output_len(), output_len_);

  ag::Variable adjacency = DynamicAdjacency(batch, batch_size);  // [B, N, N]

  ag::Variable x(x_norm);
  ag::Variable h = ag::Permute(x, {0, 2, 1, 3});
  h = ag::Reshape(h, t::Shape{batch_size * num_nodes_, p, num_features_});
  h = input_proj_->Forward(h);

  ag::Variable skip_sum;
  int64_t time = p;
  for (const Layer& layer : layers_) {
    SSTBAN_CHECK_GT(time - layer.dilation, 0);
    ag::Variable filter =
        ag::Conv1dTime(h, layer.filter_w, layer.filter_b, layer.dilation);
    ag::Variable gate =
        ag::Conv1dTime(h, layer.gate_w, layer.gate_b, layer.dilation);
    ag::Variable conv = ag::Mul(ag::Tanh(filter), ag::Sigmoid(gate));
    int64_t new_time = time - layer.dilation;

    // Dynamic graph convolution: batched [B, N, N] x [B, N, T*R].
    ag::Variable folded = ag::Reshape(
        conv, t::Shape{batch_size, num_nodes_, new_time * channels_});
    ag::Variable mixed = ag::Bmm(adjacency, folded);
    mixed = ag::Reshape(
        mixed, t::Shape{batch_size * num_nodes_, new_time, channels_});
    ag::Variable gc = layer.graph_proj->Forward(mixed);

    ag::Variable residual = ag::Slice(h, 1, layer.dilation, new_time);
    h = ag::Add(gc, residual);
    time = new_time;

    ag::Variable skip = layer.skip_proj->Forward(ag::Mean(h, 1));
    skip_sum = skip_sum.defined() ? ag::Add(skip_sum, skip) : skip;
  }

  ag::Variable out = head_->Forward(ag::Relu(skip_sum));
  out = ag::Reshape(
      out, t::Shape{batch_size, num_nodes_, output_len_, num_features_});
  return ag::Permute(out, {0, 2, 1, 3});
}

}  // namespace sstban::baselines

#ifndef SSTBAN_BASELINES_AGCRN_H_
#define SSTBAN_BASELINES_AGCRN_H_

#include <memory>
#include <string>

#include "nn/linear.h"
#include "training/model.h"

namespace sstban::baselines {

// AGCRN-style forecaster (Bai et al. 2020): a GRU whose gate transforms are
// adaptive graph convolutions over an adjacency inferred from learned node
// embeddings, plus node-specific biases generated from the same embeddings
// (the node-adaptive parameter learning idea, in lite form). The final
// hidden state is projected directly to all Q future steps.
class AgcrnLite : public training::TrafficModel {
 public:
  AgcrnLite(int64_t num_nodes, int64_t num_features, int64_t output_len,
            int64_t hidden_dim = 16, int64_t embed_dim = 8, uint64_t seed = 17);

  autograd::Variable Predict(const tensor::Tensor& x_norm,
                             const data::Batch& batch) override;

  std::string name() const override { return "AGCRN"; }

 private:
  // Adaptive graph convolution + node-adaptive bias of [B, N, F].
  autograd::Variable AdaptiveConv(const autograd::Variable& x,
                                  const autograd::Variable& adjacency,
                                  const nn::Linear& proj,
                                  const nn::Linear& node_bias) const;

  int64_t num_nodes_;
  int64_t num_features_;
  int64_t output_len_;
  int64_t hidden_dim_;
  core::Rng rng_;
  autograd::Variable node_emb_;  // [N, embed_dim]
  std::unique_ptr<nn::Linear> gates_proj_;
  std::unique_ptr<nn::Linear> gates_node_bias_;
  std::unique_ptr<nn::Linear> candidate_proj_;
  std::unique_ptr<nn::Linear> candidate_node_bias_;
  std::unique_ptr<nn::Linear> head_;
};

}  // namespace sstban::baselines

#endif  // SSTBAN_BASELINES_AGCRN_H_

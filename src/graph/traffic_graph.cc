#include "graph/traffic_graph.h"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "core/check.h"

namespace sstban::graph {

TrafficGraph::TrafficGraph(int64_t num_nodes,
                           std::vector<std::pair<double, double>> coords)
    : num_nodes_(num_nodes),
      coords_(std::move(coords)),
      successors_(num_nodes),
      predecessors_(num_nodes) {
  SSTBAN_CHECK_EQ(static_cast<int64_t>(coords_.size()), num_nodes_);
}

TrafficGraph TrafficGraph::RandomCorridor(int64_t num_nodes, int num_corridors,
                                          core::Rng& rng) {
  SSTBAN_CHECK_GE(num_corridors, 1);
  SSTBAN_CHECK_GE(num_nodes, num_corridors);
  std::vector<std::pair<double, double>> coords(num_nodes);
  // Assign nodes to corridors round-robin so corridor lengths differ by at
  // most one; lay each corridor out as a gently curving chain.
  std::vector<std::vector<int64_t>> corridors(num_corridors);
  for (int64_t v = 0; v < num_nodes; ++v) {
    corridors[v % num_corridors].push_back(v);
  }
  for (int c = 0; c < num_corridors; ++c) {
    double base_x = rng.NextUniform(0.0f, 10.0f);
    double base_y = rng.NextUniform(0.0f, 10.0f);
    double heading = rng.NextUniform(0.0f, 2.0f * static_cast<float>(M_PI));
    double x = base_x, y = base_y;
    for (int64_t v : corridors[c]) {
      coords[v] = {x, y};
      heading += rng.NextGaussian(0.0f, 0.08f);
      double step = 0.8 + 0.3 * rng.NextDouble();
      x += step * std::cos(heading);
      y += step * std::sin(heading);
    }
  }
  TrafficGraph g(num_nodes, std::move(coords));
  auto kernel_weight = [&](int64_t a, int64_t b) {
    double dx = g.coords()[a].first - g.coords()[b].first;
    double dy = g.coords()[a].second - g.coords()[b].second;
    double dist = std::sqrt(dx * dx + dy * dy);
    // Gaussian kernel with unit bandwidth, as in the DCRNN adjacency recipe.
    return static_cast<float>(std::exp(-dist * dist / 2.0));
  };
  // Consecutive sensors along each corridor.
  for (int c = 0; c < num_corridors; ++c) {
    for (size_t i = 0; i + 1 < corridors[c].size(); ++i) {
      int64_t a = corridors[c][i], b = corridors[c][i + 1];
      g.AddEdge(a, b, std::max(kernel_weight(a, b), 0.05f));
    }
  }
  // A few interchanges: link random nodes of distinct corridors.
  int num_links = std::max(1, num_corridors - 1) * 2;
  for (int l = 0; l < num_links; ++l) {
    int ca = static_cast<int>(rng.NextBelow(static_cast<uint32_t>(num_corridors)));
    int cb = static_cast<int>(rng.NextBelow(static_cast<uint32_t>(num_corridors)));
    if (ca == cb || corridors[ca].empty() || corridors[cb].empty()) continue;
    int64_t a = corridors[ca][rng.NextBelow(static_cast<uint32_t>(corridors[ca].size()))];
    int64_t b = corridors[cb][rng.NextBelow(static_cast<uint32_t>(corridors[cb].size()))];
    if (a == b) continue;
    g.AddEdge(a, b, std::max(kernel_weight(a, b), 0.05f));
  }
  return g;
}

void TrafficGraph::AddEdge(int64_t from, int64_t to, float weight) {
  SSTBAN_CHECK(from >= 0 && from < num_nodes_);
  SSTBAN_CHECK(to >= 0 && to < num_nodes_);
  SSTBAN_CHECK_NE(from, to);
  SSTBAN_CHECK_GT(weight, 0.0f);
  edges_.emplace_back(from, to, weight);
  successors_[from].push_back(to);
  predecessors_[to].push_back(from);
}

const std::vector<int64_t>& TrafficGraph::Successors(int64_t v) const {
  SSTBAN_CHECK(v >= 0 && v < num_nodes_);
  return successors_[v];
}

const std::vector<int64_t>& TrafficGraph::Predecessors(int64_t v) const {
  SSTBAN_CHECK(v >= 0 && v < num_nodes_);
  return predecessors_[v];
}

tensor::Tensor TrafficGraph::Adjacency() const {
  tensor::Tensor a = tensor::Tensor::Zeros(tensor::Shape{num_nodes_, num_nodes_});
  float* pa = a.data();
  for (const auto& [from, to, w] : edges_) {
    pa[from * num_nodes_ + to] = w;
  }
  return a;
}

tensor::Tensor TrafficGraph::NormalizedAdjacency() const {
  int64_t n = num_nodes_;
  tensor::Tensor a = Adjacency();
  tensor::Tensor sym(tensor::Shape{n, n});
  float* ps = sym.data();
  const float* pa = a.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      ps[i * n + j] = std::max(pa[i * n + j], pa[j * n + i]);
    }
    ps[i * n + i] = 1.0f;  // self loop
  }
  std::vector<float> inv_sqrt_deg(n);
  for (int64_t i = 0; i < n; ++i) {
    double deg = 0.0;
    for (int64_t j = 0; j < n; ++j) deg += ps[i * n + j];
    inv_sqrt_deg[i] = deg > 0 ? static_cast<float>(1.0 / std::sqrt(deg)) : 0.0f;
  }
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      ps[i * n + j] *= inv_sqrt_deg[i] * inv_sqrt_deg[j];
    }
  }
  return sym;
}

tensor::Tensor TrafficGraph::RandomWalkMatrix(bool reverse) const {
  int64_t n = num_nodes_;
  tensor::Tensor a = Adjacency();
  tensor::Tensor walk(tensor::Shape{n, n});
  float* pw = walk.data();
  const float* pa = a.data();
  for (int64_t i = 0; i < n; ++i) {
    double deg = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      deg += reverse ? pa[j * n + i] : pa[i * n + j];
    }
    float inv = deg > 0 ? static_cast<float>(1.0 / deg) : 0.0f;
    for (int64_t j = 0; j < n; ++j) {
      pw[i * n + j] = (reverse ? pa[j * n + i] : pa[i * n + j]) * inv;
    }
  }
  return walk;
}

}  // namespace sstban::graph

#ifndef SSTBAN_GRAPH_TRAFFIC_GRAPH_H_
#define SSTBAN_GRAPH_TRAFFIC_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/rng.h"
#include "tensor/tensor.h"

namespace sstban::graph {

// A sensor network: nodes are traffic monitor stations, directed edges point
// in the driving direction (flow propagates downstream; congestion shockwaves
// propagate upstream). Edge weights are distance-kernel similarities in
// (0, 1]. Dense adjacency is deliberate — the paper's networks have a few
// hundred nodes and every baseline consumes dense supports.
class TrafficGraph {
 public:
  TrafficGraph(int64_t num_nodes, std::vector<std::pair<double, double>> coords);

  // Synthesizes a freeway-like network: `num_corridors` directed chains of
  // sensors laid out geometrically, plus a few cross links (interchanges).
  // Mirrors the corridor structure of the Seattle Loop / PeMS districts.
  static TrafficGraph RandomCorridor(int64_t num_nodes, int num_corridors,
                                     core::Rng& rng);

  int64_t num_nodes() const { return num_nodes_; }
  const std::vector<std::pair<double, double>>& coords() const { return coords_; }

  void AddEdge(int64_t from, int64_t to, float weight);
  const std::vector<std::tuple<int64_t, int64_t, float>>& edges() const {
    return edges_;
  }

  // Nodes directly downstream / upstream of v.
  const std::vector<int64_t>& Successors(int64_t v) const;
  const std::vector<int64_t>& Predecessors(int64_t v) const;

  // Directed weighted adjacency A ([N, N], zero diagonal).
  tensor::Tensor Adjacency() const;

  // Symmetric GCN support: D^{-1/2} (A_sym + I) D^{-1/2} where
  // A_sym = max(A, A^T).
  tensor::Tensor NormalizedAdjacency() const;

  // Diffusion (random-walk) support D_out^{-1} A, or D_in^{-1} A^T when
  // `reverse` (DCRNN's forward/backward diffusion matrices).
  tensor::Tensor RandomWalkMatrix(bool reverse) const;

 private:
  int64_t num_nodes_;
  std::vector<std::pair<double, double>> coords_;
  std::vector<std::tuple<int64_t, int64_t, float>> edges_;
  std::vector<std::vector<int64_t>> successors_;
  std::vector<std::vector<int64_t>> predecessors_;
};

}  // namespace sstban::graph

#endif  // SSTBAN_GRAPH_TRAFFIC_GRAPH_H_

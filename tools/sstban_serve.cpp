// Serving front end: stands up the micro-batching inference server on a
// synthetic world and drives it with a closed-loop multi-threaded load
// generator, exercising the full production path — bounded queue, batcher,
// versioned model registry (with one mid-run hot-swap), and latency stats.
//
//   sstban_serve [--preset pems08] [--steps 24] [--ckpt serve.sstb]
//                [--epochs 2] [--days 8] [--nodes 16]
//                [--clients 4] [--requests 32] [--deadline-ms 0]
//                [--max-batch 8] [--max-wait-us 2000] [--queue-cap 256]
//                [--swap 1] [--json 0] [--degrade-pct 0] [--fallback 1]
//                [--var-lag 3] [--stall-ms 2000] [--executor auto]
//                [--shards 0] [--replicas 1] [--halo-hops 0] [--rate-rps 50]
//                [--cache-age -1] [--ingest 0] [--drift recalibrate]
//                [--adapt-steps 24] [--admission ""] [--brownout-mb ""]
//
// Trains a checkpoint if --ckpt does not exist yet (plus a second version
// for the hot-swap), then serves it. `--requests` is per client; a deadline
// of 0 means none. `--json 1` appends the machine-readable stats dump.
//
// Resilience knobs: `--degrade-pct N` corrupts channel 0 of N% of requests
// with NaN readings, exercising mask-aware degraded inference;
// `--fallback 0` disables the VAR/cache fallback chain; `--var-lag 0` skips
// fitting the VAR tier; `--stall-ms` is the batcher watchdog budget. The
// health probe line is printed after the run. SSTBAN_FAILPOINTS (see
// src/core/failpoint.h) injects serving faults: serve_enqueue,
// serve_batch_run, serve_fallback, registry_get.
//
// Overload knobs: `--admission <spec>` sets the adaptive admission
// controller (same grammar as SSTBAN_ADMISSION: `off`, `on`, or a
// key=value list such as `limit=32,tolerance=1.5`); `--brownout-mb <list>`
// sets the memory-pressure brownout enter watermarks in MB (same grammar
// as SSTBAN_BROWNOUT_WATERMARKS: `off` or e.g. `512,768,1024`). Both
// default to the environment / built-in defaults when omitted. See
// DESIGN.md section 16 for the full overload-control story.
//
// `--executor static|tape|auto` picks the forward implementation for the
// primary model pass: the shape-specialized static executor (src/exec), the
// autograd tape, or deference to the SSTBAN_EXECUTOR environment variable
// (the default).
//
// `--cache-age N` bounds last-known-good cache staleness to N slices
// (-1 = unbounded, the pre-staleness behavior); stale hits fall through to
// the persistence tier and served responses carry their cache age.
//
// `--ingest N` switches to the drift-aware streaming demo instead of the
// load generator: N live slices are fed through the online-adaptation
// controller (ingest -> shadow eval -> CUSUM -> label-free fine-tune ->
// shadow-gated promotion) against the loaded checkpoint. `--drift` injects a
// regime change at the stream midpoint: `recalibrate` (sudden affine sensor
// recalibration), `seasonal` (ramped demand shift), `grow` (new sensors
// attached — adaptation must refuse the geometry change), or `none`.
// `--adapt-steps` is the fine-tuning budget per adaptation round.
//
// `--shards K` (K >= 1) serves the checkpoint as a horizontally sharded
// fleet instead: the sensor graph is partitioned corridor-aware into K
// balanced shards, each (shard, replica) runs its own full ForecastServer
// over a sliced model, and the scatter/gather router is driven by an
// open-loop Poisson load generator at `--rate-rps` for a total of
// clients x requests arrivals. Prints the load report and the fleet-level
// health/stats rollup (`--json 1` emits the machine-readable form).

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "baselines/var_model.h"
#include "core/rng.h"
#include "data/dataset.h"
#include "data/normalizer.h"
#include "data/synthetic_world.h"
#include "nn/serialization.h"
#include "serving/forecast_server.h"
#include "serving/model_registry.h"
#include "sharding/fleet.h"
#include "sharding/loadgen.h"
#include "sharding/shard_model.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "streaming/adaptation_controller.h"
#include "tensor/ops.h"
#include "training/trainer.h"

namespace {

namespace data = ::sstban::data;
namespace nn = ::sstban::nn;
namespace serving = ::sstban::serving;
namespace tensor = ::sstban::tensor;
namespace training = ::sstban::training;
namespace model_ns = ::sstban::sstban;

// Minimal --key value parser; unknown keys are an error (mirrors sstban_cli).
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::fprintf(stderr, "expected --flag, got '%s'\n", argv[i]);
        std::exit(2);
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
  }

  std::string GetString(const std::string& key, const std::string& fallback) {
    used_.insert(key);
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) {
    std::string v = GetString(key, std::to_string(fallback));
    return std::atoll(v.c_str());
  }
  bool RejectUnknown() const {
    bool ok = true;
    for (const auto& [key, value] : values_) {
      if (!used_.count(key)) {
        std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
        ok = false;
      }
    }
    return ok;
  }

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> used_;
};

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

data::SyntheticWorldConfig WorldFor(const std::string& preset, Flags& flags) {
  data::SyntheticWorldConfig world;
  if (preset == "seattle") {
    world = data::SeattleLikeConfig();
  } else if (preset == "pems04") {
    world = data::Pems04LikeConfig();
  } else if (preset == "pems08") {
    world = data::Pems08LikeConfig();
  } else {
    std::fprintf(stderr, "unknown preset '%s' (use seattle|pems04|pems08)\n",
                 preset.c_str());
    std::exit(2);
  }
  world.num_days = flags.GetInt("days", 8);
  world.num_nodes = flags.GetInt("nodes", 16);
  return world;
}

model_ns::SstbanConfig ModelFor(const std::string& preset, int64_t steps,
                                const data::TrafficDataset& dataset) {
  model_ns::SstbanConfig config;
  if (steps == 24 || steps == 36 || steps == 48) {
    config = model_ns::TableIiiConfig(preset + "-" + std::to_string(steps));
  } else {
    config.input_len = config.output_len = steps;
    config.patch_len = std::max<int64_t>(steps / 8, 1);
  }
  config.num_nodes = dataset.num_nodes();
  config.num_features = dataset.num_features();
  config.steps_per_day = dataset.steps_per_day;
  return config;
}

// Trains `epochs`, saves v1, trains one more epoch, saves v2 — two genuinely
// different weight sets so the hot-swap demonstrably changes the model.
int TrainCheckpoints(const model_ns::SstbanConfig& config,
                     const data::WindowDataset& windows,
                     const data::SplitIndices& split,
                     const data::Normalizer& normalizer, int epochs,
                     const std::string& ckpt, const std::string& ckpt_v2) {
  model_ns::SstbanModel model(config);
  std::printf("training %s checkpoint (%lld params, %zu train windows)...\n",
              model.name().c_str(),
              static_cast<long long>(model.NumParameters()),
              split.train.size());
  training::TrainerConfig trainer_config;
  trainer_config.max_epochs = epochs;
  trainer_config.batch_size = 8;
  trainer_config.verbose = true;
  training::Trainer(trainer_config).Train(&model, windows, split, normalizer);
  auto status = nn::SaveParameters(model, ckpt);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  trainer_config.max_epochs = 1;
  training::Trainer(trainer_config).Train(&model, windows, split, normalizer);
  status = nn::SaveParameters(model, ckpt_v2);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("saved %s and %s\n", ckpt.c_str(), ckpt_v2.c_str());
  return 0;
}

struct LoadGenTotals {
  std::atomic<int64_t> ok{0};
  std::atomic<int64_t> degraded{0};  // subset of ok answered in degraded mode
  std::atomic<int64_t> deadline{0};
  std::atomic<int64_t> unavailable{0};
  std::atomic<int64_t> invalid{0};
  std::atomic<int64_t> other{0};
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv, 1);
  std::string preset = flags.GetString("preset", "pems08");
  int64_t steps = flags.GetInt("steps", 24);
  std::string ckpt = flags.GetString("ckpt", "serve.sstb");
  std::string ckpt_v2 = ckpt + ".v2";
  int epochs = static_cast<int>(flags.GetInt("epochs", 2));
  int64_t clients = flags.GetInt("clients", 4);
  int64_t requests_per_client = flags.GetInt("requests", 32);
  int64_t deadline_ms = flags.GetInt("deadline-ms", 0);
  int64_t max_batch = flags.GetInt("max-batch", 8);
  int64_t max_wait_us = flags.GetInt("max-wait-us", 2000);
  int64_t queue_cap = flags.GetInt("queue-cap", 256);
  bool do_swap = flags.GetInt("swap", 1) != 0;
  bool emit_json = flags.GetInt("json", 0) != 0;
  int64_t degrade_pct = flags.GetInt("degrade-pct", 0);
  bool fallback_enabled = flags.GetInt("fallback", 1) != 0;
  int64_t var_lag = flags.GetInt("var-lag", 3);
  int64_t stall_ms = flags.GetInt("stall-ms", 2000);
  std::string executor = flags.GetString("executor", "auto");
  int64_t shards = flags.GetInt("shards", 0);
  int64_t replicas = flags.GetInt("replicas", 1);
  int64_t halo_hops = flags.GetInt("halo-hops", 0);
  int64_t rate_rps = flags.GetInt("rate-rps", 50);
  int64_t cache_age = flags.GetInt("cache-age", -1);
  int64_t ingest_slices = flags.GetInt("ingest", 0);
  std::string drift = flags.GetString("drift", "recalibrate");
  int64_t adapt_steps = flags.GetInt("adapt-steps", 24);
  std::string admission = flags.GetString("admission", "");
  std::string brownout_mb = flags.GetString("brownout-mb", "");

  // The overload flags reuse the documented env-knob grammar by feeding the
  // environment before ServerOptions resolves its defaults.
  if (!admission.empty()) setenv("SSTBAN_ADMISSION", admission.c_str(), 1);
  if (!brownout_mb.empty()) {
    setenv("SSTBAN_BROWNOUT_WATERMARKS", brownout_mb.c_str(), 1);
  }

  auto dataset = std::make_shared<data::TrafficDataset>(
      data::GenerateSyntheticWorld(WorldFor(preset, flags)));
  if (!flags.RejectUnknown()) return 2;

  data::WindowDataset windows(dataset, steps, steps);
  data::SplitIndices split = data::ChronologicalSplit(windows);
  data::Normalizer normalizer = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanConfig config = ModelFor(preset, steps, *dataset);

  if (!FileExists(ckpt)) {
    int rc = TrainCheckpoints(config, windows, split, normalizer, epochs, ckpt,
                              ckpt_v2);
    if (rc != 0) return rc;
  } else if (!FileExists(ckpt_v2)) {
    ckpt_v2 = ckpt;  // pre-existing checkpoint: swap re-serves the same file
  }

  serving::ModelRegistry registry(
      [config] { return std::make_unique<model_ns::SstbanModel>(config); },
      normalizer);
  auto status = registry.LoadVersion(ckpt);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  if (ingest_slices > 0) {
    namespace streaming = ::sstban::streaming;
    const int64_t total =
        std::min<int64_t>(ingest_slices, dataset->num_steps());
    const int64_t cutover = total / 2;
    // The drifted recording starts diverging from the training world at the
    // stream midpoint; before it, both are identical.
    data::TrafficDataset drifted;
    if (drift == "recalibrate") {
      drifted = data::ApplySensorRecalibration(*dataset, cutover,
                                               /*node_fraction=*/0.5,
                                               /*gain=*/1.6, /*offset=*/3.0,
                                               /*seed=*/77);
    } else if (drift == "seasonal") {
      drifted = data::ApplySeasonalShift(*dataset, cutover, /*amplitude=*/1.2,
                                         dataset->steps_per_day);
    } else if (drift == "grow") {
      drifted = data::AttachNewSensors(*dataset, /*extra=*/2, /*seed=*/77);
    } else if (drift == "none") {
      drifted = *dataset;
    } else {
      std::fprintf(stderr,
                   "unknown --drift '%s' (use recalibrate|seasonal|grow|none)\n",
                   drift.c_str());
      return 2;
    }

    streaming::AdaptationControllerOptions ctl;
    ctl.ingest.num_nodes = dataset->num_nodes();
    ctl.ingest.num_features = dataset->num_features();
    ctl.ingest.input_len = steps;
    ctl.ingest.output_len = steps;
    ctl.ingest.steps_per_day = dataset->steps_per_day;
    ctl.adapter.num_steps = adapt_steps;
    ctl.factory = [config] {
      return std::make_unique<model_ns::SstbanModel>(config);
    };
    streaming::AdaptationController controller(ctl, &registry);
    std::printf(
        "streaming %lld slices (drift '%s' at slice %lld), eval stride "
        "%lld, %lld fine-tune steps per round\n",
        static_cast<long long>(total), drift.c_str(),
        static_cast<long long>(drift == "none" ? -1 : cutover),
        static_cast<long long>(steps), static_cast<long long>(adapt_steps));

    int64_t event_counts[7] = {0};
    int64_t append_errors = 0;
    for (int64_t t = 0; t < total; ++t) {
      const data::TrafficDataset& src = t < cutover ? *dataset : drifted;
      const int64_t n = src.num_nodes();
      const int64_t c = src.num_features();
      tensor::Tensor slice = tensor::Slice(src.signals, 0, t, 1)
                                 .Reshape(tensor::Shape{n, c});
      auto event = controller.OnSlice(slice, t);
      if (!event.ok()) {
        ++append_errors;
        continue;
      }
      ++event_counts[static_cast<int>(event.value())];
      if (event.value() != streaming::StreamEvent::kIngested) {
        std::printf("  slice %lld: %s (serving v%lld, live err %.4f)\n",
                    static_cast<long long>(t),
                    streaming::StreamEventName(event.value()),
                    static_cast<long long>(registry.current_version()),
                    controller.last_live_error());
      }
    }
    std::printf(
        "\nstream summary: evals=%lld rounds=%lld promoted=%lld refused=%lld "
        "rolled_back=%lld geometry_refusals=%lld append_errors=%lld\n"
        "serving v%lld (%s), last live error %.4f\n",
        static_cast<long long>(controller.evals()),
        static_cast<long long>(controller.adaptation_rounds()),
        static_cast<long long>(controller.gate().promotions()),
        static_cast<long long>(controller.gate().refusals()),
        static_cast<long long>(controller.gate().rollbacks()),
        static_cast<long long>(controller.geometry_changes()),
        static_cast<long long>(append_errors),
        static_cast<long long>(registry.current_version()),
        registry.current()->source.c_str(), controller.last_live_error());
    if (emit_json) {
      std::printf(
          "{\"stream\": {\"slices\": %lld, \"evals\": %lld, \"rounds\": "
          "%lld, \"promoted\": %lld, \"refused\": %lld, \"rolled_back\": "
          "%lld, \"geometry_refusals\": %lld, \"version\": %lld}}\n",
          static_cast<long long>(total),
          static_cast<long long>(controller.evals()),
          static_cast<long long>(controller.adaptation_rounds()),
          static_cast<long long>(controller.gate().promotions()),
          static_cast<long long>(controller.gate().refusals()),
          static_cast<long long>(controller.gate().rollbacks()),
          static_cast<long long>(controller.geometry_changes()),
          static_cast<long long>(registry.current_version()));
    }
    return 0;
  }

  serving::ServerOptions options;
  options.input_len = steps;
  options.output_len = steps;
  options.steps_per_day = dataset->steps_per_day;
  options.num_nodes = dataset->num_nodes();
  options.num_features = dataset->num_features();
  options.max_batch = max_batch;
  options.max_wait = std::chrono::microseconds(max_wait_us);
  options.queue_capacity = queue_cap;
  if (degrade_pct > 0) {
    options.sanitizer.degradable_channels = {0};
  }
  options.fallback.enabled = fallback_enabled;
  options.fallback.max_cache_age_steps = cache_age;
  options.stall_budget = std::chrono::milliseconds(stall_ms);
  if (executor == "static") {
    options.executor_mode = training::ExecutorMode::kStatic;
  } else if (executor == "tape") {
    options.executor_mode = training::ExecutorMode::kTape;
  } else if (executor != "auto") {
    std::fprintf(stderr, "unknown --executor '%s' (use static|tape|auto)\n",
                 executor.c_str());
    return 2;
  }

  if (shards > 0) {
    namespace sharding = ::sstban::sharding;
    model_ns::SstbanModel full_model(config);
    auto load_status = nn::LoadParameters(&full_model, ckpt);
    if (!load_status.ok()) {
      std::fprintf(stderr, "%s\n", load_status.ToString().c_str());
      return 1;
    }
    sharding::FleetOptions fleet_options;
    fleet_options.partition.num_shards = shards;
    fleet_options.partition.halo_hops = halo_hops;
    fleet_options.server = options;
    fleet_options.replicas_per_shard = replicas;
    auto fleet_or = sharding::ShardedFleet::Create(*dataset->graph, full_model,
                                                   normalizer, fleet_options);
    if (!fleet_or.ok()) {
      std::fprintf(stderr, "%s\n", fleet_or.status().ToString().c_str());
      return 1;
    }
    std::unique_ptr<sharding::ShardedFleet>& fleet = fleet_or.value();
    std::printf("%s\n", fleet->plan().Summary().c_str());
    if (fallback_enabled && var_lag > 0) {
      // Each replica gets a VAR baseline fitted on its own view's series.
      tensor::Tensor normalized = normalizer.Transform(dataset->signals);
      for (int64_t s = 0; s < shards; ++s) {
        tensor::Tensor view_series = sharding::GatherNodes(
            normalized, fleet->plan().shards[s].view);
        for (int64_t r = 0; r < replicas; ++r) {
          auto var = std::make_unique<sstban::baselines::VarModel>(
              static_cast<int>(var_lag));
          var->FitSeries(view_series);
          fleet->worker(s, r).SetVarBaseline(std::move(var));
        }
      }
    }
    auto start_status = fleet->Start();
    if (!start_status.ok()) {
      std::fprintf(stderr, "%s\n", start_status.ToString().c_str());
      return 1;
    }
    std::printf(
        "serving %s sharded: K=%lld replicas=%lld halo=%lld, open-loop "
        "%lld rps x %lld requests\n",
        ckpt.c_str(), static_cast<long long>(shards),
        static_cast<long long>(replicas), static_cast<long long>(halo_hops),
        static_cast<long long>(rate_rps),
        static_cast<long long>(clients * requests_per_client));

    sharding::LoadGenOptions load;
    load.rate_rps = static_cast<double>(rate_rps);
    load.requests = clients * requests_per_client;
    load.deadline = std::chrono::milliseconds(deadline_ms);
    tensor::Tensor window =
        tensor::Slice(dataset->signals, 0, 0, steps).Clone();
    sharding::LoadGenReport report =
        sharding::RunOpenLoopLoad(&fleet->router(), window, 0, load);
    std::printf(
        "\nopen-loop load: offered=%.1frps achieved=%.1frps ok=%lld "
        "partial=%lld rejected=%lld deadline=%lld unavailable=%lld "
        "invalid=%lld\n  p50=%.2fms p99=%.2fms p999=%.2fms max=%.2fms\n\n",
        report.offered_rps, report.achieved_rps,
        static_cast<long long>(report.ok),
        static_cast<long long>(report.partial),
        static_cast<long long>(report.rejected),
        static_cast<long long>(report.deadline_exceeded),
        static_cast<long long>(report.unavailable),
        static_cast<long long>(report.invalid), report.p50 * 1e3,
        report.p99 * 1e3, report.p999 * 1e3, report.max * 1e3);
    std::printf("%s", fleet->router().FleetTable().c_str());
    if (emit_json) {
      std::printf("\n%s\n%s", report.ToJson().c_str(),
                  fleet->router().FleetJson().c_str());
    }
    fleet->Shutdown();
    return report.invalid == 0 ? 0 : 1;
  }

  serving::ForecastServer server(options, &registry);
  if (fallback_enabled && var_lag > 0) {
    auto var = std::make_unique<sstban::baselines::VarModel>(
        static_cast<int>(var_lag));
    var->FitSeries(normalizer.Transform(dataset->signals));
    server.SetVarBaseline(std::move(var));
    std::printf("fallback chain: VAR(lag=%lld) + last-known-good cache\n",
                static_cast<long long>(var_lag));
  }
  status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf(
      "serving %s v%lld: %lld clients x %lld requests, max_batch=%lld, "
      "max_wait=%lldus, deadline=%lldms\n",
      ckpt.c_str(), static_cast<long long>(registry.current_version()),
      static_cast<long long>(clients),
      static_cast<long long>(requests_per_client),
      static_cast<long long>(max_batch), static_cast<long long>(max_wait_us),
      static_cast<long long>(deadline_ms));

  // Closed-loop load generator: each client thread fires its next request as
  // soon as the previous answer (or rejection) comes back.
  const int64_t max_start = dataset->num_steps() - 2 * steps;
  LoadGenTotals totals;
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(clients));
  for (int64_t cidx = 0; cidx < clients; ++cidx) {
    workers.emplace_back([&, cidx] {
      sstban::core::Rng rng(1000 + static_cast<uint64_t>(cidx));
      for (int64_t r = 0; r < requests_per_client; ++r) {
        int64_t start = static_cast<int64_t>(
            rng.NextBelow(static_cast<uint32_t>(max_start + 1)));
        serving::ForecastRequest request;
        request.recent = tensor::Slice(dataset->signals, 0, start, steps);
        request.first_step = start;
        if (degrade_pct > 0 &&
            rng.NextBelow(100) < static_cast<uint32_t>(degrade_pct)) {
          // Simulate a few dead sensors: NaN out channel 0 of three random
          // (step, sensor) positions; the sanitizer masks them.
          request.recent = request.recent.Clone();
          float* data = request.recent.data();
          const int64_t nodes = request.recent.dim(1);
          const int64_t feats = request.recent.dim(2);
          for (int k = 0; k < 3; ++k) {
            int64_t pos = static_cast<int64_t>(
                rng.NextBelow(static_cast<uint32_t>(steps * nodes)));
            data[pos * feats] = std::numeric_limits<float>::quiet_NaN();
          }
        }
        if (deadline_ms > 0) {
          request.deadline = serving::Clock::now() +
                             std::chrono::milliseconds(deadline_ms);
        }
        auto submitted = server.Submit(std::move(request));
        if (!submitted.ok()) {
          switch (submitted.status().code()) {
            case sstban::core::StatusCode::kUnavailable:
              totals.unavailable.fetch_add(1);
              break;
            case sstban::core::StatusCode::kDeadlineExceeded:
              totals.deadline.fetch_add(1);
              break;
            case sstban::core::StatusCode::kInvalidArgument:
              totals.invalid.fetch_add(1);
              break;
            default:
              totals.other.fetch_add(1);
          }
          continue;
        }
        serving::ForecastResult result = submitted.value().get();
        if (result.ok()) {
          totals.ok.fetch_add(1);
          if (result.value().degraded()) totals.degraded.fetch_add(1);
        } else if (result.status().code() ==
                   sstban::core::StatusCode::kDeadlineExceeded) {
          totals.deadline.fetch_add(1);
        } else if (result.status().code() ==
                   sstban::core::StatusCode::kUnavailable) {
          totals.unavailable.fetch_add(1);
        } else {
          totals.other.fetch_add(1);
        }
      }
    });
  }

  if (do_swap) {
    // Swap roughly mid-run: wait until about half the total requests have
    // completed, then publish the next version. In-flight batches finish on
    // the old weights; nothing fails.
    const int64_t half = clients * requests_per_client / 2;
    while (totals.ok.load() + totals.deadline.load() + totals.other.load() +
               totals.unavailable.load() <
           half) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    auto swap_status = registry.LoadVersion(ckpt_v2);
    if (swap_status.ok()) {
      std::printf("hot-swapped to %s (now serving v%lld)\n", ckpt_v2.c_str(),
                  static_cast<long long>(registry.current_version()));
    } else {
      std::fprintf(stderr, "hot-swap failed (still serving v%lld): %s\n",
                   static_cast<long long>(registry.current_version()),
                   swap_status.ToString().c_str());
    }
  }

  for (std::thread& worker : workers) worker.join();
  serving::HealthReport health = server.CheckHealth();
  server.Shutdown();

  std::printf(
      "\nload generator: ok=%lld (degraded=%lld) deadline=%lld "
      "unavailable=%lld invalid=%lld other=%lld\n",
      static_cast<long long>(totals.ok.load()),
      static_cast<long long>(totals.degraded.load()),
      static_cast<long long>(totals.deadline.load()),
      static_cast<long long>(totals.unavailable.load()),
      static_cast<long long>(totals.invalid.load()),
      static_cast<long long>(totals.other.load()));
  std::printf("health: %s\n\n", health.ToString().c_str());
  std::printf("%s", server.stats().ReportTable().c_str());
  if (emit_json) std::printf("\n%s", server.stats().ReportJson().c_str());
  return totals.other.load() == 0 ? 0 : 1;
}

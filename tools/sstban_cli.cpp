// Command-line front end for the library. Three subcommands cover the
// generate -> train -> forecast lifecycle without writing any C++:
//
//   sstban_cli generate --preset pems08 --out signals.csv [--days 8] [--nodes 16]
//   sstban_cli train    --preset pems08 --steps 24 --ckpt model.bin
//                       [--epochs 6] [--days 8] [--nodes 16] [--lr 0.005]
//                       [--checkpoint_dir DIR] [--checkpoint_every N]
//                       [--resume 0|1]
//   sstban_cli forecast --preset pems08 --steps 24 --ckpt model.bin
//                       [--at <window start index>]
//
// The preset names the synthetic world (seattle / pems04 / pems08); train
// and forecast regenerate the identical world from its seed, so a saved
// checkpoint is self-consistent with the data it was trained on.
//
// With --checkpoint_dir set, train writes a crash-safe resume checkpoint at
// every epoch boundary and auto-resumes from the newest valid one (disable
// with --resume 0). SIGINT/SIGTERM request a clean checkpoint-then-exit at
// the next epoch boundary instead of dying mid-step; the interrupted run
// exits with status 130 and continues from where it stopped when rerun.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "data/csv_io.h"
#include "tensor/ops.h"
#include "data/dataset.h"
#include "data/normalizer.h"
#include "data/synthetic_world.h"
#include "nn/serialization.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "training/forecast_service.h"
#include "training/trainer.h"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int) { g_stop_requested = 1; }

namespace data = ::sstban::data;
namespace nn = ::sstban::nn;
namespace training = ::sstban::training;
namespace model_ns = ::sstban::sstban;

// Minimal --key value parser; unknown keys are an error.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      if (std::strncmp(argv[i], "--", 2) != 0) {
        std::fprintf(stderr, "expected --flag, got '%s'\n", argv[i]);
        std::exit(2);
      }
      values_[argv[i] + 2] = argv[i + 1];
    }
  }

  std::string GetString(const std::string& key, const std::string& fallback) {
    used_.insert(key);
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  int64_t GetInt(const std::string& key, int64_t fallback) {
    std::string v = GetString(key, std::to_string(fallback));
    return std::atoll(v.c_str());
  }
  double GetDouble(const std::string& key, double fallback) {
    std::string v = GetString(key, std::to_string(fallback));
    return std::atof(v.c_str());
  }
  // Call after all Get*: rejects flags nobody consumed (typos).
  bool RejectUnknown() const {
    bool ok = true;
    for (const auto& [key, value] : values_) {
      if (!used_.count(key)) {
        std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
        ok = false;
      }
    }
    return ok;
  }

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> used_;
};

data::SyntheticWorldConfig WorldFor(const std::string& preset, Flags& flags) {
  data::SyntheticWorldConfig world;
  if (preset == "seattle") {
    world = data::SeattleLikeConfig();
  } else if (preset == "pems04") {
    world = data::Pems04LikeConfig();
  } else if (preset == "pems08") {
    world = data::Pems08LikeConfig();
  } else {
    std::fprintf(stderr, "unknown preset '%s' (use seattle|pems04|pems08)\n",
                 preset.c_str());
    std::exit(2);
  }
  world.num_days = flags.GetInt("days", 8);
  world.num_nodes = flags.GetInt("nodes", 16);
  return world;
}

model_ns::SstbanConfig ModelFor(const std::string& preset, int64_t steps,
                                const data::TrafficDataset& dataset) {
  model_ns::SstbanConfig config;
  if (steps == 24 || steps == 36 || steps == 48) {
    // One of the paper's nine scenarios: use its Table III row.
    config = model_ns::TableIiiConfig(preset + "-" + std::to_string(steps));
  } else {
    config.input_len = config.output_len = steps;
    config.patch_len = std::max<int64_t>(steps / 8, 1);
  }
  config.num_nodes = dataset.num_nodes();
  config.num_features = dataset.num_features();
  config.steps_per_day = dataset.steps_per_day;
  return config;
}

int RunGenerate(Flags& flags) {
  std::string preset = flags.GetString("preset", "pems08");
  std::string out = flags.GetString("out", "signals.csv");
  data::TrafficDataset dataset =
      data::GenerateSyntheticWorld(WorldFor(preset, flags));
  if (!flags.RejectUnknown()) return 2;
  auto status = data::SaveSignalsCsv(dataset.signals, out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %lld x %lld x %lld signals to %s\n",
              static_cast<long long>(dataset.num_steps()),
              static_cast<long long>(dataset.num_nodes()),
              static_cast<long long>(dataset.num_features()), out.c_str());
  return 0;
}

int RunTrain(Flags& flags) {
  std::string preset = flags.GetString("preset", "pems08");
  int64_t steps = flags.GetInt("steps", 24);
  std::string ckpt = flags.GetString("ckpt", "sstban.bin");
  int epochs = static_cast<int>(flags.GetInt("epochs", 6));
  float lr = static_cast<float>(flags.GetDouble("lr", 5e-3));
  std::string checkpoint_dir = flags.GetString("checkpoint_dir", "");
  int checkpoint_every = static_cast<int>(flags.GetInt("checkpoint_every", 1));
  bool resume = flags.GetInt("resume", 1) != 0;
  auto dataset = std::make_shared<data::TrafficDataset>(
      data::GenerateSyntheticWorld(WorldFor(preset, flags)));
  if (!flags.RejectUnknown()) return 2;

  data::WindowDataset windows(dataset, steps, steps);
  data::SplitIndices split = data::ChronologicalSplit(windows);
  data::Normalizer normalizer = data::Normalizer::Fit(dataset->signals);

  model_ns::SstbanModel model(ModelFor(preset, steps, *dataset));
  std::printf("training %s on %s (%lld params, %zu train windows)\n",
              model.name().c_str(), dataset->name.c_str(),
              static_cast<long long>(model.NumParameters()),
              split.train.size());
  training::TrainerConfig trainer_config;
  trainer_config.max_epochs = epochs;
  trainer_config.batch_size = 8;
  trainer_config.learning_rate = lr;
  trainer_config.verbose = true;
  trainer_config.target_feature = preset == "seattle" ? 1 : -1;
  trainer_config.checkpoint_dir = checkpoint_dir;
  trainer_config.checkpoint_every_epochs = checkpoint_every;
  trainer_config.resume = resume;
  if (!checkpoint_dir.empty()) {
    // Die at an epoch boundary with a fresh checkpoint on disk, not
    // mid-step with nothing.
    std::signal(SIGINT, HandleStopSignal);
    std::signal(SIGTERM, HandleStopSignal);
    trainer_config.stop_requested = [] { return g_stop_requested != 0; };
  }
  training::Trainer trainer(trainer_config);
  training::TrainStats train_stats =
      trainer.Train(&model, windows, split, normalizer);
  if (train_stats.stopped_by_request) {
    std::printf(
        "interrupted: checkpoint written to %s; rerun the same command to "
        "resume from epoch %d\n",
        checkpoint_dir.c_str(), train_stats.epochs_run);
    return 130;
  }

  training::EvalResult test = training::Evaluate(
      &model, windows, split.test, normalizer, 8, false,
      trainer_config.target_feature);
  std::printf("test: %s\n", test.overall.ToString().c_str());
  auto status = nn::SaveParameters(model, ckpt);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("checkpoint saved to %s\n", ckpt.c_str());
  return 0;
}

int RunForecast(Flags& flags) {
  std::string preset = flags.GetString("preset", "pems08");
  int64_t steps = flags.GetInt("steps", 24);
  std::string ckpt = flags.GetString("ckpt", "sstban.bin");
  auto dataset = std::make_shared<data::TrafficDataset>(
      data::GenerateSyntheticWorld(WorldFor(preset, flags)));
  int64_t at = flags.GetInt("at", dataset->num_steps() - 2 * steps);
  if (!flags.RejectUnknown()) return 2;
  if (at < 0 || at + 2 * steps > dataset->num_steps()) {
    std::fprintf(stderr, "--at out of range (need %lld history + horizon)\n",
                 static_cast<long long>(2 * steps));
    return 2;
  }

  data::Normalizer normalizer = data::Normalizer::Fit(dataset->signals);
  model_ns::SstbanModel model(ModelFor(preset, steps, *dataset));
  auto status = nn::LoadParameters(&model, ckpt);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  training::ForecastService service(&model, normalizer, steps, steps,
                                    dataset->steps_per_day,
                                    dataset->num_nodes(),
                                    dataset->num_features());
  sstban::tensor::Tensor recent =
      sstban::tensor::Slice(dataset->signals, 0, at, steps);
  auto forecast = service.Forecast(recent, at);
  if (!forecast.ok()) {
    std::fprintf(stderr, "%s\n", forecast.status().ToString().c_str());
    return 1;
  }

  // Print network-mean forecast vs truth per step.
  std::printf("step | forecast (network mean) | actual\n");
  for (int64_t q = 0; q < steps; ++q) {
    sstban::tensor::Tensor pred_q =
        sstban::tensor::Slice(forecast.value(), 0, q, 1);
    sstban::tensor::Tensor true_q =
        sstban::tensor::Slice(dataset->signals, 0, at + steps + q, 1);
    std::printf("%4lld | %22.2f | %8.2f\n", static_cast<long long>(q + 1),
                sstban::tensor::MeanAll(pred_q).item(),
                sstban::tensor::MeanAll(true_q).item());
  }
  return 0;
}

void PrintUsage() {
  std::fprintf(stderr,
               "usage: sstban_cli <generate|train|forecast> [--flag value ...]\n"
               "  generate --preset seattle|pems04|pems08 --out FILE"
               " [--days N] [--nodes N]\n"
               "  train    --preset P --steps 24|36|48 --ckpt FILE"
               " [--epochs N] [--lr R] [--days N] [--nodes N]\n"
               "           [--checkpoint_dir DIR] [--checkpoint_every N]"
               " [--resume 0|1]\n"
               "  forecast --preset P --steps S --ckpt FILE [--at INDEX]"
               " [--days N] [--nodes N]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage();
    return 2;
  }
  Flags flags(argc, argv, 2);
  std::string command = argv[1];
  if (command == "generate") return RunGenerate(flags);
  if (command == "train") return RunTrain(flags);
  if (command == "forecast") return RunForecast(flags);
  PrintUsage();
  return 2;
}

// Open-loop load sweep over the sharded serving fleet. For each offered
// rate, a seeded Poisson arrival process with Pareto-tailed request widths
// drives the K-shard router and we record the end-to-end latency
// distribution (measured from the *scheduled* arrival, so dispatcher lag
// under overload is charged — no coordinated omission) plus the terminal
// mix. The saturation knee is the highest offered rate the fleet still
// absorbs: achieved >= 90% of offered and p99 under budget.
//
// Emits one JSON object on stdout; pass a path as argv[1] to also write it
// there (CI snapshots it as bench/BENCH_sharded_serving.json).

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "data/normalizer.h"
#include "data/synthetic_world.h"
#include "sharding/fleet.h"
#include "sharding/loadgen.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "tensor/ops.h"

namespace {

namespace t = ::sstban::tensor;
namespace sharding = ::sstban::sharding;
namespace data = ::sstban::data;

constexpr int64_t kSteps = 12;
constexpr int64_t kNodes = 24;
constexpr int64_t kFeatures = 1;
constexpr int64_t kStepsPerDay = 24;
constexpr int64_t kShards = 4;
constexpr double kP99BudgetSeconds = 0.25;

}  // namespace

int main(int argc, char** argv) {
  data::SyntheticWorldConfig world_config;
  world_config.num_nodes = kNodes;
  world_config.num_corridors = 3;
  world_config.steps_per_day = kStepsPerDay;
  world_config.num_days = 4;
  world_config.seed = 17;
  data::TrafficDataset dataset = data::GenerateSyntheticWorld(world_config);
  data::Normalizer norm = data::Normalizer::Fit(dataset.signals);

  sstban::sstban::SstbanConfig config;
  config.num_nodes = kNodes;
  config.input_len = kSteps;
  config.output_len = kSteps;
  config.num_features = kFeatures;
  config.steps_per_day = kStepsPerDay;
  config.hidden_dim = 8;
  config.num_heads = 2;
  config.encoder_blocks = 1;
  config.decoder_blocks = 1;
  config.patch_len = 3;
  config.spatial_mixing = false;  // node-local => exact sharded serving
  config.seed = 9;
  sstban::sstban::SstbanModel full_model(config);

  sharding::FleetOptions fleet_options;
  fleet_options.partition.num_shards = kShards;
  fleet_options.server.input_len = kSteps;
  fleet_options.server.output_len = kSteps;
  fleet_options.server.steps_per_day = kStepsPerDay;
  fleet_options.server.num_nodes = kNodes;
  fleet_options.server.num_features = kFeatures;
  fleet_options.server.max_batch = 8;
  fleet_options.server.max_wait = std::chrono::milliseconds(2);
  fleet_options.server.queue_capacity = 256;
  fleet_options.router.shard_timeout = std::chrono::milliseconds(1000);
  fleet_options.router.queue_capacity = 512;

  auto fleet_or = sharding::ShardedFleet::Create(*dataset.graph, full_model,
                                                 norm, fleet_options);
  if (!fleet_or.ok()) {
    std::fprintf(stderr, "FAIL: fleet: %s\n",
                 fleet_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<sharding::ShardedFleet>& fleet = fleet_or.value();
  if (!fleet->Start().ok()) {
    std::fprintf(stderr, "FAIL: fleet start\n");
    return 1;
  }

  t::Tensor window = t::Slice(dataset.signals, 0, 0, kSteps).Clone();

  const std::vector<double> rates = {25, 50, 100, 200, 400};
  std::string sweeps;
  double knee_rps = 0.0;
  for (size_t i = 0; i < rates.size(); ++i) {
    sharding::LoadGenOptions load;
    load.rate_rps = rates[i];
    load.requests = 120;
    load.seed = 7 + i;
    sharding::LoadGenReport report =
        sharding::RunOpenLoopLoad(&fleet->router(), window, 0, load);
    std::fprintf(stderr,
                 "rate %6.0f rps: achieved %7.1f  p50 %6.2fms  p99 %6.2fms  "
                 "ok %lld partial %lld rejected %lld\n",
                 report.offered_rps, report.achieved_rps, report.p50 * 1e3,
                 report.p99 * 1e3, static_cast<long long>(report.ok),
                 static_cast<long long>(report.partial),
                 static_cast<long long>(report.rejected));
    if (!sweeps.empty()) sweeps += ",\n    ";
    sweeps += report.ToJson();
    const bool absorbed = report.achieved_rps >= 0.9 * report.offered_rps &&
                          report.p99 <= kP99BudgetSeconds;
    if (absorbed && report.offered_rps > knee_rps) {
      knee_rps = report.offered_rps;
    }
  }
  fleet->Shutdown();

  std::string json = "{\n  \"bench\": \"sharded_serving\",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"shards\": %lld,\n  \"nodes\": %lld,\n"
                "  \"p99_budget_seconds\": %.3f,\n"
                "  \"saturation_knee_rps\": %.1f,\n  \"sweeps\": [\n    ",
                static_cast<long long>(kShards),
                static_cast<long long>(kNodes), kP99BudgetSeconds, knee_rps);
  json += buf;
  json += sweeps;
  json += "\n  ]\n}\n";
  std::fputs(json.c_str(), stdout);
  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << json;
  }

  if (knee_rps <= 0.0) {
    std::fprintf(stderr, "FAIL: fleet absorbed none of the offered rates\n");
    return 1;
  }
  return 0;
}

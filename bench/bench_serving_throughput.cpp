// Serving throughput sweep: drives the micro-batching ForecastServer with a
// fixed burst of concurrent requests per iteration and sweeps the batcher's
// max_batch over {1, 4, 8, 16}. Batching amortizes per-pass overhead (graph
// setup, kernel launches, embedding reuse) across requests, so sustained
// requests/sec should rise monotonically from max_batch=1 and flatten once
// passes saturate the tensor thread pool — the serving-side analogue of the
// paper's efficiency claim (bottleneck attention makes one pass cheap;
// batching multiplies how many clients that pass serves). Built on
// google-benchmark: `--benchmark_format=json` emits the standard JSON dump
// with `requests_per_second` and end-to-end `p99_ms` counters per run.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "data/dataset.h"
#include "data/normalizer.h"
#include "data/synthetic_world.h"
#include "serving/forecast_server.h"
#include "serving/model_registry.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "tensor/ops.h"

namespace {

namespace data = ::sstban::data;
namespace serving = ::sstban::serving;
namespace tensor = ::sstban::tensor;
namespace model_ns = ::sstban::sstban;

constexpr int64_t kSteps = 12;       // P = Q
constexpr int64_t kBurst = 64;       // concurrent requests per iteration

struct World {
  std::shared_ptr<data::TrafficDataset> dataset;
  data::Normalizer normalizer;
  model_ns::SstbanConfig config;
  std::vector<serving::ForecastRequest> requests;  // precomputed windows
};

const World& SharedWorld() {
  static World* world = [] {
    auto* w = new World();
    data::SyntheticWorldConfig world_config = data::Pems08LikeConfig();
    world_config.num_nodes = 8;
    world_config.num_days = 4;
    world_config.seed = 7;
    w->dataset = std::make_shared<data::TrafficDataset>(
        data::GenerateSyntheticWorld(world_config));
    w->normalizer = data::Normalizer::Fit(w->dataset->signals);

    w->config.num_nodes = w->dataset->num_nodes();
    w->config.num_features = w->dataset->num_features();
    w->config.steps_per_day = w->dataset->steps_per_day;
    w->config.input_len = w->config.output_len = kSteps;
    w->config.hidden_dim = 8;
    w->config.num_heads = 2;
    w->config.encoder_blocks = 1;
    w->config.decoder_blocks = 1;
    w->config.patch_len = 4;

    for (int64_t i = 0; i < kBurst; ++i) {
      serving::ForecastRequest request;
      int64_t start = (i * 37) % (w->dataset->num_steps() - 2 * kSteps);
      request.recent = tensor::Slice(w->dataset->signals, 0, start, kSteps);
      request.first_step = start;
      w->requests.push_back(std::move(request));
    }
    return w;
  }();
  return *world;
}

void BM_ServingThroughput(benchmark::State& state) {
  const World& world = SharedWorld();
  // Untrained weights: throughput depends only on the compute graph shape.
  serving::ModelRegistry registry(
      [&world] { return std::make_unique<model_ns::SstbanModel>(world.config); },
      world.normalizer);
  registry.Install(std::make_unique<model_ns::SstbanModel>(world.config));

  serving::ServerOptions options;
  options.input_len = kSteps;
  options.output_len = kSteps;
  options.steps_per_day = world.dataset->steps_per_day;
  options.num_nodes = world.dataset->num_nodes();
  options.num_features = world.dataset->num_features();
  options.max_batch = state.range(0);
  options.max_wait = std::chrono::microseconds(500);
  options.queue_capacity = 2 * kBurst;
  serving::ForecastServer server(options, &registry);
  if (auto status = server.Start(); !status.ok()) {
    state.SkipWithError(status.ToString().c_str());
    return;
  }

  for (auto _ : state) {
    std::vector<serving::ForecastFuture> futures;
    futures.reserve(kBurst);
    for (const serving::ForecastRequest& request : world.requests) {
      auto submitted = server.Submit(request);
      if (!submitted.ok()) {
        state.SkipWithError(submitted.status().ToString().c_str());
        return;
      }
      futures.push_back(std::move(submitted.value()));
    }
    for (serving::ForecastFuture& future : futures) {
      serving::ForecastResult result = future.get();
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
        return;
      }
      benchmark::DoNotOptimize(result.value().forecast.data());
    }
  }

  serving::ServerStats::Snapshot snap = server.stats().TakeSnapshot();
  state.counters["requests_per_second"] = benchmark::Counter(
      static_cast<double>(kBurst), benchmark::Counter::kIsIterationInvariantRate);
  state.counters["p99_ms"] = snap.end_to_end.p99 * 1e3;
  state.counters["mean_batch"] =
      snap.batches > 0
          ? static_cast<double>(snap.completed) / static_cast<double>(snap.batches)
          : 0.0;
  server.Shutdown();
}
BENCHMARK(BM_ServingThroughput)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();

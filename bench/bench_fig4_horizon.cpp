// Reproduces Fig. 4: prediction error as a function of the forecasting
// horizon (per-step MAE / RMSE / MAPE curves) on the 36-step scenarios
// (Seattle-36 speed and PEMS08-36 flow), for the three strongest models
// plus SSTBAN. The paper's finding: every model's error grows with the
// horizon, and SSTBAN's advantage widens as the span extends.

#include <cstdio>
#include <vector>

#include "common/experiment.h"

namespace {

void PrintCurves(const std::vector<sstban::bench::RunResult>& results,
                 int64_t horizon) {
  std::printf("\nper-horizon MAE (columns = forecast step):\n%-10s", "model");
  for (int64_t q = 1; q <= horizon; q += 5) std::printf(" %8lld", static_cast<long long>(q));
  std::printf(" %8s\n", "last");
  for (const auto& result : results) {
    std::printf("%-10s", result.model.c_str());
    for (int64_t q = 0; q < horizon; q += 5) {
      std::printf(" %8.2f", result.per_horizon[q].mae);
    }
    std::printf(" %8.2f\n", result.per_horizon.back().mae);
  }
  std::printf("\ngrowth = MAE(last step) / MAE(first step):\n");
  for (const auto& result : results) {
    std::printf("  %-10s %.2fx\n", result.model.c_str(),
                result.per_horizon.back().mae / result.per_horizon.front().mae);
  }
}

}  // namespace

int main() {
  using namespace sstban::bench;
  PrintHeader("Figure 4 - error vs forecasting horizon (36-step scenarios)");
  const std::vector<std::string> models = {"GMAN", "DMSTGCN", "GWNet", "SSTBAN"};
  for (const std::string& dataset : {std::string("seattle"), std::string("pems08")}) {
    Scenario scenario = MakeScenario(dataset, 36);
    std::printf("\n--- %s ---\n", scenario.name.c_str());
    std::vector<RunResult> results;
    for (const std::string& model : models) {
      results.push_back(RunModel(model, scenario, /*per_horizon=*/true));
      std::printf("trained %s (overall test MAE %.2f)\n", model.c_str(),
                  results.back().test.mae);
      std::fflush(stdout);
    }
    PrintCurves(results, scenario.steps);
  }
  std::printf(
      "\n>> expectation: MAE rises with the horizon for every model (growth "
      "> 1x),\n   reproducing the monotone curves of Fig. 4.\n");
  return 0;
}

// Overload-control bench: goodput and accepted-request p99 versus offered
// load, with admission control ON vs OFF (ABBA arm order per rate, so drift
// on the host cancels instead of biasing one arm).
//
// Method: a `serve_batch_run=delay(...)` failpoint gives every batch a
// deterministic service-time floor, so "capacity" is a property of the
// configuration, not of host noise. Capacity is measured closed-loop; then
// an open-loop Poisson arrival process (latency charged from the *scheduled*
// arrival — no coordinated omission) sweeps {0.5, 1, 2, 3, 5, 8} x capacity.
// Every request carries a deadline; goodput counts only answers delivered
// within it.
//
// The headline rows this bench exists to document:
//   - admission ON at 5x capacity: goodput >= 80% of capacity and accepted
//     p99 <= 3x the uncontended (0.5x) p99 — shedding keeps the server
//     inside its latency budget while serving near its limit;
//   - admission OFF at the same rate: the queue fills, every request ages
//     into its deadline, goodput collapses — the failure mode the
//     controller removes.
//
// Emits one JSON object on stdout; pass a path as argv[1] to also write it
// there (CI snapshots it as bench/BENCH_overload.json).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/check.h"
#include "core/failpoint.h"
#include "core/string_util.h"
#include "data/normalizer.h"
#include "data/synthetic_world.h"
#include "serving/forecast_server.h"
#include "serving/model_registry.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "tensor/ops.h"

namespace {

namespace t = ::sstban::tensor;
namespace data = ::sstban::data;
namespace serving = ::sstban::serving;
namespace core = ::sstban::core;
namespace model_ns = ::sstban::sstban;
using serving::Clock;

constexpr int64_t kSteps = 12;
constexpr int64_t kNodes = 8;
constexpr int64_t kFeatures = 1;
constexpr int64_t kStepsPerDay = 24;
constexpr int64_t kMaxBatch = 4;
constexpr int kBatchDelayMs = 8;  // deterministic service-time floor
constexpr auto kDeadline = std::chrono::milliseconds(150);

struct World {
  std::shared_ptr<data::TrafficDataset> dataset;
  data::Normalizer normalizer;
  model_ns::SstbanConfig config;
  std::vector<t::Tensor> windows;
};

World BuildWorld() {
  World world;
  data::SyntheticWorldConfig world_config;
  world_config.num_nodes = kNodes;
  world_config.num_corridors = 2;
  world_config.steps_per_day = kStepsPerDay;
  world_config.num_days = 4;
  world_config.seed = 17;
  world.dataset = std::make_shared<data::TrafficDataset>(
      data::GenerateSyntheticWorld(world_config));
  world.normalizer = data::Normalizer::Fit(world.dataset->signals);

  world.config.num_nodes = kNodes;
  world.config.input_len = kSteps;
  world.config.output_len = kSteps;
  world.config.num_features = kFeatures;
  world.config.steps_per_day = kStepsPerDay;
  world.config.hidden_dim = 8;
  world.config.num_heads = 2;
  world.config.encoder_blocks = 1;
  world.config.decoder_blocks = 1;
  world.config.patch_len = 4;
  world.config.seed = 9;

  for (int64_t i = 0; i < 32; ++i) {
    const int64_t start = (i * 37) % (world.dataset->num_steps() - 2 * kSteps);
    world.windows.push_back(
        t::Slice(world.dataset->signals, 0, start, kSteps).Clone());
  }
  return world;
}

serving::ServerOptions MakeServerOptions(bool admission) {
  serving::ServerOptions options;
  options.input_len = kSteps;
  options.output_len = kSteps;
  options.steps_per_day = kStepsPerDay;
  options.num_nodes = kNodes;
  options.num_features = kFeatures;
  options.max_batch = kMaxBatch;
  options.max_wait = std::chrono::milliseconds(1);
  options.queue_capacity = 512;  // big enough that ONLY admission sheds
  if (admission) {
    options.overload.admission.initial_limit = 16.0;
    options.overload.admission.min_limit = 4.0;
    options.overload.admission.tolerance = 1.5;
  } else {
    options.overload.DisableAll();
  }
  return options;
}

struct RunReport {
  double offered_rps = 0.0;
  double duration_seconds = 0.0;
  int64_t submitted = 0;
  int64_t accepted = 0;  // Submit returned a future
  int64_t shed = 0;      // Submit refused synchronously
  int64_t good = 0;      // Ok answer delivered within the deadline
  int64_t late_or_failed = 0;
  double goodput_rps = 0.0;
  double accepted_p50 = 0.0, accepted_p99 = 0.0;  // seconds, from arrival

  std::string ToJson(const char* arm) const {
    return core::StrFormat(
        "{\"arm\": \"%s\", \"offered_rps\": %.1f, \"duration_seconds\": %.3f, "
        "\"submitted\": %lld, \"accepted\": %lld, \"shed\": %lld, "
        "\"good\": %lld, \"late_or_failed\": %lld, \"goodput_rps\": %.1f, "
        "\"accepted_p50_ms\": %.2f, \"accepted_p99_ms\": %.2f}",
        arm, offered_rps, duration_seconds, static_cast<long long>(submitted),
        static_cast<long long>(accepted), static_cast<long long>(shed),
        static_cast<long long>(good), static_cast<long long>(late_or_failed),
        goodput_rps, accepted_p50 * 1e3, accepted_p99 * 1e3);
  }
};

double Quantile(std::vector<double>* values, double q) {
  if (values->empty()) return 0.0;
  const size_t idx = static_cast<size_t>(q * (values->size() - 1));
  std::nth_element(values->begin(), values->begin() + idx, values->end());
  return (*values)[idx];
}

// Closed loop at fixed concurrency: the sustainable completion rate IS the
// capacity under the configured service-time floor.
double MeasureCapacity(const World& world) {
  serving::ModelRegistry registry(
      [&world] { return std::make_unique<model_ns::SstbanModel>(world.config); },
      world.normalizer);
  registry.Install(std::make_unique<model_ns::SstbanModel>(world.config));
  serving::ForecastServer server(MakeServerOptions(/*admission=*/true),
                                 &registry);
  if (!server.Start().ok()) return 0.0;

  constexpr int kConcurrency = 8;
  constexpr int kRounds = 40;
  const auto start = Clock::now();
  int64_t completed = 0;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<serving::ForecastFuture> futures;
    for (int i = 0; i < kConcurrency; ++i) {
      serving::ForecastRequest request;
      request.recent = world.windows[(round * kConcurrency + i) %
                                     world.windows.size()];
      request.first_step = 0;
      auto submitted = server.Submit(std::move(request));
      if (submitted.ok()) futures.push_back(std::move(submitted).value());
    }
    for (auto& future : futures) {
      if (future.get().ok()) ++completed;
    }
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  server.Shutdown();
  return seconds > 0.0 ? completed / seconds : 0.0;
}

// One open-loop arm: Poisson arrivals at `rate_rps`, every request with a
// deadline, latencies charged from the scheduled arrival instant.
RunReport RunOpenLoopArm(const World& world, bool admission, double rate_rps,
                         int64_t requests, uint64_t seed) {
  serving::ModelRegistry registry(
      [&world] { return std::make_unique<model_ns::SstbanModel>(world.config); },
      world.normalizer);
  registry.Install(std::make_unique<model_ns::SstbanModel>(world.config));
  serving::ForecastServer server(MakeServerOptions(admission), &registry);
  RunReport report;
  report.offered_rps = rate_rps;
  if (!server.Start().ok()) return report;

  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> gap(rate_rps);
  std::vector<double> offsets(requests);
  double at = 0.0;
  for (int64_t i = 0; i < requests; ++i) {
    at += gap(rng);
    offsets[static_cast<size_t>(i)] = at;
  }

  std::mutex lat_mutex;
  std::vector<double> latencies;  // accepted requests only
  std::atomic<int64_t> good{0}, late_or_failed{0};

  struct InFlight {
    serving::ForecastFuture future;
    Clock::time_point scheduled;
  };
  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<InFlight> in_flight;
  std::atomic<bool> done{false};

  std::vector<std::thread> drains;
  for (int d = 0; d < 8; ++d) {
    drains.emplace_back([&] {
      for (;;) {
        InFlight item;
        {
          std::unique_lock<std::mutex> lock(queue_mutex);
          queue_cv.wait(lock,
                        [&] { return !in_flight.empty() || done.load(); });
          if (in_flight.empty()) return;
          item = std::move(in_flight.front());
          in_flight.pop_front();
        }
        serving::ForecastResult result = item.future.get();
        const double latency =
            std::chrono::duration<double>(Clock::now() - item.scheduled)
                .count();
        {
          std::unique_lock<std::mutex> lock(lat_mutex);
          latencies.push_back(latency);
        }
        const bool within =
            latency <= std::chrono::duration<double>(kDeadline).count();
        if (result.ok() && within) {
          good.fetch_add(1);
        } else {
          late_or_failed.fetch_add(1);
        }
      }
    });
  }

  const Clock::time_point start = Clock::now();
  for (int64_t i = 0; i < requests; ++i) {
    const Clock::time_point scheduled =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(offsets[static_cast<size_t>(i)]));
    std::this_thread::sleep_until(scheduled);
    serving::ForecastRequest request;
    request.recent = world.windows[static_cast<size_t>(i) % world.windows.size()];
    request.first_step = 0;
    request.deadline = scheduled + kDeadline;
    ++report.submitted;
    auto submitted = server.Submit(std::move(request));
    if (!submitted.ok()) {
      ++report.shed;
      continue;
    }
    ++report.accepted;
    {
      std::unique_lock<std::mutex> lock(queue_mutex);
      in_flight.push_back({std::move(submitted).value(), scheduled});
    }
    queue_cv.notify_one();
  }
  // Drain: wait for every accepted future, then stop the workers.
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(queue_mutex);
      if (in_flight.empty()) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  done.store(true);
  queue_cv.notify_all();
  for (std::thread& drain : drains) drain.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  server.Shutdown();

  report.duration_seconds = seconds;
  report.good = good.load();
  report.late_or_failed = late_or_failed.load();
  report.goodput_rps = seconds > 0.0 ? report.good / seconds : 0.0;
  report.accepted_p50 = Quantile(&latencies, 0.50);
  report.accepted_p99 = Quantile(&latencies, 0.99);
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  // The deterministic service-time floor: every batch takes >= kBatchDelayMs,
  // so capacity and the overload multiples mean the same thing on any host.
  SSTBAN_CHECK(core::FailPoint::SetFromList(
                   core::StrFormat("serve_batch_run=delay(%d)", kBatchDelayMs))
                   .ok());

  World world = BuildWorld();
  const double capacity = MeasureCapacity(world);
  std::fprintf(stderr, "capacity (closed loop): %.1f rps\n", capacity);
  if (capacity <= 0.0) {
    std::fprintf(stderr, "FAIL: capacity measurement\n");
    return 1;
  }

  const std::vector<double> multiples = {0.5, 1.0, 2.0, 3.0, 5.0, 8.0};
  std::string sweeps;
  double uncontended_p99 = 0.0;
  double goodput_on_5x = 0.0, p99_on_5x = 0.0;
  double goodput_off_5x = 0.0, p99_off_5x = 0.0;
  for (size_t m = 0; m < multiples.size(); ++m) {
    const double rate = multiples[m] * capacity;
    const int64_t requests = std::max<int64_t>(
        200, static_cast<int64_t>(rate * 2.0));  // >= ~2s per arm
    // ABBA: on, off, off, on — host drift hits both arms symmetrically.
    const bool arm_order[4] = {true, false, false, true};
    RunReport on_total, off_total;
    std::vector<double> on_p99s, off_p99s, on_good, off_good;
    for (int a = 0; a < 4; ++a) {
      const bool admission = arm_order[a];
      RunReport r = RunOpenLoopArm(world, admission, rate, requests,
                                   /*seed=*/101 + 17 * m + a);
      std::fprintf(stderr,
                   "%4.1fx (%6.1f rps) admission=%-3s goodput %6.1f rps  "
                   "shed %5lld  p99 %7.2fms\n",
                   multiples[m], rate, admission ? "on" : "off", r.goodput_rps,
                   static_cast<long long>(r.shed), r.accepted_p99 * 1e3);
      if (!sweeps.empty()) sweeps += ",\n    ";
      sweeps += r.ToJson(admission ? "on" : "off");
      (admission ? on_p99s : off_p99s).push_back(r.accepted_p99);
      (admission ? on_good : off_good).push_back(r.goodput_rps);
    }
    auto mean = [](const std::vector<double>& v) {
      double sum = 0.0;
      for (double x : v) sum += x;
      return v.empty() ? 0.0 : sum / v.size();
    };
    if (multiples[m] == 0.5) uncontended_p99 = mean(on_p99s);
    if (multiples[m] == 5.0) {
      goodput_on_5x = mean(on_good);
      p99_on_5x = mean(on_p99s);
      goodput_off_5x = mean(off_good);
      p99_off_5x = mean(off_p99s);
    }
  }
  sstban::core::FailPoint::ClearAll();

  const bool goodput_gate = goodput_on_5x >= 0.8 * capacity;
  const bool p99_gate =
      uncontended_p99 > 0.0 && p99_on_5x <= 3.0 * uncontended_p99;
  std::string json = core::StrFormat(
      "{\n  \"bench\": \"overload\",\n"
      "  \"batch_delay_ms\": %d,\n  \"deadline_ms\": %lld,\n"
      "  \"capacity_rps\": %.1f,\n  \"uncontended_p99_ms\": %.2f,\n"
      "  \"at_5x\": {\"goodput_on_rps\": %.1f, \"p99_on_ms\": %.2f, "
      "\"goodput_off_rps\": %.1f, \"p99_off_ms\": %.2f},\n"
      "  \"gates\": {\"goodput_on_5x_ge_80pct_capacity\": %s, "
      "\"p99_on_5x_le_3x_uncontended\": %s},\n"
      "  \"sweeps\": [\n    ",
      kBatchDelayMs, static_cast<long long>(kDeadline.count()), capacity,
      uncontended_p99 * 1e3, goodput_on_5x, p99_on_5x * 1e3, goodput_off_5x,
      p99_off_5x * 1e3, goodput_gate ? "true" : "false",
      p99_gate ? "true" : "false");
  json += sweeps;
  json += "\n  ]\n}\n";
  std::fputs(json.c_str(), stdout);
  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << json;
  }

  if (!goodput_gate || !p99_gate) {
    std::fprintf(stderr,
                 "FAIL: gates: goodput_on_5x=%.1f (need >= %.1f), "
                 "p99_on_5x=%.2fms (need <= %.2fms)\n",
                 goodput_on_5x, 0.8 * capacity, p99_on_5x * 1e3,
                 3.0 * uncontended_p99 * 1e3);
    return 1;
  }
  return 0;
}

// Reproduces Table IV: long-term traffic *speed* forecasting on the
// Seattle-Loop-like world at 24 / 36 / 48 steps, comparing SSTBAN against
// the paper's eight baselines. Absolute errors differ from the paper (our
// substrate is a scaled-down synthetic world on CPU; see DESIGN.md §4) —
// the reproduction target is the *ranking shape*: deep models beat HA/VAR
// by a wide margin and SSTBAN is at or near the top, with its advantage
// growing at longer horizons.

#include <cstdio>
#include <vector>

#include "common/experiment.h"

int main() {
  using namespace sstban::bench;
  PrintHeader("Table IV - traffic speed forecasting (Seattle-Loop-like world)");
  for (int64_t steps : {24, 36, 48}) {
    Scenario scenario = MakeScenario("seattle", steps);
    std::printf("\n--- %s: %lld nodes, %zu/%zu/%zu train/val/test windows ---\n",
                scenario.name.c_str(),
                static_cast<long long>(scenario.dataset->num_nodes()),
                scenario.split.train.size(), scenario.split.val.size(),
                scenario.split.test.size());
    PrintComparisonHeader();
    std::vector<RunResult> results;
    for (const std::string& model : TableModelNames()) {
      RunResult result = RunModel(model, scenario);
      PrintComparisonRow(model, result.test, PaperTableValue("seattle", steps, model));
      std::fflush(stdout);
      results.push_back(result);
    }
    PrintRankSummary(results, scenario.name);
  }
  return 0;
}

// Online-adaptation loop characteristics, pinned as a committed snapshot
// (bench/BENCH_online_adaptation.json):
//
//   - steady-state ingest: ns and slices/sec for a clean [N, C] append, with
//     a HARD zero-allocation gate — the live-feed hot path must cost a
//     sanitizer scan plus two memcpys, never a heap round-trip;
//   - windows-to-detect: how many post-shift evaluation windows the CUSUM
//     detector needs to confirm a mild and a strong error-level shift (the
//     hysteresis/recall trade the default thresholds buy);
//   - steps-to-recover: label-free fine-tuning steps until the masked-
//     reconstruction loss halves on a fresh model (the adaptation round's
//     convergence speed at the bench scale).
//
// Exits nonzero when the ingest path heap-allocates or a detection scenario
// fails to confirm. Latencies are reported, not gated — CI boxes are noisy;
// allocations and detection counts are deterministic. Emits one JSON object
// on stdout; pass a path as argv[1] to also write it there.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <new>
#include <vector>

#include "core/rng.h"
#include "data/dataset.h"
#include "data/normalizer.h"
#include "data/synthetic_world.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "streaming/drift_detector.h"
#include "streaming/online_adapter.h"
#include "streaming/stream_ingestor.h"
#include "tensor/tensor.h"

// -- Counting allocator ------------------------------------------------------
// Counts every heap allocation made while g_counting is set (same idiom as
// bench_resilience: the tensor-layer MemoryTracker cannot see std::string /
// std::vector allocations, a raw global operator new can).

namespace {
std::atomic<bool> g_counting{false};
std::atomic<long long> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               (size + static_cast<std::size_t>(align) - 1) &
                                   ~(static_cast<std::size_t>(align) - 1));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

namespace core = ::sstban::core;
namespace data = ::sstban::data;
namespace streaming = ::sstban::streaming;
namespace t = ::sstban::tensor;
namespace model_ns = ::sstban::sstban;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Post-shift evaluation windows until the detector confirms drift against a
// baseline it learned at error level `base`; -1 if `limit` windows pass
// without confirmation.
int64_t WindowsToDetect(double base, double shifted, uint64_t seed,
                        int64_t limit) {
  streaming::DriftDetector detector((streaming::DriftDetectorOptions()));
  core::Rng rng(seed);
  // Warmup plus a stable stretch, so the baseline is the frozen one the
  // controller would actually be comparing against.
  for (int i = 0; i < 48; ++i) {
    detector.Observe(0, base + 0.05 * base * rng.NextGaussian());
  }
  if (detector.state(0) != streaming::DriftState::kStable) return -1;
  for (int64_t i = 1; i <= limit; ++i) {
    auto state = detector.Observe(0, shifted + 0.05 * base * rng.NextGaussian());
    if (state == streaming::DriftState::kDrift) return i;
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  // 1. Steady-state ingest: clean slices at serving scale (32 sensors, 3
  //    features), ring warm, sanitizer scanning every value.
  streaming::StreamIngestorOptions ingest_options;
  ingest_options.num_nodes = 32;
  ingest_options.num_features = 3;
  ingest_options.input_len = 12;
  ingest_options.output_len = 12;
  ingest_options.steps_per_day = 96;
  ingest_options.sanitizer.degradable_channels = {0};
  streaming::StreamIngestor ingestor(ingest_options);
  t::Tensor slice = t::Tensor::Ones(t::Shape{32, 3});
  int64_t step = 0;
  for (; step < 512; ++step) {  // fill and wrap the ring before measuring
    if (!ingestor.Append(slice, step).ok()) {
      std::fprintf(stderr, "FAIL: warmup append rejected\n");
      return 1;
    }
  }
  constexpr long long kIngestIters = 200'000;
  g_allocs.store(0);
  g_counting.store(true);
  double start = NowSeconds();
  for (long long i = 0; i < kIngestIters; ++i) {
    if (!ingestor.Append(slice, step++).ok()) {
      g_counting.store(false);
      std::fprintf(stderr, "FAIL: steady-state append rejected\n");
      return 1;
    }
  }
  double ingest_elapsed = NowSeconds() - start;
  g_counting.store(false);
  const long long ingest_allocs = g_allocs.load();
  const double ingest_ns = ingest_elapsed * 1e9 / kIngestIters;
  const double ingest_rate = kIngestIters / ingest_elapsed;

  // 2. Windows-to-detect at the production detector defaults.
  const int64_t detect_mild = WindowsToDetect(1.0, 1.3, 11, 512);
  const int64_t detect_strong = WindowsToDetect(1.0, 2.0, 11, 512);

  // 3. Steps-to-recover: fresh tiny model, one adaptation round on a seeded
  //    synthetic world; first step at which the SSL loss halved.
  data::SyntheticWorldConfig world;
  world.num_nodes = 8;
  world.num_corridors = 2;
  world.steps_per_day = 24;
  world.num_days = 4;
  world.seed = 71;
  auto dataset = std::make_shared<data::TrafficDataset>(
      data::GenerateSyntheticWorld(world));
  data::WindowDataset windows(dataset, 12, 12);
  data::Normalizer normalizer = data::Normalizer::Fit(dataset->signals);
  std::vector<int64_t> indices;
  for (int64_t i = 0; i < 32; ++i) indices.push_back(i);

  model_ns::SstbanConfig model_config;
  model_config.num_nodes = 8;
  model_config.input_len = 12;
  model_config.output_len = 12;
  model_config.num_features = 1;
  model_config.steps_per_day = 24;
  model_config.hidden_dim = 8;
  model_config.num_heads = 2;
  model_config.encoder_blocks = 1;
  model_config.decoder_blocks = 1;
  model_config.patch_len = 3;
  model_config.seed = 71;
  model_ns::SstbanModel model(model_config);

  streaming::OnlineAdapterOptions adapt_options;
  adapt_options.num_steps = 24;
  adapt_options.batch_size = 8;
  streaming::OnlineAdapter adapter(adapt_options);
  start = NowSeconds();
  auto report = adapter.Adapt(&model, windows, indices, normalizer);
  const double adapt_elapsed = NowSeconds() - start;
  if (!report.ok()) {
    std::fprintf(stderr, "FAIL: adaptation round: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  const std::vector<double>& losses = report.value().step_loss;
  int64_t steps_to_halve = -1;
  for (size_t i = 0; i < losses.size(); ++i) {
    if (losses[i] <= 0.5 * losses.front()) {
      steps_to_halve = static_cast<int64_t>(i) + 1;
      break;
    }
  }
  const double adapt_ms_per_step =
      adapt_elapsed * 1e3 / static_cast<double>(losses.size());

  char buf[1536];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"bench\": \"online_adaptation\",\n"
      "  \"ingest_clean_32x3\": {\"ns_per_slice\": %.2f, "
      "\"slices_per_sec\": %.0f, \"allocs\": %lld},\n"
      "  \"windows_to_detect\": {\"shift_1.3x\": %lld, \"shift_2.0x\": "
      "%lld},\n"
      "  \"adapt_round\": {\"steps\": %zu, \"first_loss\": %.4f, "
      "\"last_loss\": %.4f, \"steps_to_halve_loss\": %lld, "
      "\"ms_per_step\": %.2f}\n"
      "}\n",
      ingest_ns, ingest_rate, ingest_allocs,
      static_cast<long long>(detect_mild),
      static_cast<long long>(detect_strong), losses.size(), losses.front(),
      losses.back(), static_cast<long long>(steps_to_halve),
      adapt_ms_per_step);
  std::fputs(buf, stdout);
  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << buf;
  }

  bool failed = false;
  if (ingest_allocs != 0) {
    std::fprintf(stderr,
                 "FAIL: steady-state ingest heap-allocated %lld times "
                 "(want 0)\n",
                 ingest_allocs);
    failed = true;
  }
  if (detect_mild < 0 || detect_strong < 0) {
    std::fprintf(stderr, "FAIL: a sustained shift went undetected\n");
    failed = true;
  }
  if (detect_strong > detect_mild) {
    std::fprintf(stderr,
                 "FAIL: the stronger shift took longer to detect "
                 "(%lld > %lld windows)\n",
                 static_cast<long long>(detect_strong),
                 static_cast<long long>(detect_mild));
    failed = true;
  }
  return failed ? 1 : 0;
}

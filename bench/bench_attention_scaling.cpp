// Micro-benchmark for the paper's §V-D5 complexity claim: bottleneck
// attention is O(L * R) in the sequence length L (R fixed reference
// points), while full self-attention is O(L^2). Built on google-benchmark;
// the per-iteration time of BottleneckAttention should grow ~linearly with
// L while FullSelfAttention grows ~quadratically, and the same holds along
// the node axis. This is the hardware-neutral half of Table VII.

#include <benchmark/benchmark.h>

#include "autograd/ops.h"
#include "core/memory_tracker.h"
#include "core/rng.h"
#include "sstban/bottleneck_attention.h"

namespace {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;
using sstban::sstban::BottleneckAttention;
using sstban::sstban::FullSelfAttention;

constexpr int64_t kDim = 16;
constexpr int64_t kHeads = 4;
constexpr int64_t kRefs = 3;

// Attaches roofline-style counters: attention GFLOP/s (rate) and best-case
// bytes/FLOP of the score GEMMs, so the scaling curves can be read against
// the machine's compute/bandwidth balance. `madds` counts the two attention
// GEMMs (scores + context); projections are the same on both paths.
void SetRooflineCounters(benchmark::State& state, double madds,
                         double tensor_bytes) {
  state.counters["GFLOP/s"] = benchmark::Counter(
      2.0 * madds * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
  state.counters["bytes/FLOP"] = tensor_bytes / (2.0 * madds);
}

void BM_BottleneckForward(benchmark::State& state) {
  int64_t len = state.range(0);
  sstban::core::Rng rng(1);
  BottleneckAttention attn(kDim, kDim, kRefs, kHeads, rng);
  ag::Variable x(t::Tensor::RandomNormal(t::Shape{1, len, kDim}, rng));
  ag::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.Forward(x).value().data());
  }
  state.SetComplexityN(len);
  // Bottleneck: L x R scores both directions, per head (dk = kDim / kHeads).
  double madds = 2.0 * kHeads * len * kRefs * (kDim / kHeads) * 2.0;
  double bytes = sizeof(float) * (2.0 * len * kDim + 2.0 * kRefs * kDim);
  SetRooflineCounters(state, madds, bytes);
}
BENCHMARK(BM_BottleneckForward)->RangeMultiplier(2)->Range(32, 512)->Complexity();

void BM_FullAttentionForward(benchmark::State& state) {
  int64_t len = state.range(0);
  sstban::core::Rng rng(1);
  FullSelfAttention attn(kDim, kDim, kHeads, rng);
  ag::Variable x(t::Tensor::RandomNormal(t::Shape{1, len, kDim}, rng));
  ag::NoGradGuard no_grad;
  for (auto _ : state) {
    benchmark::DoNotOptimize(attn.Forward(x).value().data());
  }
  state.SetComplexityN(len);
  // Full self-attention: L x L scores + context, per head.
  double madds = kHeads * (double)len * len * (kDim / kHeads) * 2.0;
  double bytes = sizeof(float) * (3.0 * len * kDim);
  SetRooflineCounters(state, madds, bytes);
}
BENCHMARK(BM_FullAttentionForward)->RangeMultiplier(2)->Range(32, 512)->Complexity();

void BM_BottleneckTrainStep(benchmark::State& state) {
  int64_t len = state.range(0);
  sstban::core::Rng rng(2);
  BottleneckAttention attn(kDim, kDim, kRefs, kHeads, rng);
  ag::Variable x(t::Tensor::RandomNormal(t::Shape{1, len, kDim}, rng));
  for (auto _ : state) {
    ag::Variable loss = ag::MeanAll(ag::Square(attn.Forward(x)));
    attn.ZeroGrad();
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
  state.SetComplexityN(len);
}
BENCHMARK(BM_BottleneckTrainStep)->RangeMultiplier(2)->Range(32, 256)->Complexity();

void BM_FullAttentionTrainStep(benchmark::State& state) {
  int64_t len = state.range(0);
  sstban::core::Rng rng(2);
  FullSelfAttention attn(kDim, kDim, kHeads, rng);
  ag::Variable x(t::Tensor::RandomNormal(t::Shape{1, len, kDim}, rng));
  for (auto _ : state) {
    ag::Variable loss = ag::MeanAll(ag::Square(attn.Forward(x)));
    attn.ZeroGrad();
    loss.Backward();
    benchmark::DoNotOptimize(loss.item());
  }
  state.SetComplexityN(len);
}
BENCHMARK(BM_FullAttentionTrainStep)->RangeMultiplier(2)->Range(32, 256)->Complexity();

// Peak live tensor memory of one forward pass, reported as a counter — the
// "w/o STBA runs out of memory" half of the Table VI story.
void BM_BottleneckPeakMemory(benchmark::State& state) {
  int64_t len = state.range(0);
  sstban::core::Rng rng(3);
  BottleneckAttention attn(kDim, kDim, kRefs, kHeads, rng);
  ag::Variable x(t::Tensor::RandomNormal(t::Shape{1, len, kDim}, rng));
  int64_t peak = 0;
  for (auto _ : state) {
    sstban::core::MemoryTracker::Global().ResetPeak();
    ag::Variable y = attn.Forward(x);
    benchmark::DoNotOptimize(y.value().data());
    peak = sstban::core::MemoryTracker::Global().peak_bytes();
  }
  state.counters["peak_MB"] = static_cast<double>(peak) / 1e6;
}
BENCHMARK(BM_BottleneckPeakMemory)->Arg(128)->Arg(512)->Arg(2048);

void BM_FullAttentionPeakMemory(benchmark::State& state) {
  int64_t len = state.range(0);
  sstban::core::Rng rng(3);
  FullSelfAttention attn(kDim, kDim, kHeads, rng);
  ag::Variable x(t::Tensor::RandomNormal(t::Shape{1, len, kDim}, rng));
  int64_t peak = 0;
  for (auto _ : state) {
    sstban::core::MemoryTracker::Global().ResetPeak();
    ag::Variable y = attn.Forward(x);
    benchmark::DoNotOptimize(y.value().data());
    peak = sstban::core::MemoryTracker::Global().peak_bytes();
  }
  state.counters["peak_MB"] = static_cast<double>(peak) / 1e6;
}
BENCHMARK(BM_FullAttentionPeakMemory)->Arg(128)->Arg(512)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();

// Extension experiment (motivated by the paper's §I discussion): *how* to
// integrate self-supervision. The paper argues traffic data has few
// universal cross-dataset patterns, so it rejects the NLP/CV pre-training
// paradigm in favor of multi-task learning. This bench makes that design
// decision measurable on one scenario under a matched epoch budget:
//
//   (a) multi-task     — the paper's joint (1-lambda)*MAE + lambda*MSE
//   (b) pretrain+tune  — reconstruction-only (lambda = 1) for the first
//                        half of the budget, forecasting-only thereafter
//   (c) no SSL         — forecasting-only for the whole budget

#include <cstdio>
#include <memory>

#include "common/experiment.h"
#include "data/normalizer.h"
#include "optim/optimizer.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "training/trainer.h"

namespace {

using sstban::bench::Scenario;

sstban::sstban::SstbanConfig BaseConfig(const Scenario& scenario) {
  sstban::sstban::SstbanConfig config =
      sstban::sstban::TableIiiConfig(scenario.name);
  config.num_nodes = scenario.dataset->num_nodes();
  config.num_features = scenario.dataset->num_features();
  config.steps_per_day = scenario.dataset->steps_per_day;
  return config;
}

sstban::training::TrainerConfig TrainerFor(int epochs) {
  sstban::training::TrainerConfig config;
  config.max_epochs = epochs;
  config.batch_size = 8;
  config.learning_rate = 5e-3f;
  return config;
}

double Eval(sstban::sstban::SstbanModel* model, const Scenario& scenario) {
  return sstban::training::Evaluate(model, *scenario.windows,
                                    scenario.split.test, scenario.normalizer, 8)
      .overall.mae;
}

}  // namespace

int main() {
  using namespace sstban::bench;
  PrintHeader("Extension - self-supervision integration mode (PEMS08-24)");
  Scenario scenario = MakeScenario("pems08", 24);
  const int kBudget = 6;  // total epochs per mode

  // (a) multi-task (the paper's choice).
  {
    sstban::sstban::SstbanModel model(BaseConfig(scenario));
    sstban::training::Trainer trainer(TrainerFor(kBudget));
    trainer.Train(&model, *scenario.windows, scenario.split, scenario.normalizer);
    std::printf("multi-task (paper)      : test MAE %.2f\n", Eval(&model, scenario));
    std::fflush(stdout);
  }

  // (b) pre-train the reconstruction objective, then fine-tune forecasting.
  {
    sstban::sstban::SstbanModel model(BaseConfig(scenario));
    model.set_lambda(1.0);  // reconstruction-only phase
    sstban::training::TrainerConfig pre = TrainerFor(kBudget / 2);
    pre.patience = kBudget;  // validation forecasting MAE is meaningless here
    sstban::training::Trainer pretrainer(pre);
    pretrainer.Train(&model, *scenario.windows, scenario.split,
                     scenario.normalizer);
    model.set_lambda(0.0);  // forecasting-only fine-tuning
    sstban::training::Trainer finetuner(TrainerFor(kBudget - kBudget / 2));
    finetuner.Train(&model, *scenario.windows, scenario.split,
                    scenario.normalizer);
    std::printf("pretrain then fine-tune : test MAE %.2f\n", Eval(&model, scenario));
    std::fflush(stdout);
  }

  // (c) no self-supervision at all.
  {
    sstban::sstban::SstbanConfig config = BaseConfig(scenario);
    config.self_supervised = false;
    sstban::sstban::SstbanModel model(config);
    sstban::training::Trainer trainer(TrainerFor(kBudget));
    trainer.Train(&model, *scenario.windows, scenario.split, scenario.normalizer);
    std::printf("no self-supervision     : test MAE %.2f\n", Eval(&model, scenario));
  }

  std::printf(
      "\n>> the paper's §I argument predicts (a) <= (c) < (b): multi-task "
      "integration\n   helps, while spending half the budget on pure "
      "reconstruction (pre-training)\n   does not transfer as well on "
      "single-dataset traffic.\n");
  return 0;
}

// Reproduces Fig. 6: robustness to corrupted training data. Gaussian noise
// (the paper uses mean 10, std 500 on the flow scale) is added to 10%, 30%
// and 90% of the *training* inputs while validation/test stay clean, and
// SSTBAN / GMAN / DMSTGCN are retrained on each corrupted copy. The paper's
// finding: SSTBAN stays the most accurate at every corruption level —
// the denoising character of masked reconstruction buys robustness.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/experiment.h"
#include "data/corruption.h"

int main() {
  using namespace sstban::bench;
  PrintHeader("Figure 6 - robustness to noisy training data");
  const std::vector<std::string> models = {"SSTBAN", "GMAN", "DMSTGCN"};
  const std::vector<double> fractions = {0.1, 0.3, 0.9};
  Scenario clean = MakeScenario("pems08", 36);
  // Noise is injected only into the time range training windows can read.
  int64_t train_end = clean.split.train.back() + clean.steps;

  std::printf("\n--- %s, noise N(10, 500) on a fraction of training inputs ---\n",
              clean.name.c_str());
  std::printf("%-10s %12s", "model", "clean");
  for (double f : fractions) std::printf(" %11.0f%%", 100 * f);
  std::printf("   (test MAE)\n");
  for (const std::string& model : models) {
    std::printf("%-10s", model.c_str());
    RunResult base = RunModel(model, clean);
    std::printf(" %12.2f", base.test.mae);
    std::fflush(stdout);
    for (double fraction : fractions) {
      Scenario noisy = clean;
      noisy.dataset = std::make_shared<sstban::data::TrafficDataset>(
          sstban::data::AddGaussianNoise(*clean.dataset, fraction, 10.0f, 500.0f,
                                         0, train_end, /*seed=*/555));
      noisy.windows = std::make_shared<sstban::data::WindowDataset>(
          noisy.dataset, clean.steps, clean.steps);
      RunResult result = RunModel(model, noisy);
      std::printf(" %12.2f", result.test.mae);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "\n>> expectation: all models degrade as more inputs are corrupted; "
      "SSTBAN degrades\n   the least and stays best at every noise level "
      "(Fig. 6).\n");
  return 0;
}

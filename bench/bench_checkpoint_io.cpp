// Checkpoint I/O and failpoint-overhead benchmark. Quantifies the two costs
// the crash-safety work must not introduce:
//
//   1. The inactive-failpoint tax: SSTBAN_FAILPOINT compiles into the I/O
//      hot spots, so its disarmed cost (one relaxed atomic load) must stay
//      in the single-nanosecond range. Armed-but-other-name cost (registry
//      lookup under a mutex) is reported for contrast.
//   2. Atomic checkpointing throughput: SaveParameters/LoadParameters with
//      the CRC32 footer, and the full TrainCheckpoint record round trip —
//      temp file + fsync + rename included.
//
// Emits a single JSON object on stdout; pass a path as argv[1] to also
// write it there. Exits nonzero if the disarmed failpoint costs more than
// 50 ns/op — generous enough for a noisy shared box, tight enough to catch
// an accidental mutex or map lookup on the fast path.

#include <chrono>
#include <cstdio>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/failpoint.h"
#include "core/rng.h"
#include "core/status.h"
#include "nn/mlp.h"
#include "nn/serialization.h"
#include "tensor/tensor.h"
#include "training/checkpoint.h"

namespace {

namespace core = ::sstban::core;
namespace nn = ::sstban::nn;
namespace t = ::sstban::tensor;
namespace training = ::sstban::training;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// noinline so the failpoint check cannot be hoisted out of the timing loop.
__attribute__((noinline)) core::Status HitBenchPoint() {
  SSTBAN_FAILPOINT("bench_checkpoint_io_point");
  return core::Status::Ok();
}

double MeasureHitNs(int64_t iters) {
  int64_t ok = 0;
  double start = NowSeconds();
  for (int64_t i = 0; i < iters; ++i) ok += HitBenchPoint().ok() ? 1 : 0;
  double elapsed = NowSeconds() - start;
  if (ok != iters) std::abort();  // defeat dead-code elimination
  return elapsed / static_cast<double>(iters) * 1e9;
}

training::TrainCheckpoint MakeTrainState(core::Rng& rng, int64_t dim) {
  training::TrainCheckpoint state;
  state.next_epoch = 3;
  state.global_step = 300;
  state.shuffle_rng = rng.SaveState();
  state.best_val = 1.25;
  state.early_best = 1.25f;
  state.early_stale = 1;
  state.epoch_train_loss = {2.0, 1.5, 1.25};
  for (int64_t i = 0; i < 256; ++i) state.order.push_back(i);
  for (int i = 0; i < 8; ++i) {
    t::Tensor w = t::Tensor::RandomNormal(t::Shape{dim, dim}, rng);
    state.params.emplace_back("layer" + std::to_string(i) + ".w", w);
    state.adam_m.push_back(t::Tensor::Zeros(t::Shape{dim, dim}));
    state.adam_v.push_back(t::Tensor::Zeros(t::Shape{dim, dim}));
    state.best_params.push_back(w);
  }
  state.adam_step = 300;
  return state;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr int64_t kHitIters = 2'000'000;
  constexpr int kIoIters = 40;

  // -- Failpoint tax --------------------------------------------------------
  core::FailPoint::ClearAll();
  double disarmed_ns = MeasureHitNs(kHitIters);
  // Arm an unrelated point: the hit now takes the slow path (registry
  // lookup) even though this point never fires.
  if (!core::FailPoint::Set("bench_other_point", "delay(0)@1").ok()) return 2;
  double armed_other_ns = MeasureHitNs(kHitIters / 10);
  core::FailPoint::ClearAll();

  // -- Parameter checkpoint (CRC32 + atomic replace) ------------------------
  std::string dir = std::filesystem::temp_directory_path().string() +
                    "/bench_checkpoint_io";
  std::filesystem::create_directories(dir);
  core::Rng rng(99);
  nn::Mlp model({256, 256, 256}, rng);
  std::string weights = dir + "/weights.bin";
  double start = NowSeconds();
  for (int i = 0; i < kIoIters; ++i) {
    if (!nn::SaveParameters(model, weights).ok()) return 2;
  }
  double save_ms = (NowSeconds() - start) / kIoIters * 1e3;
  start = NowSeconds();
  for (int i = 0; i < kIoIters; ++i) {
    if (!nn::LoadParameters(&model, weights).ok()) return 2;
  }
  double load_ms = (NowSeconds() - start) / kIoIters * 1e3;
  int64_t weights_bytes =
      static_cast<int64_t>(std::filesystem::file_size(weights));

  // -- TrainCheckpoint record ----------------------------------------------
  training::TrainCheckpoint state = MakeTrainState(rng, 128);
  std::string train_path = dir + "/" + training::TrainCheckpointFileName(3);
  start = NowSeconds();
  for (int i = 0; i < kIoIters; ++i) {
    if (!training::SaveTrainCheckpoint(train_path, state).ok()) return 2;
  }
  double train_save_ms = (NowSeconds() - start) / kIoIters * 1e3;
  training::TrainCheckpoint loaded;
  start = NowSeconds();
  for (int i = 0; i < kIoIters; ++i) {
    if (!training::LoadTrainCheckpoint(train_path, &loaded).ok()) return 2;
  }
  double train_load_ms = (NowSeconds() - start) / kIoIters * 1e3;
  int64_t train_bytes =
      static_cast<int64_t>(std::filesystem::file_size(train_path));
  std::filesystem::remove_all(dir);

  std::string json =
      "{\n"
      "  \"bench\": \"checkpoint_io\",\n"
      "  \"failpoint_disarmed_ns\": " + std::to_string(disarmed_ns) + ",\n"
      "  \"failpoint_armed_other_ns\": " + std::to_string(armed_other_ns) +
      ",\n"
      "  \"weights_bytes\": " + std::to_string(weights_bytes) + ",\n"
      "  \"weights_save_ms\": " + std::to_string(save_ms) + ",\n"
      "  \"weights_load_ms\": " + std::to_string(load_ms) + ",\n"
      "  \"train_ckpt_bytes\": " + std::to_string(train_bytes) + ",\n"
      "  \"train_ckpt_save_ms\": " + std::to_string(train_save_ms) + ",\n"
      "  \"train_ckpt_load_ms\": " + std::to_string(train_load_ms) + "\n"
      "}\n";
  std::fputs(json.c_str(), stdout);
  if (argc > 1) std::ofstream(argv[1]) << json;

  if (disarmed_ns > 50.0) {
    std::fprintf(stderr,
                 "FAIL: disarmed failpoint costs %.1f ns/op (budget 50) — "
                 "the inactive path must stay a single relaxed atomic load\n",
                 disarmed_ns);
    return 1;
  }
  return 0;
}

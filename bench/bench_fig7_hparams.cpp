// Reproduces Fig. 7: sensitivity to network configuration — hidden size d,
// number of STBA blocks L, attention heads h, reference points T'/N', the
// self-supervised weight lambda, and patch length l_m — on the PEMS08-36
// scenario. The paper's findings: moderate d/L help, few reference points
// are enough (3 beats larger counts while also being faster), and both
// lambda and l_m have broad sweet spots.

#include <cstdio>
#include <vector>

#include "common/experiment.h"
#include "data/normalizer.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "training/trainer.h"

namespace {

using sstban::bench::Scenario;

double RunConfig(const Scenario& scenario, const sstban::sstban::SstbanConfig& config) {
  sstban::sstban::SstbanModel model(config);
  sstban::training::TrainerConfig trainer_config;
  trainer_config.max_epochs = 3;
  trainer_config.batch_size = 8;
  trainer_config.learning_rate = 5e-3f;
  trainer_config.target_feature = scenario.target_feature;
  sstban::training::Trainer trainer(trainer_config);
  trainer.Train(&model, *scenario.windows, scenario.split, scenario.normalizer);
  sstban::training::EvalResult eval = sstban::training::Evaluate(
      &model, *scenario.windows, scenario.split.test, scenario.normalizer, 8,
      false, scenario.target_feature);
  return eval.overall.mae;
}

}  // namespace

int main() {
  using namespace sstban::bench;
  PrintHeader("Figure 7 - hyper-parameter sensitivity (PEMS08-36 scenario)");
  Scenario scenario = MakeScenario("pems08", 36);
  sstban::sstban::SstbanConfig base = sstban::sstban::TableIiiConfig("pems08-36");
  base.num_nodes = scenario.dataset->num_nodes();
  base.num_features = scenario.dataset->num_features();
  base.steps_per_day = scenario.dataset->steps_per_day;
  // Keep the sweep affordable: trim the non-swept depth slightly.
  base.encoder_blocks = base.decoder_blocks = 2;

  auto sweep = [&](const char* param, const std::vector<double>& values,
                   auto apply) {
    std::printf("\n%s sweep:\n", param);
    for (double value : values) {
      sstban::sstban::SstbanConfig config = base;
      apply(config, value);
      double mae = RunConfig(scenario, config);
      std::printf("  %-6s = %-6g ->  test MAE %.2f\n", param, value, mae);
      std::fflush(stdout);
    }
  };

  sweep("d", {8, 16, 32}, [](auto& c, double v) { c.hidden_dim = static_cast<int64_t>(v); });
  sweep("L", {1, 2, 3}, [](auto& c, double v) {
    c.encoder_blocks = c.decoder_blocks = static_cast<int64_t>(v);
  });
  sweep("h", {2, 4, 8}, [](auto& c, double v) { c.num_heads = static_cast<int64_t>(v); });
  sweep("T'/N'", {2, 3, 6, 12}, [](auto& c, double v) {
    c.temporal_refs = c.spatial_refs = static_cast<int64_t>(v);
  });
  sweep("lambda", {0.05, 0.3, 0.8}, [](auto& c, double v) { c.lambda = v; });
  sweep("l_m", {3, 12, 24}, [](auto& c, double v) { c.patch_len = static_cast<int64_t>(v); });

  std::printf(
      "\n>> expectation (Fig. 7): accuracy is not very sensitive to any "
      "single knob; a\n   small number of reference points (3) is already "
      "sufficient — large T'/N' buys\n   no accuracy while costing compute.\n");
  return 0;
}

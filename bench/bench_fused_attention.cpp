// Fused-attention + reduced-precision serving benchmark (ISSUE 8):
//
//   1. Kernel level: the fused softmax(scale*QK^T+mask)V streaming pass vs
//      the unfused Bmm/MulScalar/Softmax/Bmm chain at attention shapes,
//      with GFLOP/s and the score-tensor bytes/FLOP the fusion eliminates.
//   2. End-to-end: the static executor's serving forward with the fused
//      OpKind peephole on vs off (two identically-seeded models). Gate:
//      fused must be >= 20% faster (min-of-K) on the attention-heavy config.
//   3. Reduced precision: fp32 vs bf16 vs int8 executor forwards on a
//      synthetic validation split — int8 calibrated on held-out batches
//      first — reporting per-mode latency and the relative accuracy delta.
//      Gate: int8 relative MAE vs the fp32 forward stays under 10%, bf16
//      under 5% (both far above observed drift; they catch quantizer bugs,
//      not rounding).
//
// Emits JSON on stdout (snapshot: bench/BENCH_fused_attention.json); pass a
// path as argv[1] to also write it. Exits nonzero when a gate fails.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "autograd/variable.h"
#include "common/timing.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "data/dataset.h"
#include "exec/engine.h"
#include "exec/precision.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "tensor/fused_attention.h"
#include "tensor/matmul.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "training/forecast_service.h"

namespace {

namespace t = ::sstban::tensor;
using sstban::bench::MeasureSeconds;
using sstban::bench::Timing;
using sstban::sstban::SstbanConfig;
using sstban::sstban::SstbanModel;

// Attention-heavy serving config: full spatial self-attention over the
// PEMS03 sensor count, so the [B*h*T', N, N] score tensors the fusion
// eliminates (6 MB per slot at N=307) dominate the forward.
SstbanConfig BenchConfig() {
  SstbanConfig c;
  c.num_nodes = 307;
  c.input_len = 12;
  c.output_len = 12;
  c.num_features = 1;
  c.steps_per_day = 96;
  c.hidden_dim = 16;
  c.num_heads = 4;
  c.encoder_blocks = 2;
  c.decoder_blocks = 1;
  c.temporal_refs = 4;
  c.spatial_refs = 4;
  c.patch_len = 3;
  c.use_bottleneck = false;  // full attention: the fusion's stress case
  c.spatial_mixing = true;
  c.self_supervised = false;
  c.seed = 5;
  return c;
}

sstban::data::Batch MakeBatch(const SstbanConfig& c, int64_t batch_size,
                              uint64_t seed) {
  sstban::core::Rng rng(seed);
  sstban::data::Batch batch;
  batch.x = t::Tensor::RandomUniform(
      t::Shape{batch_size, c.input_len, c.num_nodes, c.num_features}, rng,
      -1.5f, 1.5f);
  batch.y = t::Tensor::Zeros(
      t::Shape{batch_size, c.output_len, c.num_nodes, c.num_features});
  for (int64_t i = 0; i < batch_size; ++i) {
    sstban::training::AppendCalendarFeatures(
        /*first_step=*/7 + 11 * i, c.input_len, c.output_len, c.steps_per_day,
        &batch);
  }
  return batch;
}

double RelativeMae(const t::Tensor& ref, const t::Tensor& got) {
  double err = 0.0, mag = 0.0;
  for (int64_t i = 0; i < ref.size(); ++i) {
    err += std::fabs(static_cast<double>(ref.data()[i]) - got.data()[i]);
    mag += std::fabs(static_cast<double>(ref.data()[i]));
  }
  return mag > 0.0 ? err / mag : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::ostringstream json;
  json << "{\n  \"bench\": \"fused_attention\",\n";
  bool failed = false;

  // --- 1. Kernel level: fused vs unfused chain. ---
  {
    sstban::core::Rng rng(11);
    const int64_t batch = 96, lq = 96, lk = 96, dk = 8;
    t::Tensor q = t::Tensor::RandomNormal(t::Shape{batch, lq, dk}, rng);
    t::Tensor k = t::Tensor::RandomNormal(t::Shape{batch, lk, dk}, rng);
    t::Tensor v = t::Tensor::RandomNormal(t::Shape{batch, lk, dk}, rng);
    const float scale = 1.0f / std::sqrt(static_cast<float>(dk));
    t::Tensor out = t::Tensor::Empty(t::Shape{batch, lq, dk});

    Timing fused_t = MeasureSeconds([&] {
      t::FusedAttentionInto(q.data(), k.data(), v.data(), nullptr, 1,
                            out.data(), batch, lq, lk, dk, scale);
    });
    Timing unfused_t = MeasureSeconds([&] {
      t::Bmm(t::Softmax(t::MulScalar(t::Bmm(q, k, false, true), scale)), v,
             false, false);
    });
    // 2 GEMMs; softmax flops ignored (they are identical on both paths).
    const double flops = 2.0 * batch * lq * lk * dk * 2.0;
    // Score-tensor memory traffic the fusion removes: the unfused chain
    // writes+reads the [batch, lq, lk] scores across 4 passes.
    const double score_bytes = 4.0 * batch * lq * lk * sizeof(float);
    double speedup = unfused_t.min_s / fused_t.min_s;
    std::printf("kernel [%lldx%lldx%lld dk=%lld]: fused %.3f ms (%.2f GF/s), "
                "unfused %.3f ms, speedup %.2fx, score bytes/FLOP %.4f\n",
                static_cast<long long>(batch), static_cast<long long>(lq),
                static_cast<long long>(lk), static_cast<long long>(dk),
                fused_t.min_s * 1e3, flops / fused_t.min_s * 1e-9,
                unfused_t.min_s * 1e3, speedup, score_bytes / flops);
    char row[512];
    std::snprintf(row, sizeof(row),
                  "  \"kernel\": {\"batch\": %lld, \"lq\": %lld, \"lk\": %lld, "
                  "\"dk\": %lld, \"fused_ms_min\": %.3f, \"fused_ms_mean\": %.3f, "
                  "\"unfused_ms_min\": %.3f, \"unfused_ms_mean\": %.3f, "
                  "\"fused_gflops\": %.2f, \"speedup\": %.2f, "
                  "\"score_bytes_per_flop\": %.4f},\n",
                  static_cast<long long>(batch), static_cast<long long>(lq),
                  static_cast<long long>(lk), static_cast<long long>(dk),
                  fused_t.min_s * 1e3, fused_t.mean_s * 1e3,
                  unfused_t.min_s * 1e3, unfused_t.mean_s * 1e3,
                  flops / fused_t.min_s * 1e-9, speedup, score_bytes / flops);
    json << row;
  }

  // --- 2. End-to-end executor forward, fused peephole on vs off. ---
  SstbanConfig config = BenchConfig();
  sstban::data::Batch one = MakeBatch(config, /*batch_size=*/1, /*seed=*/42);
  double e2e_speedup;
  {
    // Compile one engine per mode up front (the peephole reads the ambient
    // flag when the program is compiled; the compiled program is then cached
    // per engine), and interleave the timed repetitions A/B/A/B. Shared
    // bench machines drift by tens of percent on a seconds timescale, so
    // timing one mode to completion before the other bakes that drift into
    // the ratio; back-to-back pairs see the same machine state.
    auto make_engine = [&](int fused, SstbanModel** model, t::Tensor* out) {
      t::SetFusedAttentionEnabledForTesting(fused);
      *model = new SstbanModel(config);
      (*model)->SetTraining(false);
      sstban::exec::InferenceEngine* engine = (*model)->inference_engine();
      if (engine == nullptr || !engine->Run(one.x, one, out).ok()) {
        std::fprintf(stderr, "FAIL: executor run (fused=%d)\n", fused);
        std::exit(1);
      }
      t::SetFusedAttentionEnabledForTesting(-1);
      return engine;
    };
    SstbanModel *fused_model, *unfused_model;
    t::Tensor fused_out, unfused_out;
    sstban::exec::InferenceEngine* fused_engine =
        make_engine(1, &fused_model, &fused_out);
    sstban::exec::InferenceEngine* unfused_engine =
        make_engine(0, &unfused_model, &unfused_out);

    constexpr int kReps = 9, kIters = 4;
    Timing fused_t, unfused_t;
    fused_t.reps = unfused_t.reps = kReps;
    fused_t.iters = unfused_t.iters = kIters;
    t::Tensor scratch;
    for (int r = 0; r < kReps; ++r) {
      double start = sstban::bench::BenchNowSeconds();
      for (int i = 0; i < kIters; ++i) fused_engine->Run(one.x, one, &scratch);
      double f = (sstban::bench::BenchNowSeconds() - start) / kIters;
      start = sstban::bench::BenchNowSeconds();
      for (int i = 0; i < kIters; ++i) {
        unfused_engine->Run(one.x, one, &scratch);
      }
      double u = (sstban::bench::BenchNowSeconds() - start) / kIters;
      fused_t.mean_s += f / kReps;
      unfused_t.mean_s += u / kReps;
      fused_t.min_s = r == 0 ? f : std::min(fused_t.min_s, f);
      unfused_t.min_s = r == 0 ? u : std::min(unfused_t.min_s, u);
    }
    delete fused_model;
    delete unfused_model;
    // The peephole runs the exact two-pass mode at these shapes: identical
    // forecasts bit for bit, or the bench is measuring two different models.
    bool bitwise =
        fused_out.shape() == unfused_out.shape() &&
        std::memcmp(fused_out.data(), unfused_out.data(),
                    static_cast<size_t>(fused_out.size()) * sizeof(float)) == 0;
    e2e_speedup = unfused_t.min_s / fused_t.min_s;
    std::printf("e2e executor forward: fused %.3f ms, unfused %.3f ms, "
                "speedup %.2fx, bitwise %s\n",
                fused_t.min_s * 1e3, unfused_t.min_s * 1e3, e2e_speedup,
                bitwise ? "true" : "false");
    char row[512];
    std::snprintf(row, sizeof(row),
                  "  \"end_to_end\": {\"nodes\": %lld, \"fused_ms_min\": %.3f, "
                  "\"fused_ms_mean\": %.3f, \"unfused_ms_min\": %.3f, "
                  "\"unfused_ms_mean\": %.3f, \"speedup\": %.2f, "
                  "\"bitwise_identical\": %s},\n",
                  static_cast<long long>(config.num_nodes),
                  fused_t.min_s * 1e3, fused_t.mean_s * 1e3,
                  unfused_t.min_s * 1e3, unfused_t.mean_s * 1e3, e2e_speedup,
                  bitwise ? "true" : "false");
    json << row;
    if (!bitwise) {
      std::fprintf(stderr, "FAIL: fused and unfused programs disagree\n");
      failed = true;
    }
    if (e2e_speedup < 1.20) {
      std::fprintf(stderr,
                   "FAIL: fused e2e speedup %.2fx below the 1.20x gate\n",
                   e2e_speedup);
      failed = true;
    }
  }

  // --- 3. Reduced-precision forwards + accuracy deltas. ---
  {
    using sstban::exec::PrecisionMode;
    // "Validation split": held-out batches for int8 calibration, separate
    // batches for the accuracy delta.
    std::vector<sstban::data::Batch> calib, eval;
    for (uint64_t s = 0; s < 4; ++s) calib.push_back(MakeBatch(config, 1, 100 + s));
    for (uint64_t s = 0; s < 4; ++s) eval.push_back(MakeBatch(config, 1, 200 + s));

    auto run_mode = [&](PrecisionMode mode, std::vector<t::Tensor>* outs,
                        Timing* timing) {
      SstbanModel model(config);
      model.SetTraining(false);
      model.set_inference_precision(mode);
      sstban::exec::InferenceEngine* engine = model.inference_engine();
      if (mode == PrecisionMode::kInt8) {
        for (const auto& b : calib) {
          if (!engine->Calibrate(b.x, nullptr, b).ok()) {
            std::fprintf(stderr, "FAIL: int8 calibration\n");
            std::exit(1);
          }
        }
      }
      t::Tensor out;
      for (const auto& b : eval) {
        if (!engine->Run(b.x, b, &out).ok()) {
          std::fprintf(stderr, "FAIL: precision-mode run\n");
          std::exit(1);
        }
        outs->push_back(out.Clone());
      }
      *timing = MeasureSeconds([&] { engine->Run(eval[0].x, eval[0], &out); });
    };

    std::vector<t::Tensor> fp32_outs, bf16_outs, int8_outs;
    Timing fp32_t, bf16_t, int8_t_;
    run_mode(PrecisionMode::kFp32, &fp32_outs, &fp32_t);
    run_mode(PrecisionMode::kBf16, &bf16_outs, &bf16_t);
    run_mode(PrecisionMode::kInt8, &int8_outs, &int8_t_);

    double bf16_mae = 0.0, int8_mae = 0.0;
    for (size_t i = 0; i < fp32_outs.size(); ++i) {
      bf16_mae += RelativeMae(fp32_outs[i], bf16_outs[i]);
      int8_mae += RelativeMae(fp32_outs[i], int8_outs[i]);
    }
    bf16_mae /= fp32_outs.size();
    int8_mae /= fp32_outs.size();

    std::printf("precision: fp32 %.3f ms, bf16 %.3f ms (rel MAE %.4f), "
                "int8 %.3f ms (rel MAE %.4f, calibrated)\n",
                fp32_t.min_s * 1e3, bf16_t.min_s * 1e3, bf16_mae,
                int8_t_.min_s * 1e3, int8_mae);
    char row[512];
    std::snprintf(row, sizeof(row),
                  "  \"precision\": {\"fp32_ms_min\": %.3f, "
                  "\"bf16_ms_min\": %.3f, \"int8_ms_min\": %.3f, "
                  "\"bf16_relative_mae\": %.5f, \"int8_relative_mae\": %.5f, "
                  "\"bf16_gate\": 0.05, \"int8_gate\": 0.10},\n",
                  fp32_t.min_s * 1e3, bf16_t.min_s * 1e3, int8_t_.min_s * 1e3,
                  bf16_mae, int8_mae);
    json << row;
    if (bf16_mae > 0.05) {
      std::fprintf(stderr, "FAIL: bf16 accuracy delta %.4f over gate 0.05\n",
                   bf16_mae);
      failed = true;
    }
    if (int8_mae > 0.10) {
      std::fprintf(stderr, "FAIL: int8 accuracy delta %.4f over gate 0.10\n",
                   int8_mae);
      failed = true;
    }
  }

  json << "  \"gates_passed\": " << (failed ? "false" : "true") << "\n}\n";
  std::fputs(json.str().c_str(), stdout);
  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << json.str();
  }
  return failed ? 1 : 0;
}

// Reproduces Fig. 9 (and the §V-D4 discussion): comparison of the three
// mask-sampling strategies — spacetime-agnostic (Algorithm 1), space-only,
// and time-only — on the PEMS04-like and PEMS08-like worlds, all other
// hyper-parameters fixed at the Table III settings. The paper's finding:
// the spacetime-agnostic strategy wins; the restricted strategies make the
// self-supervised task too hard/unbalanced and hurt the forecast.

#include <cstdio>
#include <vector>

#include "common/experiment.h"

int main() {
  using namespace sstban::bench;
  PrintHeader("Figure 9 - mask sampling strategy comparison");
  const std::vector<std::pair<std::string, std::string>> variants = {
      {"spacetime-agnostic", "SSTBAN"},
      {"space-only", "SSTBAN-spaceonly"},
      {"time-only", "SSTBAN-timeonly"},
  };
  for (const std::string& dataset : {std::string("pems04"), std::string("pems08")}) {
    Scenario scenario = MakeScenario(dataset, 36);
    std::printf("\n--- %s ---\n", scenario.name.c_str());
    std::printf("%-22s %10s %10s %10s\n", "mask strategy", "MAE", "RMSE", "MAPE%");
    for (const auto& [label, model] : variants) {
      RunResult result = RunModel(model, scenario);
      std::printf("%-22s %10.2f %10.2f %9.2f%%\n", label.c_str(),
                  result.test.mae, result.test.rmse, result.test.mape);
      std::fflush(stdout);
    }
  }
  std::printf(
      "\n>> expectation (Fig. 9): spacetime-agnostic sampling gives the best "
      "(or tied-best)\n   forecast; space-only and time-only are worse.\n");
  return 0;
}

// Extension experiment (not in the paper, but enabled by its machinery):
// robustness to *missing sensors at inference time*. The self-supervised
// branch trains the encoder to operate on masked inputs; the same pathway
// (zeroed inputs + attention key-masking) can serve forecasts when sensors
// drop out in production. We compare
//   (a) mask-aware inference via SstbanModel::PredictWithMissing
//   (b) naive inference that silently feeds the zero-filled input
// at increasing fractions of randomly missing observations.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/experiment.h"
#include "core/rng.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "tensor/ops.h"
#include "training/metrics.h"
#include "training/trainer.h"

int main() {
  using namespace sstban::bench;
  namespace t = ::sstban::tensor;
  PrintHeader("Extension - inference with missing sensors (PEMS08-24)");
  Scenario scenario = MakeScenario("pems08", 24);

  // Train one SSTBAN normally.
  sstban::sstban::SstbanConfig config =
      sstban::sstban::TableIiiConfig("pems08-24");
  config.num_nodes = scenario.dataset->num_nodes();
  config.num_features = scenario.dataset->num_features();
  config.steps_per_day = scenario.dataset->steps_per_day;
  sstban::sstban::SstbanModel model(config);
  sstban::training::TrainerConfig trainer_config;
  trainer_config.max_epochs = 6;
  trainer_config.batch_size = 8;
  trainer_config.learning_rate = 5e-3f;
  sstban::training::Trainer trainer(trainer_config);
  trainer.Train(&model, *scenario.windows, scenario.split, scenario.normalizer);

  std::printf("\nmissing | mask-aware MAE | naive zero-fill MAE\n");
  for (double missing : {0.0, 0.1, 0.3, 0.5}) {
    sstban::core::Rng rng(314159);
    sstban::training::MetricsAccumulator aware, naive;
    model.SetTraining(false);
    sstban::autograd::NoGradGuard no_grad;
    for (size_t begin = 0; begin < scenario.split.test.size(); begin += 8) {
      size_t end = std::min(begin + 8, scenario.split.test.size());
      std::vector<int64_t> idx(scenario.split.test.begin() + begin,
                               scenario.split.test.begin() + end);
      sstban::data::Batch batch = scenario.windows->MakeBatch(idx);
      t::Tensor x_norm = scenario.normalizer.Transform(batch.x);
      int64_t b = batch.batch_size(), p = batch.input_len();
      int64_t n = scenario.dataset->num_nodes();
      t::Tensor keep = t::Tensor::Ones(t::Shape{b, p, n});
      float* pk = keep.data();
      for (int64_t i = 0; i < keep.size(); ++i) {
        if (rng.NextDouble() < missing) pk[i] = 0.0f;
      }
      // (a) mask-aware path.
      t::Tensor pred_aware = scenario.normalizer.InverseTransform(
          model.PredictWithMissing(x_norm, keep, batch).value());
      aware.Add(pred_aware, batch.y);
      // (b) naive path: zero-filled input, no key masking.
      t::Tensor x_zeroed = t::Mul(
          x_norm, keep.Reshape(t::Shape{b, p, n, 1}));
      t::Tensor pred_naive = scenario.normalizer.InverseTransform(
          model.Predict(x_zeroed, batch).value());
      naive.Add(pred_naive, batch.y);
    }
    std::printf("  %4.0f%% | %14.2f | %19.2f\n", 100 * missing,
                aware.Compute().mae, naive.Compute().mae);
    std::fflush(stdout);
  }
  std::printf(
      "\n>> expectation: both degrade as sensors disappear, but the "
      "mask-aware pathway\n   (excluding missing keys from attention, as the "
      "SSL branch trains) degrades less\n   than silently feeding zero-filled "
      "inputs.\n");
  return 0;
}

// Reproduces Table VII: computation cost on the Seattle-36 scenario —
// total inference time, training time per epoch, total training time, and
// memory cost, for every model. Absolute seconds are incomparable (CPU vs
// the authors' A4000 GPU) but the orderings the paper highlights should
// hold: RNN-family models (DCRNN) pay a large sequential-time cost, the
// full-attention models (GMAN/ASTGNN) pay large memory costs, and SSTBAN's
// bottleneck keeps its total running time the smallest among the deep
// models despite carrying a second (self-supervised) branch.

#include <cstdio>
#include <vector>

#include "common/experiment.h"

namespace {

struct PaperCost {
  const char* model;
  double inference_s;
  double per_epoch_s;
  double total_train_s;
  double memory_mb;
};

// Table VII, verbatim (Seattle-36; seconds and MB on the authors' testbed).
const PaperCost kPaperCosts[] = {
    {"DCRNN", 123, 1014, 14314, 1331}, {"GWNet", 32, 289, 4979, 2597},
    {"GMAN", 77, 728, 8856, 14271},    {"AGCRN", 69, 478, 12458, 7953},
    {"DMSTGCN", 50, 531, 15980, 5747}, {"ASTGNN", 197, 904, 21341, 16089},
    {"SSTBAN", 42, 774, 4089, 9585},
};

}  // namespace

int main() {
  using namespace sstban::bench;
  PrintHeader("Table VII - computation cost (Seattle-36 scenario)");
  Scenario scenario = MakeScenario("seattle", 36);
  std::printf("%-10s | %12s %12s %12s %10s | %10s %10s %12s %10s\n", "model",
              "infer(s)", "s/epoch", "train(s)", "mem(MB)", "p.infer",
              "p.s/ep", "p.train", "p.mem");
  std::printf("-----------+---------------------------------------------------+-"
              "---------------------------------------------\n");
  for (const PaperCost& paper : kPaperCosts) {
    RunResult result = RunModel(paper.model, scenario);
    std::printf("%-10s | %12.2f %12.2f %12.2f %10.1f | %10.0f %10.0f %12.0f %10.0f\n",
                paper.model, result.inference_seconds,
                result.train_stats.seconds_per_epoch,
                result.train_stats.total_train_seconds,
                static_cast<double>(result.train_stats.peak_memory_bytes) / 1e6,
                paper.inference_s, paper.per_epoch_s, paper.total_train_s,
                paper.memory_mb);
    std::fflush(stdout);
  }
  std::printf(
      "\n>> expectation (relative ordering, not absolute seconds): DCRNN pays "
      "the largest\n   sequential-time cost; GMAN/ASTGNN pay the largest "
      "memory; SSTBAN stays cheap in\n   time despite the extra "
      "self-supervised branch.\n");
  return 0;
}

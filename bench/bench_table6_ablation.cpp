// Reproduces Table VI: ablation of the STBA block. The paper replaces the
// bottleneck attention with full quadratic attention; the full-size model
// then OOMs on an RTX A4000, so they shrink to L = L' = 1 and report that
// SSTBAN with STBA beats the degraded variant on Seattle-36 and PEMS08-36.
// Here we run the same protocol and additionally report the peak training
// memory measured by the tensor allocator, which reproduces the memory
// blow-up that caused the paper's OOM.

#include <cstdio>
#include <vector>

#include "common/experiment.h"

int main() {
  using namespace sstban::bench;
  PrintHeader("Table VI - ablation study on the STBA block");
  struct Row {
    const char* scenario_dataset;
    int64_t steps;
    const char* model;
    PaperRef paper;
  };
  const std::vector<Row> rows = {
      {"seattle", 36, "SSTBAN", {4.11, 7.83, 12.44, true}},
      {"seattle", 36, "SSTBAN-noSTBA", {4.16, 7.91, 12.84, true}},
      {"seattle", 36, "SSTBAN-noSTBA-deep", {}},
      {"pems08", 36, "SSTBAN", {16.84, 28.30, 12.20, true}},
      {"pems08", 36, "SSTBAN-noSTBA", {17.29, 35.61, 16.27, true}},
      {"pems08", 36, "SSTBAN-noSTBA-deep", {}},
  };
  std::string current_dataset;
  Scenario scenario;
  for (const Row& row : rows) {
    if (current_dataset != row.scenario_dataset) {
      current_dataset = row.scenario_dataset;
      scenario = MakeScenario(row.scenario_dataset, row.steps);
      std::printf("\n--- %s ---\n", scenario.name.c_str());
      PrintComparisonHeader();
    }
    RunResult result = RunModel(row.model, scenario);
    PrintComparisonRow(row.model, result.test, row.paper);
    std::printf("%-18s   peak training memory: %.1f MB\n", "",
                static_cast<double>(result.train_stats.peak_memory_bytes) / 1e6);
    std::fflush(stdout);
  }
  std::printf(
      "\n>> expectation: per block, full attention needs far more memory than "
      "the bottleneck\n   (compare SSTBAN vs the depth-matched "
      "SSTBAN-noSTBA-deep row; the paper's variant\n   is capped at L = L' = 1 "
      "precisely because the deep one OOMed). At this scaled-down\n   world "
      "the quadratic blow-up is milder than at the paper's N >= 170, P = 36 "
      "- see\n   bench_attention_scaling for the asymptotics.\n");
  return 0;
}

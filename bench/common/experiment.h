#ifndef SSTBAN_BENCH_COMMON_EXPERIMENT_H_
#define SSTBAN_BENCH_COMMON_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/normalizer.h"
#include "data/synthetic_world.h"
#include "training/trainer.h"

namespace sstban::bench {

// Global effort knob, read from the SSTBAN_BENCH_SCALE environment variable:
//   smoke  - minutes-scale sanity pass (1 epoch, few windows)
//   quick  - the default; every table/figure in tens of minutes total
//   full   - larger worlds and more epochs for tighter numbers
enum class BenchScale { kSmoke, kQuick, kFull };
BenchScale GetBenchScale();
const char* BenchScaleName(BenchScale scale);

// A fully materialized experiment scenario: world + windows + split + stats.
struct Scenario {
  std::string name;  // e.g. "seattle-36"
  std::shared_ptr<data::TrafficDataset> dataset;
  std::shared_ptr<data::WindowDataset> windows;
  data::SplitIndices split;
  data::Normalizer normalizer;
  int64_t steps = 0;  // P = Q
  // Feature channel used for reported metrics: the Seattle world inputs
  // (flow, speed, occupancy) but Table IV reports *speed* errors.
  int target_feature = -1;
};

// Builds the "<dataset>-<steps>" scenario ("seattle"/"pems04"/"pems08" x
// 24/36/48) at the current bench scale. Train/val/test window lists are
// already subsampled to the scale's budget.
Scenario MakeScenario(const std::string& dataset, int64_t steps);

// The models of Tables IV/V in paper order. "ALL" is the full list.
std::vector<std::string> TableModelNames();

// Instantiates a model by its table name for the scenario. Understands the
// special names "SSTBAN-noSTBA" (Table VI ablation) and mask-strategy
// variants "SSTBAN-spaceonly" / "SSTBAN-timeonly" (Fig. 9).
std::unique_ptr<training::TrafficModel> MakeModel(const std::string& name,
                                                  const Scenario& scenario);

// Result of one (model, scenario) run.
struct RunResult {
  std::string model;
  training::Metrics test;
  std::vector<training::Metrics> per_horizon;  // filled when requested
  training::TrainStats train_stats;
  double inference_seconds = 0.0;
};

// Trains (or fits) the model with the paper's protocol at bench scale and
// evaluates on the scenario's test windows.
RunResult RunModel(const std::string& name, const Scenario& scenario,
                   bool per_horizon = false);

// As above but with externally overridden train indices / datasets (the
// robustness figures re-split or corrupt the data).
RunResult RunModelWithSplit(const std::string& name, const Scenario& scenario,
                            const data::SplitIndices& split,
                            bool per_horizon = false);

// -- Reporting ----------------------------------------------------------------

// Paper-reported metric triple for side-by-side printing.
struct PaperRef {
  double mae = 0.0;
  double rmse = 0.0;
  double mape = 0.0;
  bool present = false;
};

// Looks up the paper's Table IV/V value for (dataset, steps, model); the
// tables are embedded verbatim from the publication.
PaperRef PaperTableValue(const std::string& dataset, int64_t steps,
                         const std::string& model);

// Prints one aligned table row: model, measured metrics, paper metrics.
void PrintHeader(const std::string& title);
void PrintComparisonHeader();
void PrintComparisonRow(const std::string& model,
                        const training::Metrics& measured,
                        const PaperRef& paper);
void PrintRankSummary(const std::vector<RunResult>& results,
                      const std::string& scenario_name);

}  // namespace sstban::bench

#endif  // SSTBAN_BENCH_COMMON_EXPERIMENT_H_

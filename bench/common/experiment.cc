#include "common/experiment.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "baselines/agcrn.h"
#include "baselines/astgnn.h"
#include "baselines/dcrnn.h"
#include "baselines/dmstgcn.h"
#include "baselines/gman.h"
#include "baselines/gwnet.h"
#include "baselines/historical_average.h"
#include "baselines/var_model.h"
#include "core/check.h"
#include "sstban/config.h"
#include "sstban/model.h"

namespace sstban::bench {

namespace {

struct ScaleParams {
  int64_t seattle_days;
  int64_t pems_days;
  int64_t seattle_nodes;
  int64_t pems04_nodes;
  int64_t pems08_nodes;
  int64_t train_windows;
  int64_t val_windows;
  int64_t test_windows;
  int max_epochs;
  int64_t batch_size;
  float learning_rate;
};

ScaleParams ParamsFor(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmoke:
      return {14, 5, 10, 10, 8, 24, 16, 24, 2, 8, 5e-3f};
    case BenchScale::kQuick:
      return {28, 8, 16, 16, 12, 112, 32, 64, 6, 8, 5e-3f};
    case BenchScale::kFull:
      return {84, 21, 40, 36, 28, 256, 96, 128, 10, 8, 2e-3f};
  }
  return {};
}

// Evenly subsamples `indices` down to at most `budget` entries, preserving
// chronological spread.
std::vector<int64_t> Subsample(const std::vector<int64_t>& indices,
                               int64_t budget) {
  if (static_cast<int64_t>(indices.size()) <= budget) return indices;
  std::vector<int64_t> picked;
  picked.reserve(budget);
  double stride = static_cast<double>(indices.size()) / static_cast<double>(budget);
  for (int64_t i = 0; i < budget; ++i) {
    picked.push_back(indices[static_cast<size_t>(i * stride)]);
  }
  return picked;
}

}  // namespace

BenchScale GetBenchScale() {
  const char* env = std::getenv("SSTBAN_BENCH_SCALE");
  if (env == nullptr) return BenchScale::kQuick;
  if (std::strcmp(env, "smoke") == 0) return BenchScale::kSmoke;
  if (std::strcmp(env, "full") == 0) return BenchScale::kFull;
  return BenchScale::kQuick;
}

const char* BenchScaleName(BenchScale scale) {
  switch (scale) {
    case BenchScale::kSmoke:
      return "smoke";
    case BenchScale::kQuick:
      return "quick";
    case BenchScale::kFull:
      return "full";
  }
  return "?";
}

Scenario MakeScenario(const std::string& dataset, int64_t steps) {
  ScaleParams params = ParamsFor(GetBenchScale());
  data::SyntheticWorldConfig world;
  if (dataset == "seattle") {
    world = data::SeattleLikeConfig();
    world.num_days = params.seattle_days;
    world.num_nodes = params.seattle_nodes;
  } else if (dataset == "pems04") {
    world = data::Pems04LikeConfig();
    world.num_days = params.pems_days;
    world.num_nodes = params.pems04_nodes;
  } else if (dataset == "pems08") {
    world = data::Pems08LikeConfig();
    world.num_days = params.pems_days;
    world.num_nodes = params.pems08_nodes;
  } else {
    SSTBAN_CHECK(false) << "unknown dataset" << dataset;
  }

  Scenario scenario;
  scenario.name = dataset + "-" + std::to_string(steps);
  scenario.steps = steps;
  scenario.dataset = std::make_shared<data::TrafficDataset>(
      data::GenerateSyntheticWorld(world));
  scenario.windows =
      std::make_shared<data::WindowDataset>(scenario.dataset, steps, steps);
  data::SplitIndices split = data::ChronologicalSplit(*scenario.windows);
  scenario.split.train = Subsample(split.train, params.train_windows);
  scenario.split.val = Subsample(split.val, params.val_windows);
  scenario.split.test = Subsample(split.test, params.test_windows);
  scenario.normalizer = data::Normalizer::Fit(scenario.dataset->signals);
  scenario.target_feature = dataset == "seattle" ? 1 : -1;
  return scenario;
}

std::vector<std::string> TableModelNames() {
  return {"HA",    "VAR",     "DCRNN",  "GWNet", "GMAN",
          "AGCRN", "DMSTGCN", "ASTGNN", "SSTBAN"};
}

std::unique_ptr<training::TrafficModel> MakeModel(const std::string& name,
                                                  const Scenario& scenario) {
  const data::TrafficDataset& ds = *scenario.dataset;
  int64_t n = ds.num_nodes();
  int64_t c = ds.num_features();
  int64_t q = scenario.steps;

  // Common SSTBAN-family configuration from the paper's Table III row for
  // this scenario, with problem geometry filled in.
  auto sstban_config = [&]() {
    sstban::SstbanConfig config = sstban::TableIiiConfig(scenario.name);
    config.num_nodes = n;
    config.num_features = c;
    config.steps_per_day = ds.steps_per_day;
    return config;
  };

  if (name == "HA") return std::make_unique<baselines::HistoricalAverage>();
  if (name == "VAR") return std::make_unique<baselines::VarModel>(3);
  if (name == "DCRNN") {
    return std::make_unique<baselines::DcrnnLite>(*ds.graph, c, 16);
  }
  if (name == "GWNet") {
    return std::make_unique<baselines::GwnetLite>(*ds.graph, c, q, 16, 3);
  }
  if (name == "GMAN") {
    return std::make_unique<baselines::GmanLite>(sstban_config());
  }
  if (name == "AGCRN") {
    return std::make_unique<baselines::AgcrnLite>(n, c, q, 16, 8);
  }
  if (name == "DMSTGCN") {
    return std::make_unique<baselines::DmstgcnLite>(n, c, q, ds.steps_per_day,
                                                    16, 2);
  }
  if (name == "ASTGNN") {
    return std::make_unique<baselines::AstgnnLite>(*ds.graph, c, q, q, 16, 2, 4);
  }
  if (name == "SSTBAN") {
    return std::make_unique<sstban::SstbanModel>(sstban_config());
  }
  if (name == "SSTBAN-noSSL") {
    sstban::SstbanConfig config = sstban_config();
    config.self_supervised = false;
    return std::make_unique<sstban::SstbanModel>(config);
  }
  if (name == "SSTBAN-noSTBA") {
    // Table VI protocol: full attention, L = L' = 1 (memory limits).
    sstban::SstbanConfig config = sstban_config();
    config.use_bottleneck = false;
    config.encoder_blocks = 1;
    config.decoder_blocks = 1;
    return std::make_unique<sstban::SstbanModel>(config);
  }
  if (name == "SSTBAN-noSTBA-deep") {
    // Depth-matched quadratic variant (not in the paper, which could not
    // fit it in GPU memory): isolates the per-block cost of full attention.
    sstban::SstbanConfig config = sstban_config();
    config.use_bottleneck = false;
    return std::make_unique<sstban::SstbanModel>(config);
  }
  if (name == "SSTBAN-spaceonly" || name == "SSTBAN-timeonly") {
    sstban::SstbanConfig config = sstban_config();
    config.mask_strategy = name == "SSTBAN-spaceonly"
                               ? sstban::MaskStrategy::kSpaceOnly
                               : sstban::MaskStrategy::kTimeOnly;
    return std::make_unique<sstban::SstbanModel>(config);
  }
  SSTBAN_CHECK(false) << "unknown model" << name;
  return nullptr;
}

RunResult RunModelWithSplit(const std::string& name, const Scenario& scenario,
                            const data::SplitIndices& split, bool per_horizon) {
  ScaleParams params = ParamsFor(GetBenchScale());
  std::unique_ptr<training::TrafficModel> model = MakeModel(name, scenario);
  training::TrainerConfig config;
  config.max_epochs = params.max_epochs;
  config.batch_size = params.batch_size;
  config.learning_rate = params.learning_rate;
  config.target_feature = scenario.target_feature;
  training::Trainer trainer(config);
  RunResult result;
  result.model = name;
  result.train_stats =
      trainer.Train(model.get(), *scenario.windows, split, scenario.normalizer);
  training::EvalResult eval =
      training::Evaluate(model.get(), *scenario.windows, split.test,
                         scenario.normalizer, params.batch_size, per_horizon,
                         scenario.target_feature);
  result.test = eval.overall;
  result.per_horizon = eval.per_horizon;
  result.inference_seconds = eval.inference_seconds;
  return result;
}

RunResult RunModel(const std::string& name, const Scenario& scenario,
                   bool per_horizon) {
  return RunModelWithSplit(name, scenario, scenario.split, per_horizon);
}

namespace {

// Paper Tables IV & V, embedded verbatim: {dataset, steps, model} ->
// {MAE, RMSE, MAPE%}.
const std::map<std::string, PaperRef>& PaperTable() {
  static const auto* table = new std::map<std::string, PaperRef>{
      // -- Table IV: Seattle Loop (speed) ---------------------------------
      {"seattle/24/HA", {8.08, 11.86, 26.54, true}},
      {"seattle/24/VAR", {6.22, 9.33, 18.58, true}},
      {"seattle/24/DCRNN", {4.37, 7.97, 14.04, true}},
      {"seattle/24/GWNet", {4.28, 7.84, 14.06, true}},
      {"seattle/24/GMAN", {4.13, 7.84, 12.88, true}},
      {"seattle/24/AGCRN", {4.27, 7.83, 13.53, true}},
      {"seattle/24/DMSTGCN", {4.08, 7.59, 13.51, true}},
      {"seattle/24/ASTGNN", {4.26, 8.31, 13.64, true}},
      {"seattle/24/SSTBAN", {4.05, 7.72, 12.69, true}},
      {"seattle/36/HA", {8.50, 12.35, 27.68, true}},
      {"seattle/36/VAR", {6.29, 9.57, 19.54, true}},
      {"seattle/36/DCRNN", {4.60, 8.38, 14.41, true}},
      {"seattle/36/GWNet", {4.60, 8.18, 15.12, true}},
      {"seattle/36/GMAN", {4.23, 8.10, 12.95, true}},
      {"seattle/36/AGCRN", {4.66, 8.31, 14.76, true}},
      {"seattle/36/DMSTGCN", {4.31, 7.98, 14.31, true}},
      {"seattle/36/ASTGNN", {4.78, 9.11, 15.29, true}},
      {"seattle/36/SSTBAN", {4.11, 7.83, 12.44, true}},
      {"seattle/48/HA", {8.53, 12.30, 27.76, true}},
      {"seattle/48/VAR", {6.45, 9.87, 20.49, true}},
      {"seattle/48/DCRNN", {4.73, 8.63, 14.91, true}},
      {"seattle/48/GWNet", {4.67, 8.35, 15.04, true}},
      {"seattle/48/GMAN", {4.26, 8.09, 13.26, true}},
      {"seattle/48/AGCRN", {4.82, 8.60, 15.62, true}},
      {"seattle/48/DMSTGCN", {4.49, 8.20, 14.86, true}},
      {"seattle/48/ASTGNN", {5.15, 9.58, 16.93, true}},
      {"seattle/48/SSTBAN", {4.12, 7.88, 12.25, true}},
      // -- Table V: PEMS04 (flow) ------------------------------------------
      {"pems04/24/HA", {56.47, 81.57, 45.49, true}},
      {"pems04/24/VAR", {27.19, 41.09, 21.42, true}},
      {"pems04/24/DCRNN", {28.70, 42.86, 21.23, true}},
      {"pems04/24/GWNet", {22.79, 35.52, 16.04, true}},
      {"pems04/24/GMAN", {21.67, 38.10, 17.78, true}},
      {"pems04/24/AGCRN", {21.63, 34.44, 14.65, true}},
      {"pems04/24/DMSTGCN", {20.32, 32.09, 14.13, true}},
      {"pems04/24/SSTBAN", {20.17, 32.82, 14.43, true}},
      {"pems04/36/HA", {76.01, 106.58, 68.84, true}},
      {"pems04/36/VAR", {30.48, 45.44, 24.51, true}},
      {"pems04/36/DCRNN", {33.78, 51.40, 27.10, true}},
      {"pems04/36/GWNet", {24.71, 38.17, 17.67, true}},
      {"pems04/36/GMAN", {22.12, 52.86, 16.43, true}},
      {"pems04/36/AGCRN", {24.15, 38.19, 16.33, true}},
      {"pems04/36/DMSTGCN", {22.47, 34.86, 15.86, true}},
      {"pems04/36/SSTBAN", {20.82, 34.15, 14.83, true}},
      {"pems04/48/HA", {93.37, 127.28, 94.62, true}},
      {"pems04/48/VAR", {33.50, 49.46, 27.28, true}},
      {"pems04/48/DCRNN", {38.26, 57.85, 33.73, true}},
      {"pems04/48/GWNet", {26.42, 40.60, 18.99, true}},
      {"pems04/48/GMAN", {23.35, 47.85, 17.98, true}},
      {"pems04/48/AGCRN", {24.18, 38.26, 16.31, true}},
      {"pems04/48/DMSTGCN", {22.50, 35.05, 16.56, true}},
      {"pems04/48/SSTBAN", {21.66, 35.51, 15.90, true}},
      // -- Table V: PEMS08 (flow) ------------------------------------------
      {"pems08/24/HA", {48.30, 69.72, 32.09, true}},
      {"pems08/24/VAR", {28.31, 44.47, 19.53, true}},
      {"pems08/24/DCRNN", {22.60, 33.34, 15.46, true}},
      {"pems08/24/GWNet", {19.07, 29.47, 12.25, true}},
      {"pems08/24/GMAN", {17.38, 34.29, 15.66, true}},
      {"pems08/24/AGCRN", {17.45, 28.05, 11.25, true}},
      {"pems08/24/DMSTGCN", {16.75, 26.55, 11.44, true}},
      {"pems08/24/SSTBAN", {15.97, 26.32, 12.29, true}},
      {"pems08/36/HA", {65.99, 92.72, 46.64, true}},
      {"pems08/36/VAR", {31.70, 48.96, 22.56, true}},
      {"pems08/36/DCRNN", {25.82, 39.37, 18.53, true}},
      {"pems08/36/GWNet", {21.76, 33.54, 13.68, true}},
      {"pems08/36/GMAN", {17.21, 35.89, 16.33, true}},
      {"pems08/36/AGCRN", {19.39, 30.96, 12.73, true}},
      {"pems08/36/DMSTGCN", {18.15, 28.50, 12.64, true}},
      {"pems08/36/SSTBAN", {16.84, 28.30, 12.20, true}},
      {"pems08/48/HA", {81.51, 111.85, 61.29, true}},
      {"pems08/48/VAR", {34.51, 52.14, 25.28, true}},
      {"pems08/48/DCRNN", {30.47, 45.64, 25.10, true}},
      {"pems08/48/GWNet", {22.60, 34.20, 14.16, true}},
      {"pems08/48/GMAN", {18.70, 48.54, 16.81, true}},
      {"pems08/48/AGCRN", {19.46, 31.11, 12.88, true}},
      {"pems08/48/DMSTGCN", {18.34, 28.94, 12.93, true}},
      {"pems08/48/SSTBAN", {16.94, 28.82, 12.47, true}},
  };
  return *table;
}

}  // namespace

PaperRef PaperTableValue(const std::string& dataset, int64_t steps,
                         const std::string& model) {
  const auto& table = PaperTable();
  auto it = table.find(dataset + "/" + std::to_string(steps) + "/" + model);
  if (it == table.end()) return PaperRef{};
  return it->second;
}

void PrintHeader(const std::string& title) {
  std::printf("\n================================================================================\n");
  std::printf("%s   [scale: %s]\n", title.c_str(), BenchScaleName(GetBenchScale()));
  std::printf("================================================================================\n");
}

void PrintComparisonHeader() {
  std::printf("%-18s | %27s | %27s\n", "model", "measured (this repro)",
              "paper (authors' testbed)");
  std::printf("%-18s | %8s %8s %9s | %8s %8s %9s\n", "", "MAE", "RMSE",
              "MAPE%", "MAE", "RMSE", "MAPE%");
  std::printf("-------------------+-----------------------------+----------------------------\n");
}

void PrintComparisonRow(const std::string& model,
                        const training::Metrics& measured,
                        const PaperRef& paper) {
  if (paper.present) {
    std::printf("%-18s | %8.2f %8.2f %8.2f%% | %8.2f %8.2f %8.2f%%\n",
                model.c_str(), measured.mae, measured.rmse, measured.mape,
                paper.mae, paper.rmse, paper.mape);
  } else {
    std::printf("%-18s | %8.2f %8.2f %8.2f%% | %8s %8s %9s\n", model.c_str(),
                measured.mae, measured.rmse, measured.mape, "-", "-", "-");
  }
}

void PrintRankSummary(const std::vector<RunResult>& results,
                      const std::string& scenario_name) {
  std::vector<RunResult> sorted = results;
  std::sort(sorted.begin(), sorted.end(),
            [](const RunResult& a, const RunResult& b) {
              return a.test.mae < b.test.mae;
            });
  int sstban_rank = 0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i].model == "SSTBAN") sstban_rank = static_cast<int>(i) + 1;
  }
  std::printf(
      ">> %s: best = %s (MAE %.2f); SSTBAN rank %d of %zu (paper: rank 1 on "
      "most scenarios)\n",
      scenario_name.c_str(), sorted.front().model.c_str(),
      sorted.front().test.mae, sstban_rank, sorted.size());
}

}  // namespace sstban::bench

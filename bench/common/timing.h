#ifndef SSTBAN_BENCH_COMMON_TIMING_H_
#define SSTBAN_BENCH_COMMON_TIMING_H_

#include <algorithm>
#include <chrono>

namespace sstban::bench {

// Repetition-based timing for the BENCH_*.json snapshots. A single adaptive
// run (what several benches did originally) is noisy: one scheduler hiccup
// lands in the snapshot forever. Instead each measurement runs `reps`
// independent repetitions — every repetition adaptively iterated to a target
// wall time — and reports BOTH the min-of-K (the noise floor, what perf
// comparisons should gate on) and the mean (what users see on average).
struct Timing {
  double mean_s = 0.0;  // mean per-call seconds across repetitions
  double min_s = 0.0;   // fastest repetition's per-call seconds
  int reps = 0;
  int iters = 0;  // iterations per repetition after calibration
};

inline double BenchNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

template <typename Fn>
Timing MeasureSeconds(Fn&& fn, int reps = 5,
                      double target_rep_seconds = 0.05) {
  fn();  // warm-up: thread-pool spin-up, pack-buffer/arena allocation
  // Calibrate the per-repetition iteration count.
  int iters = 1;
  for (;;) {
    double start = BenchNowSeconds();
    for (int i = 0; i < iters; ++i) fn();
    double elapsed = BenchNowSeconds() - start;
    if (elapsed > target_rep_seconds || iters >= 1 << 16) break;
    iters *= 4;
  }
  Timing timing;
  timing.reps = reps;
  timing.iters = iters;
  double total = 0.0, best = 0.0;
  for (int r = 0; r < reps; ++r) {
    double start = BenchNowSeconds();
    for (int i = 0; i < iters; ++i) fn();
    double per_call = (BenchNowSeconds() - start) / iters;
    total += per_call;
    best = r == 0 ? per_call : std::min(best, per_call);
  }
  timing.mean_s = total / reps;
  timing.min_s = best;
  return timing;
}

}  // namespace sstban::bench

#endif  // SSTBAN_BENCH_COMMON_TIMING_H_

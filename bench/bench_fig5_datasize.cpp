// Reproduces Fig. 5: robustness to training-set size. Following the paper's
// protocol, the training windows are reduced from 60% of the data to 40%
// and 20% by dropping the earliest windows, while validation and test stay
// fixed; the three best long-term models (SSTBAN, GMAN, DMSTGCN) are
// retrained at each size. The paper's finding: SSTBAN degrades most
// gracefully thanks to its data-efficient self-supervised branch.

#include <cstdio>
#include <vector>

#include "common/experiment.h"
#include "data/dataset.h"

int main() {
  using namespace sstban::bench;
  PrintHeader("Figure 5 - robustness to shrinking training data");
  const std::vector<std::string> models = {"SSTBAN", "GMAN", "DMSTGCN"};
  // 60% of data is the full training split; 40%/20% equal 2/3 and 1/3 of it.
  const std::vector<std::pair<const char*, double>> sizes = {
      {"60%", 1.0}, {"40%", 2.0 / 3.0}, {"20%", 1.0 / 3.0}};
  for (const std::string& dataset : {std::string("pems08")}) {
    Scenario scenario = MakeScenario(dataset, 36);
    std::printf("\n--- %s ---\n", scenario.name.c_str());
    std::printf("%-10s", "model");
    for (const auto& [label, fraction] : sizes) std::printf(" %12s", label);
    std::printf("   (test MAE at each training-data size)\n");
    for (const std::string& model : models) {
      std::printf("%-10s", model.c_str());
      for (const auto& [label, fraction] : sizes) {
        sstban::data::SplitIndices split = scenario.split;
        split.train = sstban::data::KeepLatestFraction(split.train, fraction);
        RunResult result = RunModelWithSplit(model, scenario, split);
        std::printf(" %12.2f", result.test.mae);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\n>> expectation: errors grow as training data shrinks for every "
      "model; SSTBAN\n   remains the best at every size (Fig. 5).\n");
  return 0;
}

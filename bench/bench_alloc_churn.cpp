// Allocation-churn benchmark: quantifies what the storage pool buys on the
// two hot paths — a full SSTBAN training step (forward + backward + Adam)
// and a serving-style no-grad forward. For each mode (pool on / pool off)
// it reports heap allocations per step, pool hit rate, and steady-state
// latency, and asserts the transparency guarantee: one fresh training step
// is bitwise identical in loss and every parameter gradient either way.
//
// Emits a single JSON object on stdout (tables land in
// bench/BENCH_alloc_churn.json for the perf trajectory); pass a path as
// argv[1] to also write the JSON there. Exits nonzero if the bitwise check
// fails or the pool saves less than 10x on heap allocations per training
// step.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cmath>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"
#include "core/memory_tracker.h"
#include "core/rng.h"
#include "core/storage_pool.h"
#include "data/dataset.h"
#include "optim/optimizer.h"
#include "sstban/config.h"
#include "sstban/model.h"
#include "tensor/tensor.h"

namespace {

namespace ag = ::sstban::autograd;
namespace t = ::sstban::tensor;
using sstban::core::MemoryTracker;
using sstban::core::StoragePool;
using sstban::sstban::SstbanConfig;
using sstban::sstban::SstbanModel;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// A small-but-representative SSTBAN: big enough that a step runs hundreds
// of ops through every layer type, small enough for CI.
SstbanConfig BenchConfig() {
  SstbanConfig c;
  c.num_nodes = 12;
  c.input_len = 12;
  c.output_len = 12;
  c.num_features = 1;
  c.steps_per_day = 24;
  c.hidden_dim = 16;
  c.num_heads = 2;
  c.encoder_blocks = 2;
  c.decoder_blocks = 1;
  c.recon_blocks = 1;
  c.temporal_refs = 4;
  c.spatial_refs = 4;
  c.patch_len = 3;
  c.mask_rate = 0.25;
  c.lambda = 0.2;
  return c;
}

sstban::data::Batch MakeBatch(const SstbanConfig& c, int64_t batch_size) {
  sstban::core::Rng rng(42);
  sstban::data::Batch batch;
  batch.x = t::Tensor::RandomNormal(
      t::Shape{batch_size, c.input_len, c.num_nodes, c.num_features}, rng);
  batch.y = t::Tensor::RandomNormal(
      t::Shape{batch_size, c.output_len, c.num_nodes, c.num_features}, rng);
  for (int64_t i = 0; i < batch_size * c.input_len; ++i) {
    batch.tod_in.push_back(i % c.steps_per_day);
    batch.dow_in.push_back((i / c.steps_per_day) % 7);
  }
  for (int64_t i = 0; i < batch_size * c.output_len; ++i) {
    batch.tod_out.push_back((i + 3) % c.steps_per_day);
    batch.dow_out.push_back(((i + 3) / c.steps_per_day) % 7);
  }
  return batch;
}

struct ModeResult {
  double heap_allocs_per_train_step = 0.0;
  double heap_allocs_per_forward = 0.0;
  double pool_hit_rate = 0.0;
  double train_step_ms = 0.0;
  double forward_ms = 0.0;
  double recycled_mb_per_train_step = 0.0;
  int64_t pool_peak_resident_bytes = 0;
};

// Steady-state measurement of training steps and serving forwards with the
// pool in the given mode. A fresh model per mode keeps the two runs
// independent; warmup steps let the pool reach steady state (and the
// allocator/thread pool settle) before counters are read.
ModeResult RunMode(bool pool_enabled, int warmup_steps, int measure_steps) {
  StoragePool::Global().SetEnabledForTesting(pool_enabled);
  MemoryTracker& tracker = MemoryTracker::Global();
  SstbanConfig c = BenchConfig();
  SstbanModel model(c);
  sstban::data::Batch batch = MakeBatch(c, /*batch_size=*/4);
  sstban::optim::Adam adam(model.Parameters(), /*lr=*/1e-3f);

  auto train_step = [&] {
    ag::Variable loss = model.TrainingLoss(batch.x, batch.y, batch);
    adam.ZeroGrad();
    loss.Backward();
    adam.Step();
  };
  for (int i = 0; i < warmup_steps; ++i) train_step();

  ModeResult result;
  int64_t heap0 = tracker.heap_allocs();
  int64_t hits0 = tracker.pool_hits();
  int64_t misses0 = tracker.pool_misses();
  int64_t recycled0 = tracker.pool_recycled_bytes();
  double start = NowSeconds();
  for (int i = 0; i < measure_steps; ++i) train_step();
  result.train_step_ms = (NowSeconds() - start) * 1e3 / measure_steps;
  result.heap_allocs_per_train_step =
      static_cast<double>(tracker.heap_allocs() - heap0) / measure_steps;
  int64_t hits = tracker.pool_hits() - hits0;
  int64_t misses = tracker.pool_misses() - misses0;
  result.pool_hit_rate =
      hits + misses > 0 ? static_cast<double>(hits) / (hits + misses) : 0.0;
  result.recycled_mb_per_train_step =
      static_cast<double>(tracker.pool_recycled_bytes() - recycled0) / 1e6 /
      measure_steps;

  // Serving-style forward: inference only, no autograd graph retained.
  model.SetTraining(false);
  {
    ag::NoGradGuard no_grad;
    for (int i = 0; i < warmup_steps; ++i) model.Predict(batch.x, batch);
    heap0 = tracker.heap_allocs();
    start = NowSeconds();
    for (int i = 0; i < measure_steps; ++i) model.Predict(batch.x, batch);
    result.forward_ms = (NowSeconds() - start) * 1e3 / measure_steps;
    result.heap_allocs_per_forward =
        static_cast<double>(tracker.heap_allocs() - heap0) / measure_steps;
  }
  result.pool_peak_resident_bytes = tracker.pool_peak_resident_bytes();
  return result;
}

struct StepSnapshot {
  float loss;
  std::vector<std::pair<std::string, t::Tensor>> grads;
};

// One fresh-model training step; model init and masking RNG depend only on
// the config seed, so two runs can differ only through the allocator.
StepSnapshot FreshStep(bool pool_enabled) {
  StoragePool::Global().SetEnabledForTesting(pool_enabled);
  SstbanConfig c = BenchConfig();
  SstbanModel model(c);
  sstban::data::Batch batch = MakeBatch(c, /*batch_size=*/2);
  ag::Variable loss = model.TrainingLoss(batch.x, batch.y, batch);
  model.ZeroGrad();
  loss.Backward();
  StepSnapshot snap;
  snap.loss = loss.item();
  for (auto& [name, p] : model.NamedParameters()) {
    snap.grads.emplace_back(name, p.grad().Clone());
  }
  return snap;
}

bool BitwiseIdentical(const StepSnapshot& a, const StepSnapshot& b) {
  if (a.loss != b.loss || a.grads.size() != b.grads.size()) return false;
  for (size_t g = 0; g < a.grads.size(); ++g) {
    const t::Tensor& ta = a.grads[g].second;
    const t::Tensor& tb = b.grads[g].second;
    if (a.grads[g].first != b.grads[g].first || !(ta.shape() == tb.shape())) {
      return false;
    }
    for (int64_t i = 0; i < ta.size(); ++i) {
      if (ta.data()[i] != tb.data()[i]) return false;
    }
  }
  return true;
}

void AppendModeJson(std::string* out, const char* name, const ModeResult& r,
                    bool trailing_comma) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "  \"%s\": {\"heap_allocs_per_train_step\": %.1f, "
      "\"heap_allocs_per_forward\": %.1f, \"pool_hit_rate\": %.4f, "
      "\"train_step_ms\": %.3f, \"forward_ms\": %.3f, "
      "\"recycled_mb_per_train_step\": %.2f, "
      "\"pool_peak_resident_bytes\": %lld}%s\n",
      name, r.heap_allocs_per_train_step, r.heap_allocs_per_forward,
      r.pool_hit_rate, r.train_step_ms, r.forward_ms,
      r.recycled_mb_per_train_step,
      static_cast<long long>(r.pool_peak_resident_bytes),
      trailing_comma ? "," : "");
  *out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  constexpr int kWarmupSteps = 3;
  constexpr int kMeasureSteps = 10;

  // ABBA order with per-mode minimums: the first measured mode pays CPU and
  // allocator warm-up drift, which would otherwise masquerade as a pool
  // slowdown (or speedup). Allocation counts are deterministic, so those
  // come straight from the first run of each mode.
  ModeResult pool_on = RunMode(/*pool_enabled=*/true, kWarmupSteps, kMeasureSteps);
  ModeResult pool_off = RunMode(/*pool_enabled=*/false, kWarmupSteps, kMeasureSteps);
  ModeResult off_again = RunMode(/*pool_enabled=*/false, kWarmupSteps, kMeasureSteps);
  ModeResult on_again = RunMode(/*pool_enabled=*/true, kWarmupSteps, kMeasureSteps);
  pool_on.train_step_ms = std::min(pool_on.train_step_ms, on_again.train_step_ms);
  pool_on.forward_ms = std::min(pool_on.forward_ms, on_again.forward_ms);
  pool_off.train_step_ms = std::min(pool_off.train_step_ms, off_again.train_step_ms);
  pool_off.forward_ms = std::min(pool_off.forward_ms, off_again.forward_ms);

  StepSnapshot pooled = FreshStep(/*pool_enabled=*/true);
  StepSnapshot pooled_warm = FreshStep(/*pool_enabled=*/true);  // recycled bufs
  StepSnapshot plain = FreshStep(/*pool_enabled=*/false);
  StoragePool::Global().SetEnabledForTesting(true);
  bool identical =
      BitwiseIdentical(plain, pooled) && BitwiseIdentical(plain, pooled_warm);

  // A warm pool reaches zero heap allocations per step; clamp the
  // denominator so the ratio stays a finite, JSON-representable number.
  double alloc_reduction =
      pool_off.heap_allocs_per_train_step /
      std::max(pool_on.heap_allocs_per_train_step, 1.0);

  std::string json = "{\n";
  json += "  \"bench\": \"alloc_churn\",\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"measure_steps\": %d,\n  \"batch_size\": 4,\n",
                kMeasureSteps);
  json += buf;
  AppendModeJson(&json, "pool_on", pool_on, true);
  AppendModeJson(&json, "pool_off", pool_off, true);
  std::snprintf(buf, sizeof(buf),
                "  \"heap_alloc_reduction\": %.1f,\n"
                "  \"bitwise_identical_pool_on_vs_off\": %s\n}\n",
                alloc_reduction, identical ? "true" : "false");
  json += buf;

  std::fputs(json.c_str(), stdout);
  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << json;
  }

  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: training step is not bitwise identical pool on/off\n");
    return 1;
  }
  if (alloc_reduction < 10.0) {
    std::fprintf(stderr,
                 "FAIL: pool saves only %.1fx heap allocations per training "
                 "step (need >= 10x)\n",
                 alloc_reduction);
    return 1;
  }
  return 0;
}

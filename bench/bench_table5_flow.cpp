// Reproduces Table V: long-term traffic *flow* forecasting on the
// PEMS04-like and PEMS08-like worlds at 24 / 36 / 48 steps. As with
// Table IV the comparison is shape-level: flow errors are much larger than
// speed errors (flow is more volatile), deep models dominate HA/VAR, and
// SSTBAN is the most competitive model overall. The paper does not report
// ASTGNN on Table V; we still run it (paper column prints "-").

#include <cstdio>
#include <vector>

#include "common/experiment.h"

int main() {
  using namespace sstban::bench;
  PrintHeader("Table V - traffic flow forecasting (PEMS04/PEMS08-like worlds)");
  for (const std::string& dataset : {std::string("pems04"), std::string("pems08")}) {
    for (int64_t steps : {24, 36, 48}) {
      Scenario scenario = MakeScenario(dataset, steps);
      std::printf("\n--- %s: %lld nodes, %zu/%zu/%zu train/val/test windows ---\n",
                  scenario.name.c_str(),
                  static_cast<long long>(scenario.dataset->num_nodes()),
                  scenario.split.train.size(), scenario.split.val.size(),
                  scenario.split.test.size());
      PrintComparisonHeader();
      std::vector<RunResult> results;
      for (const std::string& model : TableModelNames()) {
        RunResult result = RunModel(model, scenario);
        PrintComparisonRow(model, result.test,
                           PaperTableValue(dataset, steps, model));
        std::fflush(stdout);
        results.push_back(result);
      }
      PrintRankSummary(results, scenario.name);
    }
  }
  return 0;
}

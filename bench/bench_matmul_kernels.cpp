// Kernel microbenchmark for the SIMD dispatch layer (DESIGN.md §14):
//
//   1. Scalar vs AVX2 micro-kernel, single thread, on 256/512/1024 square
//      GEMMs — the ISSUE 8 acceptance gate requires >= 2x GFLOP/s from the
//      AVX2 tier. Roofline-style bytes/FLOP is reported per shape so the
//      numbers can be read against the machine's compute/bandwidth balance.
//   2. Sequential vs pool-parallel on STBA-representative shapes (attention
//      scores QK^T, context AV, projection GEMMs), asserting the bitwise
//      1-vs-N-thread guarantee on every shape measured.
//
// All timings are min-of-K repetitions alongside the mean (bench/common/
// timing.h) so snapshot numbers gate on the noise floor. Emits JSON on
// stdout (snapshot: bench/BENCH_simd_kernels.json); pass a path as argv[1]
// to also write it there. Exits nonzero if a bitwise check fails or AVX2
// hardware is present but misses the 2x gate.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "common/timing.h"
#include "core/cpu_features.h"
#include "core/rng.h"
#include "core/thread_pool.h"
#include "tensor/matmul.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace {

namespace t = ::sstban::tensor;
using sstban::bench::MeasureSeconds;
using sstban::bench::Timing;
using sstban::core::SimdLevel;

bool BitwiseEqual(const t::Tensor& a, const t::Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.size()) * sizeof(float)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  sstban::core::Rng rng(7);
  std::ostringstream json;
  json << "{\n  \"bench\": \"simd_kernels\",\n";

  const sstban::core::CpuFeatures& features =
      sstban::core::DetectCpuFeatures();
  const bool have_avx2 = features.avx2 && features.fma;
  json << "  \"cpu\": {\"avx2\": " << (features.avx2 ? "true" : "false")
       << ", \"fma\": " << (features.fma ? "true" : "false") << "},\n";

  // --- 1. Scalar vs AVX2 tier, single thread, square shapes. ---
  std::printf("single-thread GEMM, scalar vs AVX2 tier\n");
  std::printf("%-8s %12s %12s %10s %10s %8s %12s\n", "shape", "scalar GF/s",
              "avx2 GF/s", "scalar ms", "avx2 ms", "speedup", "bytes/FLOP");
  json << "  \"square_gemm_single_thread\": [\n";
  bool gate_failed = false;
  sstban::core::SetParallelismCapForTesting(1);
  for (int64_t dim : {256, 512, 1024}) {
    t::Tensor a = t::Tensor::RandomNormal(t::Shape{dim, dim}, rng);
    t::Tensor b = t::Tensor::RandomNormal(t::Shape{dim, dim}, rng);
    const double flops = 2.0 * dim * dim * dim;
    // Roofline arithmetic intensity of the untiled problem: three matrices
    // touched once each vs 2*M*K*N flops. The tiled kernel re-reads panels,
    // so this is the *best case* intensity the cache blocking chases.
    const double bytes_per_flop = 3.0 * dim * dim * sizeof(float) / flops;

    sstban::core::SetSimdLevelForTesting(SimdLevel::kScalar);
    t::Tensor scalar_out = t::Matmul(a, b);
    Timing scalar_t = MeasureSeconds([&] { t::Matmul(a, b); });

    SimdLevel granted = sstban::core::SetSimdLevelForTesting(SimdLevel::kAvx2);
    t::Tensor simd_out = t::Matmul(a, b);
    Timing simd_t = MeasureSeconds([&] { t::Matmul(a, b); });
    sstban::core::SetSimdLevelForTesting(sstban::core::ActiveSimdLevel());

    const bool tiers_differ = granted == SimdLevel::kAvx2;
    double scalar_gfs = flops / scalar_t.min_s * 1e-9;
    double simd_gfs = flops / simd_t.min_s * 1e-9;
    double speedup = scalar_t.min_s / simd_t.min_s;
    std::printf("%-8lld %12.2f %12.2f %10.3f %10.3f %7.2fx %12.5f\n",
                static_cast<long long>(dim), scalar_gfs, simd_gfs,
                scalar_t.min_s * 1e3, simd_t.min_s * 1e3, speedup,
                bytes_per_flop);
    if (tiers_differ && speedup < 2.0) gate_failed = true;
    char row[512];
    std::snprintf(row, sizeof(row),
                  "    {\"dim\": %lld, \"scalar_gflops\": %.2f, "
                  "\"avx2_gflops\": %.2f, \"scalar_ms_min\": %.3f, "
                  "\"scalar_ms_mean\": %.3f, \"avx2_ms_min\": %.3f, "
                  "\"avx2_ms_mean\": %.3f, \"speedup\": %.2f, "
                  "\"bytes_per_flop\": %.5f}%s\n",
                  static_cast<long long>(dim), scalar_gfs, simd_gfs,
                  scalar_t.min_s * 1e3, scalar_t.mean_s * 1e3,
                  simd_t.min_s * 1e3, simd_t.mean_s * 1e3, speedup,
                  bytes_per_flop, dim == 1024 ? "" : ",");
    json << row;
    // Tiers round differently (FMA contraction) but must agree numerically.
    if (!t::AllClose(scalar_out, simd_out, 1e-3f, 1e-3f)) {
      std::fprintf(stderr, "FATAL: scalar and AVX2 GEMM disagree at %lld\n",
                   static_cast<long long>(dim));
      return 1;
    }
  }
  json << "  ],\n";
  sstban::core::SetParallelismCapForTesting(0);

  // --- 2. Sequential vs parallel on STBA-representative shapes. ---
  const int64_t kDim = 64, kHeads = 8, kLen = 48;
  const int64_t kDk = kDim / kHeads;
  const int64_t kStreams = 512;  // B*h attention streams after head split
  const int64_t kRows = 16320;   // B*L*N rows hitting each projection

  t::Tensor qh = t::Tensor::RandomNormal(t::Shape{kStreams, kLen, kDk}, rng);
  t::Tensor kh = t::Tensor::RandomNormal(t::Shape{kStreams, kLen, kDk}, rng);
  t::Tensor probs = t::Tensor::RandomNormal(t::Shape{kStreams, kLen, kLen}, rng);
  t::Tensor vh = t::Tensor::RandomNormal(t::Shape{kStreams, kLen, kDk}, rng);
  t::Tensor act = t::Tensor::RandomNormal(t::Shape{kRows, kDim}, rng);
  t::Tensor weight = t::Tensor::RandomNormal(t::Shape{kDim, kDim}, rng);

  struct BenchCase {
    std::string name;
    std::string key;
    std::function<t::Tensor()> run;
    double madds;
  };
  std::vector<BenchCase> cases;
  cases.push_back({"bmm scores  [512,48,8]x[512,48,8]^T", "bmm_scores",
                   [&] { return t::Bmm(qh, kh, false, true); },
                   static_cast<double>(kStreams * kLen * kDk * kLen)});
  cases.push_back({"bmm context [512,48,48]x[512,48,8]", "bmm_context",
                   [&] { return t::Bmm(probs, vh, false, false); },
                   static_cast<double>(kStreams * kLen * kLen * kDk)});
  cases.push_back({"matmul linear [16320,64]x[64,64]", "matmul_linear",
                   [&] { return t::Matmul(act, weight); },
                   static_cast<double>(kRows * kDim * kDim)});

  std::printf("\npool threads: %d (SSTBAN_NUM_THREADS to override)\n",
              sstban::core::EffectiveParallelism());
  std::printf("%-40s %10s %10s %8s %9s %9s  %s\n", "case", "seq ms", "par ms",
              "speedup", "seq GF/s", "par GF/s", "bitwise");
  json << "  \"stba_shapes_seq_vs_par\": [\n";
  bool all_equal = true;
  for (size_t ci = 0; ci < cases.size(); ++ci) {
    const BenchCase& bench = cases[ci];
    sstban::core::SetParallelismCapForTesting(1);
    t::Tensor seq_out = bench.run();
    Timing seq_t = MeasureSeconds([&] { bench.run(); });
    sstban::core::SetParallelismCapForTesting(0);
    t::Tensor par_out = bench.run();
    Timing par_t = MeasureSeconds([&] { bench.run(); });
    bool equal = BitwiseEqual(seq_out, par_out);
    all_equal = all_equal && equal;
    double flops = 2.0 * bench.madds;
    std::printf("%-40s %10.3f %10.3f %7.2fx %9.2f %9.2f  %s\n",
                bench.name.c_str(), seq_t.min_s * 1e3, par_t.min_s * 1e3,
                seq_t.min_s / par_t.min_s, flops / seq_t.min_s * 1e-9,
                flops / par_t.min_s * 1e-9, equal ? "equal" : "DIFFER");
    char row[512];
    std::snprintf(row, sizeof(row),
                  "    {\"case\": \"%s\", \"seq_ms_min\": %.3f, "
                  "\"seq_ms_mean\": %.3f, \"par_ms_min\": %.3f, "
                  "\"par_ms_mean\": %.3f, \"seq_gflops\": %.2f, "
                  "\"par_gflops\": %.2f, \"bitwise\": %s}%s\n",
                  bench.key.c_str(), seq_t.min_s * 1e3, seq_t.mean_s * 1e3,
                  par_t.min_s * 1e3, par_t.mean_s * 1e3,
                  flops / seq_t.min_s * 1e-9, flops / par_t.min_s * 1e-9,
                  equal ? "true" : "false",
                  ci + 1 == cases.size() ? "" : ",");
    json << row;
  }
  json << "  ],\n  \"avx2_2x_gate\": "
       << (have_avx2 ? (gate_failed ? "\"FAIL\"" : "\"PASS\"")
                     : "\"SKIPPED (no AVX2)\"")
       << "\n}\n";

  std::fputs(json.str().c_str(), stdout);
  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << json.str();
  }
  if (!all_equal) {
    std::fprintf(stderr, "FATAL: parallel result differs from sequential\n");
    return 1;
  }
  if (have_avx2 && gate_failed) {
    std::fprintf(stderr,
                 "FATAL: AVX2 tier under 2x scalar on a square shape\n");
    return 1;
  }
  return 0;
}

// Kernel microbenchmark: sequential vs pool-parallel tiled matmul/Bmm at
// STBA-representative shapes. Sequential runs force the kernels inline via
// the parallelism cap, so both paths execute the identical tiled code and
// differ only in work partitioning — which also lets us assert the
// bitwise-equality guarantee on every shape measured.
//
// Shapes mirror the hot paths of a PEMS-scale SSTBAN step (B=16, N=170,
// d=64, h=8 => per-head dk=8, L=48): attention scores QK^T, context AV,
// the batched projection GEMMs, and one square reference point.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/thread_pool.h"
#include "tensor/matmul.h"
#include "tensor/tensor.h"

namespace {

namespace t = ::sstban::tensor;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct BenchCase {
  std::string name;
  std::function<t::Tensor()> run;
  double madds;  // multiply-adds per invocation
};

// Times fn with an adaptive iteration count targeting ~0.3s of work.
double TimePerCall(const std::function<t::Tensor()>& fn) {
  fn();  // warm up (thread pool spin-up, pack-buffer allocation)
  int iters = 1;
  for (;;) {
    double start = NowSeconds();
    for (int i = 0; i < iters; ++i) fn();
    double elapsed = NowSeconds() - start;
    if (elapsed > 0.3 || iters >= 1 << 14) return elapsed / iters;
    iters *= 4;
  }
}

bool BitwiseEqual(const t::Tensor& a, const t::Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.size()) * sizeof(float)) == 0;
}

}  // namespace

int main() {
  sstban::core::Rng rng(7);
  const int64_t kDim = 64, kHeads = 8, kLen = 48;
  const int64_t kDk = kDim / kHeads;  // per-head width
  const int64_t kStreams = 512;      // B*h attention streams after head split
  const int64_t kRows = 16320;       // B*L*N rows hitting each projection

  t::Tensor qh = t::Tensor::RandomNormal(t::Shape{kStreams, kLen, kDk}, rng);
  t::Tensor kh = t::Tensor::RandomNormal(t::Shape{kStreams, kLen, kDk}, rng);
  t::Tensor probs = t::Tensor::RandomNormal(t::Shape{kStreams, kLen, kLen}, rng);
  t::Tensor vh = t::Tensor::RandomNormal(t::Shape{kStreams, kLen, kDk}, rng);
  t::Tensor act = t::Tensor::RandomNormal(t::Shape{kRows, kDim}, rng);
  t::Tensor weight = t::Tensor::RandomNormal(t::Shape{kDim, kDim}, rng);
  t::Tensor sq_a = t::Tensor::RandomNormal(t::Shape{512, 512}, rng);
  t::Tensor sq_b = t::Tensor::RandomNormal(t::Shape{512, 512}, rng);

  std::vector<BenchCase> cases;
  cases.push_back({"bmm scores  [512,48,8]x[512,48,8]^T",
                   [&] { return t::Bmm(qh, kh, false, true); },
                   static_cast<double>(kStreams * kLen * kDk * kLen)});
  cases.push_back({"bmm context [512,48,48]x[512,48,8]",
                   [&] { return t::Bmm(probs, vh, false, false); },
                   static_cast<double>(kStreams * kLen * kLen * kDk)});
  cases.push_back({"matmul linear [16320,64]x[64,64]",
                   [&] { return t::Matmul(act, weight); },
                   static_cast<double>(kRows * kDim * kDim)});
  cases.push_back({"matmul square [512,512]x[512,512]",
                   [&] { return t::Matmul(sq_a, sq_b); },
                   512.0 * 512.0 * 512.0});

  std::printf("pool threads: %d (SSTBAN_NUM_THREADS to override)\n\n",
              sstban::core::EffectiveParallelism());
  std::printf("%-44s %10s %10s %8s %9s %9s  %s\n", "case", "seq ms", "par ms",
              "speedup", "seq GF/s", "par GF/s", "bitwise");

  for (const BenchCase& bench : cases) {
    sstban::core::SetParallelismCapForTesting(1);
    t::Tensor seq_out = bench.run();
    double seq_s = TimePerCall(bench.run);
    sstban::core::SetParallelismCapForTesting(0);
    t::Tensor par_out = bench.run();
    double par_s = TimePerCall(bench.run);
    bool equal = BitwiseEqual(seq_out, par_out);
    double flops = 2.0 * bench.madds;
    std::printf("%-44s %10.3f %10.3f %7.2fx %9.2f %9.2f  %s\n",
                bench.name.c_str(), seq_s * 1e3, par_s * 1e3, seq_s / par_s,
                flops / seq_s * 1e-9, flops / par_s * 1e-9,
                equal ? "equal" : "DIFFER");
    if (!equal) {
      std::printf("FATAL: parallel result differs from sequential\n");
      return 1;
    }
  }
  return 0;
}

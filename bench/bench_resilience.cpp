// Resilience-layer overhead gate: proves the serving hot path pays nothing
// for the machinery that only matters when things break. Measures, with a
// counting global operator new (the tensor-layer MemoryTracker cannot see
// std::function/string/vector allocations):
//
//   - a disarmed failpoint probe        (the guard every request crosses)
//   - a failpoint probe while an UNRELATED failpoint is armed (slow guard)
//   - CircuitBreaker Allow + RecordSuccess in the closed state, warm ring
//   - InputSanitizer on a clean window  (the single read-only scan)
//   - BatcherWatchdog tick/start/end/Wedged marks
//
// Exits nonzero when any warm hot path heap-allocates, or when the disarmed
// failpoint stops being branch-cheap. Latency gates are deliberately loose —
// CI boxes are noisy and often single-core — the hard gate is allocations,
// which are deterministic. Emits one JSON object on stdout; pass a path as
// argv[1] to also write it there.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <string>

#include "core/failpoint.h"
#include "serving/circuit_breaker.h"
#include "serving/health.h"
#include "serving/sanitizer.h"
#include "tensor/tensor.h"

// -- Counting allocator ------------------------------------------------------
// Counts every heap allocation made while g_counting is set. Kept trivially
// simple (malloc/free pass-through) so the override itself cannot distort
// the measurement.

namespace {
std::atomic<bool> g_counting{false};
std::atomic<long long> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size ? size : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               (size + static_cast<std::size_t>(align) - 1) &
                                   ~(static_cast<std::size_t>(align) - 1));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

namespace core = ::sstban::core;
namespace serving = ::sstban::serving;
namespace t = ::sstban::tensor;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Measurement {
  double ns_per_op = 0.0;
  long long allocs = 0;  // total across all iterations
};

// Runs `op` `iters` times with the allocation counter live and a volatile
// sink so the loop cannot be elided.
template <typename Op>
Measurement Measure(long long iters, Op&& op) {
  Measurement m;
  g_allocs.store(0);
  g_counting.store(true);
  double start = NowSeconds();
  for (long long i = 0; i < iters; ++i) op();
  double elapsed = NowSeconds() - start;
  g_counting.store(false);
  m.ns_per_op = elapsed * 1e9 / static_cast<double>(iters);
  m.allocs = g_allocs.load();
  return m;
}

volatile long long g_sink = 0;

}  // namespace

int main(int argc, char** argv) {
  constexpr long long kFailpointIters = 2'000'000;
  constexpr long long kBreakerIters = 200'000;
  constexpr long long kSanitizerIters = 20'000;
  constexpr long long kWatchdogIters = 1'000'000;

  // 1. Disarmed failpoint: one relaxed load + a predictable branch.
  core::FailPoint::ClearAll();
  Measurement fp_disarmed = Measure(kFailpointIters, [] {
    g_sink += core::FailPointStatus("bench_resilience_probe").ok() ? 1 : 0;
  });

  // 1b. The five streaming sites (ingest_append, adapt_step, shadow_eval,
  //     promote_swap, adapt_ckpt_write), probed disarmed in sequence — the
  //     ingest site sits on the per-slice hot path, the rest on the
  //     adaptation control loop; all must stay branch-cheap. One op = all
  //     five probes.
  static const char* kStreamingSites[] = {
      "ingest_append", "adapt_step", "shadow_eval", "promote_swap",
      "adapt_ckpt_write"};
  Measurement fp_streaming = Measure(kFailpointIters / 5, [] {
    for (const char* site : kStreamingSites) {
      g_sink += core::FailPointStatus(site).ok() ? 1 : 0;
    }
  });

  // 2. Same probe while an unrelated failpoint is armed: the guard opens and
  //    every hit takes the registry lock. Reported, not gated — this is the
  //    chaos-testing configuration, never production.
  if (!core::FailPoint::Set("bench_resilience_other", "delay(0)").ok()) {
    std::fprintf(stderr, "FAIL: could not arm bench_resilience_other\n");
    return 1;
  }
  Measurement fp_armed_other = Measure(kFailpointIters / 10, [] {
    g_sink += core::FailPointStatus("bench_resilience_probe").ok() ? 1 : 0;
  });
  core::FailPoint::ClearAll();

  // 3. Closed-state circuit breaker, warm ring: Allow + RecordSuccess must
  //    be allocation-free once the fixed-capacity window has filled.
  serving::CircuitBreaker breaker((serving::CircuitBreakerOptions()));
  for (int i = 0; i < 256; ++i) {  // fill the ring past its window
    breaker.Allow();
    breaker.RecordSuccess(0.001);
  }
  Measurement breaker_closed = Measure(kBreakerIters, [&breaker] {
    g_sink += breaker.Allow() ? 1 : 0;
    breaker.RecordSuccess(0.001);
  });

  // 4. Clean-window sanitizer scan: read-only, no clone, no mask.
  serving::SanitizerOptions san_options;
  san_options.degradable_channels = {0};
  serving::InputSanitizer sanitizer(san_options);
  t::Tensor window = t::Tensor::Ones(t::Shape{12, 32, 3});
  {  // warm once outside the counter (first Status/StatusOr pages etc.)
    auto r = sanitizer.Sanitize(&window);
    if (!r.ok() || !r.value().clean()) {
      std::fprintf(stderr, "FAIL: warmup sanitize was not clean\n");
      return 1;
    }
  }
  Measurement sanitize_clean = Measure(kSanitizerIters, [&] {
    auto r = sanitizer.Sanitize(&window);
    g_sink += r.ok() && r.value().clean() ? 1 : 0;
  });

  // 5. Watchdog marks: the per-iteration cost the worker loop pays.
  serving::BatcherWatchdog watchdog;
  auto now = serving::Clock::now();
  Measurement watchdog_marks = Measure(kWatchdogIters, [&] {
    watchdog.MarkLoopTick();
    watchdog.MarkBatchStart(now);
    g_sink += watchdog.Wedged(std::chrono::milliseconds(2000), now) ? 1 : 0;
    watchdog.MarkBatchEnd();
  });

  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"bench\": \"resilience\",\n"
      "  \"failpoint_disarmed\": {\"ns_per_op\": %.2f, \"allocs\": %lld},\n"
      "  \"streaming_sites_disarmed_x5\": {\"ns_per_op\": %.2f, \"allocs\": "
      "%lld},\n"
      "  \"failpoint_armed_elsewhere\": {\"ns_per_op\": %.2f, \"allocs\": "
      "%lld},\n"
      "  \"breaker_closed\": {\"ns_per_op\": %.2f, \"allocs\": %lld},\n"
      "  \"sanitize_clean_12x32x3\": {\"ns_per_op\": %.2f, \"allocs\": "
      "%lld},\n"
      "  \"watchdog_marks\": {\"ns_per_op\": %.2f, \"allocs\": %lld}\n"
      "}\n",
      fp_disarmed.ns_per_op, fp_disarmed.allocs, fp_streaming.ns_per_op,
      fp_streaming.allocs, fp_armed_other.ns_per_op,
      fp_armed_other.allocs, breaker_closed.ns_per_op, breaker_closed.allocs,
      sanitize_clean.ns_per_op, sanitize_clean.allocs,
      watchdog_marks.ns_per_op, watchdog_marks.allocs);
  std::fputs(buf, stdout);
  if (argc > 1) {
    std::ofstream out(argv[1]);
    out << buf;
  }

  bool failed = false;
  auto gate_allocs = [&](const char* name, const Measurement& m) {
    if (m.allocs != 0) {
      std::fprintf(stderr, "FAIL: %s heap-allocated %lld times (want 0)\n",
                   name, m.allocs);
      failed = true;
    }
  };
  gate_allocs("disarmed failpoint", fp_disarmed);
  gate_allocs("disarmed streaming sites", fp_streaming);
  gate_allocs("closed breaker hot path", breaker_closed);
  gate_allocs("clean sanitizer scan", sanitize_clean);
  gate_allocs("watchdog marks", watchdog_marks);
  // Branch-cheap means low double-digit ns even on a throttled CI core;
  // 200ns would mean the guard grew a lock or an allocation.
  if (fp_disarmed.ns_per_op > 200.0) {
    std::fprintf(stderr, "FAIL: disarmed failpoint costs %.1fns (gate 200)\n",
                 fp_disarmed.ns_per_op);
    failed = true;
  }
  // Five probes per op, so five times the single-probe gate.
  if (fp_streaming.ns_per_op > 1000.0) {
    std::fprintf(stderr,
                 "FAIL: disarmed streaming sites cost %.1fns per 5 probes "
                 "(gate 1000)\n",
                 fp_streaming.ns_per_op);
    failed = true;
  }
  // The breaker holds a mutex briefly; anything near microseconds is a bug.
  if (breaker_closed.ns_per_op > 5000.0) {
    std::fprintf(stderr, "FAIL: closed breaker costs %.1fns (gate 5000)\n",
                 breaker_closed.ns_per_op);
    failed = true;
  }
  return failed ? 1 : 0;
}
